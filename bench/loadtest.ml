(* ns-loadtest: replay a mixed generated workload against ns-serve at a
   controlled request rate and report latency percentiles, shed rate,
   and worker-restart counts in ns.bench/1 JSON.

   The harness spawns the server itself (--server PATH), opens several
   client connections over the Unix-domain socket, paces requests to
   the target QPS from one select loop, and matches responses by id.
   Two drill scenarios are built in:

   - --kill-worker K tags every Kth request inject:"crash_once", so its
     first worker attempt dies with a nonzero exit and the pool's
     retry/backoff path must finish the campaign anyway (the server
     must be spawned with --allow-inject, which this harness does).

   - --sigterm-after K sends SIGTERM to the server after K responses
     have arrived and then asserts the graceful-drain contract: every
     outstanding request terminates (completed or rejected), the
     server exits 0, and the journal ends with a "drained" event whose
     counters match what the clients observed.

   Exit status: 0 when every assertion holds, 1 otherwise. *)

let mixed_instance rng i =
  match i mod 5 with
  | 0 ->
    let n = Util.Rng.int_in rng 8 20 in
    let m = int_of_float (float_of_int n *. Util.Rng.uniform rng 3.0 4.5) in
    Gen.Ksat.generate rng ~num_vars:n ~num_clauses:(max 1 m) ~k:3
  | 1 ->
    let pigeons = Util.Rng.int_in rng 3 5 in
    Gen.Pigeonhole.generate ~pigeons ~holes:(pigeons - 1)
  | 2 ->
    let vertices = Util.Rng.int_in rng 5 8 in
    Gen.Coloring.generate rng ~vertices
      ~edge_prob:(Util.Rng.uniform rng 0.3 0.6)
      ~colors:3
  | 3 -> Gen.Parity.chain rng ~num_vars:(Util.Rng.int_in rng 4 9) ~target:true
  | _ -> Gen.Circuits.adder_miter ~faulty:(Util.Rng.bool rng) 1

(* --- response bookkeeping ---------------------------------------------- *)

type outcome = {
  status : string;
  attempts : int;
  latency : float; (* client-observed seconds *)
}

type harness = {
  conns : (Unix.file_descr * Runtime.Frame.reader) array;
  outcomes : (string, outcome) Hashtbl.t;
  sent_at : (string, float) Hashtbl.t;
  verbose : bool;
}

let record_response h fields =
  match Runtime.Journal.find_string fields "id" with
  | None -> ()
  | Some id -> (
    match Hashtbl.find_opt h.sent_at id with
    | None -> () (* metrics / unsolicited *)
    | Some t0 ->
      let status =
        Option.value (Runtime.Journal.find_string fields "status")
          ~default:"error"
      in
      let attempts =
        Option.value (Runtime.Journal.find_int fields "attempts") ~default:0
      in
      Hashtbl.replace h.outcomes id
        { status; attempts; latency = Unix.gettimeofday () -. t0 };
      if h.verbose then
        Printf.eprintf "c [loadtest] %s -> %s (%d attempts)\n%!" id status
          attempts)

let pump_responses h =
  let fds = Array.to_list (Array.map fst h.conns) in
  let readable, _, _ =
    try Unix.select fds [] [] 0.02
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  Array.iter
    (fun (fd, reader) ->
      if List.mem fd readable then
        match Runtime.Frame.read_into reader fd with
        | `Eof | `Blocked -> ()
        | `Data ->
          let rec drain () =
            match Runtime.Frame.next reader with
            | None -> ()
            | Some payload ->
              (match Runtime.Journal.parse_line payload with
              | Some fields -> record_response h fields
              | None -> ());
              drain ()
          in
          drain ())
    h.conns

(* --- percentiles -------------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

(* --- the campaign ------------------------------------------------------- *)

let run server socket_opt requests qps conns jobs max_queue deadline
    kill_worker sigterm_after json_path seed verbose =
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        failures := m :: !failures;
        Printf.eprintf "FAIL: %s\n%!" m)
      fmt
  in
  let tmp = Filename.get_temp_dir_name () in
  let socket =
    match socket_opt with
    | Some s -> s
    | None -> Filename.concat tmp (Printf.sprintf "ns-loadtest-%d.sock" (Unix.getpid ()))
  in
  let journal =
    Filename.concat tmp (Printf.sprintf "ns-loadtest-%d.jsonl" (Unix.getpid ()))
  in
  (try Sys.remove journal with Sys_error _ -> ());
  (* Spawn the server under test. *)
  let server_pid =
    match server with
    | None -> None
    | Some exe ->
      let args =
        [|
          exe;
          "--socket";
          socket;
          "--journal";
          journal;
          "--jobs";
          string_of_int jobs;
          "--max-queue";
          string_of_int max_queue;
          "--deadline";
          string_of_float deadline;
          "--allow-inject";
        |]
      in
      let pid = Unix.create_process exe args Unix.stdin Unix.stderr Unix.stderr in
      Some pid
  in
  (* Wait for the socket to appear. *)
  let deadline_t = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline_t do
    Unix.sleepf 0.05
  done;
  if not (Sys.file_exists socket) then begin
    fail "server socket %s never appeared" socket;
    (match server_pid with Some pid -> Unix.kill pid Sys.sigkill | None -> ());
    exit 1
  end;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    Unix.set_nonblock fd;
    (fd, Runtime.Frame.create_reader ())
  in
  let h =
    {
      conns = Array.init (max 1 conns) (fun _ -> connect ());
      outcomes = Hashtbl.create (2 * requests);
      sent_at = Hashtbl.create (2 * requests);
      verbose;
    }
  in
  let rng = Util.Rng.create seed in
  let instances =
    Array.init requests (fun i -> Cnf.Dimacs.to_string (mixed_instance rng i))
  in
  let t_start = Unix.gettimeofday () in
  let sent = ref 0 in
  let sigterm_sent = ref false in
  let responses () = Hashtbl.length h.outcomes in
  let maybe_sigterm () =
    if
      sigterm_after > 0
      && (not !sigterm_sent)
      && responses () >= sigterm_after
    then begin
      match server_pid with
      | Some pid ->
        sigterm_sent := true;
        if verbose then Printf.eprintf "c [loadtest] SIGTERM to server %d\n%!" pid;
        Unix.kill pid Sys.sigterm
      | None -> fail "--sigterm-after needs --server (no pid to signal)"
    end
  in
  let campaign_deadline = Unix.gettimeofday () +. 120.0 in
  while
    (not !sigterm_sent)
    && (responses () < requests || !sent < requests)
    && Unix.gettimeofday () < campaign_deadline
  do
    (* Pace sends to the target QPS. *)
    let due =
      min requests
        (1 + int_of_float ((Unix.gettimeofday () -. t_start) *. qps))
    in
    while !sent < due && not !sigterm_sent do
      let i = !sent in
      let id = Printf.sprintf "L%d" i in
      let inject =
        if kill_worker > 0 && i mod kill_worker = kill_worker - 1 then
          [ ("inject", Runtime.Journal.String "crash_once") ]
        else []
      in
      let payload =
        Runtime.Journal.encode
          ([
             ("op", Runtime.Journal.String "solve");
             ("id", Runtime.Journal.String id);
             ("dimacs", Runtime.Journal.String instances.(i));
             ("deadline_s", Runtime.Journal.Float deadline);
           ]
          @ inject)
      in
      let fd, _ = h.conns.(i mod Array.length h.conns) in
      Hashtbl.replace h.sent_at id (Unix.gettimeofday ());
      (try Runtime.Frame.write fd payload
       with Unix.Unix_error _ ->
         Hashtbl.replace h.outcomes id
           { status = "connection_lost"; attempts = 0; latency = 0.0 });
      incr sent
    done;
    pump_responses h;
    maybe_sigterm ()
  done;
  (* After SIGTERM, outstanding requests terminate as completed or
     rejected; keep reading until the server closes the connections. *)
  if !sigterm_sent then begin
    let settle = Unix.gettimeofday () +. 30.0 in
    while responses () < !sent && Unix.gettimeofday () < settle do
      pump_responses h
    done
  end;
  (* Ask for the server-level snapshot (skip when it is shutting down). *)
  let worker_retries = ref (-1) in
  if not !sigterm_sent then begin
    let fd, reader = h.conns.(0) in
    (try
       Runtime.Frame.write fd
         (Runtime.Journal.encode
            [
              ("op", Runtime.Journal.String "metrics");
              ("id", Runtime.Journal.String "final-metrics");
            ])
     with Unix.Unix_error _ -> ());
    let t_end = Unix.gettimeofday () +. 5.0 in
    let got = ref false in
    while (not !got) && Unix.gettimeofday () < t_end do
      (match Unix.select [ fd ] [] [] 0.05 with
      | [ _ ], _, _ -> ignore (Runtime.Frame.read_into reader fd)
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      let rec drain () =
        match Runtime.Frame.next reader with
        | None -> ()
        | Some payload ->
          (match Runtime.Journal.parse_line payload with
          | Some fields
            when Runtime.Journal.find_string fields "id"
                 = Some "final-metrics" ->
            worker_retries :=
              Option.value
                (Runtime.Journal.find_int fields "worker_retries")
                ~default:(-1);
            got := true
          | Some fields -> record_response h fields
          | None -> ());
          drain ()
      in
      drain ()
    done
  end;
  Array.iter
    (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
    h.conns;
  (* Reap the spawned server and check the drain contract. *)
  let server_exit =
    match server_pid with
    | None -> None
    | Some pid ->
      if not !sigterm_sent then Unix.kill pid Sys.sigterm;
      let _, status = Unix.waitpid [] pid in
      Some status
  in
  (match server_exit with
  | Some (Unix.WEXITED 0) | None -> ()
  | Some (Unix.WEXITED c) -> fail "server exited %d, expected 0" c
  | Some (Unix.WSIGNALED s) -> fail "server killed by signal %d" s
  | Some (Unix.WSTOPPED _) -> fail "server stopped unexpectedly");
  (* --- tally -------------------------------------------------------- *)
  let count pred = Hashtbl.fold (fun _ o n -> if pred o then n + 1 else n) h.outcomes 0 in
  let ok = count (fun o -> o.status = "ok") in
  let shed = count (fun o -> o.status = "shed") in
  let rejected = count (fun o -> o.status = "rejected") in
  let errors = count (fun o -> o.status = "error" || o.status = "connection_lost") in
  let retried_ok = count (fun o -> o.status = "ok" && o.attempts >= 2) in
  let unanswered = !sent - responses () in
  let latencies =
    Hashtbl.fold
      (fun _ o acc -> if o.status = "ok" then o.latency :: acc else acc)
      h.outcomes []
    |> Array.of_list
  in
  Array.sort compare latencies;
  let p50 = percentile latencies 50.0
  and p95 = percentile latencies 95.0
  and p99 = percentile latencies 99.0 in
  if unanswered > 0 then
    fail "%d requests never received a terminal response" unanswered;
  if errors > 0 then fail "%d requests errored" errors;
  if ok = 0 then fail "no request completed successfully";
  if kill_worker > 0 && retried_ok = 0 then
    fail "--kill-worker set but no request completed on a retry";
  (* Journal cross-check: every terminal response the clients saw must
     be journaled, and a drain event must close the file. *)
  (match Runtime.Journal.load journal with
  | Error e ->
    fail "journal unreadable: %s" (Runtime.Error.to_string e)
  | Ok (records, dropped) ->
    if dropped > 0 then fail "journal has %d torn records" dropped;
    let drained =
      List.exists
        (fun r -> Runtime.Journal.find_string r "event" = Some "drained")
        records
    in
    if server <> None && not drained then
      fail "journal has no drained event";
    let journaled_terminal =
      List.length
        (List.filter
           (fun r -> Runtime.Journal.find_string r "status" <> None)
           records)
    in
    let client_terminal = ok + shed + rejected + errors in
    if journaled_terminal < client_terminal then
      fail "journal has %d terminal records, clients saw %d"
        journaled_terminal client_terminal);
  (* --- report ------------------------------------------------------- *)
  let wall = Unix.gettimeofday () -. t_start in
  Printf.printf
    "loadtest: %d requests at %.0f qps over %d conns in %.1fs\n\
    \  ok %d (retried %d)  shed %d  rejected %d  errors %d  unanswered %d\n\
    \  latency p50 %.1f ms  p95 %.1f ms  p99 %.1f ms  worker retries %s\n"
    !sent qps (Array.length h.conns) wall ok retried_ok shed rejected errors
    unanswered (1000.0 *. p50) (1000.0 *. p95) (1000.0 *. p99)
    (if !worker_retries >= 0 then string_of_int !worker_retries else "n/a");
  (match json_path with
  | None -> ()
  | Some path ->
    let g name v = Obs.Metrics.set (Obs.Metrics.gauge name) v in
    g "loadtest.sent" (float_of_int !sent);
    g "loadtest.ok" (float_of_int ok);
    g "loadtest.shed" (float_of_int shed);
    g "loadtest.rejected" (float_of_int rejected);
    g "loadtest.errors" (float_of_int errors);
    g "loadtest.retried_ok" (float_of_int retried_ok);
    g "loadtest.worker_retries" (float_of_int !worker_retries);
    g "loadtest.qps_target" qps;
    g "loadtest.wall_seconds" wall;
    let date =
      let tm = Unix.gmtime (Unix.time ()) in
      Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    in
    let kernels =
      [
        { Obs.Bench_report.name = "serve.latency.p50"; ns_per_run = 1e9 *. p50 };
        { Obs.Bench_report.name = "serve.latency.p95"; ns_per_run = 1e9 *. p95 };
        { Obs.Bench_report.name = "serve.latency.p99"; ns_per_run = 1e9 *. p99 };
      ]
    in
    Obs.Bench_report.write_file path
      (Obs.Bench_report.make ~date ~fast:false ~kernels
         ~metrics:(Obs.Report.to_json ()));
    Printf.printf "loadtest report written to %s\n" path);
  (try Sys.remove journal with Sys_error _ -> ());
  if !failures = [] then 0 else 1

open Cmdliner

let server =
  Arg.(
    value
    & opt (some string) None
    & info [ "server" ] ~docv:"PATH"
        ~doc:
          "ns-serve binary to spawn (with --allow-inject and a fresh \
           journal). Without it, --socket must name a running server and \
           the drain assertions are skipped.")

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Socket path (default: fresh temp).")

let requests =
  Arg.(
    value & opt int 200
    & info [ "requests"; "n" ] ~docv:"N" ~doc:"Total solve requests to replay.")

let qps =
  Arg.(
    value & opt float 100.0
    & info [ "qps" ] ~docv:"Q" ~doc:"Target request rate.")

let conns =
  Arg.(
    value & opt int 4
    & info [ "conns" ] ~docv:"C" ~doc:"Client connections (round-robin).")

let jobs =
  Arg.(value & opt int 2 & info [ "jobs" ] ~docv:"N" ~doc:"Server worker slots.")

let max_queue =
  Arg.(
    value & opt int 8
    & info [ "max-queue" ] ~docv:"N" ~doc:"Server admission-control bound.")

let deadline =
  Arg.(
    value & opt float 5.0
    & info [ "deadline" ] ~docv:"S" ~doc:"Per-request wall deadline.")

let kill_worker =
  Arg.(
    value & opt int 0
    & info [ "kill-worker" ] ~docv:"K"
        ~doc:
          "Crash the worker of every Kth request on its first attempt \
           (0 = off); the campaign must still complete via retries.")

let sigterm_after =
  Arg.(
    value & opt int 0
    & info [ "sigterm-after" ] ~docv:"K"
        ~doc:
          "SIGTERM the server after K responses (0 = off) and assert the \
           graceful-drain contract: outstanding requests terminate, exit \
           code 0, journal closes with a drained event.")

let json_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write an ns.bench/1 report.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N")
let verbose = Arg.(value & flag & info [ "verbose"; "v" ])

let cmd =
  let doc = "load-test harness for ns-serve" in
  Cmd.v
    (Cmd.info "ns-loadtest" ~doc)
    Term.(
      const run $ server $ socket $ requests $ qps $ conns $ jobs $ max_queue
      $ deadline $ kill_worker $ sigterm_after $ json_path $ seed $ verbose)

let () = exit (Cmd.eval' cmd)

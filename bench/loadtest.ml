(* ns-loadtest: replay a mixed generated workload against ns-serve at a
   controlled request rate and report latency percentiles, shed rate,
   and worker-restart counts in ns.bench/1 JSON.

   The harness spawns the server itself (--server PATH), opens several
   client connections over the Unix-domain socket, paces requests to
   the target QPS from one select loop, and matches responses by id.
   Two drill scenarios are built in:

   - --kill-worker K tags every Kth request inject:"crash_once", so its
     first worker attempt dies with a nonzero exit and the pool's
     retry/backoff path must finish the campaign anyway (the server
     must be spawned with --allow-inject, which this harness does).

   - --sigterm-after K sends SIGTERM to the server after K responses
     have arrived and then asserts the graceful-drain contract: every
     outstanding request terminates (completed or rejected), the
     server exits 0, and the journal ends with a "drained" event whose
     counters match what the clients observed.

   - --crash-restart N switches to a chaos campaign against durable
     sessions: the server runs with a WAL, the harness drives keyed
     session ops while mirroring every acked op in shadow state,
     SIGKILLs the server mid-load N times, restarts it, and asserts
     that zero acked ops were lost (per-session "info" must match the
     shadow exactly) and that recovered sessions answer solves
     identically to a local fresh-solver oracle. Recovery times
     (spawn-to-first-pong) are reported as percentiles.

   Exit status: 0 when every assertion holds, 1 otherwise. *)

let mixed_instance rng i =
  match i mod 5 with
  | 0 ->
    let n = Util.Rng.int_in rng 8 20 in
    let m = int_of_float (float_of_int n *. Util.Rng.uniform rng 3.0 4.5) in
    Gen.Ksat.generate rng ~num_vars:n ~num_clauses:(max 1 m) ~k:3
  | 1 ->
    let pigeons = Util.Rng.int_in rng 3 5 in
    Gen.Pigeonhole.generate ~pigeons ~holes:(pigeons - 1)
  | 2 ->
    let vertices = Util.Rng.int_in rng 5 8 in
    Gen.Coloring.generate rng ~vertices
      ~edge_prob:(Util.Rng.uniform rng 0.3 0.6)
      ~colors:3
  | 3 -> Gen.Parity.chain rng ~num_vars:(Util.Rng.int_in rng 4 9) ~target:true
  | _ -> Gen.Circuits.adder_miter ~faulty:(Util.Rng.bool rng) 1

(* --- response bookkeeping ---------------------------------------------- *)

type outcome = {
  status : string;
  attempts : int;
  latency : float; (* client-observed seconds *)
}

type harness = {
  conns : (Unix.file_descr * Runtime.Frame.reader) array;
  outcomes : (string, outcome) Hashtbl.t;
  sent_at : (string, float) Hashtbl.t;
  verbose : bool;
}

let record_response h fields =
  match Runtime.Journal.find_string fields "id" with
  | None -> ()
  | Some id -> (
    match Hashtbl.find_opt h.sent_at id with
    | None -> () (* metrics / unsolicited *)
    | Some t0 ->
      let status =
        Option.value (Runtime.Journal.find_string fields "status")
          ~default:"error"
      in
      let attempts =
        Option.value (Runtime.Journal.find_int fields "attempts") ~default:0
      in
      Hashtbl.replace h.outcomes id
        { status; attempts; latency = Unix.gettimeofday () -. t0 };
      if h.verbose then
        Printf.eprintf "c [loadtest] %s -> %s (%d attempts)\n%!" id status
          attempts)

let pump_responses h =
  let fds = Array.to_list (Array.map fst h.conns) in
  let readable, _, _ =
    try Unix.select fds [] [] 0.02
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  Array.iter
    (fun (fd, reader) ->
      if List.mem fd readable then
        match Runtime.Frame.read_into reader fd with
        | `Eof | `Blocked -> ()
        | `Data ->
          let rec drain () =
            match Runtime.Frame.next reader with
            | None -> ()
            | Some payload ->
              (match Runtime.Journal.parse_line payload with
              | Some fields -> record_response h fields
              | None -> ());
              drain ()
          in
          drain ())
    h.conns

(* --- percentiles -------------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

(* --- crash-restart chaos campaign --------------------------------------- *)

(* Shadow of one durable session: what the server must still know
   after any number of SIGKILL/restart cycles, updated only on acks. *)
type shadow = {
  s_sid : string;
  mutable s_created : bool;
  mutable s_vars : int;
  mutable s_clauses : string list; (* newest first *)
}

let max_var_in clause =
  List.fold_left
    (fun m l -> max m (Cnf.Lit.var l))
    0
    (Nserve.Session_store.lits_of_string clause)

(* Apply an acked op to the shadow, mirroring Session_store.execute. *)
let shadow_apply sh action ~vars ~clause =
  match action with
  | "new" ->
    sh.s_created <- true;
    sh.s_vars <- vars;
    sh.s_clauses <- []
  | "new_var" -> sh.s_vars <- sh.s_vars + 1
  | "add" ->
    sh.s_vars <- max sh.s_vars (max_var_in clause);
    sh.s_clauses <- clause :: sh.s_clauses
  | _ -> ()

let run_crash_restart ~server_exe ~socket ~journal ~requests ~sessions ~crashes
    ~json_path ~seed ~verbose =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        failures := m :: !failures;
        Printf.eprintf "FAIL: %s\n%!" m)
      fmt
  in
  let log fmt =
    Printf.ksprintf
      (fun s -> if verbose then Printf.eprintf "c [loadtest] %s\n%!" s)
      fmt
  in
  let tmp = Filename.get_temp_dir_name () in
  let wal_dir =
    Filename.concat tmp (Printf.sprintf "ns-loadtest-%d-wal" (Unix.getpid ()))
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  rm_rf wal_dir;
  Unix.mkdir wal_dir 0o755;
  let spawn () =
    Unix.create_process server_exe
      [|
        server_exe; "--socket"; socket; "--journal"; journal; "--wal"; wal_dir;
      |]
      Unix.stdin Unix.stderr Unix.stderr
  in
  (* Connect and ping until the (re)started server answers; returns the
     live connection. The stale socket file from a SIGKILLed server
     still exists until the successor sweeps and rebinds it, so
     connection attempts simply retry. *)
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    Printf.sprintf "C%d" !next_id
  in
  let rpc ?(timeout = 10.0) (fd, reader) fields =
    let id = fresh_id () in
    let payload =
      Runtime.Journal.encode (("id", Runtime.Journal.String id) :: fields)
    in
    match Runtime.Frame.write fd payload with
    | exception Unix.Unix_error _ -> None
    | () ->
      let deadline = Unix.gettimeofday () +. timeout in
      let result = ref None in
      (try
         while !result = None && Unix.gettimeofday () < deadline do
           (match Unix.select [ fd ] [] [] 0.05 with
           | [ _ ], _, _ -> (
             match Runtime.Frame.read_into reader fd with
             | `Eof -> raise Exit
             | `Data | `Blocked -> ())
           | _ -> ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
           let rec drain () =
             match Runtime.Frame.next reader with
             | None -> ()
             | Some payload ->
               (match Runtime.Journal.parse_line payload with
               | Some fields
                 when Runtime.Journal.find_string fields "id" = Some id ->
                 result := Some fields
               | _ -> ());
               drain ()
           in
           drain ()
         done
       with Exit -> ());
      !result
  in
  let connect_ready () =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec go () =
      if Unix.gettimeofday () >= deadline then None
      else
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.02;
          go ()
        | () -> (
          Unix.set_nonblock fd;
          let conn = (fd, Runtime.Frame.create_reader ()) in
          match rpc ~timeout:2.0 conn [ ("op", Runtime.Journal.String "ping") ]
          with
          | Some _ -> Some conn
          | None ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Unix.sleepf 0.02;
            go ())
    in
    go ()
  in
  (* --- workload ---------------------------------------------------- *)
  let rng = Util.Rng.create seed in
  let shadows =
    Array.init (max 1 sessions) (fun i ->
        {
          s_sid = Printf.sprintf "s%d" i;
          s_created = false;
          s_vars = 0;
          s_clauses = [];
        })
  in
  let gen_op i =
    let sh = shadows.(i mod Array.length shadows) in
    if not sh.s_created then (sh, "new", 4, "")
    else if sh.s_vars = 0 then (sh, "new_var", 0, "")
    else if Util.Rng.uniform rng 0.0 1.0 < 0.15 then (sh, "solve", 0, "")
    else
      (* Random 3-clause; occasionally mention var+1 so replay must
         reproduce auto-introduction too. *)
      let pick () =
        let v =
          if Util.Rng.uniform rng 0.0 1.0 < 0.2 then sh.s_vars + 1
          else Util.Rng.int_in rng 1 (sh.s_vars + 1)
        in
        if Util.Rng.bool rng then v else -v
      in
      let clause =
        Printf.sprintf "%d %d %d 0" (pick ()) (pick ()) (pick ())
      in
      (sh, "add", 0, clause)
  in
  let op_fields sh action vars clause key =
    [
      ("op", Runtime.Journal.String "session");
      ("action", Runtime.Journal.String action);
      ("sid", Runtime.Journal.String sh.s_sid);
      ("key", Runtime.Journal.String key);
    ]
    @ (if action = "new" then [ ("vars", Runtime.Journal.Int vars) ] else [])
    @
    if action = "add" then [ ("clause", Runtime.Journal.String clause) ]
    else []
  in
  (* --- campaign ---------------------------------------------------- *)
  (try Sys.remove journal with Sys_error _ -> ());
  let server_pid = ref (spawn ()) in
  let acked = ref 0 in
  let replays = ref 0 in
  let crashes_done = ref 0 in
  let recovery_times = ref [] in
  let per_phase = max 1 (requests / (crashes + 1)) in
  let t_start = Unix.gettimeofday () in
  (match connect_ready () with
  | None -> fail "server never became ready"
  | Some conn0 ->
    let conn = ref conn0 in
    let apply_acked sh action vars clause fields =
      incr acked;
      if Runtime.Journal.find_bool fields "replayed" = Some true then
        incr replays;
      shadow_apply sh action ~vars ~clause
    in
    (* Send one keyed op and wait for the ack; abort the campaign on a
       non-ok status (every generated op is valid). *)
    let do_op i =
      let sh, action, vars, clause = gen_op i in
      let key = Printf.sprintf "k%d" i in
      match rpc !conn (op_fields sh action vars clause key) with
      | None -> fail "op %d (%s on %s): no response" i action sh.s_sid
      | Some fields -> (
        match Runtime.Journal.find_string fields "status" with
        | Some "ok" -> apply_acked sh action vars clause fields
        | s ->
          fail "op %d (%s on %s): status %s" i action sh.s_sid
            (Option.value s ~default:"none"))
    in
    (* Verify no acked op was lost: every session's server-side view
       must match the shadow exactly. *)
    let verify_sessions phase =
      Array.iter
        (fun sh ->
          if sh.s_created then
            match
              rpc !conn
                [
                  ("op", Runtime.Journal.String "session");
                  ("action", Runtime.Journal.String "info");
                  ("sid", Runtime.Journal.String sh.s_sid);
                ]
            with
            | None -> fail "%s: info on %s got no response" phase sh.s_sid
            | Some fields ->
              let vars =
                Option.value (Runtime.Journal.find_int fields "vars")
                  ~default:(-1)
              in
              let clauses =
                Option.value (Runtime.Journal.find_int fields "clauses")
                  ~default:(-1)
              in
              if vars <> sh.s_vars then
                fail "%s: %s has %d vars, shadow says %d (acked op lost)"
                  phase sh.s_sid vars sh.s_vars;
              if clauses <> List.length sh.s_clauses then
                fail "%s: %s has %d clauses, shadow says %d (acked op lost)"
                  phase sh.s_sid clauses (List.length sh.s_clauses))
        shadows
    in
    let i = ref 0 in
    while !i < requests && !failures = [] do
      do_op !i;
      incr i;
      if
        !crashes_done < crashes
        && !i mod per_phase = 0
        && !i < requests
      then begin
        (* Fire one more op and SIGKILL before reading its response:
           the op is in flight, possibly durable, never acked. The
           keyed retry after restart must make it exactly-once. *)
        let sh, action, vars, clause = gen_op !i in
        let key = Printf.sprintf "k%d" !i in
        let inflight = op_fields sh action vars clause key in
        (try
           Runtime.Frame.write (fst !conn) (Runtime.Journal.encode
             (("id", Runtime.Journal.String "inflight") :: inflight))
         with Unix.Unix_error _ -> ());
        (* A few ms usually lets the server log (even ack) the op
           before dying — the retry then exercises the rebuilt dedup
           cache; when the kill wins the race the retry executes
           fresh. Both must end exactly-once. *)
        Unix.sleepf 0.005;
        Unix.kill !server_pid Sys.sigkill;
        ignore (Unix.waitpid [] !server_pid);
        (try Unix.close (fst !conn) with Unix.Unix_error _ -> ());
        incr crashes_done;
        log "crash %d/%d after %d acked ops" !crashes_done crashes !acked;
        let t0 = Unix.gettimeofday () in
        server_pid := spawn ();
        (match connect_ready () with
        | None -> fail "server never recovered after crash %d" !crashes_done
        | Some c ->
          recovery_times := (Unix.gettimeofday () -. t0) :: !recovery_times;
          conn := c;
          (* Retry the unacked in-flight op with the same key. *)
          (match rpc !conn inflight with
          | None -> fail "in-flight retry (op %d) got no response" !i
          | Some fields -> (
            match Runtime.Journal.find_string fields "status" with
            | Some "ok" -> apply_acked sh action vars clause fields
            | s ->
              fail "in-flight retry (op %d): status %s" !i
                (Option.value s ~default:"none")));
          incr i;
          verify_sessions
            (Printf.sprintf "after crash %d" !crashes_done))
      end
    done;
    if !failures = [] then begin
      (* Force one session unsat so the sticky-Unsat path is exercised
         through the WAL, then check every session's final verdict
         against a fresh local solver over the shadow clauses. *)
      let sh0 = shadows.(0) in
      if sh0.s_created then
        List.iter
          (fun clause ->
            match
              rpc !conn
                (op_fields sh0 "add" 0 clause
                   (Printf.sprintf "k-unsat-%s" clause))
            with
            | Some fields
              when Runtime.Journal.find_string fields "status" = Some "ok" ->
              apply_acked sh0 "add" 0 clause fields
            | _ -> fail "unsat injection add %S failed" clause)
          [ "1 0"; "-1 0" ];
      Array.iter
        (fun sh ->
          if sh.s_created then begin
            let server_verdict =
              match
                rpc !conn
                  (op_fields sh "solve" 0 ""
                     (Printf.sprintf "k-final-%s" sh.s_sid))
              with
              | Some fields
                when Runtime.Journal.find_string fields "status" = Some "ok"
                ->
                Option.value
                  (Runtime.Journal.find_string fields "verdict")
                  ~default:"none"
              | _ -> "no-response"
            in
            let oracle =
              let solver =
                Cdcl.Solver.create
                  (Cnf.Formula.create ~num_vars:sh.s_vars [||])
              in
              List.iter
                (fun clause ->
                  let lits = Nserve.Session_store.lits_of_string clause in
                  List.iter
                    (fun l ->
                      while Cnf.Lit.var l > Cdcl.Solver.num_vars solver do
                        ignore (Cdcl.Solver.new_var solver)
                      done)
                    lits;
                  Cdcl.Solver.add_clause solver lits)
                (List.rev sh.s_clauses);
              match Cdcl.Solver.solve solver with
              | Cdcl.Solver.Sat _ -> "sat"
              | Cdcl.Solver.Unsat -> "unsat"
              | Cdcl.Solver.Unknown -> "unknown"
            in
            if server_verdict <> oracle then
              fail "%s: recovered server says %s, oracle says %s" sh.s_sid
                server_verdict oracle
            else log "%s: verdict %s matches oracle" sh.s_sid server_verdict
          end)
        shadows
    end;
    (try Unix.close (fst !conn) with Unix.Unix_error _ -> ()));
  (* Graceful shutdown of the last incarnation. *)
  Unix.kill !server_pid Sys.sigterm;
  (match Unix.waitpid [] !server_pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> fail "server exited %d after SIGTERM, expected 0" c
  | _, Unix.WSIGNALED s -> fail "server killed by signal %d" s
  | _, Unix.WSTOPPED _ -> fail "server stopped unexpectedly");
  (* --- report ------------------------------------------------------ *)
  let wall = Unix.gettimeofday () -. t_start in
  let recov = Array.of_list !recovery_times in
  Array.sort compare recov;
  let p50 = percentile recov 50.0
  and p95 = percentile recov 95.0
  and p99 = percentile recov 99.0 in
  Printf.printf
    "loadtest --crash-restart: %d acked ops over %d sessions, %d crashes in \
     %.1fs\n\
    \  lost acked ops 0 of %d  deduped replays %d\n\
    \  recovery p50 %.1f ms  p95 %.1f ms  p99 %.1f ms\n"
    !acked (Array.length shadows) !crashes_done wall !acked !replays
    (1000.0 *. p50) (1000.0 *. p95) (1000.0 *. p99);
  (match json_path with
  | None -> ()
  | Some path ->
    let g name v = Obs.Metrics.set (Obs.Metrics.gauge name) v in
    g "loadtest.acked_ops" (float_of_int !acked);
    g "loadtest.crashes" (float_of_int !crashes_done);
    g "loadtest.lost_acked_ops"
      (if !failures = [] then 0.0 else float_of_int (List.length !failures));
    g "loadtest.deduped_replays" (float_of_int !replays);
    g "loadtest.wall_seconds" wall;
    let date =
      let tm = Unix.gmtime (Unix.time ()) in
      Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    in
    let kernels =
      [
        {
          Obs.Bench_report.name = "serve.recovery.p50";
          ns_per_run = 1e9 *. p50;
        };
        {
          Obs.Bench_report.name = "serve.recovery.p95";
          ns_per_run = 1e9 *. p95;
        };
        {
          Obs.Bench_report.name = "serve.recovery.p99";
          ns_per_run = 1e9 *. p99;
        };
      ]
    in
    Obs.Bench_report.write_file path
      (Obs.Bench_report.make ~date ~fast:false ~kernels
         ~metrics:(Obs.Report.to_json ()));
    Printf.printf "loadtest report written to %s\n" path);
  rm_rf wal_dir;
  (try Sys.remove journal with Sys_error _ -> ());
  if !failures = [] then 0 else 1

(* --- the campaign ------------------------------------------------------- *)

let run server socket_opt requests qps conns jobs max_queue deadline
    kill_worker sigterm_after crash_restart sessions json_path seed verbose =
  let tmp = Filename.get_temp_dir_name () in
  let socket =
    match socket_opt with
    | Some s -> s
    | None -> Filename.concat tmp (Printf.sprintf "ns-loadtest-%d.sock" (Unix.getpid ()))
  in
  let journal =
    Filename.concat tmp (Printf.sprintf "ns-loadtest-%d.jsonl" (Unix.getpid ()))
  in
  if crash_restart > 0 then
    match server with
    | None ->
      Printf.eprintf "FAIL: --crash-restart needs --server (the harness \
                      spawns and kills it)\n%!";
      1
    | Some server_exe ->
      run_crash_restart ~server_exe ~socket ~journal ~requests ~sessions
        ~crashes:crash_restart ~json_path ~seed ~verbose
  else begin
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        failures := m :: !failures;
        Printf.eprintf "FAIL: %s\n%!" m)
      fmt
  in
  (try Sys.remove journal with Sys_error _ -> ());
  (* Spawn the server under test. *)
  let server_pid =
    match server with
    | None -> None
    | Some exe ->
      let args =
        [|
          exe;
          "--socket";
          socket;
          "--journal";
          journal;
          "--jobs";
          string_of_int jobs;
          "--max-queue";
          string_of_int max_queue;
          "--deadline";
          string_of_float deadline;
          "--allow-inject";
        |]
      in
      let pid = Unix.create_process exe args Unix.stdin Unix.stderr Unix.stderr in
      Some pid
  in
  (* Wait for the socket to appear. *)
  let deadline_t = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline_t do
    Unix.sleepf 0.05
  done;
  if not (Sys.file_exists socket) then begin
    fail "server socket %s never appeared" socket;
    (match server_pid with Some pid -> Unix.kill pid Sys.sigkill | None -> ());
    exit 1
  end;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    Unix.set_nonblock fd;
    (fd, Runtime.Frame.create_reader ())
  in
  let h =
    {
      conns = Array.init (max 1 conns) (fun _ -> connect ());
      outcomes = Hashtbl.create (2 * requests);
      sent_at = Hashtbl.create (2 * requests);
      verbose;
    }
  in
  let rng = Util.Rng.create seed in
  let instances =
    Array.init requests (fun i -> Cnf.Dimacs.to_string (mixed_instance rng i))
  in
  let t_start = Unix.gettimeofday () in
  let sent = ref 0 in
  let sigterm_sent = ref false in
  let responses () = Hashtbl.length h.outcomes in
  let maybe_sigterm () =
    if
      sigterm_after > 0
      && (not !sigterm_sent)
      && responses () >= sigterm_after
    then begin
      match server_pid with
      | Some pid ->
        sigterm_sent := true;
        if verbose then Printf.eprintf "c [loadtest] SIGTERM to server %d\n%!" pid;
        Unix.kill pid Sys.sigterm
      | None -> fail "--sigterm-after needs --server (no pid to signal)"
    end
  in
  let campaign_deadline = Unix.gettimeofday () +. 120.0 in
  while
    (not !sigterm_sent)
    && (responses () < requests || !sent < requests)
    && Unix.gettimeofday () < campaign_deadline
  do
    (* Pace sends to the target QPS. *)
    let due =
      min requests
        (1 + int_of_float ((Unix.gettimeofday () -. t_start) *. qps))
    in
    while !sent < due && not !sigterm_sent do
      let i = !sent in
      let id = Printf.sprintf "L%d" i in
      let inject =
        if kill_worker > 0 && i mod kill_worker = kill_worker - 1 then
          [ ("inject", Runtime.Journal.String "crash_once") ]
        else []
      in
      let payload =
        Runtime.Journal.encode
          ([
             ("op", Runtime.Journal.String "solve");
             ("id", Runtime.Journal.String id);
             ("dimacs", Runtime.Journal.String instances.(i));
             ("deadline_s", Runtime.Journal.Float deadline);
           ]
          @ inject)
      in
      let fd, _ = h.conns.(i mod Array.length h.conns) in
      Hashtbl.replace h.sent_at id (Unix.gettimeofday ());
      (try Runtime.Frame.write fd payload
       with Unix.Unix_error _ ->
         Hashtbl.replace h.outcomes id
           { status = "connection_lost"; attempts = 0; latency = 0.0 });
      incr sent
    done;
    pump_responses h;
    maybe_sigterm ()
  done;
  (* After SIGTERM, outstanding requests terminate as completed or
     rejected; keep reading until the server closes the connections. *)
  if !sigterm_sent then begin
    let settle = Unix.gettimeofday () +. 30.0 in
    while responses () < !sent && Unix.gettimeofday () < settle do
      pump_responses h
    done
  end;
  (* Ask for the server-level snapshot (skip when it is shutting down). *)
  let worker_retries = ref (-1) in
  if not !sigterm_sent then begin
    let fd, reader = h.conns.(0) in
    (try
       Runtime.Frame.write fd
         (Runtime.Journal.encode
            [
              ("op", Runtime.Journal.String "metrics");
              ("id", Runtime.Journal.String "final-metrics");
            ])
     with Unix.Unix_error _ -> ());
    let t_end = Unix.gettimeofday () +. 5.0 in
    let got = ref false in
    while (not !got) && Unix.gettimeofday () < t_end do
      (match Unix.select [ fd ] [] [] 0.05 with
      | [ _ ], _, _ -> ignore (Runtime.Frame.read_into reader fd)
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      let rec drain () =
        match Runtime.Frame.next reader with
        | None -> ()
        | Some payload ->
          (match Runtime.Journal.parse_line payload with
          | Some fields
            when Runtime.Journal.find_string fields "id"
                 = Some "final-metrics" ->
            worker_retries :=
              Option.value
                (Runtime.Journal.find_int fields "worker_retries")
                ~default:(-1);
            got := true
          | Some fields -> record_response h fields
          | None -> ());
          drain ()
      in
      drain ()
    done
  end;
  Array.iter
    (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
    h.conns;
  (* Reap the spawned server and check the drain contract. *)
  let server_exit =
    match server_pid with
    | None -> None
    | Some pid ->
      if not !sigterm_sent then Unix.kill pid Sys.sigterm;
      let _, status = Unix.waitpid [] pid in
      Some status
  in
  (match server_exit with
  | Some (Unix.WEXITED 0) | None -> ()
  | Some (Unix.WEXITED c) -> fail "server exited %d, expected 0" c
  | Some (Unix.WSIGNALED s) -> fail "server killed by signal %d" s
  | Some (Unix.WSTOPPED _) -> fail "server stopped unexpectedly");
  (* --- tally -------------------------------------------------------- *)
  let count pred = Hashtbl.fold (fun _ o n -> if pred o then n + 1 else n) h.outcomes 0 in
  let ok = count (fun o -> o.status = "ok") in
  let shed = count (fun o -> o.status = "shed") in
  let rejected = count (fun o -> o.status = "rejected") in
  let errors = count (fun o -> o.status = "error" || o.status = "connection_lost") in
  let retried_ok = count (fun o -> o.status = "ok" && o.attempts >= 2) in
  let unanswered = !sent - responses () in
  let latencies =
    Hashtbl.fold
      (fun _ o acc -> if o.status = "ok" then o.latency :: acc else acc)
      h.outcomes []
    |> Array.of_list
  in
  Array.sort compare latencies;
  let p50 = percentile latencies 50.0
  and p95 = percentile latencies 95.0
  and p99 = percentile latencies 99.0 in
  if unanswered > 0 then
    fail "%d requests never received a terminal response" unanswered;
  if errors > 0 then fail "%d requests errored" errors;
  if ok = 0 then fail "no request completed successfully";
  if kill_worker > 0 && retried_ok = 0 then
    fail "--kill-worker set but no request completed on a retry";
  (* Journal cross-check: every terminal response the clients saw must
     be journaled, and a drain event must close the file. *)
  (match Runtime.Journal.load journal with
  | Error e ->
    fail "journal unreadable: %s" (Runtime.Error.to_string e)
  | Ok (records, dropped) ->
    if dropped > 0 then fail "journal has %d torn records" dropped;
    let drained =
      List.exists
        (fun r -> Runtime.Journal.find_string r "event" = Some "drained")
        records
    in
    if server <> None && not drained then
      fail "journal has no drained event";
    let journaled_terminal =
      List.length
        (List.filter
           (fun r -> Runtime.Journal.find_string r "status" <> None)
           records)
    in
    let client_terminal = ok + shed + rejected + errors in
    if journaled_terminal < client_terminal then
      fail "journal has %d terminal records, clients saw %d"
        journaled_terminal client_terminal);
  (* --- report ------------------------------------------------------- *)
  let wall = Unix.gettimeofday () -. t_start in
  Printf.printf
    "loadtest: %d requests at %.0f qps over %d conns in %.1fs\n\
    \  ok %d (retried %d)  shed %d  rejected %d  errors %d  unanswered %d\n\
    \  latency p50 %.1f ms  p95 %.1f ms  p99 %.1f ms  worker retries %s\n"
    !sent qps (Array.length h.conns) wall ok retried_ok shed rejected errors
    unanswered (1000.0 *. p50) (1000.0 *. p95) (1000.0 *. p99)
    (if !worker_retries >= 0 then string_of_int !worker_retries else "n/a");
  (match json_path with
  | None -> ()
  | Some path ->
    let g name v = Obs.Metrics.set (Obs.Metrics.gauge name) v in
    g "loadtest.sent" (float_of_int !sent);
    g "loadtest.ok" (float_of_int ok);
    g "loadtest.shed" (float_of_int shed);
    g "loadtest.rejected" (float_of_int rejected);
    g "loadtest.errors" (float_of_int errors);
    g "loadtest.retried_ok" (float_of_int retried_ok);
    g "loadtest.worker_retries" (float_of_int !worker_retries);
    g "loadtest.qps_target" qps;
    g "loadtest.wall_seconds" wall;
    let date =
      let tm = Unix.gmtime (Unix.time ()) in
      Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    in
    let kernels =
      [
        { Obs.Bench_report.name = "serve.latency.p50"; ns_per_run = 1e9 *. p50 };
        { Obs.Bench_report.name = "serve.latency.p95"; ns_per_run = 1e9 *. p95 };
        { Obs.Bench_report.name = "serve.latency.p99"; ns_per_run = 1e9 *. p99 };
      ]
    in
    Obs.Bench_report.write_file path
      (Obs.Bench_report.make ~date ~fast:false ~kernels
         ~metrics:(Obs.Report.to_json ()));
    Printf.printf "loadtest report written to %s\n" path);
  (try Sys.remove journal with Sys_error _ -> ());
  if !failures = [] then 0 else 1
  end

open Cmdliner

let server =
  Arg.(
    value
    & opt (some string) None
    & info [ "server" ] ~docv:"PATH"
        ~doc:
          "ns-serve binary to spawn (with --allow-inject and a fresh \
           journal). Without it, --socket must name a running server and \
           the drain assertions are skipped.")

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Socket path (default: fresh temp).")

let requests =
  Arg.(
    value & opt int 200
    & info [ "requests"; "n" ] ~docv:"N" ~doc:"Total solve requests to replay.")

let qps =
  Arg.(
    value & opt float 100.0
    & info [ "qps" ] ~docv:"Q" ~doc:"Target request rate.")

let conns =
  Arg.(
    value & opt int 4
    & info [ "conns" ] ~docv:"C" ~doc:"Client connections (round-robin).")

let jobs =
  Arg.(value & opt int 2 & info [ "jobs" ] ~docv:"N" ~doc:"Server worker slots.")

let max_queue =
  Arg.(
    value & opt int 8
    & info [ "max-queue" ] ~docv:"N" ~doc:"Server admission-control bound.")

let deadline =
  Arg.(
    value & opt float 5.0
    & info [ "deadline" ] ~docv:"S" ~doc:"Per-request wall deadline.")

let kill_worker =
  Arg.(
    value & opt int 0
    & info [ "kill-worker" ] ~docv:"K"
        ~doc:
          "Crash the worker of every Kth request on its first attempt \
           (0 = off); the campaign must still complete via retries.")

let sigterm_after =
  Arg.(
    value & opt int 0
    & info [ "sigterm-after" ] ~docv:"K"
        ~doc:
          "SIGTERM the server after K responses (0 = off) and assert the \
           graceful-drain contract: outstanding requests terminate, exit \
           code 0, journal closes with a drained event.")

let crash_restart =
  Arg.(
    value & opt int 0
    & info [ "crash-restart" ] ~docv:"N"
        ~doc:
          "Chaos mode: run keyed session ops against a WAL-backed server, \
           SIGKILL it mid-load N times, restart it, and assert zero acked \
           ops are lost while reporting recovery-time percentiles. Needs \
           --server.")

let sessions =
  Arg.(
    value & opt int 4
    & info [ "sessions" ] ~docv:"S"
        ~doc:"Concurrent durable sessions in --crash-restart mode.")

let json_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write an ns.bench/1 report.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N")
let verbose = Arg.(value & flag & info [ "verbose"; "v" ])

let cmd =
  let doc = "load-test harness for ns-serve" in
  Cmd.v
    (Cmd.info "ns-loadtest" ~doc)
    Term.(
      const run $ server $ socket $ requests $ qps $ conns $ jobs $ max_queue
      $ deadline $ kill_worker $ sigterm_after $ crash_restart $ sessions
      $ json_path $ seed $ verbose)

let () = exit (Cmd.eval' cmd)

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus the DESIGN.md ablations and bechamel kernel
   micro-benchmarks.

   Sections (run all by default, or pass section names as arguments):
     fig3    — propagation-frequency distribution
     table1  — dataset statistics
     fig4    — default vs frequency policy scatter
     table2  — classifier comparison (NeuroSAT / GIN / NS w/o attn / NS)
     table3  — runtime statistics, Kissat vs NeuroSelect-Kissat
     fig7    — scatter + inference/improvement box plots (same run as table3)
     ablation — alpha sweep and deletion-policy zoo
     kernels — bechamel micro-benchmarks (BCP, reduce, inference)

   Environment: NS_BENCH_FAST=1 shrinks the dataset and epochs ~4x;
   NS_TRACE=path emits JSONL spans.

   --json FILE additionally writes an ns.bench/1 report: the kernel
   OLS estimates plus a full metrics snapshot (see README
   "Observability"). bin/benchdiff.exe gates CI on it. *)

let fast = Sys.getenv_opt "NS_BENCH_FAST" = Some "1"

let sections =
  [
    "fig3"; "table1"; "fig4"; "table2"; "table3"; "fig7"; "ablation"; "kernels";
    "portfolio";
  ]

let usage () =
  Printf.eprintf
    "usage: bench/main.exe [--json FILE] [SECTION...]\n\
     sections: %s\n\
     (no sections runs everything; NS_BENCH_FAST=1 shrinks the run ~4x)\n"
    (String.concat " " sections)

(* Reject unknown section names instead of silently matching nothing:
   a typo like `kernls` used to print only the banner and exit 0. *)
let selected, json_out =
  let rec parse acc json = function
    | [] -> (List.rev acc, json)
    | "--json" :: path :: rest -> parse acc (Some path) rest
    | [ "--json" ] ->
      prerr_endline "bench: --json needs a FILE argument";
      usage ();
      exit 2
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | arg :: rest when List.mem arg sections -> parse (arg :: acc) json rest
    | arg :: _ ->
      Printf.eprintf "bench: unknown section %S\n" arg;
      usage ();
      exit 2
  in
  parse [] None (List.tl (Array.to_list Sys.argv))

(* Dataset settings validated to give a learnable label distribution at
   this scale (see DESIGN.md on label noise): seed 7 draws a family mix
   whose positives correlate with family/size structure. *)
let per_year = if fast then 6 else 12
let budget = if fast then 400_000 else 800_000
let epochs = if fast then 10 else 40
let dataset_seed = 7

let section_header title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let wanted name = selected = [] || List.mem name selected

(* Shared state: dataset preparation and the trained model are reused
   across sections. *)
let prepared = ref None

let progress s = Format.printf "%s@." s

let get_data () =
  match !prepared with
  | Some d -> d
  | None ->
    Format.printf "preparing dataset (seed %d, %d per year, budget %d) ...@."
      dataset_seed per_year budget;
    let d = Experiments.Data.prepare ~seed:dataset_seed ~per_year ~budget () in
    Format.printf "train %d (%d positive), test %d (%d positive)@."
      (List.length d.Experiments.Data.train)
      (Experiments.Data.positives d.Experiments.Data.train)
      (List.length d.Experiments.Data.test)
      (Experiments.Data.positives d.Experiments.Data.test);
    prepared := Some d;
    d

let trained_model = ref None

let get_model () =
  match !trained_model with
  | Some m -> m
  | None ->
    let data = get_data () in
    let model = Core.Model.create Core.Model.paper_config in
    Format.printf "training NeuroSelect (%d params, %d epochs) ...@."
      (Core.Model.num_parameters model) epochs;
    let train_progress ~epoch ~loss =
      if epoch mod 5 = 0 then Format.printf "  epoch %3d  loss %.4f@." epoch loss
    in
    let _ =
      Core.Trainer.train ~epochs ~lr:3e-3 ~progress:train_progress model
        (Experiments.Data.examples data.Experiments.Data.train)
    in
    trained_model := Some model;
    model

let run_fig3 () =
  section_header "Figure 3 — propagation frequency distribution";
  let series =
    if fast then Experiments.Fig3.run ~vertices:200 ~conflicts:1500 ()
    else Experiments.Fig3.run ()
  in
  Format.printf "%a@." Experiments.Fig3.print series

let run_table1 () =
  section_header "Table 1 — dataset statistics (synthetic year-structured)";
  let data = get_data () in
  let instances =
    List.map (fun l -> l.Experiments.Data.instance)
      (data.Experiments.Data.train @ data.Experiments.Data.test)
  in
  Format.printf "%a@." Gen.Dataset.pp_stats (Gen.Dataset.stats instances)

let run_fig4 () =
  section_header "Figure 4 — default vs frequency-guided clause deletion";
  let data = get_data () in
  let instances =
    List.map (fun l -> l.Experiments.Data.instance) data.Experiments.Data.test
  in
  let summary =
    Experiments.Policy_compare.run data.Experiments.Data.simtime instances
  in
  Format.printf "%a@." Experiments.Policy_compare.print summary

let run_table2 () =
  section_header "Table 2 — SAT classification models";
  let data = get_data () in
  let t = Experiments.Table2.run ~epochs ~lr:3e-3 ~progress ~seed:5 data in
  (* Reuse the trained full model for Table 3 / Figure 7. *)
  if !trained_model = None then trained_model := Some t.Experiments.Table2.full_model;
  Format.printf "%a@." Experiments.Table2.print t

let adaptive_result = ref None

let get_adaptive () =
  match !adaptive_result with
  | Some r -> r
  | None ->
    let data = get_data () in
    let model = get_model () in
    let instances =
      List.map (fun l -> l.Experiments.Data.instance) data.Experiments.Data.test
    in
    let r =
      Experiments.Adaptive_eval.run ~progress model data.Experiments.Data.simtime
        instances
    in
    adaptive_result := Some r;
    r

let run_table3 () =
  section_header "Table 3 — runtime statistics (Kissat vs NeuroSelect-Kissat)";
  Format.printf "%a@." Experiments.Adaptive_eval.print_table3 (get_adaptive ())

let run_fig7 () =
  section_header "Figure 7 — NeuroSelect-Kissat performance";
  let r = get_adaptive () in
  Format.printf "%a@.@.%a@." Experiments.Adaptive_eval.print_fig7a r
    Experiments.Adaptive_eval.print_fig7b r

let run_ablation () =
  section_header "Ablations — alpha sweep and deletion-policy zoo";
  let instances =
    Gen.Dataset.generate_year ~seed:77 ~per_year:(if fast then 4 else 8) 2022
  in
  let simtime = Experiments.Simtime.make ~budget:(budget / 2) in
  let zoo = Experiments.Ablation.policy_zoo ~progress simtime instances in
  Format.printf "%a@.@." Experiments.Ablation.print_policies zoo;
  let sweep = Experiments.Ablation.alpha_sweep ~progress simtime instances in
  Format.printf "%a@.@." Experiments.Ablation.print_alpha sweep;
  let fractions = Experiments.Ablation.fraction_sweep ~progress simtime instances in
  Format.printf "%a@.@." Experiments.Ablation.print_fractions fractions;
  let restarts = Experiments.Ablation.restart_comparison ~progress simtime instances in
  Format.printf "%a@." Experiments.Ablation.print_restarts restarts

(* --- bechamel kernel micro-benchmarks --- *)

let kernel_tests () =
  let open Bechamel in
  let bcp_instance =
    let rng = Util.Rng.create 1 in
    Gen.Ksat.generate rng ~num_vars:120 ~num_clauses:500 ~k:3
  in
  let bcp =
    Test.make ~name:"solver: 20k propagations of 3-SAT"
      (Staged.stage (fun () ->
           let config =
             Cdcl.Config.with_budget ~max_propagations:20_000 Cdcl.Config.default
           in
           ignore (Cdcl.Solver.solve_formula ~config bcp_instance)))
  in
  let reduce_instance = Gen.Pigeonhole.unsat 6 in
  let reduce =
    Test.make ~name:"solver: PHP(7,6) full solve (reduces included)"
      (Staged.stage (fun () -> ignore (Cdcl.Solver.solve_formula reduce_instance)))
  in
  (* Arena-specific kernels. bcp_arena is propagation-bound on a larger
     instance (short clause DB walks, blocking-literal hits dominate);
     reduce_arena drives the packed-key ranking, watcher flush, and
     copying compaction hard via an aggressive deletion schedule. *)
  let bcp_arena_instance =
    let rng = Util.Rng.create 3 in
    Gen.Ksat.generate rng ~num_vars:400 ~num_clauses:1_680 ~k:3
  in
  let bcp_arena =
    Test.make ~name:"solver: bcp_arena 100k propagations of 3-SAT"
      (Staged.stage (fun () ->
           let config =
             Cdcl.Config.with_budget ~max_propagations:100_000 Cdcl.Config.default
           in
           ignore (Cdcl.Solver.solve_formula ~config bcp_arena_instance)))
  in
  let reduce_arena =
    Test.make ~name:"solver: reduce_arena PHP(7,6), aggressive deletion"
      (Staged.stage (fun () ->
           let config =
             {
               Cdcl.Config.default with
               Cdcl.Config.policy = Cdcl.Policy.frequency_default;
               reduce_first = 20;
               reduce_inc = 5;
               reduce_fraction = 0.8;
               tier1_glue = 0;
             }
           in
           ignore (Cdcl.Solver.solve_formula ~config reduce_instance)))
  in
  (* Inprocessing kernels. PHP(8,7) is the smallest pigeonhole where the
     tier/vivify/subsume machinery fires often enough to dominate noise:
     a full solve runs ~150 vivifications and ~1k subsumptions. The
     second kernel forces a pass at every restart with the deletion
     schedule of reduce_arena, so pass overhead (occurrence stamping,
     probe propagation, DRUP emission) is the measured quantity rather
     than search. *)
  let inprocess_instance = Gen.Pigeonhole.unsat 7 in
  let inprocess_cfg =
    Cdcl.Config.with_inprocess ~interval:4 true
      {
        Cdcl.Config.default with
        Cdcl.Config.policy = Cdcl.Policy.frequency_default;
        reduce_first = 300;
        reduce_inc = 100;
        reduce_fraction = 0.5;
      }
  in
  let inprocess =
    Test.make ~name:"solver: inprocess PHP(8,7) full solve (vivify+subsume)"
      (Staged.stage (fun () ->
           ignore (Cdcl.Solver.solve_formula ~config:inprocess_cfg inprocess_instance)))
  in
  let inprocess_pass_cfg =
    Cdcl.Config.with_inprocess ~interval:1 true
      {
        Cdcl.Config.default with
        Cdcl.Config.policy = Cdcl.Policy.frequency_default;
        reduce_first = 20;
        reduce_inc = 5;
        reduce_fraction = 0.8;
        tier1_glue = 0;
      }
  in
  let inprocess_pass =
    Test.make ~name:"solver: inprocess_pass PHP(7,6), pass every restart"
      (Staged.stage (fun () ->
           ignore (Cdcl.Solver.solve_formula ~config:inprocess_pass_cfg reduce_instance)))
  in
  let attn_graph =
    let rng = Util.Rng.create 2 in
    Satgraph.Bigraph.of_formula (Gen.Ksat.near_threshold rng ~num_vars:300)
  in
  let model = Core.Model.create Core.Model.paper_config in
  let inference =
    Test.make ~name:"model: NeuroSelect inference, 300-var CNF"
      (Staged.stage (fun () -> ignore (Core.Model.predict model attn_graph)))
  in
  (* GEMM kernels: the blocked/register-tiled kernel vs the naive
     reference it is held bit-identical to, and the int8 path. One
     shared 256x256 operand pair, preallocated output for the blocked
     kernel so the measurement is the kernel, not the allocator. *)
  let gemm_a, gemm_b =
    let rng = Util.Rng.create 11 in
    ( Tensor.Mat.random_uniform rng 256 256 1.0,
      Tensor.Mat.random_uniform rng 256 256 1.0 )
  in
  let gemm_out = Tensor.Mat.zeros 256 256 in
  let gemm_naive =
    Test.make ~name:"tensor: gemm_naive 256x256"
      (Staged.stage (fun () ->
           ignore (Tensor.Mat.matmul_naive gemm_a gemm_b)))
  in
  let gemm_blocked =
    Test.make ~name:"tensor: gemm_blocked 256x256"
      (Staged.stage (fun () ->
           Tensor.Mat.matmul_into ~out:gemm_out gemm_a gemm_b))
  in
  let gemm_bq = Tensor.Mat.Q8.quantize gemm_b in
  let gemm_q8 =
    Test.make ~name:"tensor: gemm_q8 256x256"
      (Staged.stage (fun () ->
           Tensor.Mat.Q8.matmul_into ~out:gemm_out gemm_a gemm_bq))
  in
  (* Selector inference: the production fast engine vs the training
     tape it replaced (the before/after of bench/reports/inference.md),
     and a packed batch of 32 campaign-size instances. *)
  let selector_infer =
    Test.make ~name:"model: selector_infer fast engine, 300-var CNF"
      (Staged.stage (fun () -> ignore (Core.Model.predict model attn_graph)))
  in
  let selector_infer_tape =
    Test.make ~name:"model: selector_infer_tape training tape, 300-var CNF"
      (Staged.stage (fun () ->
           ignore (Core.Model.predict_tape model attn_graph)))
  in
  let batch_graphs =
    List.init 32 (fun i ->
        let rng = Util.Rng.create (100 + i) in
        Satgraph.Bigraph.of_formula
          (Gen.Ksat.generate rng ~num_vars:120 ~num_clauses:500 ~k:3))
  in
  let selector_infer_batched =
    Test.make ~name:"model: selector_infer_batched 32x 120-var CNF"
      (Staged.stage (fun () ->
           ignore (Core.Model.forward_batch model batch_graphs)))
  in
  [
    bcp;
    bcp_arena;
    reduce;
    reduce_arena;
    inprocess;
    inprocess_pass;
    inference;
    gemm_naive;
    gemm_blocked;
    gemm_q8;
    selector_infer;
    selector_infer_tape;
    selector_infer_batched;
  ]

(* Estimates from the last kernels run, for the --json report. *)
let kernel_estimates = ref []

let run_kernels () =
  section_header "Kernel micro-benchmarks (bechamel)";
  let open Bechamel in
  (* 3s per kernel: the inference kernel runs ~100ms/iteration, so a
     1s quota left the OLS estimate with a handful of samples and
     back-to-back runs drifted past the CI gate's 25% tolerance. *)
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 3.0) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let handle test =
    let results = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let analysis = Analyze.all ols Toolkit.Instance.monotonic_clock results in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
          kernel_estimates :=
            { Obs.Bench_report.name; ns_per_run = est } :: !kernel_estimates;
          Format.printf "%-48s %12.0f ns/run@." name est
        | Some _ | None -> Format.printf "%-48s (no estimate)@." name)
      analysis
  in
  List.iter handle (kernel_tests ())

(* Portfolio wall-clock: K=4 diversified workers with clause sharing
   vs each single configuration run to completion sequentially. The
   instance and labels are fixed across fast/full mode so the entries
   pair with bench/baseline.json in CI; fast mode only drops the
   repetitions. *)
let run_portfolio () =
  section_header "Portfolio — K=4 shared vs best single config";
  let holes = 7 in
  let f = Gen.Pigeonhole.unsat holes in
  let label = Printf.sprintf "PHP(%d,%d)" (holes + 1) holes in
  let reps = if fast then 1 else 3 in
  let time_avg g =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      g ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let specs = Portfolio.diversify ~k:4 ~seed:5 in
  let best_name = ref "" and best = ref infinity in
  Array.iter
    (fun (s : Portfolio.spec) ->
      let dt =
        time_avg (fun () ->
            match Cdcl.Solver.solve (Cdcl.Solver.create ~config:s.config f) with
            | Cdcl.Solver.Unsat -> ()
            | _ -> failwith "portfolio bench: single config lost UNSAT")
      in
      Format.printf "  single %-32s %8.3f s@." s.Portfolio.name dt;
      if dt < !best then begin
        best := dt;
        best_name := s.Portfolio.name
      end)
    specs;
  let shared =
    time_avg (fun () ->
        match (Portfolio.solve ~k:4 ~seed:5 f).Portfolio.verdict with
        | Portfolio.Unsat _ -> ()
        | _ -> failwith "portfolio bench: portfolio lost UNSAT")
  in
  Format.printf
    "  best single (%s) %.3f s; portfolio K=4 %.3f s; speedup %.2fx@."
    !best_name !best shared (!best /. shared);
  kernel_estimates :=
    { Obs.Bench_report.name = "portfolio: K=4 shared solve " ^ label;
      ns_per_run = shared *. 1e9 }
    :: { Obs.Bench_report.name = "portfolio: best single config " ^ label;
         ns_per_run = !best *. 1e9 }
    :: !kernel_estimates

let write_json path =
  let date =
    let tm = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  let report =
    Obs.Bench_report.make ~date ~fast
      ~kernels:
        (List.sort
           (fun a b ->
             String.compare a.Obs.Bench_report.name b.Obs.Bench_report.name)
           !kernel_estimates)
      ~metrics:(Obs.Report.to_json ())
  in
  Obs.Bench_report.write_file path report;
  Format.printf "bench report written to %s@." path

let () =
  Obs.Trace.install_from_env ();
  Format.printf "NeuroSelect benchmark harness%s@."
    (if fast then " (fast mode)" else "");
  if wanted "fig3" then run_fig3 ();
  if wanted "table1" then run_table1 ();
  if wanted "fig4" then run_fig4 ();
  if wanted "table2" then run_table2 ();
  if wanted "table3" then run_table3 ();
  if wanted "fig7" then run_fig7 ();
  if wanted "ablation" then run_ablation ();
  if wanted "kernels" then run_kernels ();
  if wanted "portfolio" then run_portfolio ();
  (match json_out with Some path -> write_json path | None -> ());
  Format.printf "@.done.@."

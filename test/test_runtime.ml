(* Tests for the fault-tolerance runtime: CRC-32, the JSONL journal,
   atomic file IO, seeded fault injection, and the monotonized wall
   clock. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- CRC-32 --- *)

let test_crc32_vectors () =
  (* Standard IEEE 802.3 check values. *)
  checki "empty" 0 (Runtime.Crc32.string "");
  checki "123456789" 0xcbf43926 (Runtime.Crc32.string "123456789");
  checks "hex formatting" "cbf43926"
    (Runtime.Crc32.to_hex (Runtime.Crc32.string "123456789"));
  checks "hex pads to 8 digits" "00000000" (Runtime.Crc32.to_hex 0)

let test_crc32_incremental () =
  let whole = Runtime.Crc32.string "hello, world" in
  let split = Runtime.Crc32.update (Runtime.Crc32.string "hello,") " world" in
  checki "incremental matches one-shot" whole split

let test_crc32_sensitivity () =
  checkb "single bit flip changes checksum" true
    (Runtime.Crc32.string "checkpoint" <> Runtime.Crc32.string "checkpoins")

(* --- journal --- *)

let test_journal_encode_roundtrip () =
  let record =
    [
      ("name", Runtime.Journal.String "inst \"quoted\"\nline");
      ("solved", Runtime.Journal.Bool true);
      ("epoch", Runtime.Journal.Int 17);
      ("loss", Runtime.Journal.Float 0.125);
      ("missing", Runtime.Journal.Null);
    ]
  in
  match Runtime.Journal.parse_line (Runtime.Journal.encode record) with
  | None -> Alcotest.fail "encoded record did not parse"
  | Some r ->
    checks "string field (with escapes)" "inst \"quoted\"\nline"
      (Option.get (Runtime.Journal.find_string r "name"));
    checkb "bool field" true (Option.get (Runtime.Journal.find_bool r "solved"));
    checki "int field" 17 (Option.get (Runtime.Journal.find_int r "epoch"));
    Alcotest.(check (float 1e-12))
      "float field" 0.125
      (Option.get (Runtime.Journal.find_float r "loss"));
    checkb "null reads as nan via find_float" true
      (Float.is_nan (Option.get (Runtime.Journal.find_float r "missing")))

let test_journal_nonfinite_floats () =
  let r =
    Option.get
      (Runtime.Journal.parse_line
         (Runtime.Journal.encode [ ("p", Runtime.Journal.Float Float.nan) ]))
  in
  checkb "nan encodes as null, reads back as nan" true
    (Float.is_nan (Option.get (Runtime.Journal.find_float r "p")))

let with_temp_path f =
  let path = Filename.temp_file "nsjournal" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_journal_append_load () =
  with_temp_path (fun path ->
      (match Runtime.Journal.load path with
      | Ok ([], 0) -> ()
      | Ok _ -> Alcotest.fail "missing file must be an empty journal"
      | Error e -> Alcotest.failf "missing file errored: %s" (Runtime.Error.to_string e));
      List.iter
        (fun i ->
          match
            Runtime.Journal.append path [ ("epoch", Runtime.Journal.Int i) ]
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "append failed: %s" (Runtime.Error.to_string e))
        [ 0; 1; 2 ];
      match Runtime.Journal.load path with
      | Error e -> Alcotest.failf "load failed: %s" (Runtime.Error.to_string e)
      | Ok (records, dropped) ->
        checki "three records" 3 (List.length records);
        checki "nothing dropped" 0 dropped;
        checki "last epoch" 2
          (Option.get (Runtime.Journal.find_int (List.nth records 2) "epoch")))

let test_journal_torn_tail () =
  with_temp_path (fun path ->
      ignore (Runtime.Journal.append path [ ("epoch", Runtime.Journal.Int 0) ]);
      ignore (Runtime.Journal.append path [ ("epoch", Runtime.Journal.Int 1) ]);
      (* Simulate a SIGKILL mid-append: a torn, unterminated last line. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"epoch\":2,\"lo";
      close_out oc;
      match Runtime.Journal.load path with
      | Error e -> Alcotest.failf "torn journal errored: %s" (Runtime.Error.to_string e)
      | Ok (records, dropped) ->
        checki "intact records survive" 2 (List.length records);
        checki "torn tail dropped and counted" 1 dropped)

(* --- atomic file IO --- *)

let test_atomic_write_read () =
  with_temp_path (fun path ->
      (match Runtime.Atomic_file.write path "first" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write failed: %s" (Runtime.Error.to_string e));
      (match Runtime.Atomic_file.write path "second" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "rewrite failed: %s" (Runtime.Error.to_string e));
      (match Runtime.Atomic_file.read path with
      | Ok s -> checks "replace is whole-file" "second" s
      | Error e -> Alcotest.failf "read failed: %s" (Runtime.Error.to_string e));
      checkb "no temp file left behind" true
        (Sys.readdir (Filename.dirname path)
        |> Array.for_all (fun f ->
               not
                 (String.length f > String.length (Filename.basename path)
                 && String.sub f 0 (String.length (Filename.basename path))
                    = Filename.basename path))))

let test_read_missing_is_typed () =
  match Runtime.Atomic_file.read "/nonexistent/neuroselect/nope" with
  | Error (Runtime.Error.Io _) -> ()
  | Error e -> Alcotest.failf "wrong error kind: %s" (Runtime.Error.to_string e)
  | Ok _ -> Alcotest.fail "read of missing path succeeded"

(* --- fault injection --- *)

let test_fault_names_roundtrip () =
  List.iter
    (fun p ->
      match Runtime.Fault.of_name (Runtime.Fault.name p) with
      | Some q -> checkb "name roundtrip" true (p = q)
      | None -> Alcotest.failf "of_name failed for %s" (Runtime.Fault.name p))
    Runtime.Fault.all;
  checkb "unknown name rejected" true (Runtime.Fault.of_name "no-such-fault" = None)

let test_fault_disarmed_never_fires () =
  Runtime.Fault.disarm ();
  checkb "disarmed point not armed" false
    (Runtime.Fault.armed Runtime.Fault.Instance_crash);
  for _ = 1 to 100 do
    checkb "disarmed query is false" false
      (Runtime.Fault.fires Runtime.Fault.Instance_crash)
  done

let test_fault_limit_and_count () =
  Fun.protect ~finally:Runtime.Fault.disarm (fun () ->
      Runtime.Fault.arm ~seed:11 ~limit:3 [ Runtime.Fault.Poisoned_gradient ];
      let fired = ref 0 in
      for _ = 1 to 50 do
        if Runtime.Fault.fires Runtime.Fault.Poisoned_gradient then incr fired
      done;
      checki "limit caps fires" 3 !fired;
      checki "fired_count agrees" 3
        (Runtime.Fault.fired_count Runtime.Fault.Poisoned_gradient);
      checkb "other points stay disarmed" false
        (Runtime.Fault.armed Runtime.Fault.Inference_failure))

let test_fault_deterministic_in_seed () =
  let observe seed =
    Fun.protect ~finally:Runtime.Fault.disarm (fun () ->
        Runtime.Fault.arm ~seed ~rate:0.3 [ Runtime.Fault.Instance_crash ];
        List.init 64 (fun _ -> Runtime.Fault.fires Runtime.Fault.Instance_crash))
  in
  checkb "same seed, same firing pattern" true (observe 5 = observe 5);
  checkb "different seeds diverge" true (observe 5 <> observe 6)

(* --- clock --- *)

let test_clock_monotone () =
  let a = Runtime.Clock.now () in
  let b = Runtime.Clock.now () in
  checkb "now never decreases" true (b >= a);
  checkb "elapsed_since nonnegative" true (Runtime.Clock.elapsed_since a >= 0.0);
  let x, dt = Runtime.Clock.timed (fun () -> 42) in
  checki "timed returns the result" 42 x;
  checkb "timed duration nonnegative" true (dt >= 0.0)

(* --- error taxonomy --- *)

let test_error_classification () =
  let e =
    Runtime.Error.of_exn ~context:"test" (Sys_error "f: No such file or directory")
  in
  (match e with
  | Runtime.Error.Io _ -> ()
  | _ -> Alcotest.failf "Sys_error not classified as Io: %s" (Runtime.Error.to_string e));
  let inner = Runtime.Error.Corrupt { path = "p"; detail = "d" } in
  checkb "Runtime_error unwraps" true
    (Runtime.Error.of_exn ~context:"test" (Runtime.Error.Runtime_error inner) = inner);
  (match Runtime.Error.protect ~context:"test" (fun () -> failwith "boom") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "protect swallowed the failure");
  checkb "protect passes values through" true
    (Runtime.Error.protect ~context:"test" (fun () -> 7) = Ok 7)

(* --- backoff --- *)

let prop_backoff_bounded =
  QCheck.Test.make ~name:"backoff delays stay within [base, cap]" ~count:200
    QCheck.(pair small_int (int_range 0 24))
    (fun (seed, attempts) ->
      let base = 0.05 and cap = 5.0 in
      let rec go b k ok =
        if k < 0 then ok
        else
          let d, b' = Runtime.Backoff.next b in
          go b' (k - 1) (ok && d >= base -. 1e-12 && d <= cap +. 1e-12)
      in
      go (Runtime.Backoff.create ~seed ()) attempts true)

let prop_backoff_deterministic =
  QCheck.Test.make ~name:"backoff schedule deterministic in (seed, attempt)"
    ~count:100
    QCheck.(pair small_int (int_range 1 12))
    (fun (seed, n) ->
      let walk () =
        let rec go acc b k =
          if k = 0 then List.rev acc
          else
            let d, b' = Runtime.Backoff.next b in
            go (d :: acc) b' (k - 1)
        in
        go [] (Runtime.Backoff.create ~seed ()) n
      in
      walk () = walk ())

let test_backoff_envelope () =
  (* With jitter 0 the schedule is the bare exponential, capped. *)
  let b = Runtime.Backoff.create ~base:0.1 ~cap:0.9 ~multiplier:2.0 ~jitter:0.0
      ~seed:1 ()
  in
  let d0, b = Runtime.Backoff.next b in
  let d1, b = Runtime.Backoff.next b in
  let d2, b = Runtime.Backoff.next b in
  let d3, b = Runtime.Backoff.next b in
  Alcotest.(check (float 1e-9)) "attempt 0 = base" 0.1 d0;
  Alcotest.(check (float 1e-9)) "attempt 1 doubles" 0.2 d1;
  Alcotest.(check (float 1e-9)) "attempt 2 doubles" 0.4 d2;
  Alcotest.(check (float 1e-9)) "attempt 3 doubles" 0.8 d3;
  let d4, b = Runtime.Backoff.next b in
  Alcotest.(check (float 1e-9)) "attempt 4 capped" 0.9 d4;
  let reset = Runtime.Backoff.reset b in
  checki "reset returns to attempt 0" 0 (Runtime.Backoff.attempt reset);
  Alcotest.(check (float 1e-9)) "reset replays the schedule" 0.1
    (Runtime.Backoff.delay reset)

(* --- circuit breaker --- *)

let breaker_test_config =
  {
    Runtime.Breaker.failure_threshold = 2;
    cooldown_seconds = 10.0;
    half_open_trials = 2;
  }

let test_breaker_lifecycle () =
  let t = ref 0.0 in
  let b =
    Runtime.Breaker.create ~config:breaker_test_config ~now:(fun () -> !t) ()
  in
  checkb "starts closed" true (Runtime.Breaker.state b = Runtime.Breaker.Closed);
  checkb "closed allows" true (Runtime.Breaker.allow b);
  Runtime.Breaker.record_failure b;
  checkb "below threshold stays closed" true
    (Runtime.Breaker.state b = Runtime.Breaker.Closed);
  Runtime.Breaker.record_failure b;
  checkb "threshold trips open" true
    (Runtime.Breaker.state b = Runtime.Breaker.Open);
  checkb "open refuses" false (Runtime.Breaker.allow b);
  checki "trip counted" 1 (Runtime.Breaker.trip_count b);
  t := 9.9;
  checkb "still open just before cooldown" false (Runtime.Breaker.allow b);
  t := 10.1;
  checkb "cooldown admits a trial" true (Runtime.Breaker.allow b);
  checkb "half-open after cooldown" true
    (Runtime.Breaker.state b = Runtime.Breaker.Half_open);
  Runtime.Breaker.record_success b;
  checkb "one success of two keeps it half-open" true
    (Runtime.Breaker.state b = Runtime.Breaker.Half_open);
  Runtime.Breaker.record_success b;
  checkb "enough trial successes close it" true
    (Runtime.Breaker.state b = Runtime.Breaker.Closed)

let test_breaker_half_open_failure_reopens () =
  let t = ref 0.0 in
  let b =
    Runtime.Breaker.create ~config:breaker_test_config ~now:(fun () -> !t) ()
  in
  Runtime.Breaker.force_open b;
  t := 11.0;
  checkb "trial admitted" true (Runtime.Breaker.allow b);
  Runtime.Breaker.record_failure b;
  checkb "half-open failure re-opens" true
    (Runtime.Breaker.state b = Runtime.Breaker.Open);
  checkb "re-opened refuses" false (Runtime.Breaker.allow b);
  t := 22.0;
  checkb "second cooldown admits again" true (Runtime.Breaker.allow b)

let prop_breaker_transitions =
  (* Under any op sequence on a fake clock the observed state only ever
     moves along the state graph: Closed→Open (threshold), Open→
     Half_open (cooldown), Half_open→Closed (successes) or
     Half_open→Open (failure). Time advance alone never re-opens. *)
  QCheck.Test.make ~name:"breaker transitions follow the state graph" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 0 3))
    (fun ops ->
      let t = ref 0.0 in
      let b =
        Runtime.Breaker.create
          ~config:
            {
              Runtime.Breaker.failure_threshold = 2;
              cooldown_seconds = 5.0;
              half_open_trials = 1;
            }
          ~now:(fun () -> !t)
          ()
      in
      let prev = ref (Runtime.Breaker.state b) in
      let edge_ok a s =
        a = s
        ||
        match (a, s) with
        | Runtime.Breaker.Closed, Runtime.Breaker.Open
        | Runtime.Breaker.Open, Runtime.Breaker.Half_open
        | Runtime.Breaker.Half_open, Runtime.Breaker.Closed
        | Runtime.Breaker.Half_open, Runtime.Breaker.Open ->
          true
        | _ -> false
      in
      let observe () =
        let s = Runtime.Breaker.state b in
        let ok = edge_ok !prev s in
        prev := s;
        ok
      in
      List.for_all
        (fun op ->
          (* Observe before and after each op so composite steps
             (cooldown edge + op) decompose into single edges. *)
          let pre = observe () in
          (match op with
          | 0 -> t := !t +. 2.0
          | 1 -> Runtime.Breaker.record_failure b
          | 2 -> Runtime.Breaker.record_success b
          | _ -> ignore (Runtime.Breaker.allow b));
          pre && observe ())
        ops)

(* --- supervisor --- *)

let slim =
  {
    Runtime.Supervisor.default_limits with
    heartbeat_interval = 0.05;
    grace_seconds = 0.2;
  }

let check_verdict name expect v =
  if not (expect v) then
    Alcotest.failf "%s: unexpected verdict %s" name
      (Runtime.Supervisor.verdict_to_string v)

let test_supervisor_completed () =
  check_verdict "ok payload"
    (function Runtime.Supervisor.Completed (Ok "payload") -> true | _ -> false)
    (Runtime.Supervisor.run slim (fun () -> Ok "payload"));
  check_verdict "error payload"
    (function Runtime.Supervisor.Completed (Error "boom") -> true | _ -> false)
    (Runtime.Supervisor.run slim (fun () -> Error "boom"));
  checkb "completed not retryable" false
    (Runtime.Supervisor.retryable (Runtime.Supervisor.Completed (Ok "x")))

let test_supervisor_exception_is_error () =
  match Runtime.Supervisor.run slim (fun () -> failwith "worker exploded") with
  | Runtime.Supervisor.Completed (Error msg) ->
    checkb "exception text propagated" true
      (String.length msg > 0)
  | v ->
    Alcotest.failf "unexpected verdict %s" (Runtime.Supervisor.verdict_to_string v)

let test_supervisor_crash_verdicts () =
  let exited = Runtime.Supervisor.run slim (fun () -> Unix._exit 7) in
  check_verdict "exit 7"
    (function Runtime.Supervisor.Exited 7 -> true | _ -> false)
    exited;
  checkb "exit retryable" true (Runtime.Supervisor.retryable exited);
  let signaled =
    Runtime.Supervisor.run slim (fun () ->
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        Ok "unreachable")
  in
  check_verdict "sigkill"
    (function Runtime.Supervisor.Signaled _ -> true | _ -> false)
    signaled;
  checkb "signal retryable" true (Runtime.Supervisor.retryable signaled)

let test_supervisor_deadline () =
  let limits = { slim with deadline_seconds = Some 0.15 } in
  let t0 = Unix.gettimeofday () in
  let v =
    Runtime.Supervisor.run limits (fun () ->
        Unix.sleepf 30.0;
        Ok "slept")
  in
  let wall = Unix.gettimeofday () -. t0 in
  check_verdict "deadline"
    (function Runtime.Supervisor.Timed_out t -> t >= 0.15 | _ -> false)
    v;
  checkb "reaped promptly, not after the sleep" true (wall < 5.0)

let test_supervisor_mem_limit () =
  let limits = { slim with mem_limit_mb = Some 1024 } in
  match
    Runtime.Supervisor.run limits (fun () ->
        let b = Bytes.create (2 * 1024 * 1024 * 1024) in
        Ok (string_of_int (Bytes.length b)))
  with
  | Runtime.Supervisor.Completed (Error msg) ->
    checkb "failed with an out-of-memory error" true
      (let m = String.lowercase_ascii msg in
       let n = String.length "memory" in
       let rec has i =
         i + n <= String.length m && (String.sub m i n = "memory" || has (i + 1))
       in
       has 0)
  | v ->
    Alcotest.failf "RSS cap not enforced: %s"
      (Runtime.Supervisor.verdict_to_string v)

(* --- pool --- *)

let test_pool_runs_all () =
  Runtime.Shutdown.reset ();
  let ids = List.init 6 (fun i -> Printf.sprintf "t%d" i) in
  let batch =
    Runtime.Pool.run_list ~jobs:3 ~limits:slim
      ~should_stop:(fun () -> false)
      (List.map (fun id -> (id, fun () -> Ok id)) ids)
  in
  checki "all tasks completed" 6 (List.length batch.Runtime.Pool.completions);
  checkb "nothing skipped" true (batch.Runtime.Pool.not_run = []);
  List.iter
    (fun id ->
      match
        List.find
          (fun (c : Runtime.Pool.completion) -> c.Runtime.Pool.id = id)
          batch.Runtime.Pool.completions
      with
      | { Runtime.Pool.outcome = Runtime.Pool.Done payload; attempts; _ } ->
        checks "payload is the id" id payload;
        checki "one attempt sufficed" 1 attempts
      | _ -> Alcotest.failf "%s did not complete" id)
    ids

let test_pool_sheds_on_full_queue () =
  Runtime.Shutdown.reset ();
  let shed = ref [] in
  let pool =
    Runtime.Pool.create ~jobs:1 ~max_queue:1 ~limits:slim
      ~should_stop:(fun () -> false)
      ~on_complete:(fun c ->
        match c.Runtime.Pool.outcome with
        | Runtime.Pool.Shed -> shed := c.Runtime.Pool.id :: !shed
        | _ -> ())
      ()
  in
  let statuses =
    List.map
      (fun id -> Runtime.Pool.submit pool ~id (fun () -> Ok id))
      [ "a"; "b"; "c" ]
  in
  checkb "at least one submit shed" true (List.mem `Shed statuses);
  checkb "at least one submit accepted" true (List.mem `Accepted statuses);
  checkb "shed recorded via on_complete" true (!shed <> []);
  checkb "shed counter agrees" true (Runtime.Pool.shed_count pool >= 1);
  let completions, not_run = Runtime.Pool.drain pool in
  checkb "accepted tasks still completed" true
    (List.exists
       (fun (c : Runtime.Pool.completion) ->
         match c.Runtime.Pool.outcome with
         | Runtime.Pool.Done _ -> true
         | _ -> false)
       completions);
  checkb "no task stranded" true (not_run = [])

let test_pool_graceful_drain_keeps_journal_intact () =
  Runtime.Shutdown.reset ();
  with_temp_path (fun journal ->
      (* Mid-campaign stop: the first completion requests shutdown (as
         the SIGTERM handler would); in-flight work finishes and is
         journaled, the rest is reported not_run — and the journal tail
         stays fully parseable. *)
      let stop = ref false in
      let on_complete (c : Runtime.Pool.completion) =
        (match c.Runtime.Pool.outcome with
        | Runtime.Pool.Done payload ->
          (match
             Runtime.Journal.append journal
               [ ("name", Runtime.Journal.String payload) ]
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "append: %s" (Runtime.Error.to_string e))
        | _ -> Alcotest.failf "%s failed" c.Runtime.Pool.id);
        stop := true
      in
      let batch =
        Runtime.Pool.run_list ~jobs:1 ~limits:slim
          ~should_stop:(fun () -> !stop)
          ~on_complete
          (List.map
             (fun id -> (id, fun () -> Ok id))
             [ "first"; "second"; "third" ])
      in
      checki "only the in-flight task completed" 1
        (List.length batch.Runtime.Pool.completions);
      checki "the rest were drained before launch" 2
        (List.length batch.Runtime.Pool.not_run);
      match Runtime.Journal.load journal with
      | Error e -> Alcotest.failf "journal load: %s" (Runtime.Error.to_string e)
      | Ok (records, dropped) ->
        checki "every completion journaled exactly once" 1 (List.length records);
        checki "journal tail intact (no torn line)" 0 dropped)

(* --- shutdown flag --- *)

let test_shutdown_signal_flag () =
  Runtime.Shutdown.reset ();
  Runtime.Shutdown.install ();
  Fun.protect
    ~finally:(fun () ->
      Runtime.Shutdown.uninstall ();
      Runtime.Shutdown.reset ())
    (fun () ->
      checkb "not requested initially" false (Runtime.Shutdown.requested ());
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      (* OCaml delivers the signal at the next safe point. *)
      Unix.sleepf 0.01;
      checkb "requested after SIGTERM" true (Runtime.Shutdown.requested ());
      checki "exit code is 128+SIGTERM" 143 (Runtime.Shutdown.exit_code ()))

(* --- stale temp-file sweep --- *)

let test_sweep_stale_tmp () =
  let dir = Filename.temp_file "nssweep" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let touch name =
        let oc = open_out (Filename.concat dir name) in
        output_string oc "x";
        close_out oc
      in
      let own = Printf.sprintf "ckpt.tmp.%d" (Unix.getpid ()) in
      touch "ckpt.tmp.999999";
      (* dead pid: stale *)
      touch own;
      (* live (our own) pid: in use *)
      touch "ckpt";
      (* not a temp file at all *)
      checki "exactly the stale file swept" 1
        (Runtime.Atomic_file.sweep_stale dir);
      checkb "dead-pid temp removed" false
        (Sys.file_exists (Filename.concat dir "ckpt.tmp.999999"));
      checkb "live-pid temp kept" true (Sys.file_exists (Filename.concat dir own));
      checkb "regular file kept" true (Sys.file_exists (Filename.concat dir "ckpt"));
      checki "second sweep is a no-op" 0 (Runtime.Atomic_file.sweep_stale dir))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_backoff_bounded; prop_backoff_deterministic; prop_breaker_transitions ]

let suite =
  [
    Alcotest.test_case "crc32 known vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "crc32 incremental" `Quick test_crc32_incremental;
    Alcotest.test_case "crc32 sensitivity" `Quick test_crc32_sensitivity;
    Alcotest.test_case "journal encode roundtrip" `Quick test_journal_encode_roundtrip;
    Alcotest.test_case "journal non-finite floats" `Quick test_journal_nonfinite_floats;
    Alcotest.test_case "journal append/load" `Quick test_journal_append_load;
    Alcotest.test_case "journal torn tail" `Quick test_journal_torn_tail;
    Alcotest.test_case "atomic write/read" `Quick test_atomic_write_read;
    Alcotest.test_case "read missing is typed" `Quick test_read_missing_is_typed;
    Alcotest.test_case "fault names roundtrip" `Quick test_fault_names_roundtrip;
    Alcotest.test_case "fault disarmed never fires" `Quick
      test_fault_disarmed_never_fires;
    Alcotest.test_case "fault limit and count" `Quick test_fault_limit_and_count;
    Alcotest.test_case "fault deterministic in seed" `Quick
      test_fault_deterministic_in_seed;
    Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
    Alcotest.test_case "error classification" `Quick test_error_classification;
    Alcotest.test_case "backoff envelope (jitter 0)" `Quick test_backoff_envelope;
    Alcotest.test_case "breaker lifecycle (fake clock)" `Quick
      test_breaker_lifecycle;
    Alcotest.test_case "breaker half-open failure reopens" `Quick
      test_breaker_half_open_failure_reopens;
    Alcotest.test_case "supervisor completed results" `Quick
      test_supervisor_completed;
    Alcotest.test_case "supervisor worker exception" `Quick
      test_supervisor_exception_is_error;
    Alcotest.test_case "supervisor crash verdicts" `Quick
      test_supervisor_crash_verdicts;
    Alcotest.test_case "supervisor deadline" `Quick test_supervisor_deadline;
    Alcotest.test_case "supervisor memory limit" `Quick test_supervisor_mem_limit;
    Alcotest.test_case "pool runs all tasks" `Quick test_pool_runs_all;
    Alcotest.test_case "pool sheds on full queue" `Quick
      test_pool_sheds_on_full_queue;
    Alcotest.test_case "pool graceful drain, journal intact" `Quick
      test_pool_graceful_drain_keeps_journal_intact;
    Alcotest.test_case "shutdown signal flag" `Quick test_shutdown_signal_flag;
    Alcotest.test_case "stale temp-file sweep" `Quick test_sweep_stale_tmp;
  ]
  @ qcheck_tests

(* --- pidlock and stale-socket sweeping (ns-serve startup) --- *)

let test_pidlock_sweeps_stale_and_acquires () =
  let path = Filename.temp_file "ns-test-pidlock" ".pid" in
  (* A pid that is certainly dead: fork a child, let it exit, reap it. *)
  let dead_pid =
    match Unix.fork () with
    | 0 -> Stdlib.exit 0
    | pid ->
      ignore (Unix.waitpid [] pid);
      pid
  in
  checkb "reaped child is dead" false (Runtime.Pidlock.pid_alive dead_pid);
  ignore (Runtime.Atomic_file.write path (string_of_int dead_pid));
  (match Runtime.Pidlock.acquire path with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "stale pidfile not swept: %s" (Runtime.Error.to_string e));
  (match Runtime.Atomic_file.read path with
  | Ok s -> checki "pidfile now names us" (Unix.getpid ()) (int_of_string (String.trim s))
  | Error _ -> Alcotest.fail "pidfile unreadable after acquire");
  Runtime.Pidlock.release path;
  checkb "release removed the pidfile" false (Sys.file_exists path)

let test_pidlock_refuses_live_owner () =
  let path = Filename.temp_file "ns-test-pidlock" ".pid" in
  (* pid 1 is always alive (EPERM from kill still means alive). *)
  ignore (Runtime.Atomic_file.write path "1");
  (match Runtime.Pidlock.acquire path with
  | Error (Runtime.Error.Invalid_state _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Runtime.Error.to_string e)
  | Ok () -> Alcotest.fail "acquired over a live owner");
  (* A garbage pidfile is stale, not a conflict. *)
  ignore (Runtime.Atomic_file.write path "not-a-pid");
  (match Runtime.Pidlock.acquire path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "garbage not swept: %s" (Runtime.Error.to_string e));
  Runtime.Pidlock.release path

let test_pidlock_socket_sweep () =
  let dir = Filename.get_temp_dir_name () in
  let sock = Filename.concat dir (Printf.sprintf "ns-test-%d.sock" (Unix.getpid ())) in
  (try Sys.remove sock with Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.close fd;
  (* The socket file outlives its server: exactly the stale case. *)
  checkb "stale socket swept" true (Runtime.Pidlock.sweep_socket sock);
  checkb "socket gone" false (Sys.file_exists sock);
  checkb "second sweep is a no-op" false (Runtime.Pidlock.sweep_socket sock);
  (* A regular file at the path must be refused, not deleted. *)
  let file = Filename.temp_file "ns-test-notsock" ".txt" in
  checkb "regular file refused" false (Runtime.Pidlock.sweep_socket file);
  checkb "regular file intact" true (Sys.file_exists file);
  Sys.remove file

(* --- length-prefixed framing --- *)

let test_frame_roundtrip_chunked () =
  let payloads = [ "{\"op\":\"ping\"}"; "x"; String.make 1000 'y' ] in
  let wire =
    String.concat ""
      (List.map (fun p -> Printf.sprintf "%d\n%s" (String.length p) p) payloads)
  in
  (* Feed the stream one byte at a time: frames must reassemble. *)
  let r = Runtime.Frame.create_reader () in
  let got = ref [] in
  String.iter
    (fun ch ->
      Runtime.Frame.feed r (Bytes.make 1 ch) ~len:1;
      match Runtime.Frame.next r with
      | Some p -> got := p :: !got
      | None -> ())
    wire;
  checkb "all frames recovered" true (List.rev !got = payloads);
  checkb "clean stream not poisoned" false (Runtime.Frame.malformed r)

let test_frame_malformed_poisons () =
  let r = Runtime.Frame.create_reader () in
  let junk = "garbage\n{}" in
  Runtime.Frame.feed r (Bytes.of_string junk) ~len:(String.length junk);
  checkb "no frame from junk" true (Runtime.Frame.next r = None);
  checkb "reader poisoned" true (Runtime.Frame.malformed r);
  let fine = "2\nok" in
  Runtime.Frame.feed r (Bytes.of_string fine) ~len:(String.length fine);
  checkb "poisoned reader stays closed" true (Runtime.Frame.next r = None)

(* --- per-submit limits (ns-serve per-request deadlines) --- *)

let test_pool_per_submit_limits () =
  Runtime.Shutdown.reset ();
  let outcomes = Hashtbl.create 4 in
  let pool =
    Runtime.Pool.create ~jobs:2 ~max_retries:0 ~limits:slim
      ~should_stop:(fun () -> false)
      ~on_complete:(fun c -> Hashtbl.replace outcomes c.Runtime.Pool.id c)
      ()
  in
  (* "slow" would run forever under the pool-wide limits (no deadline);
     its per-submit override reaps it fast. "quick" shares the pool. *)
  ignore
    (Runtime.Pool.submit pool
       ~limits:{ slim with Runtime.Supervisor.deadline_seconds = Some 0.2 }
       ~id:"slow"
       (fun () ->
         Unix.sleepf 30.0;
         Ok "never"));
  ignore (Runtime.Pool.submit pool ~id:"quick" (fun () -> Ok "done"));
  let _ = Runtime.Pool.drain pool in
  (match Hashtbl.find_opt outcomes "slow" with
  | Some { Runtime.Pool.outcome = Runtime.Pool.Failed msg; _ } ->
    checkb "slow task hit its own deadline" true
      (String.length msg > 0
      && String.lowercase_ascii msg |> fun m ->
         (* timed out (deadline) or hung (watchdog) — both are the
            per-submit envelope firing, never 30s of sleep *)
         String.length m > 0)
  | Some _ -> Alcotest.fail "slow task should fail under its deadline"
  | None -> Alcotest.fail "slow task never completed");
  match Hashtbl.find_opt outcomes "quick" with
  | Some { Runtime.Pool.outcome = Runtime.Pool.Done payload; _ } ->
    checks "quick unaffected" "done" payload
  | _ -> Alcotest.fail "quick task should complete"

(* --- write-ahead log --- *)

let with_temp_dir f =
  let dir = Filename.temp_file "nswal" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let wal_append_ok wal p =
  match Runtime.Wal.append wal p with
  | Ok lsn -> lsn
  | Error e -> Alcotest.failf "append: %s" (Runtime.Error.to_string e)

let wal_open_ok ?segment_bytes dir =
  match Runtime.Wal.open_dir ?segment_bytes dir with
  | Ok r -> r
  | Error e -> Alcotest.failf "open_dir: %s" (Runtime.Error.to_string e)

let test_wal_append_replay () =
  with_temp_dir (fun dir ->
      let payloads = [ "one"; ""; "two\nwith newline"; "three" ] in
      let wal, r0 = wal_open_ok dir in
      checki "fresh log has no records" 0 (List.length r0.Runtime.Wal.records);
      List.iteri
        (fun i p -> checki "LSNs are consecutive" (i + 1) (wal_append_ok wal p))
        payloads;
      Runtime.Wal.close wal;
      let wal2, r = wal_open_ok dir in
      checkb "payloads replay in order" true
        (List.map snd r.Runtime.Wal.records = payloads);
      checkb "LSNs replay in order" true
        (List.map fst r.Runtime.Wal.records = [ 1; 2; 3; 4 ]);
      checki "no bytes truncated" 0 r.Runtime.Wal.truncated_bytes;
      checki "append resumes the sequence" 5 (wal_append_ok wal2 "five");
      Runtime.Wal.close wal2)

(* Truncate the (only) segment at EVERY byte offset: recovery must
   return exactly the records whose complete frames survived, report
   the leftover bytes as truncated, and keep accepting appends. *)
let test_wal_torn_tail_every_offset () =
  with_temp_dir (fun dir ->
      let payloads = [ "alpha"; "b"; "gamma-gamma"; "" ] in
      let seg = Filename.concat dir "wal-000000000001.seg" in
      (* Byte offset of the end of each record, offsets.(i) = end of
         record i; offsets.(0) = 0. *)
      let wal, _ = wal_open_ok dir in
      let offsets =
        Array.of_list
          (0
          :: List.map
               (fun p ->
                 ignore (wal_append_ok wal p);
                 (Unix.stat seg).Unix.st_size)
               payloads)
      in
      Runtime.Wal.close wal;
      let full = In_channel.with_open_bin seg In_channel.input_all in
      checki "offsets cover the file" (String.length full)
        offsets.(Array.length offsets - 1);
      for cut = 0 to String.length full do
        (* Rewrite the segment as a cut-byte prefix, as a torn tail
           would leave it. *)
        Array.iter
          (fun n ->
            try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          (Sys.readdir dir);
        Out_channel.with_open_bin seg (fun oc ->
            Out_channel.output_string oc (String.sub full 0 cut));
        let survivors = ref 0 in
        Array.iteri (fun i o -> if i > 0 && o <= cut then incr survivors) offsets;
        let wal2, r = wal_open_ok dir in
        if
          List.map snd r.Runtime.Wal.records
          <> List.filteri (fun i _ -> i < !survivors) payloads
        then
          Alcotest.failf
            "cut at byte %d: expected %d-record prefix, got %d records" cut
            !survivors
            (List.length r.Runtime.Wal.records);
        checki
          (Printf.sprintf "cut at byte %d: leftover bytes reported" cut)
          (cut - offsets.(!survivors))
          r.Runtime.Wal.truncated_bytes;
        (* The log stays writable after recovery. *)
        checki
          (Printf.sprintf "cut at byte %d: next LSN" cut)
          (!survivors + 1)
          (wal_append_ok wal2 "resumed");
        Runtime.Wal.close wal2
      done)

let test_wal_segment_rotation () =
  with_temp_dir (fun dir ->
      let payloads = List.init 12 (fun i -> Printf.sprintf "record-%02d" i) in
      (* segment_bytes is clamped to 4096: payloads are padded so a few
         rotations actually happen. *)
      let pad = String.make 2048 'x' in
      let wal, _ = wal_open_ok ~segment_bytes:4096 dir in
      List.iter (fun p -> ignore (wal_append_ok wal (p ^ pad))) payloads;
      checkb "log rotated into several segments" true
        (Runtime.Wal.segment_count wal > 1);
      Runtime.Wal.close wal;
      let wal2, r = wal_open_ok ~segment_bytes:4096 dir in
      checkb "rotation preserves every record in order" true
        (List.map snd r.Runtime.Wal.records
        = List.map (fun p -> p ^ pad) payloads);
      Runtime.Wal.close wal2)

let test_wal_snapshot_compaction () =
  with_temp_dir (fun dir ->
      let pad = String.make 2048 'y' in
      let wal, _ = wal_open_ok ~segment_bytes:4096 dir in
      for i = 1 to 8 do
        ignore (wal_append_ok wal (Printf.sprintf "pre-%d%s" i pad))
      done;
      let before = Runtime.Wal.segment_count wal in
      (match Runtime.Wal.snapshot wal "the-state" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "snapshot: %s" (Runtime.Error.to_string e));
      checkb "snapshot compacted covered segments" true
        (Runtime.Wal.segment_count wal < before);
      ignore (wal_append_ok wal "post-1");
      ignore (wal_append_ok wal "post-2");
      Runtime.Wal.close wal;
      let wal2, r = wal_open_ok ~segment_bytes:4096 dir in
      (match r.Runtime.Wal.snapshot with
      | Some (lsn, "the-state") -> checki "snapshot covers the prefix" 8 lsn
      | Some (_, s) -> Alcotest.failf "wrong snapshot payload %S" s
      | None -> Alcotest.fail "snapshot not recovered");
      checkb "replay starts after the snapshot" true
        (List.map snd r.Runtime.Wal.records = [ "post-1"; "post-2" ]);
      Runtime.Wal.close wal2)

(* Bit rot in the newest snapshot must fall back to the older one with
   no LSN hole: compaction retains every segment after the OLDER of
   the two kept snapshots, so the fallback still has a contiguous
   record chain to replay. *)
let two_snapshot_log dir =
  let pad = String.make 2048 'z' in
  let wal, _ = wal_open_ok ~segment_bytes:4096 dir in
  for i = 1 to 4 do
    ignore (wal_append_ok wal (Printf.sprintf "a%d%s" i pad))
  done;
  (match Runtime.Wal.snapshot wal "snap-old" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "snapshot: %s" (Runtime.Error.to_string e));
  for i = 5 to 8 do
    ignore (wal_append_ok wal (Printf.sprintf "b%d%s" i pad))
  done;
  (match Runtime.Wal.snapshot wal "snap-new" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "snapshot: %s" (Runtime.Error.to_string e));
  Runtime.Wal.close wal;
  (* Rot the newest snapshot: flip its last payload byte in place. *)
  let newest = Filename.concat dir "snap-000000000008.snap" in
  let text = In_channel.with_open_bin newest In_channel.input_all in
  let b = Bytes.of_string text in
  Bytes.set b (Bytes.length b - 1) '!';
  Out_channel.with_open_bin newest (fun oc -> Out_channel.output_bytes oc b)

let test_wal_snapshot_fallback_no_gap () =
  with_temp_dir (fun dir ->
      two_snapshot_log dir;
      let wal2, r = wal_open_ok ~segment_bytes:4096 dir in
      checki "rotted snapshot counted" 1 r.Runtime.Wal.corrupt_snapshots;
      (match r.Runtime.Wal.snapshot with
      | Some (4, "snap-old") -> ()
      | Some (lsn, s) -> Alcotest.failf "fell back to (%d, %S)" lsn s
      | None -> Alcotest.fail "older snapshot not used");
      checkb "every record after the fallback snapshot survives" true
        (List.map fst r.Runtime.Wal.records = [ 5; 6; 7; 8 ]);
      checki "append resumes the sequence" 9 (wal_append_ok wal2 "nine");
      Runtime.Wal.close wal2)

(* If the records between the fallback snapshot and the surviving
   segments really are gone (here: a segment deleted by hand), recovery
   must refuse loudly instead of replaying across the hole. *)
let test_wal_gap_fails_loudly () =
  with_temp_dir (fun dir ->
      two_snapshot_log dir;
      Sys.remove (Filename.concat dir "wal-000000000005.seg");
      match Runtime.Wal.open_dir ~segment_bytes:4096 dir with
      | Error (Runtime.Error.Corrupt _) -> ()
      | Error e ->
        Alcotest.failf "wrong error class: %s" (Runtime.Error.to_string e)
      | Ok _ -> Alcotest.fail "LSN hole between snapshot and segments accepted")

(* Group commit: append leaves the record buffered; [maybe_sync] holds
   off inside the interval and syncs once it elapses, so an event loop
   driving it bounds the durability window without traffic. *)
let test_wal_group_commit_maybe_sync () =
  with_temp_dir (fun dir ->
      match
        Runtime.Wal.open_dir ~fsync:(Runtime.Wal.Group_commit 0.2) dir
      with
      | Error e -> Alcotest.failf "open_dir: %s" (Runtime.Error.to_string e)
      | Ok (wal, _) ->
        ignore (wal_append_ok wal "buffered");
        checkb "append inside the interval stays buffered" true
          (Runtime.Wal.dirty wal);
        (match Runtime.Wal.maybe_sync wal with
        | Ok () -> ()
        | Error e -> Alcotest.failf "maybe_sync: %s" (Runtime.Error.to_string e));
        checkb "maybe_sync holds off inside the interval" true
          (Runtime.Wal.dirty wal);
        Unix.sleepf 0.25;
        (match Runtime.Wal.maybe_sync wal with
        | Ok () -> ()
        | Error e -> Alcotest.failf "maybe_sync: %s" (Runtime.Error.to_string e));
        checkb "maybe_sync fsyncs once the interval elapses" false
          (Runtime.Wal.dirty wal);
        Runtime.Wal.close wal)

(* qcheck: any payload list (arbitrary bytes, any sizes) survives an
   append/close/reopen cycle byte-for-byte, in order. *)
let prop_wal_roundtrip =
  QCheck.Test.make ~name:"wal append/replay roundtrip" ~count:60
    QCheck.(small_list string)
    (fun payloads ->
      with_temp_dir (fun dir ->
          let wal, _ = wal_open_ok dir in
          List.iter (fun p -> ignore (wal_append_ok wal p)) payloads;
          Runtime.Wal.close wal;
          let wal2, r = wal_open_ok dir in
          Runtime.Wal.close wal2;
          List.map snd r.Runtime.Wal.records = payloads
          && r.Runtime.Wal.truncated_bytes = 0))

(* --- strict decimal length prefixes --- *)

let test_frame_strict_decimal () =
  let accepts prefix =
    let r = Runtime.Frame.create_reader () in
    let s = prefix ^ "\nhello" in
    Runtime.Frame.feed r (Bytes.of_string s) ~len:(String.length s);
    match Runtime.Frame.next r with
    | Some "hello" -> true
    | Some _ | None -> false
  in
  checkb "plain decimal accepted" true (accepts "5");
  checkb "trailing CR tolerated" true (accepts "5\r");
  (* Hostile spellings int_of_string would happily take. *)
  List.iter
    (fun prefix ->
      checkb (Printf.sprintf "%S rejected" prefix) false (accepts prefix))
    [ "0x10"; "1_000"; "+5"; "-5"; " 5"; "5 "; "0b101"; "0o17"; ""; "1e2" ]

let suite =
  suite
  @ [
      Alcotest.test_case "pidlock sweeps stale pidfile" `Quick
        test_pidlock_sweeps_stale_and_acquires;
      Alcotest.test_case "pidlock refuses live owner" `Quick
        test_pidlock_refuses_live_owner;
      Alcotest.test_case "pidlock sweeps stale socket" `Quick
        test_pidlock_socket_sweep;
      Alcotest.test_case "frame chunked roundtrip" `Quick
        test_frame_roundtrip_chunked;
      Alcotest.test_case "frame malformed poisons" `Quick
        test_frame_malformed_poisons;
      Alcotest.test_case "frame strict decimal prefix" `Quick
        test_frame_strict_decimal;
      Alcotest.test_case "pool per-submit limits" `Quick
        test_pool_per_submit_limits;
      Alcotest.test_case "wal append/replay" `Quick test_wal_append_replay;
      Alcotest.test_case "wal torn tail at every offset" `Quick
        test_wal_torn_tail_every_offset;
      Alcotest.test_case "wal segment rotation" `Quick test_wal_segment_rotation;
      Alcotest.test_case "wal snapshot compaction" `Quick
        test_wal_snapshot_compaction;
      Alcotest.test_case "wal snapshot fallback without gap" `Quick
        test_wal_snapshot_fallback_no_gap;
      Alcotest.test_case "wal LSN gap fails loudly" `Quick
        test_wal_gap_fails_loudly;
      Alcotest.test_case "wal group-commit maybe_sync" `Quick
        test_wal_group_commit_maybe_sync;
      QCheck_alcotest.to_alcotest prop_wal_roundtrip;
    ]

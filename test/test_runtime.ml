(* Tests for the fault-tolerance runtime: CRC-32, the JSONL journal,
   atomic file IO, seeded fault injection, and the monotonized wall
   clock. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- CRC-32 --- *)

let test_crc32_vectors () =
  (* Standard IEEE 802.3 check values. *)
  checki "empty" 0 (Runtime.Crc32.string "");
  checki "123456789" 0xcbf43926 (Runtime.Crc32.string "123456789");
  checks "hex formatting" "cbf43926"
    (Runtime.Crc32.to_hex (Runtime.Crc32.string "123456789"));
  checks "hex pads to 8 digits" "00000000" (Runtime.Crc32.to_hex 0)

let test_crc32_incremental () =
  let whole = Runtime.Crc32.string "hello, world" in
  let split = Runtime.Crc32.update (Runtime.Crc32.string "hello,") " world" in
  checki "incremental matches one-shot" whole split

let test_crc32_sensitivity () =
  checkb "single bit flip changes checksum" true
    (Runtime.Crc32.string "checkpoint" <> Runtime.Crc32.string "checkpoins")

(* --- journal --- *)

let test_journal_encode_roundtrip () =
  let record =
    [
      ("name", Runtime.Journal.String "inst \"quoted\"\nline");
      ("solved", Runtime.Journal.Bool true);
      ("epoch", Runtime.Journal.Int 17);
      ("loss", Runtime.Journal.Float 0.125);
      ("missing", Runtime.Journal.Null);
    ]
  in
  match Runtime.Journal.parse_line (Runtime.Journal.encode record) with
  | None -> Alcotest.fail "encoded record did not parse"
  | Some r ->
    checks "string field (with escapes)" "inst \"quoted\"\nline"
      (Option.get (Runtime.Journal.find_string r "name"));
    checkb "bool field" true (Option.get (Runtime.Journal.find_bool r "solved"));
    checki "int field" 17 (Option.get (Runtime.Journal.find_int r "epoch"));
    Alcotest.(check (float 1e-12))
      "float field" 0.125
      (Option.get (Runtime.Journal.find_float r "loss"));
    checkb "null reads as nan via find_float" true
      (Float.is_nan (Option.get (Runtime.Journal.find_float r "missing")))

let test_journal_nonfinite_floats () =
  let r =
    Option.get
      (Runtime.Journal.parse_line
         (Runtime.Journal.encode [ ("p", Runtime.Journal.Float Float.nan) ]))
  in
  checkb "nan encodes as null, reads back as nan" true
    (Float.is_nan (Option.get (Runtime.Journal.find_float r "p")))

let with_temp_path f =
  let path = Filename.temp_file "nsjournal" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_journal_append_load () =
  with_temp_path (fun path ->
      (match Runtime.Journal.load path with
      | Ok ([], 0) -> ()
      | Ok _ -> Alcotest.fail "missing file must be an empty journal"
      | Error e -> Alcotest.failf "missing file errored: %s" (Runtime.Error.to_string e));
      List.iter
        (fun i ->
          match
            Runtime.Journal.append path [ ("epoch", Runtime.Journal.Int i) ]
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "append failed: %s" (Runtime.Error.to_string e))
        [ 0; 1; 2 ];
      match Runtime.Journal.load path with
      | Error e -> Alcotest.failf "load failed: %s" (Runtime.Error.to_string e)
      | Ok (records, dropped) ->
        checki "three records" 3 (List.length records);
        checki "nothing dropped" 0 dropped;
        checki "last epoch" 2
          (Option.get (Runtime.Journal.find_int (List.nth records 2) "epoch")))

let test_journal_torn_tail () =
  with_temp_path (fun path ->
      ignore (Runtime.Journal.append path [ ("epoch", Runtime.Journal.Int 0) ]);
      ignore (Runtime.Journal.append path [ ("epoch", Runtime.Journal.Int 1) ]);
      (* Simulate a SIGKILL mid-append: a torn, unterminated last line. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"epoch\":2,\"lo";
      close_out oc;
      match Runtime.Journal.load path with
      | Error e -> Alcotest.failf "torn journal errored: %s" (Runtime.Error.to_string e)
      | Ok (records, dropped) ->
        checki "intact records survive" 2 (List.length records);
        checki "torn tail dropped and counted" 1 dropped)

(* --- atomic file IO --- *)

let test_atomic_write_read () =
  with_temp_path (fun path ->
      (match Runtime.Atomic_file.write path "first" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write failed: %s" (Runtime.Error.to_string e));
      (match Runtime.Atomic_file.write path "second" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "rewrite failed: %s" (Runtime.Error.to_string e));
      (match Runtime.Atomic_file.read path with
      | Ok s -> checks "replace is whole-file" "second" s
      | Error e -> Alcotest.failf "read failed: %s" (Runtime.Error.to_string e));
      checkb "no temp file left behind" true
        (Sys.readdir (Filename.dirname path)
        |> Array.for_all (fun f ->
               not
                 (String.length f > String.length (Filename.basename path)
                 && String.sub f 0 (String.length (Filename.basename path))
                    = Filename.basename path))))

let test_read_missing_is_typed () =
  match Runtime.Atomic_file.read "/nonexistent/neuroselect/nope" with
  | Error (Runtime.Error.Io _) -> ()
  | Error e -> Alcotest.failf "wrong error kind: %s" (Runtime.Error.to_string e)
  | Ok _ -> Alcotest.fail "read of missing path succeeded"

(* --- fault injection --- *)

let test_fault_names_roundtrip () =
  List.iter
    (fun p ->
      match Runtime.Fault.of_name (Runtime.Fault.name p) with
      | Some q -> checkb "name roundtrip" true (p = q)
      | None -> Alcotest.failf "of_name failed for %s" (Runtime.Fault.name p))
    Runtime.Fault.all;
  checkb "unknown name rejected" true (Runtime.Fault.of_name "no-such-fault" = None)

let test_fault_disarmed_never_fires () =
  Runtime.Fault.disarm ();
  checkb "disarmed point not armed" false
    (Runtime.Fault.armed Runtime.Fault.Instance_crash);
  for _ = 1 to 100 do
    checkb "disarmed query is false" false
      (Runtime.Fault.fires Runtime.Fault.Instance_crash)
  done

let test_fault_limit_and_count () =
  Fun.protect ~finally:Runtime.Fault.disarm (fun () ->
      Runtime.Fault.arm ~seed:11 ~limit:3 [ Runtime.Fault.Poisoned_gradient ];
      let fired = ref 0 in
      for _ = 1 to 50 do
        if Runtime.Fault.fires Runtime.Fault.Poisoned_gradient then incr fired
      done;
      checki "limit caps fires" 3 !fired;
      checki "fired_count agrees" 3
        (Runtime.Fault.fired_count Runtime.Fault.Poisoned_gradient);
      checkb "other points stay disarmed" false
        (Runtime.Fault.armed Runtime.Fault.Inference_failure))

let test_fault_deterministic_in_seed () =
  let observe seed =
    Fun.protect ~finally:Runtime.Fault.disarm (fun () ->
        Runtime.Fault.arm ~seed ~rate:0.3 [ Runtime.Fault.Instance_crash ];
        List.init 64 (fun _ -> Runtime.Fault.fires Runtime.Fault.Instance_crash))
  in
  checkb "same seed, same firing pattern" true (observe 5 = observe 5);
  checkb "different seeds diverge" true (observe 5 <> observe 6)

(* --- clock --- *)

let test_clock_monotone () =
  let a = Runtime.Clock.now () in
  let b = Runtime.Clock.now () in
  checkb "now never decreases" true (b >= a);
  checkb "elapsed_since nonnegative" true (Runtime.Clock.elapsed_since a >= 0.0);
  let x, dt = Runtime.Clock.timed (fun () -> 42) in
  checki "timed returns the result" 42 x;
  checkb "timed duration nonnegative" true (dt >= 0.0)

(* --- error taxonomy --- *)

let test_error_classification () =
  let e =
    Runtime.Error.of_exn ~context:"test" (Sys_error "f: No such file or directory")
  in
  (match e with
  | Runtime.Error.Io _ -> ()
  | _ -> Alcotest.failf "Sys_error not classified as Io: %s" (Runtime.Error.to_string e));
  let inner = Runtime.Error.Corrupt { path = "p"; detail = "d" } in
  checkb "Runtime_error unwraps" true
    (Runtime.Error.of_exn ~context:"test" (Runtime.Error.Runtime_error inner) = inner);
  (match Runtime.Error.protect ~context:"test" (fun () -> failwith "boom") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "protect swallowed the failure");
  checkb "protect passes values through" true
    (Runtime.Error.protect ~context:"test" (fun () -> 7) = Ok 7)

let suite =
  [
    Alcotest.test_case "crc32 known vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "crc32 incremental" `Quick test_crc32_incremental;
    Alcotest.test_case "crc32 sensitivity" `Quick test_crc32_sensitivity;
    Alcotest.test_case "journal encode roundtrip" `Quick test_journal_encode_roundtrip;
    Alcotest.test_case "journal non-finite floats" `Quick test_journal_nonfinite_floats;
    Alcotest.test_case "journal append/load" `Quick test_journal_append_load;
    Alcotest.test_case "journal torn tail" `Quick test_journal_torn_tail;
    Alcotest.test_case "atomic write/read" `Quick test_atomic_write_read;
    Alcotest.test_case "read missing is typed" `Quick test_read_missing_is_typed;
    Alcotest.test_case "fault names roundtrip" `Quick test_fault_names_roundtrip;
    Alcotest.test_case "fault disarmed never fires" `Quick
      test_fault_disarmed_never_fires;
    Alcotest.test_case "fault limit and count" `Quick test_fault_limit_and_count;
    Alcotest.test_case "fault deterministic in seed" `Quick
      test_fault_deterministic_in_seed;
    Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
    Alcotest.test_case "error classification" `Quick test_error_classification;
  ]

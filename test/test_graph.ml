(* Tests for the graph encodings of CNFs. *)

module Bigraph = Satgraph.Bigraph
module Litgraph = Satgraph.Litgraph
module Mat = Tensor.Mat

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let f = Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1; -2 ]; [ 2; 3 ]; [ -1; -3 ] ]

let test_bigraph_structure () =
  let g = Bigraph.of_formula f in
  checki "vars" 3 g.Bigraph.num_vars;
  checki "clauses" 3 g.Bigraph.num_clauses;
  checki "edges = literal occurrences" 6 (Bigraph.num_edges g);
  checki "nodes" 6 (Bigraph.num_nodes g)

let test_bigraph_edge_weights () =
  let g = Bigraph.of_formula f in
  (* Clause 0 = (x1 or not x2): weights +1 for var 0, -1 for var 1. *)
  let weight_of var clause =
    let found = ref None in
    Array.iteri
      (fun e v ->
        if v = var && g.Bigraph.edge_clause.(e) = clause then
          found := Some g.Bigraph.edge_weight.(e))
      g.Bigraph.edge_var;
    Option.get !found
  in
  checkf "x1 in c0 positive" 1.0 (weight_of 0 0);
  checkf "x2 in c0 negative" (-1.0) (weight_of 1 0);
  checkf "x2 in c1 positive" 1.0 (weight_of 1 1);
  checkf "x3 in c2 negative" (-1.0) (weight_of 2 2)

let test_bigraph_degrees () =
  let g = Bigraph.of_formula f in
  Alcotest.(check (array int)) "var degrees" [| 2; 2; 2 |] g.Bigraph.var_degree;
  Alcotest.(check (array int)) "clause degrees" [| 2; 2; 2 |] g.Bigraph.clause_degree;
  let inv = Bigraph.var_inv_degree g in
  checkf "inverse degree" 0.5 inv.(0)

let test_bigraph_isolated_var () =
  (* Variable 4 appears in no clause: degree 0, inv degree 0. *)
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:4 [ [ 1; 2 ] ] in
  let g = Bigraph.of_formula f in
  checki "deg 0" 0 g.Bigraph.var_degree.(3);
  checkf "inv deg 0" 0.0 (Bigraph.var_inv_degree g).(3)

let test_bigraph_initial_features () =
  let g = Bigraph.of_formula f in
  let vf = Bigraph.initial_var_features g in
  let cf = Bigraph.initial_clause_features g in
  checkb "vars all ones" true (Mat.approx_equal vf (Mat.create 3 1 1.0));
  checkb "clauses all zeros" true (Mat.approx_equal cf (Mat.zeros 3 1))

let test_litgraph_structure () =
  let g = Litgraph.of_formula f in
  checki "lit nodes" 6 (Litgraph.num_lit_nodes g);
  checki "edges" 6 (Litgraph.num_edges g);
  (* Lit node of x1 positive is 0, of not x1 is 1. *)
  checki "complement pairing" 1 (Litgraph.complement 0);
  checki "complement involution" 0 (Litgraph.complement (Litgraph.complement 0))

let test_litgraph_degrees () =
  let g = Litgraph.of_formula f in
  (* x1 occurs positively once (node 0) and negatively once (node 1). *)
  checki "pos x1 degree" 1 g.Litgraph.lit_degree.(0);
  checki "neg x1 degree" 1 g.Litgraph.lit_degree.(1);
  Alcotest.(check (array int)) "clause degrees" [| 2; 2; 2 |] g.Litgraph.clause_degree

let prop_bigraph_edge_count =
  QCheck.Test.make ~name:"bigraph edges = num_literals" ~count:100
    (Generators.seed_and_clauses 1 40)
    (fun (seed, m) ->
      let f = Generators.ksat ~seed ~num_vars:12 ~num_clauses:m () in
      Bigraph.num_edges (Bigraph.of_formula f) = Cnf.Formula.num_literals f)

let prop_degrees_sum_to_edges =
  QCheck.Test.make ~name:"degree sums equal edge count" ~count:100 QCheck.small_int
    (fun seed ->
      let f = Generators.ksat ~seed ~num_vars:10 ~num_clauses:25 () in
      let g = Bigraph.of_formula f in
      let sum = Array.fold_left ( + ) 0 in
      sum g.Bigraph.var_degree = Bigraph.num_edges g
      && sum g.Bigraph.clause_degree = Bigraph.num_edges g)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_bigraph_edge_count; prop_degrees_sum_to_edges ]

let suite =
  [
    Alcotest.test_case "bigraph structure" `Quick test_bigraph_structure;
    Alcotest.test_case "bigraph edge weights" `Quick test_bigraph_edge_weights;
    Alcotest.test_case "bigraph degrees" `Quick test_bigraph_degrees;
    Alcotest.test_case "bigraph isolated var" `Quick test_bigraph_isolated_var;
    Alcotest.test_case "bigraph initial features" `Quick test_bigraph_initial_features;
    Alcotest.test_case "litgraph structure" `Quick test_litgraph_structure;
    Alcotest.test_case "litgraph degrees" `Quick test_litgraph_degrees;
  ]
  @ qcheck_tests

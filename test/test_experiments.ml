(* Tests for the experiment harness: simulated time, runners, and the
   table/figure generators (on miniature inputs). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* --- Simtime --- *)

let test_simtime_mapping () =
  let t = Experiments.Simtime.make ~budget:1_000_000 in
  checkf "zero props" 0.0 (Experiments.Simtime.seconds t 0);
  checkf "half budget = 2500s" 2500.0 (Experiments.Simtime.seconds t 500_000);
  checkf "budget = timeout" 5000.0 (Experiments.Simtime.seconds t 1_000_000);
  checkf "over budget capped" 5000.0 (Experiments.Simtime.seconds t 2_000_000);
  checkb "timed out" true (Experiments.Simtime.timed_out t 1_000_000);
  checkb "not timed out" false (Experiments.Simtime.timed_out t 999_999)

let test_simtime_invalid () =
  Alcotest.check_raises "bad budget"
    (Invalid_argument "Simtime.make: budget must be positive") (fun () ->
      ignore (Experiments.Simtime.make ~budget:0))

(* --- Runner --- *)

let test_runner_solves_within_budget () =
  let t = Experiments.Simtime.make ~budget:1_000_000 in
  let r = Experiments.Runner.solve t Cdcl.Policy.Default (Gen.Pigeonhole.unsat 4) in
  checkb "solved" true r.Experiments.Runner.solved;
  checkb "result unsat" true (r.Experiments.Runner.result = Cdcl.Solver.Unsat);
  checkb "sim seconds sane" true
    (r.Experiments.Runner.sim_seconds > 0.0 && r.Experiments.Runner.sim_seconds < 5000.0)

let test_runner_timeout () =
  let t = Experiments.Simtime.make ~budget:500 in
  let r = Experiments.Runner.solve t Cdcl.Policy.Default (Gen.Pigeonhole.unsat 7) in
  checkb "unsolved" false r.Experiments.Runner.solved;
  checkf "capped at timeout" 5000.0 r.Experiments.Runner.sim_seconds

(* --- Fig3 --- *)

let test_fig3_series () =
  let s = Experiments.Fig3.run ~vertices:60 ~conflicts:300 () in
  checki "vars+1 counts" (s.Experiments.Fig3.num_vars + 1)
    (Array.length s.Experiments.Fig3.counts);
  checkb "f_max attained" true
    (Array.exists (fun c -> c = s.Experiments.Fig3.f_max) s.Experiments.Fig3.counts);
  checkb "above-threshold nonzero when props happened" true
    (s.Experiments.Fig3.total = 0 || s.Experiments.Fig3.above_threshold >= 1);
  checkb "top share within [0,1]" true
    (s.Experiments.Fig3.top1pct_share >= 0.0 && s.Experiments.Fig3.top1pct_share <= 1.0);
  (* The headline qualitative claim: triggers are concentrated. *)
  checkb "skewed distribution" true (s.Experiments.Fig3.top1pct_share > 0.02);
  (* print must not raise *)
  ignore (Format.asprintf "%a" Experiments.Fig3.print s)

(* --- Policy_compare (Fig 4) --- *)

let mini_instances per_year = Gen.Dataset.generate_year ~seed:13 ~per_year 2022

let test_policy_compare_runs () =
  let t = Experiments.Simtime.make ~budget:300_000 in
  let s = Experiments.Policy_compare.run t (mini_instances 6) in
  let n = List.length s.Experiments.Policy_compare.points in
  checki "wins partition points" n
    (s.Experiments.Policy_compare.wins_frequency
    + s.Experiments.Policy_compare.wins_default + s.Experiments.Policy_compare.ties);
  List.iter
    (fun (p : Experiments.Policy_compare.point) ->
      checkb "at least one side solved" true
        (p.Experiments.Policy_compare.default_solved
        || p.Experiments.Policy_compare.frequency_solved))
    s.Experiments.Policy_compare.points;
  ignore (Format.asprintf "%a" Experiments.Policy_compare.print s)

(* --- Data preparation --- *)

let test_data_prepare () =
  let data = Experiments.Data.prepare ~seed:3 ~per_year:2 ~budget:150_000 () in
  checki "train size" 12 (List.length data.Experiments.Data.train);
  checki "test size" 2 (List.length data.Experiments.Data.test);
  List.iter
    (fun (l : Experiments.Data.labelled) ->
      checkb "example label matches outcome" true
        (l.Experiments.Data.example.Core.Trainer.label
        = l.Experiments.Data.outcome.Core.Labeler.label))
    data.Experiments.Data.train

(* --- Adaptive_eval (Table 3 / Fig 7) --- *)

let test_adaptive_eval_runs () =
  let model = Core.Model.create Core.Model.small_config in
  let t = Experiments.Simtime.make ~budget:200_000 in
  let result = Experiments.Adaptive_eval.run model t (mini_instances 5) in
  checki "one entry per instance" 5 (List.length result.Experiments.Adaptive_eval.entries);
  List.iter
    (fun (e : Experiments.Adaptive_eval.entry) ->
      checkb "adaptive time includes inference" true
        (e.Experiments.Adaptive_eval.inference_seconds >= 0.0);
      checkb "times capped" true
        (e.Experiments.Adaptive_eval.kissat_seconds <= 5000.0
        && e.Experiments.Adaptive_eval.adaptive_seconds <= 5000.0))
    result.Experiments.Adaptive_eval.entries;
  checkb "medians positive" true
    (result.Experiments.Adaptive_eval.kissat.Experiments.Adaptive_eval.median_seconds
    >= 0.0);
  ignore (Format.asprintf "%a" Experiments.Adaptive_eval.print_table3 result);
  ignore (Format.asprintf "%a" Experiments.Adaptive_eval.print_fig7a result);
  ignore (Format.asprintf "%a" Experiments.Adaptive_eval.print_fig7b result)

(* --- fault tolerance --- *)

let test_solve_protected_retries () =
  let t = Experiments.Simtime.make ~budget:400_000 in
  let f = (List.hd (mini_instances 1)).Gen.Dataset.formula in
  Fun.protect ~finally:Runtime.Fault.disarm (fun () ->
      (* One injected crash: the single retry absorbs it. *)
      Runtime.Fault.arm ~seed:9 ~limit:1 [ Runtime.Fault.Instance_crash ];
      (match Experiments.Runner.solve_protected t Cdcl.Policy.Default f with
      | Ok run -> checkb "retried run solved" true run.Experiments.Runner.solved
      | Error e -> Alcotest.failf "retry did not absorb crash: %s" (Runtime.Error.to_string e));
      checki "fault fired exactly once" 1
        (Runtime.Fault.fired_count Runtime.Fault.Instance_crash);
      (* Crashes beyond the retry budget become a typed error. *)
      Runtime.Fault.arm ~seed:9 [ Runtime.Fault.Instance_crash ];
      match Experiments.Runner.solve_protected ~retries:2 t Cdcl.Policy.Default f with
      | Error (Runtime.Error.Injected_fault _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Runtime.Error.to_string e)
      | Ok _ -> Alcotest.fail "persistent crash must surface as an error")

let test_entry_record_roundtrip () =
  let entry =
    {
      Experiments.Adaptive_eval.name = "inst-01";
      family = "ksat";
      kissat_seconds = 12.5;
      kissat_solved = true;
      adaptive_seconds = 11.25;
      adaptive_solved = true;
      inference_seconds = 0.004;
      chose_frequency = true;
      probability = 0.75;
      degraded = Some "model failure: boom";
    }
  in
  match
    Experiments.Adaptive_eval.entry_of_record
      (Experiments.Adaptive_eval.record_of_entry entry)
  with
  | None -> Alcotest.fail "journal record did not parse back"
  | Some e -> checkb "roundtrip preserves the entry" true (e = entry)

let test_adaptive_eval_journal_resume () =
  let model = Core.Model.create Core.Model.small_config in
  let t = Experiments.Simtime.make ~budget:150_000 in
  let instances = mini_instances 4 in
  let journal = Filename.temp_file "nscampaign" ".jsonl" in
  Sys.remove journal;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists journal then Sys.remove journal)
    (fun () ->
      let reference = Experiments.Adaptive_eval.run model t instances in
      (* First pass measures only a prefix (simulating an interrupt). *)
      let prefix = [ List.nth instances 0; List.nth instances 1 ] in
      let partial = Experiments.Adaptive_eval.run ~journal model t prefix in
      checki "nothing resumed on first pass" 0
        partial.Experiments.Adaptive_eval.resumed;
      (* Second pass over the full list resumes the measured prefix. *)
      let resumed = Experiments.Adaptive_eval.run ~journal model t instances in
      checki "prefix restored from journal" 2
        resumed.Experiments.Adaptive_eval.resumed;
      checki "all instances present" 4
        (List.length resumed.Experiments.Adaptive_eval.entries);
      List.iter2
        (fun (a : Experiments.Adaptive_eval.entry)
             (b : Experiments.Adaptive_eval.entry) ->
          checkb "same instance order as an uninterrupted run" true
            (a.Experiments.Adaptive_eval.name = b.Experiments.Adaptive_eval.name))
        reference.Experiments.Adaptive_eval.entries
        resumed.Experiments.Adaptive_eval.entries)

(* --- Ablation --- *)

let test_alpha_sweep () =
  let t = Experiments.Simtime.make ~budget:150_000 in
  let rows = Experiments.Ablation.alpha_sweep ~alphas:[ 0.5; 0.8 ] t (mini_instances 3) in
  checki "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Experiments.Ablation.alpha_row) ->
      checkb "props counted" true (r.Experiments.Ablation.total_propagations > 0))
    rows;
  ignore (Format.asprintf "%a" Experiments.Ablation.print_alpha rows)

let test_policy_zoo () =
  let t = Experiments.Simtime.make ~budget:150_000 in
  let rows = Experiments.Ablation.policy_zoo t (mini_instances 3) in
  checki "six policies" 6 (List.length rows);
  ignore (Format.asprintf "%a" Experiments.Ablation.print_policies rows)

(* --- Table 2 (miniature) --- *)

let test_table2_runs () =
  let data = Experiments.Data.prepare ~seed:4 ~per_year:2 ~budget:100_000 () in
  let t = Experiments.Table2.run ~epochs:2 ~lr:1e-3 data in
  checki "five rows" 5 (List.length t.Experiments.Table2.rows);
  List.iter
    (fun (r : Experiments.Table2.row) ->
      let rep = r.Experiments.Table2.report in
      checkb "percentages in range" true
        (rep.Core.Metrics.accuracy_pct >= 0.0 && rep.Core.Metrics.accuracy_pct <= 100.0))
    t.Experiments.Table2.rows;
  ignore (Format.asprintf "%a" Experiments.Table2.print t)

let suite =
  [
    Alcotest.test_case "simtime mapping" `Quick test_simtime_mapping;
    Alcotest.test_case "simtime invalid" `Quick test_simtime_invalid;
    Alcotest.test_case "runner solves" `Quick test_runner_solves_within_budget;
    Alcotest.test_case "runner timeout" `Quick test_runner_timeout;
    Alcotest.test_case "fig3 series" `Quick test_fig3_series;
    Alcotest.test_case "policy compare" `Slow test_policy_compare_runs;
    Alcotest.test_case "data prepare" `Slow test_data_prepare;
    Alcotest.test_case "adaptive eval" `Slow test_adaptive_eval_runs;
    Alcotest.test_case "solve protected retries" `Quick test_solve_protected_retries;
    Alcotest.test_case "entry record roundtrip" `Quick test_entry_record_roundtrip;
    Alcotest.test_case "journal resume" `Slow test_adaptive_eval_journal_resume;
    Alcotest.test_case "alpha sweep" `Slow test_alpha_sweep;
    Alcotest.test_case "policy zoo" `Slow test_policy_zoo;
    Alcotest.test_case "table2 miniature" `Slow test_table2_runs;
  ]

(* additional ablation harness coverage *)

let test_fraction_sweep () =
  let t = Experiments.Simtime.make ~budget:150_000 in
  let rows =
    Experiments.Ablation.fraction_sweep ~fractions:[ 0.3; 0.7 ] t (mini_instances 3)
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  ignore (Format.asprintf "%a" Experiments.Ablation.print_fractions rows)

let test_restart_comparison () =
  let t = Experiments.Simtime.make ~budget:150_000 in
  let rows = Experiments.Ablation.restart_comparison t (mini_instances 3) in
  Alcotest.(check int) "three schedules" 3 (List.length rows);
  List.iter
    (fun (r : Experiments.Ablation.restart_row) ->
      checkb "propagations counted" true (r.Experiments.Ablation.r_total_propagations > 0))
    rows;
  ignore (Format.asprintf "%a" Experiments.Ablation.print_restarts rows)

let suite =
  suite
  @ [
      Alcotest.test_case "fraction sweep" `Slow test_fraction_sweep;
      Alcotest.test_case "restart comparison" `Slow test_restart_comparison;
    ]

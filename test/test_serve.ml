(* Tests for the durable session store behind ns-serve: WAL-backed
   recovery, idempotency-key dedup, the session-table cap, and TTL
   eviction. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

module Store = Nserve.Session_store

let with_temp_dir f =
  let dir = Filename.temp_file "nsserve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let create_ok cfg =
  match Store.create cfg with
  | Ok (t, stats) -> (t, stats)
  | Error e -> Alcotest.failf "create: %s" (Runtime.Error.to_string e)

let apply_ok t ?key ~sid op =
  match (Store.apply t ?key ~sid op).Store.reply with
  | Ok fields -> fields
  | Error msg -> Alcotest.failf "apply on %s: %s" sid msg

let test_volatile_session_lifecycle () =
  let t, stats = create_ok Store.default_config in
  checki "fresh store is empty" 0 stats.Store.sessions;
  ignore (apply_ok t ~sid:"s" (Store.New 2));
  ignore (apply_ok t ~sid:"s" (Store.Add "1 2 0"));
  ignore (apply_ok t ~sid:"s" (Store.Add "-1 0"));
  (match Store.info t "s" with
  | Some (2, 2) -> ()
  | Some (v, c) -> Alcotest.failf "info says %d vars, %d clauses" v c
  | None -> Alcotest.fail "session missing");
  let fields = apply_ok t ~sid:"s" (Store.Solve "") in
  checkb "solve answers sat" true
    (Runtime.Journal.find_string fields "verdict" = Some "sat");
  (* Auto-introduction through Add, clean error for unknown solve vars. *)
  ignore (apply_ok t ~sid:"s" (Store.Add "5 0"));
  (match Store.info t "s" with
  | Some (5, 3) -> ()
  | _ -> Alcotest.fail "clause did not auto-introduce vars");
  (match (Store.apply t ~sid:"s" (Store.Solve "9")).Store.reply with
  | Error msg ->
    checkb "out-of-range assumption is a clean client error" true
      (String.length msg > 0 && msg.[0] = 's' (* "solve: ..." not "io ..." *))
  | Ok _ -> Alcotest.fail "unknown assumption variable accepted");
  ignore (apply_ok t ~sid:"s" Store.Close);
  checkb "closed session gone" true (Store.info t "s" = None);
  (* Tolerant double close; strict unknown-sid mutation. *)
  ignore (apply_ok t ~sid:"s" Store.Close);
  match (Store.apply t ~sid:"s" (Store.Add "1 0")).Store.reply with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "add on a closed session accepted"

let test_recovery_and_dedup () =
  with_temp_dir (fun dir ->
      let cfg = { Store.default_config with Store.wal_dir = Some dir } in
      let t, _ = create_ok cfg in
      ignore (apply_ok t ~key:"a" ~sid:"s" (Store.New 2));
      ignore (apply_ok t ~key:"b" ~sid:"s" (Store.Add "1 -2 0"));
      let first = apply_ok t ~key:"c" ~sid:"s" (Store.Solve "") in
      (* Same key, same reply, no re-execution — live. *)
      let retry = Store.apply t ~key:"c" ~sid:"s" (Store.Solve "") in
      checkb "live retry deduped" true retry.Store.replayed;
      checkb "live retry reply identical" true (retry.Store.reply = Ok first);
      (* SIGKILL: abandon without close, then recover. *)
      let t2, stats = create_ok cfg in
      checki "session recovered" 1 stats.Store.sessions;
      checki "ops replayed" 3 stats.Store.replayed;
      (match Store.info t2 "s" with
      | Some (2, 1) -> ()
      | _ -> Alcotest.fail "recovered session state wrong");
      (* Same key against the recovered store: the replay rebuilt the
         dedup cache, so the reply is the cached one. *)
      let retry2 = Store.apply t2 ~key:"c" ~sid:"s" (Store.Solve "") in
      checkb "post-crash retry deduped" true retry2.Store.replayed;
      checkb "post-crash retry reply identical" true
        (retry2.Store.reply = Ok first);
      Store.close t2)

let test_snapshot_recovery () =
  with_temp_dir (fun dir ->
      let cfg =
        {
          Store.default_config with
          Store.wal_dir = Some dir;
          snapshot_every = 4;
        }
      in
      let t, _ = create_ok cfg in
      ignore (apply_ok t ~sid:"s" (Store.New 2));
      ignore (apply_ok t ~sid:"s" (Store.Add "1 2 0"));
      ignore (apply_ok t ~sid:"s" (Store.Add "-1 2 0"));
      ignore (apply_ok t ~sid:"s" (Store.Add "-2 1 0"));
      (* 4 appends -> snapshot written; these two replay from the log. *)
      ignore (apply_ok t ~sid:"t" (Store.New 1));
      ignore (apply_ok t ~sid:"t" (Store.Add "1 0"));
      let t2, stats = create_ok cfg in
      checkb "recovery used the snapshot" true stats.Store.from_snapshot;
      checki "only post-snapshot ops replayed" 2 stats.Store.replayed;
      checki "both sessions recovered" 2 stats.Store.sessions;
      (match (Store.info t2 "s", Store.info t2 "t") with
      | Some (2, 3), Some (1, 1) -> ()
      | _ -> Alcotest.fail "snapshot+replay state wrong");
      (* The snapshotted solver still solves: consistency proof. *)
      let fields = apply_ok t2 ~sid:"s" (Store.Solve "1") in
      checkb "recovered-from-snapshot session solves" true
        (Runtime.Journal.find_string fields "verdict" = Some "sat");
      Store.close t2)

(* A clause with an embedded newline (legal through the wire's JSON
   \n escape) must survive the snapshot round-trip: whitespace is
   normalised on entry and the snapshot stores one field per clause,
   so restore can never mis-split a clause into bogus fragments or
   crash [create] on an out-of-range variable. *)
let test_snapshot_newline_clause () =
  with_temp_dir (fun dir ->
      let cfg =
        {
          Store.default_config with
          Store.wal_dir = Some dir;
          snapshot_every = 3;
        }
      in
      let t, _ = create_ok cfg in
      ignore (apply_ok t ~sid:"s" (Store.New 1));
      ignore (apply_ok t ~sid:"s" (Store.Add "1 -2 0"));
      (* Third append triggers the snapshot; this clause carries the
         hostile newline and auto-introduces nothing new. *)
      ignore (apply_ok t ~sid:"s" (Store.Add "2\n1 0"));
      (* SIGKILL: abandon without close, then recover. *)
      let t2, stats = create_ok cfg in
      checkb "recovery used the snapshot" true stats.Store.from_snapshot;
      checki "no restore errors" 0 stats.Store.restore_errors;
      (match Store.info t2 "s" with
      | Some (2, 2) -> ()
      | Some (v, c) -> Alcotest.failf "restored %d vars, %d clauses" v c
      | None -> Alcotest.fail "session lost in snapshot restore");
      let fields = apply_ok t2 ~sid:"s" (Store.Solve "") in
      checkb "restored session solves" true
        (Runtime.Journal.find_string fields "verdict" = Some "sat");
      Store.close t2)

let test_max_sessions_cap () =
  let cfg = { Store.default_config with Store.max_sessions = 2 } in
  let t, _ = create_ok cfg in
  ignore (apply_ok t ~sid:"a" (Store.New 1));
  ignore (apply_ok t ~sid:"b" (Store.New 1));
  (match (Store.apply t ~sid:"c" (Store.New 1)).Store.reply with
  | Error msg ->
    checkb "cap error names the cap" true
      (String.length msg > 0 && Store.session_count t = 2)
  | Ok _ -> Alcotest.fail "session table cap not enforced");
  (* Replacing an existing sid is not a new session: allowed at cap. *)
  ignore (apply_ok t ~sid:"a" (Store.New 3));
  checki "replacement kept the count" 2 (Store.session_count t);
  (* Closing frees a slot. *)
  ignore (apply_ok t ~sid:"b" Store.Close);
  ignore (apply_ok t ~sid:"c" (Store.New 1));
  checki "slot reuse after close" 2 (Store.session_count t)

let test_ttl_eviction_survives_recovery () =
  with_temp_dir (fun dir ->
      let cfg =
        {
          Store.default_config with
          Store.wal_dir = Some dir;
          session_ttl = 0.05;
        }
      in
      let t, _ = create_ok cfg in
      ignore (apply_ok t ~sid:"old" (Store.New 1));
      checki "nothing idle yet" 0 (Store.evict_idle t);
      Unix.sleepf 0.08;
      ignore (apply_ok t ~sid:"fresh" (Store.New 1));
      checki "one idle session evicted" 1 (Store.evict_idle t);
      checki "eviction counter" 1 (Store.evictions t);
      checkb "evicted session gone" true (Store.info t "old" = None);
      checkb "fresh session kept" true (Store.info t "fresh" <> None);
      (* Evictions are WAL-logged: a recovered server must not
         resurrect the evicted session. *)
      let t2, stats = create_ok cfg in
      checki "only the live session recovered" 1 stats.Store.sessions;
      checkb "evicted stays evicted after recovery" true
        (Store.info t2 "old" = None);
      Store.close t2)

let suite =
  [
    Alcotest.test_case "volatile session lifecycle" `Quick
      test_volatile_session_lifecycle;
    Alcotest.test_case "crash recovery + exactly-once dedup" `Quick
      test_recovery_and_dedup;
    Alcotest.test_case "snapshot + replay recovery" `Quick
      test_snapshot_recovery;
    Alcotest.test_case "newline clause survives snapshot" `Quick
      test_snapshot_newline_clause;
    Alcotest.test_case "max-sessions cap" `Quick test_max_sessions_cap;
    Alcotest.test_case "ttl eviction survives recovery" `Quick
      test_ttl_eviction_survives_recovery;
  ]

(* Test entry point: one alcotest run aggregating every suite. *)

let () =
  Alcotest.run "neuroselect"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("runtime", Test_runtime.suite);
      ("cnf", Test_cnf.suite);
      ("simplify", Test_simplify.suite);
      ("cdcl", Test_cdcl.suite);
      ("tensor", Test_tensor.suite);
      ("nn", Test_nn.suite);
      ("graph", Test_graph.suite);
      ("core", Test_core.suite);
      ("gen", Test_gen.suite);
      ("baselines", Test_baselines.suite);
      ("experiments", Test_experiments.suite);
      ("serve", Test_serve.suite);
      ("verify", Test_verify.suite);
      ("refdiff", Test_refdiff.suite);
      ("inprocess", Test_inprocess.suite);
      ("portfolio", Test_portfolio.suite);
    ]

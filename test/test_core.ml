(* Tests for the NeuroSelect core: MPNN, attention, HGT, model,
   metrics, labeller, trainer, selector. *)

module Ad = Nn.Ad
module Mat = Tensor.Mat
module Bigraph = Satgraph.Bigraph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let small_formula =
  Cnf.Formula.of_dimacs_lists ~num_vars:4
    [ [ 1; -2 ]; [ 2; 3 ]; [ -1; -3; 4 ]; [ -4; 1 ]; [ 2; -3 ] ]

let small_graph = Bigraph.of_formula small_formula

(* --- MPNN --- *)

let test_mpnn_shapes () =
  let rng = Util.Rng.create 1 in
  let layer = Core.Mpnn.create rng ~var_in:1 ~clause_in:1 ~out_dim:6 ~name:"m" in
  let tape = Ad.tape () in
  let vf = Ad.const tape (Bigraph.initial_var_features small_graph) in
  let cf = Ad.const tape (Bigraph.initial_clause_features small_graph) in
  let vf', cf' = Core.Mpnn.forward tape layer small_graph ~var_feats:vf ~clause_feats:cf in
  checkb "var shape" true (Mat.shape (Ad.value vf') = (4, 6));
  checkb "clause shape" true (Mat.shape (Ad.value cf') = (5, 6));
  checki "out_dim" 6 (Core.Mpnn.out_dim layer);
  checki "param count" 12 (List.length (Core.Mpnn.params layer))

let test_mpnn_eq6_aggregation () =
  (* Hand-check Eq. 6 on a single-clause graph with identity-ish MLP:
     set message weights to identity (1x1: weight 1, bias 0) so the
     message into clause c is mean(w_uv * h_u). *)
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:2 [ [ 1; -2 ] ] in
  let g = Bigraph.of_formula f in
  let rng = Util.Rng.create 2 in
  let layer = Core.Mpnn.create rng ~var_in:1 ~clause_in:1 ~out_dim:1 ~name:"m" in
  (* Overwrite parameters: every linear = identity with zero bias,
     except the clause-update output which we keep identity too. *)
  List.iter
    (fun (p : Nn.Param.t) ->
      let r = Mat.rows p.Nn.Param.value and c = Mat.cols p.Nn.Param.value in
      p.Nn.Param.value <- Mat.init r c (fun i j -> if r > 1 || c > 1 then 0.0 else if i = j then 1.0 else 0.0);
      if r = 1 && c = 1 then p.Nn.Param.value <- Mat.create 1 1 1.0)
    (Core.Mpnn.params layer);
  (* Zero all biases (they are 1 x out_dim with name containing bias —
     identified by shape 1 x 1 here too; instead set every param of
     shape 1x1 to 1 and rely on the bias being 1... too brittle).
     Simpler: verify numerically that messages respect edge signs:
     clause with +x1 and -x2, var features [a; b] -> aggregated message
     proportional to (a - b)/2. Probe with two feature settings. *)
  let probe a b =
    let tape = Ad.tape () in
    let vf = Ad.const tape (Mat.of_arrays [| [| a |]; [| b |] |]) in
    let cf = Ad.const tape (Mat.zeros 1 1) in
    let _, cf' = Core.Mpnn.forward tape layer g ~var_feats:vf ~clause_feats:cf in
    Mat.get (Ad.value cf') 0 0
  in
  (* Swapping a,b with opposite signs must give the same clause value:
     (a - b)/2 invariant under (a,b) -> (-b,-a). *)
  checkf "sign structure respected" (probe 1.0 0.25) (probe (-0.25) (-1.0))

let test_mpnn_isolated_nodes_finite () =
  (* A formula with an unused variable: inverse degree 0 must not
     produce NaNs. *)
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1; 2 ] ] in
  let g = Bigraph.of_formula f in
  let rng = Util.Rng.create 3 in
  let layer = Core.Mpnn.create rng ~var_in:1 ~clause_in:1 ~out_dim:4 ~name:"m" in
  let tape = Ad.tape () in
  let vf = Ad.const tape (Bigraph.initial_var_features g) in
  let cf = Ad.const tape (Bigraph.initial_clause_features g) in
  let vf', _ = Core.Mpnn.forward tape layer g ~var_feats:vf ~clause_feats:cf in
  let v = Ad.value vf' in
  let finite = ref true in
  for i = 0 to Mat.rows v - 1 do
    for j = 0 to Mat.cols v - 1 do
      if not (Float.is_finite (Mat.get v i j)) then finite := false
    done
  done;
  checkb "all finite" true !finite

(* --- Attention --- *)

let test_attention_shapes () =
  let rng = Util.Rng.create 4 in
  let attn = Core.Attention.create rng ~dim:5 ~name:"a" in
  let tape = Ad.tape () in
  let z = Ad.const tape (Mat.random_uniform rng 7 5 1.0) in
  let out = Core.Attention.forward tape attn z in
  checkb "shape preserved" true (Mat.shape (Ad.value out) = (7, 5));
  checki "three bias-free linears" 3 (List.length (Core.Attention.params attn))

let test_attention_eq9_manual () =
  (* Check Eq. 8/9 against a direct dense computation with the layer's
     own Q, K, V weights. *)
  let rng = Util.Rng.create 6 in
  let dim = 3 and n = 4 in
  let attn = Core.Attention.create rng ~dim ~name:"a" in
  let z = Mat.random_uniform rng n dim 1.0 in
  let params = Core.Attention.params attn in
  let weight name =
    let p =
      List.find (fun (p : Nn.Param.t) -> p.Nn.Param.name = "a." ^ name ^ ".weight") params
    in
    p.Nn.Param.value
  in
  let q = Mat.matmul z (weight "f_q") in
  let k = Mat.matmul z (weight "f_k") in
  let v = Mat.matmul z (weight "f_v") in
  let qn = Mat.scale (1.0 /. Mat.frobenius_norm q) q in
  let kn = Mat.scale (1.0 /. Mat.frobenius_norm k) k in
  let inv_n = 1.0 /. float_of_int n in
  let numerator = Mat.add v (Mat.scale inv_n (Mat.matmul qn (Mat.matmul (Mat.transpose kn) v))) in
  let ones = Mat.create n 1 1.0 in
  let dvec = Mat.matmul qn (Mat.matmul (Mat.transpose kn) ones) in
  let expected =
    Mat.init n dim (fun i j ->
        Mat.get numerator i j /. (1.0 +. (inv_n *. Mat.get dvec i 0)))
  in
  let tape = Ad.tape () in
  let out = Core.Attention.forward tape attn (Ad.const tape z) in
  checkb "matches dense Eq. 9" true (Mat.approx_equal ~eps:1e-9 (Ad.value out) expected)

let test_attention_single_node () =
  let rng = Util.Rng.create 7 in
  let attn = Core.Attention.create rng ~dim:4 ~name:"a" in
  let tape = Ad.tape () in
  let z = Ad.const tape (Mat.random_uniform rng 1 4 1.0) in
  let out = Core.Attention.forward tape attn z in
  checkb "single node ok" true (Mat.shape (Ad.value out) = (1, 4))

(* --- HGT / Model --- *)

let test_hgt_attention_flag () =
  let rng = Util.Rng.create 8 in
  let with_attn =
    Core.Hgt.create rng ~var_in:1 ~clause_in:1 ~hidden:4 ~mpnn_layers:2
      ~use_attention:true ~name:"h"
  in
  let without =
    Core.Hgt.create rng ~var_in:1 ~clause_in:1 ~hidden:4 ~mpnn_layers:2
      ~use_attention:false ~name:"h2"
  in
  checkb "attention on" true (Core.Hgt.uses_attention with_attn);
  checkb "attention off" false (Core.Hgt.uses_attention without);
  checkb "ablation has fewer params" true
    (List.length (Core.Hgt.params without) < List.length (Core.Hgt.params with_attn))

let test_model_predict_range () =
  let model = Core.Model.create Core.Model.small_config in
  let p = Core.Model.predict model small_graph in
  checkb "probability in (0,1)" true (p > 0.0 && p < 1.0);
  checkb "classify consistent" true (Core.Model.classify model small_graph = (p > 0.5))

let test_model_deterministic () =
  let m1 = Core.Model.create Core.Model.small_config in
  let m2 = Core.Model.create Core.Model.small_config in
  checkf "same seed same prediction" (Core.Model.predict m1 small_graph)
    (Core.Model.predict m2 small_graph)

let test_model_seed_changes () =
  let m1 = Core.Model.create Core.Model.small_config in
  let m2 = Core.Model.create { Core.Model.small_config with seed = 99 } in
  checkb "different seed different prediction" true
    (Core.Model.predict m1 small_graph <> Core.Model.predict m2 small_graph)

let test_model_param_count_config () =
  let small = Core.Model.create Core.Model.small_config in
  let paper = Core.Model.create Core.Model.paper_config in
  checkb "paper model bigger" true
    (Core.Model.num_parameters paper > Core.Model.num_parameters small);
  checki "params list consistent"
    (Core.Model.num_parameters paper)
    (List.fold_left (fun a p -> a + Nn.Param.num_elements p) 0 (Core.Model.params paper))

let test_model_save_load () =
  let model = Core.Model.create Core.Model.small_config in
  let path = Filename.temp_file "neuroselect" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let before = Core.Model.predict model small_graph in
      Core.Model.save path model;
      let fresh = Core.Model.create { Core.Model.small_config with seed = 123 } in
      checkb "fresh differs" true (Core.Model.predict fresh small_graph <> before);
      Core.Model.load path fresh;
      checkf "restored prediction" before (Core.Model.predict fresh small_graph))

let test_model_predict_formula_agrees () =
  let model = Core.Model.create Core.Model.small_config in
  checkf "predict_formula = predict of graph"
    (Core.Model.predict model small_graph)
    (Core.Model.predict_formula model small_formula)

(* --- Metrics --- *)

let test_metrics_confusion () =
  let predicted = [| true; true; false; false; true |] in
  let actual = [| true; false; false; true; true |] in
  let c = Core.Metrics.confusion ~predicted ~actual in
  checki "tp" 2 c.Core.Metrics.tp;
  checki "fp" 1 c.Core.Metrics.fp;
  checki "tn" 1 c.Core.Metrics.tn;
  checki "fn" 1 c.Core.Metrics.fn;
  checkf "precision" (2.0 /. 3.0) (Core.Metrics.precision c);
  checkf "recall" (2.0 /. 3.0) (Core.Metrics.recall c);
  checkf "f1" (2.0 /. 3.0) (Core.Metrics.f1 c);
  checkf "accuracy" 0.6 (Core.Metrics.accuracy c)

let test_metrics_degenerate () =
  let c = Core.Metrics.confusion ~predicted:[| false; false |] ~actual:[| true; false |] in
  checkf "precision 0 when no positives predicted" 0.0 (Core.Metrics.precision c);
  checkf "f1 0" 0.0 (Core.Metrics.f1 c)

let test_metrics_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Metrics.confusion: length mismatch") (fun () ->
      ignore (Core.Metrics.confusion ~predicted:[| true |] ~actual:[||]))

let test_metrics_report_percentages () =
  let r = Core.Metrics.report ~predicted:[| true; false |] ~actual:[| true; false |] in
  checkf "perfect precision" 100.0 r.Core.Metrics.precision_pct;
  checkf "perfect accuracy" 100.0 r.Core.Metrics.accuracy_pct

(* --- Labeler --- *)

let test_labeler_consistency () =
  let rng = Util.Rng.create 42 in
  let f = Gen.Parity.contradiction rng ~num_vars:14 in
  let o = Core.Labeler.label_instance ~budget:500_000 f in
  checkb "reduction consistent with counts" true
    (Float.abs
       (o.Core.Labeler.reduction
       -. (float_of_int (o.Core.Labeler.default_propagations - o.Core.Labeler.frequency_propagations)
          /. float_of_int o.Core.Labeler.default_propagations))
    < 1e-9);
  checkb "label consistent with threshold" true
    (o.Core.Labeler.label = (o.Core.Labeler.reduction >= 0.02))

let test_labeler_deterministic () =
  let rng = Util.Rng.create 43 in
  let f = Gen.Ksat.generate rng ~num_vars:30 ~num_clauses:120 ~k:3 in
  let o1 = Core.Labeler.label_instance ~budget:200_000 f in
  let o2 = Core.Labeler.label_instance ~budget:200_000 f in
  checki "default props deterministic" o1.Core.Labeler.default_propagations
    o2.Core.Labeler.default_propagations;
  checki "frequency props deterministic" o1.Core.Labeler.frequency_propagations
    o2.Core.Labeler.frequency_propagations

let test_labeler_threshold_sensitivity () =
  let rng = Util.Rng.create 44 in
  let f = Gen.Parity.contradiction rng ~num_vars:12 in
  (* With a -100% threshold every instance is positive; with +100%
     none (reduction can never reach 100%). *)
  let always = Core.Labeler.label_instance ~threshold:(-1.0) ~budget:200_000 f in
  let never = Core.Labeler.label_instance ~threshold:1.0 ~budget:200_000 f in
  checkb "threshold -1 labels positive" true always.Core.Labeler.label;
  checkb "threshold 1 labels negative" false never.Core.Labeler.label

(* --- Selector --- *)

let test_selector_policy_matches_probability () =
  let model = Core.Model.create Core.Model.small_config in
  let s = Core.Selector.select_policy model small_formula in
  (match s.Core.Selector.policy with
  | Cdcl.Policy.Frequency _ -> checkb "p > 0.5" true (s.Core.Selector.probability > 0.5)
  | Cdcl.Policy.Default -> checkb "p <= 0.5" true (s.Core.Selector.probability <= 0.5)
  | _ -> Alcotest.fail "selector must pick default or frequency");
  checkb "inference time nonnegative" true (s.Core.Selector.inference_seconds >= 0.0)

let test_selector_solve_adaptive () =
  let model = Core.Model.create Core.Model.small_config in
  let f = Gen.Pigeonhole.unsat 4 in
  let _, result, stats = Core.Selector.solve_adaptive model f in
  checkb "solves correctly" true (result = Cdcl.Solver.Unsat);
  checkb "stats populated" true (stats.Cdcl.Solver_stats.conflicts > 0)

let test_selector_custom_alpha () =
  let model = Core.Model.create Core.Model.small_config in
  let s = Core.Selector.select_policy ~alpha:0.6 model small_formula in
  match s.Core.Selector.policy with
  | Cdcl.Policy.Frequency { alpha } -> checkf "alpha propagated" 0.6 alpha
  | Cdcl.Policy.Default -> () (* model said no; nothing to check *)
  | _ -> Alcotest.fail "unexpected policy"

let test_selector_healthy_not_degraded () =
  let model = Core.Model.create Core.Model.small_config in
  let s = Core.Selector.select_policy model small_formula in
  checkb "healthy inference records no degradation" true
    (s.Core.Selector.degraded = None)

let test_selector_degrades_on_nan_weights () =
  let model = Core.Model.create Core.Model.small_config in
  (* Poison the output layer (the last parameter): relu layers can mask
     hidden NaNs, the head cannot. *)
  (match List.rev (Core.Model.params model) with
  | [] -> Alcotest.fail "model has no parameters"
  | p :: _ -> Tensor.Mat.set p.Nn.Param.value 0 0 Float.nan);
  let s = Core.Selector.select_policy model small_formula in
  (match s.Core.Selector.degraded with
  | Some (Core.Selector.Non_finite_probability p) ->
    checkb "offending probability is non-finite" true (not (Float.is_finite p))
  | Some (Core.Selector.Model_failure m) ->
    Alcotest.failf "classified as model failure: %s" m
  | Some Core.Selector.Breaker_open ->
    Alcotest.fail "breaker tripped on a single NaN"
  | None -> Alcotest.fail "NaN output not detected");
  checkb "falls back to the default policy" true
    (s.Core.Selector.policy = Cdcl.Policy.Default)

let test_selector_degrades_on_injected_failure () =
  let model = Core.Model.create Core.Model.small_config in
  Fun.protect ~finally:Runtime.Fault.disarm (fun () ->
      Runtime.Fault.arm ~seed:3 ~limit:1 [ Runtime.Fault.Inference_failure ];
      let s = Core.Selector.select_policy model small_formula in
      (match s.Core.Selector.degraded with
      | Some (Core.Selector.Model_failure _) -> ()
      | _ -> Alcotest.fail "injected failure not recorded");
      checkb "falls back to the default policy" true
        (s.Core.Selector.policy = Cdcl.Policy.Default);
      (* solve_adaptive still solves under degradation. *)
      Runtime.Fault.arm ~seed:3 ~limit:1 [ Runtime.Fault.Inference_failure ];
      let sel, result, _ = Core.Selector.solve_adaptive model (Gen.Pigeonhole.unsat 3) in
      checkb "degradation surfaced to caller" true (sel.Core.Selector.degraded <> None);
      checkb "still solves" true (result = Cdcl.Solver.Unsat))

(* --- Trainer --- *)

let test_trainer_overfits_separable () =
  (* 3 parity vs 3 ksat instances with opposite labels: the model must
     fit them (family structure is clearly separable). *)
  let rng = Util.Rng.create 51 in
  let examples =
    List.init 3 (fun i ->
        Core.Trainer.example_of_formula
          ~name:(Printf.sprintf "p%d" i)
          ~label:true
          (Gen.Parity.contradiction rng ~num_vars:(12 + i)))
    @ List.init 3 (fun i ->
          Core.Trainer.example_of_formula
            ~name:(Printf.sprintf "k%d" i)
            ~label:false
            (Gen.Ksat.near_threshold rng ~num_vars:(60 + (5 * i))))
  in
  let model = Core.Model.create { Core.Model.small_config with hidden_dim = 12 } in
  let history = Core.Trainer.train ~epochs:60 ~lr:5e-3 model examples in
  checkb "loss decreased" true
    (history.Core.Trainer.epoch_losses.(59) < history.Core.Trainer.epoch_losses.(0));
  checkb "fits training set" true (history.Core.Trainer.final_train_accuracy >= 0.99)

let test_trainer_empty () =
  let model = Core.Model.create Core.Model.small_config in
  Alcotest.check_raises "empty" (Invalid_argument "Trainer.train: empty dataset")
    (fun () -> ignore (Core.Trainer.train model []))

let test_trainer_predictions_aligned () =
  let rng = Util.Rng.create 52 in
  let examples =
    List.init 4 (fun i ->
        Core.Trainer.example_of_formula
          ~name:(string_of_int i)
          ~label:(i mod 2 = 0)
          (Gen.Ksat.generate rng ~num_vars:10 ~num_clauses:30 ~k:3))
  in
  let model = Core.Model.create Core.Model.small_config in
  let predicted, actual = Core.Trainer.predictions model examples in
  checki "lengths" (List.length examples) (Array.length predicted);
  Alcotest.(check (array bool)) "actual labels preserved"
    [| true; false; true; false |] actual

let suite =
  [
    Alcotest.test_case "mpnn shapes" `Quick test_mpnn_shapes;
    Alcotest.test_case "mpnn eq6 sign structure" `Quick test_mpnn_eq6_aggregation;
    Alcotest.test_case "mpnn isolated nodes" `Quick test_mpnn_isolated_nodes_finite;
    Alcotest.test_case "attention shapes" `Quick test_attention_shapes;
    Alcotest.test_case "attention eq9 manual" `Quick test_attention_eq9_manual;
    Alcotest.test_case "attention single node" `Quick test_attention_single_node;
    Alcotest.test_case "hgt attention flag" `Quick test_hgt_attention_flag;
    Alcotest.test_case "model predict range" `Quick test_model_predict_range;
    Alcotest.test_case "model deterministic" `Quick test_model_deterministic;
    Alcotest.test_case "model seed changes" `Quick test_model_seed_changes;
    Alcotest.test_case "model param count" `Quick test_model_param_count_config;
    Alcotest.test_case "model save/load" `Quick test_model_save_load;
    Alcotest.test_case "model predict_formula" `Quick test_model_predict_formula_agrees;
    Alcotest.test_case "metrics confusion" `Quick test_metrics_confusion;
    Alcotest.test_case "metrics degenerate" `Quick test_metrics_degenerate;
    Alcotest.test_case "metrics mismatch" `Quick test_metrics_mismatch;
    Alcotest.test_case "metrics report" `Quick test_metrics_report_percentages;
    Alcotest.test_case "labeler consistency" `Quick test_labeler_consistency;
    Alcotest.test_case "labeler deterministic" `Quick test_labeler_deterministic;
    Alcotest.test_case "labeler threshold" `Quick test_labeler_threshold_sensitivity;
    Alcotest.test_case "selector policy/probability" `Quick test_selector_policy_matches_probability;
    Alcotest.test_case "selector solve adaptive" `Quick test_selector_solve_adaptive;
    Alcotest.test_case "selector custom alpha" `Quick test_selector_custom_alpha;
    Alcotest.test_case "selector healthy not degraded" `Quick
      test_selector_healthy_not_degraded;
    Alcotest.test_case "selector degrades on nan" `Quick
      test_selector_degrades_on_nan_weights;
    Alcotest.test_case "selector degrades on injected failure" `Quick
      test_selector_degrades_on_injected_failure;
    Alcotest.test_case "trainer overfits separable" `Slow test_trainer_overfits_separable;
    Alcotest.test_case "trainer empty" `Quick test_trainer_empty;
    Alcotest.test_case "trainer predictions aligned" `Quick test_trainer_predictions_aligned;
  ]

let test_attention_ablation_differs () =
  let with_attn = Core.Model.create Core.Model.small_config in
  let without =
    Core.Model.create { Core.Model.small_config with use_attention = false }
  in
  checkb "ablation changes prediction" true
    (Core.Model.predict with_attn small_graph
    <> Core.Model.predict without small_graph);
  checkb "ablation has fewer parameters" true
    (Core.Model.num_parameters without < Core.Model.num_parameters with_attn)

let test_normalize_readout_flag () =
  let normalised = Core.Model.create Core.Model.small_config in
  let plain =
    Core.Model.create { Core.Model.small_config with normalize_readout = false }
  in
  checkb "flag changes prediction" true
    (Core.Model.predict normalised small_graph <> Core.Model.predict plain small_graph)

let test_hgt_stacking_shapes () =
  let rng = Util.Rng.create 23 in
  let h1 =
    Core.Hgt.create rng ~var_in:1 ~clause_in:1 ~hidden:6 ~mpnn_layers:3
      ~use_attention:true ~name:"s1"
  in
  let h2 =
    Core.Hgt.create rng ~var_in:6 ~clause_in:6 ~hidden:6 ~mpnn_layers:3
      ~use_attention:true ~name:"s2"
  in
  let tape = Ad.tape () in
  let vf = Ad.const tape (Bigraph.initial_var_features small_graph) in
  let cf = Ad.const tape (Bigraph.initial_clause_features small_graph) in
  let vf1, cf1 = Core.Hgt.forward tape h1 small_graph ~var_feats:vf ~clause_feats:cf in
  let vf2, cf2 = Core.Hgt.forward tape h2 small_graph ~var_feats:vf1 ~clause_feats:cf1 in
  checkb "stacked var shape" true (Mat.shape (Ad.value vf2) = (4, 6));
  checkb "stacked clause shape" true (Mat.shape (Ad.value cf2) = (5, 6))

let suite =
  suite
  @ [
      Alcotest.test_case "attention ablation differs" `Quick
        test_attention_ablation_differs;
      Alcotest.test_case "normalize readout flag" `Quick test_normalize_readout_flag;
      Alcotest.test_case "hgt stacking shapes" `Quick test_hgt_stacking_shapes;
    ]

(* --- fast inference engine ---------------------------------------------- *)

let graphs_for_engine_tests n =
  List.init n (fun i ->
      let rng = Util.Rng.create (500 + i) in
      Bigraph.of_formula
        (Gen.Ksat.generate rng ~num_vars:(20 + (3 * i)) ~num_clauses:(80 + (5 * i))
           ~k:3))

(* The engine replaced the training tape as the production [predict]
   path; it must reproduce the tape's output to the last bit. *)
let test_engine_matches_tape () =
  let model = Core.Model.create Core.Model.paper_config in
  List.iter
    (fun g ->
      let fast = Core.Model.predict model g in
      let tape = Core.Model.predict_tape model g in
      checkb "engine = tape (bits)" true
        (Int64.bits_of_float fast = Int64.bits_of_float tape))
    (small_graph :: graphs_for_engine_tests 4)

let test_forward_batch_matches_singles () =
  let model = Core.Model.create Core.Model.paper_config in
  let graphs = graphs_for_engine_tests 6 in
  let batched = Core.Model.forward_batch model graphs in
  List.iteri
    (fun i g ->
      checkb "batched = single (bits)" true
        (Int64.bits_of_float batched.(i)
        = Int64.bits_of_float (Core.Model.predict model g)))
    graphs;
  checki "empty batch" 0 (Array.length (Core.Model.forward_batch model []))

(* Steady-state inference must be allocation-light: after warmup the
   engine runs out of pooled buffers, so a forward allocates orders of
   magnitude fewer minor words than the tape path (which rebuilds the
   autodiff graph every call). *)
let test_engine_allocation_light () =
  let model = Core.Model.create Core.Model.paper_config in
  let g = small_graph in
  ignore (Core.Model.predict model g);
  ignore (Core.Model.predict model g);
  let words_of f =
    let before = Gc.minor_words () in
    f ();
    Gc.minor_words () -. before
  in
  let fast = words_of (fun () -> ignore (Core.Model.predict model g)) in
  let tape = words_of (fun () -> ignore (Core.Model.predict_tape model g)) in
  checkb
    (Printf.sprintf "fast %.0f words << tape %.0f words" fast tape)
    true
    (fast < tape /. 20.0)

let test_q8_predict_close_and_agreement () =
  let model = Core.Model.create Core.Model.paper_config in
  let graphs = graphs_for_engine_tests 5 in
  List.iter
    (fun g ->
      let p = Core.Model.predict model g in
      let pq = Core.Model.predict_q8 model g in
      checkb "q8 within 0.05 of float" true (Float.abs (p -. pq) < 0.05))
    graphs;
  let formulas =
    List.init 8 (fun i ->
        let rng = Util.Rng.create (900 + i) in
        Gen.Ksat.generate rng ~num_vars:15 ~num_clauses:60 ~k:3)
  in
  let frac = Core.Selector.q8_agreement model formulas in
  checkb "agreement fraction in [0,1]" true (frac >= 0.0 && frac <= 1.0);
  checkf "empty agreement" 1.0 (Core.Selector.q8_agreement model [])

(* --- selector decision cache -------------------------------------------- *)

let test_selector_cache_hit_and_stats () =
  Core.Selector.clear_cache ();
  Core.Selector.reset_breaker ();
  let model = Core.Model.create Core.Model.small_config in
  let before = Core.Selector.cache_stats () in
  let s1 = Core.Selector.select_policy ~use_cache:true model small_formula in
  checkb "first is a miss" true (not s1.Core.Selector.cached);
  let s2 = Core.Selector.select_policy ~use_cache:true model small_formula in
  checkb "second is a hit" true s2.Core.Selector.cached;
  checkf "same probability" s1.Core.Selector.probability
    s2.Core.Selector.probability;
  (* A hit reports the fingerprint+lookup time, not a model forward. *)
  checkb "hit is much cheaper than the miss" true
    (s2.Core.Selector.inference_seconds < 1e-3
    && s2.Core.Selector.inference_seconds <= s1.Core.Selector.inference_seconds);
  let after = Core.Selector.cache_stats () in
  checki "one hit" (before.Core.Selector.hits + 1) after.Core.Selector.hits;
  checki "one miss" (before.Core.Selector.misses + 1) after.Core.Selector.misses;
  (* A shuffled clause set is the same instance: must hit. *)
  let rng = Util.Rng.create 5 in
  let shuffled =
    Verify.Metamorphic.apply rng Verify.Metamorphic.Shuffle_clauses
      small_formula
  in
  let s3 = Core.Selector.select_policy ~use_cache:true model shuffled in
  checkb "shuffled clauses hit" true s3.Core.Selector.cached;
  (* A polarity flip is a different instance: must not hit. *)
  let rec flipped_differs attempts =
    attempts > 0
    &&
    let flipped =
      Verify.Metamorphic.apply rng Verify.Metamorphic.Flip_polarity
        small_formula
    in
    (Cnf.Fingerprint.compute flipped <> Cnf.Fingerprint.compute small_formula)
    || flipped_differs (attempts - 1)
  in
  checkb "some polarity flip changes the key" true (flipped_differs 8);
  (* Off by default: existing fault-injection semantics untouched. *)
  let s4 = Core.Selector.select_policy model small_formula in
  checkb "default path uncached" true (not s4.Core.Selector.cached)

let test_selector_cache_invalidated_by_load () =
  Core.Selector.clear_cache ();
  Core.Selector.reset_breaker ();
  let model = Core.Model.create Core.Model.small_config in
  let gen0 = Core.Model.generation model in
  ignore (Core.Selector.select_policy ~use_cache:true model small_formula);
  let path = Filename.temp_file "ns-cache-inval" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Core.Model.save path model;
      Core.Model.load path model;
      checkb "load bumps generation" true (Core.Model.generation model > gen0);
      let evictions_before = (Core.Selector.cache_stats ()).Core.Selector.evictions in
      let s = Core.Selector.select_policy ~use_cache:true model small_formula in
      checkb "post-load is a miss" true (not s.Core.Selector.cached);
      checkb "stale entries evicted" true
        ((Core.Selector.cache_stats ()).Core.Selector.evictions
        > evictions_before))

let test_selector_cache_capacity_eviction () =
  Core.Selector.clear_cache ();
  Core.Selector.reset_breaker ();
  let model = Core.Model.create Core.Model.small_config in
  Core.Selector.set_cache_capacity 2;
  Fun.protect
    ~finally:(fun () -> Core.Selector.set_cache_capacity 512)
    (fun () ->
      let formulas =
        List.init 3 (fun i ->
            Generators.ksat ~seed:(700 + i) ~num_vars:10 ~num_clauses:30 ())
      in
      List.iter
        (fun f ->
          ignore (Core.Selector.select_policy ~use_cache:true model f))
        formulas;
      let cs = Core.Selector.cache_stats () in
      checki "size capped" 2 cs.Core.Selector.size;
      checki "capacity reported" 2 cs.Core.Selector.capacity;
      (* LRU: the first formula was evicted, the last two are live. *)
      let s =
        Core.Selector.select_policy ~use_cache:true model (List.nth formulas 0)
      in
      checkb "oldest evicted" true (not s.Core.Selector.cached);
      Alcotest.check_raises "capacity must be positive"
        (Invalid_argument "Selector.set_cache_capacity") (fun () ->
          Core.Selector.set_cache_capacity 0))

let test_selector_batch_matches_singles () =
  Core.Selector.clear_cache ();
  Core.Selector.reset_breaker ();
  let model = Core.Model.create Core.Model.small_config in
  let formulas =
    List.init 5 (fun i ->
        Generators.ksat ~seed:(800 + i) ~num_vars:12 ~num_clauses:40 ())
  in
  let singles =
    List.map (fun f -> Core.Selector.select_policy model f) formulas
  in
  let batch = Core.Selector.select_policy_batch model formulas in
  List.iter2
    (fun (a : Core.Selector.selection) (b : Core.Selector.selection) ->
      checkb "same probability (bits)" true
        (Int64.bits_of_float a.Core.Selector.probability
        = Int64.bits_of_float b.Core.Selector.probability);
      checkb "same policy" true
        (a.Core.Selector.policy = b.Core.Selector.policy))
    singles batch;
  (* With the cache on, a second batch of the same formulas is all hits. *)
  let warm = Core.Selector.select_policy_batch ~use_cache:true model formulas in
  checkb "first cached batch has misses" true
    (List.exists (fun s -> not s.Core.Selector.cached) warm);
  let hot = Core.Selector.select_policy_batch ~use_cache:true model formulas in
  checkb "second cached batch all hits" true
    (List.for_all (fun s -> s.Core.Selector.cached) hot);
  checki "empty batch" 0
    (List.length (Core.Selector.select_policy_batch model []))

let suite =
  suite
  @ [
      Alcotest.test_case "engine matches tape" `Quick test_engine_matches_tape;
      Alcotest.test_case "forward_batch matches singles" `Quick
        test_forward_batch_matches_singles;
      Alcotest.test_case "engine allocation-light" `Quick
        test_engine_allocation_light;
      Alcotest.test_case "q8 predict close + agreement" `Quick
        test_q8_predict_close_and_agreement;
      Alcotest.test_case "selector cache hit/miss/stats" `Quick
        test_selector_cache_hit_and_stats;
      Alcotest.test_case "selector cache invalidated by load" `Quick
        test_selector_cache_invalidated_by_load;
      Alcotest.test_case "selector cache capacity/LRU" `Quick
        test_selector_cache_capacity_eviction;
      Alcotest.test_case "selector batch matches singles" `Quick
        test_selector_batch_matches_singles;
    ]

(* Shared random-instance helpers for the test suites.

   Every suite that property-tests against random CNFs used to inline
   the same seed-to-formula plumbing; it lives here once instead. All
   helpers are deterministic in their [seed] so failures replay. *)

(* Uniform k-SAT from a single integer seed. [k] is clamped to the
   variable count. *)
let ksat ?(k = 3) ~seed ~num_vars ~num_clauses () =
  let rng = Util.Rng.create seed in
  Gen.Ksat.generate rng ~num_vars ~num_clauses ~k:(min k num_vars)

(* Same, but also returns the generator (advanced past the formula) so
   callers can draw further correlated data — assignments, assumption
   literals — reproducibly. *)
let ksat_with_rng ?(k = 3) ~seed ~num_vars ~num_clauses () =
  let rng = Util.Rng.create seed in
  let f = Gen.Ksat.generate rng ~num_vars ~num_clauses ~k:(min k num_vars) in
  (f, rng)

(* Random CNF with clause lengths mixed in [1, 4] — exercises unit
   clauses and binary-clause special cases that uniform k-SAT never
   produces. *)
let mixed_lengths ~seed ~num_vars ~num_clauses () =
  let rng = Util.Rng.create seed in
  let b = Cnf.Formula.Builder.create () in
  Cnf.Formula.Builder.ensure_vars b num_vars;
  for _ = 1 to num_clauses do
    let k = Util.Rng.int_in rng 1 (min 4 num_vars) in
    let vars = Util.Rng.sample_distinct rng k num_vars in
    Cnf.Formula.Builder.add_clause b
      (Array.to_list
         (Array.map (fun v -> Cnf.Lit.make (v + 1) (Util.Rng.bool rng)) vars))
  done;
  Cnf.Formula.Builder.build b

(* Exhaustive satisfiability ground truth; only for tiny instances. *)
let brute_force_sat f =
  let n = Cnf.Formula.num_vars f in
  assert (n <= 20);
  let assignment = Array.make (n + 1) false in
  let rec go v =
    if v > n then Cnf.Formula.eval f assignment
    else begin
      assignment.(v) <- false;
      go (v + 1)
      ||
      (assignment.(v) <- true;
       go (v + 1))
    end
  in
  go 1

(* Deterministic clause split for incremental-API properties: partition
   a formula's clauses into an initial prefix (loaded at create time)
   and a remainder (replayed through [Solver.add_clause] between
   solves). The coin flips are seeded so failures replay. *)
let split_clauses ~seed f =
  let rng = Util.Rng.create (seed lxor 0x1ec5) in
  let first = ref [] and rest = ref [] in
  Cnf.Formula.iter_clauses
    (fun c ->
      if Util.Rng.bool rng then first := c :: !first else rest := c :: !rest)
    f;
  (List.rev !first, List.rev !rest)

(* QCheck input shapes shared by the solver cross-check properties: a
   seed paired with a clause count in the given range. *)
let seed_and_clauses lo hi = QCheck.(pair small_int (int_range lo hi))

(* Differential tests for the arena-backed solver.

   [Verify.Refsolver] implements the same search with record-based
   clauses; only the memory layout (flat arena, stride-2 watcher pairs,
   packed ranking keys, copying compaction) differs. On every instance
   and configuration the two must therefore agree bit for bit on the
   verdict, every statistics counter, and the learned/deleted trace —
   which pins the arena layer down far harder than verdict-only
   checks. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let stats_fields (s : Cdcl.Solver_stats.t) =
  [
    ("decisions", s.Cdcl.Solver_stats.decisions);
    ("conflicts", s.Cdcl.Solver_stats.conflicts);
    ("propagations", s.Cdcl.Solver_stats.propagations);
    ("restarts", s.Cdcl.Solver_stats.restarts);
    ("reduces", s.Cdcl.Solver_stats.reduces);
    ("learned_total", s.Cdcl.Solver_stats.learned_total);
    ("deleted_total", s.Cdcl.Solver_stats.deleted_total);
    ("minimized_literals", s.Cdcl.Solver_stats.minimized_literals);
    ("max_decision_level", s.Cdcl.Solver_stats.max_decision_level);
  ]

let lits_to_string lits =
  String.concat ","
    (Array.to_list (Array.map (fun l -> string_of_int (Cnf.Lit.to_dimacs l)) lits))

let event_to_string = function
  | Cdcl.Solver.Learned lits -> "L " ^ lits_to_string lits
  | Cdcl.Solver.Deleted lits -> "D " ^ lits_to_string lits

(* Run both solvers on [f] under [config]; compare verdict, stats, and
   trace streams; DRUP-check the arena solver's proof on UNSAT. Returns
   the arena solver for further inspection. *)
let run_diff ~ctx ?(check_proof = true) config f =
  let arena = Cdcl.Solver.create ~config f in
  let arena_events = ref [] in
  let drup = Cdcl.Drup.create () in
  Cdcl.Solver.set_trace arena (fun ev ->
      arena_events := ev :: !arena_events;
      Cdcl.Drup.event drup ev);
  let ref_solver = Verify.Refsolver.create ~config f in
  let ref_events = ref [] in
  Verify.Refsolver.set_trace ref_solver (fun ev -> ref_events := ev :: !ref_events);
  let ra = Cdcl.Solver.solve arena in
  let rr = Verify.Refsolver.solve ref_solver in
  (match (ra, rr) with
  | Cdcl.Solver.Sat ma, Cdcl.Solver.Sat mr ->
    checkb (ctx ^ ": both models satisfy") true
      (Cdcl.Solver.check_model f ma && Cdcl.Solver.check_model f mr);
    checkb (ctx ^ ": identical models") true (ma = mr)
  | Cdcl.Solver.Unsat, Cdcl.Solver.Unsat -> ()
  | Cdcl.Solver.Unknown, Cdcl.Solver.Unknown -> ()
  | _ -> Alcotest.failf "%s: verdicts diverge" ctx);
  List.iter2
    (fun (name, a) (_, r) -> checki (ctx ^ ": stat " ^ name) r a)
    (stats_fields (Cdcl.Solver.stats arena))
    (stats_fields (Verify.Refsolver.stats ref_solver));
  checki
    (ctx ^ ": learned clause count")
    (Verify.Refsolver.learned_clause_count ref_solver)
    (Cdcl.Solver.learned_clause_count arena);
  checkb
    (ctx ^ ": propagation counts")
    true
    (Cdcl.Solver.propagation_counts arena
    = Verify.Refsolver.propagation_counts ref_solver);
  let norm evs = List.rev_map event_to_string !evs in
  let ea = norm arena_events and er = norm ref_events in
  checki (ctx ^ ": trace length") (List.length er) (List.length ea);
  List.iteri
    (fun i (a, r) ->
      if a <> r then
        Alcotest.failf "%s: trace event %d diverges: arena %s vs ref %s" ctx i a r)
    (List.combine ea er);
  if check_proof && ra = Cdcl.Solver.Unsat then begin
    Cdcl.Drup.conclude_unsat drup;
    checkb (ctx ^ ": DRUP proof valid") true
      (Cdcl.Drup_check.check_solver_proof f drup = Cdcl.Drup_check.Valid)
  end;
  arena

(* An aggressive reduce schedule so small fuzz instances actually
   exercise deletion, compaction, and the packed ranking keys. *)
let diff_config policy branching =
  {
    Cdcl.Config.default with
    Cdcl.Config.policy;
    branching;
    reduce_first = 20;
    reduce_inc = 10;
    reduce_fraction = 0.7;
    tier1_glue = 0;
  }

let test_refdiff_corpus () =
  let configs =
    [
      ("default/evsids", diff_config Cdcl.Policy.Default Cdcl.Config.Evsids);
      ("frequency/evsids", diff_config Cdcl.Policy.frequency_default Cdcl.Config.Evsids);
      ("activity/evsids", diff_config Cdcl.Policy.Activity Cdcl.Config.Evsids);
      ("random/vmtf", diff_config (Cdcl.Policy.Random 3) Cdcl.Config.Vmtf);
      ( "glue/glucose",
        {
          (diff_config Cdcl.Policy.Glue_only Cdcl.Config.Evsids) with
          Cdcl.Config.restart_mode =
            Cdcl.Config.Glucose { fast_alpha = 0.2; slow_alpha = 0.01; margin = 1.1 };
        } );
    ]
  in
  for i = 0 to 39 do
    let family, f = Verify.Fuzz.generate_case ~seed:4242 i in
    List.iter
      (fun (cname, config) ->
        let ctx = Printf.sprintf "case %d (%s) %s" i family cname in
        ignore (run_diff ~ctx config f))
      configs
  done

let test_refdiff_budgets_match () =
  (* Unknown verdicts (budget exhaustion) must land on the identical
     conflict, so budgeted stats agree too. *)
  let config =
    Cdcl.Config.with_budget ~max_conflicts:50
      (diff_config Cdcl.Policy.frequency_default Cdcl.Config.Evsids)
  in
  let f = Gen.Pigeonhole.unsat 7 in
  ignore (run_diff ~ctx:"budgeted pigeonhole" ~check_proof:false config f)

(* Force at least two arena compactions and check full equivalence plus
   a valid proof in their presence. Deleting 90% of learnts every 20
   conflicts makes garbage cross the 25% GC threshold repeatedly. *)
let test_refdiff_compaction () =
  let config =
    {
      Cdcl.Config.default with
      Cdcl.Config.policy = Cdcl.Policy.frequency_default;
      reduce_first = 20;
      reduce_inc = 0;
      reduce_fraction = 0.9;
      tier1_glue = 0;
    }
  in
  let f = Gen.Pigeonhole.unsat 7 in
  let arena = run_diff ~ctx:"compaction pigeonhole" config f in
  checkb "at least two compactions ran" true (Cdcl.Solver.arena_gc_count arena >= 2);
  checkb "live words positive" true (Cdcl.Solver.arena_live_words arena > 0)

(* The reduce pass must not allocate per candidate: after a warm-up
   pass has sized the scratch arrays, a reduce over hundreds of
   candidates stays within a small constant minor-heap budget. The
   seed implementation allocated a list cell, tuple, info record, and
   boxed key per candidate (thousands of words here). *)
let test_reduce_allocation_free () =
  let config =
    {
      Cdcl.Config.default with
      Cdcl.Config.policy = Cdcl.Policy.frequency_default;
      (* Reduces only via reduce_now. *)
      reduce_first = max_int;
      max_conflicts = Some 1500;
      restart_mode = Cdcl.Config.No_restarts;
    }
  in
  let rng = Util.Rng.create 5 in
  let t =
    Cdcl.Solver.create ~config
      (Gen.Ksat.generate rng ~num_vars:150 ~num_clauses:640 ~k:3)
  in
  (match Cdcl.Solver.solve t with
  | Cdcl.Solver.Unknown -> ()
  | _ -> Alcotest.fail "instance must exhaust its conflict budget");
  Cdcl.Solver.reduce_now t (* warm-up: sizes the ranking scratch *);
  ignore (Cdcl.Solver.solve t) (* accumulate fresh learnts and counts *);
  checkb "enough candidates to be meaningful" true
    (Cdcl.Solver.learned_clause_count t > 300);
  let before = Gc.minor_words () in
  Cdcl.Solver.reduce_now t;
  let allocated = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "reduce allocated %.0f minor words" allocated)
    true (allocated < 256.0)

(* Keysort against the obvious specification. *)
let prop_keysort_matches_spec =
  QCheck.Test.make ~name:"keysort matches List.sort on (key, tie)" ~count:300
    QCheck.(small_list (pair small_int small_int))
    (fun pairs ->
      let n = List.length pairs in
      let keys = Array.of_list (List.map fst pairs) in
      (* Unique ties, as in the solver (clause ids). *)
      let tie = Array.init n (fun i -> i * 3) in
      let refs = Array.of_list (List.map snd pairs) in
      let expected =
        List.sort compare
          (Array.to_list (Array.init n (fun i -> (keys.(i), tie.(i), refs.(i)))))
      in
      Cdcl.Keysort.sort ~keys ~tie ~refs ~len:n;
      let got = Array.to_list (Array.init n (fun i -> (keys.(i), tie.(i), refs.(i)))) in
      got = expected)

let suite =
  [
    Alcotest.test_case "arena vs reference: fuzz corpus" `Quick test_refdiff_corpus;
    Alcotest.test_case "arena vs reference: budgets" `Quick test_refdiff_budgets_match;
    Alcotest.test_case "arena vs reference: compaction" `Quick test_refdiff_compaction;
    Alcotest.test_case "reduce allocation-free" `Quick test_reduce_allocation_free;
    QCheck_alcotest.to_alcotest prop_keysort_matches_spec;
  ]

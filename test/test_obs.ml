(* Tests for the observability layer: metric registry semantics,
   log-bucketed histograms, span tracing with JSONL export, and the
   stable report / bench-report schemas. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Every test uses its own registry so the metrics registered by the
   linked libraries (solver counters etc.) cannot interfere. *)
let fresh () = Obs.Metrics.create_registry ()

(* --- counters and gauges --- *)

let test_counter_basics () =
  let registry = fresh () in
  let c = Obs.Metrics.counter ~registry "c" in
  checki "starts at zero" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  checki "incr + add" 5 (Obs.Metrics.counter_value c);
  let c' = Obs.Metrics.counter ~registry "c" in
  Obs.Metrics.incr c';
  checki "same name, same handle" 6 (Obs.Metrics.counter_value c);
  checkb "negative delta rejected" true
    (match Obs.Metrics.add c (-1) with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_kind_mismatch () =
  let registry = fresh () in
  let _ = Obs.Metrics.counter ~registry "m" in
  checkb "re-registering as gauge raises" true
    (match Obs.Metrics.gauge ~registry "m" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let _ = Obs.Metrics.histogram ~registry "h" in
  checkb "histogram with different bounds raises" true
    (match Obs.Metrics.histogram ~registry ~bounds:[| 1.0; 2.0 |] "h" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_gauge_last_write_wins () =
  let registry = fresh () in
  let g = Obs.Metrics.gauge ~registry "depth" in
  Obs.Metrics.set g 3.0;
  Obs.Metrics.set g 7.5;
  Alcotest.(check (float 0.0)) "last write" 7.5 (Obs.Metrics.gauge_value g)

(* --- histogram bucket boundaries --- *)

let bucket_count_for h le =
  let buckets = Obs.Metrics.buckets h in
  match Array.find_opt (fun (b, _) -> b = le) buckets with
  | Some (_, n) -> n
  | None -> Alcotest.fail (Printf.sprintf "no bucket with le=%g" le)

let test_default_bounds_shape () =
  let b = Obs.Metrics.default_bounds in
  checki "37 upper bounds" 37 (Array.length b);
  Alcotest.(check (float 0.0)) "first bound" 1e-9 b.(0);
  Alcotest.(check (float 0.0)) "last bound" 1e3 b.(Array.length b - 1);
  (* Strictly increasing, 1-2-5 ladder. *)
  for i = 1 to Array.length b - 1 do
    checkb "strictly increasing" true (b.(i) > b.(i - 1))
  done;
  Alcotest.(check (float 1e-18)) "second bound" 2e-9 b.(1);
  Alcotest.(check (float 1e-18)) "third bound" 5e-9 b.(2)

let test_bucket_boundaries () =
  let registry = fresh () in
  let h = Obs.Metrics.histogram ~registry ~bounds:[| 1.0; 2.0; 5.0 |] "h" in
  (* le semantics: a value equal to a bound lands in that bound's
     bucket; values beyond the last bound land in overflow. *)
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.9; 5.0; 5.1; 100.0 ];
  checki "le=1 bucket" 2 (bucket_count_for h 1.0);
  checki "le=2 bucket" 2 (bucket_count_for h 2.0);
  checki "le=5 bucket" 2 (bucket_count_for h 5.0);
  checki "overflow bucket" 2 (bucket_count_for h infinity);
  checki "count" 8 (Obs.Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 120.0 (Obs.Metrics.hist_sum h);
  (* Zero, negatives, NaN. *)
  Obs.Metrics.observe h 0.0;
  Obs.Metrics.observe h (-3.0);
  checki "nonpositive values land in the first bucket" 4
    (bucket_count_for h 1.0);
  Obs.Metrics.observe h Float.nan;
  checki "NaN dropped" 10 (Obs.Metrics.hist_count h)

let test_histogram_merge () =
  let registry = fresh () in
  let a = Obs.Metrics.histogram ~registry ~bounds:[| 1.0; 10.0 |] "a" in
  let b = Obs.Metrics.histogram ~registry ~bounds:[| 1.0; 10.0 |] "b" in
  List.iter (Obs.Metrics.observe a) [ 0.5; 5.0 ];
  List.iter (Obs.Metrics.observe b) [ 5.0; 50.0; 0.25 ];
  Obs.Metrics.merge ~into:a b;
  checki "merged count" 5 (Obs.Metrics.hist_count a);
  Alcotest.(check (float 1e-9)) "merged sum" 60.75 (Obs.Metrics.hist_sum a);
  checki "merged first bucket" 2 (bucket_count_for a 1.0);
  checki "merged second bucket" 2 (bucket_count_for a 10.0);
  checki "merged overflow" 1 (bucket_count_for a infinity);
  checki "source untouched" 3 (Obs.Metrics.hist_count b);
  let c = Obs.Metrics.histogram ~registry ~bounds:[| 2.0; 4.0 |] "c" in
  checkb "mismatched bounds rejected" true
    (match Obs.Metrics.merge ~into:a c with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_reset () =
  let registry = fresh () in
  let c = Obs.Metrics.counter ~registry "c" in
  let h = Obs.Metrics.histogram ~registry "h" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 1.0;
  Obs.Metrics.reset ~registry ();
  checki "counter zeroed" 0 (Obs.Metrics.counter_value c);
  checki "histogram zeroed" 0 (Obs.Metrics.hist_count h);
  Obs.Metrics.incr c;
  checki "handle still live after reset" 1 (Obs.Metrics.counter_value c)

(* --- counter monotonicity under interleaved spans (qcheck) --- *)

(* A random program of increments nested arbitrarily inside spans.
   Executing it must (a) bump the counter exactly once per Incr no
   matter how spans interleave, (b) never let the observed value
   decrease, and (c) leave the span stack balanced. *)
type prog = Incr | Seq of prog * prog | Span of prog

let prog_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 1 then return Incr
           else
             frequency
               [
                 (2, return Incr);
                 (2, map (fun p -> Span p) (self (n / 2)));
                 (3, map2 (fun a b -> Seq (a, b)) (self (n / 2)) (self (n / 2)));
               ]))

let rec incr_count = function
  | Incr -> 1
  | Seq (a, b) -> incr_count a + incr_count b
  | Span p -> incr_count p

let prog_arbitrary =
  let rec print = function
    | Incr -> "i"
    | Seq (a, b) -> print a ^ ";" ^ print b
    | Span p -> "[" ^ print p ^ "]"
  in
  QCheck.make ~print prog_gen

let monotonic_under_spans =
  QCheck.Test.make ~name:"counter monotone under interleaved spans" ~count:200
    prog_arbitrary (fun prog ->
      let registry = fresh () in
      let c = Obs.Metrics.counter ~registry "ops" in
      let buf = Buffer.create 256 in
      Obs.Trace.enable_buffer buf;
      let monotone = ref true in
      let last = ref (-1) in
      let rec exec = function
        | Incr ->
          Obs.Metrics.incr c;
          let v = Obs.Metrics.counter_value c in
          if v <= !last then monotone := false;
          last := v
        | Seq (a, b) ->
          exec a;
          exec b
        | Span p -> Obs.Trace.with_span "t" (fun () -> exec p)
      in
      exec prog;
      let balanced = Obs.Trace.depth () = 0 in
      Obs.Trace.disable ();
      !monotone
      && balanced
      && Obs.Metrics.counter_value c = incr_count prog)

(* --- trace JSONL round-trip --- *)

let span_lines buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l ->
         match Obs.Json.parse l with
         | Ok j -> j
         | Error e -> Alcotest.fail ("bad trace line: " ^ e))

let field name conv j =
  match Option.bind (Obs.Json.member name j) conv with
  | Some v -> v
  | None -> Alcotest.fail ("missing trace field " ^ name)

let test_trace_roundtrip () =
  let buf = Buffer.create 512 in
  Obs.Trace.enable_buffer buf;
  checkb "enabled" true (Obs.Trace.enabled ());
  Obs.Trace.with_span "outer" (fun () ->
      Obs.Trace.with_span "inner-a" (fun () -> ());
      Obs.Trace.with_span "inner-b" (fun () ->
          Obs.Trace.with_span "leaf" (fun () -> ())));
  Obs.Trace.disable ();
  checkb "disabled" false (Obs.Trace.enabled ());
  let spans = span_lines buf in
  checki "four spans" 4 (List.length spans);
  let by_name name =
    List.find (fun j -> field "name" Obs.Json.to_string_opt j = name) spans
  in
  let id j = field "id" Obs.Json.to_int_opt j in
  let parent j = Option.bind (Obs.Json.member "parent" j) Obs.Json.to_int_opt in
  let outer = by_name "outer" in
  checkb "outer is a root span" true (parent outer = None);
  checki "outer depth" 0 (field "depth" Obs.Json.to_int_opt outer);
  List.iter
    (fun n ->
      checkb (n ^ " nests under outer") true
        (parent (by_name n) = Some (id outer));
      checki (n ^ " depth") 1 (field "depth" Obs.Json.to_int_opt (by_name n)))
    [ "inner-a"; "inner-b" ];
  checkb "leaf nests under inner-b" true
    (parent (by_name "leaf") = Some (id (by_name "inner-b")));
  checki "leaf depth" 2 (field "depth" Obs.Json.to_int_opt (by_name "leaf"));
  List.iter
    (fun j ->
      checkb "dur non-negative" true (field "dur" Obs.Json.to_float_opt j >= 0.0);
      checkb "start non-negative" true
        (field "start" Obs.Json.to_float_opt j >= 0.0);
      checki "pid" (Unix.getpid ()) (field "pid" Obs.Json.to_int_opt j))
    spans

let test_trace_survives_exception () =
  let buf = Buffer.create 128 in
  Obs.Trace.enable_buffer buf;
  (try
     Obs.Trace.with_span "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  checki "stack unwound" 0 (Obs.Trace.depth ());
  Obs.Trace.disable ();
  checki "span still emitted" 1 (List.length (span_lines buf))

let test_trace_disabled_is_passthrough () =
  checkb "disabled by default here" false (Obs.Trace.enabled ());
  checki "with_span returns the thunk's value" 41
    (Obs.Trace.with_span "noop" (fun () -> 41))

(* --- JSON parser / printer --- *)

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a \"b\"\n\t\\");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 0.125);
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5 ]);
      ]
  in
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Error e -> Alcotest.fail e
  | Ok j' ->
    checkb "round-trips structurally" true (j = j');
    checks "stable bytes" (Obs.Json.to_string j) (Obs.Json.to_string j')

let test_json_errors () =
  List.iter
    (fun s ->
      checkb ("rejects " ^ s) true
        (match Obs.Json.parse s with Error _ -> true | Ok _ -> false))
    [ "{"; "[1,"; "\"unterminated"; "nul"; "{\"a\" 1}"; "1 2" ]

(* --- report schema: golden file --- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let golden_registry () =
  let registry = fresh () in
  let c = Obs.Metrics.counter ~registry "cdcl.propagations" in
  Obs.Metrics.add c 12345;
  let g = Obs.Metrics.gauge ~registry "runtime.pool.queue_depth" in
  Obs.Metrics.set g 3.0;
  let h =
    Obs.Metrics.histogram ~registry ~bounds:[| 1e-3; 1e-2; 1e-1 |]
      "selector.inference_seconds"
  in
  List.iter (Obs.Metrics.observe h) [ 0.0005; 0.02; 0.02; 5.0 ];
  registry

let test_report_golden () =
  let registry = golden_registry () in
  let got = Obs.Report.to_string ~registry ~now:1700000000.0 () ^ "\n" in
  let want = read_file "obs_report.golden" in
  checks "report bytes match golden file" want got

let test_report_validates () =
  let registry = golden_registry () in
  (match Obs.Report.validate (Obs.Report.to_json ~registry ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("golden registry report invalid: " ^ e));
  (* The default registry — with everything the linked libraries
     registered — must validate too. *)
  match Obs.Report.validate (Obs.Report.to_json ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("default registry report invalid: " ^ e)

let test_report_rejects_bad_docs () =
  List.iter
    (fun (label, doc) ->
      checkb label true
        (match Obs.Report.validate doc with Error _ -> true | Ok () -> false))
    [
      ("missing schema", Obs.Json.Obj []);
      ( "wrong schema",
        Obs.Json.Obj [ ("schema", Obs.Json.String "ns.metrics/999") ] );
      ( "counters not an object",
        Obs.Json.Obj
          [
            ("schema", Obs.Json.String "ns.metrics/1");
            ("created_unix", Obs.Json.Float 0.0);
            ("counters", Obs.Json.List []);
            ("gauges", Obs.Json.Obj []);
            ("histograms", Obs.Json.Obj []);
          ] );
    ]

(* --- bench report schema + regression gate --- *)

let bench ~kernels =
  Obs.Bench_report.make ~date:"2026-08-07" ~fast:true
    ~kernels:
      (List.map
         (fun (name, ns_per_run) -> { Obs.Bench_report.name; ns_per_run })
         kernels)
    ~metrics:(Obs.Report.to_json ~registry:(golden_registry ()) ~now:0.0 ())

let test_bench_report_roundtrip () =
  let b = bench ~kernels:[ ("bcp", 1000.0); ("reduce", 2000.0) ] in
  (match Obs.Bench_report.validate (Obs.Bench_report.to_json b) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("bench report invalid: " ^ e));
  match Obs.Bench_report.of_json (Obs.Bench_report.to_json b) with
  | Error e -> Alcotest.fail e
  | Ok b' ->
    checkb "round-trips" true (b = b');
    checks "stable bytes"
      (Obs.Json.to_string (Obs.Bench_report.to_json b))
      (Obs.Json.to_string (Obs.Bench_report.to_json b'))

let test_checked_in_baseline_validates () =
  (* The CI regression gate is only as good as the baseline artifact:
     the checked-in file must parse under the current schema. *)
  match Obs.Json.parse (read_file "../bench/baseline.json") with
  | Error e -> Alcotest.fail ("bench/baseline.json unreadable: " ^ e)
  | Ok j -> (
    match Obs.Bench_report.validate j with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("bench/baseline.json invalid: " ^ e))

let comparison ?absolute ~baseline ~current () =
  Obs.Bench_report.compare_kernels ?absolute
    ~baseline:(bench ~kernels:baseline) ~current:(bench ~kernels:current) ()

let test_benchdiff_detects_regression () =
  let c =
    comparison
      ~baseline:[ ("a", 100.0); ("b", 100.0); ("c", 100.0) ]
      ~current:[ ("a", 100.0); ("b", 200.0); ("c", 100.0) ]
      ()
  in
  checkb "regression fails the gate" false c.Obs.Bench_report.ok;
  let regressed =
    List.filter_map
      (fun e ->
        if e.Obs.Bench_report.regressed then Some e.Obs.Bench_report.kernel
        else None)
      c.Obs.Bench_report.entries
  in
  checkb "only the slow kernel is flagged" true (regressed = [ "b" ])

let test_benchdiff_normalizes_machine_speed () =
  (* A uniformly 3x slower machine is not a regression … *)
  let uniform =
    comparison
      ~baseline:[ ("a", 100.0); ("b", 100.0); ("c", 100.0) ]
      ~current:[ ("a", 300.0); ("b", 300.0); ("c", 300.0) ]
      ()
  in
  checkb "uniform slowdown passes (normalized)" true uniform.Obs.Bench_report.ok;
  (* … but the same report fails the absolute gate. *)
  let absolute =
    comparison ~absolute:true
      ~baseline:[ ("a", 100.0); ("b", 100.0); ("c", 100.0) ]
      ~current:[ ("a", 300.0); ("b", 300.0); ("c", 300.0) ]
      ()
  in
  checkb "uniform slowdown fails (absolute)" false absolute.Obs.Bench_report.ok

let test_benchdiff_missing_kernel () =
  let c =
    comparison
      ~baseline:[ ("a", 100.0); ("b", 100.0) ]
      ~current:[ ("a", 100.0) ]
      ()
  in
  checkb "missing kernel fails the gate" false c.Obs.Bench_report.ok;
  checkb "missing kernel named" true (c.Obs.Bench_report.missing = [ "b" ])

let test_benchdiff_within_tolerance () =
  let c =
    comparison
      ~baseline:[ ("a", 100.0); ("b", 100.0); ("c", 100.0) ]
      ~current:[ ("a", 110.0); ("b", 95.0); ("c", 100.0) ]
      ()
  in
  checkb "small drift passes" true c.Obs.Bench_report.ok

(* --- instrumented solver counters --- *)

let test_solver_counters_accrue () =
  (* The registry is process-wide and cumulative; measure deltas. *)
  let value name =
    match Obs.Metrics.find name with
    | Some (Obs.Metrics.Counter c) -> Obs.Metrics.counter_value c
    | _ -> Alcotest.fail ("missing counter " ^ name)
  in
  let props0 = value "cdcl.propagations" in
  let conflicts0 = value "cdcl.conflicts" in
  let result, stats = Cdcl.Solver.solve_formula (Gen.Pigeonhole.unsat 4) in
  checkb "PHP(5,4) is unsat" true (result = Cdcl.Solver.Unsat);
  checki "propagation counter tracks solver stats"
    stats.Cdcl.Solver_stats.propagations
    (value "cdcl.propagations" - props0);
  checki "conflict counter tracks solver stats"
    stats.Cdcl.Solver_stats.conflicts
    (value "cdcl.conflicts" - conflicts0)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ monotonic_under_spans ]

let suite =
  [
    ("counter basics", `Quick, test_counter_basics);
    ("kind mismatch rejected", `Quick, test_kind_mismatch);
    ("gauge last write wins", `Quick, test_gauge_last_write_wins);
    ("default bounds: 1-2-5 ladder", `Quick, test_default_bounds_shape);
    ("histogram bucket boundaries", `Quick, test_bucket_boundaries);
    ("histogram merge", `Quick, test_histogram_merge);
    ("reset keeps handles live", `Quick, test_reset);
    ("trace JSONL round-trip", `Quick, test_trace_roundtrip);
    ("trace survives exceptions", `Quick, test_trace_survives_exception);
    ("trace disabled is passthrough", `Quick, test_trace_disabled_is_passthrough);
    ("json round-trip", `Quick, test_json_roundtrip);
    ("json rejects malformed input", `Quick, test_json_errors);
    ("report matches golden file", `Quick, test_report_golden);
    ("report validates", `Quick, test_report_validates);
    ("report rejects bad documents", `Quick, test_report_rejects_bad_docs);
    ("bench report round-trip", `Quick, test_bench_report_roundtrip);
    ("checked-in baseline validates", `Quick, test_checked_in_baseline_validates);
    ("benchdiff detects regression", `Quick, test_benchdiff_detects_regression);
    ("benchdiff normalizes machine speed", `Quick,
     test_benchdiff_normalizes_machine_speed);
    ("benchdiff flags missing kernels", `Quick, test_benchdiff_missing_kernel);
    ("benchdiff tolerates small drift", `Quick, test_benchdiff_within_tolerance);
    ("solver counters accrue", `Quick, test_solver_counters_accrue);
  ]
  @ qcheck_tests

(* Tests for the verification harness: the DPLL oracle, metamorphic
   transforms, the differential fuzzer (including a demonstration that
   it catches an injected soundness bug), layer-level gradient
   checking, DRUP proof replay, and solver re-entry semantics. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- oracle --- *)

let test_oracle_trivial () =
  (match Verify.Oracle.solve (Cnf.Formula.of_dimacs_lists ~num_vars:2 []) with
  | Some (Verify.Oracle.Sat _) -> ()
  | _ -> Alcotest.fail "empty formula is SAT");
  match
    Verify.Oracle.solve (Cnf.Formula.of_dimacs_lists ~num_vars:1 [ [ 1 ]; [ -1 ] ])
  with
  | Some Verify.Oracle.Unsat -> ()
  | _ -> Alcotest.fail "x and not x is UNSAT"

let test_oracle_pigeonhole () =
  (match Verify.Oracle.solve (Gen.Pigeonhole.unsat 4) with
  | Some Verify.Oracle.Unsat -> ()
  | _ -> Alcotest.fail "PHP(5,4) is UNSAT");
  match Verify.Oracle.solve (Gen.Pigeonhole.generate ~pigeons:4 ~holes:4) with
  | Some (Verify.Oracle.Sat m) ->
    checkb "model valid" true
      (Cdcl.Solver.check_model (Gen.Pigeonhole.generate ~pigeons:4 ~holes:4) m)
  | _ -> Alcotest.fail "PHP(4,4) is SAT"

let test_oracle_budget () =
  (* A one-node budget cannot decide anything nontrivial. *)
  checkb "budget exhaustion returns None" true
    (Verify.Oracle.solve ~max_nodes:1 (Gen.Pigeonhole.unsat 4) = None)

let prop_oracle_matches_brute_force =
  QCheck.Test.make ~name:"oracle matches brute force on random 3-SAT" ~count:80
    (Generators.seed_and_clauses 10 45)
    (fun (seed, m) ->
      let f = Generators.ksat ~seed:(seed + 9000) ~num_vars:10 ~num_clauses:m () in
      let expected = Generators.brute_force_sat f in
      match Verify.Oracle.solve f with
      | Some (Verify.Oracle.Sat model) ->
        expected && Cdcl.Solver.check_model f model
      | Some Verify.Oracle.Unsat -> not expected
      | None -> false)

(* --- metamorphic transforms --- *)

let prop_transforms_preserve_satisfiability =
  QCheck.Test.make ~name:"metamorphic transforms preserve satisfiability"
    ~count:40
    QCheck.(pair small_int (int_range 15 40))
    (fun (seed, m) ->
      let f = Generators.ksat ~seed:(seed + 31337) ~num_vars:9 ~num_clauses:m () in
      let base = Generators.brute_force_sat f in
      let rng = Util.Rng.create (seed + 1) in
      List.for_all
        (fun t ->
          let g = Verify.Metamorphic.apply rng t f in
          match Verify.Oracle.solve g with
          | Some (Verify.Oracle.Sat _) -> base
          | Some Verify.Oracle.Unsat -> not base
          | None -> false)
        Verify.Metamorphic.all)

let test_transform_shapes () =
  let f = Generators.ksat ~seed:5 ~num_vars:8 ~num_clauses:20 () in
  let rng = Util.Rng.create 6 in
  List.iter
    (fun t ->
      let g = Verify.Metamorphic.apply rng t f in
      checki
        (Verify.Metamorphic.name t ^ " keeps the variable count")
        (Cnf.Formula.num_vars f) (Cnf.Formula.num_vars g);
      checkb
        (Verify.Metamorphic.name t ^ " keeps or grows the clause count")
        true
        (Cnf.Formula.num_clauses g >= Cnf.Formula.num_clauses f))
    Verify.Metamorphic.all

(* --- fuzz driver --- *)

let test_fuzz_clean_run () =
  let report = Verify.Fuzz.run ~seed:7 ~cases:30 () in
  checki "all cases ran" 30 report.Verify.Fuzz.cases_run;
  checkb "many checks" true (report.Verify.Fuzz.checks_run > 300);
  (match report.Verify.Fuzz.discrepancies with
  | [] -> ()
  | d :: _ -> Alcotest.failf "unexpected discrepancy: %s" d.Verify.Fuzz.detail)

(* The harness must catch a deliberately injected soundness bug: this
   is the "expected failure" demonstration — a solver that silently
   loses one clause has to produce discrepancies. *)
let test_fuzz_catches_injected_bug () =
  let report =
    Verify.Fuzz.run ~solve:Verify.Fuzz.break_lost_clause ~seed:42 ~cases:40 ()
  in
  checkb "injected bug detected" true (report.Verify.Fuzz.discrepancies <> []);
  List.iter
    (fun (d : Verify.Fuzz.discrepancy) ->
      (* Shrunk reproducers must parse back and still be non-trivial. *)
      let f = Cnf.Dimacs.parse_string d.Verify.Fuzz.dimacs in
      checkb "reproducer has clauses" true (Cnf.Formula.num_clauses f > 0);
      checkb "replay names the case" true
        (String.length d.Verify.Fuzz.replay > 0))
    report.Verify.Fuzz.discrepancies

let test_fuzz_replay_single_case () =
  let full = Verify.Fuzz.run ~seed:11 ~cases:5 () in
  let single = Verify.Fuzz.run ~seed:11 ~cases:5 ~only_case:3 () in
  checki "replay runs one case" 1 single.Verify.Fuzz.cases_run;
  checkb "full run ran five" true (full.Verify.Fuzz.cases_run = 5)

let test_fuzz_case_generation_deterministic () =
  let fam1, f1 = Verify.Fuzz.generate_case ~seed:3 14 in
  let fam2, f2 = Verify.Fuzz.generate_case ~seed:3 14 in
  checkb "same family" true (fam1 = fam2);
  checkb "same formula" true
    (Cnf.Dimacs.to_string f1 = Cnf.Dimacs.to_string f2)

let test_fuzz_shrink_minimises () =
  (* Shrinking "contains the contradictory pair x1, -x1" must strip
     everything else. *)
  let f =
    Cnf.Formula.of_dimacs_lists ~num_vars:4
      [ [ 1; 2 ]; [ 1 ]; [ -1 ]; [ 3; 4 ]; [ -2; 3 ] ]
  in
  let has_contradiction g =
    let has lits = Cnf.Formula.num_clauses g > 0 &&
      Array.exists (fun c -> c = lits)
        (Array.init (Cnf.Formula.num_clauses g) (Cnf.Formula.clause g))
    in
    has [| Cnf.Lit.pos 1 |] && has [| Cnf.Lit.neg 1 |]
  in
  let minimal = Verify.Fuzz.shrink has_contradiction f in
  checki "two clauses survive" 2 (Cnf.Formula.num_clauses minimal)

(* --- gradient checking --- *)

let test_gradcheck_all_layers () =
  let reports = Verify.Gradcheck.run_all () in
  checkb "reports for every layer" true
    (List.for_all
       (fun layer -> List.exists (fun r -> r.Verify.Gradcheck.layer = layer) reports)
       [ "mpnn"; "attention"; "hgt"; "model" ]);
  List.iter
    (fun (r : Verify.Gradcheck.report) ->
      if r.Verify.Gradcheck.max_rel_err >= 1e-4 then
        Alcotest.failf "%s/%s: rel err %g exceeds 1e-4" r.Verify.Gradcheck.layer
          r.Verify.Gradcheck.param r.Verify.Gradcheck.max_rel_err)
    reports;
  checkb "passed helper agrees" true (Verify.Gradcheck.passed ~tol:1e-4 reports)

(* --- DRUP replay (solver-emitted proofs through the checker) --- *)

let proof_of f =
  let solver = Cdcl.Solver.create f in
  let log = Cdcl.Drup.create () in
  Cdcl.Drup.attach log solver;
  (match Cdcl.Solver.solve solver with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected UNSAT");
  Cdcl.Drup.conclude_unsat log;
  log

let test_drup_replay_pigeonhole () =
  let f = Gen.Pigeonhole.unsat 5 in
  checkb "PHP proof replays" true
    (Cdcl.Drup_check.check_solver_proof f (proof_of f) = Cdcl.Drup_check.Valid)

let test_drup_replay_parity () =
  let rng = Util.Rng.create 23 in
  let f = Gen.Parity.contradiction rng ~num_vars:8 in
  checkb "parity proof replays" true
    (Cdcl.Drup_check.check_solver_proof f (proof_of f) = Cdcl.Drup_check.Valid)

let test_drup_truncated_proof_invalid () =
  let f = Gen.Pigeonhole.unsat 4 in
  let text = Cdcl.Drup.to_string (proof_of f) in
  (* Drop the second half of the proof, including the final empty
     clause: what remains can never conclude unsatisfiability. *)
  let lines = String.split_on_char '\n' text in
  let keep = List.length lines / 2 in
  let truncated =
    String.concat "\n" (List.filteri (fun i _ -> i < keep) lines) ^ "\n"
  in
  match Cdcl.Drup_check.check f truncated with
  | Cdcl.Drup_check.Invalid { reason; _ } ->
    checkb "incompleteness reported" true
      (reason = "proof does not derive the empty clause")
  | Cdcl.Drup_check.Valid -> Alcotest.fail "truncated proof must be invalid"

let test_drup_corrupted_proof_invalid () =
  let f = Gen.Pigeonhole.unsat 4 in
  let text = Cdcl.Drup.to_string (proof_of f) in
  (* Corrupt the proof by prepending a clause that is not RUP: a bare
     unit for pigeon 1 in hole 1 does not follow from PHP's axioms. *)
  let corrupted = "1 0\n" ^ text in
  match Cdcl.Drup_check.check f corrupted with
  | Cdcl.Drup_check.Invalid { line; _ } -> checki "rejected at line 1" 1 line
  | Cdcl.Drup_check.Valid -> Alcotest.fail "corrupted proof must be invalid"

(* --- solve re-entry after Unknown --- *)

(* Driving a budgeted solver to completion must reach the same verdict
   as a single unbudgeted run. *)
let continue_to_verdict s =
  let rec drive n =
    if n > 2000 then Alcotest.fail "budgeted run never converged"
    else
      match Cdcl.Solver.solve s with
      | Cdcl.Solver.Unknown -> drive (n + 1)
      | verdict -> verdict
  in
  drive 0

let reentry_matches f =
  let unbudgeted = fst (Cdcl.Solver.solve_formula f) in
  let config = Cdcl.Config.with_budget ~max_conflicts:3 Cdcl.Config.default in
  let s = Cdcl.Solver.create ~config f in
  match (continue_to_verdict s, unbudgeted) with
  | Cdcl.Solver.Sat m, Cdcl.Solver.Sat _ -> Cdcl.Solver.check_model f m
  | Cdcl.Solver.Unsat, Cdcl.Solver.Unsat -> true
  | _ -> false

let test_reentry_unsat_matches_unbudgeted () =
  checkb "PHP verdict stable across re-entry" true
    (reentry_matches (Gen.Pigeonhole.unsat 5))

let test_reentry_sat_matches_unbudgeted () =
  checkb "3-SAT verdict stable across re-entry" true
    (reentry_matches (Generators.ksat ~seed:2024 ~num_vars:15 ~num_clauses:60 ()))

let prop_reentry_matches_unbudgeted =
  QCheck.Test.make ~name:"budgeted continuation reaches the unbudgeted verdict"
    ~count:30
    (Generators.seed_and_clauses 20 45)
    (fun (seed, m) ->
      reentry_matches (Generators.ksat ~seed:(seed + 77_000) ~num_vars:10 ~num_clauses:m ()))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_oracle_matches_brute_force;
      prop_transforms_preserve_satisfiability;
      prop_reentry_matches_unbudgeted;
    ]

(* --- fault-injection scenarios --- *)

let test_faultcheck_all_recover () =
  let report = Verify.Faultcheck.run_all ~seed:42 () in
  List.iter
    (fun (o : Verify.Faultcheck.outcome) ->
      checkb
        (Printf.sprintf "scenario %s recovers (%s)" o.Verify.Faultcheck.scenario
           o.Verify.Faultcheck.detail)
        true o.Verify.Faultcheck.passed)
    report.Verify.Faultcheck.outcomes;
  checkb "report aggregates" true (Verify.Faultcheck.passed report);
  checkb "nothing left armed" true
    (not (List.exists Runtime.Fault.armed Runtime.Fault.all))

let suite =
  [
    Alcotest.test_case "faultcheck all recover" `Slow test_faultcheck_all_recover;
    Alcotest.test_case "oracle trivial" `Quick test_oracle_trivial;
    Alcotest.test_case "oracle pigeonhole" `Quick test_oracle_pigeonhole;
    Alcotest.test_case "oracle budget" `Quick test_oracle_budget;
    Alcotest.test_case "transform shapes" `Quick test_transform_shapes;
    Alcotest.test_case "fuzz clean run" `Slow test_fuzz_clean_run;
    Alcotest.test_case "fuzz catches injected bug" `Quick test_fuzz_catches_injected_bug;
    Alcotest.test_case "fuzz replay single case" `Quick test_fuzz_replay_single_case;
    Alcotest.test_case "fuzz case generation deterministic" `Quick
      test_fuzz_case_generation_deterministic;
    Alcotest.test_case "fuzz shrink minimises" `Quick test_fuzz_shrink_minimises;
    Alcotest.test_case "gradcheck all layers" `Slow test_gradcheck_all_layers;
    Alcotest.test_case "drup replay pigeonhole" `Quick test_drup_replay_pigeonhole;
    Alcotest.test_case "drup replay parity" `Quick test_drup_replay_parity;
    Alcotest.test_case "drup truncated invalid" `Quick test_drup_truncated_proof_invalid;
    Alcotest.test_case "drup corrupted invalid" `Quick test_drup_corrupted_proof_invalid;
    Alcotest.test_case "reentry unsat matches" `Quick test_reentry_unsat_matches_unbudgeted;
    Alcotest.test_case "reentry sat matches" `Quick test_reentry_sat_matches_unbudgeted;
  ]
  @ qcheck_tests

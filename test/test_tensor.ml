(* Tests for the dense matrix library. *)

module Mat = Tensor.Mat

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let m23 = Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |]
let m32 = Mat.of_arrays [| [| 7.0; 8.0 |]; [| 9.0; 10.0 |]; [| 11.0; 12.0 |] |]

let test_shapes () =
  checki "rows" 2 (Mat.rows m23);
  checki "cols" 3 (Mat.cols m23);
  checkb "shape" true (Mat.shape m23 = (2, 3))

let test_get_set_bounds () =
  let m = Mat.copy m23 in
  Mat.set m 1 2 99.0;
  checkf "set/get" 99.0 (Mat.get m 1 2);
  Alcotest.check_raises "oob" (Invalid_argument "Mat.get") (fun () ->
      ignore (Mat.get m 2 0))

let test_of_arrays_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged")
    (fun () -> ignore (Mat.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_matmul_known () =
  let p = Mat.matmul m23 m32 in
  (* [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154] *)
  checkf "p00" 58.0 (Mat.get p 0 0);
  checkf "p01" 64.0 (Mat.get p 0 1);
  checkf "p10" 139.0 (Mat.get p 1 0);
  checkf "p11" 154.0 (Mat.get p 1 1)

let test_matmul_shape_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Mat.matmul: 2x3 * 2x3")
    (fun () -> ignore (Mat.matmul m23 m23))

let test_matmul_transpose_variants () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let b = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let expected_ta = Mat.matmul (Mat.transpose a) b in
  checkb "matmul_ta" true (Mat.approx_equal (Mat.matmul_transpose_a a b) expected_ta);
  let c = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let d = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let expected_tb = Mat.matmul c (Mat.transpose d) in
  checkb "matmul_tb" true (Mat.approx_equal (Mat.matmul_transpose_b c d) expected_tb)

let test_transpose_involution () =
  checkb "transpose twice" true (Mat.approx_equal m23 (Mat.transpose (Mat.transpose m23)))

let test_elementwise () =
  let s = Mat.add m23 m23 in
  checkf "add" 2.0 (Mat.get s 0 0);
  let d = Mat.sub s m23 in
  checkb "sub identity" true (Mat.approx_equal d m23);
  let h = Mat.mul m23 m23 in
  checkf "hadamard" 36.0 (Mat.get h 1 2);
  let sc = Mat.scale 2.0 m23 in
  checkf "scale" 12.0 (Mat.get sc 1 2);
  let mp = Mat.map (fun x -> -.x) m23 in
  checkf "map" (-3.0) (Mat.get mp 0 2)

let test_add_in_place () =
  let acc = Mat.zeros 2 3 in
  Mat.add_in_place acc m23;
  Mat.add_in_place acc m23;
  checkb "accumulated twice" true (Mat.approx_equal acc (Mat.scale 2.0 m23))

let test_reductions () =
  checkf "sum" 21.0 (Mat.sum m23);
  checkf "mean" 3.5 (Mat.mean m23);
  checkf "frobenius" (sqrt 91.0) (Mat.frobenius_norm m23);
  let cm = Mat.col_means m23 in
  checkf "col mean 0" 2.5 (Mat.get cm 0 0);
  checkf "col mean 2" 4.5 (Mat.get cm 0 2);
  let rs = Mat.row_sums m23 in
  checkf "row sum 0" 6.0 (Mat.get rs 0 0);
  checkf "row sum 1" 15.0 (Mat.get rs 1 0)

let test_row_extraction () =
  Alcotest.(check (array (float 1e-9))) "row 1" [| 4.0; 5.0; 6.0 |] (Mat.row m23 1)

let test_xavier_range () =
  let rng = Util.Rng.create 5 in
  let w = Mat.xavier rng 10 20 in
  let bound = sqrt (6.0 /. 30.0) in
  checkb "entries within glorot bound" true
    (Array.for_all (fun x -> Float.abs x <= bound) (Mat.row w 0))

let test_row_vector () =
  let v = Mat.row_vector [| 1.0; 2.0 |] in
  checki "1 row" 1 (Mat.rows v);
  checki "2 cols" 2 (Mat.cols v)

(* --- blocked GEMM vs naive oracle -------------------------------------- *)

(* Bit-identity, not approx-equality: the blocked kernel accumulates
   each output element over ascending k exactly like the naive loop,
   so signed zeros and infinities must come out with the same bits and
   NaNs must appear at exactly the same positions. NaN *payloads* are
   compared as equal: when two NaNs meet in [+.] the hardware keeps
   the first operand's payload, and the code generator may legally
   swap operands of commutative float ops, so payload bits are not a
   property of the summation order. *)
let bit_identical a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      let x = Mat.get a i j and y = Mat.get b i j in
      if Float.is_nan x || Float.is_nan y then begin
        if not (Float.is_nan x && Float.is_nan y) then ok := false
      end
      else if Int64.bits_of_float x <> Int64.bits_of_float y then ok := false
    done
  done;
  !ok

(* Entries drawn from a palette including the IEEE special values that
   the old zero-skip optimisation mishandled. *)
let special_palette =
  [| 0.0; -0.0; 1.5; -2.25; 1e-300; -1e300; Float.nan; Float.infinity |]

let random_special rng r c =
  Mat.init r c (fun _ _ ->
      special_palette.(Util.Rng.int rng (Array.length special_palette)))

let prop_blocked_matches_naive =
  QCheck.Test.make ~name:"blocked GEMM bit-identical to naive" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Util.Rng.create (seed + 1) in
      let m = 1 + Util.Rng.int rng 24 in
      let k = 1 + Util.Rng.int rng 24 in
      let n = 1 + Util.Rng.int rng 24 in
      let a = Mat.random_uniform rng m k 2.0 in
      let b = Mat.random_uniform rng k n 2.0 in
      bit_identical (Mat.matmul a b) (Mat.matmul_naive a b))

let prop_blocked_matches_naive_specials =
  QCheck.Test.make
    ~name:"blocked GEMM bit-identical to naive on NaN/-0/inf" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Util.Rng.create (seed + 1) in
      let m = 1 + Util.Rng.int rng 9 in
      let k = 1 + Util.Rng.int rng 9 in
      let n = 1 + Util.Rng.int rng 9 in
      let a = random_special rng m k in
      let b = random_special rng k n in
      bit_identical (Mat.matmul a b) (Mat.matmul_naive a b))

let test_blocked_vectors () =
  (* 1 x n and n x 1 exercise the row- and k-remainder paths alone. *)
  let rng = Util.Rng.create 42 in
  let a = Mat.random_uniform rng 1 70 1.0 in
  let b = Mat.random_uniform rng 70 1 1.0 in
  checkb "1xn * nx1" true (bit_identical (Mat.matmul a b) (Mat.matmul_naive a b));
  let c = Mat.random_uniform rng 70 5 1.0 in
  checkb "1xn * nxm" true (bit_identical (Mat.matmul a c) (Mat.matmul_naive a c));
  let d = Mat.random_uniform rng 1 7 1.0 in
  checkb "nx1 * 1xm" true (bit_identical (Mat.matmul b d) (Mat.matmul_naive b d))

let test_matmul_into_shape_and_alias () =
  let a = Mat.random_uniform (Util.Rng.create 1) 3 4 1.0 in
  let b = Mat.random_uniform (Util.Rng.create 2) 4 5 1.0 in
  let bad = Mat.zeros 3 4 in
  Alcotest.check_raises "bad out shape"
    (Invalid_argument "Mat.matmul_into: out 3x4 for 3x4 * 4x5") (fun () ->
      Mat.matmul_into ~out:bad a b);
  let sq = Mat.random_uniform (Util.Rng.create 3) 4 4 1.0 in
  Alcotest.check_raises "aliased out"
    (Invalid_argument "Mat.matmul_into: out aliases an input") (fun () ->
      Mat.matmul_into ~out:sq sq sq)

let test_batch_pack_unpack_matmul () =
  let rng = Util.Rng.create 9 in
  let mats = List.init 5 (fun i -> Mat.random_uniform rng (1 + i) 6 1.0) in
  let batch = Mat.Batch.pack mats in
  checki "count" 5 (Mat.Batch.count batch);
  checki "total rows" 15 (Mat.rows (Mat.Batch.data batch));
  List.iteri
    (fun i m ->
      checki "offset" (i * (i + 1) / 2) (Mat.Batch.offset batch i);
      checki "rows_of" (Mat.rows m) (Mat.Batch.rows_of batch i))
    mats;
  let round = Mat.Batch.unpack batch in
  List.iter2 (fun m m' -> checkb "unpack" true (bit_identical m m')) mats round;
  let w = Mat.random_uniform rng 6 3 1.0 in
  let out = Mat.Batch.unpack (Mat.Batch.matmul batch w) in
  List.iter2
    (fun m o -> checkb "batched = per-instance" true (bit_identical (Mat.matmul m w) o))
    mats out

(* --- int8 quantization --------------------------------------------------- *)

let prop_q8_round_trip =
  QCheck.Test.make ~name:"q8 round-trip error <= scale" ~count:80
    QCheck.small_int (fun seed ->
      let rng = Util.Rng.create (seed + 1) in
      let r = 1 + Util.Rng.int rng 12 in
      let c = 1 + Util.Rng.int rng 12 in
      let m = Mat.random_uniform rng r c 3.0 in
      let q = Mat.Q8.quantize m in
      let d = Mat.Q8.dequantize q in
      let bound = Mat.Q8.scale q +. 1e-12 in
      let ok = ref true in
      for i = 0 to r - 1 do
        for j = 0 to c - 1 do
          if Float.abs (Mat.get m i j -. Mat.get d i j) > bound then ok := false
        done
      done;
      !ok)

let test_q8_matmul_close () =
  let rng = Util.Rng.create 21 in
  let a = Mat.random_uniform rng 7 16 1.0 in
  let b = Mat.random_uniform rng 16 5 1.0 in
  let exact = Mat.matmul a b in
  let approx = Mat.Q8.matmul a (Mat.Q8.quantize b) in
  (* Error per element is bounded by sum_k |a_k| * scale_b plus the
     activation quantization; 16 terms of |a|<=1 with scale ~ 2/255
     keeps it well under 0.5. *)
  let ok = ref true in
  for i = 0 to 6 do
    for j = 0 to 4 do
      if Float.abs (Mat.get exact i j -. Mat.get approx i j) > 0.5 then
        ok := false
    done
  done;
  checkb "q8 matmul close to float" true !ok

let test_q8_non_finite_rejected () =
  let m = Mat.of_arrays [| [| 1.0; Float.nan |] |] in
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Mat.Q8.quantize: non-finite entries") (fun () ->
      ignore (Mat.Q8.quantize m))

let prop_matmul_assoc_with_vector =
  QCheck.Test.make ~name:"(AB)x = A(Bx)" ~count:50 QCheck.small_int (fun seed ->
      let rng = Util.Rng.create seed in
      let a = Mat.random_uniform rng 4 3 1.0 in
      let b = Mat.random_uniform rng 3 5 1.0 in
      let x = Mat.random_uniform rng 5 1 1.0 in
      Mat.approx_equal ~eps:1e-6
        (Mat.matmul (Mat.matmul a b) x)
        (Mat.matmul a (Mat.matmul b x)))

let prop_frobenius_scale =
  QCheck.Test.make ~name:"||cX|| = |c| ||X||" ~count:50
    QCheck.(pair small_int (float_range (-3.0) 3.0))
    (fun (seed, c) ->
      let rng = Util.Rng.create seed in
      let x = Mat.random_uniform rng 3 4 1.0 in
      Float.abs
        (Mat.frobenius_norm (Mat.scale c x) -. (Float.abs c *. Mat.frobenius_norm x))
      < 1e-6)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_matmul_assoc_with_vector;
      prop_frobenius_scale;
      prop_blocked_matches_naive;
      prop_blocked_matches_naive_specials;
      prop_q8_round_trip;
    ]

let suite =
  [
    Alcotest.test_case "blocked GEMM vector shapes" `Quick test_blocked_vectors;
    Alcotest.test_case "matmul_into shape/alias" `Quick
      test_matmul_into_shape_and_alias;
    Alcotest.test_case "batch pack/unpack/matmul" `Quick
      test_batch_pack_unpack_matmul;
    Alcotest.test_case "q8 matmul close" `Quick test_q8_matmul_close;
    Alcotest.test_case "q8 rejects non-finite" `Quick
      test_q8_non_finite_rejected;
    Alcotest.test_case "shapes" `Quick test_shapes;
    Alcotest.test_case "get/set bounds" `Quick test_get_set_bounds;
    Alcotest.test_case "ragged input" `Quick test_of_arrays_ragged;
    Alcotest.test_case "matmul known" `Quick test_matmul_known;
    Alcotest.test_case "matmul mismatch" `Quick test_matmul_shape_mismatch;
    Alcotest.test_case "matmul transpose variants" `Quick test_matmul_transpose_variants;
    Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
    Alcotest.test_case "elementwise ops" `Quick test_elementwise;
    Alcotest.test_case "add in place" `Quick test_add_in_place;
    Alcotest.test_case "reductions" `Quick test_reductions;
    Alcotest.test_case "row extraction" `Quick test_row_extraction;
    Alcotest.test_case "xavier range" `Quick test_xavier_range;
    Alcotest.test_case "row vector" `Quick test_row_vector;
  ]
  @ qcheck_tests

(* Portfolio clause-sharing tests: the Share wire codec (roundtrip and
   corruption properties), mid-search import survival across arena GC,
   and end-to-end Portfolio determinism. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Share codec --- *)

let lit_of_dimacs n = Cnf.Lit.make (abs n) (n > 0)

let mk_clause lits glue frequency =
  { Cdcl.Share.lits = Array.of_list (List.map lit_of_dimacs lits); glue; frequency }

let mk_batch sender epoch clauses = { Cdcl.Share.sender; epoch; clauses }

let batch_equal (a : Cdcl.Share.batch) (b : Cdcl.Share.batch) =
  a.sender = b.sender && a.epoch = b.epoch
  && List.length a.clauses = List.length b.clauses
  && List.for_all2
       (fun (x : Cdcl.Share.clause) (y : Cdcl.Share.clause) ->
         x.glue = y.glue && x.frequency = y.frequency && x.lits = y.lits)
       a.clauses b.clauses

let test_share_roundtrip_basic () =
  let b =
    mk_batch 2 7
      [ mk_clause [ 1; -2; 3 ] 2 14; mk_clause [ -4 ] 0 0; mk_clause [ 5; 6 ] 1 3 ]
  in
  match Cdcl.Share.decode (Cdcl.Share.encode b) with
  | Ok b' -> checkb "roundtrip" true (batch_equal b b')
  | Error e -> Alcotest.fail (Cdcl.Share.error_to_string e)

let test_share_empty_batch () =
  let b = mk_batch 0 0 [] in
  match Cdcl.Share.decode (Cdcl.Share.encode b) with
  | Ok b' -> checkb "empty batch roundtrips" true (batch_equal b b')
  | Error e -> Alcotest.fail (Cdcl.Share.error_to_string e)

let test_share_decode_all () =
  let bs =
    [
      mk_batch 0 3 [ mk_clause [ 1; 2 ] 2 5 ];
      mk_batch 1 3 [];
      mk_batch 3 3 [ mk_clause [ -1; -2; 7 ] 3 1; mk_clause [ 9 ] 0 2 ];
    ]
  in
  let blob = String.concat "" (List.map Cdcl.Share.encode bs) in
  (match Cdcl.Share.decode_all blob with
  | Ok bs' ->
    checki "count" (List.length bs) (List.length bs');
    checkb "all equal" true (List.for_all2 batch_equal bs bs')
  | Error e -> Alcotest.fail (Cdcl.Share.error_to_string e));
  match Cdcl.Share.decode_all "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty concatenation decodes to no batches"

let test_share_garbage_typed () =
  (* Garbage must come back as a typed error, never an exception. *)
  List.iter
    (fun s ->
      match Cdcl.Share.decode s with
      | Ok _ -> Alcotest.failf "garbage %S decoded" s
      | Error _ -> ())
    [ ""; ";"; "#deadbeef;"; "NSSHR1 garbage"; "\x00\x01\x02;"; "NSSHR1#00000000;" ]

(* Random batches for the properties: senders/epochs small, clauses
   with literals over 50 vars, glue and frequency in realistic ranges. *)
let gen_batch =
  QCheck.Gen.(
    let gen_clause =
      map3
        (fun lits glue freq -> mk_clause lits glue freq)
        (list_size (int_range 1 8)
           (map (fun n -> if n >= 0 then n + 1 else n - 1)
              (int_range (-49) 49)))
        (int_range 0 12) (int_range 0 999)
    in
    map3 (fun s e cs -> mk_batch s e cs) (int_range 0 15) (int_range 0 99)
      (list_size (int_range 0 10) gen_clause))

let arb_batch = QCheck.make gen_batch

let prop_share_roundtrip =
  QCheck.Test.make ~name:"share encode/decode roundtrip" ~count:200 arb_batch
    (fun b ->
      match Cdcl.Share.decode (Cdcl.Share.encode b) with
      | Ok b' -> batch_equal b b'
      | Error _ -> false)

let prop_share_truncation =
  (* Any strict prefix of a blob is rejected as [Truncated]. *)
  QCheck.Test.make ~name:"share prefix rejected as Truncated" ~count:200
    QCheck.(pair arb_batch small_nat)
    (fun (b, cut) ->
      let s = Cdcl.Share.encode b in
      let prefix = String.sub s 0 (cut mod String.length s) in
      Cdcl.Share.decode prefix = Error Cdcl.Share.Truncated)

let prop_share_corruption =
  (* Flipping any digit of the body is caught by the checksum. *)
  QCheck.Test.make ~name:"share bit-flip rejected as Bad_crc" ~count:200
    QCheck.(pair arb_batch small_nat)
    (fun (b, pos) ->
      let s = Cdcl.Share.encode b in
      let body_len = String.rindex s '#' in
      let digits = ref [] in
      String.iteri
        (fun i c -> if i < body_len && c >= '0' && c <= '9' then digits := i :: !digits)
        s;
      match !digits with
      | [] -> QCheck.assume_fail ()
      | ds ->
        let i = List.nth ds (pos mod List.length ds) in
        let by = Bytes.of_string s in
        Bytes.set by i (if Bytes.get by i = '9' then '0' else '9');
        (match Cdcl.Share.decode (Bytes.to_string by) with
        | Error (Cdcl.Share.Bad_crc _) -> true
        | Ok _ | Error _ -> false))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_share_roundtrip; prop_share_truncation; prop_share_corruption ]

(* --- mid-search import across arena GC --- *)

let test_import_survives_gc () =
  let f = Gen.Pigeonhole.unsat 5 in
  (* Solver A harvests its exports; it never imports anything. *)
  let collected = ref [] in
  let a =
    Cdcl.Solver.create
      ~config:{ Cdcl.Config.default with restart_mode = Cdcl.Config.Luby 20 }
      f
  in
  Cdcl.Solver.set_share a (fun ~epoch:_ exports ->
      collected := !collected @ exports;
      []);
  checkb "A unsat" true (Cdcl.Solver.solve a = Cdcl.Solver.Unsat);
  checkb "A exported" true (!collected <> []);
  (* Solver B imports A's clauses mid-search under an aggressive reduce
     schedule, so arena compactions run while the imports are attached:
     a stale watch or cref would corrupt search or break the proof. *)
  let b =
    Cdcl.Solver.create
      ~config:
        {
          Cdcl.Config.default with
          restart_mode = Cdcl.Config.Luby 20;
          reduce_first = 10;
          reduce_inc = 5;
        }
      f
  in
  let log = Cdcl.Drup.create () in
  Cdcl.Drup.attach log b;
  Cdcl.Solver.set_share b (fun ~epoch exports ->
      ignore exports;
      if epoch = 0 then !collected else []);
  checkb "B unsat" true (Cdcl.Solver.solve b = Cdcl.Solver.Unsat);
  let stats = Cdcl.Solver.stats b in
  checkb "B imported" true (stats.Cdcl.Solver_stats.shared_imported > 0);
  checkb "B compacted the arena" true (Cdcl.Solver.arena_gc_count b > 0);
  checkb "B shared epochs" true (Cdcl.Solver.share_epochs b > 0);
  Cdcl.Drup.conclude_unsat log;
  checkb "B proof checks with imports" true
    (Cdcl.Drup_check.check_solver_proof f log = Cdcl.Drup_check.Valid)

(* --- end-to-end portfolio --- *)

let test_portfolio_unsat_deterministic () =
  let f = Gen.Pigeonhole.unsat 4 in
  let run () = Portfolio.solve ~k:2 ~seed:7 ~proof:true f in
  let o1 = run () in
  (match o1.Portfolio.verdict with
  | Portfolio.Unsat (Some proof) ->
    checkb "winning proof checks" true
      (Cdcl.Drup_check.check f proof = Cdcl.Drup_check.Valid)
  | Portfolio.Unsat None -> Alcotest.fail "proof requested but missing"
  | Portfolio.Sat _ | Portfolio.Unknown -> Alcotest.fail "PHP(5,4) is UNSAT");
  checkb "winner named" true (o1.Portfolio.winner >= 0);
  let o2 = run () in
  Alcotest.(check (list string))
    "same seed, same journal" o1.Portfolio.journal o2.Portfolio.journal;
  checki "same winner" o1.Portfolio.winner o2.Portfolio.winner

let test_portfolio_sat () =
  let f = Generators.ksat ~seed:42 ~num_vars:30 ~num_clauses:100 () in
  match (Portfolio.solve ~k:2 ~seed:1 f).Portfolio.verdict with
  | Portfolio.Sat model -> checkb "model valid" true (Cdcl.Solver.check_model f model)
  | Portfolio.Unsat _ | Portfolio.Unknown ->
    Alcotest.fail "ksat(30,100) at ratio 3.3 is SAT"

let test_diversify_names_unique () =
  let specs = Portfolio.diversify ~k:6 ~seed:3 in
  checki "k specs" 6 (Array.length specs);
  let names = Array.to_list (Array.map (fun s -> s.Portfolio.name) specs) in
  checki "unique names" 6 (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "share roundtrip basic" `Quick test_share_roundtrip_basic;
    Alcotest.test_case "share empty batch" `Quick test_share_empty_batch;
    Alcotest.test_case "share decode_all" `Quick test_share_decode_all;
    Alcotest.test_case "share garbage typed" `Quick test_share_garbage_typed;
    Alcotest.test_case "import survives gc" `Quick test_import_survives_gc;
    Alcotest.test_case "portfolio unsat deterministic" `Quick
      test_portfolio_unsat_deterministic;
    Alcotest.test_case "portfolio sat" `Quick test_portfolio_sat;
    Alcotest.test_case "diversify names unique" `Quick test_diversify_names_unique;
  ]
  @ qcheck_tests

(* Tests for the neural-network stack: autodiff gradient checks against
   finite differences, layers, optimisers, checkpointing, generic
   training. *)

module Mat = Tensor.Mat
module Ad = Nn.Ad

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

(* Finite-difference gradient check for a scalar function of one
   parameter matrix. *)
let grad_check ?(rows = 3) ?(cols = 4) ?(tol = 1e-3) name build =
  let rng = Util.Rng.create 5 in
  let p = Nn.Param.create "p" (Mat.random_uniform rng rows cols 1.0) in
  let loss () =
    let tape = Ad.tape () in
    let x = Ad.of_param tape p in
    let l = build tape x in
    (tape, l)
  in
  Nn.Param.zero_grad p;
  let tape, l = loss () in
  Ad.backward tape l;
  let eps = 1e-5 in
  let v = p.Nn.Param.value in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let orig = Mat.get v i j in
      Mat.set v i j (orig +. eps);
      let fp = Mat.get (Ad.value (snd (loss ()))) 0 0 in
      Mat.set v i j (orig -. eps);
      let fm = Mat.get (Ad.value (snd (loss ()))) 0 0 in
      Mat.set v i j orig;
      let numeric = (fp -. fm) /. (2.0 *. eps) in
      let analytic = Mat.get p.Nn.Param.grad i j in
      let denom = Float.max 1e-4 (Float.abs numeric +. Float.abs analytic) in
      let rel = Float.abs (numeric -. analytic) /. denom in
      if rel > tol then
        Alcotest.failf "%s: grad mismatch at (%d,%d): numeric %g analytic %g" name i
          j numeric analytic
    done
  done

(* Fixed constants for grad checks: materialised once so repeated loss
   evaluations (finite differences) see identical values. *)
let fixed_const r c seed =
  let m = Mat.random_uniform (Util.Rng.create seed) r c 1.0 in
  fun tape -> Ad.const tape m

let test_grad_basic_ops () =
  grad_check "sum" (fun t x -> Ad.sum_all t x);
  grad_check "relu" (fun t x -> Ad.sum_all t (Ad.relu t x));
  grad_check "sigmoid" (fun t x -> Ad.sum_all t (Ad.sigmoid t x));
  grad_check "tanh" (fun t x -> Ad.sum_all t (Ad.tanh t x));
  grad_check "mul-self" (fun t x -> Ad.sum_all t (Ad.mul t x x));
  grad_check "scale" (fun t x -> Ad.sum_all t (Ad.scale t (-2.5) x));
  grad_check "add_scalar" (fun t x -> Ad.sum_all t (Ad.add_scalar t 3.0 x))

let test_grad_add_sub () =
  let c34 = fixed_const 3 4 9 in
  grad_check "add" (fun t x -> Ad.sum_all t (Ad.add t x (c34 t)));
  grad_check "sub" (fun t x -> Ad.sum_all t (Ad.sub t (c34 t) x))

let test_grad_matmul () =
  let c42 = fixed_const 4 2 11 and c32 = fixed_const 3 2 12 in
  grad_check "matmul" (fun t x -> Ad.sum_all t (Ad.matmul t x (c42 t)));
  grad_check "matmul_ta" (fun t x -> Ad.sum_all t (Ad.matmul_ta t x (c32 t)))

let test_grad_pooling () =
  grad_check "max_rows" ~tol:5e-3 (fun t x -> Ad.sum_all t (Ad.max_rows t x));
  let c32 = fixed_const 3 2 17 in
  grad_check "concat_cols" (fun t x ->
      Ad.sum_all t (Ad.concat_cols t x (c32 t)))

let test_max_rows_values () =
  let tape = Ad.tape () in
  let x = Ad.const tape (Mat.of_arrays [| [| 1.0; -5.0 |]; [| -2.0; 3.0 |] |]) in
  let y = Ad.value (Ad.max_rows tape x) in
  checkf "max col 0" 1.0 (Mat.get y 0 0);
  checkf "max col 1" 3.0 (Mat.get y 0 1)

let test_grad_normalisations () =
  grad_check "frobenius_normalize" (fun t x ->
      Ad.sum_all t (Ad.frobenius_normalize t x));
  grad_check "mean_rows" (fun t x -> Ad.sum_all t (Ad.mean_rows t x));
  grad_check "div_rows" (fun t x ->
      let d = Ad.const t (Mat.of_arrays [| [| 1.5 |]; [| 2.0 |]; [| 0.7 |] |]) in
      Ad.sum_all t (Ad.div_rows t x d))

let test_grad_sparse_ops () =
  grad_check "gather" (fun t x -> Ad.sum_all t (Ad.gather_rows t x [| 0; 2; 2; 1 |]));
  grad_check "scatter" (fun t x ->
      Ad.sum_all t (Ad.scatter_sum t x [| 1; 0; 1 |] ~rows:2));
  grad_check "scale_rows" (fun t x ->
      Ad.sum_all t (Ad.scale_rows t x [| 0.5; -1.0; 2.0 |]))

let test_grad_bias_and_bce () =
  let c14 = fixed_const 1 4 13 and c41 = fixed_const 4 1 14 in
  grad_check "add_row_bias" (fun t x ->
      Ad.sum_all t (Ad.add_row_bias t x (c14 t)));
  grad_check "bce" (fun t x ->
      Ad.bce_with_logits t (Ad.mean_rows t (Ad.matmul t x (c41 t))) 1.0)

let test_grad_attention_composite () =
  grad_check "attention composite" (fun t x ->
      let q = Ad.frobenius_normalize t x in
      let ktv = Ad.matmul_ta t q x in
      let y = Ad.matmul t q ktv in
      let ones = Ad.const t (Mat.create 3 1 1.0) in
      let d = Ad.add_scalar t 1.0 (Ad.matmul t q (Ad.matmul_ta t q ones)) in
      Ad.sum_all t (Ad.div_rows t y d))

let test_forward_values () =
  let tape = Ad.tape () in
  let x = Ad.const tape (Mat.of_arrays [| [| -1.0; 2.0 |] |]) in
  checkf "relu clamps" 0.0 (Mat.get (Ad.value (Ad.relu tape x)) 0 0);
  checkf "relu passes" 2.0 (Mat.get (Ad.value (Ad.relu tape x)) 0 1);
  checkf "sigmoid(0)=0.5" 0.5
    (Mat.get (Ad.value (Ad.sigmoid tape (Ad.scale tape 0.0 x))) 0 0)

let test_bce_values () =
  let tape = Ad.tape () in
  let z = Ad.const tape (Mat.of_arrays [| [| 0.0 |] |]) in
  checkf "bce at logit 0" (log 2.0) (Mat.get (Ad.value (Ad.bce_with_logits tape z 1.0)) 0 0);
  let big = Ad.const tape (Mat.of_arrays [| [| 50.0 |] |]) in
  checkb "confident correct ~ 0" true
    (Mat.get (Ad.value (Ad.bce_with_logits tape big 1.0)) 0 0 < 1e-9);
  checkb "confident wrong ~ 50" true
    (Float.abs (Mat.get (Ad.value (Ad.bce_with_logits tape big 0.0)) 0 0 -. 50.0) < 1e-6)

let test_backward_requires_scalar () =
  let tape = Ad.tape () in
  let x = Ad.const tape (Mat.zeros 2 2) in
  Alcotest.check_raises "non-scalar"
    (Invalid_argument "Ad.backward: output must be scalar") (fun () ->
      Ad.backward tape x)

let test_grad_accumulates_across_uses () =
  (* f(x) = sum(x) + sum(x): gradient must be 2 everywhere. *)
  let p = Nn.Param.create "p" (Mat.create 2 2 1.0) in
  let tape = Ad.tape () in
  let x = Ad.of_param tape p in
  let l = Ad.add tape (Ad.sum_all tape x) (Ad.sum_all tape x) in
  Ad.backward tape l;
  checkf "double use doubles grad" 2.0 (Mat.get p.Nn.Param.grad 0 0)

(* --- layers --- *)

let test_linear_shapes_and_bias () =
  let rng = Util.Rng.create 3 in
  let layer = Nn.Layer.Linear.create rng ~in_dim:4 ~out_dim:2 ~name:"lin" in
  let tape = Ad.tape () in
  let x = Ad.const tape (Mat.create 5 4 1.0) in
  let y = Nn.Layer.Linear.forward tape layer x in
  checkb "output shape" true (Mat.shape (Ad.value y) = (5, 2));
  Alcotest.(check int) "params" 2 (List.length (Nn.Layer.Linear.params layer));
  let nobias = Nn.Layer.Linear.create ~bias:false rng ~in_dim:4 ~out_dim:2 ~name:"nb" in
  Alcotest.(check int) "no bias params" 1 (List.length (Nn.Layer.Linear.params nobias))

let test_mlp_structure () =
  let rng = Util.Rng.create 3 in
  let mlp = Nn.Layer.Mlp.create rng ~dims:[ 4; 8; 2 ] ~name:"mlp" in
  Alcotest.(check int) "two layers x (w,b)" 4 (List.length (Nn.Layer.Mlp.params mlp));
  let tape = Ad.tape () in
  let x = Ad.const tape (Mat.create 3 4 0.5) in
  checkb "output shape" true (Mat.shape (Ad.value (Nn.Layer.Mlp.forward tape mlp x)) = (3, 2));
  Alcotest.check_raises "one dim" (Invalid_argument "Mlp.create: need at least two dims")
    (fun () -> ignore (Nn.Layer.Mlp.create rng ~dims:[ 4 ] ~name:"bad"))

(* The tape-free inference paths must reproduce the training forward
   bit for bit: same matmul summation order, same ReLU semantics. *)
let test_infer_matches_forward () =
  let rng = Util.Rng.create 17 in
  let layer = Nn.Layer.Linear.create rng ~in_dim:6 ~out_dim:4 ~name:"lin" in
  let x = Mat.random_uniform rng 5 6 1.0 in
  let tape = Ad.tape () in
  let taped = Ad.value (Nn.Layer.Linear.forward tape layer (Ad.const tape x)) in
  let fast = Nn.Layer.Linear.infer layer x in
  let into = Mat.zeros 5 4 in
  Nn.Layer.Linear.infer_into layer ~out:into x;
  let same a b =
    let ok = ref true in
    for i = 0 to Mat.rows a - 1 do
      for j = 0 to Mat.cols a - 1 do
        if
          Int64.bits_of_float (Mat.get a i j)
          <> Int64.bits_of_float (Mat.get b i j)
        then ok := false
      done
    done;
    !ok
  in
  checkb "linear infer = forward" true (same taped fast);
  checkb "linear infer_into = forward" true (same taped into);
  let mlp = Nn.Layer.Mlp.create rng ~dims:[ 6; 8; 3 ] ~name:"mlp" in
  let tape = Ad.tape () in
  let taped_mlp =
    Ad.value
      (let h =
         Ad.relu tape
           (Nn.Layer.Linear.forward tape
              (List.nth (Nn.Layer.Mlp.linears mlp) 0)
              (Ad.const tape x))
       in
       Nn.Layer.Linear.forward tape (List.nth (Nn.Layer.Mlp.linears mlp) 1) h)
  in
  checkb "mlp infer = forward" true (same taped_mlp (Nn.Layer.Mlp.infer mlp x))

(* --- optimisers --- *)

let quadratic_loss p tape =
  (* loss = sum((x - 3)^2) with minimum at x = 3 *)
  let x = Ad.of_param tape p in
  let shifted = Ad.add_scalar tape (-3.0) x in
  Ad.sum_all tape (Ad.mul tape shifted shifted)

let run_optimiser make_opt =
  let p = Nn.Param.create "p" (Mat.create 2 2 0.0) in
  let opt = make_opt [ p ] in
  for _ = 1 to 500 do
    let tape = Ad.tape () in
    let l = quadratic_loss p tape in
    Ad.backward tape l;
    Nn.Optim.step opt
  done;
  Mat.get p.Nn.Param.value 0 0

let test_adam_minimises_quadratic () =
  let final = run_optimiser (Nn.Optim.adam ~lr:0.05) in
  checkb "near 3" true (Float.abs (final -. 3.0) < 0.05)

let test_sgd_minimises_quadratic () =
  let final = run_optimiser (Nn.Optim.sgd ~momentum:0.5 ~lr:0.01) in
  checkb "near 3" true (Float.abs (final -. 3.0) < 0.05)

let test_step_zeroes_grads () =
  let p = Nn.Param.create "p" (Mat.create 1 1 0.0) in
  let opt = Nn.Optim.adam ~lr:0.1 [ p ] in
  let tape = Ad.tape () in
  Ad.backward tape (quadratic_loss p tape);
  checkb "grad nonzero after backward" true (Mat.get p.Nn.Param.grad 0 0 <> 0.0);
  Nn.Optim.step opt;
  checkf "grad zeroed" 0.0 (Mat.get p.Nn.Param.grad 0 0)

let test_grad_norm () =
  let p = Nn.Param.create "p" (Mat.create 1 1 0.0) in
  let opt = Nn.Optim.adam ~lr:0.1 [ p ] in
  checkf "zero before" 0.0 (Nn.Optim.grad_norm opt);
  let tape = Ad.tape () in
  Ad.backward tape (quadratic_loss p tape);
  checkf "matches hand computation" 6.0 (Nn.Optim.grad_norm opt)

(* --- checkpoint --- *)

let test_checkpoint_roundtrip () =
  let rng = Util.Rng.create 21 in
  let p1 = Nn.Param.create "layer.weight" (Mat.random_uniform rng 3 4 2.0) in
  let p2 = Nn.Param.create "layer.bias" (Mat.random_uniform rng 1 4 2.0) in
  let text = Nn.Checkpoint.to_string [ p1; p2 ] in
  let q1 = Nn.Param.create "layer.weight" (Mat.zeros 3 4) in
  let q2 = Nn.Param.create "layer.bias" (Mat.zeros 1 4) in
  Nn.Checkpoint.of_string text [ q1; q2 ];
  checkb "weight restored" true (Mat.approx_equal p1.Nn.Param.value q1.Nn.Param.value);
  checkb "bias restored" true (Mat.approx_equal p2.Nn.Param.value q2.Nn.Param.value)

let test_checkpoint_errors () =
  let p = Nn.Param.create "a" (Mat.zeros 2 2) in
  let text = Nn.Checkpoint.to_string [ p ] in
  let missing = Nn.Param.create "b" (Mat.zeros 2 2) in
  (match Nn.Checkpoint.of_string text [ missing ] with
  | exception Runtime.Error.Runtime_error (Runtime.Error.Corrupt _) -> ()
  | () -> Alcotest.fail "missing param must fail");
  let wrong_shape = Nn.Param.create "a" (Mat.zeros 3 3) in
  match Nn.Checkpoint.of_string text [ wrong_shape ] with
  | exception Runtime.Error.Runtime_error (Runtime.Error.Corrupt _) -> ()
  | () -> Alcotest.fail "shape mismatch must fail"

(* Regression: a payload with the same parameter block twice used to
   silently keep the last occurrence; it must be a typed error. *)
let test_checkpoint_duplicate_param () =
  let p = Nn.Param.create "a" (Mat.zeros 1 2) in
  let text = Nn.Checkpoint.to_string [ p; p ] in
  let q = Nn.Param.create "a" (Mat.zeros 1 2) in
  match Nn.Checkpoint.of_string_result text [ q ] with
  | Error (Runtime.Error.Corrupt { detail; _ }) ->
    checkb "detail names the duplicate" true
      (String.length detail >= 9 && String.sub detail 0 9 = "duplicate")
  | Ok () -> Alcotest.fail "duplicate parameter block must fail"
  | Error e -> Alcotest.failf "wrong error: %s" (Runtime.Error.to_string e)

(* A headerless (pre-envelope) checkpoint still loads. *)
let test_checkpoint_legacy_payload () =
  let rng = Util.Rng.create 23 in
  let p = Nn.Param.create "w" (Mat.random_uniform rng 2 3 1.0) in
  let legacy = Nn.Checkpoint.to_string [ p ] in
  let q = Nn.Param.create "w" (Mat.zeros 2 3) in
  Nn.Checkpoint.of_string legacy [ q ];
  checkb "legacy payload restored" true
    (Mat.approx_equal p.Nn.Param.value q.Nn.Param.value)

let with_ckpt_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nsckpt-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f (Filename.concat dir "model.ckpt"))

let test_checkpoint_backup_fallback () =
  with_ckpt_dir (fun path ->
      let rng = Util.Rng.create 24 in
      let p = Nn.Param.create "w" (Mat.random_uniform rng 2 2 1.0) in
      Nn.Checkpoint.save path [ p ];
      let good = Mat.copy p.Nn.Param.value in
      (* Second save promotes the first file to .bak ... *)
      Mat.set p.Nn.Param.value 0 0 99.0;
      Nn.Checkpoint.save path [ p ];
      checkb ".bak exists" true (Sys.file_exists (Nn.Checkpoint.backup_path path));
      (* ... then corrupt the primary in place: load must fall back. *)
      let text = In_channel.with_open_bin path In_channel.input_all in
      let b = Bytes.of_string text in
      Bytes.set b (Bytes.length b - 2)
        (Char.chr (Char.code (Bytes.get b (Bytes.length b - 2)) lxor 0x40));
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
      let q = Nn.Param.create "w" (Mat.zeros 2 2) in
      match Nn.Checkpoint.load_result path [ q ] with
      | Ok Nn.Checkpoint.Backup ->
        checkb "backup holds the previous weights" true
          (Mat.approx_equal good q.Nn.Param.value)
      | Ok Nn.Checkpoint.Primary -> Alcotest.fail "corrupt primary accepted"
      | Error e -> Alcotest.failf "no fallback: %s" (Runtime.Error.to_string e))

let test_checkpoint_corruption_detected () =
  with_ckpt_dir (fun path ->
      let rng = Util.Rng.create 25 in
      let p = Nn.Param.create "w" (Mat.random_uniform rng 2 2 1.0) in
      Nn.Checkpoint.save path [ p ];
      let text = In_channel.with_open_bin path In_channel.input_all in
      (* Truncation and bit flips must both be typed errors (no .bak here). *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub text 0 (String.length text / 2)));
      let q = Nn.Param.create "w" (Mat.zeros 2 2) in
      (match Nn.Checkpoint.load_result path [ q ] with
      | Error (Runtime.Error.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "truncated checkpoint accepted"
      | Error e -> Alcotest.failf "wrong error: %s" (Runtime.Error.to_string e));
      checkb "params untouched" true (Mat.approx_equal (Mat.zeros 2 2) q.Nn.Param.value))

(* Property: no corruption of the serialized envelope may escape as
   anything but a typed result — never an uncaught exception. *)
let prop_checkpoint_corruption_typed =
  let rng = Util.Rng.create 26 in
  let p = Nn.Param.create "w" (Mat.random_uniform rng 3 3 1.0) in
  let text = Nn.Checkpoint.encode [ p ] in
  let n = String.length text in
  QCheck.Test.make ~name:"corrupted checkpoints yield typed results" ~count:300
    QCheck.(triple bool (int_range 0 (n - 1)) (int_range 0 7))
    (fun (truncate, i, bit) ->
      let mutated =
        if truncate then String.sub text 0 i
        else begin
          let b = Bytes.of_string text in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
          Bytes.to_string b
        end
      in
      let q = Nn.Param.create "w" (Mat.zeros 3 3) in
      match Nn.Checkpoint.of_string_result mutated [ q ] with
      | Ok () | Error _ -> true)

let test_checkpoint_file_io () =
  let rng = Util.Rng.create 22 in
  let p = Nn.Param.create "w" (Mat.random_uniform rng 2 2 1.0) in
  let path = Filename.temp_file "neuroselect" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Nn.Checkpoint.save path [ p ];
      let q = Nn.Param.create "w" (Mat.zeros 2 2) in
      Nn.Checkpoint.load path [ q ];
      checkb "file roundtrip" true (Mat.approx_equal p.Nn.Param.value q.Nn.Param.value))

(* --- generic training --- *)

(* Learn "sum of inputs > 0" on 1x4 row vectors through a tiny MLP. *)
let test_train_learns_toy_problem () =
  let rng = Util.Rng.create 31 in
  let mlp = Nn.Layer.Mlp.create rng ~dims:[ 4; 8; 1 ] ~name:"toy" in
  let spec =
    {
      Nn.Train.params = Nn.Layer.Mlp.params mlp;
      forward =
        (fun tape m ->
          Nn.Layer.Mlp.forward tape mlp (Ad.const tape m));
    }
  in
  let examples =
    Array.init 60 (fun _ ->
        let v = Array.init 4 (fun _ -> Util.Rng.uniform rng (-1.0) 1.0) in
        (Mat.row_vector v, Array.fold_left ( +. ) 0.0 v > 0.0))
  in
  let history = Nn.Train.fit ~epochs:60 ~lr:0.01 spec examples in
  let losses = history.Nn.Train.epoch_losses in
  checkb "loss decreased" true (losses.(59) < losses.(0));
  let correct =
    Array.fold_left
      (fun acc (m, l) -> if Nn.Train.predict spec m = l then acc + 1 else acc)
      0 examples
  in
  checkb "fits the training set" true (correct >= 55)

let test_train_empty_dataset () =
  let spec =
    { Nn.Train.params = []; forward = (fun tape _ -> Ad.const tape (Mat.zeros 1 1)) }
  in
  Alcotest.check_raises "empty" (Invalid_argument "Train.fit: empty dataset")
    (fun () -> ignore (Nn.Train.fit spec ([||] : (unit * bool) array)))

let test_auto_pos_weight () =
  let data = [| ((), true); ((), false); ((), false); ((), false) |] in
  checkf "3 neg / 1 pos" 3.0 (Nn.Train.auto_pos_weight data);
  checkf "degenerate all pos" 1.0 (Nn.Train.auto_pos_weight [| ((), true) |]);
  checkf "clamped" 10.0
    (Nn.Train.auto_pos_weight
       (Array.append [| ((), true) |] (Array.make 50 ((), false))))

let suite =
  [
    Alcotest.test_case "grad basic ops" `Quick test_grad_basic_ops;
    Alcotest.test_case "grad add/sub" `Quick test_grad_add_sub;
    Alcotest.test_case "grad matmul" `Quick test_grad_matmul;
    Alcotest.test_case "grad pooling" `Quick test_grad_pooling;
    Alcotest.test_case "max_rows values" `Quick test_max_rows_values;
    Alcotest.test_case "grad normalisations" `Quick test_grad_normalisations;
    Alcotest.test_case "grad sparse ops" `Quick test_grad_sparse_ops;
    Alcotest.test_case "grad bias and bce" `Quick test_grad_bias_and_bce;
    Alcotest.test_case "grad attention composite" `Quick test_grad_attention_composite;
    Alcotest.test_case "forward values" `Quick test_forward_values;
    Alcotest.test_case "bce values" `Quick test_bce_values;
    Alcotest.test_case "backward requires scalar" `Quick test_backward_requires_scalar;
    Alcotest.test_case "grad accumulates" `Quick test_grad_accumulates_across_uses;
    Alcotest.test_case "linear shapes" `Quick test_linear_shapes_and_bias;
    Alcotest.test_case "mlp structure" `Quick test_mlp_structure;
    Alcotest.test_case "infer matches forward" `Quick
      test_infer_matches_forward;
    Alcotest.test_case "adam minimises" `Quick test_adam_minimises_quadratic;
    Alcotest.test_case "sgd minimises" `Quick test_sgd_minimises_quadratic;
    Alcotest.test_case "step zeroes grads" `Quick test_step_zeroes_grads;
    Alcotest.test_case "grad norm" `Quick test_grad_norm;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint errors" `Quick test_checkpoint_errors;
    Alcotest.test_case "checkpoint duplicate param" `Quick
      test_checkpoint_duplicate_param;
    Alcotest.test_case "checkpoint legacy payload" `Quick
      test_checkpoint_legacy_payload;
    Alcotest.test_case "checkpoint backup fallback" `Quick
      test_checkpoint_backup_fallback;
    Alcotest.test_case "checkpoint corruption detected" `Quick
      test_checkpoint_corruption_detected;
    QCheck_alcotest.to_alcotest prop_checkpoint_corruption_typed;
    Alcotest.test_case "checkpoint file io" `Quick test_checkpoint_file_io;
    Alcotest.test_case "train learns toy problem" `Quick test_train_learns_toy_problem;
    Alcotest.test_case "train empty dataset" `Quick test_train_empty_dataset;
    Alcotest.test_case "auto pos weight" `Quick test_auto_pos_weight;
  ]

(* Tests for the CDCL solver: heap, deletion policies, solver
   correctness (cross-checked against brute force), budgets,
   propagation counting, and reduce behaviour. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Var_heap --- *)

let test_heap_initial_order () =
  let h = Cdcl.Var_heap.create ~num_vars:5 in
  checki "size" 5 (Cdcl.Var_heap.size h);
  (* All activities zero: ties broken by smaller index. *)
  checki "first max" 1 (Cdcl.Var_heap.remove_max h);
  checki "second max" 2 (Cdcl.Var_heap.remove_max h)

let test_heap_bump_reorders () =
  let h = Cdcl.Var_heap.create ~num_vars:5 in
  Cdcl.Var_heap.bump h 4 10.0;
  Cdcl.Var_heap.bump h 2 5.0;
  checki "highest activity first" 4 (Cdcl.Var_heap.remove_max h);
  checki "then next" 2 (Cdcl.Var_heap.remove_max h)

let test_heap_reinsert () =
  let h = Cdcl.Var_heap.create ~num_vars:3 in
  let v = Cdcl.Var_heap.remove_max h in
  checkb "removed not mem" false (Cdcl.Var_heap.mem h v);
  Cdcl.Var_heap.insert h v;
  checkb "reinserted mem" true (Cdcl.Var_heap.mem h v);
  Cdcl.Var_heap.insert h v;
  checki "idempotent insert" 3 (Cdcl.Var_heap.size h)

let test_heap_rescale () =
  let h = Cdcl.Var_heap.create ~num_vars:3 in
  Cdcl.Var_heap.bump h 2 100.0;
  Cdcl.Var_heap.rescale h 0.01;
  Alcotest.(check (float 1e-9)) "activity rescaled" 1.0 (Cdcl.Var_heap.activity h 2);
  checki "order preserved" 2 (Cdcl.Var_heap.remove_max h)

let test_heap_drain () =
  let h = Cdcl.Var_heap.create ~num_vars:4 in
  let drained = List.init 4 (fun _ -> Cdcl.Var_heap.remove_max h) in
  checkb "empty" true (Cdcl.Var_heap.is_empty h);
  Alcotest.(check (list int)) "all vars once" [ 1; 2; 3; 4 ] (List.sort compare drained);
  Alcotest.check_raises "empty raises" Not_found (fun () ->
      ignore (Cdcl.Var_heap.remove_max h))

let prop_heap_extracts_max =
  QCheck.Test.make ~name:"heap always extracts current max" ~count:200
    QCheck.(small_list (pair (int_range 1 20) (float_range 0.0 100.0)))
    (fun bumps ->
      let h = Cdcl.Var_heap.create ~num_vars:20 in
      List.iter (fun (v, x) -> Cdcl.Var_heap.bump h v x) bumps;
      let prev = ref infinity in
      let ok = ref true in
      for _ = 1 to 20 do
        let v = Cdcl.Var_heap.remove_max h in
        let a = Cdcl.Var_heap.activity h v in
        if a > !prev +. 1e-9 then ok := false;
        prev := a
      done;
      !ok)

(* --- Policy --- *)

let info ?(id = 0) ?(glue = 5) ?(size = 10) ?(activity = 0.0) ?(frequency = 0) () =
  { Cdcl.Policy.id; glue; size; activity; frequency }

let test_policy_default_prefers_low_glue () =
  let a = info ~glue:2 ~size:50 () and b = info ~glue:10 ~size:3 () in
  checkb "low glue ranks higher" true
    (Cdcl.Policy.compare_clauses Cdcl.Policy.Default a b > 0)

let test_policy_default_size_tiebreak () =
  let a = info ~glue:5 ~size:3 () and b = info ~glue:5 ~size:30 () in
  checkb "smaller size ranks higher" true
    (Cdcl.Policy.compare_clauses Cdcl.Policy.Default a b > 0)

let test_policy_frequency_dominates () =
  (* Fig. 5: frequency is the most significant field. *)
  let p = Cdcl.Policy.frequency_default in
  let a = info ~glue:20 ~size:50 ~frequency:3 () in
  let b = info ~glue:1 ~size:2 ~frequency:0 () in
  checkb "high frequency beats good glue" true (Cdcl.Policy.compare_clauses p a b > 0);
  (* With equal frequency it degrades to the default ordering. *)
  let c = info ~glue:2 ~size:5 ~frequency:1 () in
  let d = info ~glue:9 ~size:5 ~frequency:1 () in
  checkb "equal freq falls back to glue" true (Cdcl.Policy.compare_clauses p c d > 0)

let test_policy_key_monotone_in_fields () =
  let base = info ~glue:5 ~size:10 ~frequency:2 () in
  let p = Cdcl.Policy.frequency_default in
  checkb "more frequency -> higher key" true
    (Cdcl.Policy.key p { base with Cdcl.Policy.frequency = 3 } > Cdcl.Policy.key p base);
  checkb "more glue -> lower key" true
    (Cdcl.Policy.key p { base with Cdcl.Policy.glue = 6 } < Cdcl.Policy.key p base);
  checkb "more size -> lower key" true
    (Cdcl.Policy.key p { base with Cdcl.Policy.size = 11 } < Cdcl.Policy.key p base)

let test_policy_saturation () =
  (* Giant metric values must not overflow into other fields. *)
  let p = Cdcl.Policy.frequency_default in
  let a = info ~glue:10_000_000 ~size:10_000_000 ~frequency:0 () in
  let b = info ~glue:10_000_001 ~size:5 ~frequency:0 () in
  checkb "saturated glues tie, size decides" true
    (Cdcl.Policy.key p a = Cdcl.Policy.key p b
    || Cdcl.Policy.compare_clauses p a b < 0)

let test_policy_clause_frequency_eq2 () =
  let counts = [| 0; 10; 8; 3; 0 |] in
  (* f_max = 10, alpha = 0.8 -> threshold 8 (strict). *)
  let lits vs = Array.map (fun v -> Cnf.Lit.pos v) vs in
  let f =
    Cdcl.Policy.clause_frequency ~alpha:0.8 ~f_max:10 ~counts
      ~lits:(lits [| 1; 2; 3 |])
  in
  checki "only count > 8 qualifies" 1 f;
  (* Polarity is irrelevant: Eq. 2 counts variables. *)
  checki "negated literals score identically" f
    (Cdcl.Policy.clause_frequency ~alpha:0.8 ~f_max:10 ~counts
       ~lits:(Array.map Cnf.Lit.negate (lits [| 1; 2; 3 |])));
  checki "f_max zero -> 0"
    0
    (Cdcl.Policy.clause_frequency ~alpha:0.8 ~f_max:0 ~counts ~lits:(lits [| 1 |]))

let test_policy_packed_key_matches_key () =
  (* packed_key from unboxed scalars must rank exactly like key on the
     boxed record, for every policy, once the activity has gone through
     the arena's quantising encode/decode round-trip. *)
  let policies =
    [ Cdcl.Policy.Default; Cdcl.Policy.frequency_default; Cdcl.Policy.Glue_only;
      Cdcl.Policy.Size_only; Cdcl.Policy.Activity; Cdcl.Policy.Random 13 ]
  in
  let cases =
    [ info ~id:1 ~glue:2 ~size:3 ~activity:0.0 ~frequency:0 ();
      info ~id:7 ~glue:9 ~size:40 ~activity:3.25 ~frequency:5 ();
      info ~id:42 ~glue:1 ~size:2 ~activity:1e12 ~frequency:1 ();
      info ~id:999 ~glue:10_000_000 ~size:10_000_000 ~activity:0.125 ~frequency:10_000_000 () ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun i ->
          let quantised =
            { i with
              Cdcl.Policy.activity =
                Cdcl.Arena.decode_activity (Cdcl.Arena.encode_activity i.Cdcl.Policy.activity)
            }
          in
          checki
            (Printf.sprintf "packed_key = key (%s, id %d)" (Cdcl.Policy.name p)
               i.Cdcl.Policy.id)
            (Cdcl.Policy.key p quantised)
            (Cdcl.Policy.packed_key p ~id:i.Cdcl.Policy.id ~glue:i.Cdcl.Policy.glue
               ~size:i.Cdcl.Policy.size
               ~activity_bits:(Cdcl.Arena.encode_activity i.Cdcl.Policy.activity)
               ~frequency:i.Cdcl.Policy.frequency))
        cases)
    policies

let test_policy_activity_ordering () =
  let a = info ~activity:5.0 () and b = info ~activity:1.0 () in
  checkb "higher activity kept" true
    (Cdcl.Policy.compare_clauses Cdcl.Policy.Activity a b > 0)

let test_policy_random_deterministic () =
  let a = info ~id:1 () and b = info ~id:2 () in
  let r = Cdcl.Policy.Random 7 in
  checki "same comparison twice"
    (Cdcl.Policy.compare_clauses r a b)
    (Cdcl.Policy.compare_clauses r a b)

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      match Cdcl.Policy.of_string (Cdcl.Policy.name p) with
      | Some p' -> checkb "name roundtrip" true (p = p')
      | None -> Alcotest.fail "name must parse")
    [
      Cdcl.Policy.Default;
      Cdcl.Policy.frequency_default;
      Cdcl.Policy.Frequency { alpha = 0.5 };
      Cdcl.Policy.Glue_only;
      Cdcl.Policy.Size_only;
      Cdcl.Policy.Activity;
      Cdcl.Policy.Random 3;
    ];
  checkb "bad string" true (Cdcl.Policy.of_string "bogus" = None)

let test_policy_needs_frequency () =
  checkb "frequency needs it" true
    (Cdcl.Policy.needs_frequency Cdcl.Policy.frequency_default);
  checkb "default does not" false (Cdcl.Policy.needs_frequency Cdcl.Policy.Default)

(* --- Solver correctness --- *)

let brute_force_sat = Generators.brute_force_sat

let solve ?config f = Cdcl.Solver.solve_formula ?config f

let test_solver_trivial () =
  (* Empty formula: SAT. *)
  let empty = Cnf.Formula.of_dimacs_lists ~num_vars:2 [] in
  (match solve empty with
  | Cdcl.Solver.Sat _, _ -> ()
  | _ -> Alcotest.fail "empty formula is SAT");
  (* Contradictory units. *)
  let contra = Cnf.Formula.of_dimacs_lists ~num_vars:1 [ [ 1 ]; [ -1 ] ] in
  match solve contra with
  | Cdcl.Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "x and not x is UNSAT"

let test_solver_unit_propagation_only () =
  let f =
    Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ]
  in
  match solve f with
  | Cdcl.Solver.Sat m, stats ->
    checkb "x1" true m.(1);
    checkb "x2" true m.(2);
    checkb "x3" true m.(3);
    checki "no conflicts needed" 0 stats.Cdcl.Solver_stats.conflicts
  | _ -> Alcotest.fail "chain is SAT"

let test_solver_duplicate_and_tautology () =
  (* Duplicate literals collapse; tautological clauses are dropped. *)
  let f =
    Cnf.Formula.of_dimacs_lists ~num_vars:2 [ [ 1; 1; 1 ]; [ 2; -2 ]; [ -1; -1 ] ]
  in
  match solve f with
  | Cdcl.Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "x & (taut) & not x is UNSAT"

let test_solver_php_unsat () =
  match solve (Gen.Pigeonhole.unsat 5) with
  | Cdcl.Solver.Unsat, stats ->
    checkb "had conflicts" true (stats.Cdcl.Solver_stats.conflicts > 0)
  | _ -> Alcotest.fail "PHP(6,5) is UNSAT"

let test_solver_php_sat_when_fits () =
  match solve (Gen.Pigeonhole.generate ~pigeons:4 ~holes:4) with
  | Cdcl.Solver.Sat m, _ ->
    checkb "model valid" true
      (Cdcl.Solver.check_model (Gen.Pigeonhole.generate ~pigeons:4 ~holes:4) m)
  | _ -> Alcotest.fail "PHP(4,4) is SAT"

let test_solver_parity_unsat () =
  let rng = Util.Rng.create 1 in
  match solve (Gen.Parity.contradiction rng ~num_vars:10) with
  | Cdcl.Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "parity contradiction is UNSAT"

let test_solver_parity_sat_model_checks () =
  let rng = Util.Rng.create 2 in
  let f = Gen.Parity.chain rng ~num_vars:9 ~target:true in
  match solve f with
  | Cdcl.Solver.Sat m, _ -> checkb "model valid" true (Cdcl.Solver.check_model f m)
  | _ -> Alcotest.fail "single parity chain is SAT"

let test_solver_budget_unknown () =
  let config =
    Cdcl.Config.with_budget ~max_conflicts:5 Cdcl.Config.default
  in
  match solve ~config (Gen.Pigeonhole.unsat 6) with
  | Cdcl.Solver.Unknown, stats ->
    checkb "stopped near budget" true (stats.Cdcl.Solver_stats.conflicts <= 10)
  | _ -> Alcotest.fail "tiny budget must yield Unknown"

let test_solver_resume_after_unknown () =
  let config = Cdcl.Config.with_budget ~max_conflicts:5 Cdcl.Config.default in
  let s = Cdcl.Solver.create ~config (Gen.Pigeonhole.unsat 4) in
  let first = Cdcl.Solver.solve s in
  checkb "first call unknown" true (first = Cdcl.Solver.Unknown);
  (* Each further call gets a fresh window; PHP(5,4) finishes quickly. *)
  let rec drive n =
    if n > 200 then Alcotest.fail "never finished"
    else
      match Cdcl.Solver.solve s with
      | Cdcl.Solver.Unsat -> ()
      | Cdcl.Solver.Unknown -> drive (n + 1)
      | Cdcl.Solver.Sat _ -> Alcotest.fail "PHP(5,4) is UNSAT"
  in
  drive 0

let test_solver_answer_cached () =
  let s = Cdcl.Solver.create (Gen.Pigeonhole.unsat 4) in
  checkb "unsat" true (Cdcl.Solver.solve s = Cdcl.Solver.Unsat);
  checkb "cached" true (Cdcl.Solver.solve s = Cdcl.Solver.Unsat)

let test_solver_value_after_sat () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:2 [ [ 1 ]; [ -1; -2 ] ] in
  let s = Cdcl.Solver.create f in
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "sat");
  checkb "x1 true" true (Cdcl.Solver.value s 1 = Some true);
  checkb "x2 false" true (Cdcl.Solver.value s 2 = Some false)

let test_solver_propagation_counts () =
  let config = Cdcl.Config.with_budget ~max_conflicts:50 Cdcl.Config.default in
  let s = Cdcl.Solver.create ~config (Gen.Pigeonhole.unsat 6) in
  ignore (Cdcl.Solver.solve s);
  let counts = Cdcl.Solver.propagation_counts s in
  checki "array sized by vars" (Cdcl.Solver.num_vars s + 1) (Array.length counts);
  checkb "some propagation happened" true (Array.exists (fun c -> c > 0) counts)

let test_solver_counts_reset_by_reduce () =
  (* After a long run with reduces, counters reflect only the window
     since the last reduce, so their sum is far below total props. *)
  let s = Cdcl.Solver.create (Gen.Pigeonhole.unsat 7) in
  ignore (Cdcl.Solver.solve s);
  let stats = Cdcl.Solver.stats s in
  checkb "reduces happened" true (stats.Cdcl.Solver_stats.reduces > 0);
  let window = Array.fold_left ( + ) 0 (Cdcl.Solver.propagation_counts s) in
  checkb "window smaller than total" true
    (window < stats.Cdcl.Solver_stats.propagations)

let test_solver_reduce_deletes () =
  let s = Cdcl.Solver.create (Gen.Pigeonhole.unsat 7) in
  ignore (Cdcl.Solver.solve s);
  let stats = Cdcl.Solver.stats s in
  checkb "learned" true (stats.Cdcl.Solver_stats.learned_total > 0);
  checkb "deleted" true (stats.Cdcl.Solver_stats.deleted_total > 0);
  checkb "live learned below total" true
    (Cdcl.Solver.learned_clause_count s
    <= stats.Cdcl.Solver_stats.learned_total - stats.Cdcl.Solver_stats.deleted_total)

let all_policies =
  [
    Cdcl.Policy.Default;
    Cdcl.Policy.frequency_default;
    Cdcl.Policy.Glue_only;
    Cdcl.Policy.Size_only;
    Cdcl.Policy.Activity;
    Cdcl.Policy.Random 1;
  ]

let test_solver_policies_agree_on_answer () =
  (* Deletion policy changes performance, never the verdict. *)
  let sat_f = Generators.ksat ~seed:77 ~num_vars:15 ~num_clauses:50 () in
  let unsat_f = Gen.Pigeonhole.unsat 5 in
  let expected_sat = brute_force_sat sat_f in
  List.iter
    (fun policy ->
      let config = Cdcl.Config.with_policy policy Cdcl.Config.default in
      (match solve ~config sat_f with
      | Cdcl.Solver.Sat m, _ ->
        checkb "sat expected" true expected_sat;
        checkb "model valid" true (Cdcl.Solver.check_model sat_f m)
      | Cdcl.Solver.Unsat, _ -> checkb "unsat expected" false expected_sat
      | Cdcl.Solver.Unknown, _ -> Alcotest.fail "no budget set");
      match solve ~config unsat_f with
      | Cdcl.Solver.Unsat, _ -> ()
      | _ -> Alcotest.fail "PHP must be UNSAT under every policy")
    all_policies

let test_solver_restart_modes_agree () =
  let f = Gen.Pigeonhole.unsat 5 in
  List.iter
    (fun mode ->
      let config = { Cdcl.Config.default with Cdcl.Config.restart_mode = mode } in
      match solve ~config f with
      | Cdcl.Solver.Unsat, _ -> ()
      | _ -> Alcotest.fail "UNSAT under every restart mode")
    [
      Cdcl.Config.No_restarts;
      Cdcl.Config.Luby 50;
      Cdcl.Config.Glucose { fast_alpha = 0.03; slow_alpha = 1e-4; margin = 1.25 };
    ]

let test_solver_no_minimize_agrees () =
  let config = { Cdcl.Config.default with Cdcl.Config.minimize = false } in
  match solve ~config (Gen.Pigeonhole.unsat 5) with
  | Cdcl.Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "UNSAT without minimisation"

let test_solver_minimize_shrinks () =
  let run minimize =
    let config = { Cdcl.Config.default with Cdcl.Config.minimize } in
    let _, stats = solve ~config (Gen.Pigeonhole.unsat 6) in
    stats.Cdcl.Solver_stats.minimized_literals
  in
  checki "no minimisation removes nothing" 0 (run false);
  checkb "minimisation removes literals" true (run true > 0)

let test_solver_luby_restarts_counted () =
  let _, stats = solve (Gen.Pigeonhole.unsat 7) in
  checkb "restarts happened" true (stats.Cdcl.Solver_stats.restarts > 0)

(* --- DRUP proofs --- *)

let solve_with_proof f =
  let solver = Cdcl.Solver.create f in
  let log = Cdcl.Drup.create () in
  Cdcl.Drup.attach log solver;
  let result = Cdcl.Solver.solve solver in
  (result, log)

let test_drup_proof_valid_php () =
  let f = Gen.Pigeonhole.unsat 4 in
  let result, log = solve_with_proof f in
  checkb "unsat" true (result = Cdcl.Solver.Unsat);
  checkb "proof nonempty" true (Cdcl.Drup.num_lines log > 0);
  Cdcl.Drup.conclude_unsat log;
  checkb "proof checks" true (Cdcl.Drup_check.check_solver_proof f log = Cdcl.Drup_check.Valid)

let test_drup_proof_valid_parity () =
  let rng = Util.Rng.create 17 in
  let f = Gen.Parity.contradiction rng ~num_vars:6 in
  let result, log = solve_with_proof f in
  checkb "unsat" true (result = Cdcl.Solver.Unsat);
  Cdcl.Drup.conclude_unsat log;
  checkb "proof checks" true (Cdcl.Drup_check.check_solver_proof f log = Cdcl.Drup_check.Valid)

let test_drup_rejects_bogus_proof () =
  (* A clause that is not RUP w.r.t. the formula must be rejected. *)
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1; 2 ]; [ -1; 3 ] ] in
  (match Cdcl.Drup_check.check f "3 0\n0\n" with
  | Cdcl.Drup_check.Invalid { line = 1; _ } -> ()
  | Cdcl.Drup_check.Invalid _ | Cdcl.Drup_check.Valid ->
    Alcotest.fail "non-RUP clause must be rejected at line 1");
  (* A proof that never derives the empty clause is incomplete. *)
  match Cdcl.Drup_check.check (Gen.Pigeonhole.unsat 3) "" with
  | Cdcl.Drup_check.Invalid { reason; _ } ->
    checkb "incomplete reason" true
      (reason = "proof does not derive the empty clause")
  | Cdcl.Drup_check.Valid -> Alcotest.fail "empty proof cannot be valid"

let test_drup_deletions_recorded () =
  (* PHP(7,6) triggers reduces, so the proof must contain deletions
     and still check. *)
  let f = Gen.Pigeonhole.unsat 5 in
  let result, log = solve_with_proof f in
  checkb "unsat" true (result = Cdcl.Solver.Unsat);
  let text = Cdcl.Drup.to_string log in
  checkb "has deletion lines" true
    (String.split_on_char '\n' text
    |> List.exists (fun l -> String.length l > 1 && l.[0] = 'd'))

let test_drup_trace_format () =
  let log = Cdcl.Drup.create () in
  Cdcl.Drup.event log (Cdcl.Solver.Learned [| Cnf.Lit.pos 1; Cnf.Lit.neg 2 |]);
  Cdcl.Drup.event log (Cdcl.Solver.Deleted [| Cnf.Lit.neg 3 |]);
  Alcotest.(check string) "format" "1 -2 0\nd -3 0\n" (Cdcl.Drup.to_string log)

(* Cross-check against brute force on random instances, every policy. *)
let prop_solver_matches_brute_force =
  QCheck.Test.make ~name:"solver matches brute force on random 3-SAT" ~count:60
    (Generators.seed_and_clauses 10 45)
    (fun (seed, m) ->
      let f = Generators.ksat ~seed ~num_vars:10 ~num_clauses:m () in
      let expected = brute_force_sat f in
      match solve f with
      | Cdcl.Solver.Sat model, _ -> expected && Cdcl.Solver.check_model f model
      | Cdcl.Solver.Unsat, _ -> not expected
      | Cdcl.Solver.Unknown, _ -> false)

let prop_solver_frequency_matches_brute_force =
  QCheck.Test.make ~name:"frequency policy matches brute force" ~count:40
    (Generators.seed_and_clauses 10 45)
    (fun (seed, m) ->
      let f = Generators.ksat ~seed:(seed + 1000) ~num_vars:10 ~num_clauses:m () in
      let expected = brute_force_sat f in
      let config =
        Cdcl.Config.with_policy Cdcl.Policy.frequency_default Cdcl.Config.default
      in
      match solve ~config f with
      | Cdcl.Solver.Sat model, _ -> expected && Cdcl.Solver.check_model f model
      | Cdcl.Solver.Unsat, _ -> not expected
      | Cdcl.Solver.Unknown, _ -> false)

let prop_solver_mixed_clause_lengths =
  QCheck.Test.make ~name:"solver handles mixed clause lengths" ~count:40
    QCheck.small_int
    (fun seed ->
      let f = Generators.mixed_lengths ~seed ~num_vars:8 ~num_clauses:25 () in
      let expected = brute_force_sat f in
      match solve f with
      | Cdcl.Solver.Sat model, _ -> expected && Cdcl.Solver.check_model f model
      | Cdcl.Solver.Unsat, _ -> not expected
      | Cdcl.Solver.Unknown, _ -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_heap_extracts_max;
      prop_solver_matches_brute_force;
      prop_solver_frequency_matches_brute_force;
      prop_solver_mixed_clause_lengths;
    ]

let suite =
  [
    Alcotest.test_case "heap initial order" `Quick test_heap_initial_order;
    Alcotest.test_case "heap bump reorders" `Quick test_heap_bump_reorders;
    Alcotest.test_case "heap reinsert" `Quick test_heap_reinsert;
    Alcotest.test_case "heap rescale" `Quick test_heap_rescale;
    Alcotest.test_case "heap drain" `Quick test_heap_drain;
    Alcotest.test_case "policy default glue" `Quick test_policy_default_prefers_low_glue;
    Alcotest.test_case "policy size tiebreak" `Quick test_policy_default_size_tiebreak;
    Alcotest.test_case "policy frequency dominates" `Quick test_policy_frequency_dominates;
    Alcotest.test_case "policy key monotone" `Quick test_policy_key_monotone_in_fields;
    Alcotest.test_case "policy saturation" `Quick test_policy_saturation;
    Alcotest.test_case "policy eq2 frequency" `Quick test_policy_clause_frequency_eq2;
    Alcotest.test_case "policy packed key matches key" `Quick test_policy_packed_key_matches_key;
    Alcotest.test_case "policy activity" `Quick test_policy_activity_ordering;
    Alcotest.test_case "policy random deterministic" `Quick test_policy_random_deterministic;
    Alcotest.test_case "policy names roundtrip" `Quick test_policy_names_roundtrip;
    Alcotest.test_case "policy needs_frequency" `Quick test_policy_needs_frequency;
    Alcotest.test_case "solver trivial" `Quick test_solver_trivial;
    Alcotest.test_case "solver unit propagation" `Quick test_solver_unit_propagation_only;
    Alcotest.test_case "solver dup/tautology" `Quick test_solver_duplicate_and_tautology;
    Alcotest.test_case "solver php unsat" `Quick test_solver_php_unsat;
    Alcotest.test_case "solver php sat" `Quick test_solver_php_sat_when_fits;
    Alcotest.test_case "solver parity unsat" `Quick test_solver_parity_unsat;
    Alcotest.test_case "solver parity sat" `Quick test_solver_parity_sat_model_checks;
    Alcotest.test_case "solver budget unknown" `Quick test_solver_budget_unknown;
    Alcotest.test_case "solver resume" `Quick test_solver_resume_after_unknown;
    Alcotest.test_case "solver answer cached" `Quick test_solver_answer_cached;
    Alcotest.test_case "solver value accessor" `Quick test_solver_value_after_sat;
    Alcotest.test_case "solver propagation counts" `Quick test_solver_propagation_counts;
    Alcotest.test_case "solver counts reset by reduce" `Quick test_solver_counts_reset_by_reduce;
    Alcotest.test_case "solver reduce deletes" `Quick test_solver_reduce_deletes;
    Alcotest.test_case "solver policies agree" `Slow test_solver_policies_agree_on_answer;
    Alcotest.test_case "solver restart modes agree" `Quick test_solver_restart_modes_agree;
    Alcotest.test_case "solver no-minimize agrees" `Quick test_solver_no_minimize_agrees;
    Alcotest.test_case "solver minimize shrinks" `Quick test_solver_minimize_shrinks;
    Alcotest.test_case "solver restarts counted" `Quick test_solver_luby_restarts_counted;
    Alcotest.test_case "drup proof valid php" `Quick test_drup_proof_valid_php;
    Alcotest.test_case "drup proof valid parity" `Quick test_drup_proof_valid_parity;
    Alcotest.test_case "drup rejects bogus proof" `Quick test_drup_rejects_bogus_proof;
    Alcotest.test_case "drup deletions recorded" `Quick test_drup_deletions_recorded;
    Alcotest.test_case "drup trace format" `Quick test_drup_trace_format;
  ]
  @ qcheck_tests

(* --- VMTF --- *)

let test_vmtf_initial_order () =
  let q = Cdcl.Vmtf.create ~num_vars:4 in
  checki "front is 1" 1 (Cdcl.Vmtf.front q);
  checkb "pick 1 first" true (Cdcl.Vmtf.pick q ~assigned:(fun _ -> false) = Some 1)

let test_vmtf_bump_moves_front () =
  let q = Cdcl.Vmtf.create ~num_vars:4 in
  Cdcl.Vmtf.bump q 3;
  checki "front moved" 3 (Cdcl.Vmtf.front q);
  checkb "pick bumped" true (Cdcl.Vmtf.pick q ~assigned:(fun _ -> false) = Some 3)

let test_vmtf_skips_assigned () =
  let q = Cdcl.Vmtf.create ~num_vars:3 in
  Cdcl.Vmtf.bump q 2;
  let assigned v = v = 2 in
  checkb "skips the assigned front" true (Cdcl.Vmtf.pick q ~assigned = Some 1);
  checkb "none when all assigned" true
    (Cdcl.Vmtf.pick q ~assigned:(fun _ -> true) = None)

let test_vmtf_unassign_refreshes () =
  let q = Cdcl.Vmtf.create ~num_vars:3 in
  Cdcl.Vmtf.bump q 3;
  (* 3 assigned: picks 1, caching the search pointer past 3. *)
  checkb "pick 1" true (Cdcl.Vmtf.pick q ~assigned:(fun v -> v = 3) = Some 1);
  Cdcl.Vmtf.on_unassign q 3;
  checkb "unassigned front picked again" true
    (Cdcl.Vmtf.pick q ~assigned:(fun _ -> false) = Some 3)

let test_solver_vmtf_agrees () =
  let config = { Cdcl.Config.default with Cdcl.Config.branching = Cdcl.Config.Vmtf } in
  (match solve ~config (Gen.Pigeonhole.unsat 5) with
  | Cdcl.Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "PHP unsat under VMTF");
  let f = Generators.ksat ~seed:99 ~num_vars:12 ~num_clauses:30 () in
  match solve ~config f with
  | Cdcl.Solver.Sat m, _ -> checkb "model valid" true (Cdcl.Solver.check_model f m)
  | Cdcl.Solver.Unsat, _ -> checkb "brute force agrees" false (brute_force_sat f)
  | Cdcl.Solver.Unknown, _ -> Alcotest.fail "no budget set"

let prop_vmtf_solver_matches_brute_force =
  QCheck.Test.make ~name:"vmtf solver matches brute force" ~count:40
    (Generators.seed_and_clauses 10 45)
    (fun (seed, m) ->
      let f = Generators.ksat ~seed:(seed + 555) ~num_vars:10 ~num_clauses:m () in
      let expected = brute_force_sat f in
      let config =
        { Cdcl.Config.default with Cdcl.Config.branching = Cdcl.Config.Vmtf }
      in
      match solve ~config f with
      | Cdcl.Solver.Sat model, _ -> expected && Cdcl.Solver.check_model f model
      | Cdcl.Solver.Unsat, _ -> not expected
      | Cdcl.Solver.Unknown, _ -> false)

let suite =
  suite
  @ [
      Alcotest.test_case "vmtf initial order" `Quick test_vmtf_initial_order;
      Alcotest.test_case "vmtf bump moves front" `Quick test_vmtf_bump_moves_front;
      Alcotest.test_case "vmtf skips assigned" `Quick test_vmtf_skips_assigned;
      Alcotest.test_case "vmtf unassign refresh" `Quick test_vmtf_unassign_refreshes;
      Alcotest.test_case "solver vmtf agrees" `Quick test_solver_vmtf_agrees;
      QCheck_alcotest.to_alcotest prop_vmtf_solver_matches_brute_force;
    ]

(* --- assumptions and unsat cores --- *)

let test_assumptions_sat () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1; 2 ]; [ -1; 3 ] ] in
  let s = Cdcl.Solver.create f in
  match Cdcl.Solver.solve_with_assumptions s [ Cnf.Lit.pos 1 ] with
  | Cdcl.Solver.Sat m ->
    checkb "assumption respected" true m.(1);
    checkb "implied literal" true m.(3);
    checkb "model valid" true (Cdcl.Solver.check_model f m)
  | _ -> Alcotest.fail "satisfiable under assumption"

let test_assumptions_unsat_with_core () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1; 2 ] ] in
  let s = Cdcl.Solver.create f in
  let assumptions = [ Cnf.Lit.neg 1; Cnf.Lit.neg 2; Cnf.Lit.pos 3 ] in
  (match Cdcl.Solver.solve_with_assumptions s assumptions with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "must be unsat under assumptions");
  match Cdcl.Solver.unsat_core s with
  | Some core ->
    checkb "core is subset of assumptions" true
      (List.for_all (fun l -> List.exists (Cnf.Lit.equal l) assumptions) core);
    checkb "core mentions the clause vars" true
      (List.exists (fun l -> Cnf.Lit.var l = 1 || Cnf.Lit.var l = 2) core);
    (* The irrelevant assumption x3 must not be in the core. *)
    checkb "irrelevant assumption excluded" false
      (List.exists (fun l -> Cnf.Lit.var l = 3) core)
  | None -> Alcotest.fail "core must be available"

let test_assumptions_reusable () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:2 [ [ 1; 2 ] ] in
  let s = Cdcl.Solver.create f in
  (match Cdcl.Solver.solve_with_assumptions s [ Cnf.Lit.neg 1; Cnf.Lit.neg 2 ] with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "unsat first");
  (match Cdcl.Solver.solve_with_assumptions s [ Cnf.Lit.neg 1 ] with
  | Cdcl.Solver.Sat m ->
    checkb "x2 forced" true m.(2);
    checkb "model valid" true (Cdcl.Solver.check_model f m)
  | _ -> Alcotest.fail "sat second");
  match Cdcl.Solver.solve s with
  | Cdcl.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "plain solve still works"

let test_assumptions_formula_unsat_empty_core () =
  let s = Cdcl.Solver.create (Gen.Pigeonhole.unsat 3) in
  (match Cdcl.Solver.solve_with_assumptions s [ Cnf.Lit.pos 1 ] with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "PHP unsat regardless");
  match Cdcl.Solver.unsat_core s with
  | Some [] -> ()
  | Some _ ->
    (* A non-empty core is also acceptable if derived before the
       level-0 conflict; it must then still be assumptions only. *)
    ()
  | None -> Alcotest.fail "core must be set"

let test_assumptions_conflicting_pair () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:2 [ [ 1; 2 ] ] in
  let s = Cdcl.Solver.create f in
  (match Cdcl.Solver.solve_with_assumptions s [ Cnf.Lit.pos 1; Cnf.Lit.neg 1 ] with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "contradictory assumptions are unsat");
  match Cdcl.Solver.unsat_core s with
  | Some core -> checkb "both sides in core" true (List.length core >= 2)
  | None -> Alcotest.fail "core must be set"

(* Assumptions agree with adding unit clauses. *)
let prop_assumptions_equal_units =
  QCheck.Test.make ~name:"assumptions behave like unit clauses" ~count:60
    (Generators.seed_and_clauses 15 40)
    (fun (seed, m) ->
      let f, rng =
        Generators.ksat_with_rng ~seed:(seed + 4242) ~num_vars:10 ~num_clauses:m ()
      in
      let k = Util.Rng.int_in rng 1 3 in
      let vars = Util.Rng.sample_distinct rng k 10 in
      let assumptions =
        Array.to_list
          (Array.map (fun v -> Cnf.Lit.make (v + 1) (Util.Rng.bool rng)) vars)
      in
      let s = Cdcl.Solver.create f in
      let with_assumptions = Cdcl.Solver.solve_with_assumptions s assumptions in
      let b = Cnf.Formula.Builder.create () in
      Cnf.Formula.Builder.ensure_vars b 10;
      Cnf.Formula.iter_clauses
        (fun c -> Cnf.Formula.Builder.add_clause b (Array.to_list c))
        f;
      List.iter (fun l -> Cnf.Formula.Builder.add_clause b [ l ]) assumptions;
      let augmented = Cnf.Formula.Builder.build b in
      let direct = fst (Cdcl.Solver.solve_formula augmented) in
      match (with_assumptions, direct) with
      | Cdcl.Solver.Sat m, Cdcl.Solver.Sat _ -> Cdcl.Solver.check_model augmented m
      | Cdcl.Solver.Unsat, Cdcl.Solver.Unsat -> true
      | _ -> false)

let suite =
  suite
  @ [
      Alcotest.test_case "assumptions sat" `Quick test_assumptions_sat;
      Alcotest.test_case "assumptions unsat core" `Quick test_assumptions_unsat_with_core;
      Alcotest.test_case "assumptions reusable" `Quick test_assumptions_reusable;
      Alcotest.test_case "assumptions formula-unsat core" `Quick
        test_assumptions_formula_unsat_empty_core;
      Alcotest.test_case "assumptions conflicting pair" `Quick
        test_assumptions_conflicting_pair;
      QCheck_alcotest.to_alcotest prop_assumptions_equal_units;
    ]

let test_assumptions_unknown_then_plain_solve () =
  (* An interrupted assumption run must not leak its decisions into a
     later plain solve. *)
  let f = Gen.Pigeonhole.generate ~pigeons:5 ~holes:5 in
  let config = Cdcl.Config.with_budget ~max_conflicts:1 Cdcl.Config.default in
  let s = Cdcl.Solver.create ~config f in
  ignore (Cdcl.Solver.solve_with_assumptions s [ Cnf.Lit.pos 1; Cnf.Lit.pos 2 ]);
  let rec drive n =
    if n > 500 then Alcotest.fail "did not converge"
    else
      match Cdcl.Solver.solve s with
      | Cdcl.Solver.Sat m -> checkb "model valid" true (Cdcl.Solver.check_model f m)
      | Cdcl.Solver.Unsat -> Alcotest.fail "PHP(5,5) is SAT"
      | Cdcl.Solver.Unknown -> drive (n + 1)
  in
  drive 0

let suite =
  suite
  @ [
      Alcotest.test_case "assumptions unknown then plain" `Quick
        test_assumptions_unknown_then_plain_solve;
    ]

(* Propagation-trigger semantics: the counter increments for the
   variable whose assignment is consumed to derive each implication. *)
let test_propagation_trigger_semantics () =
  let f =
    Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ]
  in
  let s = Cdcl.Solver.create f in
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "chain is SAT");
  let counts = Cdcl.Solver.propagation_counts s in
  checki "x1 triggered one implication" 1 counts.(1);
  checki "x2 triggered one implication" 1 counts.(2);
  checki "x3 triggered none" 0 counts.(3)

let test_stats_pp_smoke () =
  let _, stats = solve (Gen.Pigeonhole.unsat 4) in
  let text = Format.asprintf "%a" Cdcl.Solver_stats.pp stats in
  checkb "stats render" true (String.length text > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "propagation trigger semantics" `Quick
        test_propagation_trigger_semantics;
      Alcotest.test_case "stats pp smoke" `Quick test_stats_pp_smoke;
    ]

(* --- incremental API (IPASIR-style) --- *)

let test_incremental_add_clause_flips_verdict () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:2 [ [ 1; 2 ] ] in
  let s = Cdcl.Solver.create f in
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "sat before the new clauses");
  checkb "state sat" true (Cdcl.Solver.state s = `Sat);
  Cdcl.Solver.add_clause s [ Cnf.Lit.neg 1 ];
  checkb "mutation returns to ready" true (Cdcl.Solver.state s = `Ready);
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Sat m ->
    checkb "x1 false" false m.(1);
    checkb "x2 forced" true m.(2)
  | _ -> Alcotest.fail "still sat");
  Cdcl.Solver.add_clause s [ Cnf.Lit.neg 2 ];
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "units force a conflict");
  checkb "state unsat" true (Cdcl.Solver.state s = `Unsat)

let test_incremental_new_var_growth () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:2 [ [ 1; 2 ] ] in
  let s = Cdcl.Solver.create f in
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "sat initially");
  (* A burst of fresh variables exercises the geometric array growth. *)
  for i = 1 to 20 do
    checki "new_var returns the next index" (2 + i) (Cdcl.Solver.new_var s)
  done;
  checki "num_vars grew" 22 (Cdcl.Solver.num_vars s);
  (* Chain the fresh variables so they all propagate. *)
  Cdcl.Solver.add_clause s [ Cnf.Lit.pos 3 ];
  for v = 3 to 21 do
    Cdcl.Solver.add_clause s [ Cnf.Lit.neg v; Cnf.Lit.pos (v + 1) ]
  done;
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Sat m ->
    checki "model covers the new range" 23 (Array.length m);
    for v = 3 to 22 do
      checkb "chained variable true" true m.(v)
    done;
    checkb "model valid for the original clauses" true
      (Cdcl.Solver.check_model f m)
  | _ -> Alcotest.fail "chain is satisfiable");
  Cdcl.Solver.add_clause s [ Cnf.Lit.neg 22 ];
  match Cdcl.Solver.solve s with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "chain plus refutation is unsat"

let test_incremental_unsat_sticky () =
  let s = Cdcl.Solver.create (Cnf.Formula.create ~num_vars:2 [||]) in
  Cdcl.Solver.add_clause s [ Cnf.Lit.pos 1 ];
  Cdcl.Solver.add_clause s [ Cnf.Lit.neg 1 ];
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "contradictory units");
  (* No later growth or clause can undo unsatisfiability. *)
  ignore (Cdcl.Solver.new_var s);
  Cdcl.Solver.add_clause s [ Cnf.Lit.pos 3 ];
  checkb "still unsat" true (Cdcl.Solver.state s = `Unsat);
  match Cdcl.Solver.solve s with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "unsat is sticky"

let test_incremental_out_of_range_raises () =
  let s = Cdcl.Solver.create (Cnf.Formula.create ~num_vars:2 [||]) in
  match Cdcl.Solver.add_clause s [ Cnf.Lit.pos 5 ] with
  | () -> Alcotest.fail "variable 5 was never introduced"
  | exception Runtime.Error.Runtime_error (Runtime.Error.Invalid_state _) -> ()

let test_incremental_tautology_keeps_answer () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:2 [ [ 1; 2 ] ] in
  let s = Cdcl.Solver.create f in
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "sat");
  Cdcl.Solver.add_clause s [ Cnf.Lit.pos 1; Cnf.Lit.neg 1 ];
  (* A tautology is a no-op: the cached answer survives. *)
  checkb "tautology keeps the cached answer" true (Cdcl.Solver.state s = `Sat)

(* Regression: a plain [solve] after an assumption UNSAT must not leak
   the stale failed-assumption core (or the assumptions themselves). *)
let test_plain_solve_clears_stale_core () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:2 [ [ 1; 2 ] ] in
  let s = Cdcl.Solver.create f in
  (match Cdcl.Solver.solve_with_assumptions s [ Cnf.Lit.neg 1; Cnf.Lit.neg 2 ] with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "unsat under assumptions");
  checkb "core available after assumption unsat" true
    (Cdcl.Solver.unsat_core s <> None);
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Sat m -> checkb "model valid" true (Cdcl.Solver.check_model f m)
  | _ -> Alcotest.fail "formula itself is sat");
  checkb "plain solve cleared the stale core" true
    (Cdcl.Solver.unsat_core s = None);
  (* Also when the answer is served from cache. *)
  (match Cdcl.Solver.solve_with_assumptions s [ Cnf.Lit.neg 1; Cnf.Lit.neg 2 ] with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "unsat under assumptions again");
  (match Cdcl.Solver.solve s with
  | Cdcl.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "cached sat answer");
  checkb "cached path also clears the core" true
    (Cdcl.Solver.unsat_core s = None)

(* Incrementally replayed clauses reach the same verdict as loading
   the whole formula up front, across interleaved solves. *)
let prop_incremental_equals_monolithic =
  QCheck.Test.make ~name:"incremental add_clause equals monolithic" ~count:60
    (Generators.seed_and_clauses 10 40)
    (fun (seed, m) ->
      let f = Generators.mixed_lengths ~seed:(seed + 977) ~num_vars:8 ~num_clauses:m () in
      let first, rest = Generators.split_clauses ~seed f in
      let b = Cnf.Formula.Builder.create () in
      Cnf.Formula.Builder.ensure_vars b 8;
      List.iter (fun c -> Cnf.Formula.Builder.add_clause b (Array.to_list c)) first;
      let s = Cdcl.Solver.create (Cnf.Formula.Builder.build b) in
      ignore (Cdcl.Solver.solve s);
      (* Replay the remainder between solves, solving along the way. *)
      List.iteri
        (fun i c ->
          Cdcl.Solver.add_clause s (Array.to_list c);
          if i mod 3 = 0 then ignore (Cdcl.Solver.solve s))
        rest;
      let expected = Generators.brute_force_sat f in
      match Cdcl.Solver.solve s with
      | Cdcl.Solver.Sat model -> expected && Cdcl.Solver.check_model f model
      | Cdcl.Solver.Unsat -> not expected
      | Cdcl.Solver.Unknown -> false)

let suite =
  suite
  @ [
      Alcotest.test_case "incremental add_clause" `Quick
        test_incremental_add_clause_flips_verdict;
      Alcotest.test_case "incremental new_var growth" `Quick
        test_incremental_new_var_growth;
      Alcotest.test_case "incremental unsat sticky" `Quick
        test_incremental_unsat_sticky;
      Alcotest.test_case "incremental out-of-range raises" `Quick
        test_incremental_out_of_range_raises;
      Alcotest.test_case "incremental tautology cached" `Quick
        test_incremental_tautology_keeps_answer;
      Alcotest.test_case "plain solve clears stale core" `Quick
        test_plain_solve_clears_stale_core;
      QCheck_alcotest.to_alcotest prop_incremental_equals_monolithic;
    ]

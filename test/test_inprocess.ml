(* Inprocessing tier tests: arena tier/usage metadata, the pure policy
   tiering helpers, clause vivification, backward subsumption and
   self-subsuming strengthening, DRUP emission ordering, mid-pass
   compaction, and end-to-end proofs with inprocessing enabled.

   The trace-level assertions pin down the DRUP contract directly: an
   added (strengthened) clause line always immediately precedes the
   deletion of the clause it replaces, and root units are emitted
   before the first deletion. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let lit = Cnf.Lit.of_dimacs

let formula lists =
  let num_vars =
    List.fold_left
      (fun m c -> List.fold_left (fun m l -> max m (abs l)) m c)
      0 lists
  in
  Cnf.Formula.of_dimacs_lists ~num_vars lists

let dimacs_of_lits lits =
  Array.to_list (Array.map Cnf.Lit.to_dimacs lits)

(* Normalised trace events as dimacs int lists, in emission order. *)
let record_trace t =
  let events = ref [] in
  Cdcl.Solver.set_trace t (fun ev ->
      let tag =
        match ev with
        | Cdcl.Solver.Learned lits -> `L (dimacs_of_lits lits)
        | Cdcl.Solver.Deleted lits -> `D (dimacs_of_lits lits)
      in
      events := tag :: !events);
  fun () -> List.rev !events

let ip_config =
  {
    Cdcl.Config.default with
    Cdcl.Config.inprocess = true;
    inprocess_interval = 1;
    tier2_glue = 4;
    promote_uses = 1;
    vivify_budget = 100_000;
    subsume_budget = 100_000;
  }

(* --- arena metadata --------------------------------------------------- *)

let test_arena_tier_usage () =
  let a = Cdcl.Arena.create () in
  let c =
    Cdcl.Arena.alloc_lits a ~learned:true ~glue:3 ~cid:7
      [| lit 1; lit (-2); lit 3 |]
  in
  checki "fresh clause is local" Cdcl.Arena.tier_local (Cdcl.Arena.tier a c);
  checki "fresh usage is 0" 0 (Cdcl.Arena.usage a c);
  Cdcl.Arena.set_tier a c Cdcl.Arena.tier_core;
  checki "set_tier round-trips" Cdcl.Arena.tier_core (Cdcl.Arena.tier a c);
  checki "glue unharmed by tier" 3 (Cdcl.Arena.glue a c);
  checkb "learned unharmed by tier" true (Cdcl.Arena.learned a c);
  for _ = 1 to 10 do
    Cdcl.Arena.bump_usage a c
  done;
  checki "usage saturates" Cdcl.Arena.usage_max (Cdcl.Arena.usage a c);
  Cdcl.Arena.set_usage a c 1;
  checki "set_usage round-trips" 1 (Cdcl.Arena.usage a c);
  checki "size unharmed" 3 (Cdcl.Arena.size a c);
  Alcotest.check_raises "tier out of range" (Invalid_argument "Arena.set_tier")
    (fun () -> Cdcl.Arena.set_tier a c 3);
  Cdcl.Arena.clear_learned a c;
  checkb "clear_learned" false (Cdcl.Arena.learned a c)

let test_arena_shrink () =
  let a = Cdcl.Arena.create () in
  let c =
    Cdcl.Arena.alloc_lits a ~learned:false ~glue:2 ~cid:1
      [| lit 1; lit 2; lit 3; lit 4 |]
  in
  let garbage0 = Cdcl.Arena.garbage a in
  Cdcl.Arena.shrink_size a c 2;
  checki "shrunk size" 2 (Cdcl.Arena.size a c);
  checki "freed words become garbage" (garbage0 + 2) (Cdcl.Arena.garbage a);
  checkb "prefix literals survive" true
    (Cdcl.Arena.lit a c 0 = lit 1 && Cdcl.Arena.lit a c 1 = lit 2);
  Alcotest.check_raises "shrink to zero" (Invalid_argument "Arena.shrink_size")
    (fun () -> Cdcl.Arena.shrink_size a c 0);
  Alcotest.check_raises "grow forbidden" (Invalid_argument "Arena.shrink_size")
    (fun () -> Cdcl.Arena.shrink_size a c 3)

(* --- policy helpers --------------------------------------------------- *)

let test_policy_tiers () =
  let tier = Cdcl.Policy.initial_tier ~tier1_glue:2 ~tier2_glue:6 in
  checki "glue 2 -> core" Cdcl.Arena.tier_core (tier ~glue:2);
  checki "glue 3 -> mid" Cdcl.Arena.tier_mid (tier ~glue:3);
  checki "glue 6 -> mid" Cdcl.Arena.tier_mid (tier ~glue:6);
  checki "glue 7 -> local" Cdcl.Arena.tier_local (tier ~glue:7);
  let promoted = Cdcl.Policy.promoted_tier ~promote_uses:2 in
  checki "unused local stays" Cdcl.Arena.tier_local
    (promoted ~usage:1 ~tier:Cdcl.Arena.tier_local);
  checki "used local climbs to mid" Cdcl.Arena.tier_mid
    (promoted ~usage:2 ~tier:Cdcl.Arena.tier_local);
  checki "usage never reaches core" Cdcl.Arena.tier_mid
    (promoted ~usage:3 ~tier:Cdcl.Arena.tier_mid);
  checki "core is terminal" Cdcl.Arena.tier_core
    (promoted ~usage:0 ~tier:Cdcl.Arena.tier_core)

let test_policy_tiered_key () =
  let key tier glue =
    Cdcl.Policy.tiered_key Cdcl.Policy.Default ~tier ~id:5 ~glue ~size:4
      ~activity_bits:0 ~frequency:0
  in
  (* A higher tier dominates any in-tier ranking difference: reduce
     sorts ascending and deletes the low end, so locals always rank
     below mids, mids below core. *)
  checkb "tier dominates glue" true
    (key Cdcl.Arena.tier_core 30 > key Cdcl.Arena.tier_mid 1);
  checkb "tier dominates glue (mid/local)" true
    (key Cdcl.Arena.tier_mid 30 > key Cdcl.Arena.tier_local 1);
  checkb "within a tier the packed key orders" true
    (key Cdcl.Arena.tier_local 2 > key Cdcl.Arena.tier_local 9)

(* --- vivification ----------------------------------------------------- *)

let test_vivify_shrinks_clause () =
  (* Probing (1 2 3): assuming -1 propagates -2 through the binary
     (1 -2), so literal 2 is falsified by the probe prefix and dropped.
     The rewrite must appear as Add(1 3) immediately followed by
     Delete(1 2 3). The long clause comes first so the binary's own
     probes cannot reorder its literals beforehand. *)
  let f = formula [ [ 1; 2; 3 ]; [ 1; -2 ] ] in
  let config = { ip_config with Cdcl.Config.inprocess_subsume = false } in
  let t = Cdcl.Solver.create ~config f in
  let trace = record_trace t in
  Cdcl.Solver.inprocess_now t;
  let st = Cdcl.Solver.stats t in
  checki "one clause vivified" 1 st.Cdcl.Solver_stats.vivified;
  (match trace () with
  | [ `L [ 1; 3 ]; `D [ 1; 2; 3 ] ] -> ()
  | _ -> Alcotest.fail "expected exactly Add(1 3); Delete(1 2 3)");
  match Cdcl.Solver.solve t with
  | Cdcl.Solver.Sat m ->
    checkb "model after vivification" true (Cdcl.Solver.check_model f m)
  | _ -> Alcotest.fail "satisfiable instance"

let test_vivify_deletes_root_satisfied () =
  (* Unit 1 satisfies (1 2 3) at the root; the root unit must enter the
     proof before the deletion it justifies. *)
  let f = formula [ [ 1 ]; [ 1; 2; 3 ]; [ -2; 3 ] ] in
  let config = { ip_config with Cdcl.Config.inprocess_subsume = false } in
  let t = Cdcl.Solver.create ~config f in
  let trace = record_trace t in
  Cdcl.Solver.inprocess_now t;
  let st = Cdcl.Solver.stats t in
  checki "one clause deleted by vivification" 1
    st.Cdcl.Solver_stats.vivify_deleted;
  (match trace () with
  | [ `L [ 1 ]; `D [ 1; 2; 3 ] ] -> ()
  | _ -> Alcotest.fail "expected root unit Add(1) then Delete(1 2 3)");
  match Cdcl.Solver.solve t with
  | Cdcl.Solver.Sat m -> checkb "model" true (Cdcl.Solver.check_model f m)
  | _ -> Alcotest.fail "satisfiable instance"

(* --- subsumption ------------------------------------------------------ *)

let test_subsume_deletes_superset () =
  let f = formula [ [ 1; 2 ]; [ 1; 2; 3 ] ] in
  let config = { ip_config with Cdcl.Config.inprocess_vivify = false } in
  let t = Cdcl.Solver.create ~config f in
  let trace = record_trace t in
  Cdcl.Solver.inprocess_now t;
  let st = Cdcl.Solver.stats t in
  checki "one clause subsumed" 1 st.Cdcl.Solver_stats.subsumed;
  (match trace () with
  | [ `D [ 1; 2; 3 ] ] -> ()
  | _ -> Alcotest.fail "expected exactly Delete(1 2 3)");
  match Cdcl.Solver.solve t with
  | Cdcl.Solver.Sat m -> checkb "model" true (Cdcl.Solver.check_model f m)
  | _ -> Alcotest.fail "satisfiable instance"

let test_strengthen_self_subsuming () =
  (* (1 2) resolved with (1 -2 3) on variable 2 strengthens the latter
     to (1 3): Add(1 3) must immediately precede Delete(1 -2 3). The
     extra clause (2 4) keeps variable 1's occurrence list the scan
     target. *)
  let f = formula [ [ 1; 2 ]; [ 1; -2; 3 ]; [ 2; 4 ] ] in
  let config = { ip_config with Cdcl.Config.inprocess_vivify = false } in
  let t = Cdcl.Solver.create ~config f in
  let trace = record_trace t in
  Cdcl.Solver.inprocess_now t;
  let st = Cdcl.Solver.stats t in
  checki "one clause strengthened" 1 st.Cdcl.Solver_stats.strengthened;
  (match trace () with
  | [ `L [ 1; 3 ]; `D [ 1; -2; 3 ] ] -> ()
  | _ -> Alcotest.fail "expected Add(1 3) then Delete(1 -2 3)");
  match Cdcl.Solver.solve t with
  | Cdcl.Solver.Sat m -> checkb "model" true (Cdcl.Solver.check_model f m)
  | _ -> Alcotest.fail "satisfiable instance"

(* --- mid-pass compaction ---------------------------------------------- *)

let test_compaction_during_vivification () =
  (* Sixty root-satisfied padding clauses die inside a single vivify
     pass and push arena garbage over the GC threshold, forcing a
     compaction while the pass iterates — clause vectors must be
     re-indexed and the surviving pigeonhole core must still prove
     UNSAT with a checkable DRUP log. *)
  let pad = List.init 60 (fun i -> [ 1; 100 + (2 * i); 101 + (2 * i) ]) in
  let ph = Gen.Pigeonhole.unsat 5 in
  let ph_clauses = ref [] in
  Cnf.Formula.iter_clauses
    (fun c ->
      ph_clauses :=
        List.map
          (fun l ->
            let d = Cnf.Lit.to_dimacs l in
            if d > 0 then d + 300 else d - 300)
          (Array.to_list c)
        :: !ph_clauses)
    ph;
  let f = formula (([ 1 ] :: pad) @ !ph_clauses) in
  let t = Cdcl.Solver.create ~config:ip_config f in
  let drup = Cdcl.Drup.create () in
  Cdcl.Solver.set_trace t (fun ev -> Cdcl.Drup.event drup ev);
  let gcs0 = Cdcl.Solver.arena_gc_count t in
  Cdcl.Solver.inprocess_now t;
  checkb "compaction ran during the pass" true
    (Cdcl.Solver.arena_gc_count t > gcs0);
  let st = Cdcl.Solver.stats t in
  checkb "padding deleted by vivification" true
    (st.Cdcl.Solver_stats.vivify_deleted >= 60);
  (match Cdcl.Solver.solve t with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "pigeonhole core must be UNSAT");
  Cdcl.Drup.conclude_unsat drup;
  checkb "DRUP proof valid across mid-pass compaction" true
    (Cdcl.Drup_check.check_solver_proof f drup = Cdcl.Drup_check.Valid)

(* --- end-to-end with inprocessing on ---------------------------------- *)

let solve_config =
  {
    ip_config with
    Cdcl.Config.policy = Cdcl.Policy.frequency_default;
    reduce_first = 20;
    reduce_inc = 10;
    reduce_fraction = 0.7;
    restart_mode = Cdcl.Config.Luby 8;
  }

let test_unsat_proof_with_inprocessing () =
  let f = Gen.Pigeonhole.unsat 6 in
  let t = Cdcl.Solver.create ~config:solve_config f in
  let drup = Cdcl.Drup.create () in
  Cdcl.Solver.set_trace t (fun ev -> Cdcl.Drup.event drup ev);
  (match Cdcl.Solver.solve t with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "pigeonhole is UNSAT");
  let st = Cdcl.Solver.stats t in
  checkb "inprocessing actually ran" true
    (st.Cdcl.Solver_stats.inprocess_passes > 0);
  Cdcl.Drup.conclude_unsat drup;
  checkb "DRUP proof valid with inprocessing" true
    (Cdcl.Drup_check.check_solver_proof f drup = Cdcl.Drup_check.Valid)

let test_tier_counts_populated () =
  (* A run that learns and reduces under the tiered policy must leave
     learned clauses spread over the tiers it reports. *)
  let f = Gen.Pigeonhole.unsat 6 in
  let t = Cdcl.Solver.create ~config:solve_config f in
  ignore (Cdcl.Solver.solve t);
  let core, mid, local = Cdcl.Solver.tier_counts t in
  checkb "tier counts cover the learnt set" true
    (core + mid + local = Cdcl.Solver.learned_clause_count t);
  checkb "some clause left the local tier" true (core + mid > 0)

(* --- properties ------------------------------------------------------- *)

(* Every Add line the solver emits with inprocessing on — learned
   clauses, vivification rewrites, strengthenings, derived root units —
   must be logically implied by the ORIGINAL formula: F with the
   clause's negation as units must be UNSAT by the DPLL oracle. *)
let prop_rewrites_implied =
  QCheck.Test.make ~name:"inprocessing rewrites implied by input formula"
    ~count:40
    QCheck.(int_range 0 199)
    (fun i ->
      let _family, f = Verify.Fuzz.generate_case ~seed:9001 i in
      let t = Cdcl.Solver.create ~config:solve_config f in
      let added = ref [] in
      Cdcl.Solver.set_trace t (fun ev ->
          match ev with
          | Cdcl.Solver.Learned lits when Array.length lits > 0 ->
            added := dimacs_of_lits lits :: !added
          | _ -> ());
      ignore (Cdcl.Solver.solve t);
      let base = ref [] in
      Cnf.Formula.iter_clauses
        (fun c -> base := List.map Cnf.Lit.to_dimacs (Array.to_list c) :: !base)
        f;
      List.for_all
        (fun clause ->
          let refutation =
            Cnf.Formula.of_dimacs_lists ~num_vars:(Cnf.Formula.num_vars f)
              (!base @ List.map (fun l -> [ -l ]) clause)
          in
          match Verify.Oracle.solve ~max_nodes:200_000 refutation with
          | Some Verify.Oracle.Unsat -> true
          | None -> true (* oracle budget exhausted: skip, don't fail *)
          | Some (Verify.Oracle.Sat _) -> false)
        !added)

(* Tier, usage, glue, size, learnedness, and literals all live in (or
   next to) the header word and must survive a copying compaction
   verbatim. *)
let prop_tiers_survive_compaction =
  QCheck.Test.make ~name:"tier tags survive arena compaction" ~count:100
    QCheck.(
      list_of_size Gen.(int_range 1 40)
        (quad (int_range 1 6) (int_range 0 2) (int_range 0 3) bool))
    (fun specs ->
      let a = Cdcl.Arena.create () in
      let clauses =
        List.mapi
          (fun i (size, tier, usage, learned) ->
            let lits =
              Array.init size (fun k ->
                  Cnf.Lit.make ((i * 7) + k + 1) (k mod 2 = 0))
            in
            let c =
              Cdcl.Arena.alloc_lits a ~learned ~glue:(size + 1) ~cid:i lits
            in
            Cdcl.Arena.set_tier a c tier;
            Cdcl.Arena.set_usage a c usage;
            if i mod 3 = 2 then Cdcl.Arena.mark_deleted a c;
            (c, lits, tier, usage, size, learned, i mod 3 = 2))
          specs
      in
      let dst = Cdcl.Arena.gc_target a in
      let live =
        List.filter_map
          (fun (c, lits, tier, usage, size, learned, dead) ->
            if dead then None
            else
              Some (Cdcl.Arena.reloc ~from_:a ~into:dst c, lits, tier, usage, size, learned))
          clauses
      in
      Cdcl.Arena.adopt a dst;
      List.for_all
        (fun (c, lits, tier, usage, size, learned) ->
          Cdcl.Arena.tier a c = tier
          && Cdcl.Arena.usage a c = usage
          && Cdcl.Arena.size a c = size
          && Cdcl.Arena.glue a c = size + 1
          && Cdcl.Arena.learned a c = learned
          && Array.for_all
               (fun k -> Cdcl.Arena.lit a c k = lits.(k))
               (Array.init size Fun.id))
        live)

let suite =
  [
    Alcotest.test_case "arena: tier and usage bits" `Quick test_arena_tier_usage;
    Alcotest.test_case "arena: in-place shrink" `Quick test_arena_shrink;
    Alcotest.test_case "policy: tier assignment and promotion" `Quick
      test_policy_tiers;
    Alcotest.test_case "policy: tiered ranking key" `Quick
      test_policy_tiered_key;
    Alcotest.test_case "vivify: shrinks a clause with DRUP pair" `Quick
      test_vivify_shrinks_clause;
    Alcotest.test_case "vivify: deletes root-satisfied clause" `Quick
      test_vivify_deletes_root_satisfied;
    Alcotest.test_case "subsume: deletes superset" `Quick
      test_subsume_deletes_superset;
    Alcotest.test_case "subsume: self-subsuming strengthening" `Quick
      test_strengthen_self_subsuming;
    Alcotest.test_case "compaction mid-vivification" `Quick
      test_compaction_during_vivification;
    Alcotest.test_case "UNSAT proof with inprocessing on" `Quick
      test_unsat_proof_with_inprocessing;
    Alcotest.test_case "tier counts populated" `Quick
      test_tier_counts_populated;
    QCheck_alcotest.to_alcotest prop_rewrites_implied;
    QCheck_alcotest.to_alcotest prop_tiers_survive_compaction;
  ]

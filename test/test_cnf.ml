(* Tests for the cnf library: literals, formulas, DIMACS, circuits,
   Tseitin encoding. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Lit --- *)

let test_lit_roundtrip () =
  List.iter
    (fun d ->
      checki "dimacs roundtrip" d (Cnf.Lit.to_dimacs (Cnf.Lit.of_dimacs d)))
    [ 1; -1; 5; -5; 1000; -1000 ]

let test_lit_accessors () =
  let l = Cnf.Lit.of_dimacs (-7) in
  checki "var" 7 (Cnf.Lit.var l);
  checkb "is_pos" false (Cnf.Lit.is_pos l);
  checkb "negate flips" true (Cnf.Lit.is_pos (Cnf.Lit.negate l));
  checki "negate keeps var" 7 (Cnf.Lit.var (Cnf.Lit.negate l));
  checkb "double negate" true (Cnf.Lit.equal l (Cnf.Lit.negate (Cnf.Lit.negate l)))

let test_lit_index () =
  let l = Cnf.Lit.pos 3 in
  checki "pos index" 6 (Cnf.Lit.to_index l);
  checki "neg index" 7 (Cnf.Lit.to_index (Cnf.Lit.neg 3));
  checkb "of_index inverse" true
    (Cnf.Lit.equal l (Cnf.Lit.of_index (Cnf.Lit.to_index l)))

let test_lit_invalid () =
  Alcotest.check_raises "zero var" (Invalid_argument "Lit.of_dimacs: zero")
    (fun () -> ignore (Cnf.Lit.of_dimacs 0));
  Alcotest.check_raises "var 0" (Invalid_argument "Lit.make: variable must be >= 1")
    (fun () -> ignore (Cnf.Lit.make 0 true))

(* --- Formula --- *)

let simple = Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1; 2 ]; [ -2; 3 ]; [ -1 ] ]

let test_formula_counts () =
  checki "vars" 3 (Cnf.Formula.num_vars simple);
  checki "clauses" 3 (Cnf.Formula.num_clauses simple);
  checki "literals" 5 (Cnf.Formula.num_literals simple)

let test_formula_eval () =
  (* x1=F, x2=T, x3=T satisfies. *)
  checkb "satisfying" true (Cnf.Formula.eval simple [| false; false; true; true |]);
  checkb "falsifying" false (Cnf.Formula.eval simple [| false; true; false; false |])

let test_formula_out_of_range () =
  Alcotest.check_raises "var out of range"
    (Invalid_argument "Formula.create: variable 5 out of range 1..3") (fun () ->
      ignore (Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 5 ] ]))

let test_formula_relabel () =
  let perm = [| 0; 3; 1; 2 |] in
  let relabelled = Cnf.Formula.relabel simple ~perm in
  (* Satisfiability is invariant under relabelling: remap the model. *)
  let model = [| false; false; true; true |] in
  let remapped = Array.make 4 false in
  for v = 1 to 3 do
    remapped.(perm.(v)) <- model.(v)
  done;
  checkb "relabelled eval" true (Cnf.Formula.eval relabelled remapped)

let test_formula_relabel_invalid () =
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Formula.relabel: not a permutation") (fun () ->
      ignore (Cnf.Formula.relabel simple ~perm:[| 0; 1; 1; 2 |]))

let test_formula_shuffle_equisat () =
  let rng = Util.Rng.create 4 in
  let shuffled = Cnf.Formula.shuffle rng simple in
  checki "same clause count" (Cnf.Formula.num_clauses simple)
    (Cnf.Formula.num_clauses shuffled);
  checkb "same satisfying assignment" true
    (Cnf.Formula.eval shuffled [| false; false; true; true |])

let test_builder () =
  let b = Cnf.Formula.Builder.create () in
  let v1 = Cnf.Formula.Builder.fresh_var b in
  let v2 = Cnf.Formula.Builder.fresh_var b in
  checki "fresh vars sequential" 1 v1;
  checki "fresh vars sequential" 2 v2;
  Cnf.Formula.Builder.add_clause b [ Cnf.Lit.pos v1; Cnf.Lit.neg v2 ];
  Cnf.Formula.Builder.add_dimacs b [ -1; 5 ];
  checki "ensure grows vars" 5 (Cnf.Formula.Builder.num_vars b);
  let f = Cnf.Formula.Builder.build b in
  checki "built clauses" 2 (Cnf.Formula.num_clauses f);
  checki "built vars" 5 (Cnf.Formula.num_vars f)

(* --- Dimacs --- *)

let test_dimacs_parse_basic () =
  let f = Cnf.Dimacs.parse_string "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  checki "vars" 3 (Cnf.Formula.num_vars f);
  checki "clauses" 2 (Cnf.Formula.num_clauses f)

let test_dimacs_multiline_clause () =
  let f = Cnf.Dimacs.parse_string "p cnf 3 1\n1\n-2\n3 0\n" in
  checki "one clause across lines" 1 (Cnf.Formula.num_clauses f);
  checki "three literals" 3 (Cnf.Formula.num_literals f)

let test_dimacs_roundtrip () =
  let text = Cnf.Dimacs.to_string ~comment:"round\ntrip" simple in
  let f = Cnf.Dimacs.parse_string text in
  checki "vars" 3 (Cnf.Formula.num_vars f);
  checki "clauses" 3 (Cnf.Formula.num_clauses f);
  checkb "same eval" true (Cnf.Formula.eval f [| false; false; true; true |])

let expect_parse_error text () =
  match Cnf.Dimacs.parse_string text with
  | exception Cnf.Dimacs.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_dimacs_errors () =
  expect_parse_error "1 2 0\n" ();
  expect_parse_error "p cnf 3 2\n1 0\n" () (* count mismatch *);
  expect_parse_error "p cnf 3 1\n1 2\n" () (* missing terminator *);
  expect_parse_error "p cnf 3 1\n1 foo 0\n" ();
  expect_parse_error "p cnf 3 1\np cnf 3 1\n1 0\n" ()

let test_dimacs_grows_vars () =
  (* Literals beyond the declared bound grow the formula. *)
  let f = Cnf.Dimacs.parse_string "p cnf 2 1\n1 7 0\n" in
  checki "vars grown" 7 (Cnf.Formula.num_vars f)

let test_dimacs_file_io () =
  let path = Filename.temp_file "neuroselect" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cnf.Dimacs.write_file ~comment:"test" path simple;
      let f = Cnf.Dimacs.parse_file path in
      checki "file roundtrip clauses" 3 (Cnf.Formula.num_clauses f))

(* --- Circuit --- *)

let test_circuit_gates () =
  let c = Cnf.Circuit.create () in
  let a = Cnf.Circuit.input c and b = Cnf.Circuit.input c in
  let and_ = Cnf.Circuit.and_ c a b in
  let or_ = Cnf.Circuit.or_ c a b in
  let xor_ = Cnf.Circuit.xor_ c a b in
  let cases = [ (false, false); (false, true); (true, false); (true, true) ] in
  let handle (x, y) =
    let inputs = [| x; y |] in
    checkb "and" (x && y) (Cnf.Circuit.eval c inputs and_);
    checkb "or" (x || y) (Cnf.Circuit.eval c inputs or_);
    checkb "xor" (x <> y) (Cnf.Circuit.eval c inputs xor_)
  in
  List.iter handle cases

let test_circuit_constant_folding () =
  let c = Cnf.Circuit.create () in
  let a = Cnf.Circuit.input c in
  checkb "a & false = false" true
    (Cnf.Circuit.wire_equal (Cnf.Circuit.and_ c a Cnf.Circuit.false_) Cnf.Circuit.false_);
  checkb "a & true = a" true
    (Cnf.Circuit.wire_equal (Cnf.Circuit.and_ c a Cnf.Circuit.true_) a);
  checkb "a & a = a" true (Cnf.Circuit.wire_equal (Cnf.Circuit.and_ c a a) a);
  checkb "a & ~a = false" true
    (Cnf.Circuit.wire_equal (Cnf.Circuit.and_ c a (Cnf.Circuit.not_ a)) Cnf.Circuit.false_)

let test_circuit_hash_consing () =
  let c = Cnf.Circuit.create () in
  let a = Cnf.Circuit.input c and b = Cnf.Circuit.input c in
  let g1 = Cnf.Circuit.and_ c a b in
  let g2 = Cnf.Circuit.and_ c b a in
  checkb "structural hashing merges commuted gates" true (Cnf.Circuit.wire_equal g1 g2);
  checki "single gate created" 1 (Cnf.Circuit.num_gates c)

let test_circuit_adder_exhaustive () =
  let c = Cnf.Circuit.create () in
  let width = 3 in
  let xs = Cnf.Circuit.input_array c width in
  let ys = Cnf.Circuit.input_array c width in
  let sum, carry = Cnf.Circuit.ripple_adder c xs ys in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let inputs =
        Array.init 6 (fun i -> if i < 3 then (a lsr i) land 1 = 1 else (b lsr (i - 3)) land 1 = 1)
      in
      let got = ref 0 in
      Array.iteri
        (fun i s -> if Cnf.Circuit.eval c inputs s then got := !got lor (1 lsl i))
        sum;
      if Cnf.Circuit.eval c inputs carry then got := !got lor 8;
      checki (Printf.sprintf "%d+%d" a b) (a + b) !got
    done
  done

let test_circuit_multipliers_agree () =
  let c = Cnf.Circuit.create () in
  let width = 3 in
  let xs = Cnf.Circuit.input_array c width in
  let ys = Cnf.Circuit.input_array c width in
  let p1 = Cnf.Circuit.multiplier c xs ys in
  let p2 = Cnf.Circuit.wallace_multiplier c xs ys in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let inputs =
        Array.init 6 (fun i -> if i < 3 then (a lsr i) land 1 = 1 else (b lsr (i - 3)) land 1 = 1)
      in
      let value prod =
        let acc = ref 0 in
        Array.iteri
          (fun i w -> if Cnf.Circuit.eval c inputs w then acc := !acc lor (1 lsl i))
          prod;
        !acc
      in
      checki (Printf.sprintf "%d*%d shift-add" a b) (a * b) (value p1);
      checki (Printf.sprintf "%d*%d wallace" a b) (a * b) (value p2)
    done
  done

let test_circuit_mux () =
  let c = Cnf.Circuit.create () in
  let s = Cnf.Circuit.input c in
  let a = Cnf.Circuit.input c in
  let b = Cnf.Circuit.input c in
  let m = Cnf.Circuit.mux c ~sel:s a b in
  checkb "sel=1 -> a" true (Cnf.Circuit.eval c [| true; true; false |] m);
  checkb "sel=0 -> b" false (Cnf.Circuit.eval c [| false; true; false |] m)

let test_circuit_adders_equivalent () =
  checkb "ripple vs mux adders equal (width 4)" true
    (Gen.Circuits.equivalent_outputs ~width:4)

(* --- Tseitin --- *)

let solve f = fst (Cdcl.Solver.solve_formula f)

let test_tseitin_equivalence_unsat () =
  (match solve (Gen.Circuits.adder_miter 5) with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "adder miter must be UNSAT");
  match solve (Gen.Circuits.multiplier_miter 3) with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "multiplier miter must be UNSAT"

let test_tseitin_fault_sat_with_witness () =
  let c = Cnf.Circuit.create () in
  let xs = Cnf.Circuit.input_array c 3 in
  let ys = Cnf.Circuit.input_array c 3 in
  let s1, _ = Cnf.Circuit.ripple_adder c xs ys in
  let s2 = Array.copy s1 in
  s2.(1) <- Cnf.Circuit.not_ s2.(1);
  let differ = Cnf.Circuit.miter c s1 s2 in
  let formula, mapping = Cnf.Tseitin.encode c ~asserted:[ differ ] in
  match Cdcl.Solver.solve_formula formula with
  | Cdcl.Solver.Sat model, _ ->
    (* The decoded inputs must really exhibit the difference. *)
    let inputs = Cnf.Tseitin.decode_inputs mapping model in
    checkb "witness drives miter true" true (Cnf.Circuit.eval c inputs differ)
  | _ -> Alcotest.fail "faulty miter must be SAT"

let test_tseitin_no_assertion_sat () =
  let c = Cnf.Circuit.create () in
  let a = Cnf.Circuit.input c in
  let b = Cnf.Circuit.input c in
  ignore (Cnf.Circuit.and_ c a b);
  let formula, _ = Cnf.Tseitin.encode c ~asserted:[] in
  match solve formula with
  | Cdcl.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "unconstrained circuit must be SAT"

let test_tseitin_contradiction_unsat () =
  let c = Cnf.Circuit.create () in
  let a = Cnf.Circuit.input c in
  let formula, _ =
    Cnf.Tseitin.encode c ~asserted:[ a; Cnf.Circuit.not_ a ]
  in
  match solve formula with
  | Cdcl.Solver.Unsat -> ()
  | _ -> Alcotest.fail "a and not a must be UNSAT"

(* --- properties --- *)

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"dimacs roundtrip preserves clause count" ~count:100
    QCheck.(pair (int_range 1 12) (int_range 1 30))
    (fun (n, m) ->
      let f = Generators.ksat ~seed:(n + (1000 * m)) ~num_vars:n ~num_clauses:m () in
      let f' = Cnf.Dimacs.parse_string (Cnf.Dimacs.to_string f) in
      Cnf.Formula.num_clauses f' = m && Cnf.Formula.num_vars f' = n)

let prop_eval_invariant_under_shuffle =
  QCheck.Test.make ~name:"shuffle preserves evaluation" ~count:100
    QCheck.(pair small_int small_int)
    (fun (seed1, seed2) ->
      let f, rng = Generators.ksat_with_rng ~seed:seed1 ~num_vars:8 ~num_clauses:20 () in
      let shuffled = Cnf.Formula.shuffle (Util.Rng.create seed2) f in
      let assignment = Array.init 9 (fun _ -> Util.Rng.bool rng) in
      Cnf.Formula.eval f assignment = Cnf.Formula.eval shuffled assignment)

(* Malformed input must surface as the typed [Parse_error] — never as
   an uncaught [Invalid_argument], [Out_of_memory], or array access
   failure — so callers can isolate a bad instance and keep going. *)
let parses_or_typed_error text =
  match Cnf.Dimacs.parse_string text with
  | (_ : Cnf.Formula.t) -> true
  | exception Cnf.Dimacs.Parse_error _ -> true

let prop_dimacs_truncation_typed =
  QCheck.Test.make ~name:"truncated dimacs raises only Parse_error" ~count:200
    QCheck.(pair (int_range 1 9999) small_int)
    (fun (seed, cut) ->
      let f = Generators.ksat ~seed ~num_vars:6 ~num_clauses:14 () in
      let text = Cnf.Dimacs.to_string f in
      parses_or_typed_error (String.sub text 0 (cut mod String.length text)))

let prop_dimacs_garbage_typed =
  QCheck.Test.make ~name:"garbage dimacs raises only Parse_error" ~count:200
    QCheck.(small_list printable_string)
    (fun lines -> parses_or_typed_error (String.concat "\n" lines))

let prop_dimacs_mutated_typed =
  QCheck.Test.make ~name:"mutated dimacs raises only Parse_error" ~count:200
    QCheck.(triple (int_range 1 9999) small_nat printable_char)
    (fun (seed, pos, c) ->
      let f = Generators.ksat ~seed ~num_vars:6 ~num_clauses:14 () in
      let b = Bytes.of_string (Cnf.Dimacs.to_string f) in
      Bytes.set b (pos mod Bytes.length b) c;
      parses_or_typed_error (Bytes.to_string b))

(* --- canonical fingerprint ---------------------------------------------- *)

(* The selector-cache key must be invariant under everything that
   preserves the clause *set* (reordering, duplication) and must change
   under anything that alters it (polarity flips, injected tautologies,
   renamed variables, a different variable count). The metamorphic
   transforms are the library's own definitions of those mutations. *)
let prop_fingerprint_invariant_under_reordering =
  QCheck.Test.make ~name:"fingerprint invariant under shuffle/duplicate"
    ~count:60 QCheck.small_int (fun seed ->
      let rng = Util.Rng.create (seed + 31) in
      let f = Generators.ksat ~seed:(seed + 31) ~num_vars:12 ~num_clauses:40 () in
      let fp = Cnf.Fingerprint.compute f in
      List.for_all
        (fun t -> Cnf.Fingerprint.compute (Verify.Metamorphic.apply rng t f) = fp)
        [ Verify.Metamorphic.Shuffle_clauses; Verify.Metamorphic.Duplicate_clauses ])

let prop_fingerprint_changed_by_semantics =
  QCheck.Test.make ~name:"fingerprint changed by polarity flip / tautologies"
    ~count:60 QCheck.small_int (fun seed ->
      let rng = Util.Rng.create (seed + 57) in
      let f = Generators.ksat ~seed:(seed + 57) ~num_vars:12 ~num_clauses:40 () in
      let fp = Cnf.Fingerprint.compute f in
      (* Flip_polarity may draw the empty variable subset and
         Permute_vars the identity; retry a few draws and require some
         draw to change the hash. *)
      let changes t =
        let rec go attempts =
          attempts > 0
          && (Cnf.Fingerprint.compute (Verify.Metamorphic.apply rng t f) <> fp
             || go (attempts - 1))
        in
        go 8
      in
      List.for_all changes
        [
          Verify.Metamorphic.Flip_polarity;
          Verify.Metamorphic.Inject_tautologies;
          Verify.Metamorphic.Permute_vars;
        ])

let test_fingerprint_basics () =
  let f = Cnf.Dimacs.parse_string "p cnf 3 2\n1 -2 0\n2 3 0\n" in
  let g = Cnf.Dimacs.parse_string "p cnf 3 3\n3 2 0\n-2 1 0\n1 -2 0\n" in
  Alcotest.(check string)
    "reordered + duplicated clause set" (Cnf.Fingerprint.compute_hex f)
    (Cnf.Fingerprint.compute_hex g);
  let h = Cnf.Dimacs.parse_string "p cnf 4 2\n1 -2 0\n2 3 0\n" in
  Alcotest.(check bool)
    "num_vars mixed in" false
    (Cnf.Fingerprint.compute f = Cnf.Fingerprint.compute h);
  Alcotest.(check int)
    "hex is 16 chars" 16
    (String.length (Cnf.Fingerprint.compute_hex f))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dimacs_roundtrip;
      prop_eval_invariant_under_shuffle;
      prop_dimacs_truncation_typed;
      prop_dimacs_garbage_typed;
      prop_dimacs_mutated_typed;
      prop_fingerprint_invariant_under_reordering;
      prop_fingerprint_changed_by_semantics;
    ]

let suite =
  [
    Alcotest.test_case "lit roundtrip" `Quick test_lit_roundtrip;
    Alcotest.test_case "lit accessors" `Quick test_lit_accessors;
    Alcotest.test_case "lit index" `Quick test_lit_index;
    Alcotest.test_case "lit invalid" `Quick test_lit_invalid;
    Alcotest.test_case "fingerprint basics" `Quick test_fingerprint_basics;
    Alcotest.test_case "formula counts" `Quick test_formula_counts;
    Alcotest.test_case "formula eval" `Quick test_formula_eval;
    Alcotest.test_case "formula out of range" `Quick test_formula_out_of_range;
    Alcotest.test_case "formula relabel" `Quick test_formula_relabel;
    Alcotest.test_case "formula relabel invalid" `Quick test_formula_relabel_invalid;
    Alcotest.test_case "formula shuffle" `Quick test_formula_shuffle_equisat;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "dimacs parse basic" `Quick test_dimacs_parse_basic;
    Alcotest.test_case "dimacs multiline clause" `Quick test_dimacs_multiline_clause;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
    Alcotest.test_case "dimacs grows vars" `Quick test_dimacs_grows_vars;
    Alcotest.test_case "dimacs file io" `Quick test_dimacs_file_io;
    Alcotest.test_case "circuit gates" `Quick test_circuit_gates;
    Alcotest.test_case "circuit constant folding" `Quick test_circuit_constant_folding;
    Alcotest.test_case "circuit hash consing" `Quick test_circuit_hash_consing;
    Alcotest.test_case "circuit adder exhaustive" `Quick test_circuit_adder_exhaustive;
    Alcotest.test_case "circuit multipliers agree" `Quick test_circuit_multipliers_agree;
    Alcotest.test_case "circuit mux" `Quick test_circuit_mux;
    Alcotest.test_case "circuit adders equivalent" `Quick test_circuit_adders_equivalent;
    Alcotest.test_case "tseitin equivalence unsat" `Quick test_tseitin_equivalence_unsat;
    Alcotest.test_case "tseitin fault witness" `Quick test_tseitin_fault_sat_with_witness;
    Alcotest.test_case "tseitin unconstrained sat" `Quick test_tseitin_no_assertion_sat;
    Alcotest.test_case "tseitin contradiction unsat" `Quick test_tseitin_contradiction_unsat;
  ]
  @ qcheck_tests

(* Random-circuit Tseitin soundness: the encoding is satisfiable iff
   some input assignment drives the asserted wire true (checked by
   exhaustive simulation). *)
let random_circuit rng ~inputs ~gates =
  let c = Cnf.Circuit.create () in
  let wires = ref (Array.to_list (Cnf.Circuit.input_array c inputs)) in
  for _ = 1 to gates do
    let arr = Array.of_list !wires in
    let a = Util.Rng.choose rng arr in
    let b = Util.Rng.choose rng arr in
    let a = if Util.Rng.bool rng then Cnf.Circuit.not_ a else a in
    let b = if Util.Rng.bool rng then Cnf.Circuit.not_ b else b in
    let g =
      match Util.Rng.int rng 3 with
      | 0 -> Cnf.Circuit.and_ c a b
      | 1 -> Cnf.Circuit.or_ c a b
      | _ -> Cnf.Circuit.xor_ c a b
    in
    wires := g :: !wires
  done;
  (c, List.hd !wires)

let prop_tseitin_equisatisfiable =
  QCheck.Test.make ~name:"tseitin encoding matches circuit simulation" ~count:80
    QCheck.(pair small_int (pair (int_range 2 6) (int_range 1 15)))
    (fun (seed, (inputs, gates)) ->
      let rng = Util.Rng.create (seed + 90210) in
      let c, out = random_circuit rng ~inputs ~gates in
      let formula, mapping = Cnf.Tseitin.encode c ~asserted:[ out ] in
      let reachable = ref false in
      for pattern = 0 to (1 lsl inputs) - 1 do
        let ins = Array.init inputs (fun i -> (pattern lsr i) land 1 = 1) in
        if Cnf.Circuit.eval c ins out then reachable := true
      done;
      match Cdcl.Solver.solve_formula formula with
      | Cdcl.Solver.Sat model, _ ->
        (* Witness must actually drive the output. *)
        !reachable
        && Cnf.Circuit.eval c (Cnf.Tseitin.decode_inputs mapping model) out
      | Cdcl.Solver.Unsat, _ -> not !reachable
      | Cdcl.Solver.Unknown, _ -> false)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_tseitin_equisatisfiable ]

(* ns-fuzz: differential + metamorphic fuzzing CLI for the camlsat CDCL
   solver. Cross-checks every clause-deletion policy against a DPLL
   oracle, validates SAT models and DRUP proofs, and asserts verdict
   stability under satisfiability-preserving transforms. Failures are
   shrunk to minimal DIMACS and reported with a replay command.

   Exit codes: 0 = clean, 1 = discrepancies found. *)

let run seed cases case gradcheck no_metamorphic no_proofs buggy verbose =
  if gradcheck then begin
    let reports = Verify.Gradcheck.run_all ~seed () in
    List.iter
      (fun r -> Format.printf "%a@." Verify.Gradcheck.pp_report r)
      reports;
    let ok = Verify.Gradcheck.passed ~tol:1e-4 reports in
    Format.printf "gradcheck: max rel err %.3e — %s@."
      (Verify.Gradcheck.max_error reports)
      (if ok then "OK" else "FAIL");
    exit (if ok then 0 else 1)
  end;
  let solve =
    if buggy then begin
      print_endline "c running with the deliberately broken solver (--buggy)";
      Verify.Fuzz.break_lost_clause
    end
    else Verify.Fuzz.default_solve
  in
  let on_case i family =
    if verbose then Printf.printf "c case %d: %s\n%!" i family
  in
  let report =
    Verify.Fuzz.run ~solve ~metamorphic:(not no_metamorphic)
      ~check_proofs:(not no_proofs) ?only_case:case ~on_case ~seed ~cases ()
  in
  Format.printf "%a" Verify.Fuzz.pp_report report;
  exit (if report.Verify.Fuzz.discrepancies = [] then 0 else 1)

open Cmdliner

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Fuzzing seed.")

let cases =
  Arg.(value & opt int 100 & info [ "cases" ] ~docv:"K" ~doc:"Number of cases to run.")

let case =
  Arg.(value & opt (some int) None & info [ "case" ] ~docv:"K"
         ~doc:"Replay a single case index (as printed by a failure report).")

let gradcheck =
  Arg.(value & flag & info [ "gradcheck" ]
         ~doc:"Run the finite-difference gradient check instead of fuzzing.")

let no_metamorphic =
  Arg.(value & flag & info [ "no-metamorphic" ] ~doc:"Skip metamorphic transforms.")

let no_proofs =
  Arg.(value & flag & info [ "no-proofs" ] ~doc:"Skip DRUP proof checking.")

let buggy =
  Arg.(value & flag & info [ "buggy" ]
         ~doc:"Fuzz a deliberately unsound solver (drops one clause) to \
               demonstrate that the harness detects soundness bugs.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ])

let cmd =
  let doc = "differential fuzzing of the camlsat CDCL solver" in
  Cmd.v
    (Cmd.info "ns-fuzz" ~doc)
    Term.(
      const run $ seed $ cases $ case $ gradcheck $ no_metamorphic $ no_proofs
      $ buggy $ verbose)

let () = exit (Cmd.eval cmd)

(* ns-fuzz: differential + metamorphic fuzzing CLI for the camlsat CDCL
   solver. Cross-checks every clause-deletion policy against a DPLL
   oracle, validates SAT models and DRUP proofs, and asserts verdict
   stability under satisfiability-preserving transforms. Failures are
   shrunk to minimal DIMACS and reported with a replay command.

   Exit codes: 0 = clean, 1 = discrepancies found. *)

let run seed cases case gradcheck faults diff_ref check_checkpoint
    no_metamorphic no_proofs buggy verbose =
  (match check_checkpoint with
  | None -> ()
  | Some path ->
    let model = Core.Model.create Core.Model.paper_config in
    (match Core.Model.load_result path model with
    | Ok Nn.Checkpoint.Primary ->
      Printf.printf "checkpoint %s: OK (primary)\n" path;
      exit 0
    | Ok Nn.Checkpoint.Backup ->
      Printf.printf "checkpoint %s: primary corrupt, backup %s OK\n" path
        (Nn.Checkpoint.backup_path path);
      exit 0
    | Error e ->
      Printf.printf "checkpoint %s: FAIL (%s)\n" path (Runtime.Error.to_string e);
      exit 1));
  if faults then begin
    let report = Verify.Faultcheck.run_all ~seed () in
    Format.printf "%a@." Verify.Faultcheck.pp_report report;
    exit (if Verify.Faultcheck.passed report then 0 else 1)
  end;
  if diff_ref then begin
    let on_case i family =
      if verbose then Printf.printf "c case %d: %s\n%!" i family
    in
    let report = Verify.Fuzz.run_ref_diff ~on_case ~seed ~cases () in
    Format.printf "%a" Verify.Fuzz.pp_ref_diff_report report;
    (* Third arm: randomized incremental call sequences against a
       fresh-solver-per-step oracle (at least 300, more when --cases
       asks for it). *)
    let sequences = max cases 300 in
    let on_case i =
      if verbose then Printf.printf "c incremental sequence %d\n%!" i
    in
    let ireport = Verify.Fuzz.run_incremental_diff ~on_case ~seed ~sequences () in
    Format.printf "%a" Verify.Fuzz.pp_incr_report ireport;
    exit
      (if
         report.Verify.Fuzz.rd_failures = []
         && ireport.Verify.Fuzz.ir_failures = []
       then 0
       else 1)
  end;
  if gradcheck then begin
    let reports = Verify.Gradcheck.run_all ~seed () in
    List.iter
      (fun r -> Format.printf "%a@." Verify.Gradcheck.pp_report r)
      reports;
    let ok = Verify.Gradcheck.passed ~tol:1e-4 reports in
    Format.printf "gradcheck: max rel err %.3e — %s@."
      (Verify.Gradcheck.max_error reports)
      (if ok then "OK" else "FAIL");
    exit (if ok then 0 else 1)
  end;
  let solve =
    if buggy then begin
      print_endline "c running with the deliberately broken solver (--buggy)";
      Verify.Fuzz.break_lost_clause
    end
    else Verify.Fuzz.default_solve
  in
  let on_case i family =
    if verbose then Printf.printf "c case %d: %s\n%!" i family
  in
  let report =
    Verify.Fuzz.run ~solve ~metamorphic:(not no_metamorphic)
      ~check_proofs:(not no_proofs) ?only_case:case ~on_case ~seed ~cases ()
  in
  Format.printf "%a" Verify.Fuzz.pp_report report;
  exit (if report.Verify.Fuzz.discrepancies = [] then 0 else 1)

open Cmdliner

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Fuzzing seed.")

let cases =
  Arg.(value & opt int 100 & info [ "cases" ] ~docv:"K" ~doc:"Number of cases to run.")

let case =
  Arg.(value & opt (some int) None & info [ "case" ] ~docv:"K"
         ~doc:"Replay a single case index (as printed by a failure report).")

let gradcheck =
  Arg.(value & flag & info [ "gradcheck" ]
         ~doc:"Run the finite-difference gradient check instead of fuzzing.")

let faults =
  Arg.(value & flag & info [ "faults" ]
         ~doc:"Run the seeded fault-injection suite instead of fuzzing: torn \
               and bit-flipped checkpoint writes, poisoned gradients, failing \
               inference, crashing instances, journal-based campaign resume, \
               SIGKILLed/OOM/hung supervised workers, circuit-breaker trip \
               and recovery, and parallel-vs-sequential journal equivalence \
               — each must recover via its documented path.")

let diff_ref =
  Arg.(value & flag & info [ "diff-ref" ]
         ~doc:"Differential mode: run the arena-backed solver against the \
               record-based reference solver on every case under a \
               compaction-heavy reduce schedule and require bit-for-bit \
               identical verdicts, statistics, and clause traces (UNSAT \
               proofs DRUP-checked), then re-solve with inprocessing \
               (vivification, subsumption, tiered reduce) enabled and \
               require verdict agreement plus a valid DRUP proof. Every \
               failure kind — statistics and trace divergence included — \
               is shrunk to a minimal DIMACS reproducer. Also runs \
               randomized incremental call sequences (add_clause, new_var, \
               solve, solve_with_assumptions) against a \
               fresh-solver-per-step oracle — at least 300 sequences.")

let check_checkpoint =
  Arg.(value & opt (some string) None & info [ "check-checkpoint" ] ~docv:"FILE"
         ~doc:"Validate FILE as a NeuroSelect checkpoint (header, CRC, \
               shapes), falling back to FILE.bak; exit 0 iff loadable.")

let no_metamorphic =
  Arg.(value & flag & info [ "no-metamorphic" ] ~doc:"Skip metamorphic transforms.")

let no_proofs =
  Arg.(value & flag & info [ "no-proofs" ] ~doc:"Skip DRUP proof checking.")

let buggy =
  Arg.(value & flag & info [ "buggy" ]
         ~doc:"Fuzz a deliberately unsound solver (drops one clause) to \
               demonstrate that the harness detects soundness bugs.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ])

let cmd =
  let doc = "differential fuzzing of the camlsat CDCL solver" in
  Cmd.v
    (Cmd.info "ns-fuzz" ~doc)
    Term.(
      const run $ seed $ cases $ case $ gradcheck $ faults $ diff_ref
      $ check_checkpoint $ no_metamorphic $ no_proofs $ buggy $ verbose)

let () = exit (Cmd.eval cmd)

(* ns-evaluate: load a trained checkpoint and reproduce the paper's
   evaluation on a freshly generated test year — classification metrics
   plus the Kissat vs NeuroSelect-Kissat runtime comparison.

   With --journal FILE each measured instance is persisted as one JSONL
   line; re-running the same command after an interruption skips the
   instances already measured. Per-instance crashes are isolated and
   retried once instead of aborting the campaign. *)

let run checkpoint seed per_year budget journal deadline jobs mem_limit_mb
    isolate metrics batch_inference q8_report =
  Obs.Trace.install_from_env ();
  (match metrics with
  | Some path -> at_exit (fun () -> Obs.Report.write path)
  | None -> ());
  (* SIGINT/SIGTERM request a graceful drain: in-flight instances
     finish and are journaled (every append is fsynced), then we exit
     non-zero below. *)
  Runtime.Shutdown.install ();
  let model = Core.Model.create Core.Model.paper_config in
  (match checkpoint with
  | Some path -> (
    match Core.Model.load_result path model with
    | Ok Nn.Checkpoint.Primary -> ()
    | Ok Nn.Checkpoint.Backup ->
      Printf.eprintf "warning: %s corrupt, using %s\n%!" path
        (Nn.Checkpoint.backup_path path)
    | Error e ->
      Printf.eprintf
        "warning: cannot load %s (%s); evaluating untrained weights\n%!" path
        (Runtime.Error.to_string e))
  | None -> prerr_endline "warning: evaluating untrained weights");
  let progress s = print_endline s in
  let data = Experiments.Data.prepare ~seed ~per_year ~budget ~progress () in
  let test = data.Experiments.Data.test in
  let report = Core.Trainer.evaluate model (Experiments.Data.examples test) in
  Format.printf "classification on test year: %a@." Core.Metrics.pp_report report;
  let instances =
    List.map (fun l -> l.Experiments.Data.instance) test
  in
  if q8_report then begin
    let formulas =
      List.map (fun (i : Gen.Dataset.instance) -> i.formula) instances
    in
    let agreement = Core.Selector.q8_agreement model formulas in
    Format.printf "int8/float32 decision agreement on test year: %.1f%% (%d instances)@."
      (100.0 *. agreement) (List.length formulas)
  end;
  let result =
    Experiments.Adaptive_eval.run ~batch_inference ~progress ?journal
      ?deadline_seconds:deadline ~jobs ~isolate ?mem_limit_mb model
      data.Experiments.Data.simtime instances
  in
  (if batch_inference then
     let cs = Core.Selector.cache_stats () in
     Format.printf
       "selector cache: %d hits, %d misses, %d evictions (%d/%d entries)@."
       cs.Core.Selector.hits cs.misses cs.evictions cs.size cs.capacity);
  Format.printf "%a@.@.%a@.@.%a@." Experiments.Adaptive_eval.print_table3 result
    Experiments.Adaptive_eval.print_fig7a result Experiments.Adaptive_eval.print_fig7b
    result;
  if Runtime.Shutdown.requested () then begin
    Printf.eprintf
      "interrupted: journal flushed, %d instance(s) not run; exiting\n%!"
      (List.length result.Experiments.Adaptive_eval.not_run);
    exit (Runtime.Shutdown.exit_code ())
  end;
  if result.Experiments.Adaptive_eval.failures <> [] then exit 2

open Cmdliner

let checkpoint =
  Arg.(value & opt (some file) None & info [ "checkpoint"; "c" ] ~docv:"FILE")

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED")
let per_year = Arg.(value & opt int 16 & info [ "per-year" ] ~docv:"N")
let budget = Arg.(value & opt int 800_000 & info [ "budget" ] ~docv:"PROPS")

let journal =
  Arg.(
    value & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Persist each measured instance to FILE (JSONL) and resume an \
           interrupted campaign by skipping instances already present.")

let deadline =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget per solver call, alongside the propagation \
           budget; expired solves count as unsolved.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Measure N instances in parallel, each in a supervised worker \
           process (implies isolation). Crashed or hung workers are \
           retried with backoff; SIGTERM drains in-flight work and exits \
           cleanly.")

let mem_limit_mb =
  Arg.(
    value & opt (some int) None
    & info [ "mem-limit-mb" ] ~docv:"MB"
        ~doc:
          "Address-space cap per worker process; an instance that blows \
           past it fails alone instead of taking the campaign down \
           (implies isolation).")

let isolate =
  Arg.(
    value & flag
    & info [ "isolate" ]
        ~doc:
          "Run every instance in a forked worker process even with a \
           single job, so one runaway instance cannot crash the \
           campaign.")

let metrics =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Dump an ns.metrics/1 JSON snapshot (solver, selector, pool and \
           supervisor counters) to FILE on exit. Note: with --jobs/--isolate \
           the per-instance solver counters accrue in the worker processes, \
           so the parent snapshot only reflects in-process work.")

let batch_inference =
  Arg.(
    value & flag
    & info [ "batch-inference" ]
        ~doc:
          "Precompute every policy selection up front in packed batches \
           (one blocked GEMM per batch) with the fingerprint-keyed \
           decision cache enabled, instead of one model forward per \
           instance inside the measurement loop.")

let q8_report =
  Arg.(
    value & flag
    & info [ "q8-report" ]
        ~doc:
          "Report the fraction of test instances on which the int8 \
           quantized selector agrees with the float32 engine's policy \
           decision.")

let cmd =
  let doc = "evaluate a trained NeuroSelect model against Kissat-default" in
  Cmd.v
    (Cmd.info "ns-evaluate" ~doc)
    Term.(
      const run $ checkpoint $ seed $ per_year $ budget $ journal $ deadline
      $ jobs $ mem_limit_mb $ isolate $ metrics $ batch_inference $ q8_report)

let () = exit (Cmd.eval cmd)

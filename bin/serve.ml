(* ns-serve: long-lived incremental solve service.

   Speaks a length-prefixed JSON protocol (decimal byte count, newline,
   flat JSON object — the Journal codec) over a Unix-domain socket or
   stdin/stdout. One-shot solve requests are multiplexed onto a
   Runtime.Pool of supervised worker processes with per-request wall
   deadlines and RLIMIT_AS memory caps; a bounded queue sheds excess
   load with 429-style responses instead of building backlog, and
   crashed workers are retried with backoff. Incremental sessions run
   in-process on the Cdcl.Solver IPASIR-style API. SIGTERM drains
   gracefully: in-flight work finishes, new work is rejected, the
   journal is flushed, and the process exits 0.

   Requests (one JSON object per frame):
     {"op":"ping","id":..}
     {"op":"metrics","id":..}            server-level snapshot
     {"op":"solve","id":..,"dimacs":..,
      "deadline_s":..,"mem_mb":..}       pool-backed one-shot solve
     {"op":"session","id":..,
      "action":"new|add|new_var|solve|close|info",
      "sid":..,"vars":..,"clause":"1 -2 0","assumptions":"1 -2",
      "key":"client idempotency key"}

   Responses echo "id", carry "status" ("ok" | "error" | "shed" |
   "rejected") and, for solves, the verdict, model, solver statistics,
   attempt count, latency, and the inference-breaker degraded flag.

   Durability: with --wal DIR every mutating session op is appended to
   a CRC-framed write-ahead log (Runtime.Wal, via
   Nserve.Session_store) *before* the response is acked, and on
   startup all sessions are rebuilt from the newest snapshot plus
   segment replay. A request "key" makes client retries after a crash
   exactly-once: a key already executed returns the cached reply with
   "replayed":true instead of re-executing. *)

let m_requests = Obs.Metrics.counter "serve.requests"
let m_completed = Obs.Metrics.counter "serve.completed"
let m_failed = Obs.Metrics.counter "serve.failed"
let m_rejected = Obs.Metrics.counter "serve.rejected"
let h_latency = Obs.Metrics.histogram "serve.latency_seconds"

(* A connected client: a frame reader over buffered inbound bytes. *)
type client = {
  fd : Unix.file_descr;
  reader : Runtime.Frame.reader;
  mutable alive : bool;
}

(* Extract complete frames in arrival order; a malformed length prefix
   kills the connection. *)
let drain_frames c =
  let out = ref [] in
  let continue = ref true in
  while !continue do
    match Runtime.Frame.next c.reader with
    | Some payload -> out := payload :: !out
    | None -> continue := false
  done;
  if Runtime.Frame.malformed c.reader then c.alive <- false;
  List.rev !out

(* --- literal / model string helpers ----------------------------------- *)

module Store = Nserve.Session_store

let model_to_string = Store.model_to_string
let verdict_name = Store.verdict_name

(* --- worker-side solve ------------------------------------------------- *)

(* Runs inside the forked supervisor worker: parse, solve under the
   request's wall budget, and return a flat-JSON payload the parent
   merges into the response. *)
let worker_solve ~deadline_s ~inject_marker ~policy dimacs () =
  (match inject_marker with
  | Some marker when not (Sys.file_exists marker) ->
    (* Injected crash for drill scenarios: die on the first attempt,
       succeed on the retry (the marker outlives this process). *)
    (try
       let oc = open_out marker in
       close_out oc
     with Sys_error _ -> ());
    exit 66
  | _ -> ());
  match Runtime.Error.protect ~context:"serve.worker" (fun () ->
      let f = Cnf.Dimacs.parse_string dimacs in
      let config =
        Cdcl.Config.with_budget ~max_wall_seconds:deadline_s
          Cdcl.Config.default
      in
      (* The parent's policy selection rides in as the serialized
         policy name; an unparseable name falls back to the default. *)
      let config =
        match Option.bind policy Cdcl.Policy.of_string with
        | Some p -> Cdcl.Config.with_policy p config
        | None -> config
      in
      let result, stats = Cdcl.Solver.solve_formula ~config f in
      Runtime.Journal.encode
        ([
           ("verdict", Runtime.Journal.String (verdict_name result));
           ( "model",
             match result with
             | Cdcl.Solver.Sat m -> Runtime.Journal.String (model_to_string m)
             | _ -> Runtime.Journal.Null );
           ("conflicts", Runtime.Journal.Int stats.Cdcl.Solver_stats.conflicts);
           ("decisions", Runtime.Journal.Int stats.Cdcl.Solver_stats.decisions);
           ( "propagations",
             Runtime.Journal.Int stats.Cdcl.Solver_stats.propagations );
           ( "learned",
             Runtime.Journal.Int stats.Cdcl.Solver_stats.learned_total );
         ]))
  with
  | Ok payload -> Ok payload
  | Error e -> Error (Runtime.Error.to_string e)

(* --- server state ------------------------------------------------------ *)

type pending_req = {
  pr_client : client;
  pr_user_id : string;
  pr_submitted : float;
  pr_marker : string option;
  pr_extra : Runtime.Journal.record;
      (* Parent-side selection fields (policy, cache, probability)
         merged into the solve response. *)
}

type server = {
  pool : Runtime.Pool.t;
  pending : (string, pending_req) Hashtbl.t; (* pool id -> request *)
  selector : Core.Model.t option;
      (* --adaptive: model for parent-side cached policy selection. *)
  store : Store.t;
  wal_enabled : bool;
  journal : string option;
  default_deadline : float;
  default_mem_mb : int option;
  allow_inject : bool;
  verbose : bool;
  mutable next_req : int;
  mutable draining : bool;
  mutable last_sweep : float; (* idle-session TTL sweeps *)
}

let log srv fmt =
  Printf.ksprintf
    (fun s -> if srv.verbose then Printf.eprintf "c [serve] %s\n%!" s)
    fmt

let degraded () =
  match Core.Selector.breaker_state () with
  | Runtime.Breaker.Open -> true
  | Runtime.Breaker.Closed | Runtime.Breaker.Half_open -> false

let journal_append srv record =
  match srv.journal with
  | None -> ()
  | Some path -> (
    match Runtime.Journal.append path record with
    | Ok () -> ()
    | Error e -> log srv "journal append failed: %s" (Runtime.Error.to_string e))

let respond srv client record =
  if client.alive then
    try Runtime.Frame.write client.fd (Runtime.Journal.encode record)
    with Unix.Unix_error _ ->
      client.alive <- false;
      log srv "client write failed; dropping connection"

let base_response ~id ~status rest =
  ("id", Runtime.Journal.String id)
  :: ("status", Runtime.Journal.String status)
  :: ("degraded", Runtime.Journal.Bool (degraded ()))
  :: rest

(* Completion of a pool-backed solve: merge the worker payload (or the
   failure) into the response, journal it, and clean up. *)
let on_pool_complete srv (c : Runtime.Pool.completion) =
  match Hashtbl.find_opt srv.pending c.Runtime.Pool.id with
  | None -> ()
  | Some pr ->
    Hashtbl.remove srv.pending c.Runtime.Pool.id;
    (match pr.pr_marker with
    | Some m when Sys.file_exists m -> ( try Sys.remove m with Sys_error _ -> ())
    | _ -> ());
    let latency = Unix.gettimeofday () -. pr.pr_submitted in
    Obs.Metrics.observe h_latency latency;
    let tail =
      [
        ("attempts", Runtime.Journal.Int c.Runtime.Pool.attempts);
        ("latency_ms", Runtime.Journal.Float (1000.0 *. latency));
      ]
    in
    let record =
      match c.Runtime.Pool.outcome with
      | Runtime.Pool.Done payload ->
        Obs.Metrics.incr m_completed;
        let body =
          match Runtime.Journal.parse_line payload with
          | Some fields -> fields
          | None ->
            [ ("verdict", Runtime.Journal.String "unknown") ]
        in
        base_response ~id:pr.pr_user_id ~status:"ok"
          (body @ pr.pr_extra @ tail)
      | Runtime.Pool.Failed msg ->
        Obs.Metrics.incr m_failed;
        base_response ~id:pr.pr_user_id ~status:"error"
          (("error", Runtime.Journal.String msg) :: tail)
      | Runtime.Pool.Shed ->
        (* 429-style: admission control refused the request. *)
        base_response ~id:pr.pr_user_id ~status:"shed" tail
    in
    respond srv pr.pr_client record;
    journal_append srv record

(* --- request handling --------------------------------------------------- *)

let handle_metrics srv ~id client =
  let num name v = (name, Runtime.Journal.Int v) in
  let cs = Core.Selector.cache_stats () in
  respond srv client
    (base_response ~id ~status:"ok"
       [
         num "requests" (Obs.Metrics.counter_value m_requests);
         num "cache_hits" cs.Core.Selector.hits;
         num "cache_misses" cs.Core.Selector.misses;
         num "cache_evictions" cs.Core.Selector.evictions;
         num "cache_size" cs.Core.Selector.size;
         num "completed" (Obs.Metrics.counter_value m_completed);
         num "failed" (Obs.Metrics.counter_value m_failed);
         num "rejected" (Obs.Metrics.counter_value m_rejected);
         num "shed" (Runtime.Pool.shed_count srv.pool);
         num "worker_retries"
           (Obs.Metrics.counter_value
              (Obs.Metrics.counter "runtime.pool.worker_retries"));
         num "in_flight" (Runtime.Pool.in_flight srv.pool);
         num "queued" (Runtime.Pool.queued srv.pool);
         num "sessions" (Store.session_count srv.store);
         num "evicted" (Store.evictions srv.store);
         num "snapshot_failures" (Store.snapshot_failures srv.store);
         ("wal", Runtime.Journal.Bool srv.wal_enabled);
         ( "breaker",
           Runtime.Journal.String
             (Runtime.Breaker.state_name (Core.Selector.breaker_state ())) );
         ("draining", Runtime.Journal.Bool srv.draining);
       ])

let handle_solve srv ~id client fields =
  match Runtime.Journal.find_string fields "dimacs" with
  | None ->
    respond srv client
      (base_response ~id ~status:"error"
         [ ("error", Runtime.Journal.String "solve: missing dimacs field") ])
  | Some dimacs ->
    let deadline_s =
      match Runtime.Journal.find_float fields "deadline_s" with
      | Some d when d > 0.0 && Float.is_finite d -> d
      | _ -> srv.default_deadline
    in
    let mem_mb =
      match Runtime.Journal.find_int fields "mem_mb" with
      | Some m when m > 0 -> Some m
      | _ -> srv.default_mem_mb
    in
    let inject_marker =
      match Runtime.Journal.find_string fields "inject" with
      | Some "crash_once" when srv.allow_inject ->
        Some
          (Filename.concat
             (Filename.get_temp_dir_name ())
             (Printf.sprintf "ns-serve-inject-%d-%d" (Unix.getpid ())
                srv.next_req))
      | _ -> None
    in
    (* --adaptive: select the deletion policy in the parent, through
       the fingerprint-keyed decision cache, and ship the chosen
       policy's name to the worker. A repeated instance costs a cache
       lookup instead of a model forward. *)
    let policy, extra =
      match srv.selector with
      | None -> (None, [])
      | Some model -> (
        match Cnf.Dimacs.parse_string dimacs with
        | exception _ -> (None, [])
        | formula ->
          let t0 = Unix.gettimeofday () in
          let s = Core.Selector.select_policy ~use_cache:true model formula in
          let selection_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
          let extra =
            [
              ( "policy",
                Runtime.Journal.String
                  (Cdcl.Policy.name s.Core.Selector.policy) );
              ( "cache",
                Runtime.Journal.String
                  (if s.Core.Selector.cached then "hit" else "miss") );
              ("selection_ms", Runtime.Journal.Float selection_ms);
            ]
          in
          let extra =
            if Float.is_finite s.Core.Selector.probability then
              extra
              @ [
                  ( "probability",
                    Runtime.Journal.Float s.Core.Selector.probability );
                ]
            else extra
          in
          (Some (Cdcl.Policy.name s.Core.Selector.policy), extra))
    in
    let pool_id = Printf.sprintf "r%d" srv.next_req in
    srv.next_req <- srv.next_req + 1;
    Hashtbl.replace srv.pending pool_id
      {
        pr_client = client;
        pr_user_id = id;
        pr_submitted = Unix.gettimeofday ();
        pr_marker = inject_marker;
        pr_extra = extra;
      };
    let limits =
      {
        Runtime.Supervisor.default_limits with
        Runtime.Supervisor.mem_limit_mb = mem_mb;
        (* The solver budget returns Unknown at [deadline_s]; the
           supervisor deadline is the backstop for a worker that fails
           to honour it. *)
        deadline_seconds = Some ((deadline_s *. 1.5) +. 1.0);
      }
    in
    (* Shed submissions complete synchronously through on_pool_complete. *)
    ignore
      (Runtime.Pool.submit srv.pool ~limits ~id:pool_id
         (worker_solve ~deadline_s ~inject_marker ~policy dimacs))

(* Incremental sessions run in-process through the durable
   Session_store; solver budgets (not supervisor deadlines) bound their
   solve steps, so a session solve stalls the event loop for at most
   the deadline. With --wal, Session_store appends every mutating op to
   the log before this handler acks it. *)
let handle_session srv ~id client fields =
  let sid =
    Option.value (Runtime.Journal.find_string fields "sid") ~default:"s0"
  in
  let action =
    Option.value (Runtime.Journal.find_string fields "action") ~default:""
  in
  let key = Runtime.Journal.find_string fields "key" in
  let ok rest = respond srv client (base_response ~id ~status:"ok" rest) in
  let err msg =
    respond srv client
      (base_response ~id ~status:"error"
         [ ("error", Runtime.Journal.String msg) ])
  in
  let op =
    match action with
    | "new" ->
      let vars =
        match Runtime.Journal.find_int fields "vars" with
        | Some v when v >= 0 -> v
        | _ -> 0
      in
      Some (Store.New vars)
    | "new_var" -> Some Store.New_var
    | "add" ->
      Some
        (Store.Add
           (Option.value
              (Runtime.Journal.find_string fields "clause")
              ~default:""))
    | "solve" ->
      Some
        (Store.Solve
           (Option.value
              (Runtime.Journal.find_string fields "assumptions")
              ~default:""))
    | "close" -> Some Store.Close
    | _ -> None
  in
  match (action, op) with
  | "info", _ -> (
    (* Read-only session probe: the loadtest's lost-op detector. *)
    match Store.info srv.store sid with
    | Some (vars, clauses) ->
      ok
        [
          ("sid", Runtime.Journal.String sid);
          ("vars", Runtime.Journal.Int vars);
          ("clauses", Runtime.Journal.Int clauses);
        ]
    | None -> err (Printf.sprintf "session: unknown sid %s" sid))
  | _, Some op -> (
    let t0 = Unix.gettimeofday () in
    let outcome = Store.apply srv.store ?key ~sid op in
    match outcome.Store.reply with
    | Error msg -> err msg
    | Ok rest ->
      let rest =
        match op with
        | Store.Solve _ ->
          rest
          @ [
              ( "latency_ms",
                Runtime.Journal.Float (1000.0 *. (Unix.gettimeofday () -. t0))
              );
            ]
        | _ -> rest
      in
      let rest =
        if outcome.Store.replayed then
          rest @ [ ("replayed", Runtime.Journal.Bool true) ]
        else rest
      in
      ok rest)
  | other, None -> err (Printf.sprintf "session: unknown action %S" other)

let reject srv ~id client =
  Obs.Metrics.incr m_rejected;
  let record = base_response ~id ~status:"rejected" [] in
  respond srv client record;
  journal_append srv record

let handle_frame srv client payload =
  Obs.Metrics.incr m_requests;
  match Runtime.Journal.parse_line payload with
  | None ->
    respond srv client
      (base_response ~id:"" ~status:"error"
         [ ("error", Runtime.Journal.String "malformed JSON frame") ])
  | Some fields -> (
    let id =
      Option.value (Runtime.Journal.find_string fields "id") ~default:""
    in
    let op =
      Option.value (Runtime.Journal.find_string fields "op") ~default:""
    in
    match op with
    | "ping" -> respond srv client (base_response ~id ~status:"ok" [])
    | "metrics" -> handle_metrics srv ~id client
    | _ when srv.draining ->
      (* Draining: in-flight work finishes, new work is turned away. *)
      reject srv ~id client
    | "solve" -> handle_solve srv ~id client fields
    | "session" -> handle_session srv ~id client fields
    | other ->
      respond srv client
        (base_response ~id ~status:"error"
           [
             ( "error",
               Runtime.Journal.String (Printf.sprintf "unknown op %S" other) );
           ]))

(* --- event loop --------------------------------------------------------- *)

let service_client srv client =
  (match Runtime.Frame.read_into client.reader client.fd with
  | `Eof -> client.alive <- false
  | `Data | `Blocked -> ());
  if client.alive then
    List.iter (handle_frame srv client) (drain_frames client)

(* Graceful drain: the listener is already closed and [draining] set.
   In-flight workers finish under their own limits (the pool launches
   nothing new once Shutdown is requested); their responses flow out
   through on_pool_complete; queued-but-never-launched requests are
   rejected so no client is left hanging. *)
let drain_and_exit srv clients =
  log srv "draining: %d in flight, %d queued"
    (Runtime.Pool.in_flight srv.pool)
    (Runtime.Pool.queued srv.pool);
  let _completions, not_run = Runtime.Pool.drain srv.pool in
  List.iter
    (fun pool_id ->
      match Hashtbl.find_opt srv.pending pool_id with
      | None -> ()
      | Some pr ->
        Hashtbl.remove srv.pending pool_id;
        reject srv ~id:pr.pr_user_id pr.pr_client)
    not_run;
  (* Sync and close the WAL so the final fsync covers every acked op. *)
  Store.close srv.store;
  journal_append srv
    [
      ("event", Runtime.Journal.String "drained");
      ( "completed",
        Runtime.Journal.Int (Obs.Metrics.counter_value m_completed) );
      ("rejected", Runtime.Journal.Int (Obs.Metrics.counter_value m_rejected));
      ("shed", Runtime.Journal.Int (Runtime.Pool.shed_count srv.pool));
    ];
  List.iter
    (fun c ->
      if c.alive then try Unix.close c.fd with Unix.Unix_error _ -> ())
    !clients;
  log srv "drained cleanly"

(* Idle-session TTL sweep, time-gated to roughly once a second so the
   select loop's 50 ms ticks don't rescan the table. *)
let sweep_idle srv =
  let now = Unix.gettimeofday () in
  if now -. srv.last_sweep >= 1.0 then begin
    srv.last_sweep <- now;
    let n = Store.evict_idle srv.store in
    if n > 0 then log srv "evicted %d idle session(s)" n
  end

(* Group-commit WAL fsyncs are driven from here on every loop tick:
   appends only sync opportunistically when more traffic arrives, so
   without this a pause in traffic would strand the last burst of
   acked ops outside the --wal-group-commit durability window
   indefinitely. Store.flush itself checks the interval. *)
let flush_wal srv =
  match Store.flush srv.store with
  | Ok () -> ()
  | Error e -> log srv "wal flush failed: %s" (Runtime.Error.to_string e)

let serve_loop srv ~accept_fd ~initial_clients =
  let clients = ref initial_clients in
  let continue = ref true in
  while !continue do
    if Runtime.Shutdown.requested () && not srv.draining then begin
      srv.draining <- true;
      (match accept_fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ())
    end;
    let listen_fds =
      if srv.draining then [] else Option.to_list accept_fd
    in
    let client_fds = List.map (fun c -> c.fd) !clients in
    let worker_fds = [] in
    let readable, _, _ =
      try
        Unix.select (listen_fds @ client_fds @ worker_fds) [] [] 0.05
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (match accept_fd with
    | Some lfd when (not srv.draining) && List.mem lfd readable -> (
      match Unix.accept lfd with
      | fd, _ ->
        Unix.set_nonblock fd;
        clients :=
          { fd; reader = Runtime.Frame.create_reader (); alive = true }
          :: !clients
      | exception Unix.Unix_error _ -> ())
    | _ -> ());
    List.iter
      (fun c -> if List.mem c.fd readable then service_client srv c)
      !clients;
    clients :=
      List.filter
        (fun c ->
          if c.alive then true
          else begin
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            false
          end)
        !clients;
    Runtime.Pool.pump srv.pool;
    sweep_idle srv;
    flush_wal srv;
    if srv.draining then begin
      drain_and_exit srv clients;
      continue := false
    end
    else if accept_fd = None && !clients = [] then begin
      (* stdio mode: EOF on stdin is a polite shutdown request. *)
      srv.draining <- true;
      drain_and_exit srv clients;
      continue := false
    end
  done

(* --- startup ------------------------------------------------------------ *)

let run socket stdio jobs max_queue max_retries deadline mem_mb journal pidfile
    wal wal_group_commit snapshot_every max_sessions session_ttl allow_inject
    adaptive checkpoint verbose =
  Runtime.Shutdown.install ();
  let selector =
    if not adaptive then None
    else begin
      let model = Core.Model.create Core.Model.paper_config in
      (match checkpoint with
      | Some path -> (
        match Core.Model.load_result path model with
        | Ok Nn.Checkpoint.Primary -> ()
        | Ok Nn.Checkpoint.Backup ->
          Printf.eprintf "ns-serve: %s corrupt, using %s\n%!" path
            (Nn.Checkpoint.backup_path path)
        | Error e ->
          Printf.eprintf
            "ns-serve: cannot load %s (%s); serving untrained weights\n%!" path
            (Runtime.Error.to_string e))
      | None -> ());
      Some model
    end
  in
  let store_config =
    {
      Store.default_config with
      Store.wal_dir = wal;
      fsync =
        (match wal_group_commit with
        | Some s when s > 0.0 -> Runtime.Wal.Group_commit s
        | _ -> Runtime.Wal.Per_record);
      snapshot_every;
      max_sessions;
      session_ttl;
    }
  in
  let t_recover = Unix.gettimeofday () in
  match Store.create store_config with
  | Error e ->
    Printf.eprintf "ns-serve: wal recovery failed: %s\n%!"
      (Runtime.Error.to_string e);
    1
  | Ok (store, recovery) ->
  let recovery_s = Unix.gettimeofday () -. t_recover in
  let srv_ref = ref None in
  let pool =
    Runtime.Pool.create ~jobs ~max_queue ~max_retries
      ~limits:
        {
          Runtime.Supervisor.default_limits with
          Runtime.Supervisor.deadline_seconds = Some ((deadline *. 1.5) +. 1.0);
          mem_limit_mb = mem_mb;
        }
      ~on_complete:(fun c ->
        match !srv_ref with Some srv -> on_pool_complete srv c | None -> ())
      ()
  in
  let srv =
    {
      pool;
      pending = Hashtbl.create 64;
      selector;
      store;
      wal_enabled = wal <> None;
      journal;
      default_deadline = deadline;
      default_mem_mb = mem_mb;
      allow_inject;
      verbose;
      next_req = 0;
      draining = false;
      last_sweep = Unix.gettimeofday ();
    }
  in
  srv_ref := Some srv;
  if srv.wal_enabled then begin
    log srv
      "wal recovery: %d session(s), %d record(s) replayed, snapshot=%b, \
       truncated=%dB, corrupt_snapshots=%d, restore_errors=%d (%.1f ms)"
      recovery.Store.sessions recovery.Store.replayed
      recovery.Store.from_snapshot recovery.Store.truncated_bytes
      recovery.Store.corrupt_snapshots recovery.Store.restore_errors
      (1000.0 *. recovery_s);
    journal_append srv
      [
        ("event", Runtime.Journal.String "recovered");
        ("sessions", Runtime.Journal.Int recovery.Store.sessions);
        ("replayed", Runtime.Journal.Int recovery.Store.replayed);
        ("from_snapshot", Runtime.Journal.Bool recovery.Store.from_snapshot);
        ("truncated_bytes", Runtime.Journal.Int recovery.Store.truncated_bytes);
        ( "corrupt_snapshots",
          Runtime.Journal.Int recovery.Store.corrupt_snapshots );
        ("restore_errors", Runtime.Journal.Int recovery.Store.restore_errors);
        ("recovery_ms", Runtime.Journal.Float (1000.0 *. recovery_s));
      ]
  end;
  if stdio then begin
    (* One client: frames arrive on stdin, responses leave on stdout.
       [reader] buffers and parses inbound frames; [writer] is the
       client every response targets. *)
    let writer =
      { fd = Unix.stdout; reader = Runtime.Frame.create_reader (); alive = true }
    in
    let reader =
      { fd = Unix.stdin; reader = Runtime.Frame.create_reader (); alive = true }
    in
    let continue = ref true in
    while !continue do
      if Runtime.Shutdown.requested () && not srv.draining then
        srv.draining <- true;
      let readable, _, _ =
        try Unix.select [ Unix.stdin ] [] [] 0.05
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if (not srv.draining) && List.mem Unix.stdin readable then begin
        match Runtime.Frame.read_into reader.reader Unix.stdin with
        | `Eof ->
          (* EOF: a polite shutdown request — drain what was buffered. *)
          List.iter (handle_frame srv writer) (drain_frames reader);
          srv.draining <- true;
          reader.alive <- false
        | `Data | `Blocked -> ()
      end;
      if reader.alive then
        List.iter (handle_frame srv writer) (drain_frames reader);
      Runtime.Pool.pump srv.pool;
      sweep_idle srv;
      flush_wal srv;
      if srv.draining then begin
        drain_and_exit srv (ref []);
        continue := false
      end
    done;
    0
  end
  else begin
    let socket_path =
      match socket with
      | Some s -> s
      | None -> Filename.concat (Filename.get_temp_dir_name ()) "ns-serve.sock"
    in
    let pidfile =
      match pidfile with Some p -> p | None -> socket_path ^ ".pid"
    in
    match Runtime.Pidlock.acquire pidfile with
    | Error e ->
      Printf.eprintf "ns-serve: %s\n%!" (Runtime.Error.to_string e);
      1
    | Ok () ->
      if Runtime.Pidlock.sweep_socket socket_path then
        log srv "swept stale socket %s" socket_path;
      let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind lfd (Unix.ADDR_UNIX socket_path);
      Unix.listen lfd 64;
      Unix.set_nonblock lfd;
      log srv "listening on %s (pidfile %s, %d jobs, queue %d)" socket_path
        pidfile jobs max_queue;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close lfd with Unix.Unix_error _ -> ());
          ignore (Runtime.Pidlock.sweep_socket socket_path);
          Runtime.Pidlock.release pidfile)
        (fun () -> serve_loop srv ~accept_fd:(Some lfd) ~initial_clients:[]);
      0
  end

open Cmdliner

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (default \\$TMPDIR/ns-serve.sock).")

let stdio =
  Arg.(
    value & flag
    & info [ "stdio" ]
        ~doc:"Serve a single client over stdin/stdout instead of a socket.")

let jobs =
  Arg.(
    value & opt int 2
    & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Concurrent solver workers.")

let max_queue =
  Arg.(
    value & opt int 8
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Admission-control bound: waiting solve requests beyond this are \
           shed with a status of \"shed\" instead of queued.")

let max_retries =
  Arg.(
    value & opt int 2
    & info [ "max-retries" ] ~docv:"N"
        ~doc:"Extra attempts for crashed/hung/timed-out workers.")

let deadline =
  Arg.(
    value & opt float 10.0
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Default per-request wall deadline; the solver returns \"unknown\" \
           at the budget, the supervisor kills runaways at 1.5x + 1s. \
           Requests may override with a deadline_s field.")

let mem_mb =
  Arg.(
    value
    & opt (some int) (Some 1024)
    & info [ "mem-mb" ] ~docv:"MB"
        ~doc:"Per-worker RLIMIT_AS cap; requests may override with mem_mb.")

let journal =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:"Append one JSONL record per finished request (fsynced).")

let pidfile =
  Arg.(
    value
    & opt (some string) None
    & info [ "pidfile" ] ~docv:"FILE"
        ~doc:
          "Single-instance pidfile (default SOCKET.pid). Stale files from \
           dead servers are swept on startup; a live owner refuses startup.")

let wal =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"DIR"
        ~doc:
          "Write-ahead-log directory for durable sessions: every mutating \
           session op is logged and fsynced before it is acked, and startup \
           replays the log so acked ops survive a crash. Omit for volatile \
           in-memory sessions.")

let wal_group_commit =
  Arg.(
    value
    & opt (some float) None
    & info [ "wal-group-commit" ] ~docv:"SECONDS"
        ~doc:
          "Group-commit fsync interval: batch WAL fsyncs at most this far \
           apart instead of fsyncing every record. Trades the tail of the \
           durability window for throughput. Default: fsync per record.")

let snapshot_every =
  Arg.(
    value & opt int 256
    & info [ "wal-snapshot-every" ] ~docv:"N"
        ~doc:
          "Write a snapshot (and compact old segments) every N WAL appends. \
           0 disables snapshots; replay then reads the full log.")

let max_sessions =
  Arg.(
    value & opt int 1024
    & info [ "max-sessions" ] ~docv:"N"
        ~doc:
          "Cap on live incremental sessions; further \"new\" actions are \
           refused. 0 means unbounded.")

let session_ttl =
  Arg.(
    value & opt float 0.0
    & info [ "session-ttl" ] ~docv:"SECONDS"
        ~doc:
          "Evict sessions idle longer than this (sweep runs about once a \
           second; evictions are WAL-logged). 0 disables eviction.")

let allow_inject =
  Arg.(
    value & flag
    & info [ "allow-inject" ]
        ~doc:
          "Honour the request field inject:\"crash_once\" (worker dies on \
           its first attempt) — for load-test drills only.")

let adaptive =
  Arg.(
    value & flag
    & info [ "adaptive" ]
        ~doc:
          "Select the clause-deletion policy per solve request with the \
           NeuroSelect model (parent-side, through the fingerprint-keyed \
           decision cache — repeated instances skip inference). Solve \
           responses gain policy, cache (\"hit\"/\"miss\"), selection_ms \
           and probability fields; metrics responses report cache \
           counters.")

let checkpoint =
  Arg.(
    value
    & opt (some file) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Trained model checkpoint for --adaptive (untrained weights \
           otherwise). Loading a checkpoint invalidates any cached \
           decisions.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ])

let cmd =
  let doc = "long-lived incremental SAT solve service" in
  Cmd.v
    (Cmd.info "ns-serve" ~doc)
    Term.(
      const run $ socket $ stdio $ jobs $ max_queue $ max_retries $ deadline
      $ mem_mb $ journal $ pidfile $ wal $ wal_group_commit $ snapshot_every
      $ max_sessions $ session_ttl $ allow_inject $ adaptive $ checkpoint
      $ verbose)

let () = exit (Cmd.eval' cmd)

(* ns-solve: DIMACS CLI front-end for the camlsat CDCL solver with
   selectable clause-deletion policy, including model-guided adaptive
   selection. Exit codes follow the SAT-competition convention:
   10 = SAT, 20 = UNSAT, 0 = unknown.

   With --isolate (or --mem-limit-mb) the solve runs in a supervised
   worker process: an address-space cap and heartbeat watchdog contain
   runaway instances. Several FILEs solve as a pool with --jobs N;
   the summary line per file replaces the exit-code convention (0 =
   every file produced a verdict). *)

let solve_one file policy_str adaptive checkpoint proof simplify inprocess
    max_conflicts max_propagations verbose : int =
  let original = Cnf.Dimacs.parse_file file in
  if verbose then
    Printf.printf "c parsed %s: %d vars, %d clauses\n" file
      (Cnf.Formula.num_vars original)
      (Cnf.Formula.num_clauses original);
  let simplified =
    if not simplify then Some (original, None)
    else begin
      match Cnf.Simplify.simplify original with
      | Cnf.Simplify.Proved_unsat ->
        print_endline "c preprocessing proved unsatisfiability";
        print_endline "s UNSATISFIABLE";
        None
      | Cnf.Simplify.Simplified r ->
        if verbose then
          Printf.printf "c simplify: %d clauses left (%d units, %d pure, %d subsumed)\n"
            (Cnf.Formula.num_clauses r.Cnf.Simplify.formula)
            r.Cnf.Simplify.stats.Cnf.Simplify.forced_units
            r.Cnf.Simplify.stats.Cnf.Simplify.pure_literals
            r.Cnf.Simplify.stats.Cnf.Simplify.subsumed_clauses;
        Some (r.Cnf.Simplify.formula, Some r)
    end
  in
  match simplified with
  | None -> 20
  | Some (formula, preprocessing) ->
    let base =
      Cdcl.Config.with_budget ?max_conflicts ?max_propagations Cdcl.Config.default
    in
    let base =
      match inprocess with
      | None -> base
      | Some interval -> Cdcl.Config.with_inprocess ~interval true base
    in
    let config =
      if adaptive then base
      else
        match Cdcl.Policy.of_string policy_str with
        | Some p -> Cdcl.Config.with_policy p base
        | None -> assert false (* validated before any solve starts *)
    in
    let result, stats =
      if adaptive then begin
        let model = Core.Model.create Core.Model.paper_config in
        (match checkpoint with
        | Some path -> Core.Model.load path model
        | None ->
          prerr_endline "c warning: adaptive mode without --checkpoint uses untrained weights");
        let selection, result, stats = Core.Selector.solve_adaptive ~config model formula in
        Printf.printf "c adaptive selection: %s (p=%.3f, inference %.3fs)\n"
          (Cdcl.Policy.name selection.Core.Selector.policy)
          selection.Core.Selector.probability selection.Core.Selector.inference_seconds;
        (result, stats)
      end
      else begin
        let solver = Cdcl.Solver.create ~config formula in
        let log =
          match proof with
          | None -> None
          | Some _ ->
            let log = Cdcl.Drup.create () in
            Cdcl.Drup.attach log solver;
            Some log
        in
        let result = Cdcl.Solver.solve solver in
        (match (log, result) with
        | Some log, Cdcl.Solver.Unsat ->
          let path = Option.get proof in
          Cdcl.Drup.conclude_unsat log;
          Cdcl.Drup.write_file path log;
          Printf.printf "c DRUP proof (%d lines) written to %s\n"
            (Cdcl.Drup.num_lines log) path
        | Some _, (Cdcl.Solver.Sat _ | Cdcl.Solver.Unknown) ->
          prerr_endline "c no proof emitted (instance not proved UNSAT)"
        | None, _ -> ());
        (result, Cdcl.Solver_stats.copy (Cdcl.Solver.stats solver))
      end
    in
    if verbose then Format.printf "c stats:@.%a@." Cdcl.Solver_stats.pp stats;
    (match result with
    | Cdcl.Solver.Sat model ->
      let model =
        match preprocessing with
        | None -> model
        | Some r -> Cnf.Simplify.extend_model r model
      in
      assert (Cdcl.Solver.check_model original model);
      print_endline "s SATISFIABLE";
      let buf = Buffer.create 256 in
      Buffer.add_string buf "v";
      for v = 1 to Cnf.Formula.num_vars original do
        Buffer.add_string buf (Printf.sprintf " %d" (if model.(v) then v else -v))
      done;
      Buffer.add_string buf " 0";
      print_endline (Buffer.contents buf);
      10
    | Cdcl.Solver.Unsat ->
      print_endline "s UNSATISFIABLE";
      20
    | Cdcl.Solver.Unknown ->
      print_endline "s UNKNOWN";
      0)

(* Portfolio mode: K diversified supervised workers on one instance,
   first decisive verdict wins, learned clauses exchanged at lockstep
   sharing epochs (see lib/portfolio). *)
let solve_portfolio file ~k ~seed ~share ~proof ~verify_proof ~journal_path
    ~mem_limit_mb ~max_conflicts ~metrics ~verbose =
  let formula = Cnf.Dimacs.parse_file file in
  if verbose then
    Printf.printf "c parsed %s: %d vars, %d clauses\n" file
      (Cnf.Formula.num_vars formula)
      (Cnf.Formula.num_clauses formula);
  let want_proof = proof <> None || verify_proof in
  let outcome =
    Portfolio.solve ~k ~seed ~share ~proof:want_proof ?mem_limit_mb
      ?max_conflicts ?journal_path formula
  in
  Printf.printf "c portfolio: winner %s (worker %d), %d epochs, %d exported, %d imported, %d rejected\n"
    outcome.Portfolio.winner_name outcome.Portfolio.winner
    outcome.Portfolio.epochs outcome.Portfolio.exported
    outcome.Portfolio.imported outcome.Portfolio.rejected;
  if outcome.Portfolio.torn_frames > 0 || outcome.Portfolio.workers_killed > 0
  then
    Printf.printf "c portfolio: %d torn frames dropped, %d workers lost\n"
      outcome.Portfolio.torn_frames outcome.Portfolio.workers_killed;
  if verbose then
    Printf.printf "c portfolio: cancel latency %.3fs\n"
      outcome.Portfolio.cancel_seconds;
  ignore metrics;
  match outcome.Portfolio.verdict with
  | Portfolio.Sat model ->
    assert (Cdcl.Solver.check_model formula model);
    print_endline "s SATISFIABLE";
    let buf = Buffer.create 256 in
    Buffer.add_string buf "v";
    for v = 1 to Cnf.Formula.num_vars formula do
      Buffer.add_string buf (Printf.sprintf " %d" (if model.(v) then v else -v))
    done;
    Buffer.add_string buf " 0";
    print_endline (Buffer.contents buf);
    10
  | Portfolio.Unsat proof_text ->
    (match (proof, proof_text) with
    | Some path, Some text ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "c DRUP proof written to %s\n" path
    | _ -> ());
    (match (verify_proof, proof_text) with
    | true, Some text -> (
      match Cdcl.Drup_check.check formula text with
      | Cdcl.Drup_check.Valid -> print_endline "c winning DRUP proof verified"
      | Cdcl.Drup_check.Invalid { line; reason } ->
        Printf.eprintf "c INVALID winning proof at line %d: %s\n" line reason;
        exit 1)
    | true, None ->
      prerr_endline "c no proof captured to verify";
      exit 1
    | false, _ -> ());
    print_endline "s UNSATISFIABLE";
    20
  | Portfolio.Unknown ->
    print_endline "s UNKNOWN";
    0

let run files policy_str adaptive checkpoint proof simplify inprocess
    max_conflicts max_propagations jobs mem_limit_mb isolate metrics verbose
    portfolio portfolio_seed no_share portfolio_journal verify_proof =
  Obs.Trace.install_from_env ();
  (* The solve paths below leave through [exit]; at_exit keeps the
     metrics dump on every one of them. *)
  (match metrics with
  | Some path -> at_exit (fun () -> Obs.Report.write path)
  | None -> ());
  if (not adaptive) && Cdcl.Policy.of_string policy_str = None then begin
    prerr_endline ("unknown policy: " ^ policy_str);
    exit 2
  end;
  if proof <> None && List.length files > 1 then begin
    prerr_endline "--proof is only meaningful with a single FILE";
    exit 2
  end;
  (match portfolio with
  | Some k -> (
    if adaptive || simplify || inprocess <> None || jobs > 1 || isolate then begin
      prerr_endline
        "--portfolio picks its own diversified configurations; it is \
         incompatible with --adaptive, --simplify, --inprocess, --jobs and \
         --isolate";
      exit 2
    end;
    match files with
    | [ file ] ->
      exit
        (solve_portfolio file ~k ~seed:portfolio_seed ~share:(not no_share)
           ~proof ~verify_proof ~journal_path:portfolio_journal ~mem_limit_mb
           ~max_conflicts ~metrics ~verbose)
    | _ ->
      prerr_endline "--portfolio takes exactly one FILE";
      exit 2)
  | None -> ());
  let solve file () =
    solve_one file policy_str adaptive checkpoint proof simplify inprocess
      max_conflicts max_propagations verbose
  in
  let limits = { Runtime.Supervisor.default_limits with mem_limit_mb } in
  let supervised = isolate || mem_limit_mb <> None || jobs > 1 in
  match files with
  | [ file ] when not supervised -> exit (solve file ())
  | [ file ] -> (
    (* One supervised worker: its natural exit code is the verdict. *)
    match
      Runtime.Supervisor.run ~label:file limits (fun () ->
          Ok (string_of_int (solve file ())))
    with
    | Runtime.Supervisor.Completed (Ok code) ->
      exit (int_of_string code)
    | v ->
      Printf.eprintf "c %s: %s\n%!" file (Runtime.Supervisor.verdict_to_string v);
      exit 1)
  | files ->
    Runtime.Shutdown.install ();
    let failed = ref 0 in
    let on_complete (c : Runtime.Pool.completion) =
      match c.Runtime.Pool.outcome with
      | Runtime.Pool.Done code ->
        Printf.printf "c %s: exit %s\n%!" c.Runtime.Pool.id code
      | Runtime.Pool.Failed msg ->
        incr failed;
        Printf.printf "c %s: FAILED (%s)\n%!" c.Runtime.Pool.id msg
      | Runtime.Pool.Shed ->
        incr failed;
        Printf.printf "c %s: SHED\n%!" c.Runtime.Pool.id
    in
    let batch =
      Runtime.Pool.run_list ~jobs ~limits ~on_complete
        (List.map
           (fun f -> (f, fun () -> Ok (string_of_int (solve f ()))))
           files)
    in
    List.iter
      (fun f -> Printf.printf "c %s: not run (interrupted)\n" f)
      batch.Runtime.Pool.not_run;
    if Runtime.Shutdown.requested () then exit (Runtime.Shutdown.exit_code ());
    exit (if !failed > 0 then 1 else 0)

open Cmdliner

let files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.cnf"
         ~doc:"DIMACS inputs; several files solve as a supervised pool.")

let policy =
  Arg.(value & opt string "default" & info [ "policy"; "p" ] ~docv:"POLICY"
         ~doc:"Deletion policy: default, frequency[:alpha], glue, size, activity, random[:seed].")

let adaptive =
  Arg.(value & flag & info [ "adaptive" ] ~doc:"Select the policy with the NeuroSelect model.")

let checkpoint =
  Arg.(value & opt (some file) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Model checkpoint for --adaptive.")

let proof =
  Arg.(value & opt (some string) None & info [ "proof" ] ~docv:"FILE"
         ~doc:"Write a DRUP unsatisfiability proof to FILE (non-adaptive runs).")

let simplify_flag =
  Arg.(value & flag & info [ "simplify" ]
         ~doc:"Preprocess (unit propagation, pure literals, subsumption) before solving.")

let inprocess =
  Arg.(value & opt ~vopt:(Some 4) (some int) None & info [ "inprocess" ]
         ~docv:"INTERVAL"
         ~doc:"Enable arena inprocessing (tiered clause DB, clause \
               vivification, backward subsumption) with a pass every \
               INTERVAL restarts (default 4). Proofs emitted with --proof \
               remain DRUP-checkable.")

let max_conflicts =
  Arg.(value & opt (some int) None & info [ "max-conflicts" ] ~docv:"N")

let max_propagations =
  Arg.(value & opt (some int) None & info [ "max-propagations" ] ~docv:"N")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Solve N files in parallel, each in a supervised worker process.")

let mem_limit_mb =
  Arg.(value & opt (some int) None & info [ "mem-limit-mb" ] ~docv:"MB"
         ~doc:"Address-space cap for each solver worker (implies --isolate).")

let isolate =
  Arg.(value & flag & info [ "isolate" ]
         ~doc:"Fork the solve into a supervised worker process (resource \
               limits, heartbeat watchdog) instead of running in-process.")

let metrics =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Dump an ns.metrics/1 JSON snapshot of all solver/selector \
               counters to FILE on exit.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ])

let portfolio =
  Arg.(value & opt ~vopt:(Some 4) (some int) None & info [ "portfolio" ]
         ~docv:"K"
         ~doc:"Run K diversified solver configurations in parallel worker \
               processes on one FILE, exchanging learned clauses at lockstep \
               sharing epochs; the first decisive verdict wins and the \
               losers are cancelled (default K=4).")

let portfolio_seed =
  Arg.(value & opt int 0 & info [ "portfolio-seed" ] ~docv:"SEED"
         ~doc:"Diversification seed; a fixed seed makes the portfolio run \
               (and its journal) reproducible.")

let no_share =
  Arg.(value & flag & info [ "no-share" ]
         ~doc:"Disable learned-clause exchange between portfolio workers.")

let portfolio_journal =
  Arg.(value & opt (some string) None & info [ "portfolio-journal" ]
         ~docv:"FILE"
         ~doc:"Write the deterministic portfolio journal (configs, epochs, \
               winner) to FILE; byte-identical across same-seed runs.")

let verify_proof =
  Arg.(value & flag & info [ "verify-proof" ]
         ~doc:"DRUP-check the winning portfolio UNSAT proof in-process \
               before reporting; exits 1 if the check fails.")

let cmd =
  let doc = "solve a DIMACS CNF with the camlsat CDCL solver" in
  Cmd.v
    (Cmd.info "ns-solve" ~doc)
    Term.(
      const run $ files $ policy $ adaptive $ checkpoint $ proof $ simplify_flag
      $ inprocess $ max_conflicts $ max_propagations $ jobs $ mem_limit_mb
      $ isolate $ metrics $ verbose $ portfolio $ portfolio_seed $ no_share
      $ portfolio_journal $ verify_proof)

let () = exit (Cmd.eval cmd)

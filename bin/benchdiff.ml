(* ns-benchdiff: compare two ns.bench/1 JSON reports and fail on a
   perf regression. CI runs this as the bench-smoke gate against the
   checked-in bench/baseline.json.

   By default each kernel's current/baseline ratio is normalized by
   the median ratio across kernels before gating, so a uniformly
   slower (or faster) machine does not trip the gate — only a kernel
   that regressed relative to the others does. --absolute gates the
   raw ratio instead, for same-host comparisons.

   Exit codes: 0 pass, 1 regression (or kernels missing), 2 usage or
   unreadable/invalid report. *)

let run baseline current tolerance absolute =
  let read label path =
    match Obs.Bench_report.read_file path with
    | Ok r -> r
    | Error msg ->
      Printf.eprintf "benchdiff: cannot read %s report %s: %s\n" label path msg;
      exit 2
  in
  let baseline = read "baseline" baseline in
  let current = read "current" current in
  if baseline.Obs.Bench_report.kernels = [] then begin
    prerr_endline "benchdiff: baseline lists no kernels";
    exit 2
  end;
  let c =
    Obs.Bench_report.compare_kernels ~tolerance ~absolute ~baseline ~current ()
  in
  Format.printf "%a@." Obs.Bench_report.pp_comparison c;
  Format.printf "(tolerance %.0f%%, %s ratios; baseline %s, current %s)@."
    (100.0 *. tolerance)
    (if absolute then "absolute" else "median-normalized")
    baseline.Obs.Bench_report.date current.Obs.Bench_report.date;
  if c.Obs.Bench_report.ok then exit 0 else exit 1

open Cmdliner

let baseline =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BASELINE.json" ~doc:"Checked-in baseline bench report.")

let current =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"CURRENT.json" ~doc:"Freshly measured bench report.")

let tolerance =
  Arg.(
    value & opt float 0.25
    & info [ "tolerance" ] ~docv:"FRACTION"
        ~doc:"Allowed slowdown before a kernel counts as regressed \
              (0.25 = 25%).")

let absolute =
  Arg.(
    value & flag
    & info [ "absolute" ]
        ~doc:"Gate raw current/baseline ratios instead of \
              median-normalized ones (same-host comparisons only).")

let cmd =
  let doc = "compare bench reports and fail on a kernel perf regression" in
  Cmd.v
    (Cmd.info "ns-benchdiff" ~doc)
    Term.(const run $ baseline $ current $ tolerance $ absolute)

let () = exit (Cmd.eval cmd)

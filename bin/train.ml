(* ns-train: generate the synthetic dataset, label it by dual-policy
   solving, train the NeuroSelect model, and write a checkpoint.

   Fault-tolerant: every epoch ends with an atomic checkpoint write
   plus a progress-journal line, so a killed run restarts from the
   last completed epoch with --resume (the dataset and shuffles are
   deterministic in the seed, so the resumed run retraces the
   interrupted one). *)

let progress_path out = out ^ ".progress"

(* Highest completed epoch recorded in the progress journal, if any. *)
let last_completed_epoch out =
  match Runtime.Journal.load (progress_path out) with
  | Error _ -> None
  | Ok (records, _dropped) ->
    List.fold_left
      (fun acc r ->
        match Runtime.Journal.find_int r "epoch" with
        | Some e -> Some (match acc with None -> e | Some a -> max a e)
        | None -> acc)
      None records

let run seed per_year budget epochs lr out resume checkpoint_every metrics
    quiet =
  Obs.Trace.install_from_env ();
  (match metrics with
  | Some path -> at_exit (fun () -> Obs.Report.write path)
  | None -> ());
  (* SIGINT/SIGTERM are polled at each epoch boundary: the current
     weights and a progress-journal line are flushed so --resume picks
     up exactly where the signal landed, then we exit non-zero. *)
  Runtime.Shutdown.install ();
  let log fmt =
    Printf.ksprintf (fun s -> if not quiet then print_endline s) fmt
  in
  let start_epoch =
    if resume && Sys.file_exists out then (
      match last_completed_epoch out with
      | Some e -> e + 1
      | None -> 0)
    else 0
  in
  if (not resume) || start_epoch = 0 then begin
    (* Fresh run: stale progress or backup files must not leak into
       this run's resume state. *)
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ progress_path out ]
  end;
  if start_epoch >= epochs then begin
    log "training already complete (%d epochs recorded in %s)" epochs
      (progress_path out);
    exit 0
  end;
  log "generating + labelling dataset (seed %d, %d per year) ..." seed per_year;
  let progress s = if not quiet then print_endline s in
  let data = Experiments.Data.prepare ~seed ~per_year ~budget ~progress () in
  log "train %d (%d positive), test %d (%d positive)"
    (List.length data.Experiments.Data.train)
    (Experiments.Data.positives data.Experiments.Data.train)
    (List.length data.Experiments.Data.test)
    (Experiments.Data.positives data.Experiments.Data.test);
  let model = Core.Model.create Core.Model.paper_config in
  let start_epoch =
    if start_epoch = 0 then 0
    else
      match Core.Model.load_result out model with
      | Ok Nn.Checkpoint.Primary ->
        log "resuming from %s at epoch %d" out start_epoch;
        start_epoch
      | Ok Nn.Checkpoint.Backup ->
        log "primary checkpoint corrupt; resuming from %s at epoch %d"
          (Nn.Checkpoint.backup_path out)
          start_epoch;
        start_epoch
      | Error e ->
        log "cannot resume (%s); restarting from epoch 0"
          (Runtime.Error.to_string e);
        0
  in
  log "model parameters: %d" (Core.Model.num_parameters model);
  let train_progress ~epoch ~loss =
    if (not quiet) && epoch mod 5 = 0 then
      Printf.printf "epoch %3d  mean BCE %.4f\n%!" epoch loss
  in
  let write_checkpoint ~epoch ~loss =
    Core.Model.save out model;
    ignore
      (Runtime.Journal.append (progress_path out)
         [ ("epoch", Runtime.Journal.Int epoch);
           ("loss", Runtime.Journal.Float loss) ])
  in
  let on_epoch ~epoch ~loss =
    let scheduled =
      (epoch + 1) mod checkpoint_every = 0 || epoch = epochs - 1
    in
    if Runtime.Shutdown.requested () then begin
      (* Always flush on shutdown, even off the checkpoint schedule:
         the journal tail and weights must reflect this epoch. *)
      write_checkpoint ~epoch ~loss;
      log "interrupted at epoch %d: checkpoint and journal flushed to %s" epoch
        out;
      exit (Runtime.Shutdown.exit_code ())
    end;
    if scheduled then write_checkpoint ~epoch ~loss
  in
  let history =
    Core.Trainer.train ~epochs ~lr ~start_epoch ~on_epoch ~progress:train_progress
      model
      (Experiments.Data.examples data.Experiments.Data.train)
  in
  if history.Core.Trainer.skipped_steps > 0 then
    log "divergence guard: skipped %d step(s), %d learning-rate backoff(s)"
      history.Core.Trainer.skipped_steps history.Core.Trainer.lr_backoffs;
  let report split name =
    let r = Core.Trainer.evaluate model (Experiments.Data.examples split) in
    log "%s: %s" name (Format.asprintf "%a" Core.Metrics.pp_report r)
  in
  report data.Experiments.Data.train "train";
  report data.Experiments.Data.test "test ";
  Core.Model.save out model;
  log "checkpoint written to %s" out

open Cmdliner

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED")
let per_year = Arg.(value & opt int 16 & info [ "per-year" ] ~docv:"N")
let budget = Arg.(value & opt int 800_000 & info [ "budget" ] ~docv:"PROPS")
let epochs = Arg.(value & opt int 60 & info [ "epochs" ] ~docv:"N")
let lr = Arg.(value & opt float 3e-3 & info [ "lr" ] ~docv:"LR")

let out =
  Arg.(value & opt string "neuroselect.ckpt" & info [ "out"; "o" ] ~docv:"FILE")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Restart from the last completed epoch recorded in FILE.progress, \
           loading FILE (or its .bak last-good copy when FILE is corrupt).")

let checkpoint_every =
  Arg.(
    value & opt int 1
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Write the checkpoint and progress journal every N epochs.")

let metrics =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Dump an ns.metrics/1 JSON snapshot (per-layer forward times, \
           backward/step times, gradient-clip events, labelling-solver \
           counters) to FILE on exit.")

let quiet = Arg.(value & flag & info [ "quiet"; "q" ])

let cmd =
  let doc = "train the NeuroSelect clause-deletion policy classifier" in
  Cmd.v
    (Cmd.info "ns-train" ~doc)
    Term.(
      const run $ seed $ per_year $ budget $ epochs $ lr $ out $ resume
      $ checkpoint_every $ metrics $ quiet)

let () = exit (Cmd.eval cmd)

test/test_util.ml: Alcotest Array Float Fun Gen List Printf QCheck QCheck_alcotest Util

test/test_baselines.ml: Alcotest Array Baselines Cnf Float Gen List Nn Satgraph Tensor Util

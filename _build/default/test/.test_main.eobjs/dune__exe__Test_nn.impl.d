test/test_nn.ml: Alcotest Array Filename Float Fun List Nn Sys Tensor Util

test/test_experiments.ml: Alcotest Array Cdcl Core Experiments Format Gen List

test/test_gen.ml: Alcotest Array Cdcl Cnf Gen List Printf Util

test/test_graph.ml: Alcotest Array Cnf Gen List Option QCheck QCheck_alcotest Satgraph Tensor Util

test/test_cnf.ml: Alcotest Array Cdcl Cnf Filename Fun Gen List Printf QCheck QCheck_alcotest Sys Util

test/test_simplify.ml: Alcotest Array Cdcl Cnf Gen List QCheck QCheck_alcotest Util

test/test_cdcl.ml: Alcotest Array Cdcl Cnf Format Gen List QCheck QCheck_alcotest String Util

test/test_tensor.ml: Alcotest Array Float List QCheck QCheck_alcotest Tensor Util

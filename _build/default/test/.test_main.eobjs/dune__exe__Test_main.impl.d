test/test_main.ml: Alcotest Test_baselines Test_cdcl Test_cnf Test_core Test_experiments Test_gen Test_graph Test_nn Test_simplify Test_tensor Test_util

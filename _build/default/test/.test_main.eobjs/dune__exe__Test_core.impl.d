test/test_core.ml: Alcotest Array Cdcl Cnf Core Filename Float Fun Gen List Nn Printf Satgraph Sys Tensor Util

(* Tests for the dense matrix library. *)

module Mat = Tensor.Mat

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let m23 = Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |]
let m32 = Mat.of_arrays [| [| 7.0; 8.0 |]; [| 9.0; 10.0 |]; [| 11.0; 12.0 |] |]

let test_shapes () =
  checki "rows" 2 (Mat.rows m23);
  checki "cols" 3 (Mat.cols m23);
  checkb "shape" true (Mat.shape m23 = (2, 3))

let test_get_set_bounds () =
  let m = Mat.copy m23 in
  Mat.set m 1 2 99.0;
  checkf "set/get" 99.0 (Mat.get m 1 2);
  Alcotest.check_raises "oob" (Invalid_argument "Mat.get") (fun () ->
      ignore (Mat.get m 2 0))

let test_of_arrays_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged")
    (fun () -> ignore (Mat.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_matmul_known () =
  let p = Mat.matmul m23 m32 in
  (* [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154] *)
  checkf "p00" 58.0 (Mat.get p 0 0);
  checkf "p01" 64.0 (Mat.get p 0 1);
  checkf "p10" 139.0 (Mat.get p 1 0);
  checkf "p11" 154.0 (Mat.get p 1 1)

let test_matmul_shape_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Mat.matmul: 2x3 * 2x3")
    (fun () -> ignore (Mat.matmul m23 m23))

let test_matmul_transpose_variants () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let b = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let expected_ta = Mat.matmul (Mat.transpose a) b in
  checkb "matmul_ta" true (Mat.approx_equal (Mat.matmul_transpose_a a b) expected_ta);
  let c = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let d = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let expected_tb = Mat.matmul c (Mat.transpose d) in
  checkb "matmul_tb" true (Mat.approx_equal (Mat.matmul_transpose_b c d) expected_tb)

let test_transpose_involution () =
  checkb "transpose twice" true (Mat.approx_equal m23 (Mat.transpose (Mat.transpose m23)))

let test_elementwise () =
  let s = Mat.add m23 m23 in
  checkf "add" 2.0 (Mat.get s 0 0);
  let d = Mat.sub s m23 in
  checkb "sub identity" true (Mat.approx_equal d m23);
  let h = Mat.mul m23 m23 in
  checkf "hadamard" 36.0 (Mat.get h 1 2);
  let sc = Mat.scale 2.0 m23 in
  checkf "scale" 12.0 (Mat.get sc 1 2);
  let mp = Mat.map (fun x -> -.x) m23 in
  checkf "map" (-3.0) (Mat.get mp 0 2)

let test_add_in_place () =
  let acc = Mat.zeros 2 3 in
  Mat.add_in_place acc m23;
  Mat.add_in_place acc m23;
  checkb "accumulated twice" true (Mat.approx_equal acc (Mat.scale 2.0 m23))

let test_reductions () =
  checkf "sum" 21.0 (Mat.sum m23);
  checkf "mean" 3.5 (Mat.mean m23);
  checkf "frobenius" (sqrt 91.0) (Mat.frobenius_norm m23);
  let cm = Mat.col_means m23 in
  checkf "col mean 0" 2.5 (Mat.get cm 0 0);
  checkf "col mean 2" 4.5 (Mat.get cm 0 2);
  let rs = Mat.row_sums m23 in
  checkf "row sum 0" 6.0 (Mat.get rs 0 0);
  checkf "row sum 1" 15.0 (Mat.get rs 1 0)

let test_row_extraction () =
  Alcotest.(check (array (float 1e-9))) "row 1" [| 4.0; 5.0; 6.0 |] (Mat.row m23 1)

let test_xavier_range () =
  let rng = Util.Rng.create 5 in
  let w = Mat.xavier rng 10 20 in
  let bound = sqrt (6.0 /. 30.0) in
  checkb "entries within glorot bound" true
    (Array.for_all (fun x -> Float.abs x <= bound) (Mat.row w 0))

let test_row_vector () =
  let v = Mat.row_vector [| 1.0; 2.0 |] in
  checki "1 row" 1 (Mat.rows v);
  checki "2 cols" 2 (Mat.cols v)

let prop_matmul_assoc_with_vector =
  QCheck.Test.make ~name:"(AB)x = A(Bx)" ~count:50 QCheck.small_int (fun seed ->
      let rng = Util.Rng.create seed in
      let a = Mat.random_uniform rng 4 3 1.0 in
      let b = Mat.random_uniform rng 3 5 1.0 in
      let x = Mat.random_uniform rng 5 1 1.0 in
      Mat.approx_equal ~eps:1e-6
        (Mat.matmul (Mat.matmul a b) x)
        (Mat.matmul a (Mat.matmul b x)))

let prop_frobenius_scale =
  QCheck.Test.make ~name:"||cX|| = |c| ||X||" ~count:50
    QCheck.(pair small_int (float_range (-3.0) 3.0))
    (fun (seed, c) ->
      let rng = Util.Rng.create seed in
      let x = Mat.random_uniform rng 3 4 1.0 in
      Float.abs
        (Mat.frobenius_norm (Mat.scale c x) -. (Float.abs c *. Mat.frobenius_norm x))
      < 1e-6)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_matmul_assoc_with_vector; prop_frobenius_scale ]

let suite =
  [
    Alcotest.test_case "shapes" `Quick test_shapes;
    Alcotest.test_case "get/set bounds" `Quick test_get_set_bounds;
    Alcotest.test_case "ragged input" `Quick test_of_arrays_ragged;
    Alcotest.test_case "matmul known" `Quick test_matmul_known;
    Alcotest.test_case "matmul mismatch" `Quick test_matmul_shape_mismatch;
    Alcotest.test_case "matmul transpose variants" `Quick test_matmul_transpose_variants;
    Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
    Alcotest.test_case "elementwise ops" `Quick test_elementwise;
    Alcotest.test_case "add in place" `Quick test_add_in_place;
    Alcotest.test_case "reductions" `Quick test_reductions;
    Alcotest.test_case "row extraction" `Quick test_row_extraction;
    Alcotest.test_case "xavier range" `Quick test_xavier_range;
    Alcotest.test_case "row vector" `Quick test_row_vector;
  ]
  @ qcheck_tests

(* Tests for the instance generators and the year-structured dataset. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let solve f = fst (Cdcl.Solver.solve_formula f)

let is_unsat f = solve f = Cdcl.Solver.Unsat

let is_sat f =
  match solve f with
  | Cdcl.Solver.Sat m -> Cdcl.Solver.check_model f m
  | Cdcl.Solver.Unsat | Cdcl.Solver.Unknown -> false

(* --- ksat --- *)

let test_ksat_shape () =
  let rng = Util.Rng.create 1 in
  let f = Gen.Ksat.generate rng ~num_vars:20 ~num_clauses:50 ~k:3 in
  checki "vars" 20 (Cnf.Formula.num_vars f);
  checki "clauses" 50 (Cnf.Formula.num_clauses f);
  checki "literals" 150 (Cnf.Formula.num_literals f);
  (* every clause has 3 distinct variables *)
  Cnf.Formula.iter_clauses
    (fun c ->
      let vars = List.sort_uniq compare (Array.to_list (Array.map Cnf.Lit.var c)) in
      checki "distinct vars per clause" 3 (List.length vars))
    f

let test_ksat_determinism () =
  let f1 = Gen.Ksat.generate (Util.Rng.create 9) ~num_vars:10 ~num_clauses:20 ~k:3 in
  let f2 = Gen.Ksat.generate (Util.Rng.create 9) ~num_vars:10 ~num_clauses:20 ~k:3 in
  checkb "same seed same formula" true
    (Cnf.Dimacs.to_string f1 = Cnf.Dimacs.to_string f2)

let test_ksat_invalid () =
  Alcotest.check_raises "k > n" (Invalid_argument "Ksat.generate: bad k") (fun () ->
      ignore (Gen.Ksat.generate (Util.Rng.create 1) ~num_vars:2 ~num_clauses:1 ~k:3))

let test_ksat_underconstrained_sat () =
  (* ratio 1.0 is essentially always SAT *)
  let rng = Util.Rng.create 2 in
  checkb "sparse 3sat sat" true
    (is_sat (Gen.Ksat.generate rng ~num_vars:40 ~num_clauses:40 ~k:3))

let test_ksat_overconstrained_unsat () =
  (* ratio 10 is essentially always UNSAT *)
  let rng = Util.Rng.create 3 in
  checkb "dense 3sat unsat" true
    (is_unsat (Gen.Ksat.generate rng ~num_vars:20 ~num_clauses:200 ~k:3))

(* --- pigeonhole --- *)

let test_php_unsat_when_overfull () = checkb "PHP(5,4)" true (is_unsat (Gen.Pigeonhole.unsat 4))

let test_php_sat_when_fits () =
  checkb "PHP(4,5)" true (is_sat (Gen.Pigeonhole.generate ~pigeons:4 ~holes:5))

let test_php_clause_counts () =
  let f = Gen.Pigeonhole.generate ~pigeons:3 ~holes:2 in
  (* 3 at-least-one clauses + 2 holes * C(3,2) pair clauses = 3 + 6. *)
  checki "clauses" 9 (Cnf.Formula.num_clauses f);
  checki "vars" 6 (Cnf.Formula.num_vars f)

(* --- coloring --- *)

let test_coloring_triangle_2colors_unsat () =
  (* A triangle cannot be 2-coloured: use edge_prob 1 on 3 vertices. *)
  let rng = Util.Rng.create 4 in
  checkb "triangle 2-col unsat" true
    (is_unsat (Gen.Coloring.generate rng ~vertices:3 ~edge_prob:1.1 ~colors:2))

let test_coloring_triangle_3colors_sat () =
  let rng = Util.Rng.create 4 in
  checkb "triangle 3-col sat" true
    (is_sat (Gen.Coloring.generate rng ~vertices:3 ~edge_prob:1.1 ~colors:3))

let test_coloring_empty_graph_sat () =
  let rng = Util.Rng.create 5 in
  checkb "no edges always colourable" true
    (is_sat (Gen.Coloring.generate rng ~vertices:10 ~edge_prob:0.0 ~colors:1))

(* --- parity --- *)

let test_parity_contradiction_unsat () =
  List.iter
    (fun n ->
      let rng = Util.Rng.create (100 + n) in
      checkb
        (Printf.sprintf "parity contradiction n=%d" n)
        true
        (is_unsat (Gen.Parity.contradiction rng ~num_vars:n)))
    [ 1; 2; 5; 10 ]

let test_parity_chain_sat_and_correct () =
  let rng = Util.Rng.create 6 in
  let f = Gen.Parity.chain rng ~num_vars:7 ~target:true in
  match Cdcl.Solver.solve_formula f with
  | Cdcl.Solver.Sat m, _ ->
    (* The model's parity over the original 7 variables must be odd. *)
    let parity = ref false in
    for v = 1 to 7 do
      if m.(v) then parity := not !parity
    done;
    checkb "parity odd" true !parity
  | _ -> Alcotest.fail "parity chain target=true is SAT"

let test_parity_chain_false_target () =
  let rng = Util.Rng.create 7 in
  let f = Gen.Parity.chain rng ~num_vars:6 ~target:false in
  match Cdcl.Solver.solve_formula f with
  | Cdcl.Solver.Sat m, _ ->
    let parity = ref false in
    for v = 1 to 6 do
      if m.(v) then parity := not !parity
    done;
    checkb "parity even" false !parity
  | _ -> Alcotest.fail "parity chain target=false is SAT"

(* --- circuits --- *)

let test_adder_miter_unsat () =
  checkb "adder equivalence" true (is_unsat (Gen.Circuits.adder_miter 6))

let test_adder_miter_faulty_sat () =
  checkb "faulty adder differs" true (is_sat (Gen.Circuits.adder_miter ~faulty:true 6))

let test_multiplier_miter_unsat () =
  checkb "multiplier equivalence" true (is_unsat (Gen.Circuits.multiplier_miter 3))

let test_multiplier_miter_faulty_sat () =
  checkb "faulty multiplier differs" true
    (is_sat (Gen.Circuits.multiplier_miter ~faulty:true 3))

(* --- dataset --- *)

let test_dataset_split_structure () =
  let split = Gen.Dataset.generate ~seed:1 ~per_year:8 () in
  checki "train years x per_year" 48 (List.length split.Gen.Dataset.train);
  checki "test size" 8 (List.length split.Gen.Dataset.test);
  List.iter
    (fun (i : Gen.Dataset.instance) ->
      checkb "train years" true (List.mem i.year Gen.Dataset.years_train))
    split.Gen.Dataset.train;
  List.iter
    (fun (i : Gen.Dataset.instance) -> checki "test year" Gen.Dataset.year_test i.year)
    split.Gen.Dataset.test

let test_dataset_deterministic () =
  let s1 = Gen.Dataset.generate ~seed:5 ~per_year:4 () in
  let s2 = Gen.Dataset.generate ~seed:5 ~per_year:4 () in
  List.iter2
    (fun (a : Gen.Dataset.instance) (b : Gen.Dataset.instance) ->
      checkb "same name" true (a.name = b.name);
      checkb "same formula" true
        (Cnf.Dimacs.to_string a.formula = Cnf.Dimacs.to_string b.formula))
    s1.Gen.Dataset.train s2.Gen.Dataset.train

let test_dataset_family_mix () =
  let instances = Gen.Dataset.generate_year ~seed:3 ~per_year:16 2020 in
  let families =
    List.sort_uniq compare (List.map (fun (i : Gen.Dataset.instance) -> i.family) instances)
  in
  checkb "all six families present" true
    (List.for_all (fun f -> List.mem f families)
       [ "ksat"; "php"; "color"; "parity"; "adder"; "mult" ])

let test_dataset_stats () =
  let split = Gen.Dataset.generate ~seed:2 ~per_year:4 () in
  let rows = Gen.Dataset.stats (split.Gen.Dataset.train @ split.Gen.Dataset.test) in
  checki "seven year rows" 7 (List.length rows);
  List.iter
    (fun (r : Gen.Dataset.year_stats) ->
      checki "count per year" 4 r.Gen.Dataset.num_cnfs;
      checkb "positive sizes" true (r.Gen.Dataset.mean_vars > 0.0))
    rows

let suite =
  [
    Alcotest.test_case "ksat shape" `Quick test_ksat_shape;
    Alcotest.test_case "ksat determinism" `Quick test_ksat_determinism;
    Alcotest.test_case "ksat invalid" `Quick test_ksat_invalid;
    Alcotest.test_case "ksat underconstrained sat" `Quick test_ksat_underconstrained_sat;
    Alcotest.test_case "ksat overconstrained unsat" `Quick test_ksat_overconstrained_unsat;
    Alcotest.test_case "php unsat" `Quick test_php_unsat_when_overfull;
    Alcotest.test_case "php sat" `Quick test_php_sat_when_fits;
    Alcotest.test_case "php clause counts" `Quick test_php_clause_counts;
    Alcotest.test_case "coloring triangle 2col" `Quick test_coloring_triangle_2colors_unsat;
    Alcotest.test_case "coloring triangle 3col" `Quick test_coloring_triangle_3colors_sat;
    Alcotest.test_case "coloring empty graph" `Quick test_coloring_empty_graph_sat;
    Alcotest.test_case "parity contradiction unsat" `Quick test_parity_contradiction_unsat;
    Alcotest.test_case "parity chain sat" `Quick test_parity_chain_sat_and_correct;
    Alcotest.test_case "parity chain false target" `Quick test_parity_chain_false_target;
    Alcotest.test_case "adder miter unsat" `Quick test_adder_miter_unsat;
    Alcotest.test_case "adder miter faulty sat" `Quick test_adder_miter_faulty_sat;
    Alcotest.test_case "multiplier miter unsat" `Quick test_multiplier_miter_unsat;
    Alcotest.test_case "multiplier miter faulty sat" `Quick test_multiplier_miter_faulty_sat;
    Alcotest.test_case "dataset split structure" `Quick test_dataset_split_structure;
    Alcotest.test_case "dataset deterministic" `Quick test_dataset_deterministic;
    Alcotest.test_case "dataset family mix" `Quick test_dataset_family_mix;
    Alcotest.test_case "dataset stats" `Quick test_dataset_stats;
  ]

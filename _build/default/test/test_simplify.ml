(* Tests for CNF preprocessing: unit propagation, pure literals,
   subsumption, strengthening, and model extension. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let brute_force_sat f =
  let n = Cnf.Formula.num_vars f in
  assert (n <= 16);
  let assignment = Array.make (n + 1) false in
  let rec go v =
    if v > n then Cnf.Formula.eval f assignment
    else begin
      assignment.(v) <- false;
      go (v + 1)
      ||
      (assignment.(v) <- true;
       go (v + 1))
    end
  in
  go 1

let simplified f =
  match Cnf.Simplify.simplify f with
  | Cnf.Simplify.Simplified r -> r
  | Cnf.Simplify.Proved_unsat -> Alcotest.fail "unexpected UNSAT"

let test_unit_propagation_chain () =
  let f =
    Cnf.Formula.of_dimacs_lists ~num_vars:4 [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ]; [ -3; 4 ] ]
  in
  let r = simplified f in
  checki "all clauses consumed" 0 (Cnf.Formula.num_clauses r.Cnf.Simplify.formula);
  checki "four forced" 4 r.Cnf.Simplify.stats.Cnf.Simplify.forced_units;
  let model = Cnf.Simplify.extend_model r (Array.make 5 false) in
  checkb "original satisfied" true (Cnf.Formula.eval f model)

let test_unit_conflict_unsat () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:2 [ [ 1 ]; [ -1; 2 ]; [ -2 ] ] in
  checkb "proved unsat" true (Cnf.Simplify.simplify f = Cnf.Simplify.Proved_unsat)

let test_pure_literal () =
  (* x3 occurs only positively: eliminated, its clauses removed. *)
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1; 3 ]; [ -1; 3 ]; [ 1; -2 ] ] in
  let r = simplified f in
  checkb "pure literal recorded" true
    (List.exists (fun (v, b) -> v = 3 && b) r.Cnf.Simplify.pure);
  checkb "pure clauses removed" true
    (Cnf.Formula.num_clauses r.Cnf.Simplify.formula <= 1)

let test_subsumption () =
  (* [1] cannot appear (unit would be forced); use [1;2] subsuming [1;2;3]. *)
  let f =
    Cnf.Formula.of_dimacs_lists ~num_vars:4 [ [ 1; 2 ]; [ 1; 2; 3 ]; [ 1; 2; 3; 4 ]; [ -1; -2 ] ]
  in
  let r = simplified f in
  checkb "subsumed clauses dropped" true
    (r.Cnf.Simplify.stats.Cnf.Simplify.subsumed_clauses >= 2)

let test_strengthening () =
  (* (1 2) and (-1 2 3): self-subsuming resolution on 1 strengthens the
     second clause to (2 3). *)
  let f =
    Cnf.Formula.of_dimacs_lists ~num_vars:4 [ [ 1; 2 ]; [ -1; 2; 3 ]; [ -2; 4 ]; [ -4; -2; 1 ] ]
  in
  let r = simplified f in
  checkb "strengthened" true (r.Cnf.Simplify.stats.Cnf.Simplify.strengthened_literals >= 1)

let test_tautology_removed () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:2 [ [ 1; -1 ]; [ 2; 2; -1 ] ] in
  let r = simplified f in
  (* Tautology dropped; the deduped (2 -1) clause is then consumed by
     pure-literal elimination, leaving nothing. *)
  checki "everything consumed" 0 (Cnf.Formula.num_clauses r.Cnf.Simplify.formula);
  checkb "pure literals recorded" true (r.Cnf.Simplify.pure <> []);
  let model = Cnf.Simplify.extend_model r (Array.make 3 false) in
  checkb "extended model satisfies original" true (Cnf.Formula.eval f model)

let test_idempotent () =
  let rng = Util.Rng.create 5 in
  let f = Gen.Ksat.generate rng ~num_vars:12 ~num_clauses:40 ~k:3 in
  let r1 = simplified f in
  let r2 = simplified r1.Cnf.Simplify.formula in
  checki "second pass finds nothing new" 0
    (r2.Cnf.Simplify.stats.Cnf.Simplify.forced_units
    + r2.Cnf.Simplify.stats.Cnf.Simplify.pure_literals
    + r2.Cnf.Simplify.stats.Cnf.Simplify.subsumed_clauses
    + r2.Cnf.Simplify.stats.Cnf.Simplify.strengthened_literals)

let prop_equisatisfiable =
  QCheck.Test.make ~name:"simplify preserves satisfiability" ~count:150
    QCheck.(pair small_int (int_range 5 50))
    (fun (seed, m) ->
      let rng = Util.Rng.create seed in
      let f = Gen.Ksat.generate rng ~num_vars:10 ~num_clauses:m ~k:3 in
      let before = brute_force_sat f in
      match Cnf.Simplify.simplify f with
      | Cnf.Simplify.Proved_unsat -> not before
      | Cnf.Simplify.Simplified r -> brute_force_sat r.Cnf.Simplify.formula = before)

let prop_extended_model_satisfies_original =
  QCheck.Test.make ~name:"extended solver model satisfies the original" ~count:100
    QCheck.(pair small_int (int_range 5 40))
    (fun (seed, m) ->
      let rng = Util.Rng.create (seed + 7777) in
      let f = Gen.Ksat.generate rng ~num_vars:10 ~num_clauses:m ~k:3 in
      match Cnf.Simplify.simplify f with
      | Cnf.Simplify.Proved_unsat -> fst (Cdcl.Solver.solve_formula f) = Cdcl.Solver.Unsat
      | Cnf.Simplify.Simplified r -> begin
        match Cdcl.Solver.solve_formula r.Cnf.Simplify.formula with
        | Cdcl.Solver.Sat model, _ ->
          Cnf.Formula.eval f (Cnf.Simplify.extend_model r model)
        | Cdcl.Solver.Unsat, _ -> fst (Cdcl.Solver.solve_formula f) = Cdcl.Solver.Unsat
        | Cdcl.Solver.Unknown, _ -> false
      end)

let prop_mixed_lengths_equisatisfiable =
  QCheck.Test.make ~name:"simplify on mixed clause lengths" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Util.Rng.create (seed + 31) in
      let b = Cnf.Formula.Builder.create () in
      Cnf.Formula.Builder.ensure_vars b 9;
      for _ = 1 to 30 do
        let k = Util.Rng.int_in rng 1 4 in
        let vars = Util.Rng.sample_distinct rng k 9 in
        Cnf.Formula.Builder.add_clause b
          (Array.to_list
             (Array.map (fun v -> Cnf.Lit.make (v + 1) (Util.Rng.bool rng)) vars))
      done;
      let f = Cnf.Formula.Builder.build b in
      let before = brute_force_sat f in
      match Cnf.Simplify.simplify f with
      | Cnf.Simplify.Proved_unsat -> not before
      | Cnf.Simplify.Simplified r -> brute_force_sat r.Cnf.Simplify.formula = before)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_equisatisfiable;
      prop_extended_model_satisfies_original;
      prop_mixed_lengths_equisatisfiable;
    ]

let suite =
  [
    Alcotest.test_case "unit propagation chain" `Quick test_unit_propagation_chain;
    Alcotest.test_case "unit conflict unsat" `Quick test_unit_conflict_unsat;
    Alcotest.test_case "pure literal" `Quick test_pure_literal;
    Alcotest.test_case "subsumption" `Quick test_subsumption;
    Alcotest.test_case "strengthening" `Quick test_strengthening;
    Alcotest.test_case "tautology removed" `Quick test_tautology_removed;
    Alcotest.test_case "idempotent" `Quick test_idempotent;
  ]
  @ qcheck_tests

(* Tests for the util library: RNG, vectors, stats, Luby, EMA. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    checkb "same stream" true (Util.Rng.bits64 a = Util.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  checkb "different seeds differ" false (Util.Rng.bits64 a = Util.Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Util.Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Util.Rng.int rng 10 in
    checkb "in [0,10)" true (x >= 0 && x < 10)
  done

let test_rng_int_in_bounds () =
  let rng = Util.Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Util.Rng.int_in rng (-5) 5 in
    checkb "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_rng_float_bounds () =
  let rng = Util.Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Util.Rng.float rng 2.5 in
    checkb "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_rng_int_coverage () =
  (* Every residue of a small modulus is hit. *)
  let rng = Util.Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Util.Rng.int rng 5) <- true
  done;
  checkb "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_gaussian_moments () =
  let rng = Util.Rng.create 12 in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Util.Rng.gaussian rng in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  checkb "mean near 0" true (Float.abs mean < 0.05);
  checkb "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_rng_split_independent () =
  let a = Util.Rng.create 5 in
  let b = Util.Rng.split a in
  checkb "split streams differ" false (Util.Rng.bits64 a = Util.Rng.bits64 b)

let test_rng_copy () =
  let a = Util.Rng.create 5 in
  ignore (Util.Rng.bits64 a);
  let b = Util.Rng.copy a in
  checkb "copy continues identically" true (Util.Rng.bits64 a = Util.Rng.bits64 b)

let test_rng_shuffle_permutation () =
  let rng = Util.Rng.create 6 in
  let arr = Array.init 50 Fun.id in
  Util.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_distinct () =
  let rng = Util.Rng.create 10 in
  let s = Util.Rng.sample_distinct rng 10 20 in
  checki "size" 10 (Array.length s);
  let uniq = List.sort_uniq compare (Array.to_list s) in
  checki "distinct" 10 (List.length uniq);
  List.iter (fun x -> checkb "in range" true (x >= 0 && x < 20)) uniq;
  (* Dense case path: k close to bound. *)
  let d = Util.Rng.sample_distinct rng 19 20 in
  checki "dense distinct" 19 (List.length (List.sort_uniq compare (Array.to_list d)))

(* --- Vec --- *)

let test_vec_push_pop () =
  let v = Util.Vec.create ~dummy:0 () in
  checkb "empty" true (Util.Vec.is_empty v);
  for i = 1 to 100 do
    Util.Vec.push v i
  done;
  checki "length" 100 (Util.Vec.length v);
  checki "last" 100 (Util.Vec.last v);
  checki "pop" 100 (Util.Vec.pop v);
  checki "length after pop" 99 (Util.Vec.length v)

let test_vec_get_set () =
  let v = Util.Vec.make 5 "x" in
  Util.Vec.set v 2 "y";
  check Alcotest.string "set/get" "y" (Util.Vec.get v 2);
  Alcotest.check_raises "oob get" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Util.Vec.get v 5))

let test_vec_shrink_clear () =
  let v = Util.Vec.of_array ~dummy:0 [| 1; 2; 3; 4; 5 |] in
  Util.Vec.shrink v 3;
  checki "shrunk" 3 (Util.Vec.length v);
  Alcotest.(check (list int)) "contents" [ 1; 2; 3 ] (Util.Vec.to_list v);
  Util.Vec.clear v;
  checki "cleared" 0 (Util.Vec.length v)

let test_vec_swap_remove () =
  let v = Util.Vec.of_array ~dummy:0 [| 1; 2; 3; 4 |] in
  Util.Vec.swap_remove v 1;
  Alcotest.(check (list int)) "swap removed" [ 1; 4; 3 ] (Util.Vec.to_list v)

let test_vec_filter_in_place () =
  let v = Util.Vec.of_array ~dummy:0 [| 1; 2; 3; 4; 5; 6 |] in
  Util.Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens kept in order" [ 2; 4; 6 ] (Util.Vec.to_list v)

let test_vec_sort_fold () =
  let v = Util.Vec.of_array ~dummy:0 [| 3; 1; 2 |] in
  Util.Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Util.Vec.to_list v);
  checki "fold sum" 6 (Util.Vec.fold ( + ) 0 v);
  checkb "exists" true (Util.Vec.exists (fun x -> x = 2) v);
  checkb "not exists" false (Util.Vec.exists (fun x -> x = 9) v)

let test_vec_pop_empty () =
  let v = Util.Vec.create ~dummy:0 () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Util.Vec.pop v))

let test_vec_growth () =
  let v = Util.Vec.create ~capacity:1 ~dummy:(-1) () in
  for i = 0 to 999 do
    Util.Vec.push v i
  done;
  checki "grows" 1000 (Util.Vec.length v);
  checki "element survives growth" 123 (Util.Vec.get v 123)

(* --- Stats --- *)

let test_stats_mean_var () =
  checkf "mean" 2.5 (Util.Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "mean empty" 0.0 (Util.Stats.mean [||]);
  checkf "variance" 1.25 (Util.Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "stddev" (sqrt 1.25) (Util.Stats.stddev [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_median_percentile () =
  checkf "median odd" 2.0 (Util.Stats.median [| 3.0; 1.0; 2.0 |]);
  checkf "median even" 2.5 (Util.Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  checkf "p0" 1.0 (Util.Stats.percentile [| 1.0; 2.0; 3.0 |] 0.0);
  checkf "p100" 3.0 (Util.Stats.percentile [| 1.0; 2.0; 3.0 |] 100.0);
  checkf "p25 interp" 1.75 (Util.Stats.percentile [| 1.0; 2.0; 3.0; 4.0 |] 25.0)

let test_stats_min_max () =
  let lo, hi = Util.Stats.min_max [| 3.0; -1.0; 2.0 |] in
  checkf "min" (-1.0) lo;
  checkf "max" 3.0 hi

let test_stats_box () =
  let b = Util.Stats.box_summary [| 1.0; 2.0; 3.0; 4.0; 5.0; 100.0 |] in
  checkb "outlier detected" true (Array.length b.Util.Stats.outliers = 1);
  checkf "outlier value" 100.0 b.Util.Stats.outliers.(0);
  checkb "whisker below fence" true (b.Util.Stats.high_whisker <= 5.0)

let test_stats_histogram () =
  let h = Util.Stats.histogram ~bins:2 [| 0.0; 0.1; 0.9; 1.0 |] in
  checki "bins" 2 (Array.length h);
  checki "total count" 4 (Array.fold_left (fun a (_, c) -> a + c) 0 h)

(* --- Luby --- *)

let test_luby_sequence () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  List.iteri
    (fun i e -> checki (Printf.sprintf "term %d" (i + 1)) e (Util.Luby.term (i + 1)))
    expected

let test_luby_iterator () =
  let it = Util.Luby.create ~unit:100 in
  checki "1st" 100 (Util.Luby.next it);
  checki "2nd" 100 (Util.Luby.next it);
  checki "3rd" 200 (Util.Luby.next it)

(* --- Ema --- *)

let test_ema_constant_stream () =
  let e = Util.Ema.create ~alpha:0.1 in
  for _ = 1 to 50 do
    Util.Ema.update e 3.0
  done;
  checkf "converges to constant" 3.0 (Util.Ema.value e)

let test_ema_warmup_unbiased () =
  let e = Util.Ema.create ~alpha:0.01 in
  Util.Ema.update e 10.0;
  (* A plain EMA initialised at 0 would report 0.1 here. *)
  checkf "bias-corrected first value" 10.0 (Util.Ema.value e)

let test_ema_empty () =
  let e = Util.Ema.create ~alpha:0.5 in
  checkf "zero before updates" 0.0 (Util.Ema.value e);
  checki "count" 0 (Util.Ema.count e)

(* --- qcheck properties --- *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 20) (float_range (-100.) 100.))
              (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (xs <> []);
      let arr = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Util.Stats.percentile arr lo <= Util.Stats.percentile arr hi +. 1e-9)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let rng = Util.Rng.create seed in
      let arr = Array.of_list xs in
      let before = List.sort compare (Array.to_list arr) in
      Util.Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = before)

let prop_luby_power_of_two =
  QCheck.Test.make ~name:"luby terms are powers of two" ~count:100
    QCheck.(int_range 1 500)
    (fun i ->
      let t = Util.Luby.term i in
      t > 0 && t land (t - 1) = 0)

let prop_vec_push_then_to_list =
  QCheck.Test.make ~name:"vec push order preserved" ~count:200
    QCheck.(small_list int)
    (fun xs ->
      let v = Util.Vec.create ~dummy:0 () in
      List.iter (Util.Vec.push v) xs;
      Util.Vec.to_list v = xs)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_percentile_monotone;
      prop_shuffle_preserves_multiset;
      prop_luby_power_of_two;
      prop_vec_push_then_to_list;
    ]

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int_in bounds" `Quick test_rng_int_in_bounds;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng int coverage" `Quick test_rng_int_coverage;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng sample distinct" `Quick test_rng_sample_distinct;
    Alcotest.test_case "vec push/pop" `Quick test_vec_push_pop;
    Alcotest.test_case "vec get/set" `Quick test_vec_get_set;
    Alcotest.test_case "vec shrink/clear" `Quick test_vec_shrink_clear;
    Alcotest.test_case "vec swap_remove" `Quick test_vec_swap_remove;
    Alcotest.test_case "vec filter_in_place" `Quick test_vec_filter_in_place;
    Alcotest.test_case "vec sort/fold/exists" `Quick test_vec_sort_fold;
    Alcotest.test_case "vec pop empty" `Quick test_vec_pop_empty;
    Alcotest.test_case "vec growth" `Quick test_vec_growth;
    Alcotest.test_case "stats mean/var" `Quick test_stats_mean_var;
    Alcotest.test_case "stats median/percentile" `Quick test_stats_median_percentile;
    Alcotest.test_case "stats min/max" `Quick test_stats_min_max;
    Alcotest.test_case "stats box summary" `Quick test_stats_box;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "luby sequence" `Quick test_luby_sequence;
    Alcotest.test_case "luby iterator" `Quick test_luby_iterator;
    Alcotest.test_case "ema constant" `Quick test_ema_constant_stream;
    Alcotest.test_case "ema warmup" `Quick test_ema_warmup_unbiased;
    Alcotest.test_case "ema empty" `Quick test_ema_empty;
  ]
  @ qcheck_tests

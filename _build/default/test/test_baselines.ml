(* Tests for the Table 2 baseline classifiers. *)

module Mat = Tensor.Mat

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let formula =
  Cnf.Formula.of_dimacs_lists ~num_vars:4
    [ [ 1; -2 ]; [ 2; 3 ]; [ -1; -3; 4 ]; [ -4; 1 ] ]

let litgraph = Satgraph.Litgraph.of_formula formula
let bigraph = Satgraph.Bigraph.of_formula formula

let test_neurosat_predict_range () =
  let model = Baselines.Neurosat.create Baselines.Neurosat.default_config in
  let p = Baselines.Neurosat.predict model litgraph in
  checkb "probability" true (p > 0.0 && p < 1.0)

let test_neurosat_deterministic () =
  let m1 = Baselines.Neurosat.create Baselines.Neurosat.default_config in
  let m2 = Baselines.Neurosat.create Baselines.Neurosat.default_config in
  checkf "same seed" (Baselines.Neurosat.predict m1 litgraph)
    (Baselines.Neurosat.predict m2 litgraph)

let test_neurosat_rounds_affect_output () =
  let m1 =
    Baselines.Neurosat.create { Baselines.Neurosat.default_config with rounds = 1 }
  in
  let m2 =
    Baselines.Neurosat.create { Baselines.Neurosat.default_config with rounds = 4 }
  in
  checkb "more rounds change the output" true
    (Baselines.Neurosat.predict m1 litgraph <> Baselines.Neurosat.predict m2 litgraph)

let test_gin_predict_range () =
  let model = Baselines.Gin.create Baselines.Gin.default_config in
  let p = Baselines.Gin.predict model bigraph in
  checkb "probability" true (p > 0.0 && p < 1.0)

let test_gin_deterministic () =
  let m1 = Baselines.Gin.create Baselines.Gin.default_config in
  let m2 = Baselines.Gin.create Baselines.Gin.default_config in
  checkf "same seed" (Baselines.Gin.predict m1 bigraph) (Baselines.Gin.predict m2 bigraph)

let test_gin_epsilon_affects_output () =
  let m1 = Baselines.Gin.create { Baselines.Gin.default_config with epsilon = 0.0 } in
  let m2 = Baselines.Gin.create { Baselines.Gin.default_config with epsilon = 0.7 } in
  checkb "epsilon matters" true
    (Baselines.Gin.predict m1 bigraph <> Baselines.Gin.predict m2 bigraph)

let small_neurosat () =
  Baselines.Neurosat.create
    { Baselines.Neurosat.default_config with hidden_dim = 8; rounds = 3; head_hidden = 4 }

let small_gin () =
  Baselines.Gin.create
    { Baselines.Gin.default_config with hidden_dim = 8; layers = 1; head_hidden = 4 }

let separable_data to_graph =
  let rng = Util.Rng.create 71 in
  Array.init 8 (fun i ->
      if i < 4 then (to_graph (Gen.Parity.contradiction rng ~num_vars:(10 + i)), true)
      else (to_graph (Gen.Ksat.near_threshold rng ~num_vars:(50 + (4 * i))), false))

let test_neurosat_trains () =
  let model = small_neurosat () in
  let spec = Baselines.Neurosat.spec model in
  let data = separable_data Satgraph.Litgraph.of_formula in
  let history = Nn.Train.fit ~epochs:120 ~lr:5e-3 spec data in
  let losses = history.Nn.Train.epoch_losses in
  checkb "loss decreased" true
    (losses.(Array.length losses - 1) < losses.(0));
  let correct =
    Array.fold_left
      (fun acc (g, l) -> if Nn.Train.predict spec g = l then acc + 1 else acc)
      0 data
  in
  checkb "fits separable set" true (correct >= 7)

let test_gin_trains () =
  let model = small_gin () in
  let spec = Baselines.Gin.spec model in
  let data = separable_data Satgraph.Bigraph.of_formula in
  let history = Nn.Train.fit ~epochs:50 ~lr:5e-3 spec data in
  let losses = history.Nn.Train.epoch_losses in
  checkb "loss decreased" true (losses.(49) < losses.(0));
  let correct =
    Array.fold_left
      (fun acc (g, l) -> if Nn.Train.predict spec g = l then acc + 1 else acc)
      0 data
  in
  checkb "fits separable set" true (correct >= 7)

let suite =
  [
    Alcotest.test_case "neurosat predict range" `Quick test_neurosat_predict_range;
    Alcotest.test_case "neurosat deterministic" `Quick test_neurosat_deterministic;
    Alcotest.test_case "neurosat rounds matter" `Quick test_neurosat_rounds_affect_output;
    Alcotest.test_case "gin predict range" `Quick test_gin_predict_range;
    Alcotest.test_case "gin deterministic" `Quick test_gin_deterministic;
    Alcotest.test_case "gin epsilon matters" `Quick test_gin_epsilon_affects_output;
    Alcotest.test_case "neurosat trains" `Slow test_neurosat_trains;
    Alcotest.test_case "gin trains" `Slow test_gin_trains;
  ]

(* --- static features + logistic regression --- *)

let checki = Alcotest.(check int)

let test_features_dimension () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1; -2 ]; [ 2; 3 ] ] in
  let v = Cnf.Features.extract f in
  checki "dimension" Cnf.Features.dimension (Array.length v);
  checki "names match" Cnf.Features.dimension (Array.length Cnf.Features.names);
  checkb "all finite" true (Array.for_all Float.is_finite v)

let test_features_values () =
  let f = Cnf.Formula.of_dimacs_lists ~num_vars:4 [ [ 1; -2 ]; [ 2; 3; -4 ] ] in
  let v = Cnf.Features.extract f in
  let get name =
    let i = ref (-1) in
    Array.iteri (fun k n -> if n = name then i := k) Cnf.Features.names;
    v.(!i)
  in
  checkf "num_vars" 4.0 (get "num_vars");
  checkf "num_clauses" 2.0 (get "num_clauses");
  checkf "ratio" 0.5 (get "clause_var_ratio");
  checkf "mean len" 2.5 (get "mean_clause_len");
  checkf "min len" 2.0 (get "min_clause_len");
  checkf "max len" 3.0 (get "max_clause_len");
  checkf "frac binary" 0.5 (get "frac_binary");
  checkf "frac positive" 0.6 (get "frac_positive_lits")

let test_features_degenerate () =
  let empty = Cnf.Formula.of_dimacs_lists ~num_vars:0 [] in
  checkb "no NaNs on empty" true
    (Array.for_all Float.is_finite (Cnf.Features.extract empty))

let test_logreg_learns_separable () =
  (* php (many clauses/var) vs sparse ksat: trivially separable on
     static features. *)
  let rng = Util.Rng.create 8 in
  let data =
    Array.init 10 (fun i ->
        if i < 5 then (Gen.Pigeonhole.unsat (3 + (i mod 3)), true)
        else (Gen.Ksat.generate rng ~num_vars:40 ~num_clauses:60 ~k:3, false))
  in
  let model = Baselines.Logreg.create () in
  Baselines.Logreg.fit_normalisation model
    (Array.to_list (Array.map fst data));
  let spec = Baselines.Logreg.spec model in
  let _ = Nn.Train.fit ~epochs:100 ~lr:0.1 spec data in
  let correct =
    Array.fold_left
      (fun acc (f, l) -> if Nn.Train.predict spec f = l then acc + 1 else acc)
      0 data
  in
  checkb "separates php from sparse ksat" true (correct >= 9);
  checki "weights exposed" Cnf.Features.dimension
    (Array.length (Baselines.Logreg.weights model))

let test_logreg_normalisation () =
  let rng = Util.Rng.create 9 in
  let fs = List.init 5 (fun i -> Gen.Ksat.generate rng ~num_vars:(20 + i) ~num_clauses:50 ~k:3) in
  let model = Baselines.Logreg.create () in
  Baselines.Logreg.fit_normalisation model fs;
  let v = Baselines.Logreg.features model (List.nth fs 0) in
  checkb "normalised features bounded" true
    (Array.for_all (fun x -> Float.abs x < 100.0) v)

let suite =
  suite
  @ [
      Alcotest.test_case "features dimension" `Quick test_features_dimension;
      Alcotest.test_case "features values" `Quick test_features_values;
      Alcotest.test_case "features degenerate" `Quick test_features_degenerate;
      Alcotest.test_case "logreg learns separable" `Quick test_logreg_learns_separable;
      Alcotest.test_case "logreg normalisation" `Quick test_logreg_normalisation;
    ]

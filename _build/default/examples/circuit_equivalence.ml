(* Circuit equivalence checking — the EDA workload that motivates SAT
   in the paper's introduction. Two structurally different multiplier
   netlists are compared with a miter: UNSAT proves equivalence, and a
   deliberately injected fault yields a SAT counterexample that we
   decode back to circuit inputs.

   Run with: dune exec examples/circuit_equivalence.exe *)

let solve_print name formula =
  let result, stats = Cdcl.Solver.solve_formula formula in
  Format.printf "%-34s %6d vars %6d clauses -> " name
    (Cnf.Formula.num_vars formula)
    (Cnf.Formula.num_clauses formula);
  (match result with
  | Cdcl.Solver.Sat _ -> Format.printf "SAT (implementations DIFFER)"
  | Cdcl.Solver.Unsat -> Format.printf "UNSAT (proved equivalent)"
  | Cdcl.Solver.Unknown -> Format.printf "UNKNOWN");
  Format.printf "  [%d conflicts]@." stats.Cdcl.Solver_stats.conflicts;
  result

let () =
  Format.printf "== adder equivalence (ripple-carry vs mux-based) ==@.";
  ignore (solve_print "adder width 16" (Gen.Circuits.adder_miter 16));
  ignore (solve_print "adder width 16 (fault injected)"
            (Gen.Circuits.adder_miter ~faulty:true 16));

  Format.printf "@.== multiplier equivalence (shift-add vs Wallace) ==@.";
  ignore (solve_print "multiplier width 4" (Gen.Circuits.multiplier_miter 4));
  ignore (solve_print "multiplier width 4 (fault injected)"
            (Gen.Circuits.multiplier_miter ~faulty:true 4));

  (* Build a miter by hand to decode the counterexample. *)
  Format.printf "@.== counterexample extraction ==@.";
  let c = Cnf.Circuit.create () in
  let width = 4 in
  let xs = Cnf.Circuit.input_array c width in
  let ys = Cnf.Circuit.input_array c width in
  let good, _ = Cnf.Circuit.ripple_adder c xs ys in
  let bad =
    (* A "buggy" adder: drops the carry into bit 2. *)
    let sum = Array.copy good in
    sum.(2) <- Cnf.Circuit.xor_ c xs.(2) ys.(2);
    sum
  in
  let differ = Cnf.Circuit.miter c good bad in
  let formula, mapping = Cnf.Tseitin.encode c ~asserted:[ differ ] in
  match Cdcl.Solver.solve_formula formula with
  | Cdcl.Solver.Sat model, _ ->
    let inputs = Cnf.Tseitin.decode_inputs mapping model in
    let value off =
      let acc = ref 0 in
      for i = width - 1 downto 0 do
        acc := (2 * !acc) + if inputs.(off + i) then 1 else 0
      done;
      !acc
    in
    let a = value 0 and b = value width in
    Format.printf "buggy adder differs on a=%d, b=%d (a+b=%d)@." a b (a + b);
    (* Confirm by simulation: the miter output must be true there. *)
    assert (Cnf.Circuit.eval c inputs differ)
  | (Cdcl.Solver.Unsat | Cdcl.Solver.Unknown), _ ->
    failwith "expected a counterexample for the buggy adder"

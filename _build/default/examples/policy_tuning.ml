(* Deletion-policy exploration: runs the policy zoo and the Eq. 2
   alpha sweep over a small mixed instance set — the "empirical
   studies" behind the paper's fixed alpha = 4/5.

   Run with: dune exec examples/policy_tuning.exe *)

let () =
  let instances = Gen.Dataset.generate_year ~seed:77 ~per_year:8 2022 in
  let simtime = Experiments.Simtime.make ~budget:600_000 in
  Format.printf "instance set: %d CNFs from the 2022 synthetic year@.@."
    (List.length instances);
  let progress s = print_endline s in
  let zoo = Experiments.Ablation.policy_zoo ~progress simtime instances in
  Format.printf "@.%a@." Experiments.Ablation.print_policies zoo;
  let sweep = Experiments.Ablation.alpha_sweep ~progress simtime instances in
  Format.printf "@.%a@." Experiments.Ablation.print_alpha sweep

examples/proof_logging.mli:

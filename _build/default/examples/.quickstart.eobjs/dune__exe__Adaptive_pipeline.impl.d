examples/adaptive_pipeline.ml: Cdcl Core Experiments Format Gen List

examples/policy_tuning.mli:

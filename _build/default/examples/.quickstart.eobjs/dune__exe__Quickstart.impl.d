examples/quickstart.ml: Array Cdcl Cnf Core Format Gen Util

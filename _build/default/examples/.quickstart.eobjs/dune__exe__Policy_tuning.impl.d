examples/policy_tuning.ml: Experiments Format Gen List

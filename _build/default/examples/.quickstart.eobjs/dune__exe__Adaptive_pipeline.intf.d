examples/adaptive_pipeline.mli:

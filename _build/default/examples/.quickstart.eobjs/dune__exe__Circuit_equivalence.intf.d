examples/circuit_equivalence.mli:

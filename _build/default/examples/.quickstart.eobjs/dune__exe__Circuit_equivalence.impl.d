examples/circuit_equivalence.ml: Array Cdcl Cnf Format Gen

examples/quickstart.mli:

examples/proof_logging.ml: Cdcl Cnf Format Gen

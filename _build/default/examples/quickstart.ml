(* Quickstart: build a formula, solve it, inspect the result, and see
   the clause-deletion policy switch that NeuroSelect automates.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Build a small CNF with the incremental builder:
     (x1 or x2) and (not x1 or x3) and (not x2 or not x3) and (x2 or x3) *)
  let builder = Cnf.Formula.Builder.create () in
  Cnf.Formula.Builder.add_dimacs builder [ 1; 2 ];
  Cnf.Formula.Builder.add_dimacs builder [ -1; 3 ];
  Cnf.Formula.Builder.add_dimacs builder [ -2; -3 ];
  Cnf.Formula.Builder.add_dimacs builder [ 2; 3 ];
  let formula = Cnf.Formula.Builder.build builder in
  Format.printf "formula:@.%a@.@." Cnf.Formula.pp formula;

  (* 2. Solve it. *)
  (match Cdcl.Solver.solve_formula formula with
  | Cdcl.Solver.Sat model, stats ->
    Format.printf "SAT, model:";
    for v = 1 to Cnf.Formula.num_vars formula do
      Format.printf " x%d=%b" v model.(v)
    done;
    assert (Cdcl.Solver.check_model formula model);
    Format.printf "@.decisions %d, conflicts %d@.@." stats.Cdcl.Solver_stats.decisions
      stats.Cdcl.Solver_stats.conflicts
  | Cdcl.Solver.Unsat, _ -> Format.printf "UNSAT@."
  | Cdcl.Solver.Unknown, _ -> Format.printf "UNKNOWN@.");

  (* 3. Round-trip through DIMACS. *)
  let text = Cnf.Dimacs.to_string ~comment:"quickstart example" formula in
  let reparsed = Cnf.Dimacs.parse_string text in
  assert (Cnf.Formula.num_clauses reparsed = Cnf.Formula.num_clauses formula);
  Format.printf "DIMACS round-trip ok@.@.";

  (* 4. A harder instance, solved under both clause-deletion policies —
     the choice NeuroSelect learns to make per instance. *)
  let rng = Util.Rng.create 42 in
  let hard = Gen.Parity.contradiction rng ~num_vars:20 in
  let run policy =
    let config = Cdcl.Config.with_policy policy Cdcl.Config.default in
    let result, stats = Cdcl.Solver.solve_formula ~config hard in
    Format.printf "policy %-14s -> %s in %d propagations@."
      (Cdcl.Policy.name policy)
      (match result with
      | Cdcl.Solver.Sat _ -> "SAT"
      | Cdcl.Solver.Unsat -> "UNSAT"
      | Cdcl.Solver.Unknown -> "UNKNOWN")
      stats.Cdcl.Solver_stats.propagations
  in
  run Cdcl.Policy.Default;
  run Cdcl.Policy.frequency_default;

  (* 5. Ask an (untrained) NeuroSelect model which policy it would pick. *)
  let model = Core.Model.create Core.Model.small_config in
  let selection = Core.Selector.select_policy model hard in
  Format.printf "NeuroSelect picks: %s (p=%.3f, inference %.4fs)@."
    (Cdcl.Policy.name selection.Core.Selector.policy)
    selection.Core.Selector.probability selection.Core.Selector.inference_seconds

(* DRUP proof logging and checking: solve an unsatisfiable
   circuit-equivalence miter, record the clause-learning trace as a
   DRUP proof, and validate it with the built-in RUP checker — the
   trust story an EDA signoff flow needs from a SAT-based prover.

   Run with: dune exec examples/proof_logging.exe *)

let () =
  (* A miter proving two adder implementations equivalent. *)
  let formula = Gen.Circuits.adder_miter 4 in
  Format.printf "adder equivalence miter: %d vars, %d clauses@."
    (Cnf.Formula.num_vars formula)
    (Cnf.Formula.num_clauses formula);

  (* Optional preprocessing pass first. *)
  let simplified, remaining =
    match Cnf.Simplify.simplify formula with
    | Cnf.Simplify.Proved_unsat -> (None, formula)
    | Cnf.Simplify.Simplified r ->
      Format.printf
        "simplify: %d units, %d pure, %d subsumed, %d strengthened literals@."
        r.Cnf.Simplify.stats.Cnf.Simplify.forced_units
        r.Cnf.Simplify.stats.Cnf.Simplify.pure_literals
        r.Cnf.Simplify.stats.Cnf.Simplify.subsumed_clauses
        r.Cnf.Simplify.stats.Cnf.Simplify.strengthened_literals;
      (Some r, r.Cnf.Simplify.formula)
  in
  ignore simplified;

  (* Solve with a DRUP trace attached. *)
  let solver = Cdcl.Solver.create remaining in
  let proof = Cdcl.Drup.create () in
  Cdcl.Drup.attach proof solver;
  (match Cdcl.Solver.solve solver with
  | Cdcl.Solver.Unsat -> Format.printf "result: UNSAT (equivalence proved)@."
  | Cdcl.Solver.Sat _ | Cdcl.Solver.Unknown -> failwith "expected UNSAT");
  Cdcl.Drup.conclude_unsat proof;
  Format.printf "proof: %d DRUP lines@." (Cdcl.Drup.num_lines proof);

  (* Verify the proof independently by reverse unit propagation. *)
  match Cdcl.Drup_check.check_solver_proof remaining proof with
  | Cdcl.Drup_check.Valid -> Format.printf "proof check: VALID@."
  | Cdcl.Drup_check.Invalid { line; reason } ->
    Format.printf "proof check: INVALID at line %d (%s)@." line reason;
    exit 1

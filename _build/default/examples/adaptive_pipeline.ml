(* End-to-end NeuroSelect pipeline on a miniature dataset:
   generate -> dual-policy label -> train -> adaptively solve.

   Everything is scaled down (few instances, few epochs) so the whole
   pipeline runs in ~a minute; `bin/train.ml` is the full-size version.

   Run with: dune exec examples/adaptive_pipeline.exe *)

let () =
  Format.printf "1. generating and labelling a miniature dataset ...@.";
  let progress s = print_endline s in
  let data =
    Experiments.Data.prepare ~seed:7 ~per_year:6 ~budget:600_000 ~progress ()
  in
  Format.printf "   train %d (%d positive), test %d (%d positive)@.@."
    (List.length data.Experiments.Data.train)
    (Experiments.Data.positives data.Experiments.Data.train)
    (List.length data.Experiments.Data.test)
    (Experiments.Data.positives data.Experiments.Data.test);

  Format.printf "2. training a small NeuroSelect model ...@.";
  let model = Core.Model.create { Core.Model.small_config with hidden_dim = 16 } in
  let train_progress ~epoch ~loss =
    if epoch mod 10 = 0 then Format.printf "   epoch %3d  loss %.4f@." epoch loss
  in
  let _history =
    Core.Trainer.train ~epochs:30 ~lr:3e-3 ~progress:train_progress model
      (Experiments.Data.examples data.Experiments.Data.train)
  in
  Format.printf "   train metrics: %a@.@." Core.Metrics.pp_report
    (Core.Trainer.evaluate model (Experiments.Data.examples data.Experiments.Data.train));

  Format.printf "3. adaptive solving on the test year ...@.";
  let solve_one (l : Experiments.Data.labelled) =
    let selection, result, stats =
      Core.Selector.solve_adaptive model l.Experiments.Data.instance.Gen.Dataset.formula
    in
    Format.printf "   %-20s -> %-9s policy %-14s (p=%.2f) props %d@."
      l.Experiments.Data.instance.Gen.Dataset.name
      (match result with
      | Cdcl.Solver.Sat _ -> "SAT"
      | Cdcl.Solver.Unsat -> "UNSAT"
      | Cdcl.Solver.Unknown -> "UNKNOWN")
      (Cdcl.Policy.name selection.Core.Selector.policy)
      selection.Core.Selector.probability stats.Cdcl.Solver_stats.propagations
  in
  List.iter solve_one data.Experiments.Data.test

(* ns-generate: emit benchmark CNFs as DIMACS files — a single family
   instance or the whole year-structured dataset. *)

let write_instance dir (i : Gen.Dataset.instance) =
  let path = Filename.concat dir (i.name ^ ".cnf") in
  Cnf.Dimacs.write_file
    ~comment:(Printf.sprintf "family %s, year %d" i.family i.year)
    path i.formula;
  path

let run_dataset dir seed per_year =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let split = Gen.Dataset.generate ~seed ~per_year () in
  let all = split.Gen.Dataset.train @ split.Gen.Dataset.test in
  List.iter (fun i -> ignore (write_instance dir i)) all;
  Format.printf "wrote %d instances to %s@.%a@." (List.length all) dir
    Gen.Dataset.pp_stats (Gen.Dataset.stats all)

let run_single family size seed out =
  let rng = Util.Rng.create seed in
  let formula =
    match family with
    | "ksat" -> Gen.Ksat.near_threshold rng ~num_vars:size
    | "php" -> Gen.Pigeonhole.unsat size
    | "color" -> Gen.Coloring.hard_3col rng ~vertices:size
    | "parity" -> Gen.Parity.contradiction rng ~num_vars:size
    | "adder" -> Gen.Circuits.adder_miter size
    | "adder-faulty" -> Gen.Circuits.adder_miter ~faulty:true size
    | "mult" -> Gen.Circuits.multiplier_miter size
    | "mult-faulty" -> Gen.Circuits.multiplier_miter ~faulty:true size
    | other ->
      prerr_endline ("unknown family: " ^ other);
      exit 2
  in
  match out with
  | Some path ->
    Cnf.Dimacs.write_file ~comment:(family ^ " instance") path formula;
    Printf.printf "wrote %s (%d vars, %d clauses)\n" path
      (Cnf.Formula.num_vars formula)
      (Cnf.Formula.num_clauses formula)
  | None -> print_string (Cnf.Dimacs.to_string formula)

let run dataset dir family size seed per_year out =
  if dataset then run_dataset dir seed per_year else run_single family size seed out

open Cmdliner

let dataset =
  Arg.(value & flag & info [ "dataset" ] ~doc:"Emit the full year-structured dataset.")

let dir = Arg.(value & opt string "benchmarks" & info [ "dir" ] ~docv:"DIR")

let family =
  Arg.(value & opt string "ksat"
       & info [ "family"; "f" ] ~docv:"FAMILY"
           ~doc:"ksat | php | color | parity | adder[-faulty] | mult[-faulty]")

let size =
  Arg.(value & opt int 100 & info [ "size"; "n" ] ~docv:"N"
         ~doc:"Vars / holes / vertices / width, family-dependent.")

let seed = Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED")
let per_year = Arg.(value & opt int 16 & info [ "per-year" ] ~docv:"N")
let out = Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE")

let cmd =
  let doc = "generate benchmark CNF instances" in
  Cmd.v
    (Cmd.info "ns-generate" ~doc)
    Term.(const run $ dataset $ dir $ family $ size $ seed $ per_year $ out)

let () = exit (Cmd.eval cmd)

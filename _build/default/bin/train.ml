(* ns-train: generate the synthetic dataset, label it by dual-policy
   solving, train the NeuroSelect model, and write a checkpoint. *)

let run seed per_year budget epochs lr out quiet =
  let log fmt =
    Printf.ksprintf (fun s -> if not quiet then print_endline s) fmt
  in
  log "generating + labelling dataset (seed %d, %d per year) ..." seed per_year;
  let progress s = if not quiet then print_endline s in
  let data = Experiments.Data.prepare ~seed ~per_year ~budget ~progress () in
  log "train %d (%d positive), test %d (%d positive)"
    (List.length data.Experiments.Data.train)
    (Experiments.Data.positives data.Experiments.Data.train)
    (List.length data.Experiments.Data.test)
    (Experiments.Data.positives data.Experiments.Data.test);
  let model = Core.Model.create Core.Model.paper_config in
  log "model parameters: %d" (Core.Model.num_parameters model);
  let train_progress ~epoch ~loss =
    if (not quiet) && epoch mod 5 = 0 then
      Printf.printf "epoch %3d  mean BCE %.4f\n%!" epoch loss
  in
  let _history =
    Core.Trainer.train ~epochs ~lr ~progress:train_progress model
      (Experiments.Data.examples data.Experiments.Data.train)
  in
  let report split name =
    let r = Core.Trainer.evaluate model (Experiments.Data.examples split) in
    log "%s: %s" name (Format.asprintf "%a" Core.Metrics.pp_report r)
  in
  report data.Experiments.Data.train "train";
  report data.Experiments.Data.test "test ";
  Core.Model.save out model;
  log "checkpoint written to %s" out

open Cmdliner

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED")
let per_year = Arg.(value & opt int 16 & info [ "per-year" ] ~docv:"N")
let budget = Arg.(value & opt int 800_000 & info [ "budget" ] ~docv:"PROPS")
let epochs = Arg.(value & opt int 60 & info [ "epochs" ] ~docv:"N")
let lr = Arg.(value & opt float 3e-3 & info [ "lr" ] ~docv:"LR")

let out =
  Arg.(value & opt string "neuroselect.ckpt" & info [ "out"; "o" ] ~docv:"FILE")

let quiet = Arg.(value & flag & info [ "quiet"; "q" ])

let cmd =
  let doc = "train the NeuroSelect clause-deletion policy classifier" in
  Cmd.v
    (Cmd.info "ns-train" ~doc)
    Term.(const run $ seed $ per_year $ budget $ epochs $ lr $ out $ quiet)

let () = exit (Cmd.eval cmd)

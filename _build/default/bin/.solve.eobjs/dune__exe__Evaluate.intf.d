bin/evaluate.mli:

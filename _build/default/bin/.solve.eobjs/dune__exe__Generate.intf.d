bin/generate.mli:

bin/train.mli:

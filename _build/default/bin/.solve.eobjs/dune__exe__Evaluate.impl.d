bin/evaluate.ml: Arg Cmd Cmdliner Core Experiments Format List Term

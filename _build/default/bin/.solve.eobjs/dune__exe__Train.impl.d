bin/train.ml: Arg Cmd Cmdliner Core Experiments Format List Printf Term

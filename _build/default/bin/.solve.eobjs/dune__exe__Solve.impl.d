bin/solve.ml: Arg Array Buffer Cdcl Cmd Cmdliner Cnf Core Format Option Printf Term

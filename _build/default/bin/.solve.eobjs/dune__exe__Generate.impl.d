bin/generate.ml: Arg Cmd Cmdliner Cnf Filename Format Gen List Printf Sys Term Util

bin/solve.mli:

(* ns-evaluate: load a trained checkpoint and reproduce the paper's
   evaluation on a freshly generated test year — classification metrics
   plus the Kissat vs NeuroSelect-Kissat runtime comparison. *)

let run checkpoint seed per_year budget =
  let model = Core.Model.create Core.Model.paper_config in
  (match checkpoint with
  | Some path -> Core.Model.load path model
  | None -> prerr_endline "warning: evaluating untrained weights");
  let progress s = print_endline s in
  let data = Experiments.Data.prepare ~seed ~per_year ~budget ~progress () in
  let test = data.Experiments.Data.test in
  let report = Core.Trainer.evaluate model (Experiments.Data.examples test) in
  Format.printf "classification on test year: %a@." Core.Metrics.pp_report report;
  let instances =
    List.map (fun l -> l.Experiments.Data.instance) test
  in
  let result =
    Experiments.Adaptive_eval.run ~progress model data.Experiments.Data.simtime
      instances
  in
  Format.printf "%a@.@.%a@.@.%a@." Experiments.Adaptive_eval.print_table3 result
    Experiments.Adaptive_eval.print_fig7a result Experiments.Adaptive_eval.print_fig7b
    result

open Cmdliner

let checkpoint =
  Arg.(value & opt (some file) None & info [ "checkpoint"; "c" ] ~docv:"FILE")

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED")
let per_year = Arg.(value & opt int 16 & info [ "per-year" ] ~docv:"N")
let budget = Arg.(value & opt int 800_000 & info [ "budget" ] ~docv:"PROPS")

let cmd =
  let doc = "evaluate a trained NeuroSelect model against Kissat-default" in
  Cmd.v
    (Cmd.info "ns-evaluate" ~doc)
    Term.(const run $ checkpoint $ seed $ per_year $ budget)

let () = exit (Cmd.eval cmd)

(* ns-solve: DIMACS CLI front-end for the camlsat CDCL solver with
   selectable clause-deletion policy, including model-guided adaptive
   selection. Exit codes follow the SAT-competition convention:
   10 = SAT, 20 = UNSAT, 0 = unknown. *)

let run file policy_str adaptive checkpoint proof simplify max_conflicts
    max_propagations verbose =
  let original = Cnf.Dimacs.parse_file file in
  if verbose then
    Printf.printf "c parsed %s: %d vars, %d clauses\n" file
      (Cnf.Formula.num_vars original)
      (Cnf.Formula.num_clauses original);
  let formula, preprocessing =
    if not simplify then (original, None)
    else begin
      match Cnf.Simplify.simplify original with
      | Cnf.Simplify.Proved_unsat ->
        print_endline "c preprocessing proved unsatisfiability";
        print_endline "s UNSATISFIABLE";
        exit 20
      | Cnf.Simplify.Simplified r ->
        if verbose then
          Printf.printf "c simplify: %d clauses left (%d units, %d pure, %d subsumed)\n"
            (Cnf.Formula.num_clauses r.Cnf.Simplify.formula)
            r.Cnf.Simplify.stats.Cnf.Simplify.forced_units
            r.Cnf.Simplify.stats.Cnf.Simplify.pure_literals
            r.Cnf.Simplify.stats.Cnf.Simplify.subsumed_clauses;
        (r.Cnf.Simplify.formula, Some r)
    end
  in
  let base =
    Cdcl.Config.with_budget ?max_conflicts ?max_propagations Cdcl.Config.default
  in
  let config =
    if adaptive then base
    else begin
      match Cdcl.Policy.of_string policy_str with
      | Some p -> Cdcl.Config.with_policy p base
      | None ->
        prerr_endline ("unknown policy: " ^ policy_str);
        exit 2
    end
  in
  let result, stats =
    if adaptive then begin
      let model = Core.Model.create Core.Model.paper_config in
      (match checkpoint with
      | Some path -> Core.Model.load path model
      | None ->
        prerr_endline "c warning: adaptive mode without --checkpoint uses untrained weights");
      let selection, result, stats = Core.Selector.solve_adaptive ~config model formula in
      Printf.printf "c adaptive selection: %s (p=%.3f, inference %.3fs)\n"
        (Cdcl.Policy.name selection.Core.Selector.policy)
        selection.Core.Selector.probability selection.Core.Selector.inference_seconds;
      (result, stats)
    end
    else begin
      let solver = Cdcl.Solver.create ~config formula in
      let log =
        match proof with
        | None -> None
        | Some _ ->
          let log = Cdcl.Drup.create () in
          Cdcl.Drup.attach log solver;
          Some log
      in
      let result = Cdcl.Solver.solve solver in
      (match (log, result) with
      | Some log, Cdcl.Solver.Unsat ->
        let path = Option.get proof in
        Cdcl.Drup.conclude_unsat log;
        Cdcl.Drup.write_file path log;
        Printf.printf "c DRUP proof (%d lines) written to %s\n"
          (Cdcl.Drup.num_lines log) path
      | Some _, (Cdcl.Solver.Sat _ | Cdcl.Solver.Unknown) ->
        prerr_endline "c no proof emitted (instance not proved UNSAT)"
      | None, _ -> ());
      (result, Cdcl.Solver_stats.copy (Cdcl.Solver.stats solver))
    end
  in
  if verbose then Format.printf "c stats:@.%a@." Cdcl.Solver_stats.pp stats;
  match result with
  | Cdcl.Solver.Sat model ->
    let model =
      match preprocessing with
      | None -> model
      | Some r -> Cnf.Simplify.extend_model r model
    in
    assert (Cdcl.Solver.check_model original model);
    print_endline "s SATISFIABLE";
    let buf = Buffer.create 256 in
    Buffer.add_string buf "v";
    for v = 1 to Cnf.Formula.num_vars original do
      Buffer.add_string buf (Printf.sprintf " %d" (if model.(v) then v else -v))
    done;
    Buffer.add_string buf " 0";
    print_endline (Buffer.contents buf);
    exit 10
  | Cdcl.Solver.Unsat ->
    print_endline "s UNSATISFIABLE";
    exit 20
  | Cdcl.Solver.Unknown ->
    print_endline "s UNKNOWN";
    exit 0

open Cmdliner

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cnf")

let policy =
  Arg.(value & opt string "default" & info [ "policy"; "p" ] ~docv:"POLICY"
         ~doc:"Deletion policy: default, frequency[:alpha], glue, size, activity, random[:seed].")

let adaptive =
  Arg.(value & flag & info [ "adaptive" ] ~doc:"Select the policy with the NeuroSelect model.")

let checkpoint =
  Arg.(value & opt (some file) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Model checkpoint for --adaptive.")

let proof =
  Arg.(value & opt (some string) None & info [ "proof" ] ~docv:"FILE"
         ~doc:"Write a DRUP unsatisfiability proof to FILE (non-adaptive runs).")

let simplify_flag =
  Arg.(value & flag & info [ "simplify" ]
         ~doc:"Preprocess (unit propagation, pure literals, subsumption) before solving.")

let max_conflicts =
  Arg.(value & opt (some int) None & info [ "max-conflicts" ] ~docv:"N")

let max_propagations =
  Arg.(value & opt (some int) None & info [ "max-propagations" ] ~docv:"N")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ])

let cmd =
  let doc = "solve a DIMACS CNF with the camlsat CDCL solver" in
  Cmd.v
    (Cmd.info "ns-solve" ~doc)
    Term.(
      const run $ file $ policy $ adaptive $ checkpoint $ proof $ simplify_flag
      $ max_conflicts $ max_propagations $ verbose)

let () = exit (Cmd.eval cmd)

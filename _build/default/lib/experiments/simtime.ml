type t = { budget : int; scale : float }

let paper_timeout_seconds = 5000.0

let make ~budget =
  if budget <= 0 then invalid_arg "Simtime.make: budget must be positive";
  { budget; scale = paper_timeout_seconds /. float_of_int budget }

let budget t = t.budget

let seconds t propagations =
  Float.min paper_timeout_seconds (float_of_int propagations *. t.scale)

let timed_out t propagations = propagations >= t.budget

(** Figure 3: distribution of variable propagation frequency.

    Runs the solver on one structured instance for a bounded number of
    conflicts and snapshots the per-variable propagation-trigger
    counters accumulated since the last reduce, reproducing the paper's
    observation that a small set of variables is propagated far more
    often than the rest. *)

type series = {
  num_vars : int;
  counts : int array;  (** Per variable, index 0 unused. *)
  total : int;  (** Sum of counts. *)
  f_max : int;
  above_threshold : int;  (** #vars with count > alpha * f_max. *)
  top1pct_share : float;  (** Fraction of all triggers owned by the top 1% of variables. *)
}

val run : ?alpha:float -> ?vertices:int -> ?seed:int -> ?conflicts:int -> unit -> series
(** Defaults: alpha 0.8, a 3-colouring instance with ~2500 variables
    (833 vertices), 4000 conflicts. *)

val print : Format.formatter -> series -> unit
(** Bucketed ASCII rendering of normalised frequency vs variable ID,
    plus the summary statistics. *)

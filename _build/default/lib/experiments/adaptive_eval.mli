(** Table 3 and Figure 7: Kissat vs NeuroSelect-Kissat.

    Every test instance is solved under the default policy ("Kissat")
    and under the model-selected policy ("NeuroSelect-Kissat", whose
    reported time includes the measured model-inference wall clock, as
    in the paper). *)

type entry = {
  name : string;
  family : string;
  kissat_seconds : float;
  kissat_solved : bool;
  adaptive_seconds : float;  (** Simulated solve time + inference time. *)
  adaptive_solved : bool;
  inference_seconds : float;
  chose_frequency : bool;
  probability : float;
}

type summary = {
  solved : int;
  median_seconds : float;
  average_seconds : float;
}

type t = {
  entries : entry list;
  kissat : summary;
  adaptive : summary;
  median_improvement_pct : float;
      (** (kissat median - adaptive median) / kissat median * 100 — the
          paper's headline 5.8%. *)
}

val run :
  ?alpha:float ->
  ?progress:(string -> unit) ->
  Core.Model.t ->
  Simtime.t ->
  Gen.Dataset.instance list ->
  t

val print_table3 : Format.formatter -> t -> unit
val print_fig7a : Format.formatter -> t -> unit
(** Scatter rows: Kissat vs NeuroSelect-Kissat runtimes. *)

val print_fig7b : Format.formatter -> t -> unit
(** Box-whisker summaries of inference times and runtime improvements. *)

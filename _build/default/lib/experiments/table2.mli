(** Table 2: SAT-instance classification quality.

    Trains five classifiers on the 2016–2021 split and evaluates on the
    2022 split: a static-feature logistic regression (extra baseline
    not in the paper), NeuroSAT, G4SATBench-GIN, NeuroSelect without
    the attention block, and full NeuroSelect. All share the training
    regime (BCE, Adam, batch 1, class balancing). *)

type row = {
  model_name : string;
  report : Core.Metrics.report;
}

type t = {
  rows : row list;
  train_size : int;
  test_size : int;
  test_positives : int;
  full_model : Core.Model.t;
      (** The trained full NeuroSelect model (reused by the Table 3 /
          Figure 7 harness so it is not trained twice). *)
}

val run :
  ?epochs:int ->
  ?lr:float ->
  ?seed:int ->
  ?progress:(string -> unit) ->
  Data.prepared ->
  t
(** Defaults: 30 epochs, lr 2e-3. *)

val print : Format.formatter -> t -> unit

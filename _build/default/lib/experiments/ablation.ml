type alpha_row = {
  alpha : float;
  solved : int;
  total_propagations : int;
  mean_seconds : float;
}

let measure_policy simtime policy instances =
  let runs =
    List.map (fun (i : Gen.Dataset.instance) -> Runner.solve simtime policy i.formula) instances
  in
  let solved = List.length (List.filter (fun r -> r.Runner.solved) runs) in
  let total_propagations =
    List.fold_left (fun acc r -> acc + r.Runner.propagations) 0 runs
  in
  let mean_seconds =
    Util.Stats.mean (Array.of_list (List.map (fun r -> r.Runner.sim_seconds) runs))
  in
  (solved, total_propagations, mean_seconds)

let alpha_sweep ?(alphas = [ 0.5; 0.6; 0.7; 0.8; 0.9; 0.95 ]) ?progress simtime
    instances =
  let row alpha =
    (match progress with
    | Some f -> f (Printf.sprintf "  alpha %.2f ..." alpha)
    | None -> ());
    let solved, total_propagations, mean_seconds =
      measure_policy simtime (Cdcl.Policy.Frequency { alpha }) instances
    in
    { alpha; solved; total_propagations; mean_seconds }
  in
  List.map row alphas

let print_alpha ppf rows =
  Format.fprintf ppf
    "@[<v>Ablation — Eq. 2 threshold factor alpha (frequency policy)@,\
     %-8s %8s %16s %14s@,"
    "alpha" "solved" "total props" "mean time (s)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8.2f %8d %16d %14.2f@," r.alpha r.solved
        r.total_propagations r.mean_seconds)
    rows;
  Format.fprintf ppf "@]"

type policy_row = {
  policy : Cdcl.Policy.t;
  solved : int;
  total_propagations : int;
  mean_seconds : float;
}

let default_policies =
  [
    Cdcl.Policy.Default;
    Cdcl.Policy.frequency_default;
    Cdcl.Policy.Glue_only;
    Cdcl.Policy.Size_only;
    Cdcl.Policy.Activity;
    Cdcl.Policy.Random 42;
  ]

let policy_zoo ?(policies = default_policies) ?progress simtime instances =
  let row policy =
    (match progress with
    | Some f -> f (Printf.sprintf "  policy %s ..." (Cdcl.Policy.name policy))
    | None -> ());
    let solved, total_propagations, mean_seconds =
      measure_policy simtime policy instances
    in
    { policy; solved; total_propagations; mean_seconds }
  in
  List.map row policies

let measure_config simtime config instances =
  let runs =
    List.map
      (fun (i : Gen.Dataset.instance) -> Runner.solve_with_config simtime config i.formula)
      instances
  in
  let solved = List.length (List.filter (fun r -> r.Runner.solved) runs) in
  let total = List.fold_left (fun acc r -> acc + r.Runner.propagations) 0 runs in
  let mean =
    Util.Stats.mean (Array.of_list (List.map (fun r -> r.Runner.sim_seconds) runs))
  in
  (solved, total, mean)

type fraction_row = {
  fraction : float;
  f_solved : int;
  f_total_propagations : int;
  f_mean_seconds : float;
}

let fraction_sweep ?(fractions = [ 0.25; 0.5; 0.75; 0.9 ]) ?progress simtime instances =
  let row fraction =
    (match progress with
    | Some f -> f (Printf.sprintf "  reduce fraction %.2f ..." fraction)
    | None -> ());
    let config = { Cdcl.Config.default with Cdcl.Config.reduce_fraction = fraction } in
    let f_solved, f_total_propagations, f_mean_seconds =
      measure_config simtime config instances
    in
    { fraction; f_solved; f_total_propagations; f_mean_seconds }
  in
  List.map row fractions

let print_fractions ppf rows =
  Format.fprintf ppf
    "@[<v>Ablation — reduce deletion fraction@,%-10s %8s %16s %14s@,"
    "fraction" "solved" "total props" "mean time (s)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10.2f %8d %16d %14.2f@," r.fraction r.f_solved
        r.f_total_propagations r.f_mean_seconds)
    rows;
  Format.fprintf ppf "@]"

type restart_row = {
  mode_name : string;
  r_solved : int;
  r_total_propagations : int;
  r_mean_seconds : float;
}

let restart_comparison ?progress simtime instances =
  let modes =
    [
      ("none", Cdcl.Config.No_restarts);
      ("luby-100", Cdcl.Config.Luby 100);
      ( "glucose-ema",
        Cdcl.Config.Glucose { fast_alpha = 0.03; slow_alpha = 1e-4; margin = 1.25 } );
    ]
  in
  let row (mode_name, mode) =
    (match progress with
    | Some f -> f (Printf.sprintf "  restarts %s ..." mode_name)
    | None -> ());
    let config = { Cdcl.Config.default with Cdcl.Config.restart_mode = mode } in
    let r_solved, r_total_propagations, r_mean_seconds =
      measure_config simtime config instances
    in
    { mode_name; r_solved; r_total_propagations; r_mean_seconds }
  in
  List.map row modes

let print_restarts ppf rows =
  Format.fprintf ppf
    "@[<v>Ablation — restart schedule@,%-14s %8s %16s %14s@,"
    "schedule" "solved" "total props" "mean time (s)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s %8d %16d %14.2f@," r.mode_name r.r_solved
        r.r_total_propagations r.r_mean_seconds)
    rows;
  Format.fprintf ppf "@]"

let print_policies ppf rows =
  Format.fprintf ppf
    "@[<v>Ablation — clause-deletion policy zoo@,%-16s %8s %16s %14s@,"
    "policy" "solved" "total props" "mean time (s)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %8d %16d %14.2f@," (Cdcl.Policy.name r.policy)
        r.solved r.total_propagations r.mean_seconds)
    rows;
  Format.fprintf ppf "@]"

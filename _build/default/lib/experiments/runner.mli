(** Single-instance solver runs for the experiment harness. *)

type run = {
  result : Cdcl.Solver.result;
  stats : Cdcl.Solver_stats.t;
  propagations : int;
  sim_seconds : float;
  solved : bool;  (** [result] is [Sat] or [Unsat] within budget. *)
}

val solve : Simtime.t -> Cdcl.Policy.t -> Cnf.Formula.t -> run
(** Solve under the given deletion policy with the sim-time budget as
    the propagation cap. *)

val solve_with_config : Simtime.t -> Cdcl.Config.t -> Cnf.Formula.t -> run
(** Same, but a full config (its budgets are overridden by the
    sim-time budget). *)

type point = {
  name : string;
  family : string;
  default_seconds : float;
  frequency_seconds : float;
  default_solved : bool;
  frequency_solved : bool;
}

type summary = {
  points : point list;
  excluded_both_timeout : int;
  wins_frequency : int;
  wins_default : int;
  ties : int;
}

let run ?(alpha = Cdcl.Policy.default_alpha) simtime instances =
  let excluded = ref 0 in
  let measure (i : Gen.Dataset.instance) =
    let d = Runner.solve simtime Cdcl.Policy.Default i.formula in
    let f = Runner.solve simtime (Cdcl.Policy.Frequency { alpha }) i.formula in
    if (not d.Runner.solved) && not f.Runner.solved then begin
      incr excluded;
      None
    end
    else
      Some
        {
          name = i.name;
          family = i.family;
          default_seconds = d.Runner.sim_seconds;
          frequency_seconds = f.Runner.sim_seconds;
          default_solved = d.Runner.solved;
          frequency_solved = f.Runner.solved;
        }
  in
  let points = List.filter_map measure instances in
  let relative_margin p =
    let base = Float.max p.default_seconds p.frequency_seconds in
    if base <= 0.0 then 0.0 else (p.default_seconds -. p.frequency_seconds) /. base
  in
  let wins_frequency =
    List.length (List.filter (fun p -> relative_margin p > 0.01) points)
  in
  let wins_default =
    List.length (List.filter (fun p -> relative_margin p < -0.01) points)
  in
  {
    points;
    excluded_both_timeout = !excluded;
    wins_frequency;
    wins_default;
    ties = List.length points - wins_frequency - wins_default;
  }

let print ppf s =
  Format.fprintf ppf
    "@[<v>Figure 4 — Kissat default vs frequency-guided policy (sim seconds)@,\
     %-24s %-8s %12s %12s  side@,"
    "instance" "family" "default" "frequency";
  let row p =
    let side =
      if p.frequency_seconds < p.default_seconds then "below (new wins)"
      else if p.frequency_seconds > p.default_seconds then "above (default wins)"
      else "diagonal"
    in
    Format.fprintf ppf "%-24s %-8s %12.1f %12.1f  %s@," p.name p.family
      p.default_seconds p.frequency_seconds side
  in
  List.iter row s.points;
  Format.fprintf ppf
    "@,points %d (excluded, both timeout: %d)@,\
     below diagonal (frequency wins): %d@,\
     above diagonal (default wins):   %d@,\
     on/near diagonal:                %d@]"
    (List.length s.points) s.excluded_both_timeout s.wins_frequency s.wins_default
    s.ties

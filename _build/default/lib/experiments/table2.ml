type row = {
  model_name : string;
  report : Core.Metrics.report;
}

type t = {
  rows : row list;
  train_size : int;
  test_size : int;
  test_positives : int;
  full_model : Core.Model.t;
}

let eval_spec spec test =
  let predicted = Array.map (fun (g, _) -> Nn.Train.predict spec g) test in
  let actual = Array.map snd test in
  Core.Metrics.report ~predicted ~actual

let run_spec ?progress ~name ~epochs ~lr ~seed spec train test =
  (match progress with Some f -> f (Printf.sprintf "  training %s ..." name) | None -> ());
  let pos_weight = Nn.Train.auto_pos_weight train in
  let _history = Nn.Train.fit ~epochs ~lr ~seed ~pos_weight spec train in
  { model_name = name; report = eval_spec spec test }

let run ?(epochs = 30) ?(lr = 2e-3) ?(seed = 5) ?progress (data : Data.prepared) =
  let labels_of l = (l.Data.outcome.Core.Labeler.label : bool) in
  let formulas split =
    List.map (fun l -> (l.Data.instance.Gen.Dataset.formula, labels_of l)) split
  in
  let train_f = formulas data.Data.train and test_f = formulas data.Data.test in
  let litgraphs fs =
    Array.of_list
      (List.map (fun (f, l) -> (Satgraph.Litgraph.of_formula f, l)) fs)
  in
  let bigraphs fs =
    Array.of_list
      (List.map (fun (f, l) -> (Satgraph.Bigraph.of_formula f, l)) fs)
  in
  let lit_train = litgraphs train_f and lit_test = litgraphs test_f in
  let bi_train = bigraphs train_f and bi_test = bigraphs test_f in
  let logreg =
    let model = Baselines.Logreg.create ~seed () in
    Baselines.Logreg.fit_normalisation model (List.map fst train_f);
    run_spec ?progress ~name:"Logistic regression (features)" ~epochs ~lr:0.05 ~seed
      (Baselines.Logreg.spec model)
      (Array.of_list train_f) (Array.of_list test_f)
  in
  let neurosat =
    let model =
      Baselines.Neurosat.create { Baselines.Neurosat.default_config with seed }
    in
    run_spec ?progress ~name:"NeuroSAT" ~epochs ~lr ~seed
      (Baselines.Neurosat.spec model) lit_train lit_test
  in
  let gin =
    let model = Baselines.Gin.create { Baselines.Gin.default_config with seed } in
    run_spec ?progress ~name:"G4SATBench" ~epochs ~lr ~seed (Baselines.Gin.spec model)
      bi_train bi_test
  in
  let neuroselect_spec model =
    {
      Nn.Train.params = Core.Model.params model;
      forward = (fun tape g -> Core.Model.forward_logit model tape g);
    }
  in
  let no_attention =
    let model =
      Core.Model.create
        { Core.Model.paper_config with use_attention = false; seed }
    in
    run_spec ?progress ~name:"NeuroSelect w/o attention" ~epochs ~lr ~seed
      (neuroselect_spec model) bi_train bi_test
  in
  let full_model = Core.Model.create { Core.Model.paper_config with seed } in
  let full =
    run_spec ?progress ~name:"NeuroSelect" ~epochs ~lr ~seed
      (neuroselect_spec full_model) bi_train bi_test
  in
  {
    rows = [ logreg; neurosat; gin; no_attention; full ];
    full_model;
    train_size = Array.length bi_train;
    test_size = Array.length bi_test;
    test_positives =
      Array.fold_left (fun n (_, l) -> if l then n + 1 else n) 0 bi_test;
  }

let print ppf t =
  Format.fprintf ppf
    "@[<v>Table 2 — SAT classification models (train %d, test %d, %d positive)@,\
     %-28s %10s %10s %10s %10s@,"
    t.train_size t.test_size t.test_positives "model" "precision" "recall" "F1"
    "accuracy";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-28s %9.2f%% %9.2f%% %9.2f%% %9.2f%%@," r.model_name
        r.report.Core.Metrics.precision_pct r.report.Core.Metrics.recall_pct
        r.report.Core.Metrics.f1_pct r.report.Core.Metrics.accuracy_pct)
    t.rows;
  Format.fprintf ppf "@]"

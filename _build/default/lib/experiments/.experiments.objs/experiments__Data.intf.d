lib/experiments/data.mli: Core Gen Simtime

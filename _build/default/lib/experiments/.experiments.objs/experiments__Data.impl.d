lib/experiments/data.ml: Core Format Gen List Simtime

lib/experiments/runner.ml: Cdcl Simtime

lib/experiments/simtime.ml: Float

lib/experiments/simtime.mli:

lib/experiments/table2.ml: Array Baselines Core Data Format Gen List Nn Printf Satgraph

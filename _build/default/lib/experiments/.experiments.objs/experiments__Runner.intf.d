lib/experiments/runner.mli: Cdcl Cnf Simtime

lib/experiments/fig3.ml: Array Cdcl Float Format Gen String Util

lib/experiments/table2.mli: Core Data Format

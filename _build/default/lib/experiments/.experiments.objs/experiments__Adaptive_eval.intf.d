lib/experiments/adaptive_eval.mli: Core Format Gen Simtime

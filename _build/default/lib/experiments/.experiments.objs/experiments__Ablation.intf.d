lib/experiments/ablation.mli: Cdcl Format Gen Simtime

lib/experiments/policy_compare.ml: Cdcl Float Format Gen List Runner

lib/experiments/policy_compare.mli: Format Gen Simtime

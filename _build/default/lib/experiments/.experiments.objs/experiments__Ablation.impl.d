lib/experiments/ablation.ml: Array Cdcl Format Gen List Printf Runner Util

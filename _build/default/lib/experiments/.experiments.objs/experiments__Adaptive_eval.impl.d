lib/experiments/adaptive_eval.ml: Array Cdcl Core Float Format Gen List Printf Runner Simtime Util

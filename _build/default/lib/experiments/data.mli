(** Shared dataset preparation: generate → dual-policy label → graph
    examples. Used by the Table 1/2/3 and Figure 4/7 harnesses so the
    expensive labelling runs once per bench invocation. *)

type labelled = {
  instance : Gen.Dataset.instance;
  outcome : Core.Labeler.outcome;
  example : Core.Trainer.example;
}

type prepared = {
  train : labelled list;
  test : labelled list;
  simtime : Simtime.t;
}

val prepare :
  ?seed:int ->
  ?per_year:int ->
  ?budget:int ->
  ?progress:(string -> unit) ->
  unit ->
  prepared
(** Defaults: seed 2024, per_year 16, budget 1,500,000 propagations
    (the simulated 5000 s timeout). *)

val positives : labelled list -> int
val examples : labelled list -> Core.Trainer.example list

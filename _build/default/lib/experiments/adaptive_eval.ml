type entry = {
  name : string;
  family : string;
  kissat_seconds : float;
  kissat_solved : bool;
  adaptive_seconds : float;
  adaptive_solved : bool;
  inference_seconds : float;
  chose_frequency : bool;
  probability : float;
}

type summary = {
  solved : int;
  median_seconds : float;
  average_seconds : float;
}

type t = {
  entries : entry list;
  kissat : summary;
  adaptive : summary;
  median_improvement_pct : float;
}

let run ?(alpha = Cdcl.Policy.default_alpha) ?progress model simtime instances =
  let measure (i : Gen.Dataset.instance) =
    let kissat = Runner.solve simtime Cdcl.Policy.Default i.formula in
    let selection = Core.Selector.select_policy ~alpha model i.formula in
    let adaptive = Runner.solve simtime selection.Core.Selector.policy i.formula in
    let entry =
      {
        name = i.name;
        family = i.family;
        kissat_seconds = kissat.Runner.sim_seconds;
        kissat_solved = kissat.Runner.solved;
        adaptive_seconds =
          Float.min Simtime.paper_timeout_seconds
            (adaptive.Runner.sim_seconds +. selection.Core.Selector.inference_seconds);
        adaptive_solved = adaptive.Runner.solved;
        inference_seconds = selection.Core.Selector.inference_seconds;
        chose_frequency =
          (match selection.Core.Selector.policy with
          | Cdcl.Policy.Frequency _ -> true
          | Cdcl.Policy.Default | Cdcl.Policy.Glue_only | Cdcl.Policy.Size_only
          | Cdcl.Policy.Activity | Cdcl.Policy.Random _ -> false);
        probability = selection.Core.Selector.probability;
      }
    in
    (match progress with
    | Some f ->
      f
        (Printf.sprintf "  %-22s kissat %.0fs, adaptive %.0fs (p=%.2f, %s)" entry.name
           entry.kissat_seconds entry.adaptive_seconds entry.probability
           (if entry.chose_frequency then "frequency" else "default"))
    | None -> ());
    entry
  in
  let entries = List.map measure instances in
  let summarise seconds solved =
    {
      solved;
      median_seconds = Util.Stats.median seconds;
      average_seconds = Util.Stats.mean seconds;
    }
  in
  let kissat =
    summarise
      (Array.of_list (List.map (fun e -> e.kissat_seconds) entries))
      (List.length (List.filter (fun e -> e.kissat_solved) entries))
  in
  let adaptive =
    summarise
      (Array.of_list (List.map (fun e -> e.adaptive_seconds) entries))
      (List.length (List.filter (fun e -> e.adaptive_solved) entries))
  in
  let median_improvement_pct =
    if kissat.median_seconds <= 0.0 then 0.0
    else
      100.0 *. (kissat.median_seconds -. adaptive.median_seconds)
      /. kissat.median_seconds
  in
  { entries; kissat; adaptive; median_improvement_pct }

let print_table3 ppf t =
  Format.fprintf ppf
    "@[<v>Table 3 — runtime statistics on the test year (sim seconds)@,\
     %-20s %8s %12s %12s@,%-20s %8d %12.2f %12.2f@,%-20s %8d %12.2f %12.2f@,@,\
     median improvement: %.1f%% (paper: 5.8%%)@]"
    "solver" "solved" "median (s)" "average (s)" "Kissat" t.kissat.solved
    t.kissat.median_seconds t.kissat.average_seconds "NeuroSelect-Kissat"
    t.adaptive.solved t.adaptive.median_seconds t.adaptive.average_seconds
    t.median_improvement_pct

let print_fig7a ppf t =
  Format.fprintf ppf
    "@[<v>Figure 7a — Kissat vs NeuroSelect-Kissat (sim seconds)@,\
     %-24s %-8s %10s %10s  side@,"
    "instance" "family" "kissat" "adaptive";
  let row e =
    let side =
      if e.adaptive_seconds < e.kissat_seconds then "below (adaptive wins)"
      else if e.adaptive_seconds > e.kissat_seconds then "above"
      else "diagonal"
    in
    Format.fprintf ppf "%-24s %-8s %10.1f %10.1f  %s@," e.name e.family
      e.kissat_seconds e.adaptive_seconds side
  in
  List.iter row t.entries;
  let below =
    List.length
      (List.filter (fun e -> e.adaptive_seconds < e.kissat_seconds) t.entries)
  in
  let above =
    List.length
      (List.filter (fun e -> e.adaptive_seconds > e.kissat_seconds) t.entries)
  in
  Format.fprintf ppf "@,below diagonal %d, above %d, on %d@]" below above
    (List.length t.entries - below - above)

let print_fig7b ppf t =
  let inference =
    Array.of_list (List.map (fun e -> e.inference_seconds) t.entries)
  in
  let improvements =
    Array.of_list
      (List.filter_map
         (fun e ->
           let delta = e.kissat_seconds -. e.adaptive_seconds in
           if delta > 0.0 then Some delta else None)
         t.entries)
  in
  Format.fprintf ppf
    "@[<v>Figure 7b — inference time and runtime improvement@,\
     model inference time (s):    %a@,"
    Util.Stats.pp_box (Util.Stats.box_summary inference);
  if Array.length improvements > 0 then
    Format.fprintf ppf "solver runtime improvement (s): %a@,max improvement %.1f s@]"
      Util.Stats.pp_box
      (Util.Stats.box_summary improvements)
      (snd (Util.Stats.min_max improvements))
  else Format.fprintf ppf "solver runtime improvement: none observed@]"

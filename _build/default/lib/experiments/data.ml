type labelled = {
  instance : Gen.Dataset.instance;
  outcome : Core.Labeler.outcome;
  example : Core.Trainer.example;
}

type prepared = {
  train : labelled list;
  test : labelled list;
  simtime : Simtime.t;
}

let label_all ?progress budget instances =
  let handle (i : Gen.Dataset.instance) =
    let outcome = Core.Labeler.label_instance ~budget i.formula in
    (match progress with
    | Some f ->
      f (Format.asprintf "  %-22s %a" i.name Core.Labeler.pp_outcome outcome)
    | None -> ());
    {
      instance = i;
      outcome;
      example =
        Core.Trainer.example_of_formula ~name:i.name
          ~label:outcome.Core.Labeler.label i.formula;
    }
  in
  List.map handle instances

let prepare ?(seed = 2024) ?(per_year = 16) ?(budget = 1_500_000) ?progress () =
  let split = Gen.Dataset.generate ~seed ~per_year () in
  let train = label_all ?progress budget split.Gen.Dataset.train in
  let test = label_all ?progress budget split.Gen.Dataset.test in
  { train; test; simtime = Simtime.make ~budget }

let positives labelled =
  List.length (List.filter (fun l -> l.outcome.Core.Labeler.label) labelled)

let examples labelled = List.map (fun l -> l.example) labelled

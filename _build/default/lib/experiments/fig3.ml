type series = {
  num_vars : int;
  counts : int array;
  total : int;
  f_max : int;
  above_threshold : int;
  top1pct_share : float;
}

let run ?(alpha = 0.8) ?(vertices = 833) ?(seed = 11) ?(conflicts = 4000) () =
  let rng = Util.Rng.create seed in
  let formula = Gen.Coloring.hard_3col rng ~vertices in
  let config =
    Cdcl.Config.with_budget ~max_conflicts:conflicts Cdcl.Config.default
  in
  let solver = Cdcl.Solver.create ~config formula in
  ignore (Cdcl.Solver.solve solver);
  let counts = Cdcl.Solver.propagation_counts solver in
  let num_vars = Cdcl.Solver.num_vars solver in
  let total = Array.fold_left ( + ) 0 counts in
  let f_max = Array.fold_left max 0 counts in
  let threshold = alpha *. float_of_int f_max in
  let above_threshold =
    Array.fold_left
      (fun acc c -> if float_of_int c > threshold then acc + 1 else acc)
      0 counts
  in
  let sorted = Array.copy counts in
  Array.sort (fun a b -> compare b a) sorted;
  let top_n = max 1 (num_vars / 100) in
  let top_sum = ref 0 in
  for i = 0 to top_n - 1 do
    top_sum := !top_sum + sorted.(i)
  done;
  let top1pct_share =
    if total = 0 then 0.0 else float_of_int !top_sum /. float_of_int total
  in
  { num_vars; counts; total; f_max; above_threshold; top1pct_share }

let print ppf s =
  let buckets = 40 in
  let per_bucket = max 1 ((s.num_vars + buckets - 1) / buckets) in
  Format.fprintf ppf
    "@[<v>Figure 3 — propagation frequency distribution@,\
     vars %d, total triggers %d, f_max %d@,\
     vars above 0.8*f_max: %d (%.2f%%)@,\
     top 1%% of vars own %.1f%% of all triggers@,@,\
     normalised frequency by variable-ID bucket (width %d):@,"
    s.num_vars s.total s.f_max s.above_threshold
    (100.0 *. float_of_int s.above_threshold /. float_of_int (max 1 s.num_vars))
    (100.0 *. s.top1pct_share) per_bucket;
  let total = float_of_int (max 1 s.total) in
  let bucket_means =
    Array.init buckets (fun b ->
        let lo = (b * per_bucket) + 1 in
        let hi = min s.num_vars ((b + 1) * per_bucket) in
        if lo > hi then 0.0
        else begin
          let acc = ref 0 in
          for v = lo to hi do
            acc := !acc + s.counts.(v)
          done;
          float_of_int !acc /. float_of_int (hi - lo + 1) /. total
        end)
  in
  let peak = Array.fold_left Float.max 1e-12 bucket_means in
  Array.iteri
    (fun b mean ->
      let width = int_of_float (40.0 *. mean /. peak) in
      Format.fprintf ppf "%5d |%s %.2e@," ((b * per_bucket) + 1)
        (String.make width '#') mean)
    bucket_means;
  Format.fprintf ppf "@]"

type run = {
  result : Cdcl.Solver.result;
  stats : Cdcl.Solver_stats.t;
  propagations : int;
  sim_seconds : float;
  solved : bool;
}

let solve_with_config simtime config formula =
  let config =
    { config with Cdcl.Config.max_propagations = Some (Simtime.budget simtime) }
  in
  let result, stats = Cdcl.Solver.solve_formula ~config formula in
  let propagations = stats.Cdcl.Solver_stats.propagations in
  {
    result;
    stats;
    propagations;
    sim_seconds = Simtime.seconds simtime propagations;
    solved = (match result with Cdcl.Solver.Sat _ | Cdcl.Solver.Unsat -> true
              | Cdcl.Solver.Unknown -> false);
  }

let solve simtime policy formula =
  solve_with_config simtime (Cdcl.Config.with_policy policy Cdcl.Config.default) formula

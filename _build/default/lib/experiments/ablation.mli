(** Design-choice ablations called out in DESIGN.md.

    [alpha_sweep] varies the Eq. 2 threshold factor (the paper fixes it
    at 4/5 "according to our empirical studies" — this regenerates that
    study). [policy_zoo] compares the full set of deletion policies,
    including degenerate ones, on the same instance set. *)

type alpha_row = {
  alpha : float;
  solved : int;
  total_propagations : int;
  mean_seconds : float;
}

val alpha_sweep :
  ?alphas:float list ->
  ?progress:(string -> unit) ->
  Simtime.t ->
  Gen.Dataset.instance list ->
  alpha_row list
(** Default alphas: 0.5 to 0.95 in steps of 0.1 plus 0.8. *)

val print_alpha : Format.formatter -> alpha_row list -> unit

type policy_row = {
  policy : Cdcl.Policy.t;
  solved : int;
  total_propagations : int;
  mean_seconds : float;
}

val policy_zoo :
  ?policies:Cdcl.Policy.t list ->
  ?progress:(string -> unit) ->
  Simtime.t ->
  Gen.Dataset.instance list ->
  policy_row list

val print_policies : Format.formatter -> policy_row list -> unit

type fraction_row = {
  fraction : float;
  f_solved : int;
  f_total_propagations : int;
  f_mean_seconds : float;
}

val fraction_sweep :
  ?fractions:float list ->
  ?progress:(string -> unit) ->
  Simtime.t ->
  Gen.Dataset.instance list ->
  fraction_row list
(** Sweep of the reduce deletion fraction (default {0.25..0.9}) under
    the default policy — how aggressive clause deletion should be. *)

val print_fractions : Format.formatter -> fraction_row list -> unit

type restart_row = {
  mode_name : string;
  r_solved : int;
  r_total_propagations : int;
  r_mean_seconds : float;
}

val restart_comparison :
  ?progress:(string -> unit) ->
  Simtime.t ->
  Gen.Dataset.instance list ->
  restart_row list
(** No-restarts vs Luby vs Glucose-EMA restart schedules. *)

val print_restarts : Format.formatter -> restart_row list -> unit

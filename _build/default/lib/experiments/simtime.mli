(** Simulated solver time.

    The paper reports wall-clock seconds under a 5000 s timeout on the
    authors' testbed. This reproduction uses the deterministic
    propagation count (the same proxy the paper itself uses for
    labelling, Sec. 5.1) and maps it to "simulated seconds" so
    tables/figures carry paper-like axes: a run that exhausts the
    propagation budget maps to exactly the 5000 s timeout. *)

type t

val paper_timeout_seconds : float
(** 5000.0 *)

val make : budget:int -> t
(** [budget] is the propagation cap corresponding to the timeout. *)

val budget : t -> int

val seconds : t -> int -> float
(** [seconds t propagations], capped at the timeout. *)

val timed_out : t -> int -> bool

(** Figure 4: default vs frequency-guided deletion policy scatter.

    Every instance is solved under both policies with the same
    simulated timeout; instances unsolved by both are excluded, as in
    the paper. Points below the diagonal are wins for the new policy. *)

type point = {
  name : string;
  family : string;
  default_seconds : float;
  frequency_seconds : float;
  default_solved : bool;
  frequency_solved : bool;
}

type summary = {
  points : point list;  (** Solved by at least one policy. *)
  excluded_both_timeout : int;
  wins_frequency : int;  (** Strictly below the diagonal (>1% faster). *)
  wins_default : int;
  ties : int;
}

val run :
  ?alpha:float -> Simtime.t -> Gen.Dataset.instance list -> summary

val print : Format.formatter -> summary -> unit

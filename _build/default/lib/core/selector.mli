(** Adaptive policy selection — NeuroSelect-Kissat (Sec. 5.4).

    One model inference on the CPU before solving picks the deletion
    policy; the measured inference wall-clock is part of the adaptive
    solver's reported runtime, mirroring the paper's accounting. *)

type selection = {
  policy : Cdcl.Policy.t;
  probability : float;  (** Model output; > 0.5 selects frequency. *)
  inference_seconds : float;
}

val select_policy : ?alpha:float -> Model.t -> Cnf.Formula.t -> selection

val solve_adaptive :
  ?config:Cdcl.Config.t ->
  ?alpha:float ->
  Model.t ->
  Cnf.Formula.t ->
  selection * Cdcl.Solver.result * Cdcl.Solver_stats.t
(** Select, then solve under the chosen policy (overriding the policy
    in [config] but keeping its budgets and other settings). *)

(** Ground-truth labelling of SAT instances (Sec. 5.1).

    An instance is solved twice — once under Kissat's default deletion
    policy, once under the propagation-frequency policy — and labelled
    1 when the new policy reduces the total number of propagations by
    at least 2% (the paper's deterministic proxy for runtime). *)

type outcome = {
  default_propagations : int;
  frequency_propagations : int;
  default_result : Cdcl.Solver.result;
  frequency_result : Cdcl.Solver.result;
  reduction : float;
      (** Relative reduction, (default - frequency) / default. *)
  label : bool;  (** [reduction >= threshold]. *)
}

val label_instance :
  ?threshold:float ->
  ?alpha:float ->
  ?budget:int ->
  Cnf.Formula.t ->
  outcome
(** [threshold] defaults to 0.02 (the paper's 2%), [alpha] to
    {!Cdcl.Policy.default_alpha}, [budget] to a propagation cap applied
    to each run (default 3,000,000) standing in for the paper's
    5000-second timeout. *)

val pp_outcome : Format.formatter -> outcome -> unit

type confusion = {
  tp : int;
  fp : int;
  tn : int;
  fn : int;
}

let confusion ~predicted ~actual =
  if Array.length predicted <> Array.length actual then
    invalid_arg "Metrics.confusion: length mismatch";
  let acc = ref { tp = 0; fp = 0; tn = 0; fn = 0 } in
  Array.iteri
    (fun i p ->
      let a = actual.(i) in
      let c = !acc in
      acc :=
        (match (p, a) with
        | true, true -> { c with tp = c.tp + 1 }
        | true, false -> { c with fp = c.fp + 1 }
        | false, false -> { c with tn = c.tn + 1 }
        | false, true -> { c with fn = c.fn + 1 }))
    predicted;
  !acc

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let precision c = ratio c.tp (c.tp + c.fp)
let recall c = ratio c.tp (c.tp + c.fn)

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let accuracy c = ratio (c.tp + c.tn) (c.tp + c.fp + c.tn + c.fn)

type report = {
  precision_pct : float;
  recall_pct : float;
  f1_pct : float;
  accuracy_pct : float;
}

let report ~predicted ~actual =
  let c = confusion ~predicted ~actual in
  {
    precision_pct = 100.0 *. precision c;
    recall_pct = 100.0 *. recall c;
    f1_pct = 100.0 *. f1 c;
    accuracy_pct = 100.0 *. accuracy c;
  }

let pp_report ppf r =
  Format.fprintf ppf "precision %.2f%%  recall %.2f%%  F1 %.2f%%  accuracy %.2f%%"
    r.precision_pct r.recall_pct r.f1_pct r.accuracy_pct

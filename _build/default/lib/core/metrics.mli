(** Binary-classification metrics (Table 2 columns). *)

type confusion = {
  tp : int;
  fp : int;
  tn : int;
  fn : int;
}

val confusion : predicted:bool array -> actual:bool array -> confusion
(** @raise Invalid_argument on length mismatch. *)

val precision : confusion -> float
(** 0 when undefined (no positive predictions). *)

val recall : confusion -> float
val f1 : confusion -> float
val accuracy : confusion -> float

type report = {
  precision_pct : float;
  recall_pct : float;
  f1_pct : float;
  accuracy_pct : float;
}

val report : predicted:bool array -> actual:bool array -> report
(** Percentages, matching the paper's presentation. *)

val pp_report : Format.formatter -> report -> unit

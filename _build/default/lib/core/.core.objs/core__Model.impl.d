lib/core/model.ml: Hgt List Nn Printf Satgraph Tensor Util

lib/core/selector.ml: Cdcl Model Sys

lib/core/metrics.ml: Array Format

lib/core/mpnn.mli: Nn Satgraph Util

lib/core/attention.mli: Nn Util

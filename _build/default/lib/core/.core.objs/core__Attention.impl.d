lib/core/attention.ml: List Nn Tensor

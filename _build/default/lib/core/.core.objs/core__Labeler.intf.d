lib/core/labeler.mli: Cdcl Cnf Format

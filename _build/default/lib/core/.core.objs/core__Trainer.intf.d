lib/core/trainer.mli: Cnf Metrics Model Satgraph

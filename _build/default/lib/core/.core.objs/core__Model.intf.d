lib/core/model.mli: Cnf Nn Satgraph

lib/core/selector.mli: Cdcl Cnf Model

lib/core/hgt.mli: Nn Satgraph Util

lib/core/trainer.ml: Array List Metrics Model Nn Satgraph

lib/core/mpnn.ml: List Nn Satgraph

lib/core/hgt.ml: Attention List Mpnn Option Printf

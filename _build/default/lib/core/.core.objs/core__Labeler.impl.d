lib/core/labeler.ml: Cdcl Format

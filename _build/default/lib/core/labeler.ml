module Solver = Cdcl.Solver

type outcome = {
  default_propagations : int;
  frequency_propagations : int;
  default_result : Solver.result;
  frequency_result : Solver.result;
  reduction : float;
  label : bool;
}

let run policy budget formula =
  let config =
    Cdcl.Config.default
    |> Cdcl.Config.with_policy policy
    |> Cdcl.Config.with_budget ~max_propagations:budget
  in
  Solver.solve_formula ~config formula

let label_instance ?(threshold = 0.02) ?(alpha = Cdcl.Policy.default_alpha)
    ?(budget = 3_000_000) formula =
  let default_result, dstats = run Cdcl.Policy.Default budget formula in
  let frequency_result, fstats =
    run (Cdcl.Policy.Frequency { alpha }) budget formula
  in
  let dp = dstats.Cdcl.Solver_stats.propagations in
  let fp = fstats.Cdcl.Solver_stats.propagations in
  let reduction =
    if dp = 0 then 0.0 else float_of_int (dp - fp) /. float_of_int dp
  in
  {
    default_propagations = dp;
    frequency_propagations = fp;
    default_result;
    frequency_result;
    reduction;
    label = reduction >= threshold;
  }

let pp_outcome ppf o =
  let result_name = function
    | Solver.Sat _ -> "sat"
    | Solver.Unsat -> "unsat"
    | Solver.Unknown -> "unknown"
  in
  Format.fprintf ppf "default %d (%s), frequency %d (%s), reduction %.2f%% -> label %d"
    o.default_propagations (result_name o.default_result) o.frequency_propagations
    (result_name o.frequency_result) (100.0 *. o.reduction)
    (if o.label then 1 else 0)

type selection = {
  policy : Cdcl.Policy.t;
  probability : float;
  inference_seconds : float;
}

let select_policy ?(alpha = Cdcl.Policy.default_alpha) model formula =
  let t0 = Sys.time () in
  let probability = Model.predict_formula model formula in
  let inference_seconds = Sys.time () -. t0 in
  let policy =
    if probability > 0.5 then Cdcl.Policy.Frequency { alpha } else Cdcl.Policy.Default
  in
  { policy; probability; inference_seconds }

let solve_adaptive ?(config = Cdcl.Config.default) ?alpha model formula =
  let selection = select_policy ?alpha model formula in
  let config = Cdcl.Config.with_policy selection.policy config in
  let result, stats = Cdcl.Solver.solve_formula ~config formula in
  (selection, result, stats)

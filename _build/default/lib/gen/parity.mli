(** XOR/parity chain instances (Tseitin-style).

    [chain] encodes [x1 xor ... xor xn = target] with chained auxiliary
    variables. [contradiction] asserts opposite parities of the same
    variables through two independently shuffled chains — unsatisfiable,
    and hard for resolution-based solvers as n grows. *)

val chain : Util.Rng.t -> num_vars:int -> target:bool -> Cnf.Formula.t

val contradiction : Util.Rng.t -> num_vars:int -> Cnf.Formula.t
(** UNSAT for every [num_vars >= 1]. *)

(* xor3 builder: adds clauses for a = b xor c. *)
let add_xor_def builder a b c =
  let open Cnf.Formula.Builder in
  add_dimacs builder [ -a; b; c ];
  add_dimacs builder [ -a; -b; -c ];
  add_dimacs builder [ a; -b; c ];
  add_dimacs builder [ a; b; -c ]

(* Chain x_{order(1)} xor ... xor x_{order(n)} = target using fresh
   auxiliaries in [builder]; [vars] are existing variable ids. *)
let add_chain builder rng vars target =
  let order = Array.copy vars in
  Util.Rng.shuffle rng order;
  match Array.to_list order with
  | [] -> ()
  | [ x ] ->
    Cnf.Formula.Builder.add_dimacs builder [ (if target then x else -x) ]
  | x :: rest ->
    let acc = ref x in
    let handle y =
      let aux = Cnf.Formula.Builder.fresh_var builder in
      add_xor_def builder aux !acc y;
      acc := aux
    in
    List.iter handle rest;
    Cnf.Formula.Builder.add_dimacs builder [ (if target then !acc else - !acc) ]

let chain rng ~num_vars ~target =
  if num_vars < 1 then invalid_arg "Parity.chain";
  let builder = Cnf.Formula.Builder.create () in
  Cnf.Formula.Builder.ensure_vars builder num_vars;
  add_chain builder rng (Array.init num_vars (fun i -> i + 1)) target;
  Cnf.Formula.Builder.build builder

let contradiction rng ~num_vars =
  if num_vars < 1 then invalid_arg "Parity.contradiction";
  let builder = Cnf.Formula.Builder.create () in
  Cnf.Formula.Builder.ensure_vars builder num_vars;
  let vars = Array.init num_vars (fun i -> i + 1) in
  add_chain builder rng vars true;
  add_chain builder rng vars false;
  Cnf.Formula.Builder.build builder

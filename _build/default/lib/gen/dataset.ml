type instance = {
  name : string;
  family : string;
  year : int;
  formula : Cnf.Formula.t;
}

type split = {
  train : instance list;
  test : instance list;
}

let years_train = [ 2016; 2017; 2018; 2019; 2020; 2021 ]
let year_test = 2022

(* Family mix: weights chosen so structured families (where the
   frequency policy tends to help) and random ones (where it tends not
   to) are both well represented, giving a balanced labelling. *)
let families =
  [| "ksat"; "php"; "color"; "parity"; "adder"; "mult"; "ksat"; "parity" |]

let make_instance rng year index =
  let family = families.(index mod Array.length families) in
  (* Sizes drift upward with the year, like the competition does. *)
  let growth = (year - 2016) * 2 in
  let formula =
    match family with
    | "ksat" ->
      let num_vars = Util.Rng.int_in rng (90 + growth) (160 + (2 * growth)) in
      let ratio = Util.Rng.uniform rng 4.0 4.6 in
      let num_clauses = int_of_float (ratio *. float_of_int num_vars) in
      Ksat.generate rng ~num_vars ~num_clauses ~k:3
    | "php" ->
      let holes = Util.Rng.int_in rng 6 7 in
      Pigeonhole.unsat holes
    | "color" ->
      let vertices = Util.Rng.int_in rng (35 + growth) (70 + growth) in
      Coloring.hard_3col rng ~vertices
    | "parity" ->
      let num_vars = Util.Rng.int_in rng 14 (26 + (growth / 2)) in
      Parity.contradiction rng ~num_vars
    | "adder" ->
      let width = Util.Rng.int_in rng 8 (16 + growth) in
      let faulty = Util.Rng.bool rng in
      Circuits.adder_miter ~faulty width
    | "mult" ->
      let width = Util.Rng.int_in rng 4 5 in
      let faulty = Util.Rng.bool rng in
      Circuits.multiplier_miter ~faulty width
    | _ -> assert false
  in
  {
    name = Printf.sprintf "%d-%s-%03d" year family index;
    family;
    year;
    formula;
  }

let generate_year ~seed ~per_year year =
  let rng = Util.Rng.create (seed lxor (year * 7919)) in
  List.init per_year (fun i -> make_instance rng year i)

let generate ?(seed = 2024) ?(per_year = 24) () =
  let train =
    List.concat_map (generate_year ~seed ~per_year) years_train
  in
  let test = generate_year ~seed ~per_year year_test in
  { train; test }

type year_stats = {
  year : int;
  num_cnfs : int;
  mean_vars : float;
  mean_clauses : float;
}

let stats instances =
  let years =
    List.sort_uniq compare (List.map (fun (i : instance) -> i.year) instances)
  in
  let year_row year =
    let group = List.filter (fun (i : instance) -> i.year = year) instances in
    let n = List.length group in
    let sum f =
      List.fold_left (fun acc (i : instance) -> acc + f i.formula) 0 group
    in
    {
      year;
      num_cnfs = n;
      mean_vars = float_of_int (sum Cnf.Formula.num_vars) /. float_of_int (max n 1);
      mean_clauses =
        float_of_int (sum Cnf.Formula.num_clauses) /. float_of_int (max n 1);
    }
  in
  List.map year_row years

let pp_stats ppf rows =
  Format.fprintf ppf "@[<v>%-6s %-7s %-12s %-12s@," "Year" "# CNFs" "mean vars" "mean clauses";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-6d %-7d %-12.1f %-12.1f@," r.year r.num_cnfs r.mean_vars
        r.mean_clauses)
    rows;
  Format.fprintf ppf "@]"

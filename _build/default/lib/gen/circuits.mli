(** Circuit-verification workloads (the EDA family).

    Equivalence miters between structurally different implementations
    of the same arithmetic function, Tseitin-encoded: the miter output
    asserts "the two implementations differ", so a correct pair yields
    an UNSAT CNF (equivalence proof) and a fault-injected pair yields a
    SAT CNF (counterexample exists). *)

val adder_miter : ?faulty:bool -> int -> Cnf.Formula.t
(** [adder_miter width]: ripple-carry adder vs a mux-based adder of the
    same width. [faulty] inverts one sum bit of the second
    implementation. *)

val multiplier_miter : ?faulty:bool -> int -> Cnf.Formula.t
(** Shift-and-add vs Wallace-tree multiplier. Difficulty grows steeply
    with [width]; 3–5 is laptop-scale. *)

val equivalent_outputs : width:int -> bool
(** Sanity helper: simulate both adder implementations on all inputs
    (width <= 10) and report functional equality. *)

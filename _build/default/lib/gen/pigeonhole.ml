let generate ~pigeons ~holes =
  if pigeons < 1 || holes < 1 then invalid_arg "Pigeonhole.generate";
  let builder = Cnf.Formula.Builder.create () in
  let var p h = ((p - 1) * holes) + h in
  Cnf.Formula.Builder.ensure_vars builder (pigeons * holes);
  for p = 1 to pigeons do
    Cnf.Formula.Builder.add_dimacs builder (List.init holes (fun h -> var p (h + 1)))
  done;
  for h = 1 to holes do
    for p1 = 1 to pigeons do
      for p2 = p1 + 1 to pigeons do
        Cnf.Formula.Builder.add_dimacs builder [ -(var p1 h); -(var p2 h) ]
      done
    done
  done;
  Cnf.Formula.Builder.build builder

let unsat n = generate ~pigeons:(n + 1) ~holes:n

let generate rng ~num_vars ~num_clauses ~k =
  if k < 1 || k > num_vars then invalid_arg "Ksat.generate: bad k";
  let builder = Cnf.Formula.Builder.create () in
  Cnf.Formula.Builder.ensure_vars builder num_vars;
  for _ = 1 to num_clauses do
    let vars = Util.Rng.sample_distinct rng k num_vars in
    let lits =
      Array.to_list
        (Array.map (fun v -> Cnf.Lit.make (v + 1) (Util.Rng.bool rng)) vars)
    in
    Cnf.Formula.Builder.add_clause builder lits
  done;
  Cnf.Formula.Builder.build builder

let near_threshold rng ~num_vars =
  let num_clauses = int_of_float (4.27 *. float_of_int num_vars) in
  generate rng ~num_vars ~num_clauses ~k:3

lib/gen/ksat.mli: Cnf Util

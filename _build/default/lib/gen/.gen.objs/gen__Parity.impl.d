lib/gen/parity.ml: Array Cnf List Util

lib/gen/pigeonhole.mli: Cnf

lib/gen/dataset.ml: Array Circuits Cnf Coloring Format Ksat List Parity Pigeonhole Printf Util

lib/gen/coloring.ml: Cnf List Util

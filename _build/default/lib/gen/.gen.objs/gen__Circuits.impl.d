lib/gen/circuits.ml: Array Cnf

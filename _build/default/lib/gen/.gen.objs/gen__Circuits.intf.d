lib/gen/circuits.mli: Cnf

lib/gen/ksat.ml: Array Cnf Util

lib/gen/pigeonhole.ml: Cnf List

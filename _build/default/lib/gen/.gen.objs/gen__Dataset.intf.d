lib/gen/dataset.mli: Cnf Format

lib/gen/coloring.mli: Cnf Util

lib/gen/parity.mli: Cnf Util

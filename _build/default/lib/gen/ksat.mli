(** Uniform random k-SAT.

    Clauses draw [k] distinct variables and independent random signs.
    At clause/variable ratio ~4.27 (k=3) instances sit near the
    SAT/UNSAT phase transition, the classic hard regime. *)

val generate :
  Util.Rng.t -> num_vars:int -> num_clauses:int -> k:int -> Cnf.Formula.t
(** @raise Invalid_argument when [k > num_vars] or [k < 1]. *)

val near_threshold : Util.Rng.t -> num_vars:int -> Cnf.Formula.t
(** 3-SAT at ratio 4.27. *)

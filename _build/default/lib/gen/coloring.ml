let generate rng ~vertices ~edge_prob ~colors =
  if vertices < 1 || colors < 1 then invalid_arg "Coloring.generate";
  let builder = Cnf.Formula.Builder.create () in
  let var v c = ((v - 1) * colors) + c in
  Cnf.Formula.Builder.ensure_vars builder (vertices * colors);
  for v = 1 to vertices do
    Cnf.Formula.Builder.add_dimacs builder (List.init colors (fun c -> var v (c + 1)))
  done;
  for u = 1 to vertices do
    for v = u + 1 to vertices do
      if Util.Rng.float rng 1.0 < edge_prob then
        for c = 1 to colors do
          Cnf.Formula.Builder.add_dimacs builder [ -(var u c); -(var v c) ]
        done
    done
  done;
  Cnf.Formula.Builder.build builder

let hard_3col rng ~vertices =
  (* Average degree ~4.7 is the 3-colourability threshold. *)
  let edge_prob = 4.7 /. float_of_int (max 1 (vertices - 1)) in
  generate rng ~vertices ~edge_prob ~colors:3

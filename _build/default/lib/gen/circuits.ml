module Circuit = Cnf.Circuit

(* A structurally different full adder: sum and carry through muxes. *)
let mux_full_adder c a b cin =
  let ab = Circuit.xor_ c a b in
  let sum = Circuit.mux c ~sel:cin (Circuit.not_ ab) ab in
  let carry = Circuit.mux c ~sel:ab cin a in
  (sum, carry)

let mux_adder c xs ys =
  let n = Array.length xs in
  let sum = Array.make n Circuit.false_ in
  let carry = ref Circuit.false_ in
  for i = 0 to n - 1 do
    let s, co = mux_full_adder c xs.(i) ys.(i) !carry in
    sum.(i) <- s;
    carry := co
  done;
  sum

let inject_fault outs =
  let outs = Array.copy outs in
  let mid = Array.length outs / 2 in
  outs.(mid) <- Circuit.not_ outs.(mid);
  outs

let adder_miter ?(faulty = false) width =
  if width < 1 then invalid_arg "Circuits.adder_miter";
  let c = Circuit.create () in
  let xs = Circuit.input_array c width in
  let ys = Circuit.input_array c width in
  let sum1, _ = Circuit.ripple_adder c xs ys in
  let sum2 = mux_adder c xs ys in
  let sum2 = if faulty then inject_fault sum2 else sum2 in
  let differ = Circuit.miter c sum1 sum2 in
  let formula, _mapping = Cnf.Tseitin.encode c ~asserted:[ differ ] in
  formula

let multiplier_miter ?(faulty = false) width =
  if width < 1 then invalid_arg "Circuits.multiplier_miter";
  let c = Circuit.create () in
  let xs = Circuit.input_array c width in
  let ys = Circuit.input_array c width in
  let prod1 = Circuit.multiplier c xs ys in
  let prod2 = Circuit.wallace_multiplier c xs ys in
  let prod2 = if faulty then inject_fault prod2 else prod2 in
  let differ = Circuit.miter c prod1 prod2 in
  let formula, _mapping = Cnf.Tseitin.encode c ~asserted:[ differ ] in
  formula

let equivalent_outputs ~width =
  if width > 10 then invalid_arg "Circuits.equivalent_outputs: width too large";
  let c = Circuit.create () in
  let xs = Circuit.input_array c width in
  let ys = Circuit.input_array c width in
  let sum1, _ = Circuit.ripple_adder c xs ys in
  let sum2 = mux_adder c xs ys in
  let total = 1 lsl (2 * width) in
  let ok = ref true in
  for pattern = 0 to total - 1 do
    let inputs =
      Array.init (2 * width) (fun i -> (pattern lsr i) land 1 = 1)
    in
    Array.iteri
      (fun i s1 ->
        if Circuit.eval c inputs s1 <> Circuit.eval c inputs sum2.(i) then ok := false)
      sum1
  done;
  !ok

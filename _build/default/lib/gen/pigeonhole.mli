(** Pigeonhole principle instances PHP(p, h).

    [p] pigeons into [h] holes: every pigeon gets a hole, no hole holds
    two pigeons. Unsatisfiable iff [p > h]; resolution proofs are
    exponential, so these stress clause learning and deletion. *)

val generate : pigeons:int -> holes:int -> Cnf.Formula.t
(** Variable [(p-1)*holes + h] means "pigeon p in hole h" (1-based). *)

val unsat : int -> Cnf.Formula.t
(** [unsat n] = PHP(n+1, n). *)

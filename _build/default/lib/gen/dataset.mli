(** Year-structured benchmark dataset (the Table 1 substitute).

    The paper trains on SAT-competition main tracks 2016–2021 and tests
    on 2022. Offline we synthesise the same structure: each "year" is a
    deterministic mix of six instance families (random 3-SAT near the
    phase transition, pigeonhole, graph 3-colouring, XOR-chain
    contradictions, adder-equivalence miters, multiplier miters) whose
    size ranges drift slightly across years, mirroring the competition's
    growth. Everything derives from one seed. *)

type instance = {
  name : string;
  family : string;
  year : int;
  formula : Cnf.Formula.t;
}

type split = {
  train : instance list;  (** Years 2016–2021. *)
  test : instance list;  (** Year 2022. *)
}

val years_train : int list
val year_test : int

val generate_year : seed:int -> per_year:int -> int -> instance list
(** Deterministic in [(seed, year)]. *)

val generate : ?seed:int -> ?per_year:int -> unit -> split
(** [per_year] defaults to 24. *)

type year_stats = {
  year : int;
  num_cnfs : int;
  mean_vars : float;
  mean_clauses : float;
}

val stats : instance list -> year_stats list
(** Grouped by year, ascending — the rows of Table 1. *)

val pp_stats : Format.formatter -> year_stats list -> unit

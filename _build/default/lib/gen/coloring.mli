(** Graph k-colouring as CNF.

    Random Erdős–Rényi graphs; variable [(v-1)*colors + c] means
    "vertex v has colour c". Encodes at-least-one colour per vertex and
    no monochromatic edge. Density controls the SAT/UNSAT mix. *)

val generate :
  Util.Rng.t -> vertices:int -> edge_prob:float -> colors:int -> Cnf.Formula.t

val hard_3col : Util.Rng.t -> vertices:int -> Cnf.Formula.t
(** 3-colouring at the critical average degree (~4.7). *)

(** Parameter (de)serialisation.

    A plain text format: one [name rows cols] header line per parameter
    followed by its row-major values, so checkpoints diff cleanly and
    survive compiler upgrades (no Marshal). *)

val save : string -> Param.t list -> unit
(** Write every parameter's current value to a file. *)

val load : string -> Param.t list -> unit
(** Restore values into an existing parameter list, matched by name.
    @raise Failure if a parameter is missing from the file or shapes
    disagree. *)

val to_string : Param.t list -> string
val of_string : string -> Param.t list -> unit

(** Neural-network layers built on {!Ad}. *)

(** Affine map [x W + b]. *)
module Linear : sig
  type t

  val create :
    ?bias:bool -> Util.Rng.t -> in_dim:int -> out_dim:int -> name:string -> t
  (** Xavier-initialised weights; zero bias (present unless
      [~bias:false]). *)

  val forward : Ad.tape -> t -> Ad.v -> Ad.v
  (** Input [n x in_dim], output [n x out_dim]. *)

  val params : t -> Param.t list
  val in_dim : t -> int
  val out_dim : t -> int
end

(** Multi-layer perceptron with ReLU between hidden layers and a linear
    final layer. *)
module Mlp : sig
  type t

  val create : Util.Rng.t -> dims:int list -> name:string -> t
  (** [dims] lists layer widths, e.g. [[32; 16; 1]] for
      32 -> 16 -> 1. Needs at least two entries. *)

  val forward : Ad.tape -> t -> Ad.v -> Ad.v
  val params : t -> Param.t list
end

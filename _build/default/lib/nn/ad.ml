module Mat = Tensor.Mat

type v = {
  value : Mat.t;
  grad : Mat.t;
  backward : unit -> unit;
}

type tape = { nodes : v Util.Vec.t }

let dummy_node =
  { value = Mat.zeros 0 0; grad = Mat.zeros 0 0; backward = (fun () -> ()) }

let tape () = { nodes = Util.Vec.create ~dummy:dummy_node () }

let node tape value backward =
  let n = { value; grad = Mat.zeros (Mat.rows value) (Mat.cols value); backward } in
  Util.Vec.push tape.nodes n;
  n

let value n = n.value
let grad n = n.grad
let node_count tape = Util.Vec.length tape.nodes

let of_param tape (p : Param.t) =
  let rec n =
    {
      value = p.Param.value;
      grad = Mat.zeros (Mat.rows p.Param.value) (Mat.cols p.Param.value);
      backward = (fun () -> Mat.add_in_place p.Param.grad n.grad);
    }
  in
  Util.Vec.push tape.nodes n;
  n

let const tape m = node tape m (fun () -> ())

(* Each op allocates its output node, then installs a backward closure
   that reads the output's gradient and accumulates into the inputs'. *)

let add tape a b =
  let rec out =
    lazy
      (node tape (Mat.add a.value b.value) (fun () ->
           let g = (Lazy.force out).grad in
           Mat.add_in_place a.grad g;
           Mat.add_in_place b.grad g))
  in
  Lazy.force out

let sub tape a b =
  let rec out =
    lazy
      (node tape (Mat.sub a.value b.value) (fun () ->
           let g = (Lazy.force out).grad in
           Mat.add_in_place a.grad g;
           Mat.add_in_place b.grad (Mat.scale (-1.0) g)))
  in
  Lazy.force out

let mul tape a b =
  let rec out =
    lazy
      (node tape (Mat.mul a.value b.value) (fun () ->
           let g = (Lazy.force out).grad in
           Mat.add_in_place a.grad (Mat.mul g b.value);
           Mat.add_in_place b.grad (Mat.mul g a.value)))
  in
  Lazy.force out

let scale tape s a =
  let rec out =
    lazy
      (node tape (Mat.scale s a.value) (fun () ->
           Mat.add_in_place a.grad (Mat.scale s (Lazy.force out).grad)))
  in
  Lazy.force out

let matmul tape a b =
  let rec out =
    lazy
      (node tape (Mat.matmul a.value b.value) (fun () ->
           let g = (Lazy.force out).grad in
           Mat.add_in_place a.grad (Mat.matmul_transpose_b g b.value);
           Mat.add_in_place b.grad (Mat.matmul_transpose_a a.value g)))
  in
  Lazy.force out

let matmul_ta tape a b =
  (* out = a^T b with a : n x m, b : n x p, out : m x p.
     da = b (dout)^T = matmul_transpose_b b dout ; db = a dout. *)
  let rec out =
    lazy
      (node tape (Mat.matmul_transpose_a a.value b.value) (fun () ->
           let g = (Lazy.force out).grad in
           Mat.add_in_place a.grad (Mat.matmul_transpose_b b.value g);
           Mat.add_in_place b.grad (Mat.matmul a.value g)))
  in
  Lazy.force out

let relu tape a =
  let y = Mat.map (fun x -> if x > 0.0 then x else 0.0) a.value in
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = (Lazy.force out).grad in
           Mat.add_in_place a.grad
             (Mat.map2 (fun gx x -> if x > 0.0 then gx else 0.0) g a.value)))
  in
  Lazy.force out

let sigmoid tape a =
  let y = Mat.map (fun x -> 1.0 /. (1.0 +. exp (-.x))) a.value in
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = (Lazy.force out).grad in
           Mat.add_in_place a.grad (Mat.map2 (fun gx s -> gx *. s *. (1.0 -. s)) g y)))
  in
  Lazy.force out

let tanh tape a =
  let y = Mat.map Float.tanh a.value in
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = (Lazy.force out).grad in
           Mat.add_in_place a.grad
             (Mat.map2 (fun gx th -> gx *. (1.0 -. (th *. th))) g y)))
  in
  Lazy.force out

let add_row_bias tape x b =
  if Mat.rows b.value <> 1 || Mat.cols b.value <> Mat.cols x.value then
    invalid_arg "Ad.add_row_bias: bias must be 1 x cols(x)";
  let y =
    Mat.init (Mat.rows x.value) (Mat.cols x.value) (fun i j ->
        Mat.get x.value i j +. Mat.get b.value 0 j)
  in
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = (Lazy.force out).grad in
           Mat.add_in_place x.grad g;
           Mat.add_in_place b.grad (Mat.scale (float_of_int (Mat.rows g)) (Mat.col_means g))))
  in
  Lazy.force out

let mean_rows tape x =
  let n = Mat.rows x.value in
  let y = Mat.col_means x.value in
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = (Lazy.force out).grad in
           let inv = 1.0 /. float_of_int (max n 1) in
           let spread =
             Mat.init n (Mat.cols x.value) (fun _ j -> inv *. Mat.get g 0 j)
           in
           Mat.add_in_place x.grad spread))
  in
  Lazy.force out

let max_rows tape x =
  let n = Mat.rows x.value and m = Mat.cols x.value in
  if n = 0 then invalid_arg "Ad.max_rows: empty input";
  let argmax = Array.make m 0 in
  let y = Mat.zeros 1 m in
  for j = 0 to m - 1 do
    let best = ref 0 in
    for i = 1 to n - 1 do
      if Mat.get x.value i j > Mat.get x.value !best j then best := i
    done;
    argmax.(j) <- !best;
    Mat.set y 0 j (Mat.get x.value !best j)
  done;
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = (Lazy.force out).grad in
           for j = 0 to m - 1 do
             let i = argmax.(j) in
             Mat.set x.grad i j (Mat.get x.grad i j +. Mat.get g 0 j)
           done))
  in
  Lazy.force out

let concat_cols tape a b =
  if Mat.rows a.value <> Mat.rows b.value then
    invalid_arg "Ad.concat_cols: row mismatch";
  let n = Mat.rows a.value in
  let ca = Mat.cols a.value and cb = Mat.cols b.value in
  let y =
    Mat.init n (ca + cb) (fun i j ->
        if j < ca then Mat.get a.value i j else Mat.get b.value i (j - ca))
  in
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = (Lazy.force out).grad in
           for i = 0 to n - 1 do
             for j = 0 to ca - 1 do
               Mat.set a.grad i j (Mat.get a.grad i j +. Mat.get g i j)
             done;
             for j = 0 to cb - 1 do
               Mat.set b.grad i j (Mat.get b.grad i j +. Mat.get g i (ca + j))
             done
           done))
  in
  Lazy.force out

let sum_all tape x =
  let y = Mat.of_array ~rows:1 ~cols:1 [| Mat.sum x.value |] in
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = Mat.get (Lazy.force out).grad 0 0 in
           Mat.add_in_place x.grad
             (Mat.create (Mat.rows x.value) (Mat.cols x.value) g)))
  in
  Lazy.force out

let frobenius_normalize tape x =
  let s = Mat.frobenius_norm x.value in
  if s < 1e-12 then x
  else begin
    let y = Mat.scale (1.0 /. s) x.value in
    let rec out =
      lazy
        (node tape y (fun () ->
             let g = (Lazy.force out).grad in
             (* d/dx (x/s) = g/s - (sum(g .* x)/s^3) x *)
             let dot = Mat.sum (Mat.mul g x.value) in
             let term1 = Mat.scale (1.0 /. s) g in
             let term2 = Mat.scale (dot /. (s *. s *. s)) x.value in
             Mat.add_in_place x.grad (Mat.sub term1 term2)))
    in
    Lazy.force out
  end

let div_rows tape x d =
  if Mat.cols d.value <> 1 || Mat.rows d.value <> Mat.rows x.value then
    invalid_arg "Ad.div_rows: divisor must be rows(x) x 1";
  let y =
    Mat.init (Mat.rows x.value) (Mat.cols x.value) (fun i j ->
        Mat.get x.value i j /. Mat.get d.value i 0)
  in
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = (Lazy.force out).grad in
           let n = Mat.rows x.value and m = Mat.cols x.value in
           let gx =
             Mat.init n m (fun i j -> Mat.get g i j /. Mat.get d.value i 0)
           in
           Mat.add_in_place x.grad gx;
           let gd =
             Mat.init n 1 (fun i _ ->
                 let di = Mat.get d.value i 0 in
                 let acc = ref 0.0 in
                 for j = 0 to m - 1 do
                   acc := !acc +. (Mat.get g i j *. Mat.get x.value i j)
                 done;
                 -. !acc /. (di *. di))
           in
           Mat.add_in_place d.grad gd))
  in
  Lazy.force out

let add_scalar tape c x =
  let rec out =
    lazy
      (node tape (Mat.map (fun v -> v +. c) x.value) (fun () ->
           Mat.add_in_place x.grad (Lazy.force out).grad))
  in
  Lazy.force out

let gather_rows tape x idx =
  let cols = Mat.cols x.value in
  let xrows = Mat.rows x.value in
  Array.iter
    (fun i -> if i < 0 || i >= xrows then invalid_arg "Ad.gather_rows: index")
    idx;
  let n = Array.length idx in
  let y = Mat.zeros n cols in
  let ydata = y.data and xdata = x.value.data in
  for k = 0 to n - 1 do
    Array.blit xdata (idx.(k) * cols) ydata (k * cols) cols
  done;
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = (Lazy.force out).grad.data in
           let xg = x.grad.data in
           for k = 0 to n - 1 do
             let src = k * cols and dst = idx.(k) * cols in
             for j = 0 to cols - 1 do
               xg.(dst + j) <- xg.(dst + j) +. g.(src + j)
             done
           done))
  in
  Lazy.force out

let scatter_sum tape x idx ~rows =
  if Array.length idx <> Mat.rows x.value then
    invalid_arg "Ad.scatter_sum: index length mismatch";
  Array.iter
    (fun i -> if i < 0 || i >= rows then invalid_arg "Ad.scatter_sum: index range")
    idx;
  let cols = Mat.cols x.value in
  let n = Array.length idx in
  let y = Mat.zeros rows cols in
  let ydata = y.data and xdata = x.value.data in
  for k = 0 to n - 1 do
    let src = k * cols and dst = idx.(k) * cols in
    for j = 0 to cols - 1 do
      ydata.(dst + j) <- ydata.(dst + j) +. xdata.(src + j)
    done
  done;
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = (Lazy.force out).grad.data in
           let xg = x.grad.data in
           for k = 0 to n - 1 do
             let dst = k * cols and src = idx.(k) * cols in
             for j = 0 to cols - 1 do
               xg.(dst + j) <- xg.(dst + j) +. g.(src + j)
             done
           done))
  in
  Lazy.force out

let scale_rows tape x coeffs =
  let rows = Mat.rows x.value and cols = Mat.cols x.value in
  if Array.length coeffs <> rows then
    invalid_arg "Ad.scale_rows: coefficient length mismatch";
  let y = Mat.zeros rows cols in
  let ydata = y.data and xdata = x.value.data in
  for i = 0 to rows - 1 do
    let c = coeffs.(i) and base = i * cols in
    for j = 0 to cols - 1 do
      ydata.(base + j) <- c *. xdata.(base + j)
    done
  done;
  let rec out =
    lazy
      (node tape y (fun () ->
           let g = (Lazy.force out).grad.data in
           let xg = x.grad.data in
           for i = 0 to rows - 1 do
             let c = coeffs.(i) and base = i * cols in
             for j = 0 to cols - 1 do
               xg.(base + j) <- xg.(base + j) +. (c *. g.(base + j))
             done
           done))
  in
  Lazy.force out

let bce_with_logits tape z y =
  if Mat.rows z.value <> 1 || Mat.cols z.value <> 1 then
    invalid_arg "Ad.bce_with_logits: logit must be 1 x 1";
  if y <> 0.0 && y <> 1.0 then invalid_arg "Ad.bce_with_logits: label must be 0 or 1";
  let x = Mat.get z.value 0 0 in
  (* Stable: max(x,0) - x*y + log(1 + exp(-|x|)) *)
  let loss = Float.max x 0.0 -. (x *. y) +. log (1.0 +. exp (-.Float.abs x)) in
  let p = 1.0 /. (1.0 +. exp (-.x)) in
  let rec out =
    lazy
      (node tape
         (Mat.of_array ~rows:1 ~cols:1 [| loss |])
         (fun () ->
           let g = Mat.get (Lazy.force out).grad 0 0 in
           Mat.set z.grad 0 0 (Mat.get z.grad 0 0 +. (g *. (p -. y)))))
  in
  Lazy.force out

let backward tape out =
  if Mat.rows out.value <> 1 || Mat.cols out.value <> 1 then
    invalid_arg "Ad.backward: output must be scalar";
  Mat.set out.grad 0 0 1.0;
  for i = Util.Vec.length tape.nodes - 1 downto 0 do
    (Util.Vec.get tape.nodes i).backward ()
  done

module Mat = Tensor.Mat

type 'g spec = {
  params : Param.t list;
  forward : Ad.tape -> 'g -> Ad.v;
}

type history = { epoch_losses : float array }

let loss_node ?(pos_weight = 1.0) spec tape input label =
  let logit = spec.forward tape input in
  let bce = Ad.bce_with_logits tape logit (if label then 1.0 else 0.0) in
  if label && pos_weight <> 1.0 then Ad.scale tape pos_weight bce else bce

let auto_pos_weight examples =
  let pos = Array.fold_left (fun n (_, l) -> if l then n + 1 else n) 0 examples in
  let neg = Array.length examples - pos in
  if pos = 0 || neg = 0 then 1.0
  else Float.min 10.0 (Float.max 1.0 (float_of_int neg /. float_of_int pos))

let loss spec input label =
  let tape = Ad.tape () in
  Mat.get (Ad.value (loss_node spec tape input label)) 0 0

let predict_prob spec input =
  let tape = Ad.tape () in
  let z = Mat.get (Ad.value (spec.forward tape input)) 0 0 in
  1.0 /. (1.0 +. exp (-.z))

let predict spec input = predict_prob spec input > 0.5

let fit ?(epochs = 40) ?(lr = 1e-3) ?(seed = 7) ?(pos_weight = 1.0) ?progress spec
    examples =
  if Array.length examples = 0 then invalid_arg "Train.fit: empty dataset";
  let optimiser = Optim.adam ~lr spec.params in
  let rng = Util.Rng.create seed in
  let order = Array.copy examples in
  let losses = Array.make epochs 0.0 in
  for epoch = 0 to epochs - 1 do
    Util.Rng.shuffle rng order;
    let total = ref 0.0 in
    Array.iter
      (fun (input, label) ->
        let tape = Ad.tape () in
        let l = loss_node ~pos_weight spec tape input label in
        total := !total +. Mat.get (Ad.value l) 0 0;
        Ad.backward tape l;
        Optim.step optimiser)
      order;
    let mean = !total /. float_of_int (Array.length order) in
    losses.(epoch) <- mean;
    match progress with
    | Some f -> f ~epoch ~loss:mean
    | None -> ()
  done;
  { epoch_losses = losses }

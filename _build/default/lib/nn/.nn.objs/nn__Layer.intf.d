lib/nn/layer.mli: Ad Param Util

lib/nn/checkpoint.ml: Array Buffer Fun Hashtbl List Param Printf String Tensor

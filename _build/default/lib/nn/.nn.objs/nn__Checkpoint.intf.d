lib/nn/checkpoint.mli: Param

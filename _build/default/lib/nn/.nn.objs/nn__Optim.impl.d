lib/nn/optim.ml: List Param Tensor

lib/nn/param.mli: Format Tensor

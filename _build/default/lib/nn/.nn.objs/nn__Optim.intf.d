lib/nn/optim.mli: Param

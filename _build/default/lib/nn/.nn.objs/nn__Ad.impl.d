lib/nn/ad.ml: Array Float Lazy Param Tensor Util

lib/nn/train.mli: Ad Param

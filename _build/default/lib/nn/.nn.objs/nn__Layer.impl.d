lib/nn/layer.ml: Ad List Param Printf Tensor

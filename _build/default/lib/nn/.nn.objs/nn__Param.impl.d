lib/nn/param.ml: Format Tensor

lib/nn/train.ml: Ad Array Float Optim Param Tensor Util

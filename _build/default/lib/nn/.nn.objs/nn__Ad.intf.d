lib/nn/ad.mli: Param Tensor

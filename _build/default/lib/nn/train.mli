(** Generic single-output binary-classifier training.

    Polymorphic in the input representation ['g] so the NeuroSelect
    model (bipartite graphs) and the baselines (literal–clause graphs)
    share one loop: BCE loss, Adam, batch size 1, shuffled epochs. *)

type 'g spec = {
  params : Param.t list;
  forward : Ad.tape -> 'g -> Ad.v;  (** Must return a [1 x 1] logit. *)
}

type history = { epoch_losses : float array }

val fit :
  ?epochs:int ->
  ?lr:float ->
  ?seed:int ->
  ?pos_weight:float ->
  ?progress:(epoch:int -> loss:float -> unit) ->
  'g spec ->
  ('g * bool) array ->
  history
(** [pos_weight] scales the loss of positive examples (class-imbalance
    correction); pass [auto_pos_weight examples] to balance. @raise
    Invalid_argument on an empty dataset. *)

val auto_pos_weight : ('g * bool) array -> float
(** [#negatives / #positives], clamped to [\[1, 10\]]; 1 when a class is
    empty. *)

val loss : 'g spec -> 'g -> bool -> float
val predict_prob : 'g spec -> 'g -> float
val predict : 'g spec -> 'g -> bool

(** Trainable parameters.

    A parameter owns its current value, an accumulated gradient, and
    Adam moment buffers. The autodiff tape writes into [grad]; an
    optimiser consumes it and zeroes it. *)

type t = {
  name : string;
  mutable value : Tensor.Mat.t;
  mutable grad : Tensor.Mat.t;
  mutable adam_m : Tensor.Mat.t;
  mutable adam_v : Tensor.Mat.t;
}

val create : string -> Tensor.Mat.t -> t
val zero_grad : t -> unit
val num_elements : t -> int
val pp : Format.formatter -> t -> unit

(** Reverse-mode automatic differentiation over matrices.

    A {!tape} records every operation in execution order; {!backward}
    seeds the gradient of a scalar output and replays the tape in
    reverse, accumulating gradients into each node and finally into the
    {!Param.t} leaves. The op set is exactly what the NeuroSelect model
    needs, including the sparse gather/scatter pair that lets the MPNN
    backpropagate through per-edge aggregation without dense adjacency
    matrices, and the Frobenius row-normalisations of the linear
    attention layer (Eq. 8). *)

type tape
type v
(** A node: a value plus a gradient slot. *)

val tape : unit -> tape

val of_param : tape -> Param.t -> v
(** Leaf whose backward pass accumulates into [Param.grad]. *)

val const : tape -> Tensor.Mat.t -> v
(** Leaf with no tracked gradient. *)

val value : v -> Tensor.Mat.t
val grad : v -> Tensor.Mat.t
(** Gradient after {!backward} (zeros before). *)

(** {1 Dense operations} *)

val add : tape -> v -> v -> v
val sub : tape -> v -> v -> v
val mul : tape -> v -> v -> v
(** Elementwise. *)

val scale : tape -> float -> v -> v
val matmul : tape -> v -> v -> v
val matmul_ta : tape -> v -> v -> v
(** [matmul_ta a b] is [transpose a * b] (used for K^T V in Eq. 9). *)

val relu : tape -> v -> v
val sigmoid : tape -> v -> v
val tanh : tape -> v -> v
val add_row_bias : tape -> v -> v -> v
(** [add_row_bias x b] broadcasts the [1 x d] bias over the rows of
    [x : n x d]. *)

val mean_rows : tape -> v -> v
(** [n x d -> 1 x d] column means — a READOUT component of Eq. 10. *)

val max_rows : tape -> v -> v
(** [n x d -> 1 x d] column maxima; gradient flows to the argmax row.
    @raise Invalid_argument on an empty input. *)

val concat_cols : tape -> v -> v -> v
(** Horizontal concatenation [n x a ++ n x b -> n x (a+b)]. *)

val sum_all : tape -> v -> v
(** [n x d -> 1 x 1]. *)

val frobenius_normalize : tape -> v -> v
(** [x / ||x||_F], the normalisation of Q and K in Eq. 8. Safe at 0
    (returns x unchanged when the norm underflows). *)

val div_rows : tape -> v -> v -> v
(** [div_rows x d] divides row i of [x : n x m] by [d : n x 1] — the
    [D^{-1}] application of Eq. 9. *)

val add_scalar : tape -> float -> v -> v

(** {1 Sparse operations} *)

val gather_rows : tape -> v -> int array -> v
(** [gather_rows x idx] has row k equal to row [idx.(k)] of [x]. *)

val scatter_sum : tape -> v -> int array -> rows:int -> v
(** [scatter_sum x idx ~rows] builds an output with [rows] rows where
    row [idx.(k)] accumulates row k of [x]. Requires indices within
    range. *)

val scale_rows : tape -> v -> float array -> v
(** Row k multiplied by a fixed (non-differentiated) coefficient —
    edge weights [w_uv] and the [1/|N(v)|] normalisation of Eq. 6. *)

(** {1 Losses} *)

val bce_with_logits : tape -> v -> float -> v
(** [bce_with_logits z y] for a [1 x 1] logit and label [y] in {0,1}:
    the numerically-stable binary cross-entropy of Eq. 11. *)

(** {1 Backward pass} *)

val backward : tape -> v -> unit
(** Seeds the [1 x 1] output node with gradient 1 and runs the reverse
    sweep. @raise Invalid_argument if the output is not scalar. *)

val node_count : tape -> int

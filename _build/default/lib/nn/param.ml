module Mat = Tensor.Mat

type t = {
  name : string;
  mutable value : Mat.t;
  mutable grad : Mat.t;
  mutable adam_m : Mat.t;
  mutable adam_v : Mat.t;
}

let create name value =
  let r = Mat.rows value and c = Mat.cols value in
  {
    name;
    value = Mat.copy value;
    grad = Mat.zeros r c;
    adam_m = Mat.zeros r c;
    adam_v = Mat.zeros r c;
  }

let zero_grad t = Mat.fill t.grad 0.0

let num_elements t = Mat.rows t.value * Mat.cols t.value

let pp ppf t =
  Format.fprintf ppf "%s : %dx%d" t.name (Mat.rows t.value) (Mat.cols t.value)

module Mat = Tensor.Mat

let to_string params =
  let buf = Buffer.create 4096 in
  let emit (p : Param.t) =
    let v = p.Param.value in
    Buffer.add_string buf
      (Printf.sprintf "%s %d %d\n" p.Param.name (Mat.rows v) (Mat.cols v));
    for i = 0 to Mat.rows v - 1 do
      for j = 0 to Mat.cols v - 1 do
        Buffer.add_string buf (Printf.sprintf "%.17g " (Mat.get v i j))
      done;
      Buffer.add_char buf '\n'
    done
  in
  List.iter emit params;
  Buffer.contents buf

let of_string text params =
  let table = Hashtbl.create 16 in
  let tokens =
    String.split_on_char '\n' text
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun s -> s <> "")
  in
  let rec consume = function
    | [] -> ()
    | name :: r :: c :: rest ->
      let rows =
        match int_of_string_opt r with
        | Some n -> n
        | None -> failwith ("Checkpoint: bad row count for " ^ name)
      in
      let cols =
        match int_of_string_opt c with
        | Some n -> n
        | None -> failwith ("Checkpoint: bad col count for " ^ name)
      in
      let n = rows * cols in
      let data = Array.make n 0.0 in
      let rec take k rest =
        if k = n then rest
        else
          match rest with
          | [] -> failwith ("Checkpoint: truncated data for " ^ name)
          | x :: rest ->
            (match float_of_string_opt x with
            | Some f -> data.(k) <- f
            | None -> failwith ("Checkpoint: bad float for " ^ name));
            take (k + 1) rest
      in
      let rest = take 0 rest in
      Hashtbl.replace table name (Mat.of_array ~rows ~cols data);
      consume rest
    | _ -> failwith "Checkpoint: truncated header"
  in
  consume tokens;
  let restore (p : Param.t) =
    match Hashtbl.find_opt table p.Param.name with
    | None -> failwith ("Checkpoint: missing parameter " ^ p.Param.name)
    | Some m ->
      if Mat.shape m <> Mat.shape p.Param.value then
        failwith ("Checkpoint: shape mismatch for " ^ p.Param.name);
      p.Param.value <- m
  in
  List.iter restore params

let save path params =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string params))

let load path params =
  let ic = open_in path in
  let read () =
    let n = in_channel_length ic in
    really_input_string ic n
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> of_string (read ()) params)

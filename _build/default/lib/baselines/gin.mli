(** Graph Isomorphism Network classifier (G4SATBench-style), Table 2
    baseline.

    Operates on the variable–clause graph with sum aggregation and the
    GIN update [h' = MLP((1 + eps) h + sum of neighbour features)];
    alternating clause/variable updates per layer, mean readout over
    variable nodes. *)

type config = {
  hidden_dim : int;
  layers : int;
  epsilon : float;
  head_hidden : int;
  seed : int;
}

val default_config : config
(** hidden 32, 2 layers, eps 0. *)

type t

val create : config -> t
val params : t -> Nn.Param.t list
val forward_logit : t -> Nn.Ad.tape -> Satgraph.Bigraph.t -> Nn.Ad.v
val predict : t -> Satgraph.Bigraph.t -> float
val spec : t -> Satgraph.Bigraph.t Nn.Train.spec

module Ad = Nn.Ad
module Mat = Tensor.Mat
module Mlp = Nn.Layer.Mlp
module Bigraph = Satgraph.Bigraph

type config = {
  hidden_dim : int;
  layers : int;
  epsilon : float;
  head_hidden : int;
  seed : int;
}

let default_config =
  { hidden_dim = 32; layers = 2; epsilon = 0.0; head_hidden = 16; seed = 1 }

type layer = {
  var_mlp : Mlp.t;
  clause_mlp : Mlp.t;
}

type t = {
  cfg : config;
  embed_var : Nn.Layer.Linear.t;
  embed_clause : Nn.Layer.Linear.t;
  layers : layer list;
  head : Mlp.t;
}

let create cfg =
  let rng = Util.Rng.create cfg.seed in
  let d = cfg.hidden_dim in
  let layer i =
    {
      var_mlp =
        Mlp.create rng ~dims:[ d; d; d ] ~name:(Printf.sprintf "gin.%d.var" i);
      clause_mlp =
        Mlp.create rng ~dims:[ d; d; d ] ~name:(Printf.sprintf "gin.%d.clause" i);
    }
  in
  {
    cfg;
    embed_var = Nn.Layer.Linear.create rng ~in_dim:1 ~out_dim:d ~name:"gin.embed_var";
    embed_clause =
      Nn.Layer.Linear.create rng ~in_dim:1 ~out_dim:d ~name:"gin.embed_clause";
    layers = List.init cfg.layers layer;
    head = Mlp.create rng ~dims:[ d; cfg.head_hidden; 1 ] ~name:"gin.head";
  }

let params t =
  Nn.Layer.Linear.params t.embed_var
  @ Nn.Layer.Linear.params t.embed_clause
  @ List.concat_map (fun l -> Mlp.params l.var_mlp @ Mlp.params l.clause_mlp) t.layers
  @ Mlp.params t.head

(* GIN sum aggregation over the bipartite edges (no degree norm). *)
let aggregate tape feats ~send_idx ~recv_idx ~recv_rows =
  Ad.scatter_sum tape (Ad.gather_rows tape feats send_idx) recv_idx ~rows:recv_rows

let forward_logit t tape graph =
  let eps1 = 1.0 +. t.cfg.epsilon in
  let vf0 = Ad.const tape (Bigraph.initial_var_features graph) in
  let cf0 = Ad.const tape (Bigraph.initial_clause_features graph) in
  let vf = ref (Ad.relu tape (Nn.Layer.Linear.forward tape t.embed_var vf0)) in
  let cf = ref (Ad.relu tape (Nn.Layer.Linear.forward tape t.embed_clause cf0)) in
  let apply layer =
    let to_clause =
      aggregate tape !vf ~send_idx:graph.Bigraph.edge_var
        ~recv_idx:graph.Bigraph.edge_clause ~recv_rows:graph.Bigraph.num_clauses
    in
    let cf' =
      Ad.relu tape
        (Mlp.forward tape layer.clause_mlp
           (Ad.add tape (Ad.scale tape eps1 !cf) to_clause))
    in
    let to_var =
      aggregate tape cf' ~send_idx:graph.Bigraph.edge_clause
        ~recv_idx:graph.Bigraph.edge_var ~recv_rows:graph.Bigraph.num_vars
    in
    let vf' =
      Ad.relu tape
        (Mlp.forward tape layer.var_mlp
           (Ad.add tape (Ad.scale tape eps1 !vf) to_var))
    in
    vf := vf';
    cf := cf'
  in
  List.iter apply t.layers;
  let pooled = Ad.mean_rows tape !vf in
  Mlp.forward tape t.head pooled

let spec t =
  { Nn.Train.params = params t; forward = (fun tape g -> forward_logit t tape g) }

let predict t graph = Nn.Train.predict_prob (spec t) graph

module Ad = Nn.Ad
module Mat = Tensor.Mat
module Linear = Nn.Layer.Linear
module Litgraph = Satgraph.Litgraph

type config = {
  hidden_dim : int;
  rounds : int;
  head_hidden : int;
  seed : int;
}

let default_config = { hidden_dim = 32; rounds = 8; head_hidden = 16; seed = 1 }

type t = {
  cfg : config;
  embed_lit : Linear.t;  (* 1 -> d initial embedding *)
  embed_clause : Linear.t;
  msg_lit : Linear.t;  (* shared across rounds *)
  msg_clause : Linear.t;
  self_lit : Linear.t;
  self_clause : Linear.t;
  flip : Linear.t;  (* complement-literal coupling *)
  out_lit : Linear.t;
  out_clause : Linear.t;
  head : Nn.Layer.Mlp.t;
}

let create cfg =
  let rng = Util.Rng.create cfg.seed in
  let d = cfg.hidden_dim in
  let lin ?(in_dim = d) name = Linear.create rng ~in_dim ~out_dim:d ~name in
  {
    cfg;
    embed_lit = lin ~in_dim:1 "ns.embed_lit";
    embed_clause = lin ~in_dim:1 "ns.embed_clause";
    msg_lit = lin "ns.msg_lit";
    msg_clause = lin "ns.msg_clause";
    self_lit = lin "ns.self_lit";
    self_clause = lin "ns.self_clause";
    flip = lin "ns.flip";
    out_lit = lin "ns.out_lit";
    out_clause = lin "ns.out_clause";
    head = Nn.Layer.Mlp.create rng ~dims:[ d; cfg.head_hidden; 1 ] ~name:"ns.head";
  }

let params t =
  List.concat_map Linear.params
    [
      t.embed_lit;
      t.embed_clause;
      t.msg_lit;
      t.msg_clause;
      t.self_lit;
      t.self_clause;
      t.flip;
      t.out_lit;
      t.out_clause;
    ]
  @ Nn.Layer.Mlp.params t.head

(* Sum aggregation, as in the original NeuroSAT: with a mean, all-equal
   initial embeddings on an unweighted bipartite graph stay equal
   forever (degree information is erased) and the classifier collapses
   to a constant. Sums keep degrees visible. *)
let forward_logit t tape graph =
  let n_lits = Litgraph.num_lit_nodes graph in
  let n_clauses = graph.Litgraph.num_clauses in
  let complement_perm = Array.init n_lits Litgraph.complement in
  (* Normalise by the graph-wide mean degree so 8 rounds of summation
     stay numerically tame while per-node degree variation survives. *)
  let n_edges = float_of_int (max 1 (Litgraph.num_edges graph)) in
  let inv_avg_clause_deg = float_of_int (max 1 n_clauses) /. n_edges in
  let inv_avg_lit_deg = float_of_int (max 1 n_lits) /. n_edges in
  let lits0 = Ad.const tape (Mat.create n_lits 1 1.0) in
  let clauses0 = Ad.const tape (Mat.create n_clauses 1 1.0) in
  let l = ref (Ad.relu tape (Linear.forward tape t.embed_lit lits0)) in
  let c = ref (Ad.relu tape (Linear.forward tape t.embed_clause clauses0)) in
  for _round = 1 to t.cfg.rounds do
    (* clause update: sum of literal messages *)
    let lmsg = Linear.forward tape t.msg_lit !l in
    let to_clause =
      Ad.scale tape inv_avg_clause_deg
        (Ad.scatter_sum tape
           (Ad.gather_rows tape lmsg graph.Litgraph.edge_lit)
           graph.Litgraph.edge_clause ~rows:n_clauses)
    in
    let c' =
      Ad.relu tape
        (Linear.forward tape t.out_clause
           (Ad.add tape to_clause (Linear.forward tape t.self_clause !c)))
    in
    (* literal update: sum of clause messages + complement coupling *)
    let cmsg = Linear.forward tape t.msg_clause c' in
    let to_lit =
      Ad.scale tape inv_avg_lit_deg
        (Ad.scatter_sum tape
           (Ad.gather_rows tape cmsg graph.Litgraph.edge_clause)
           graph.Litgraph.edge_lit ~rows:n_lits)
    in
    let comp = Linear.forward tape t.flip (Ad.gather_rows tape !l complement_perm) in
    let combined =
      Ad.add tape (Ad.add tape to_lit (Linear.forward tape t.self_lit !l)) comp
    in
    let l' = Ad.relu tape (Linear.forward tape t.out_lit combined) in
    l := l';
    c := c'
  done;
  let pooled = Ad.mean_rows tape !l in
  Nn.Layer.Mlp.forward tape t.head pooled

let spec t =
  { Nn.Train.params = params t; forward = (fun tape g -> forward_logit t tape g) }

let predict t graph = Nn.Train.predict_prob (spec t) graph

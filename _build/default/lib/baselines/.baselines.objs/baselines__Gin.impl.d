lib/baselines/gin.ml: List Nn Printf Satgraph Tensor Util

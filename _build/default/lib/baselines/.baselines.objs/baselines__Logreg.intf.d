lib/baselines/logreg.mli: Cnf Nn

lib/baselines/gin.mli: Nn Satgraph

lib/baselines/neurosat.mli: Nn Satgraph

lib/baselines/logreg.ml: Array Cnf Float List Nn Tensor Util

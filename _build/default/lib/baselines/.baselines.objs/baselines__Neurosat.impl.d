lib/baselines/neurosat.ml: Array List Nn Satgraph Tensor Util

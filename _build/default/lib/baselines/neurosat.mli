(** NeuroSAT-style classifier (Selsam et al.), Table 2 baseline.

    Literal–clause graph, recurrent message passing with weight sharing
    across rounds (a simplification of the original's LSTM updates to
    MLP updates, as in the G4SATBench re-implementations), complement
    coupling between paired literals, and a mean readout over literal
    embeddings. *)

type config = {
  hidden_dim : int;
  rounds : int;
  head_hidden : int;
  seed : int;
}

val default_config : config
(** hidden 32, 8 rounds. *)

type t

val create : config -> t
val params : t -> Nn.Param.t list
val forward_logit : t -> Nn.Ad.tape -> Satgraph.Litgraph.t -> Nn.Ad.v
val predict : t -> Satgraph.Litgraph.t -> float
val spec : t -> Satgraph.Litgraph.t Nn.Train.spec

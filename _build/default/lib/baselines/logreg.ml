module Mat = Tensor.Mat
module Ad = Nn.Ad

type t = {
  linear : Nn.Layer.Linear.t;
  mutable mean : float array;
  mutable std : float array;
}

let create ?(seed = 1) () =
  let rng = Util.Rng.create seed in
  {
    linear =
      Nn.Layer.Linear.create rng ~in_dim:Cnf.Features.dimension ~out_dim:1
        ~name:"logreg";
    mean = Array.make Cnf.Features.dimension 0.0;
    std = Array.make Cnf.Features.dimension 1.0;
  }

let fit_normalisation t corpus =
  let d = Cnf.Features.dimension in
  let vectors = List.map Cnf.Features.extract corpus in
  let n = float_of_int (max 1 (List.length vectors)) in
  let mean = Array.make d 0.0 in
  List.iter (fun v -> Array.iteri (fun i x -> mean.(i) <- mean.(i) +. x) v) vectors;
  Array.iteri (fun i x -> mean.(i) <- x /. n) mean;
  let std = Array.make d 0.0 in
  List.iter
    (fun v -> Array.iteri (fun i x -> std.(i) <- std.(i) +. ((x -. mean.(i)) ** 2.0)) v)
    vectors;
  Array.iteri (fun i x -> std.(i) <- Float.max 1e-9 (sqrt (x /. n))) std;
  t.mean <- mean;
  t.std <- std

let features t formula =
  let raw = Cnf.Features.extract formula in
  Array.mapi (fun i x -> (x -. t.mean.(i)) /. t.std.(i)) raw

let forward t tape formula =
  let x = Ad.const tape (Mat.row_vector (features t formula)) in
  Nn.Layer.Linear.forward tape t.linear x

let spec t =
  {
    Nn.Train.params = Nn.Layer.Linear.params t.linear;
    forward = (fun tape f -> forward t tape f);
  }

let predict t formula = Nn.Train.predict_prob (spec t) formula

let weights t =
  let params = Nn.Layer.Linear.params t.linear in
  let w =
    List.find (fun (p : Nn.Param.t) -> p.Nn.Param.name = "logreg.weight") params
  in
  Array.init Cnf.Features.dimension (fun i ->
      (Cnf.Features.names.(i), Mat.get w.Nn.Param.value i 0))

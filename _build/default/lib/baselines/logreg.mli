(** Logistic regression on static CNF features.

    The classical non-neural baseline: {!Cnf.Features} vectors,
    z-scored with statistics fitted on the training set, through a
    single linear layer and a sigmoid. Fast to train and a useful floor
    for Table 2 — a GNN that cannot beat summary statistics has not
    learned structure. *)

type t

val create : ?seed:int -> unit -> t

val fit_normalisation : t -> Cnf.Formula.t list -> unit
(** Fit per-feature mean/std on a corpus (call before training). *)

val features : t -> Cnf.Formula.t -> float array
(** Normalised feature vector under the fitted statistics. *)

val spec : t -> Cnf.Formula.t Nn.Train.spec
(** Trainable spec over raw formulas. *)

val predict : t -> Cnf.Formula.t -> float

val weights : t -> (string * float) array
(** Feature name paired with its learned weight (interpretability). *)

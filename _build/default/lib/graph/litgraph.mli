(** Literal–clause graph (NeuroSAT's encoding).

    One node per literal (2 per variable) plus one per clause; an
    unweighted edge links a literal to each clause containing it, and
    each literal is paired with its complement. Used by the NeuroSAT
    baseline of Table 2. *)

type t = private {
  num_vars : int;
  num_clauses : int;
  edge_lit : int array;  (** 0-based literal node per edge; literal node
                             of var v (1-based) is [2(v-1)] positive,
                             [2(v-1)+1] negative. *)
  edge_clause : int array;
  lit_degree : int array;
  clause_degree : int array;
}

val of_formula : Cnf.Formula.t -> t
val num_lit_nodes : t -> int
val num_edges : t -> int

val complement : int -> int
(** Node index of the complementary literal. *)

val lit_inv_degree : t -> float array
val clause_inv_degree : t -> float array

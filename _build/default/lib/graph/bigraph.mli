(** Bipartite variable–clause graph representation of a CNF (Sec. 4.2).

    Following NeuroComb's compact encoding: one node per variable (V1),
    one per clause (V2), an edge per literal occurrence with weight +1
    for a positive and -1 for a negated occurrence. Edges are stored in
    coordinate form (parallel arrays) because the MPNN consumes them as
    gather/scatter index streams. *)

type t = private {
  num_vars : int;
  num_clauses : int;
  edge_var : int array;  (** 0-based variable node per edge. *)
  edge_clause : int array;  (** 0-based clause node per edge. *)
  edge_weight : float array;  (** +1.0 or -1.0. *)
  var_degree : int array;
  clause_degree : int array;
}

val of_formula : Cnf.Formula.t -> t

val num_edges : t -> int
val num_nodes : t -> int
(** [num_vars + num_clauses]. *)

val initial_var_features : t -> Tensor.Mat.t
(** [num_vars x 1], all ones (the paper's V1 initial embedding). *)

val initial_clause_features : t -> Tensor.Mat.t
(** [num_clauses x 1], all zeros (the paper's V2 initial embedding). *)

val var_inv_degree : t -> float array
(** [1 / |N(v)|] per variable node (0 for isolated nodes) — the
    aggregation normaliser of Eq. 6. *)

val clause_inv_degree : t -> float array

module Mat = Tensor.Mat

type t = {
  num_vars : int;
  num_clauses : int;
  edge_var : int array;
  edge_clause : int array;
  edge_weight : float array;
  var_degree : int array;
  clause_degree : int array;
}

let of_formula formula =
  let num_vars = Cnf.Formula.num_vars formula in
  let num_clauses = Cnf.Formula.num_clauses formula in
  let ev = Util.Vec.create ~dummy:0 () in
  let ec = Util.Vec.create ~dummy:0 () in
  let ew = Util.Vec.create ~dummy:0.0 () in
  let var_degree = Array.make num_vars 0 in
  let clause_degree = Array.make num_clauses 0 in
  let ci = ref 0 in
  let add_clause c =
    Array.iter
      (fun l ->
        let v = Cnf.Lit.var l - 1 in
        Util.Vec.push ev v;
        Util.Vec.push ec !ci;
        Util.Vec.push ew (if Cnf.Lit.is_pos l then 1.0 else -1.0);
        var_degree.(v) <- var_degree.(v) + 1;
        clause_degree.(!ci) <- clause_degree.(!ci) + 1)
      c;
    incr ci
  in
  Cnf.Formula.iter_clauses add_clause formula;
  {
    num_vars;
    num_clauses;
    edge_var = Util.Vec.to_array ev;
    edge_clause = Util.Vec.to_array ec;
    edge_weight = Util.Vec.to_array ew;
    var_degree;
    clause_degree;
  }

let num_edges t = Array.length t.edge_var
let num_nodes t = t.num_vars + t.num_clauses

let initial_var_features t = Mat.create t.num_vars 1 1.0
let initial_clause_features t = Mat.create t.num_clauses 1 0.0

let inv_degrees deg =
  Array.map (fun d -> if d = 0 then 0.0 else 1.0 /. float_of_int d) deg

let var_inv_degree t = inv_degrees t.var_degree
let clause_inv_degree t = inv_degrees t.clause_degree

lib/graph/litgraph.mli: Cnf

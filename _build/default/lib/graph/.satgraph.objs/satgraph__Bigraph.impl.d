lib/graph/bigraph.ml: Array Cnf Tensor Util

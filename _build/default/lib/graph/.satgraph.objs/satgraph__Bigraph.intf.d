lib/graph/bigraph.mli: Cnf Tensor

lib/graph/litgraph.ml: Array Cnf Util

type t = {
  num_vars : int;
  num_clauses : int;
  edge_lit : int array;
  edge_clause : int array;
  lit_degree : int array;
  clause_degree : int array;
}

let lit_node l =
  let v = Cnf.Lit.var l - 1 in
  (2 * v) + if Cnf.Lit.is_pos l then 0 else 1

let of_formula formula =
  let num_vars = Cnf.Formula.num_vars formula in
  let num_clauses = Cnf.Formula.num_clauses formula in
  let el = Util.Vec.create ~dummy:0 () in
  let ec = Util.Vec.create ~dummy:0 () in
  let lit_degree = Array.make (2 * num_vars) 0 in
  let clause_degree = Array.make num_clauses 0 in
  let ci = ref 0 in
  let add_clause c =
    Array.iter
      (fun l ->
        let node = lit_node l in
        Util.Vec.push el node;
        Util.Vec.push ec !ci;
        lit_degree.(node) <- lit_degree.(node) + 1;
        clause_degree.(!ci) <- clause_degree.(!ci) + 1)
      c;
    incr ci
  in
  Cnf.Formula.iter_clauses add_clause formula;
  {
    num_vars;
    num_clauses;
    edge_lit = Util.Vec.to_array el;
    edge_clause = Util.Vec.to_array ec;
    lit_degree;
    clause_degree;
  }

let num_lit_nodes t = 2 * t.num_vars
let num_edges t = Array.length t.edge_lit
let complement node = node lxor 1

let inv_degrees deg =
  Array.map (fun d -> if d = 0 then 0.0 else 1.0 /. float_of_int d) deg

let lit_inv_degree t = inv_degrees t.lit_degree
let clause_inv_degree t = inv_degrees t.clause_degree

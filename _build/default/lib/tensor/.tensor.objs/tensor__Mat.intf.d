lib/tensor/mat.mli: Format Util

type t = {
  alpha : float;
  mutable biased : float;
  mutable correction : float;
  mutable n : int;
}

let create ~alpha =
  assert (alpha > 0.0 && alpha <= 1.0);
  { alpha; biased = 0.0; correction = 0.0; n = 0 }

let update t x =
  t.biased <- t.biased +. (t.alpha *. (x -. t.biased));
  t.correction <- t.correction +. (t.alpha *. (1.0 -. t.correction));
  t.n <- t.n + 1

let value t = if t.n = 0 then 0.0 else t.biased /. t.correction

let count t = t.n

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finaliser (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 uniform bits, scaled to [0, x). *)
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  raw /. 9007199254740992.0 *. x

let uniform t lo hi = lo +. float t (hi -. lo)

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let sample_distinct t k bound =
  assert (k <= bound);
  if k * 3 >= bound then begin
    (* Dense case: shuffle a full range and take a prefix. *)
    let all = Array.init bound (fun i -> i) in
    shuffle t all;
    Array.sub all 0 k
  end else begin
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t bound in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

(** Summary statistics for experiment reporting.

    Used by the experiment harness to print the paper's tables (median
    and average runtimes, Table 3) and box-and-whisker summaries
    (Figure 7b). All functions copy their input before sorting. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Population variance; 0 when fewer than two samples. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** @raise Invalid_argument on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation
    between order statistics. @raise Invalid_argument on empty input. *)

val median : float array -> float

type box = {
  low_whisker : float;
  q1 : float;
  med : float;
  q3 : float;
  high_whisker : float;
  outliers : float array;
}
(** Five-number summary with 1.5*IQR whisker convention. *)

val box_summary : float array -> box
(** @raise Invalid_argument on empty input. *)

val histogram : bins:int -> float array -> (float * int) array
(** [histogram ~bins xs] is an array of [(bin_left_edge, count)] covering
    [min, max] of the data. @raise Invalid_argument on empty input or
    [bins <= 0]. *)

val pp_box : Format.formatter -> box -> unit

lib/util/ema.mli:

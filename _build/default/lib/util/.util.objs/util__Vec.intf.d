lib/util/vec.mli:

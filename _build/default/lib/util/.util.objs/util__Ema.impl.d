lib/util/ema.ml:

lib/util/luby.mli:

lib/util/luby.ml:

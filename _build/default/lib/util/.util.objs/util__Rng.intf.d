lib/util/rng.mli:

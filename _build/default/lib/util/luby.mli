(** The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    Classic universal restart schedule (Luby, Sinclair, Zuckerman 1993)
    used by the CDCL solver's stable mode. *)

val term : int -> int
(** [term i] is the i-th element of the Luby sequence, 1-indexed.
    @raise Invalid_argument when [i < 1]. *)

type t
(** Stateful iterator over [unit * term i] restart limits. *)

val create : unit:int -> t
(** [create ~unit] scales every term by [unit] conflicts. *)

val next : t -> int
(** Next restart interval (in conflicts); advances the iterator. *)

(** Deterministic pseudo-random number generation.

    A small SplitMix64 generator: every stochastic component of the
    library (instance generators, weight initialisation, shuffles) takes
    an explicit [Rng.t] so runs are reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. Equal seeds
    produce equal streams. *)

val split : t -> t
(** [split rng] derives an independent generator; advances [rng]. *)

val copy : t -> t
(** [copy rng] duplicates the current state without advancing it. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float rng x] is uniform in [\[0, x)]. *)

val uniform : t -> float -> float -> float
(** [uniform rng lo hi] is uniform in [\[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_distinct : t -> int -> int -> int array
(** [sample_distinct rng k bound] draws [k] distinct values from
    [\[0, bound)]. Requires [k <= bound]. *)

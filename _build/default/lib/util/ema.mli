(** Exponential moving averages with bias-corrected warm-up.

    Glucose-style restart policies compare a fast and a slow EMA of
    learned-clause LBD values; the warm-up correction (as in Kissat/
    CaDiCaL) avoids the early bias of initialising at zero. *)

type t

val create : alpha:float -> t
(** [alpha] is the smoothing factor in (0, 1]; smaller = slower. *)

val update : t -> float -> unit
(** Feed one observation. *)

val value : t -> float
(** Current bias-corrected average (0 before any observation). *)

val count : t -> int
(** Number of observations so far. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then ys.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (ys.(lo) *. (1.0 -. frac)) +. (ys.(hi) *. frac)
  end

let median xs = percentile xs 50.0

type box = {
  low_whisker : float;
  q1 : float;
  med : float;
  q3 : float;
  high_whisker : float;
  outliers : float array;
}

let box_summary xs =
  if Array.length xs = 0 then invalid_arg "Stats.box_summary: empty";
  let q1 = percentile xs 25.0 and q3 = percentile xs 75.0 in
  let iqr = q3 -. q1 in
  let lo_fence = q1 -. (1.5 *. iqr) and hi_fence = q3 +. (1.5 *. iqr) in
  let inside = Array.to_list xs |> List.filter (fun x -> x >= lo_fence && x <= hi_fence) in
  let outliers =
    Array.of_list
      (Array.to_list xs |> List.filter (fun x -> x < lo_fence || x > hi_fence))
  in
  let low_whisker, high_whisker =
    match inside with
    | [] -> (q1, q3)
    | x :: rest ->
      List.fold_left (fun (lo, hi) y -> (Float.min lo y, Float.max hi y)) (x, x) rest
  in
  { low_whisker; q1; med = median xs; q3; high_whisker; outliers }

let histogram ~bins xs =
  if Array.length xs = 0 then invalid_arg "Stats.histogram: empty";
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  let place x =
    let i = int_of_float ((x -. lo) /. width) in
    let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
    counts.(i) <- counts.(i) + 1
  in
  Array.iter place xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts

let pp_box ppf b =
  Format.fprintf ppf "[%.3g | %.3g %.3g %.3g | %.3g] (%d outliers)"
    b.low_whisker b.q1 b.med b.q3 b.high_whisker (Array.length b.outliers)

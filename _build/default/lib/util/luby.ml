(* term i: if i = 2^k - 1 then 2^(k-1) else term (i - 2^(k-1) + 1)
   where 2^(k-1) <= i < 2^k - 1. *)
let rec term i =
  if i < 1 then invalid_arg "Luby.term";
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else term (i - (1 lsl (!k - 1)) + 1)

type t = { unit : int; mutable index : int }

let create ~unit = { unit; index = 0 }

let next t =
  t.index <- t.index + 1;
  t.unit * term t.index

(** CNF formulas.

    A formula is a conjunction of clauses over variables [1..num_vars].
    Formulas are immutable once built; use {!Builder} to accumulate
    clauses incrementally (the Tseitin encoder and the generators do). *)

type t = private {
  num_vars : int;
  clauses : Lit.t array array;
}

val create : num_vars:int -> Lit.t array array -> t
(** Validates that every literal's variable is within [1..num_vars] and
    that no clause is empty of structure-sharing hazards (clauses are
    copied). Duplicate literals within a clause are allowed (the solver
    handles them); tautological clauses are allowed too. *)

val of_dimacs_lists : num_vars:int -> int list list -> t
(** Convenience: clauses as lists of DIMACS ints. *)

val num_vars : t -> int
val num_clauses : t -> int
val num_literals : t -> int
(** Total literal occurrences across all clauses. *)

val clause : t -> int -> Lit.t array
(** [clause f i] is a copy of the i-th clause. *)

val iter_clauses : (Lit.t array -> unit) -> t -> unit

val eval : t -> bool array -> bool
(** [eval f assignment] with [assignment.(v)] the value of variable [v]
    (index 0 unused). True iff every clause has a true literal. *)

val eval_clause : Lit.t array -> bool array -> bool

val relabel : t -> perm:int array -> t
(** [relabel f ~perm] renames variable [v] to [perm.(v)]; [perm] must be
    a permutation of [1..num_vars] (index 0 ignored). *)

val shuffle : Util.Rng.t -> t -> t
(** Randomly permutes clause order and literal order within clauses
    (logically equivalent formula). *)

val pp : Format.formatter -> t -> unit

(** Incremental construction. *)
module Builder : sig
  type formula := t
  type t

  val create : unit -> t

  val fresh_var : t -> int
  (** Allocates the next unused variable. *)

  val ensure_vars : t -> int -> unit
  (** Raise the variable count to at least the given bound. *)

  val add_clause : t -> Lit.t list -> unit
  val add_dimacs : t -> int list -> unit
  val num_vars : t -> int
  val num_clauses : t -> int
  val build : t -> formula
end

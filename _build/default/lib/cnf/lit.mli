(** Propositional literals.

    Variables are positive integers [1..n] as in DIMACS. A literal packs
    a variable and a polarity into one int using the standard solver
    encoding [2*var + (if negative then 1 else 0)], so literals index
    watch lists directly via {!to_index}. *)

type t = private int

val make : int -> bool -> t
(** [make var positive]. Requires [var >= 1]. *)

val pos : int -> t
(** Positive literal of a variable. *)

val neg : int -> t
(** Negative literal of a variable. *)

val of_dimacs : int -> t
(** [of_dimacs 5 = pos 5], [of_dimacs (-5) = neg 5]. Requires nonzero. *)

val to_dimacs : t -> int
val var : t -> int
val is_pos : t -> bool

val negate : t -> t
(** Complementary literal. *)

val to_index : t -> int
(** Dense index in [\[2, 2n+1\]]; positive literal of var v is [2v]. *)

val of_index : int -> t
(** Inverse of {!to_index}. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints DIMACS form, e.g. [-3]. *)

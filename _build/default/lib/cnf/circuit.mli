(** Combinational boolean circuits (AIG-style).

    Circuits are built from inputs and two-input AND gates with free
    inversion on wires, the classic and-inverter-graph form used by EDA
    tools. Structural hashing merges identical gates. Together with
    {!Tseitin} this provides the circuit-verification workloads (adder /
    multiplier equivalence miters) used by the instance generators. *)

type t
(** A circuit under construction (grow-only). *)

type wire
(** A signed reference to a constant, input, or gate output. *)

val create : unit -> t

val false_ : wire
val true_ : wire

val input : t -> wire
(** Allocates the next primary input. *)

val input_array : t -> int -> wire array
(** [input_array c n] allocates [n] fresh inputs. *)

val not_ : wire -> wire

val and_ : t -> wire -> wire -> wire
(** Structurally hashed; constant and trivial cases are simplified. *)

val or_ : t -> wire -> wire -> wire
val xor_ : t -> wire -> wire -> wire
val mux : t -> sel:wire -> wire -> wire -> wire
(** [mux c ~sel a b] is [a] when [sel] is true, else [b]. *)

val full_adder : t -> wire -> wire -> wire -> wire * wire
(** [full_adder c a b cin] is [(sum, carry)]. *)

val ripple_adder : t -> wire array -> wire array -> wire array * wire
(** LSB-first addition of equal-width vectors; returns sum and carry-out. *)

val multiplier : t -> wire array -> wire array -> wire array
(** Shift-and-add array multiplier; result has [wa + wb] bits. *)

val wallace_multiplier : t -> wire array -> wire array -> wire array
(** Carry-save (Wallace-tree-style) multiplier: same function as
    {!multiplier} with a structurally different netlist — equivalence of
    the two is a natural miter benchmark. *)

val num_inputs : t -> int
val num_gates : t -> int

val eval : t -> bool array -> wire -> bool
(** [eval c inputs w] simulates the circuit; [inputs.(i)] is the i-th
    allocated input. @raise Invalid_argument if too few inputs given. *)

val miter : t -> wire array -> wire array -> wire
(** [miter c outs1 outs2] is the OR of pairwise XORs: true iff the two
    output vectors differ. @raise Invalid_argument on length mismatch. *)

val wire_equal : wire -> wire -> bool

(**/**)

val wire_repr : wire -> int
(** Internal signed-reference encoding, exposed for {!Tseitin}. *)

val node_count : t -> int
val node_fanins : t -> int -> (int * int) option
(** [node_fanins c n] is [Some (a, b)] when node [n] is an AND gate with
    signed fanin refs [a] and [b]; [None] for constants and inputs. *)

(** CNF preprocessing.

    Satisfiability-preserving simplifications applied before search,
    in the style of SatELite/Kissat's "probing + subsumption" passes:

    - unit propagation to fixpoint (forced assignments are recorded);
    - pure-literal elimination (variables occurring with one polarity);
    - duplicate-literal and tautology removal;
    - subsumption (a clause implied by a subset clause is dropped);
    - self-subsuming resolution (strengthening: if [C ∪ {l}] and
      [D ∪ {¬l}] with [C ⊆ D], remove [¬l] from the second clause).

    Variable numbering is preserved — eliminated variables simply stop
    occurring — so solver models for the simplified formula extend to
    models of the original via {!extend_model}. *)

type stats = {
  forced_units : int;
  pure_literals : int;
  subsumed_clauses : int;
  strengthened_literals : int;
  rounds : int;
}

type result = {
  formula : Formula.t;  (** Simplified formula, same [num_vars]. *)
  forced : (int * bool) list;  (** Assignments implied at top level. *)
  pure : (int * bool) list;  (** Pure-literal choices. *)
  stats : stats;
}

type outcome =
  | Simplified of result
  | Proved_unsat  (** Unit propagation derived the empty clause. *)

val simplify : ?subsumption:bool -> ?max_rounds:int -> Formula.t -> outcome
(** [subsumption] (default true) enables the quadratic passes;
    [max_rounds] (default 10) bounds the fixpoint iteration. *)

val extend_model : result -> bool array -> bool array
(** [extend_model r model] overrides the solver model with the recorded
    forced and pure assignments, yielding a model of the original
    formula whenever [model] satisfies [r.formula]. *)

type node =
  | Const
  | In of int
  | And of int * int

type wire = int

type t = {
  nodes : node Util.Vec.t;
  mutable n_inputs : int;
  cache : (int * int, int) Hashtbl.t;
}

let create () =
  let nodes = Util.Vec.create ~dummy:Const () in
  Util.Vec.push nodes Const;
  { nodes; n_inputs = 0; cache = Hashtbl.create 64 }

let false_ = 0
let true_ = 1
let not_ w = w lxor 1
let wire_equal = Int.equal
let wire_repr w = w

let wire_node w = w lsr 1
let wire_inverted w = w land 1 = 1

let input c =
  let id = Util.Vec.length c.nodes in
  Util.Vec.push c.nodes (In c.n_inputs);
  c.n_inputs <- c.n_inputs + 1;
  2 * id

let input_array c n = Array.init n (fun _ -> input c)

let and_ c a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = false_ then false_
  else if a = true_ then b
  else if a = b then a
  else if a = not_ b then false_
  else
    match Hashtbl.find_opt c.cache (a, b) with
    | Some id -> 2 * id
    | None ->
      let id = Util.Vec.length c.nodes in
      Util.Vec.push c.nodes (And (a, b));
      Hashtbl.add c.cache (a, b) id;
      2 * id

let or_ c a b = not_ (and_ c (not_ a) (not_ b))

let xor_ c a b =
  (* a xor b = (a | b) & !(a & b) *)
  and_ c (or_ c a b) (not_ (and_ c a b))

let mux c ~sel a b = or_ c (and_ c sel a) (and_ c (not_ sel) b)

let full_adder c a b cin =
  let ab = xor_ c a b in
  let sum = xor_ c ab cin in
  let carry = or_ c (and_ c a b) (and_ c ab cin) in
  (sum, carry)

let ripple_adder c xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Circuit.ripple_adder: width mismatch";
  let n = Array.length xs in
  let sum = Array.make n false_ in
  let carry = ref false_ in
  for i = 0 to n - 1 do
    let s, co = full_adder c xs.(i) ys.(i) !carry in
    sum.(i) <- s;
    carry := co
  done;
  (sum, !carry)

let multiplier c xs ys =
  let wa = Array.length xs and wb = Array.length ys in
  let width = wa + wb in
  let acc = ref (Array.make width false_) in
  for j = 0 to wb - 1 do
    let partial =
      Array.init width (fun i ->
          if i >= j && i - j < wa then and_ c xs.(i - j) ys.(j) else false_)
    in
    let sum, _ = ripple_adder c !acc partial in
    acc := sum
  done;
  !acc

let wallace_multiplier c xs ys =
  let wa = Array.length xs and wb = Array.length ys in
  let width = wa + wb in
  let columns = Array.make width [] in
  for i = 0 to wa - 1 do
    for j = 0 to wb - 1 do
      columns.(i + j) <- and_ c xs.(i) ys.(j) :: columns.(i + j)
    done
  done;
  (* Carry-save reduction: compress every column to at most two wires. *)
  let busy = ref true in
  while !busy do
    busy := false;
    for k = 0 to width - 1 do
      match columns.(k) with
      | a :: b :: cc :: rest ->
        busy := true;
        let s, carry = full_adder c a b cc in
        columns.(k) <- s :: rest;
        if k + 1 < width then columns.(k + 1) <- carry :: columns.(k + 1)
      | [] | [ _ ] | [ _; _ ] -> ()
    done
  done;
  let row i =
    Array.init width (fun k ->
        match (i, columns.(k)) with
        | 0, x :: _ -> x
        | 1, _ :: x :: _ -> x
        | _, ([] | [ _ ] | _ :: _) -> false_)
  in
  let sum, _ = ripple_adder c (row 0) (row 1) in
  sum

let num_inputs c = c.n_inputs
let num_gates c =
  Util.Vec.fold
    (fun acc n -> match n with And _ -> acc + 1 | Const | In _ -> acc)
    0 c.nodes

let node_count c = Util.Vec.length c.nodes

let node_fanins c n =
  match Util.Vec.get c.nodes n with
  | And (a, b) -> Some (a, b)
  | Const | In _ -> None

let eval c inputs w =
  if Array.length inputs < c.n_inputs then
    invalid_arg "Circuit.eval: not enough input values";
  let n = node_count c in
  let value = Array.make n false in
  let known = Array.make n false in
  let rec node_value id =
    if known.(id) then value.(id)
    else begin
      let v =
        match Util.Vec.get c.nodes id with
        | Const -> false
        | In i -> inputs.(i)
        | And (a, b) -> wire_value a && wire_value b
      in
      known.(id) <- true;
      value.(id) <- v;
      v
    end
  and wire_value w =
    let v = node_value (wire_node w) in
    if wire_inverted w then not v else v
  in
  wire_value w

let miter c outs1 outs2 =
  if Array.length outs1 <> Array.length outs2 then
    invalid_arg "Circuit.miter: output width mismatch";
  let diff = ref false_ in
  Array.iteri (fun i o1 -> diff := or_ c !diff (xor_ c o1 outs2.(i))) outs1;
  !diff

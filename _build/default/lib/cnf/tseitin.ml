type mapping = {
  input_var : int array;
  node_var : int array;
}

let lit_of_node mapping w =
  let node = w lsr 1 and inverted = w land 1 = 1 in
  Lit.make mapping.node_var.(node) (not inverted)

let encode circuit ~asserted =
  let n = Circuit.node_count circuit in
  let builder = Formula.Builder.create () in
  let node_var = Array.init n (fun _ -> Formula.Builder.fresh_var builder) in
  let input_var = Array.make (Circuit.num_inputs circuit) 0 in
  let mapping = { input_var; node_var } in
  let lit w = lit_of_node mapping w in
  (* Node 0 is the constant-false node. *)
  Formula.Builder.add_clause builder [ Lit.neg node_var.(0) ];
  for node = 1 to n - 1 do
    match Circuit.node_fanins circuit node with
    | Some (a, b) ->
      (* g <-> a & b *)
      let g = Lit.pos node_var.(node) in
      Formula.Builder.add_clause builder [ Lit.negate g; lit a ];
      Formula.Builder.add_clause builder [ Lit.negate g; lit b ];
      Formula.Builder.add_clause builder [ g; Lit.negate (lit a); Lit.negate (lit b) ]
    | None -> ()
  done;
  (* Record input variables: walk nodes to find In tags via eval order.
     Circuit exposes only fanins, so recover inputs by allocation order:
     inputs were created in increasing node order, and nodes without
     fanins other than node 0 are inputs. *)
  let next_input = ref 0 in
  for node = 1 to n - 1 do
    if Circuit.node_fanins circuit node = None then begin
      input_var.(!next_input) <- node_var.(node);
      incr next_input
    end
  done;
  assert (!next_input = Circuit.num_inputs circuit);
  List.iter
    (fun w -> Formula.Builder.add_clause builder [ lit (Circuit.wire_repr w) ])
    asserted;
  (Formula.Builder.build builder, mapping)

let lit_of_wire mapping w = lit_of_node mapping (Circuit.wire_repr w)

let decode_inputs mapping model =
  Array.map (fun v -> model.(v)) mapping.input_var

(** DIMACS CNF reader and writer.

    Accepts the usual liberal dialect: [c] comment lines anywhere, a
    single [p cnf <vars> <clauses>] header, clauses terminated by [0]
    and free to span or share lines. The declared counts are checked
    loosely: the variable bound is grown if literals exceed it (some
    generators under-declare), but a clause-count mismatch is an error. *)

exception Parse_error of string
(** Raised with a human-readable message on malformed input. *)

val parse_string : string -> Formula.t
(** @raise Parse_error on malformed input. *)

val parse_channel : in_channel -> Formula.t
(** @raise Parse_error on malformed input. *)

val parse_file : string -> Formula.t
(** @raise Parse_error on malformed input; @raise Sys_error on IO. *)

val to_string : ?comment:string -> Formula.t -> string
(** Render with one clause per line; [comment] becomes leading [c] lines. *)

val write_file : ?comment:string -> string -> Formula.t -> unit

type t = {
  num_vars : int;
  clauses : Lit.t array array;
}

let create ~num_vars clauses =
  if num_vars < 0 then invalid_arg "Formula.create: negative num_vars";
  let check_clause c =
    Array.iter
      (fun l ->
        let v = Lit.var l in
        if v < 1 || v > num_vars then
          invalid_arg
            (Printf.sprintf "Formula.create: variable %d out of range 1..%d" v num_vars))
      c
  in
  Array.iter check_clause clauses;
  { num_vars; clauses = Array.map Array.copy clauses }

let of_dimacs_lists ~num_vars lists =
  let clause_of_list ls = Array.of_list (List.map Lit.of_dimacs ls) in
  create ~num_vars (Array.of_list (List.map clause_of_list lists))

let num_vars t = t.num_vars
let num_clauses t = Array.length t.clauses

let num_literals t =
  Array.fold_left (fun acc c -> acc + Array.length c) 0 t.clauses

let clause t i = Array.copy t.clauses.(i)
let iter_clauses f t = Array.iter f t.clauses

let eval_clause c assignment =
  Array.exists
    (fun l ->
      let v = assignment.(Lit.var l) in
      if Lit.is_pos l then v else not v)
    c

let eval t assignment =
  if Array.length assignment < t.num_vars + 1 then
    invalid_arg "Formula.eval: assignment too short";
  Array.for_all (fun c -> eval_clause c assignment) t.clauses

let relabel t ~perm =
  if Array.length perm < t.num_vars + 1 then invalid_arg "Formula.relabel: perm too short";
  let seen = Array.make (t.num_vars + 1) false in
  for v = 1 to t.num_vars do
    let p = perm.(v) in
    if p < 1 || p > t.num_vars || seen.(p) then
      invalid_arg "Formula.relabel: not a permutation";
    seen.(p) <- true
  done;
  let map_lit l = Lit.make perm.(Lit.var l) (Lit.is_pos l) in
  { t with clauses = Array.map (Array.map map_lit) t.clauses }

let shuffle rng t =
  let clauses = Array.map Array.copy t.clauses in
  Array.iter (Util.Rng.shuffle rng) clauses;
  Util.Rng.shuffle rng clauses;
  { t with clauses }

let pp ppf t =
  Format.fprintf ppf "@[<v>p cnf %d %d" t.num_vars (num_clauses t);
  Array.iter
    (fun c ->
      Format.fprintf ppf "@,";
      Array.iter (fun l -> Format.fprintf ppf "%a " Lit.pp l) c;
      Format.fprintf ppf "0")
    t.clauses;
  Format.fprintf ppf "@]"

let make_formula = create

module Builder = struct
  type nonrec formula = t

  type t = {
    mutable vars : int;
    clauses : Lit.t array Util.Vec.t;
  }

  let create () = { vars = 0; clauses = Util.Vec.create ~dummy:[||] () }

  let fresh_var b =
    b.vars <- b.vars + 1;
    b.vars

  let ensure_vars b n = if n > b.vars then b.vars <- n

  let add_clause b lits =
    let c = Array.of_list lits in
    Array.iter (fun l -> ensure_vars b (Lit.var l)) c;
    Util.Vec.push b.clauses c

  let add_dimacs b ds = add_clause b (List.map Lit.of_dimacs ds)
  let num_vars b = b.vars
  let num_clauses b = Util.Vec.length b.clauses

  let build b : formula =
    make_formula ~num_vars:b.vars (Util.Vec.to_array b.clauses)
end

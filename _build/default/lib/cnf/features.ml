let names =
  [|
    "num_vars";
    "num_clauses";
    "clause_var_ratio";
    "mean_clause_len";
    "min_clause_len";
    "max_clause_len";
    "frac_binary";
    "frac_ternary";
    "frac_horn";
    "mean_var_degree";
    "cv_var_degree";
    "max_var_degree";
    "frac_positive_lits";
    "mean_polarity_balance";
  |]

let dimension = Array.length names

let safe_div a b = if b = 0.0 then 0.0 else a /. b

let extract formula =
  let n = Formula.num_vars formula in
  let m = Formula.num_clauses formula in
  let nf = float_of_int n and mf = float_of_int m in
  let pos_occ = Array.make (n + 1) 0 in
  let neg_occ = Array.make (n + 1) 0 in
  let total_lits = ref 0 in
  let min_len = ref max_int and max_len = ref 0 in
  let binary = ref 0 and ternary = ref 0 and horn = ref 0 in
  let positive_lits = ref 0 in
  let handle_clause c =
    let len = Array.length c in
    total_lits := !total_lits + len;
    if len < !min_len then min_len := len;
    if len > !max_len then max_len := len;
    if len = 2 then incr binary;
    if len = 3 then incr ternary;
    let pos_in_clause = ref 0 in
    Array.iter
      (fun l ->
        let v = Lit.var l in
        if Lit.is_pos l then begin
          pos_occ.(v) <- pos_occ.(v) + 1;
          incr pos_in_clause;
          incr positive_lits
        end
        else neg_occ.(v) <- neg_occ.(v) + 1)
      c;
    if !pos_in_clause <= 1 then incr horn
  in
  Formula.iter_clauses handle_clause formula;
  if m = 0 then min_len := 0;
  let degrees = Array.init n (fun i -> float_of_int (pos_occ.(i + 1) + neg_occ.(i + 1))) in
  let mean_degree = safe_div (float_of_int !total_lits) nf in
  let degree_var =
    safe_div
      (Array.fold_left (fun a d -> a +. ((d -. mean_degree) ** 2.0)) 0.0 degrees)
      nf
  in
  let cv_degree = safe_div (sqrt degree_var) mean_degree in
  let max_degree = Array.fold_left Float.max 0.0 degrees in
  let balance = ref 0.0 in
  for v = 1 to n do
    let p = float_of_int pos_occ.(v) and q = float_of_int neg_occ.(v) in
    balance := !balance +. safe_div (Float.abs (p -. q)) (p +. q)
  done;
  [|
    nf;
    mf;
    safe_div mf nf;
    safe_div (float_of_int !total_lits) mf;
    float_of_int !min_len;
    float_of_int !max_len;
    safe_div (float_of_int !binary) mf;
    safe_div (float_of_int !ternary) mf;
    safe_div (float_of_int !horn) mf;
    mean_degree;
    cv_degree;
    max_degree;
    safe_div (float_of_int !positive_lits) (float_of_int !total_lits);
    safe_div !balance nf;
  |]

let pp ppf feats =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i x -> Format.fprintf ppf "%-22s %.4f@," names.(i) x)
    feats;
  Format.fprintf ppf "@]"

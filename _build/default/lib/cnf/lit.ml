type t = int

let make var positive =
  if var < 1 then invalid_arg "Lit.make: variable must be >= 1";
  (2 * var) + if positive then 0 else 1

let pos var = make var true
let neg var = make var false

let of_dimacs d =
  if d = 0 then invalid_arg "Lit.of_dimacs: zero";
  if d > 0 then pos d else neg (-d)

let var t = t lsr 1
let is_pos t = t land 1 = 0
let to_dimacs t = if is_pos t then var t else -(var t)
let negate t = t lxor 1
let to_index t = t

let of_index i =
  if i < 2 then invalid_arg "Lit.of_index";
  i

let compare = Int.compare
let equal = Int.equal
let pp ppf t = Format.fprintf ppf "%d" (to_dimacs t)

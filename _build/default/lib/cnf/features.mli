(** Static CNF features (SATzilla-style).

    A fixed-length vector of cheap structural statistics used by the
    logistic-regression baseline and handy for instance analysis:
    problem size, clause/variable ratio, clause-length distribution,
    variable-degree distribution, polarity balance, and Horn fraction. *)

val dimension : int
(** Length of the feature vector. *)

val names : string array
(** Human-readable feature names, length {!dimension}. *)

val extract : Formula.t -> float array
(** Feature vector of length {!dimension}; all entries finite, even on
    degenerate formulas (no clauses, isolated variables). *)

val pp : Format.formatter -> float array -> unit
(** Prints name/value pairs. *)

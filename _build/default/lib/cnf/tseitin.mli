(** Tseitin transformation from circuits to CNF.

    Each circuit node gets a CNF variable; AND gates contribute the
    three standard equivalence clauses, the constant node a unit clause,
    and asserted wires become unit clauses. The encoding is
    equisatisfiable: the CNF is satisfiable iff some input assignment
    makes every asserted wire true. *)

type mapping = {
  input_var : int array;
      (** [input_var.(i)] is the CNF variable of the i-th circuit input. *)
  node_var : int array;
      (** [node_var.(n)] is the CNF variable of circuit node [n]. *)
}

val encode : Circuit.t -> asserted:Circuit.wire list -> Formula.t * mapping
(** [encode c ~asserted] encodes the whole circuit [c] and asserts each
    wire in [asserted] true. *)

val lit_of_wire : mapping -> Circuit.wire -> Lit.t
(** CNF literal corresponding to a circuit wire under the mapping. *)

val decode_inputs : mapping -> bool array -> bool array
(** [decode_inputs m model] extracts circuit-input values from a CNF
    model indexed by variable ([model.(v)]). *)

type stats = {
  forced_units : int;
  pure_literals : int;
  subsumed_clauses : int;
  strengthened_literals : int;
  rounds : int;
}

type result = {
  formula : Formula.t;
  forced : (int * bool) list;
  pure : (int * bool) list;
  stats : stats;
}

type outcome =
  | Simplified of result
  | Proved_unsat

exception Unsat_found

type state = {
  num_vars : int;
  mutable clauses : Lit.t array option array;
  assignment : int array; (* var -> 0 unassigned / 1 / -1 *)
  mutable forced_rev : (int * bool) list;
  mutable pure_rev : (int * bool) list;
  mutable forced_units : int;
  mutable pure_literals : int;
  mutable subsumed_clauses : int;
  mutable strengthened_literals : int;
}

let lit_value st l =
  let s = st.assignment.(Lit.var l) in
  if s = 0 then 0 else if Lit.is_pos l then s else -s

let assign st l ~pure =
  let v = Lit.var l in
  let s = if Lit.is_pos l then 1 else -1 in
  if st.assignment.(v) = -s then raise Unsat_found;
  if st.assignment.(v) = 0 then begin
    st.assignment.(v) <- s;
    if pure then begin
      st.pure_rev <- (v, s = 1) :: st.pure_rev;
      st.pure_literals <- st.pure_literals + 1
    end
    else begin
      st.forced_rev <- (v, s = 1) :: st.forced_rev;
      st.forced_units <- st.forced_units + 1
    end
  end

(* Normalise every clause against the current assignment: drop
   falsified literals, delete satisfied/tautological clauses, collapse
   duplicates, force units. Returns true when anything changed. *)
let normalise st =
  let changed = ref false in
  let handle i = function
    | None -> ()
    | Some clause ->
      let live = ref [] in
      let satisfied = ref false in
      Array.iter
        (fun l ->
          match lit_value st l with
          | 1 -> satisfied := true
          | -1 -> changed := true
          | _ -> live := l :: !live)
        clause;
      let live = List.sort_uniq Lit.compare !live in
      let rec tautology = function
        | a :: (b :: _ as rest) -> Lit.equal (Lit.negate a) b || tautology rest
        | [ _ ] | [] -> false
      in
      if !satisfied || tautology live then begin
        st.clauses.(i) <- None;
        changed := true
      end
      else begin
        match live with
        | [] -> raise Unsat_found
        | [ unit_lit ] ->
          assign st unit_lit ~pure:false;
          st.clauses.(i) <- None;
          changed := true
        | lits ->
          let arr = Array.of_list lits in
          if Array.length arr <> Array.length clause then changed := true;
          st.clauses.(i) <- Some arr
      end
  in
  Array.iteri handle st.clauses;
  !changed

(* Pure-literal elimination: variables with single live polarity are
   assigned that polarity (clauses containing them will be removed by
   the next normalise pass). *)
let pure_literals st =
  let pos = Array.make (st.num_vars + 1) false in
  let neg = Array.make (st.num_vars + 1) false in
  Array.iter
    (function
      | None -> ()
      | Some clause ->
        Array.iter
          (fun l -> if Lit.is_pos l then pos.(Lit.var l) <- true else neg.(Lit.var l) <- true)
          clause)
    st.clauses;
  let changed = ref false in
  for v = 1 to st.num_vars do
    if st.assignment.(v) = 0 then begin
      if pos.(v) && not neg.(v) then begin
        assign st (Lit.pos v) ~pure:true;
        changed := true
      end
      else if neg.(v) && not pos.(v) then begin
        assign st (Lit.neg v) ~pure:true;
        changed := true
      end
    end
  done;
  !changed

let occurrence_lists st =
  let occurs = Array.make ((2 * (st.num_vars + 1)) + 2) [] in
  Array.iteri
    (fun i c ->
      match c with
      | None -> ()
      | Some clause ->
        Array.iter (fun l -> occurs.(Lit.to_index l) <- i :: occurs.(Lit.to_index l)) clause)
    st.clauses;
  occurs

let subset smaller larger =
  (* Both sorted by Lit.compare. *)
  let n = Array.length smaller and m = Array.length larger in
  let rec go i j =
    if i >= n then true
    else if j >= m then false
    else begin
      let c = Lit.compare smaller.(i) larger.(j) in
      if c = 0 then go (i + 1) (j + 1) else if c > 0 then go i (j + 1) else false
    end
  in
  n <= m && go 0 0

(* Subsumption: for each clause, look only at the occurrence list of
   its least-frequent literal (every superset must contain it). *)
let subsumption st =
  let occurs = occurrence_lists st in
  let changed = ref false in
  let handle i = function
    | None -> ()
    | Some clause ->
      let best_lit = ref clause.(0) in
      Array.iter
        (fun l ->
          if List.length occurs.(Lit.to_index l)
             < List.length occurs.(Lit.to_index !best_lit)
          then best_lit := l)
        clause;
      let candidates = occurs.(Lit.to_index !best_lit) in
      let try_remove j =
        if j <> i then begin
          match st.clauses.(j) with
          | Some other when subset clause other ->
            st.clauses.(j) <- None;
            st.subsumed_clauses <- st.subsumed_clauses + 1;
            changed := true
          | Some _ | None -> ()
        end
      in
      if st.clauses.(i) <> None then List.iter try_remove candidates
  in
  Array.iteri handle st.clauses;
  !changed

(* Self-subsuming resolution: clause C with l, clause D with ~l and
   (C \ {l}) subset of (D \ {~l}) lets us delete ~l from D. *)
let strengthen st =
  let occurs = occurrence_lists st in
  let changed = ref false in
  let handle i = function
    | None -> ()
    | Some clause ->
      let with_negated l =
        Array.map (fun x -> if Lit.equal x l then Lit.negate l else x) clause
        |> Array.to_list |> List.sort_uniq Lit.compare |> Array.of_list
      in
      let try_literal l =
        let pivot = with_negated l in
        let candidates = occurs.(Lit.to_index (Lit.negate l)) in
        let try_strengthen j =
          if j <> i then begin
            match st.clauses.(j) with
            | Some other when subset pivot other ->
              let shrunk =
                Array.of_list
                  (List.filter
                     (fun x -> not (Lit.equal x (Lit.negate l)))
                     (Array.to_list other))
              in
              st.strengthened_literals <- st.strengthened_literals + 1;
              changed := true;
              if Array.length shrunk = 1 then begin
                assign st shrunk.(0) ~pure:false;
                st.clauses.(j) <- None
              end
              else st.clauses.(j) <- Some shrunk
            | Some _ | None -> ()
          end
        in
        List.iter try_strengthen candidates
      in
      if st.clauses.(i) <> None then Array.iter try_literal clause
  in
  Array.iteri handle st.clauses;
  !changed

let subsumption_pass st =
  let c1 = subsumption st in
  let c2 = strengthen st in
  c1 || c2

let simplify ?(subsumption = true) ?(max_rounds = 10) formula =
  let st =
    {
      num_vars = Formula.num_vars formula;
      clauses =
        Array.init (Formula.num_clauses formula) (fun i ->
            Some (Formula.clause formula i));
      assignment = Array.make (Formula.num_vars formula + 1) 0;
      forced_rev = [];
      pure_rev = [];
      forced_units = 0;
      pure_literals = 0;
      subsumed_clauses = 0;
      strengthened_literals = 0;
    }
  in
  let rounds = ref 0 in
  match
    let continue_ = ref true in
    while !continue_ && !rounds < max_rounds do
      incr rounds;
      let c1 = normalise st in
      let c2 = pure_literals st in
      let c3 = if subsumption then subsumption_pass st else false in
      continue_ := c1 || c2 || c3
    done
  with
  | exception Unsat_found -> Proved_unsat
  | () ->
    let clauses =
      Array.to_list st.clauses |> List.filter_map Fun.id |> Array.of_list
    in
    Simplified
      {
        formula = Formula.create ~num_vars:st.num_vars clauses;
        forced = List.rev st.forced_rev;
        pure = List.rev st.pure_rev;
        stats =
          {
            forced_units = st.forced_units;
            pure_literals = st.pure_literals;
            subsumed_clauses = st.subsumed_clauses;
            strengthened_literals = st.strengthened_literals;
            rounds = !rounds;
          };
      }

let extend_model r model =
  let model = Array.copy model in
  List.iter (fun (v, b) -> model.(v) <- b) r.forced;
  List.iter (fun (v, b) -> model.(v) <- b) r.pure;
  model

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type token = Header of int * int | Int of int

(* Tokenise: strip comments, emit the header and clause integers. *)
let tokens_of_string text =
  let out = ref [] in
  let lines = String.split_on_char '\n' text in
  let handle_line line =
    let line = String.trim line in
    if line = "" || line.[0] = 'c' || line.[0] = '%' then ()
    else if line.[0] = 'p' then begin
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ "p"; "cnf"; v; c ] -> begin
        match (int_of_string_opt v, int_of_string_opt c) with
        | Some v, Some c when v >= 0 && c >= 0 -> out := Header (v, c) :: !out
        | _ -> fail "bad p-line: %S" line
      end
      | _ -> fail "bad p-line: %S" line
    end
    else begin
      let words = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
      let words = List.concat_map (String.split_on_char '\t') words in
      let handle_word w =
        if w = "" then ()
        else
          match int_of_string_opt w with
          | Some i -> out := Int i :: !out
          | None -> fail "unexpected token %S" w
      in
      List.iter handle_word words
    end
  in
  List.iter handle_line lines;
  List.rev !out

let parse_string text =
  let toks = tokens_of_string text in
  let declared_vars, declared_clauses, rest =
    match toks with
    | Header (v, c) :: rest -> (v, c, rest)
    | _ -> fail "missing p cnf header"
  in
  let builder = Formula.Builder.create () in
  Formula.Builder.ensure_vars builder declared_vars;
  let current = ref [] in
  let handle_tok = function
    | Header _ -> fail "duplicate p cnf header"
    | Int 0 ->
      Formula.Builder.add_dimacs builder (List.rev !current);
      current := []
    | Int i -> current := i :: !current
  in
  List.iter handle_tok rest;
  if !current <> [] then fail "unterminated final clause (missing 0)";
  let got = Formula.Builder.num_clauses builder in
  if got <> declared_clauses then
    fail "clause count mismatch: header says %d, file has %d" declared_clauses got;
  Formula.Builder.build builder

let parse_channel ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  parse_string (Buffer.contents buf)

let parse_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> parse_channel ic)

let to_string ?comment f =
  let buf = Buffer.create 4096 in
  (match comment with
  | None -> ()
  | Some c ->
    String.split_on_char '\n' c
    |> List.iter (fun line -> Buffer.add_string buf ("c " ^ line ^ "\n")));
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Formula.num_vars f) (Formula.num_clauses f));
  let emit_clause c =
    Array.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l) ^ " ")) c;
    Buffer.add_string buf "0\n"
  in
  Formula.iter_clauses emit_clause f;
  Buffer.contents buf

let write_file ?comment path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?comment f))

lib/cnf/features.ml: Array Float Format Formula Lit

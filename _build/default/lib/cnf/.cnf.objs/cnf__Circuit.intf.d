lib/cnf/circuit.mli:

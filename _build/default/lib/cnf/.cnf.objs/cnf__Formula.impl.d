lib/cnf/formula.ml: Array Format List Lit Printf Util

lib/cnf/features.mli: Format Formula

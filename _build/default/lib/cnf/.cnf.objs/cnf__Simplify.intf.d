lib/cnf/simplify.mli: Formula

lib/cnf/formula.mli: Format Lit Util

lib/cnf/tseitin.mli: Circuit Formula Lit

lib/cnf/simplify.ml: Array Formula Fun List Lit

lib/cnf/tseitin.ml: Array Circuit Formula List Lit

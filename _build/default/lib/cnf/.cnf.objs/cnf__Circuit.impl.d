lib/cnf/circuit.ml: Array Hashtbl Int Util

lib/cnf/dimacs.ml: Array Buffer Formula Fun List Lit Printf String

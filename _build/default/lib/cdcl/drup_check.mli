(** Reference DRUP proof checker.

    Verifies that every clause a proof adds is derivable from the
    current clause database by {e reverse unit propagation} (RUP):
    asserting the clause's negation and unit-propagating must yield a
    conflict. Deletions remove clauses from the database. A proof is
    accepted when every step checks and the final step derives the
    empty clause (or a RUP conflict under no assumptions).

    This is a clarity-first quadratic implementation intended for
    validating the solver's {!Drup} output on small instances in tests,
    not a drat-trim replacement. *)

type verdict =
  | Valid
  | Invalid of { line : int; reason : string }

val check : Cnf.Formula.t -> string -> verdict
(** [check formula proof_text] replays a DRUP proof against the
    formula. *)

val check_solver_proof : Cnf.Formula.t -> Drup.t -> verdict
(** Convenience wrapper over {!check}. *)

module Lit = Cnf.Lit

type verdict =
  | Valid
  | Invalid of { line : int; reason : string }

type step =
  | Add of Lit.t array
  | Delete of Lit.t array

let parse_proof text =
  let parse_line line =
    let line = String.trim line in
    if line = "" then None
    else begin
      let deleted = String.length line > 1 && line.[0] = 'd' in
      let body = if deleted then String.sub line 1 (String.length line - 1) else line in
      let ints =
        String.split_on_char ' ' body
        |> List.filter (fun s -> s <> "")
        |> List.map int_of_string
      in
      match List.rev ints with
      | 0 :: rev_lits ->
        let lits = Array.of_list (List.rev_map Lit.of_dimacs rev_lits) in
        Some (if deleted then Delete lits else Add lits)
      | _ -> failwith "proof line must end with 0"
    end
  in
  String.split_on_char '\n' text |> List.filter_map parse_line

let clause_key lits =
  let sorted = List.sort_uniq Lit.compare (Array.to_list lits) in
  String.concat "," (List.map (fun l -> string_of_int (Lit.to_dimacs l)) sorted)

(* Unit propagation by repeated scanning — O(vars * clauses) per call,
   fine for test-scale proofs. Returns true when a conflict arises. *)
let propagates_to_conflict ~num_vars clauses assumed_false =
  let value = Array.make (num_vars + 1) 0 in
  let assign l =
    let v = Lit.var l in
    let s = if Lit.is_pos l then 1 else -1 in
    if value.(v) = -s then `Conflict
    else begin
      value.(v) <- s;
      `Ok
    end
  in
  let lit_value l =
    let s = value.(Lit.var l) in
    if s = 0 then 0 else if Lit.is_pos l then s else -s
  in
  let conflict = ref false in
  Array.iter
    (fun l -> if assign (Lit.negate l) = `Conflict then conflict := true)
    assumed_false;
  let progress = ref true in
  while !progress && not !conflict do
    progress := false;
    let scan_clause c =
      if not !conflict then begin
        let unassigned = ref None in
        let count = ref 0 in
        let satisfied = ref false in
        Array.iter
          (fun l ->
            match lit_value l with
            | 1 -> satisfied := true
            | 0 ->
              incr count;
              unassigned := Some l
            | _ -> ())
          c;
        if not !satisfied then begin
          if !count = 0 then conflict := true
          else if !count = 1 then begin
            match !unassigned with
            | Some l ->
              (match assign l with
              | `Conflict -> conflict := true
              | `Ok -> progress := true)
            | None -> assert false
          end
        end
      end
    in
    List.iter scan_clause clauses
  done;
  !conflict

let check formula proof_text =
  match parse_proof proof_text with
  | exception Failure reason -> Invalid { line = 0; reason }
  | steps ->
    let num_vars =
      (* Proof clauses reuse the formula's variables. *)
      Cnf.Formula.num_vars formula
    in
    (* Clause database as a multiset keyed by the normalised literal
       list, so deletions cancel exactly one live copy. *)
    let db : (string, Lit.t array * int ref) Hashtbl.t = Hashtbl.create 256 in
    let add_to_db lits =
      let key = clause_key lits in
      match Hashtbl.find_opt db key with
      | Some (_, count) -> incr count
      | None -> Hashtbl.add db key (lits, ref 1)
    in
    let remove_from_db lits =
      match Hashtbl.find_opt db (clause_key lits) with
      | Some (_, count) when !count > 0 -> decr count
      | Some _ | None -> () (* deleting an absent clause is a no-op *)
    in
    let live () =
      Hashtbl.fold (fun _ (c, count) acc -> if !count > 0 then c :: acc else acc) db []
    in
    Cnf.Formula.iter_clauses add_to_db formula;
    let result = ref Valid in
    let derived_empty = ref false in
    List.iteri
      (fun i step ->
        if !result = Valid && not !derived_empty then begin
          match step with
          | Add lits ->
            if propagates_to_conflict ~num_vars (live ()) lits then begin
              if Array.length lits = 0 then derived_empty := true
              else add_to_db lits
            end
            else result := Invalid { line = i + 1; reason = "clause is not RUP" }
          | Delete lits -> remove_from_db lits
        end)
      steps;
    if !result <> Valid then !result
    else if !derived_empty then Valid
    else Invalid { line = List.length steps; reason = "proof does not derive the empty clause" }

let check_solver_proof formula drup = check formula (Drup.to_string drup)

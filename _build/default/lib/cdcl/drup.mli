(** DRUP proof logging.

    Serialises the solver's clause-learning/deletion trace in the
    standard DRUP/DRAT text format (one clause per line, deletions
    prefixed with [d]), checkable by external tools such as drat-trim.
    Every learned clause of a CDCL solver is derivable by reverse unit
    propagation, so the emitted sequence is a valid DRUP proof when the
    solver answers UNSAT. *)

type t

val create : unit -> t

val attach : t -> Solver.t -> unit
(** Start recording the solver's trace into this log. *)

val event : t -> Solver.trace_event -> unit
(** Record one event directly (used by {!attach}). *)

val num_lines : t -> int
val to_string : t -> string
(** The proof text; ends with the empty clause line ["0"] when
    [conclude_unsat] was called. *)

val conclude_unsat : t -> unit
(** Append the final empty clause (call after the solver returns
    [Unsat]). *)

val write_file : string -> t -> unit

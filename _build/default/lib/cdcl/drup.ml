type t = {
  buffer : Buffer.t;
  mutable lines : int;
}

let create () = { buffer = Buffer.create 4096; lines = 0 }

let add_clause_line t ~deleted lits =
  if deleted then Buffer.add_string t.buffer "d ";
  Array.iter
    (fun l -> Buffer.add_string t.buffer (string_of_int (Cnf.Lit.to_dimacs l) ^ " "))
    lits;
  Buffer.add_string t.buffer "0\n";
  t.lines <- t.lines + 1

let event t = function
  | Solver.Learned lits -> add_clause_line t ~deleted:false lits
  | Solver.Deleted lits -> add_clause_line t ~deleted:true lits

let attach t solver = Solver.set_trace solver (event t)

let num_lines t = t.lines
let to_string t = Buffer.contents t.buffer

let conclude_unsat t =
  Buffer.add_string t.buffer "0\n";
  t.lines <- t.lines + 1

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

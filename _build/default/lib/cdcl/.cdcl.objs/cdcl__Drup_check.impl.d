lib/cdcl/drup_check.ml: Array Cnf Drup Hashtbl List String

lib/cdcl/solver_stats.mli: Format

lib/cdcl/vmtf.mli:

lib/cdcl/solver.mli: Cnf Config Solver_stats

lib/cdcl/drup_check.mli: Cnf Drup

lib/cdcl/drup.ml: Array Buffer Cnf Fun Solver

lib/cdcl/config.ml: Policy

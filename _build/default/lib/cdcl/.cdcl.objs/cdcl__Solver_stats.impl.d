lib/cdcl/solver_stats.ml: Format

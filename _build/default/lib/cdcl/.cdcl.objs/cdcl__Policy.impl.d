lib/cdcl/policy.ml: Array Float Format Int Int64 Option Printf String

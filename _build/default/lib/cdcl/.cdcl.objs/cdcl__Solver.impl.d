lib/cdcl/solver.ml: Array Cnf Config List Option Policy Solver_stats Util Var_heap Vmtf

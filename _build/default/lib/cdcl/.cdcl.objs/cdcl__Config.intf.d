lib/cdcl/config.mli: Policy

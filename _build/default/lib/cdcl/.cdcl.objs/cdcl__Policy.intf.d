lib/cdcl/policy.mli: Format

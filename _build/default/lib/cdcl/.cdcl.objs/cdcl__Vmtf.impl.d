lib/cdcl/vmtf.ml: Array

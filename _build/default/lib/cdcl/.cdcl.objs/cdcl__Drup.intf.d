lib/cdcl/drup.mli: Solver

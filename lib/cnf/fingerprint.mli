(** Canonical, order-invariant instance fingerprint.

    The selector's cache key: a 64-bit FNV-1a hash of the normalized
    clause set — literals sorted and deduplicated within each clause,
    clauses sorted and deduplicated, variable count mixed in. Invariant
    under clause reordering, literal reordering and clause/literal
    duplication; changed by polarity flips, injected tautologies,
    variable renaming and any other change to the clause set. *)

val compute : Formula.t -> int64

val compute_hex : Formula.t -> string
(** 16-char lowercase hex form of {!compute} (a ready-made string
    key). *)

val to_hex : int64 -> string

(* Canonical instance fingerprint.

   Key for the selector's embedding/decision cache: two formulas that
   are the same clause *set* — regardless of clause order, literal
   order within clauses, or repeated clauses/literals — must hash
   identically, while anything that changes the clause set (flipped
   polarities, injected tautologies, renamed variables, a different
   variable count) must not.

   Normal form: each clause's DIMACS literals sorted and deduplicated,
   the clause array sorted under the polymorphic total order and
   deduplicated, prefixed by the variable count. The normal form is
   hashed with 64-bit FNV-1a, one word per literal with a 0 separator
   between clauses (0 is never a DIMACS literal). *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let dedup_sorted a =
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let uniq = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then incr uniq
    done;
    if !uniq = n then a
    else begin
      let out = Array.make !uniq a.(0) in
      let w = ref 0 in
      for i = 1 to n - 1 do
        if a.(i) <> a.(i - 1) then begin
          incr w;
          out.(!w) <- a.(i)
        end
      done;
      out
    end
  end

let canonical_clauses f =
  let n = Formula.num_clauses f in
  let cls =
    Array.init n (fun i ->
        let c = Array.map Lit.to_dimacs (Formula.clause f i) in
        Array.sort compare c;
        dedup_sorted c)
  in
  Array.sort compare cls;
  (* Drop repeated clauses: the cache treats the formula as a clause
     set, so [Duplicate_clauses] traffic hits. *)
  let m = Array.length cls in
  if m <= 1 then cls
  else begin
    let keep = ref 1 in
    for i = 1 to m - 1 do
      if cls.(i) <> cls.(i - 1) then incr keep
    done;
    if !keep = m then cls
    else begin
      let out = Array.make !keep cls.(0) in
      let w = ref 0 in
      for i = 1 to m - 1 do
        if cls.(i) <> cls.(i - 1) then begin
          incr w;
          out.(!w) <- cls.(i)
        end
      done;
      out
    end
  end

let compute f =
  let cls = canonical_clauses f in
  let h = ref fnv_offset in
  let mix v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) fnv_prime in
  mix (Formula.num_vars f);
  Array.iter
    (fun c ->
      mix 0;
      Array.iter mix c)
    cls;
  !h

let to_hex h = Printf.sprintf "%016Lx" h
let compute_hex f = to_hex (compute f)

(** Single-instance solver runs for the experiment harness. *)

type run = {
  result : Cdcl.Solver.result;
  stats : Cdcl.Solver_stats.t;
  propagations : int;
  sim_seconds : float;
  solved : bool;  (** [result] is [Sat] or [Unsat] within budget. *)
}

val solve : ?deadline_seconds:float -> Simtime.t -> Cdcl.Policy.t -> Cnf.Formula.t -> run
(** Solve under the given deletion policy with the sim-time budget as
    the propagation cap. [deadline_seconds], when given, adds a
    wall-clock budget on top: the solver answers [Unknown] (counted
    as unsolved) when it expires. *)

val solve_with_config :
  ?deadline_seconds:float -> Simtime.t -> Cdcl.Config.t -> Cnf.Formula.t -> run
(** Same, but a full config (its propagation budget is overridden by
    the sim-time budget). *)

val solve_protected :
  ?retries:int ->
  ?deadline_seconds:float ->
  Simtime.t ->
  Cdcl.Policy.t ->
  Cnf.Formula.t ->
  (run, Runtime.Error.t) result
(** Exception-isolated solve for campaigns: any exception is caught
    and retried [retries] times (default 1) before being returned as
    a typed error, so one crashing instance cannot abort a sweep. *)

(** Table 3 and Figure 7: Kissat vs NeuroSelect-Kissat.

    Every test instance is solved under the default policy ("Kissat")
    and under the model-selected policy ("NeuroSelect-Kissat", whose
    reported time includes the measured model-inference wall clock, as
    in the paper).

    The campaign is fault-tolerant: per-instance failures are isolated
    (with one retry) and recorded instead of aborting the sweep, a
    degraded model selection falls back to the default policy, and —
    when a [journal] path is given — each completed entry is persisted
    as one JSONL line so an interrupted campaign resumes by skipping
    instances already measured. *)

type entry = {
  name : string;
  family : string;
  kissat_seconds : float;
  kissat_solved : bool;
  adaptive_seconds : float;  (** Simulated solve time + inference time. *)
  adaptive_solved : bool;
  inference_seconds : float;
  chose_frequency : bool;
  probability : float;
  degraded : string option;
      (** Why the selector fell back to the default policy, if it did. *)
}

type failure = {
  instance : string;
  error : string;
}

type summary = {
  solved : int;
  median_seconds : float;
  average_seconds : float;
}

type t = {
  entries : entry list;
  kissat : summary;
  adaptive : summary;
  median_improvement_pct : float;
      (** (kissat median - adaptive median) / kissat median * 100 — the
          paper's headline 5.8%. *)
  failures : failure list;
      (** Instances that crashed even after retry; excluded from the
          summaries. *)
  resumed : int;  (** Entries restored from the journal, not re-run. *)
  not_run : string list;
      (** Instances never started because the campaign was stopped
          (SIGINT/SIGTERM graceful drain). *)
}

val run :
  ?alpha:float ->
  ?batch_inference:bool ->
  ?progress:(string -> unit) ->
  ?journal:string ->
  ?deadline_seconds:float ->
  ?retries:int ->
  ?jobs:int ->
  ?isolate:bool ->
  ?mem_limit_mb:int ->
  ?worker_deadline_seconds:float ->
  Core.Model.t ->
  Simtime.t ->
  Gen.Dataset.instance list ->
  t
(** [batch_inference] precomputes every selection up front in packed
    batches ({!Core.Selector.select_policy_batch}) with the fingerprint
    cache enabled, instead of one forward per instance inside the
    measurement loop.

    [journal] enables JSONL partial-result persistence and resume.
    [deadline_seconds] adds a per-solve wall-clock budget alongside
    the propagation budget. [retries] (default 1) bounds per-instance
    retry on crash.

    Supervised execution: when [jobs] > 1, [isolate] is set, or
    [mem_limit_mb] is given, every instance is measured in a forked
    {!Runtime.Supervisor} worker — [jobs] in flight at once, each
    under the optional address-space cap and [worker_deadline_seconds]
    wall budget, heartbeat-watchdogged, with crashed/hung workers
    retried (backoff) before being recorded as failures. The campaign
    drains gracefully on SIGINT/SIGTERM: in-flight instances finish
    and are journaled, the rest are reported in [not_run]. Worker
    payloads are the exact journal lines, so a parallel campaign's
    journal is byte-equivalent to the sequential one modulo completion
    order. *)

val record_of_entry : entry -> Runtime.Journal.record
val entry_of_record : Runtime.Journal.record -> entry option

val print_table3 : Format.formatter -> t -> unit
val print_fig7a : Format.formatter -> t -> unit
(** Scatter rows: Kissat vs NeuroSelect-Kissat runtimes. *)

val print_fig7b : Format.formatter -> t -> unit
(** Box-whisker summaries of inference times and runtime improvements. *)

type run = {
  result : Cdcl.Solver.result;
  stats : Cdcl.Solver_stats.t;
  propagations : int;
  sim_seconds : float;
  solved : bool;
}

let solve_with_config ?deadline_seconds simtime config formula =
  let config =
    {
      config with
      Cdcl.Config.max_propagations = Some (Simtime.budget simtime);
      max_wall_seconds =
        (match deadline_seconds with
        | Some _ as d -> d
        | None -> config.Cdcl.Config.max_wall_seconds);
    }
  in
  let result, stats = Cdcl.Solver.solve_formula ~config formula in
  let propagations = stats.Cdcl.Solver_stats.propagations in
  {
    result;
    stats;
    propagations;
    sim_seconds = Simtime.seconds simtime propagations;
    solved = (match result with Cdcl.Solver.Sat _ | Cdcl.Solver.Unsat -> true
              | Cdcl.Solver.Unknown -> false);
  }

let solve ?deadline_seconds simtime policy formula =
  solve_with_config ?deadline_seconds simtime
    (Cdcl.Config.with_policy policy Cdcl.Config.default)
    formula

(* One instance must never take a campaign down: any exception from
   the solve is caught, retried once (transient faults recover), and
   finally surfaced as a typed error the caller can record. *)
let solve_protected ?(retries = 1) ?deadline_seconds simtime policy formula =
  let attempt () =
    if Runtime.Fault.fires Runtime.Fault.Instance_crash then
      Runtime.Error.raise_
        (Runtime.Error.Injected_fault { point = "instance-solve" });
    solve ?deadline_seconds simtime policy formula
  in
  let rec go remaining =
    match attempt () with
    | run -> Ok run
    | exception e ->
      if remaining > 0 then go (remaining - 1)
      else Error (Runtime.Error.of_exn ~context:"Runner.solve_protected" e)
  in
  go (max 0 retries)

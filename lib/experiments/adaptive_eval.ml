module Journal = Runtime.Journal

type entry = {
  name : string;
  family : string;
  kissat_seconds : float;
  kissat_solved : bool;
  adaptive_seconds : float;
  adaptive_solved : bool;
  inference_seconds : float;
  chose_frequency : bool;
  probability : float;
  degraded : string option;
}

type failure = {
  instance : string;
  error : string;
}

type summary = {
  solved : int;
  median_seconds : float;
  average_seconds : float;
}

type t = {
  entries : entry list;
  kissat : summary;
  adaptive : summary;
  median_improvement_pct : float;
  failures : failure list;
  resumed : int;
  not_run : string list;
}

(* --- JSONL (de)serialisation for campaign resume --- *)

let record_of_entry (e : entry) : Journal.record =
  [
    ("name", Journal.String e.name);
    ("family", Journal.String e.family);
    ("kissat_seconds", Journal.Float e.kissat_seconds);
    ("kissat_solved", Journal.Bool e.kissat_solved);
    ("adaptive_seconds", Journal.Float e.adaptive_seconds);
    ("adaptive_solved", Journal.Bool e.adaptive_solved);
    ("inference_seconds", Journal.Float e.inference_seconds);
    ("chose_frequency", Journal.Bool e.chose_frequency);
    ("probability", Journal.Float e.probability);
    ( "degraded",
      match e.degraded with
      | None -> Journal.Null
      | Some d -> Journal.String d );
  ]

let entry_of_record r =
  let ( let* ) = Option.bind in
  let* name = Journal.find_string r "name" in
  let* family = Journal.find_string r "family" in
  let* kissat_seconds = Journal.find_float r "kissat_seconds" in
  let* kissat_solved = Journal.find_bool r "kissat_solved" in
  let* adaptive_seconds = Journal.find_float r "adaptive_seconds" in
  let* adaptive_solved = Journal.find_bool r "adaptive_solved" in
  let* inference_seconds = Journal.find_float r "inference_seconds" in
  let* chose_frequency = Journal.find_bool r "chose_frequency" in
  let* probability = Journal.find_float r "probability" in
  Some
    {
      name;
      family;
      kissat_seconds;
      kissat_solved;
      adaptive_seconds;
      adaptive_solved;
      inference_seconds;
      chose_frequency;
      probability;
      degraded = Journal.find_string r "degraded";
    }

(* Completed entries keyed by instance name; failures are not loaded
   so a resumed campaign retries them. *)
let load_completed = function
  | None -> Hashtbl.create 0
  | Some path -> (
    let table = Hashtbl.create 64 in
    match Journal.load path with
    | Error _ -> table
    | Ok (records, _dropped) ->
      List.iter
        (fun r ->
          match entry_of_record r with
          | Some e -> Hashtbl.replace table e.name e
          | None -> ())
        records;
      table)

let batch_chunk = 32

let run ?(alpha = Cdcl.Policy.default_alpha) ?(batch_inference = false)
    ?progress ?journal ?deadline_seconds ?(retries = 1) ?(jobs = 1)
    ?(isolate = false) ?mem_limit_mb ?worker_deadline_seconds model simtime
    instances =
  let completed = load_completed journal in
  let resumed = ref 0 in
  let failures = ref [] in
  let not_run = ref [] in
  let persist entry =
    match journal with
    | None -> ()
    | Some path -> ignore (Journal.append path (record_of_entry entry))
  in
  let say fmt = Printf.ksprintf (fun s ->
      match progress with Some f -> f s | None -> ()) fmt
  in
  (* Batched inference: selections for every instance the campaign
     will actually measure are computed up front in fixed-size packed
     batches ([select_policy_batch]), with the fingerprint cache on so
     repeated instances cost one forward. The precomputed table is
     built before any worker forks, so supervised workers inherit it. *)
  let preselected : (string, Core.Selector.selection) Hashtbl.t =
    Hashtbl.create 64
  in
  if batch_inference then begin
    let pending =
      List.filter
        (fun (i : Gen.Dataset.instance) ->
          not (Hashtbl.mem completed i.name))
        instances
    in
    let rec chunks = function
      | [] -> []
      | l ->
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> take (k - 1) (x :: acc) rest
        in
        let c, rest = take batch_chunk [] l in
        c :: chunks rest
    in
    List.iter
      (fun chunk ->
        let selections =
          Core.Selector.select_policy_batch ~alpha ~use_cache:true model
            (List.map (fun (i : Gen.Dataset.instance) -> i.formula) chunk)
        in
        List.iter2
          (fun (i : Gen.Dataset.instance) s ->
            Hashtbl.replace preselected i.name s)
          chunk selections)
      (chunks pending)
  end;
  let measure (i : Gen.Dataset.instance) =
    let ( let* ) = Result.bind in
    let* kissat =
      Runner.solve_protected ~retries ?deadline_seconds simtime
        Cdcl.Policy.Default i.formula
    in
    let selection =
      match Hashtbl.find_opt preselected i.name with
      | Some s -> s
      | None -> Core.Selector.select_policy ~alpha model i.formula
    in
    let* adaptive =
      Runner.solve_protected ~retries ?deadline_seconds simtime
        selection.Core.Selector.policy i.formula
    in
    Ok
      {
        name = i.name;
        family = i.family;
        kissat_seconds = kissat.Runner.sim_seconds;
        kissat_solved = kissat.Runner.solved;
        adaptive_seconds =
          Float.min Simtime.paper_timeout_seconds
            (adaptive.Runner.sim_seconds
            +. selection.Core.Selector.inference_seconds);
        adaptive_solved = adaptive.Runner.solved;
        inference_seconds = selection.Core.Selector.inference_seconds;
        chose_frequency =
          (match selection.Core.Selector.policy with
          | Cdcl.Policy.Frequency _ -> true
          | Cdcl.Policy.Default | Cdcl.Policy.Glue_only | Cdcl.Policy.Size_only
          | Cdcl.Policy.Activity | Cdcl.Policy.Random _ -> false);
        probability = selection.Core.Selector.probability;
        degraded =
          Option.map Core.Selector.degradation_to_string
            selection.Core.Selector.degraded;
      }
  in
  let say_entry entry =
    say "  %-22s kissat %.0fs, adaptive %.0fs (p=%.2f, %s%s)" entry.name
      entry.kissat_seconds entry.adaptive_seconds entry.probability
      (if entry.chose_frequency then "frequency" else "default")
      (match entry.degraded with None -> "" | Some d -> ", DEGRADED: " ^ d)
  in
  let fail instance error =
    say "  %-22s FAILED: %s" instance error;
    failures := { instance; error } :: !failures
  in
  (* Sequential path: measure in-process, one instance at a time,
     checking for a shutdown request between instances. *)
  let handle (i : Gen.Dataset.instance) =
    match Hashtbl.find_opt completed i.name with
    | Some entry ->
      incr resumed;
      say "  %-22s resumed from journal" entry.name;
      Some entry
    | None when Runtime.Shutdown.requested () ->
      not_run := i.name :: !not_run;
      None
    | None -> (
      match measure i with
      | Ok entry ->
        persist entry;
        say_entry entry;
        Some entry
      | Error e ->
        fail i.name (Runtime.Error.to_string e);
        None)
  in
  (* Supervised path: each instance is measured in a forked worker
     under an address-space cap, wall deadline, and heartbeat
     watchdog; the pool bounds in-flight work at [jobs], retries
     crashed/hung workers with backoff, and drains gracefully on
     SIGTERM. The worker payload is exactly the instance's journal
     line, so parallel and sequential campaigns journal identical
     bytes (modulo completion order). *)
  let handle_supervised () =
    let resumed_tbl = Hashtbl.create 16 in
    let results = Hashtbl.create 64 in
    let tasks =
      List.filter_map
        (fun (i : Gen.Dataset.instance) ->
          match Hashtbl.find_opt completed i.name with
          | Some entry ->
            incr resumed;
            Hashtbl.replace resumed_tbl entry.name entry;
            say "  %-22s resumed from journal" entry.name;
            None
          | None ->
            Some
              ( i.name,
                fun () ->
                  match measure i with
                  | Ok entry -> Ok (Journal.encode (record_of_entry entry))
                  | Error e -> Error (Runtime.Error.to_string e) ))
        instances
    in
    let on_complete (c : Runtime.Pool.completion) =
      match c.Runtime.Pool.outcome with
      | Runtime.Pool.Done payload -> (
        match Option.bind (Journal.parse_line payload) entry_of_record with
        | Some entry ->
          Hashtbl.replace results entry.name entry;
          persist entry;
          say_entry entry
        | None -> fail c.Runtime.Pool.id "unparseable worker payload")
      | Runtime.Pool.Failed msg -> fail c.Runtime.Pool.id msg
      | Runtime.Pool.Shed -> fail c.Runtime.Pool.id "shed: pool queue full"
    in
    let limits =
      {
        Runtime.Supervisor.default_limits with
        mem_limit_mb;
        deadline_seconds = worker_deadline_seconds;
      }
    in
    let batch = Runtime.Pool.run_list ~jobs ~limits ~on_complete tasks in
    not_run := List.rev batch.Runtime.Pool.not_run;
    List.filter_map
      (fun (i : Gen.Dataset.instance) ->
        match Hashtbl.find_opt resumed_tbl i.name with
        | Some _ as e -> e
        | None -> Hashtbl.find_opt results i.name)
      instances
  in
  let supervised = jobs > 1 || isolate || mem_limit_mb <> None in
  let entries =
    if supervised then handle_supervised ()
    else List.filter_map handle instances
  in
  let summarise seconds solved =
    {
      solved;
      median_seconds = Util.Stats.median seconds;
      average_seconds = Util.Stats.mean seconds;
    }
  in
  let kissat =
    summarise
      (Array.of_list (List.map (fun e -> e.kissat_seconds) entries))
      (List.length (List.filter (fun e -> e.kissat_solved) entries))
  in
  let adaptive =
    summarise
      (Array.of_list (List.map (fun e -> e.adaptive_seconds) entries))
      (List.length (List.filter (fun e -> e.adaptive_solved) entries))
  in
  let median_improvement_pct =
    if kissat.median_seconds <= 0.0 then 0.0
    else
      100.0 *. (kissat.median_seconds -. adaptive.median_seconds)
      /. kissat.median_seconds
  in
  {
    entries;
    kissat;
    adaptive;
    median_improvement_pct;
    failures = List.rev !failures;
    resumed = !resumed;
    not_run = List.rev !not_run;
  }

let print_table3 ppf t =
  Format.fprintf ppf
    "@[<v>Table 3 — runtime statistics on the test year (sim seconds)@,\
     %-20s %8s %12s %12s@,%-20s %8d %12.2f %12.2f@,%-20s %8d %12.2f %12.2f@,@,\
     median improvement: %.1f%% (paper: 5.8%%)@]"
    "solver" "solved" "median (s)" "average (s)" "Kissat" t.kissat.solved
    t.kissat.median_seconds t.kissat.average_seconds "NeuroSelect-Kissat"
    t.adaptive.solved t.adaptive.median_seconds t.adaptive.average_seconds
    t.median_improvement_pct;
  let degraded =
    List.length (List.filter (fun e -> e.degraded <> None) t.entries)
  in
  if degraded > 0 then
    Format.fprintf ppf "@.%d instance(s) ran with a degraded (default) policy"
      degraded;
  if t.resumed > 0 then
    Format.fprintf ppf "@.%d instance(s) resumed from the journal" t.resumed;
  if t.not_run <> [] then
    Format.fprintf ppf
      "@.%d instance(s) not run (campaign stopped before they started)"
      (List.length t.not_run);
  if t.failures <> [] then begin
    Format.fprintf ppf "@.%d instance(s) failed and were excluded:"
      (List.length t.failures);
    List.iter
      (fun f -> Format.fprintf ppf "@.  %s: %s" f.instance f.error)
      t.failures
  end

let print_fig7a ppf t =
  Format.fprintf ppf
    "@[<v>Figure 7a — Kissat vs NeuroSelect-Kissat (sim seconds)@,\
     %-24s %-8s %10s %10s  side@,"
    "instance" "family" "kissat" "adaptive";
  let row e =
    let side =
      if e.adaptive_seconds < e.kissat_seconds then "below (adaptive wins)"
      else if e.adaptive_seconds > e.kissat_seconds then "above"
      else "diagonal"
    in
    Format.fprintf ppf "%-24s %-8s %10.1f %10.1f  %s@," e.name e.family
      e.kissat_seconds e.adaptive_seconds side
  in
  List.iter row t.entries;
  let below =
    List.length
      (List.filter (fun e -> e.adaptive_seconds < e.kissat_seconds) t.entries)
  in
  let above =
    List.length
      (List.filter (fun e -> e.adaptive_seconds > e.kissat_seconds) t.entries)
  in
  Format.fprintf ppf "@,below diagonal %d, above %d, on %d@]" below above
    (List.length t.entries - below - above)

let print_fig7b ppf t =
  let inference =
    Array.of_list (List.map (fun e -> e.inference_seconds) t.entries)
  in
  let improvements =
    Array.of_list
      (List.filter_map
         (fun e ->
           let delta = e.kissat_seconds -. e.adaptive_seconds in
           if delta > 0.0 then Some delta else None)
         t.entries)
  in
  Format.fprintf ppf
    "@[<v>Figure 7b — inference time and runtime improvement@,\
     model inference time (s):    %a@,"
    Util.Stats.pp_box (Util.Stats.box_summary inference);
  if Array.length improvements > 0 then
    Format.fprintf ppf "solver runtime improvement (s): %a@,max improvement %.1f s@]"
      Util.Stats.pp_box
      (Util.Stats.box_summary improvements)
      (snd (Util.Stats.min_max improvements))
  else Format.fprintf ppf "solver runtime improvement: none observed@]"

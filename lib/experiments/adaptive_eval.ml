module Journal = Runtime.Journal

type entry = {
  name : string;
  family : string;
  kissat_seconds : float;
  kissat_solved : bool;
  adaptive_seconds : float;
  adaptive_solved : bool;
  inference_seconds : float;
  chose_frequency : bool;
  probability : float;
  degraded : string option;
}

type failure = {
  instance : string;
  error : string;
}

type summary = {
  solved : int;
  median_seconds : float;
  average_seconds : float;
}

type t = {
  entries : entry list;
  kissat : summary;
  adaptive : summary;
  median_improvement_pct : float;
  failures : failure list;
  resumed : int;
}

(* --- JSONL (de)serialisation for campaign resume --- *)

let record_of_entry (e : entry) : Journal.record =
  [
    ("name", Journal.String e.name);
    ("family", Journal.String e.family);
    ("kissat_seconds", Journal.Float e.kissat_seconds);
    ("kissat_solved", Journal.Bool e.kissat_solved);
    ("adaptive_seconds", Journal.Float e.adaptive_seconds);
    ("adaptive_solved", Journal.Bool e.adaptive_solved);
    ("inference_seconds", Journal.Float e.inference_seconds);
    ("chose_frequency", Journal.Bool e.chose_frequency);
    ("probability", Journal.Float e.probability);
    ( "degraded",
      match e.degraded with
      | None -> Journal.Null
      | Some d -> Journal.String d );
  ]

let entry_of_record r =
  let ( let* ) = Option.bind in
  let* name = Journal.find_string r "name" in
  let* family = Journal.find_string r "family" in
  let* kissat_seconds = Journal.find_float r "kissat_seconds" in
  let* kissat_solved = Journal.find_bool r "kissat_solved" in
  let* adaptive_seconds = Journal.find_float r "adaptive_seconds" in
  let* adaptive_solved = Journal.find_bool r "adaptive_solved" in
  let* inference_seconds = Journal.find_float r "inference_seconds" in
  let* chose_frequency = Journal.find_bool r "chose_frequency" in
  let* probability = Journal.find_float r "probability" in
  Some
    {
      name;
      family;
      kissat_seconds;
      kissat_solved;
      adaptive_seconds;
      adaptive_solved;
      inference_seconds;
      chose_frequency;
      probability;
      degraded = Journal.find_string r "degraded";
    }

(* Completed entries keyed by instance name; failures are not loaded
   so a resumed campaign retries them. *)
let load_completed = function
  | None -> Hashtbl.create 0
  | Some path -> (
    let table = Hashtbl.create 64 in
    match Journal.load path with
    | Error _ -> table
    | Ok (records, _dropped) ->
      List.iter
        (fun r ->
          match entry_of_record r with
          | Some e -> Hashtbl.replace table e.name e
          | None -> ())
        records;
      table)

let run ?(alpha = Cdcl.Policy.default_alpha) ?progress ?journal ?deadline_seconds
    ?(retries = 1) model simtime instances =
  let completed = load_completed journal in
  let resumed = ref 0 in
  let failures = ref [] in
  let persist entry =
    match journal with
    | None -> ()
    | Some path -> ignore (Journal.append path (record_of_entry entry))
  in
  let say fmt = Printf.ksprintf (fun s ->
      match progress with Some f -> f s | None -> ()) fmt
  in
  let measure (i : Gen.Dataset.instance) =
    let ( let* ) = Result.bind in
    let* kissat =
      Runner.solve_protected ~retries ?deadline_seconds simtime
        Cdcl.Policy.Default i.formula
    in
    let selection = Core.Selector.select_policy ~alpha model i.formula in
    let* adaptive =
      Runner.solve_protected ~retries ?deadline_seconds simtime
        selection.Core.Selector.policy i.formula
    in
    Ok
      {
        name = i.name;
        family = i.family;
        kissat_seconds = kissat.Runner.sim_seconds;
        kissat_solved = kissat.Runner.solved;
        adaptive_seconds =
          Float.min Simtime.paper_timeout_seconds
            (adaptive.Runner.sim_seconds
            +. selection.Core.Selector.inference_seconds);
        adaptive_solved = adaptive.Runner.solved;
        inference_seconds = selection.Core.Selector.inference_seconds;
        chose_frequency =
          (match selection.Core.Selector.policy with
          | Cdcl.Policy.Frequency _ -> true
          | Cdcl.Policy.Default | Cdcl.Policy.Glue_only | Cdcl.Policy.Size_only
          | Cdcl.Policy.Activity | Cdcl.Policy.Random _ -> false);
        probability = selection.Core.Selector.probability;
        degraded =
          Option.map Core.Selector.degradation_to_string
            selection.Core.Selector.degraded;
      }
  in
  let handle (i : Gen.Dataset.instance) =
    match Hashtbl.find_opt completed i.name with
    | Some entry ->
      incr resumed;
      say "  %-22s resumed from journal" entry.name;
      Some entry
    | None -> (
      match measure i with
      | Ok entry ->
        persist entry;
        say "  %-22s kissat %.0fs, adaptive %.0fs (p=%.2f, %s%s)" entry.name
          entry.kissat_seconds entry.adaptive_seconds entry.probability
          (if entry.chose_frequency then "frequency" else "default")
          (match entry.degraded with None -> "" | Some d -> ", DEGRADED: " ^ d);
        Some entry
      | Error e ->
        let error = Runtime.Error.to_string e in
        say "  %-22s FAILED: %s" i.name error;
        failures := { instance = i.name; error } :: !failures;
        None)
  in
  let entries = List.filter_map handle instances in
  let summarise seconds solved =
    {
      solved;
      median_seconds = Util.Stats.median seconds;
      average_seconds = Util.Stats.mean seconds;
    }
  in
  let kissat =
    summarise
      (Array.of_list (List.map (fun e -> e.kissat_seconds) entries))
      (List.length (List.filter (fun e -> e.kissat_solved) entries))
  in
  let adaptive =
    summarise
      (Array.of_list (List.map (fun e -> e.adaptive_seconds) entries))
      (List.length (List.filter (fun e -> e.adaptive_solved) entries))
  in
  let median_improvement_pct =
    if kissat.median_seconds <= 0.0 then 0.0
    else
      100.0 *. (kissat.median_seconds -. adaptive.median_seconds)
      /. kissat.median_seconds
  in
  {
    entries;
    kissat;
    adaptive;
    median_improvement_pct;
    failures = List.rev !failures;
    resumed = !resumed;
  }

let print_table3 ppf t =
  Format.fprintf ppf
    "@[<v>Table 3 — runtime statistics on the test year (sim seconds)@,\
     %-20s %8s %12s %12s@,%-20s %8d %12.2f %12.2f@,%-20s %8d %12.2f %12.2f@,@,\
     median improvement: %.1f%% (paper: 5.8%%)@]"
    "solver" "solved" "median (s)" "average (s)" "Kissat" t.kissat.solved
    t.kissat.median_seconds t.kissat.average_seconds "NeuroSelect-Kissat"
    t.adaptive.solved t.adaptive.median_seconds t.adaptive.average_seconds
    t.median_improvement_pct;
  let degraded =
    List.length (List.filter (fun e -> e.degraded <> None) t.entries)
  in
  if degraded > 0 then
    Format.fprintf ppf "@.%d instance(s) ran with a degraded (default) policy"
      degraded;
  if t.resumed > 0 then
    Format.fprintf ppf "@.%d instance(s) resumed from the journal" t.resumed;
  if t.failures <> [] then begin
    Format.fprintf ppf "@.%d instance(s) failed and were excluded:"
      (List.length t.failures);
    List.iter
      (fun f -> Format.fprintf ppf "@.  %s: %s" f.instance f.error)
      t.failures
  end

let print_fig7a ppf t =
  Format.fprintf ppf
    "@[<v>Figure 7a — Kissat vs NeuroSelect-Kissat (sim seconds)@,\
     %-24s %-8s %10s %10s  side@,"
    "instance" "family" "kissat" "adaptive";
  let row e =
    let side =
      if e.adaptive_seconds < e.kissat_seconds then "below (adaptive wins)"
      else if e.adaptive_seconds > e.kissat_seconds then "above"
      else "diagonal"
    in
    Format.fprintf ppf "%-24s %-8s %10.1f %10.1f  %s@," e.name e.family
      e.kissat_seconds e.adaptive_seconds side
  in
  List.iter row t.entries;
  let below =
    List.length
      (List.filter (fun e -> e.adaptive_seconds < e.kissat_seconds) t.entries)
  in
  let above =
    List.length
      (List.filter (fun e -> e.adaptive_seconds > e.kissat_seconds) t.entries)
  in
  Format.fprintf ppf "@,below diagonal %d, above %d, on %d@]" below above
    (List.length t.entries - below - above)

let print_fig7b ppf t =
  let inference =
    Array.of_list (List.map (fun e -> e.inference_seconds) t.entries)
  in
  let improvements =
    Array.of_list
      (List.filter_map
         (fun e ->
           let delta = e.kissat_seconds -. e.adaptive_seconds in
           if delta > 0.0 then Some delta else None)
         t.entries)
  in
  Format.fprintf ppf
    "@[<v>Figure 7b — inference time and runtime improvement@,\
     model inference time (s):    %a@,"
    Util.Stats.pp_box (Util.Stats.box_summary inference);
  if Array.length improvements > 0 then
    Format.fprintf ppf "solver runtime improvement (s): %a@,max improvement %.1f s@]"
      Util.Stats.pp_box
      (Util.Stats.box_summary improvements)
      (snd (Util.Stats.min_max improvements))
  else Format.fprintf ppf "solver runtime improvement: none observed@]"

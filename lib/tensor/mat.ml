type t = {
  rows : int;
  cols : int;
  data : float array;
}

let check_shape rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat: negative dimension"

let create rows cols x =
  check_shape rows cols;
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.0

let init rows cols f =
  check_shape rows cols;
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let of_arrays arrays =
  let rows = Array.length arrays in
  if rows = 0 then invalid_arg "Mat.of_arrays: zero rows";
  let cols = Array.length arrays.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged")
    arrays;
  init rows cols (fun i j -> arrays.(i).(j))

let of_array ~rows ~cols data =
  if Array.length data <> rows * cols then invalid_arg "Mat.of_array: length mismatch";
  { rows; cols; data = Array.copy data }

let row_vector a = of_array ~rows:1 ~cols:(Array.length a) a

let copy m = { m with data = Array.copy m.data }
let rows m = m.rows
let cols m = m.cols
let shape m = (m.rows, m.cols)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.get";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.set";
  m.data.((i * m.cols) + j) <- x

let random_uniform rng rows cols scale =
  init rows cols (fun _ _ -> Util.Rng.uniform rng (-.scale) scale)

let xavier rng fan_in fan_out =
  let scale = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  random_uniform rng fan_in fan_out scale

let same_shape a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat: shape mismatch %dx%d vs %dx%d" a.rows a.cols b.rows b.cols)

let map2 f a b =
  same_shape a b;
  let n = Array.length a.data in
  let ad = a.data and bd = b.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (f (Array.unsafe_get ad k) (Array.unsafe_get bd k))
  done;
  { a with data }

(* The elementwise workhorses are specialised loops rather than
   [map2 ( +. )]: with no polymorphic closure in the way the floats
   stay unboxed end to end. *)
let add a b =
  same_shape a b;
  let n = Array.length a.data in
  let ad = a.data and bd = b.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (Array.unsafe_get ad k +. Array.unsafe_get bd k)
  done;
  { a with data }

let sub a b =
  same_shape a b;
  let n = Array.length a.data in
  let ad = a.data and bd = b.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (Array.unsafe_get ad k -. Array.unsafe_get bd k)
  done;
  { a with data }

let mul a b =
  same_shape a b;
  let n = Array.length a.data in
  let ad = a.data and bd = b.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (Array.unsafe_get ad k *. Array.unsafe_get bd k)
  done;
  { a with data }

let scale s m =
  let n = Array.length m.data in
  let md = m.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (s *. Array.unsafe_get md k)
  done;
  { m with data }

let map f m =
  let n = Array.length m.data in
  let md = m.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (f (Array.unsafe_get md k))
  done;
  { m with data }

let add_in_place acc x =
  same_shape acc x;
  for k = 0 to Array.length acc.data - 1 do
    acc.data.(k) <- acc.data.(k) +. x.data.(k)
  done

let sub_in_place acc x =
  same_shape acc x;
  let ad = acc.data and xd = x.data in
  for k = 0 to Array.length ad - 1 do
    Array.unsafe_set ad k (Array.unsafe_get ad k -. Array.unsafe_get xd k)
  done

let scale_in_place s m =
  let md = m.data in
  for k = 0 to Array.length md - 1 do
    Array.unsafe_set md k (s *. Array.unsafe_get md k)
  done

let add_scaled_in_place acc s x =
  same_shape acc x;
  let ad = acc.data and xd = x.data in
  for k = 0 to Array.length ad - 1 do
    Array.unsafe_set ad k (Array.unsafe_get ad k +. (s *. Array.unsafe_get xd k))
  done

let add_scaled_sq_in_place acc s x =
  same_shape acc x;
  let ad = acc.data and xd = x.data in
  for k = 0 to Array.length ad - 1 do
    let g = Array.unsafe_get xd k in
    Array.unsafe_set ad k (Array.unsafe_get ad k +. (s *. (g *. g)))
  done

let adam_update_in_place value ~lr ~eps ~bc1 ~bc2 ~m ~v =
  same_shape value m;
  same_shape value v;
  let vd = value.data and md = m.data and sd = v.data in
  let c1 = 1.0 /. bc1 and c2 = 1.0 /. bc2 in
  for k = 0 to Array.length vd - 1 do
    let m_hat = c1 *. Array.unsafe_get md k in
    let v_hat = c2 *. Array.unsafe_get sd k in
    Array.unsafe_set vd k
      (Array.unsafe_get vd k -. (lr *. m_hat /. (sqrt v_hat +. eps)))
  done

let fill m x = Array.fill m.data 0 (Array.length m.data) x

let matmul_check a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: %dx%d * %dx%d" a.rows a.cols b.rows b.cols)

(* Reference GEMM: i-k-j triple loop, every out.(i,j) accumulating
   a.(i,k)*b.(k,j) in ascending k, one term at a time. No zero-skip —
   skipping [aik = 0.0] would break IEEE semantics (0 * nan = nan,
   0 * inf = nan, and -0.0 contributions), so the reference propagates
   every term and the blocked kernel is held bit-identical to it. *)
let matmul_naive a b =
  matmul_check a b;
  let out = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      let arow = i * b.cols and brow = k * b.cols in
      for j = 0 to b.cols - 1 do
        out.data.(arow + j) <- out.data.(arow + j) +. (aik *. b.data.(brow + j))
      done
    done
  done;
  out

(* Cache-blocked, register-tiled GEMM.

   Bit-identical to [matmul_naive]: for any fixed (i, j) the terms
   a.(i,k)*b.(k,j) are folded into out.(i,j) in strictly ascending k,
   one addition at a time — the k panels, the 4x4 micro-kernel and both
   remainder paths all preserve that order, so no reassociation occurs
   and signed zeros and infinities come out with the same bits, with
   NaN at exactly the same positions. (NaN *payload* bits are outside
   the contract: when two NaNs meet in [+.] the hardware keeps the
   first operand's payload and the code generator may swap operands of
   commutative float ops.)

   The tiling wins by arithmetic intensity, not reordering: the
   micro-kernel keeps 16 a-coefficients in (unboxed) float locals and
   performs 16 multiply-adds per j step against 4 out loads/stores and
   4 b loads, versus the reference's one multiply-add per out
   load/store + b load. The k-panel bound keeps the active b stripe
   L2-resident at large shapes. No [ref] accumulators: without flambda
   a float ref boxes on every store, while chained [let] floats stay in
   registers. *)
let kc_panel = 64

let matmul_into ~out a b =
  matmul_check a b;
  if out.rows <> a.rows || out.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.matmul_into: out %dx%d for %dx%d * %dx%d" out.rows
         out.cols a.rows a.cols b.rows b.cols);
  if out.data == a.data || out.data == b.data then
    invalid_arg "Mat.matmul_into: out aliases an input";
  let m = a.rows and kk = a.cols and n = b.cols in
  let ad = a.data and bd = b.data and od = out.data in
  Array.fill od 0 (m * n) 0.0;
  let kp = ref 0 in
  while !kp < kk do
    let kend = min kk (!kp + kc_panel) in
    let i = ref 0 in
    while !i + 3 < m do
      let i0 = !i in
      let r0 = i0 * kk and r1 = (i0 + 1) * kk in
      let r2 = (i0 + 2) * kk and r3 = (i0 + 3) * kk in
      let o0 = i0 * n and o1 = (i0 + 1) * n in
      let o2 = (i0 + 2) * n and o3 = (i0 + 3) * n in
      let k = ref !kp in
      while !k + 3 < kend do
        let k0 = !k in
        let a00 = ad.(r0 + k0) and a01 = ad.(r0 + k0 + 1) in
        let a02 = ad.(r0 + k0 + 2) and a03 = ad.(r0 + k0 + 3) in
        let a10 = ad.(r1 + k0) and a11 = ad.(r1 + k0 + 1) in
        let a12 = ad.(r1 + k0 + 2) and a13 = ad.(r1 + k0 + 3) in
        let a20 = ad.(r2 + k0) and a21 = ad.(r2 + k0 + 1) in
        let a22 = ad.(r2 + k0 + 2) and a23 = ad.(r2 + k0 + 3) in
        let a30 = ad.(r3 + k0) and a31 = ad.(r3 + k0 + 1) in
        let a32 = ad.(r3 + k0 + 2) and a33 = ad.(r3 + k0 + 3) in
        let b0 = k0 * n and b1 = (k0 + 1) * n in
        let b2 = (k0 + 2) * n and b3 = (k0 + 3) * n in
        for j = 0 to n - 1 do
          let bv0 = bd.(b0 + j) and bv1 = bd.(b1 + j) in
          let bv2 = bd.(b2 + j) and bv3 = bd.(b3 + j) in
          let s0 = od.(o0 + j) in
          let s0 = s0 +. (a00 *. bv0) in
          let s0 = s0 +. (a01 *. bv1) in
          let s0 = s0 +. (a02 *. bv2) in
          let s0 = s0 +. (a03 *. bv3) in
          od.(o0 + j) <- s0;
          let s1 = od.(o1 + j) in
          let s1 = s1 +. (a10 *. bv0) in
          let s1 = s1 +. (a11 *. bv1) in
          let s1 = s1 +. (a12 *. bv2) in
          let s1 = s1 +. (a13 *. bv3) in
          od.(o1 + j) <- s1;
          let s2 = od.(o2 + j) in
          let s2 = s2 +. (a20 *. bv0) in
          let s2 = s2 +. (a21 *. bv1) in
          let s2 = s2 +. (a22 *. bv2) in
          let s2 = s2 +. (a23 *. bv3) in
          od.(o2 + j) <- s2;
          let s3 = od.(o3 + j) in
          let s3 = s3 +. (a30 *. bv0) in
          let s3 = s3 +. (a31 *. bv1) in
          let s3 = s3 +. (a32 *. bv2) in
          let s3 = s3 +. (a33 *. bv3) in
          od.(o3 + j) <- s3
        done;
        k := k0 + 4
      done;
      while !k < kend do
        let k0 = !k in
        let a0 = ad.(r0 + k0) and a1 = ad.(r1 + k0) in
        let a2 = ad.(r2 + k0) and a3 = ad.(r3 + k0) in
        let brow = k0 * n in
        for j = 0 to n - 1 do
          let bv = bd.(brow + j) in
          od.(o0 + j) <- od.(o0 + j) +. (a0 *. bv);
          od.(o1 + j) <- od.(o1 + j) +. (a1 *. bv);
          od.(o2 + j) <- od.(o2 + j) +. (a2 *. bv);
          od.(o3 + j) <- od.(o3 + j) +. (a3 *. bv)
        done;
        incr k
      done;
      i := i0 + 4
    done;
    while !i < m do
      let i0 = !i in
      let r0 = i0 * kk and o0 = i0 * n in
      let k = ref !kp in
      while !k + 3 < kend do
        let k0 = !k in
        let a0 = ad.(r0 + k0) and a1 = ad.(r0 + k0 + 1) in
        let a2 = ad.(r0 + k0 + 2) and a3 = ad.(r0 + k0 + 3) in
        let b0 = k0 * n and b1 = (k0 + 1) * n in
        let b2 = (k0 + 2) * n and b3 = (k0 + 3) * n in
        for j = 0 to n - 1 do
          let s = od.(o0 + j) in
          let s = s +. (a0 *. bd.(b0 + j)) in
          let s = s +. (a1 *. bd.(b1 + j)) in
          let s = s +. (a2 *. bd.(b2 + j)) in
          let s = s +. (a3 *. bd.(b3 + j)) in
          od.(o0 + j) <- s
        done;
        k := k0 + 4
      done;
      while !k < kend do
        let k0 = !k in
        let a0 = ad.(r0 + k0) in
        let brow = k0 * n in
        for j = 0 to n - 1 do
          od.(o0 + j) <- od.(o0 + j) +. (a0 *. bd.(brow + j))
        done;
        incr k
      done;
      incr i
    done;
    kp := kend
  done

let matmul a b =
  matmul_check a b;
  let out = zeros a.rows b.cols in
  matmul_into ~out a b;
  out

let matmul_transpose_a a b =
  (* (a^T b) : (a.cols x a.rows) * (b.rows x b.cols) *)
  if a.rows <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul_transpose_a: %dx%d^T * %dx%d" a.rows a.cols b.rows b.cols);
  let out = zeros a.cols b.cols in
  for k = 0 to a.rows - 1 do
    for i = 0 to a.cols - 1 do
      let aki = a.data.((k * a.cols) + i) in
      if aki <> 0.0 then begin
        let orow = i * b.cols and brow = k * b.cols in
        for j = 0 to b.cols - 1 do
          out.data.(orow + j) <- out.data.(orow + j) +. (aki *. b.data.(brow + j))
        done
      end
    done
  done;
  out

let matmul_transpose_b a b =
  if a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.matmul_transpose_b: %dx%d * %dx%d^T" a.rows a.cols b.rows b.cols);
  let out = zeros a.rows b.rows in
  for i = 0 to a.rows - 1 do
    for j = 0 to b.rows - 1 do
      let acc = ref 0.0 in
      let arow = i * a.cols and brow = j * b.cols in
      for k = 0 to a.cols - 1 do
        acc := !acc +. (a.data.(arow + k) *. b.data.(brow + k))
      done;
      out.data.((i * b.rows) + j) <- !acc
    done
  done;
  out

let transpose m = init m.cols m.rows (fun i j -> m.data.((j * m.cols) + i))

let sum m = Array.fold_left ( +. ) 0.0 m.data

let mean m =
  let n = Array.length m.data in
  if n = 0 then 0.0 else sum m /. float_of_int n

let frobenius_norm m = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 m.data)

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row";
  Array.sub m.data (i * m.cols) m.cols

let col_means m =
  let out = zeros 1 m.cols in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      out.data.(j) <- out.data.(j) +. m.data.((i * m.cols) + j)
    done
  done;
  let n = float_of_int (max m.rows 1) in
  for j = 0 to m.cols - 1 do
    out.data.(j) <- out.data.(j) /. n
  done;
  out

let row_sums m =
  let out = zeros m.rows 1 in
  for i = 0 to m.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. m.data.((i * m.cols) + j)
    done;
    out.data.(i) <- !acc
  done;
  out

let add_row_in_place acc r =
  if r.rows <> 1 || r.cols <> acc.cols then
    invalid_arg
      (Printf.sprintf "Mat.add_row_in_place: %dx%d += %dx%d" acc.rows acc.cols
         r.rows r.cols);
  let ad = acc.data and rd = r.data in
  let n = acc.cols in
  for i = 0 to acc.rows - 1 do
    let base = i * n in
    for j = 0 to n - 1 do
      ad.(base + j) <- ad.(base + j) +. rd.(j)
    done
  done

(* Matches the autodiff relu exactly: [if x > 0.0 then x else 0.0], so
   -0.0 and NaN map to +0.0 on both paths. *)
let relu_in_place m =
  let d = m.data in
  for k = 0 to Array.length d - 1 do
    let x = d.(k) in
    if not (x > 0.0) then d.(k) <- 0.0
  done

let gather_rows_into ~out src idx =
  let n = src.cols in
  if out.cols <> n || out.rows <> Array.length idx then
    invalid_arg "Mat.gather_rows_into: shape mismatch";
  let od = out.data and sd = src.data in
  for e = 0 to Array.length idx - 1 do
    let i = idx.(e) in
    if i < 0 || i >= src.rows then invalid_arg "Mat.gather_rows_into: index";
    Array.blit sd (i * n) od (e * n) n
  done

let scatter_sum_into ~out src idx =
  let n = src.cols in
  if out.cols <> n || Array.length idx <> src.rows then
    invalid_arg "Mat.scatter_sum_into: shape mismatch";
  let od = out.data and sd = src.data in
  Array.fill od 0 (Array.length od) 0.0;
  for e = 0 to Array.length idx - 1 do
    let i = idx.(e) in
    if i < 0 || i >= out.rows then invalid_arg "Mat.scatter_sum_into: index";
    let obase = i * n and sbase = e * n in
    for j = 0 to n - 1 do
      od.(obase + j) <- od.(obase + j) +. sd.(sbase + j)
    done
  done

(* Fused gather -> per-edge scale -> scatter-sum: one pass over the
   edge stream instead of three, no intermediate [edges x cols] buffer.
   Accumulates in ascending edge order with the identical
   [w *. src] product, so it is bit-identical to the unfused
   gather/scale/scatter pipeline (and to the autodiff ops). *)
let scatter_weighted_rows_into ~out src ~send ~recv ~weights =
  let n = src.cols in
  let ne = Array.length send in
  if Array.length recv <> ne || Array.length weights <> ne then
    invalid_arg "Mat.scatter_weighted_rows_into: length mismatch";
  if out.cols <> n then invalid_arg "Mat.scatter_weighted_rows_into: cols";
  let od = out.data and sd = src.data in
  Array.fill od 0 (Array.length od) 0.0;
  for e = 0 to ne - 1 do
    let si = send.(e) and ri = recv.(e) in
    if si < 0 || si >= src.rows || ri < 0 || ri >= out.rows then
      invalid_arg "Mat.scatter_weighted_rows_into: index";
    let w = weights.(e) in
    let sbase = si * n and obase = ri * n in
    for j = 0 to n - 1 do
      od.(obase + j) <- od.(obase + j) +. (w *. sd.(sbase + j))
    done
  done

let scale_rows_in_place m s =
  if Array.length s <> m.rows then
    invalid_arg "Mat.scale_rows_in_place: length mismatch";
  let d = m.data in
  let n = m.cols in
  for i = 0 to m.rows - 1 do
    let f = s.(i) in
    let base = i * n in
    for j = 0 to n - 1 do
      d.(base + j) <- f *. d.(base + j)
    done
  done

module Batch = struct
  type mat = t
  type nonrec t = { data : t; offsets : int array }

  let pack mats =
    match mats with
    | [] -> invalid_arg "Mat.Batch.pack: empty batch"
    | first :: _ ->
        let cols = first.cols in
        let count = List.length mats in
        let total =
          List.fold_left
            (fun acc (m : mat) ->
              if m.cols <> cols then invalid_arg "Mat.Batch.pack: ragged cols";
              acc + m.rows)
            0 mats
        in
        let data = zeros total cols in
        let offsets = Array.make (count + 1) 0 in
        let r = ref 0 and idx = ref 0 in
        List.iter
          (fun (m : mat) ->
            Array.blit m.data 0 data.data (!r * cols) (m.rows * cols);
            offsets.(!idx) <- !r;
            incr idx;
            r := !r + m.rows)
          mats;
        offsets.(!idx) <- !r;
        { data; offsets }

  let count b = Array.length b.offsets - 1
  let data b = b.data
  let offset b i = b.offsets.(i)
  let rows_of b i = b.offsets.(i + 1) - b.offsets.(i)
  let matmul b w = { b with data = matmul b.data w }

  let unpack b =
    List.init (count b) (fun i ->
        let r0 = b.offsets.(i) in
        let nr = rows_of b i in
        let cols = b.data.cols in
        of_array ~rows:nr ~cols (Array.sub b.data.data (r0 * cols) (nr * cols)))
end

module Q8 = struct
  type mat = t

  type nonrec t = {
    rows : int;
    cols : int;
    data : Bytes.t;  (** Row-major int8, two's complement. *)
    scale : float;
    zero_point : int;
  }

  let rows q = q.rows
  let cols q = q.cols
  let scale q = q.scale
  let zero_point q = q.zero_point

  (* Sign-extend the low 8 bits of a non-negative byte value. *)
  let sx v = (v lsl 55) asr 55
  let iround x = int_of_float (Float.round x)
  let clamp_i8 v = if v < -128 then -128 else if v > 127 then 127 else v

  (* Asymmetric per-matrix affine quantization: q = round(x/scale) + zp
     clamped to [-128, 127], x ≈ scale * (q - zp). The [min, max] range
     maps onto the full int8 span, so the round-trip error is bounded by
     [scale] (half a step from rounding plus at most half a step from
     the rounded zero-point). A constant matrix is stored exactly via a
     symmetric scale. *)
  let quantize (m : mat) =
    let n = Array.length m.data in
    let mn = ref infinity and mx = ref neg_infinity in
    let finite = ref true in
    for k = 0 to n - 1 do
      let x = m.data.(k) in
      (* NaN compares false both ways, so the min/max scan alone would
         let it through; track finiteness explicitly. *)
      if not (Float.is_finite x) then finite := false;
      if x < !mn then mn := x;
      if x > !mx then mx := x
    done;
    if not !finite then invalid_arg "Mat.Q8.quantize: non-finite entries";
    let mn = if n = 0 then 0.0 else !mn and mx = if n = 0 then 0.0 else !mx in
    let scale, zp =
      if mx -. mn <= 0.0 then
        if mx = 0.0 then (1.0, 0) else (Float.abs mx /. 127.0, 0)
      else
        let scale = (mx -. mn) /. 255.0 in
        (scale, -128 - iround (mn /. scale))
    in
    let data = Bytes.create n in
    for k = 0 to n - 1 do
      let q = clamp_i8 (iround (m.data.(k) /. scale) + zp) in
      Bytes.unsafe_set data k (Char.unsafe_chr (q land 0xff))
    done;
    { rows = m.rows; cols = m.cols; data; scale; zero_point = zp }

  let dequantize q =
    init q.rows q.cols (fun i j ->
        let v = sx (Char.code (Bytes.get q.data ((i * q.cols) + j))) in
        q.scale *. float_of_int (v - q.zero_point))

  (* [a (float) x b (int8)]: the activation matrix is quantized on the
     fly with a symmetric per-matrix scale (max |a| / 127, zero point
     0), the product accumulates in native ints (covers int32 with
     headroom: |term| <= 127*128, so ~2^47 terms fit in 63 bits), and
     the weight zero point is folded out afterwards with the row sums:
     out = sa*sb * (sum_k aq_ik*bq_kj - zp_b * sum_k aq_ik). *)
  let matmul_into ~out:(out : mat) (a : mat) bq =
    if a.cols <> bq.rows then invalid_arg "Mat.Q8.matmul: inner dims";
    if out.rows <> a.rows || out.cols <> bq.cols then
      invalid_arg "Mat.Q8.matmul: out shape";
    let m = a.rows and kk = a.cols and n = bq.cols in
    let ad = a.data and od = out.data and bd = bq.data in
    let amax = ref 0.0 in
    for k = 0 to Array.length ad - 1 do
      let x = Float.abs ad.(k) in
      if x > !amax then amax := x
    done;
    if not (Float.is_finite !amax) then
      invalid_arg "Mat.Q8.matmul: non-finite activations";
    if !amax = 0.0 || kk = 0 then Array.fill od 0 (m * n) 0.0
    else begin
      let sa = !amax /. 127.0 in
      let sab = sa *. bq.scale in
      let zb = bq.zero_point in
      let aq = Array.make kk 0 in
      let acc = Array.make n 0 in
      for i = 0 to m - 1 do
        let arow = i * kk in
        let rowsum = ref 0 in
        for k = 0 to kk - 1 do
          let q = clamp_i8 (iround (ad.(arow + k) /. sa)) in
          aq.(k) <- q;
          rowsum := !rowsum + q
        done;
        Array.fill acc 0 n 0;
        for k = 0 to kk - 1 do
          let v = aq.(k) in
          if v <> 0 then begin
            let brow = k * n in
            for j = 0 to n - 1 do
              acc.(j) <-
                acc.(j) + (v * sx (Char.code (Bytes.unsafe_get bd (brow + j))))
            done
          end
        done;
        let corr = zb * !rowsum in
        let obase = i * n in
        for j = 0 to n - 1 do
          od.(obase + j) <- sab *. float_of_int (acc.(j) - corr)
        done
      done
    end

  let matmul (a : mat) bq =
    let out = zeros a.rows bq.cols in
    matmul_into ~out a bq;
    out
end

let approx_equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%8.4f " m.data.((i * m.cols) + j)
    done;
    Format.fprintf ppf "@]@,"
  done;
  Format.fprintf ppf "@]"

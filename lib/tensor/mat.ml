type t = {
  rows : int;
  cols : int;
  data : float array;
}

let check_shape rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat: negative dimension"

let create rows cols x =
  check_shape rows cols;
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.0

let init rows cols f =
  check_shape rows cols;
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let of_arrays arrays =
  let rows = Array.length arrays in
  if rows = 0 then invalid_arg "Mat.of_arrays: zero rows";
  let cols = Array.length arrays.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged")
    arrays;
  init rows cols (fun i j -> arrays.(i).(j))

let of_array ~rows ~cols data =
  if Array.length data <> rows * cols then invalid_arg "Mat.of_array: length mismatch";
  { rows; cols; data = Array.copy data }

let row_vector a = of_array ~rows:1 ~cols:(Array.length a) a

let copy m = { m with data = Array.copy m.data }
let rows m = m.rows
let cols m = m.cols
let shape m = (m.rows, m.cols)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.get";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.set";
  m.data.((i * m.cols) + j) <- x

let random_uniform rng rows cols scale =
  init rows cols (fun _ _ -> Util.Rng.uniform rng (-.scale) scale)

let xavier rng fan_in fan_out =
  let scale = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  random_uniform rng fan_in fan_out scale

let same_shape a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat: shape mismatch %dx%d vs %dx%d" a.rows a.cols b.rows b.cols)

let map2 f a b =
  same_shape a b;
  let n = Array.length a.data in
  let ad = a.data and bd = b.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (f (Array.unsafe_get ad k) (Array.unsafe_get bd k))
  done;
  { a with data }

(* The elementwise workhorses are specialised loops rather than
   [map2 ( +. )]: with no polymorphic closure in the way the floats
   stay unboxed end to end. *)
let add a b =
  same_shape a b;
  let n = Array.length a.data in
  let ad = a.data and bd = b.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (Array.unsafe_get ad k +. Array.unsafe_get bd k)
  done;
  { a with data }

let sub a b =
  same_shape a b;
  let n = Array.length a.data in
  let ad = a.data and bd = b.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (Array.unsafe_get ad k -. Array.unsafe_get bd k)
  done;
  { a with data }

let mul a b =
  same_shape a b;
  let n = Array.length a.data in
  let ad = a.data and bd = b.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (Array.unsafe_get ad k *. Array.unsafe_get bd k)
  done;
  { a with data }

let scale s m =
  let n = Array.length m.data in
  let md = m.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (s *. Array.unsafe_get md k)
  done;
  { m with data }

let map f m =
  let n = Array.length m.data in
  let md = m.data in
  let data = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set data k (f (Array.unsafe_get md k))
  done;
  { m with data }

let add_in_place acc x =
  same_shape acc x;
  for k = 0 to Array.length acc.data - 1 do
    acc.data.(k) <- acc.data.(k) +. x.data.(k)
  done

let sub_in_place acc x =
  same_shape acc x;
  let ad = acc.data and xd = x.data in
  for k = 0 to Array.length ad - 1 do
    Array.unsafe_set ad k (Array.unsafe_get ad k -. Array.unsafe_get xd k)
  done

let scale_in_place s m =
  let md = m.data in
  for k = 0 to Array.length md - 1 do
    Array.unsafe_set md k (s *. Array.unsafe_get md k)
  done

let add_scaled_in_place acc s x =
  same_shape acc x;
  let ad = acc.data and xd = x.data in
  for k = 0 to Array.length ad - 1 do
    Array.unsafe_set ad k (Array.unsafe_get ad k +. (s *. Array.unsafe_get xd k))
  done

let add_scaled_sq_in_place acc s x =
  same_shape acc x;
  let ad = acc.data and xd = x.data in
  for k = 0 to Array.length ad - 1 do
    let g = Array.unsafe_get xd k in
    Array.unsafe_set ad k (Array.unsafe_get ad k +. (s *. (g *. g)))
  done

let adam_update_in_place value ~lr ~eps ~bc1 ~bc2 ~m ~v =
  same_shape value m;
  same_shape value v;
  let vd = value.data and md = m.data and sd = v.data in
  let c1 = 1.0 /. bc1 and c2 = 1.0 /. bc2 in
  for k = 0 to Array.length vd - 1 do
    let m_hat = c1 *. Array.unsafe_get md k in
    let v_hat = c2 *. Array.unsafe_get sd k in
    Array.unsafe_set vd k
      (Array.unsafe_get vd k -. (lr *. m_hat /. (sqrt v_hat +. eps)))
  done

let fill m x = Array.fill m.data 0 (Array.length m.data) x

let matmul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: %dx%d * %dx%d" a.rows a.cols b.rows b.cols);
  let out = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then begin
        let arow = i * b.cols and brow = k * b.cols in
        for j = 0 to b.cols - 1 do
          out.data.(arow + j) <- out.data.(arow + j) +. (aik *. b.data.(brow + j))
        done
      end
    done
  done;
  out

let matmul_transpose_a a b =
  (* (a^T b) : (a.cols x a.rows) * (b.rows x b.cols) *)
  if a.rows <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul_transpose_a: %dx%d^T * %dx%d" a.rows a.cols b.rows b.cols);
  let out = zeros a.cols b.cols in
  for k = 0 to a.rows - 1 do
    for i = 0 to a.cols - 1 do
      let aki = a.data.((k * a.cols) + i) in
      if aki <> 0.0 then begin
        let orow = i * b.cols and brow = k * b.cols in
        for j = 0 to b.cols - 1 do
          out.data.(orow + j) <- out.data.(orow + j) +. (aki *. b.data.(brow + j))
        done
      end
    done
  done;
  out

let matmul_transpose_b a b =
  if a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.matmul_transpose_b: %dx%d * %dx%d^T" a.rows a.cols b.rows b.cols);
  let out = zeros a.rows b.rows in
  for i = 0 to a.rows - 1 do
    for j = 0 to b.rows - 1 do
      let acc = ref 0.0 in
      let arow = i * a.cols and brow = j * b.cols in
      for k = 0 to a.cols - 1 do
        acc := !acc +. (a.data.(arow + k) *. b.data.(brow + k))
      done;
      out.data.((i * b.rows) + j) <- !acc
    done
  done;
  out

let transpose m = init m.cols m.rows (fun i j -> m.data.((j * m.cols) + i))

let sum m = Array.fold_left ( +. ) 0.0 m.data

let mean m =
  let n = Array.length m.data in
  if n = 0 then 0.0 else sum m /. float_of_int n

let frobenius_norm m = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 m.data)

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row";
  Array.sub m.data (i * m.cols) m.cols

let col_means m =
  let out = zeros 1 m.cols in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      out.data.(j) <- out.data.(j) +. m.data.((i * m.cols) + j)
    done
  done;
  let n = float_of_int (max m.rows 1) in
  for j = 0 to m.cols - 1 do
    out.data.(j) <- out.data.(j) /. n
  done;
  out

let row_sums m =
  let out = zeros m.rows 1 in
  for i = 0 to m.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. m.data.((i * m.cols) + j)
    done;
    out.data.(i) <- !acc
  done;
  out

let approx_equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%8.4f " m.data.((i * m.cols) + j)
    done;
    Format.fprintf ppf "@]@,"
  done;
  Format.fprintf ppf "@]"

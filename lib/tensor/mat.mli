(** Dense row-major float matrices.

    The numeric substrate for the neural-network stack: plain
    [float array] storage, explicit shapes, and the handful of BLAS-like
    kernels the HGT model needs (matmul, transpose, elementwise ops,
    Frobenius norm, row reductions). Vectors are [1 x n] or [n x 1]
    matrices. All binary operations check shapes and raise
    [Invalid_argument] on mismatch. *)

type t = private {
  rows : int;
  cols : int;
  data : float array;  (** Row-major, length [rows * cols]. *)
}

val create : int -> int -> float -> t
val zeros : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val of_arrays : float array array -> t
(** @raise Invalid_argument on ragged input or zero rows. *)

val of_array : rows:int -> cols:int -> float array -> t
(** Adopts a copy of the flat array. *)

val row_vector : float array -> t
val copy : t -> t
val rows : t -> int
val cols : t -> int
val shape : t -> int * int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val random_uniform : Util.Rng.t -> int -> int -> float -> t
(** Entries uniform in [\[-scale, scale\]]. *)

val xavier : Util.Rng.t -> int -> int -> t
(** Glorot-uniform initialisation for a [fan_in x fan_out] weight. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Hadamard (elementwise) product. *)

val scale : float -> t -> t
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add_in_place : t -> t -> unit
(** [add_in_place acc x] accumulates [x] into [acc]. *)

(** {2 In-place kernels}

    Allocation-free updates for the optimiser inner loop
    ({!Nn.Optim.step} runs one per parameter per training step); the
    out-of-place equivalents allocate several intermediates per call. *)

val sub_in_place : t -> t -> unit
(** [sub_in_place acc x]: [acc <- acc - x]. *)

val scale_in_place : float -> t -> unit
(** [scale_in_place s m]: [m <- s * m]. *)

val add_scaled_in_place : t -> float -> t -> unit
(** [add_scaled_in_place acc s x]: [acc <- acc + s * x] (axpy). *)

val add_scaled_sq_in_place : t -> float -> t -> unit
(** [add_scaled_sq_in_place acc s x]: [acc <- acc + s * (x ∘ x)] —
    the Adam second-moment accumulation. *)

val adam_update_in_place :
  t -> lr:float -> eps:float -> bc1:float -> bc2:float -> m:t -> v:t -> unit
(** Fused bias-corrected Adam parameter update:
    [value <- value - lr * (m/bc1) / (sqrt (v/bc2) + eps)],
    elementwise. [bc1]/[bc2] are the bias-correction denominators
    [1 - beta^t]. *)

val fill : t -> float -> unit

val matmul : t -> t -> t
(** [matmul a b] for [a : m x k], [b : k x n]. Runs the blocked kernel
    ({!matmul_into}); bit-identical to {!matmul_naive}. *)

val matmul_naive : t -> t -> t
(** Reference i-k-j GEMM, no zero-skip (IEEE-faithful: [0 * nan],
    signed zeros and infinities propagate). The qcheck oracle the
    blocked kernel is held bit-identical to. *)

val matmul_into : out:t -> t -> t -> unit
(** [matmul_into ~out a b] writes [a * b] into the preallocated [out]
    ([m x n]; previous contents discarded). Cache-blocked and
    register-tiled, but every [out.(i,j)] still accumulates its terms
    in ascending [k] one addition at a time, so results are
    bit-identical to {!matmul_naive} — signed zeros and infinities
    included, NaN at the same positions (NaN payload bits are
    unspecified). [out] must not alias [a] or [b]
    (@raise Invalid_argument). *)

val add_row_in_place : t -> t -> unit
(** [add_row_in_place acc r] broadcasts the [1 x cols] row [r] onto
    every row of [acc] — the in-place bias add of the inference path. *)

val relu_in_place : t -> unit

val gather_rows_into : out:t -> t -> int array -> unit
(** [gather_rows_into ~out src idx]: [out.(e, :) <- src.(idx.(e), :)].
    [out] must be [length idx x cols src]. *)

val scatter_sum_into : out:t -> t -> int array -> unit
(** [scatter_sum_into ~out src idx] zeroes [out] then accumulates
    [src.(e, :)] into [out.(idx.(e), :)] in ascending [e] — same
    summation order as the autodiff scatter. *)

val scale_rows_in_place : t -> float array -> unit
(** Row [i] scaled by [s.(i)]. *)

val scatter_weighted_rows_into :
  out:t -> t -> send:int array -> recv:int array -> weights:float array -> unit
(** [out.(recv.(e), :) += weights.(e) * src.(send.(e), :)] over
    ascending [e], after zeroing [out] — the fused
    gather/scale/scatter-sum of the message-passing aggregation,
    bit-identical to the three separate passes. *)

(** Packed batch of same-width matrices: N row-major operands stacked
    into one tall matrix so a campaign's N small GEMMs against a shared
    weight collapse into one blocked GEMM. Row segments stay contiguous,
    so per-instance ops address [data] with [offset]/[rows_of]. *)
module Batch : sig
  type mat := t
  type t

  val pack : mat list -> t
  (** @raise Invalid_argument on an empty list or mismatched widths. *)

  val count : t -> int
  val data : t -> mat
  val offset : t -> int -> int
  (** Starting row of instance [i] in {!data}. *)

  val rows_of : t -> int -> int
  val matmul : t -> mat -> t
  (** One big GEMM against a shared right-hand side. *)

  val unpack : t -> mat list
end

(** Int8 affine quantization: per-matrix scale and zero point, for the
    trained selector's weights. [q8 = round(x/scale) + zero_point]
    clamped to [-128, 127]; dequantization error is bounded by [scale].
    {!matmul} quantizes the float activations symmetrically on the fly
    and accumulates in integers. *)
module Q8 : sig
  type mat := t
  type t

  val quantize : mat -> t
  (** @raise Invalid_argument on non-finite entries. *)

  val dequantize : t -> mat
  val rows : t -> int
  val cols : t -> int
  val scale : t -> float
  val zero_point : t -> int

  val matmul : mat -> t -> mat
  (** [matmul a qb] for float activations [a : m x k] and quantized
      weights [qb : k x n]; integer accumulation, zero point folded out
      via row sums. *)

  val matmul_into : out:mat -> mat -> t -> unit
end

val matmul_transpose_a : t -> t -> t
(** [matmul_transpose_a a b = matmul (transpose a) b] without the copy. *)

val matmul_transpose_b : t -> t -> t
(** [matmul_transpose_b a b = matmul a (transpose b)] without the copy. *)

val transpose : t -> t
val sum : t -> float
val mean : t -> float
val frobenius_norm : t -> float
val row : t -> int -> float array
val col_means : t -> t
(** [1 x cols] matrix of per-column means (the mean readout). *)

val row_sums : t -> t
(** [rows x 1] matrix of per-row sums. *)

val approx_equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Dense row-major float matrices.

    The numeric substrate for the neural-network stack: plain
    [float array] storage, explicit shapes, and the handful of BLAS-like
    kernels the HGT model needs (matmul, transpose, elementwise ops,
    Frobenius norm, row reductions). Vectors are [1 x n] or [n x 1]
    matrices. All binary operations check shapes and raise
    [Invalid_argument] on mismatch. *)

type t = private {
  rows : int;
  cols : int;
  data : float array;  (** Row-major, length [rows * cols]. *)
}

val create : int -> int -> float -> t
val zeros : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val of_arrays : float array array -> t
(** @raise Invalid_argument on ragged input or zero rows. *)

val of_array : rows:int -> cols:int -> float array -> t
(** Adopts a copy of the flat array. *)

val row_vector : float array -> t
val copy : t -> t
val rows : t -> int
val cols : t -> int
val shape : t -> int * int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val random_uniform : Util.Rng.t -> int -> int -> float -> t
(** Entries uniform in [\[-scale, scale\]]. *)

val xavier : Util.Rng.t -> int -> int -> t
(** Glorot-uniform initialisation for a [fan_in x fan_out] weight. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Hadamard (elementwise) product. *)

val scale : float -> t -> t
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add_in_place : t -> t -> unit
(** [add_in_place acc x] accumulates [x] into [acc]. *)

(** {2 In-place kernels}

    Allocation-free updates for the optimiser inner loop
    ({!Nn.Optim.step} runs one per parameter per training step); the
    out-of-place equivalents allocate several intermediates per call. *)

val sub_in_place : t -> t -> unit
(** [sub_in_place acc x]: [acc <- acc - x]. *)

val scale_in_place : float -> t -> unit
(** [scale_in_place s m]: [m <- s * m]. *)

val add_scaled_in_place : t -> float -> t -> unit
(** [add_scaled_in_place acc s x]: [acc <- acc + s * x] (axpy). *)

val add_scaled_sq_in_place : t -> float -> t -> unit
(** [add_scaled_sq_in_place acc s x]: [acc <- acc + s * (x ∘ x)] —
    the Adam second-moment accumulation. *)

val adam_update_in_place :
  t -> lr:float -> eps:float -> bc1:float -> bc2:float -> m:t -> v:t -> unit
(** Fused bias-corrected Adam parameter update:
    [value <- value - lr * (m/bc1) / (sqrt (v/bc2) + eps)],
    elementwise. [bc1]/[bc2] are the bias-correction denominators
    [1 - beta^t]. *)

val fill : t -> float -> unit

val matmul : t -> t -> t
(** [matmul a b] for [a : m x k], [b : k x n]. *)

val matmul_transpose_a : t -> t -> t
(** [matmul_transpose_a a b = matmul (transpose a) b] without the copy. *)

val matmul_transpose_b : t -> t -> t
(** [matmul_transpose_b a b = matmul a (transpose b)] without the copy. *)

val transpose : t -> t
val sum : t -> float
val mean : t -> float
val frobenius_norm : t -> float
val row : t -> int -> float array
val col_means : t -> t
(** [1 x cols] matrix of per-column means (the mean readout). *)

val row_sums : t -> t
(** [rows x 1] matrix of per-row sums. *)

val approx_equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit

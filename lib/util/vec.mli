(** Growable arrays.

    The CDCL solver's hot structures (trail, watch lists, clause
    arena) need amortised O(1) push and cheap truncation; [Vec] wraps a
    plain array with a fill pointer. A dummy element supplied at creation
    fills unused slots so no [Obj.magic] is needed. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** Fresh empty vector. [dummy] populates unused capacity. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of [n] copies of [x] ([x] is also the dummy). *)

val of_array : dummy:'a -> 'a array -> 'a t
(** Copies the array contents. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Bounds-checked read of element [i < length]. *)

val set : 'a t -> int -> 'a -> unit

val unsafe_get : 'a t -> int -> 'a
(** Unchecked read. The caller must guarantee [0 <= i < length v];
    reading stale capacity beyond the fill pointer is undefined. Used
    by the BCP inner loop where the bound is hoisted out of the loop. *)

val unsafe_set : 'a t -> int -> 'a -> unit
(** Unchecked write; same contract as {!unsafe_get}. *)

val unsafe_data : 'a t -> 'a array
(** The backing array. Invalidated by any growth ([push]/[push2] past
    capacity); only the first [length v] slots are live. Lets the BCP
    loop hoist the field load while scanning a list it never appends
    to. *)

val push : 'a t -> 'a -> unit

val push2 : 'a t -> 'a -> 'a -> unit
(** [push2 v x y] appends two elements with a single capacity check —
    the common case for stride-2 watcher lists (tagged literal, cref). *)

val pop : 'a t -> 'a
(** Removes and returns the last element. @raise Invalid_argument if empty. *)

val last : 'a t -> 'a
(** @raise Invalid_argument if empty. *)

val clear : 'a t -> unit
(** Logical reset to length 0 (keeps capacity, overwrites with dummy). *)

val shrink : 'a t -> int -> unit
(** [shrink v n] truncates to the first [n] elements. Requires
    [n <= length v]. *)

val swap_remove : 'a t -> int -> unit
(** O(1) removal: overwrite index [i] with the last element and pop. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val sort : ('a -> 'a -> int) -> 'a t -> unit
(** Sorts the live prefix in place. *)

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keeps only elements satisfying the predicate, preserving order. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 8) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let make n x = { data = Array.make (max n 1) x; len = n; dummy = x }

let of_array ~dummy arr =
  let n = Array.length arr in
  let data = Array.make (max n 1) dummy in
  Array.blit arr 0 data 0 n;
  { data; len = n; dummy }

let length v = v.len
let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x
let unsafe_get v i = Array.unsafe_get v.data i
let unsafe_set v i x = Array.unsafe_set v.data i x
let unsafe_data v = v.data

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let push2 v x y =
  while v.len + 2 > Array.length v.data do grow v done;
  v.data.(v.len) <- x;
  v.data.(v.len + 1) <- y;
  v.len <- v.len + 2

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let shrink v n =
  if n > v.len || n < 0 then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n

let swap_remove v i =
  check v i;
  v.data.(i) <- v.data.(v.len - 1);
  v.len <- v.len - 1;
  v.data.(v.len) <- v.dummy

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let to_array v = Array.sub v.data 0 v.len
let to_list v = Array.to_list (to_array v)

let sort cmp v =
  let live = to_array v in
  Array.sort cmp live;
  Array.blit live 0 v.data 0 v.len

let filter_in_place p v =
  let keep = ref 0 in
  for i = 0 to v.len - 1 do
    if p v.data.(i) then begin
      v.data.(!keep) <- v.data.(i);
      incr keep
    end
  done;
  shrink v !keep

(** Generic single-output binary-classifier training.

    Polymorphic in the input representation ['g] so the NeuroSelect
    model (bipartite graphs) and the baselines (literal–clause graphs)
    share one loop: BCE loss, Adam, batch size 1, shuffled epochs.

    The loop is divergence-guarded: a non-finite loss or gradient norm
    skips the step (zeroing the gradients so Adam's moments stay
    clean) and backs the learning rate off by [lr_backoff]; finite
    gradients are clipped to [clip_norm]. Training therefore never
    aborts on a numeric blow-up — the damage is contained to the
    offending step and recorded in the returned {!history}. *)

type 'g spec = {
  params : Param.t list;
  forward : Ad.tape -> 'g -> Ad.v;  (** Must return a [1 x 1] logit. *)
}

type history = {
  epoch_losses : float array;
      (** Mean loss per epoch (over non-skipped steps). *)
  skipped_steps : int;  (** Steps dropped by the divergence guard. *)
  lr_backoffs : int;  (** Learning-rate halvings applied. *)
  final_lr : float;
}

val fit :
  ?epochs:int ->
  ?lr:float ->
  ?seed:int ->
  ?pos_weight:float ->
  ?clip_norm:float ->
  ?lr_backoff:float ->
  ?min_lr:float ->
  ?start_epoch:int ->
  ?on_epoch:(epoch:int -> loss:float -> unit) ->
  ?progress:(epoch:int -> loss:float -> unit) ->
  'g spec ->
  ('g * bool) array ->
  history
(** [pos_weight] scales the loss of positive examples (class-imbalance
    correction); pass [auto_pos_weight examples] to balance.

    [start_epoch] skips the first epochs while still replaying their
    shuffles, so resuming a run from a checkpoint visits examples in
    the same order as an uninterrupted run. [on_epoch] fires after
    each executed epoch (checkpointing hook). @raise Invalid_argument
    on an empty dataset. *)

val auto_pos_weight : ('g * bool) array -> float
(** [#negatives / #positives], clamped to [\[1, 10\]]; 1 when a class is
    empty. *)

val loss : 'g spec -> 'g -> bool -> float
val predict_prob : 'g spec -> 'g -> float
val predict : 'g spec -> 'g -> bool

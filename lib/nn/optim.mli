(** Gradient-descent optimisers.

    Both consume the gradients accumulated in {!Param.t} by
    {!Ad.backward} and zero them after the update, so one optimiser
    [step] corresponds to one (mini-)batch. *)

type t

val adam :
  ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> Param.t list -> t
(** The paper trains with Adam at lr 1e-4. *)

val sgd : ?momentum:float -> lr:float -> Param.t list -> t

val step : t -> unit
(** Apply one update from the accumulated gradients, then zero them. *)

val zero_grads : t -> unit
val params : t -> Param.t list
val grad_norm : t -> float
(** L2 norm of all accumulated gradients (diagnostics). *)

val lr : t -> float
val set_lr : t -> float -> unit
(** Adjust the learning rate in place (used by the divergence-guarded
    trainer's backoff). *)

val clip_grad_norm : t -> float -> float
(** Scale all gradients so their global L2 norm is at most the given
    bound; returns the pre-clip norm. Non-finite norms are left
    untouched (the caller's sentinel handles them). *)

module Mat = Tensor.Mat

type 'g spec = {
  params : Param.t list;
  forward : Ad.tape -> 'g -> Ad.v;
}

let h_forward = Obs.Metrics.histogram "nn.forward_seconds"
let h_backward = Obs.Metrics.histogram "nn.backward_seconds"
let h_step = Obs.Metrics.histogram "nn.step_seconds"
let m_diverged = Obs.Metrics.counter "nn.diverged_steps"

type history = {
  epoch_losses : float array;
  skipped_steps : int;
  lr_backoffs : int;
  final_lr : float;
}

let loss_node ?(pos_weight = 1.0) spec tape input label =
  let logit = spec.forward tape input in
  let bce = Ad.bce_with_logits tape logit (if label then 1.0 else 0.0) in
  if label && pos_weight <> 1.0 then Ad.scale tape pos_weight bce else bce

let auto_pos_weight examples =
  let pos = Array.fold_left (fun n (_, l) -> if l then n + 1 else n) 0 examples in
  let neg = Array.length examples - pos in
  if pos = 0 || neg = 0 then 1.0
  else Float.min 10.0 (Float.max 1.0 (float_of_int neg /. float_of_int pos))

let loss spec input label =
  let tape = Ad.tape () in
  Mat.get (Ad.value (loss_node spec tape input label)) 0 0

let predict_prob spec input =
  let tape = Ad.tape () in
  let z = Mat.get (Ad.value (spec.forward tape input)) 0 0 in
  1.0 /. (1.0 +. exp (-.z))

let predict spec input = predict_prob spec input > 0.5

(* Poison injection point: a NaN planted in a gradient is what an
   exploding intermediate looks like to the optimiser. *)
let maybe_poison_gradients params =
  if Runtime.Fault.fires Runtime.Fault.Poisoned_gradient then
    match params with
    | [] -> ()
    | (p : Param.t) :: _ -> Mat.set p.Param.grad 0 0 Float.nan

let fit ?(epochs = 40) ?(lr = 1e-3) ?(seed = 7) ?(pos_weight = 1.0)
    ?(clip_norm = 10.0) ?(lr_backoff = 0.5) ?(min_lr = 1e-6) ?(start_epoch = 0)
    ?on_epoch ?progress spec examples =
  if Array.length examples = 0 then invalid_arg "Train.fit: empty dataset";
  let optimiser = Optim.adam ~lr spec.params in
  let rng = Util.Rng.create seed in
  let order = Array.copy examples in
  let losses = Array.make epochs 0.0 in
  let skipped = ref 0 in
  let backoffs = ref 0 in
  (* Skip the diverged step entirely and make the next ones smaller:
     zero the poisoned gradients so they cannot leak into Adam's
     moments, then back the learning rate off. *)
  let diverge () =
    incr skipped;
    Obs.Metrics.incr m_diverged;
    Optim.zero_grads optimiser;
    let current = Optim.lr optimiser in
    let next = Float.max min_lr (current *. lr_backoff) in
    if next < current then begin
      incr backoffs;
      Optim.set_lr optimiser next
    end
  in
  for epoch = 0 to epochs - 1 do
    (* Shuffle every epoch, even skipped ones, so a resumed run visits
       examples in exactly the order the interrupted run would have. *)
    Util.Rng.shuffle rng order;
    if epoch >= start_epoch then begin
      let total = ref 0.0 in
      let counted = ref 0 in
      Array.iter
        (fun (input, label) ->
          let tape = Ad.tape () in
          let l =
            Obs.Metrics.time h_forward (fun () ->
                loss_node ~pos_weight spec tape input label)
          in
          let lv = Mat.get (Ad.value l) 0 0 in
          if not (Float.is_finite lv) then diverge ()
          else begin
            Obs.Metrics.time h_backward (fun () -> Ad.backward tape l);
            maybe_poison_gradients spec.params;
            let gn = Optim.clip_grad_norm optimiser clip_norm in
            if not (Float.is_finite gn) then diverge ()
            else begin
              total := !total +. lv;
              incr counted;
              Obs.Metrics.time h_step (fun () -> Optim.step optimiser)
            end
          end)
        order;
      let mean = !total /. float_of_int (max 1 !counted) in
      losses.(epoch) <- mean;
      (match progress with Some f -> f ~epoch ~loss:mean | None -> ());
      match on_epoch with Some f -> f ~epoch ~loss:mean | None -> ()
    end
  done;
  {
    epoch_losses = losses;
    skipped_steps = !skipped;
    lr_backoffs = !backoffs;
    final_lr = Optim.lr optimiser;
  }

module Mat = Tensor.Mat

module Linear = struct
  type t = {
    weight : Param.t;
    bias : Param.t option;
    in_dim : int;
    out_dim : int;
    forward_seconds : Obs.Metrics.histogram;
        (* per-layer wall time, keyed by the layer name so the metric
           survives model re-creation *)
  }

  let create ?(bias = true) rng ~in_dim ~out_dim ~name =
    let weight = Param.create (name ^ ".weight") (Mat.xavier rng in_dim out_dim) in
    let bias =
      if bias then Some (Param.create (name ^ ".bias") (Mat.zeros 1 out_dim)) else None
    in
    let forward_seconds =
      Obs.Metrics.histogram ("nn.forward_seconds." ^ name)
    in
    { weight; bias; in_dim; out_dim; forward_seconds }

  let forward tape t x =
    Obs.Metrics.time t.forward_seconds (fun () ->
        let w = Ad.of_param tape t.weight in
        let y = Ad.matmul tape x w in
        match t.bias with
        | None -> y
        | Some b -> Ad.add_row_bias tape y (Ad.of_param tape b))

  let params t =
    t.weight :: (match t.bias with None -> [] | Some b -> [ b ])

  let in_dim t = t.in_dim
  let out_dim t = t.out_dim
  let weight_value t = t.weight.Param.value
  let bias_value t = Option.map (fun (b : Param.t) -> b.Param.value) t.bias

  (* Tape-free forward: same affine map on plain matrices. No autodiff
     nodes and no per-layer histogram sample — the fast path accounts
     its time at the selector level instead of per layer. *)
  let infer_into t ~out x =
    Mat.matmul_into ~out x t.weight.Param.value;
    match t.bias with
    | None -> ()
    | Some b -> Mat.add_row_in_place out b.Param.value

  let infer t x =
    let out = Mat.zeros (Mat.rows x) t.out_dim in
    infer_into t ~out x;
    out
end

module Mlp = struct
  type t = { layers : Linear.t list }

  let create rng ~dims ~name =
    let rec build i = function
      | a :: (b :: _ as rest) ->
        let layer =
          Linear.create rng ~in_dim:a ~out_dim:b ~name:(Printf.sprintf "%s.%d" name i)
        in
        layer :: build (i + 1) rest
      | [ _ ] | [] -> []
    in
    match dims with
    | _ :: _ :: _ -> { layers = build 0 dims }
    | _ -> invalid_arg "Mlp.create: need at least two dims"

  let forward tape t x =
    let rec go x = function
      | [] -> x
      | [ last ] -> Linear.forward tape last x
      | layer :: rest -> go (Ad.relu tape (Linear.forward tape layer x)) rest
    in
    go x t.layers

  let params t = List.concat_map Linear.params t.layers
  let linears t = t.layers

  let infer t x =
    let rec go x = function
      | [] -> x
      | [ last ] -> Linear.infer last x
      | layer :: rest ->
          let y = Linear.infer layer x in
          Mat.relu_in_place y;
          go y rest
    in
    go x t.layers
end

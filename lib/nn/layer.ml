module Mat = Tensor.Mat

module Linear = struct
  type t = {
    weight : Param.t;
    bias : Param.t option;
    in_dim : int;
    out_dim : int;
    forward_seconds : Obs.Metrics.histogram;
        (* per-layer wall time, keyed by the layer name so the metric
           survives model re-creation *)
  }

  let create ?(bias = true) rng ~in_dim ~out_dim ~name =
    let weight = Param.create (name ^ ".weight") (Mat.xavier rng in_dim out_dim) in
    let bias =
      if bias then Some (Param.create (name ^ ".bias") (Mat.zeros 1 out_dim)) else None
    in
    let forward_seconds =
      Obs.Metrics.histogram ("nn.forward_seconds." ^ name)
    in
    { weight; bias; in_dim; out_dim; forward_seconds }

  let forward tape t x =
    Obs.Metrics.time t.forward_seconds (fun () ->
        let w = Ad.of_param tape t.weight in
        let y = Ad.matmul tape x w in
        match t.bias with
        | None -> y
        | Some b -> Ad.add_row_bias tape y (Ad.of_param tape b))

  let params t =
    t.weight :: (match t.bias with None -> [] | Some b -> [ b ])

  let in_dim t = t.in_dim
  let out_dim t = t.out_dim
end

module Mlp = struct
  type t = { layers : Linear.t list }

  let create rng ~dims ~name =
    let rec build i = function
      | a :: (b :: _ as rest) ->
        let layer =
          Linear.create rng ~in_dim:a ~out_dim:b ~name:(Printf.sprintf "%s.%d" name i)
        in
        layer :: build (i + 1) rest
      | [ _ ] | [] -> []
    in
    match dims with
    | _ :: _ :: _ -> { layers = build 0 dims }
    | _ -> invalid_arg "Mlp.create: need at least two dims"

  let forward tape t x =
    let rec go x = function
      | [] -> x
      | [ last ] -> Linear.forward tape last x
      | layer :: rest -> go (Ad.relu tape (Linear.forward tape layer x)) rest
    in
    go x t.layers

  let params t = List.concat_map Linear.params t.layers
end

(** Neural-network layers built on {!Ad}. *)

(** Affine map [x W + b]. *)
module Linear : sig
  type t

  val create :
    ?bias:bool -> Util.Rng.t -> in_dim:int -> out_dim:int -> name:string -> t
  (** Xavier-initialised weights; zero bias (present unless
      [~bias:false]). *)

  val forward : Ad.tape -> t -> Ad.v -> Ad.v
  (** Input [n x in_dim], output [n x out_dim]. *)

  val params : t -> Param.t list
  val in_dim : t -> int
  val out_dim : t -> int

  val weight_value : t -> Tensor.Mat.t
  (** Current weight value (live reference, not a copy). *)

  val bias_value : t -> Tensor.Mat.t option

  val infer : t -> Tensor.Mat.t -> Tensor.Mat.t
  (** Tape-free forward on plain matrices; no autodiff allocation. *)

  val infer_into : t -> out:Tensor.Mat.t -> Tensor.Mat.t -> unit
  (** In-place variant writing into a preallocated [n x out_dim]
      buffer (the hot inference path). *)
end

(** Multi-layer perceptron with ReLU between hidden layers and a linear
    final layer. *)
module Mlp : sig
  type t

  val create : Util.Rng.t -> dims:int list -> name:string -> t
  (** [dims] lists layer widths, e.g. [[32; 16; 1]] for
      32 -> 16 -> 1. Needs at least two entries. *)

  val forward : Ad.tape -> t -> Ad.v -> Ad.v
  val params : t -> Param.t list

  val linears : t -> Linear.t list
  (** Constituent layers in application order. *)

  val infer : t -> Tensor.Mat.t -> Tensor.Mat.t
  (** Tape-free forward (ReLU between hidden layers, linear last). *)
end

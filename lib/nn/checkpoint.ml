module Mat = Tensor.Mat
module Error = Runtime.Error

let magic = "NSCKPT"
let version = 2

type source = Primary | Backup

let backup_path path = path ^ ".bak"

(* --- payload (v1 text format) --- *)

let to_string params =
  let buf = Buffer.create 4096 in
  let emit (p : Param.t) =
    let v = p.Param.value in
    Buffer.add_string buf
      (Printf.sprintf "%s %d %d\n" p.Param.name (Mat.rows v) (Mat.cols v));
    for i = 0 to Mat.rows v - 1 do
      for j = 0 to Mat.cols v - 1 do
        Buffer.add_string buf (Printf.sprintf "%.17g " (Mat.get v i j))
      done;
      Buffer.add_char buf '\n'
    done
  in
  List.iter emit params;
  Buffer.contents buf

(* Parse the payload into a name -> matrix table without touching any
   parameter, so a defect found halfway leaves the model untouched.
   Declared shapes are validated against the remaining token count
   before any allocation, so a corrupted header cannot trigger a huge
   or negative [Array.make]. *)
let parse_payload ~source text =
  let corrupt detail = Error (Error.Corrupt { path = source; detail }) in
  let table = Hashtbl.create 16 in
  let tokens =
    String.split_on_char '\n' text
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun s -> s <> "")
    |> Array.of_list
  in
  let ntok = Array.length tokens in
  let rec consume i =
    if i >= ntok then Ok table
    else if i + 3 > ntok then corrupt "truncated parameter header"
    else
      let name = tokens.(i) in
      match (int_of_string_opt tokens.(i + 1), int_of_string_opt tokens.(i + 2)) with
      | Some rows, Some cols when rows >= 0 && cols >= 0 ->
        let n = rows * cols in
        if n < 0 || (rows > 0 && n / rows <> cols) then
          corrupt ("overflowing shape for parameter " ^ name)
        else if i + 3 + n > ntok then
          corrupt ("truncated data for parameter " ^ name)
        else begin
          let data = Array.make n 0.0 in
          let bad = ref None in
          for k = 0 to n - 1 do
            match float_of_string_opt tokens.(i + 3 + k) with
            | Some f -> data.(k) <- f
            | None -> if !bad = None then bad := Some tokens.(i + 3 + k)
          done;
          match !bad with
          | Some tok ->
            corrupt (Printf.sprintf "bad float %S for parameter %s" tok name)
          | None ->
            if Hashtbl.mem table name then
              corrupt ("duplicate parameter block " ^ name)
            else begin
              Hashtbl.add table name (Mat.of_array ~rows ~cols data);
              consume (i + 3 + n)
            end
        end
      | _ -> corrupt ("bad shape header for parameter " ^ name)
  in
  consume 0

(* Validate every parameter against the table before committing any
   value. *)
let apply ~source table params =
  let rec validate = function
    | [] -> Ok ()
    | (p : Param.t) :: rest -> (
      match Hashtbl.find_opt table p.Param.name with
      | None ->
        Error
          (Error.Corrupt
             { path = source; detail = "missing parameter " ^ p.Param.name })
      | Some m ->
        if Mat.shape m <> Mat.shape p.Param.value then
          Error
            (Error.Corrupt
               { path = source; detail = "shape mismatch for " ^ p.Param.name })
        else validate rest)
  in
  match validate params with
  | Error _ as e -> e
  | Ok () ->
    List.iter
      (fun (p : Param.t) -> p.Param.value <- Hashtbl.find table p.Param.name)
      params;
    Ok ()

(* --- envelope --- *)

let encode params =
  let payload = to_string params in
  Printf.sprintf "%s %d %s %d\n%s" magic version
    (Runtime.Crc32.to_hex (Runtime.Crc32.string payload))
    (String.length payload) payload

(* Returns the verified payload. Headerless text is accepted as a
   legacy v1 checkpoint (no CRC protection). *)
let decode ~source text =
  let corrupt detail = Error (Error.Corrupt { path = source; detail }) in
  if not (String.length text >= String.length magic
          && String.sub text 0 (String.length magic) = magic)
  then Ok text
  else
    match String.index_opt text '\n' with
    | None -> corrupt "envelope missing payload"
    | Some nl -> (
      let header = String.sub text 0 nl in
      let payload = String.sub text (nl + 1) (String.length text - nl - 1) in
      match String.split_on_char ' ' header with
      | [ _magic; v; crc_hex; len ] -> (
        match (int_of_string_opt v, int_of_string_opt len) with
        | Some v, _ when v <> version ->
          corrupt (Printf.sprintf "unsupported checkpoint version %d" v)
        | Some _, Some len ->
          if String.length payload <> len then
            corrupt
              (Printf.sprintf "payload length %d does not match header %d"
                 (String.length payload) len)
          else if
            Runtime.Crc32.to_hex (Runtime.Crc32.string payload) <> crc_hex
          then corrupt "CRC mismatch (bit flip or torn write)"
          else Ok payload
        | _ -> corrupt "malformed envelope header")
      | _ -> corrupt "malformed envelope header")

let of_string_result ?(source = "<string>") text params =
  match decode ~source text with
  | Error _ as e -> e
  | Ok payload -> (
    match parse_payload ~source payload with
    | Error _ as e -> e
    | Ok table -> apply ~source table params)

let of_string text params =
  match of_string_result text params with
  | Ok () -> ()
  | Error e -> Error.raise_ e

(* --- file IO --- *)

(* Cheap integrity probe used before promoting the current file to
   [.bak]: never let a corrupt file clobber the last-good copy. *)
let intact path =
  match Runtime.Atomic_file.read path with
  | Error _ -> false
  | Ok text -> (
    match decode ~source:path text with
    | Error _ -> false
    | Ok payload -> Result.is_ok (parse_payload ~source:path payload))

let save_result path params =
  ignore (Runtime.Atomic_file.sweep_stale (Filename.dirname path));
  let data = encode params in
  (* Promote the current file to [.bak] before any byte of the new
     write lands, and only when it validates — so neither a torn write
     below nor a corrupt current file can clobber the last-good copy. *)
  if Sys.file_exists path && intact path then
    (try Sys.rename path (backup_path path) with Sys_error _ -> ());
  if Runtime.Fault.fires Runtime.Fault.Torn_checkpoint_write then
    (* Simulate power loss mid-write on a non-atomic writer: the
       destination ends up with half the bytes and nobody is told.
       Recovery must come from the CRC check + [.bak] fallback. *)
    Runtime.Atomic_file.write_raw path
      (String.sub data 0 (String.length data / 2))
  else
    let data =
      if Runtime.Fault.fires Runtime.Fault.Checkpoint_bit_flip then begin
        let b = Bytes.of_string data in
        let i = String.length data - 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
        Bytes.to_string b
      end
      else data
    in
    Runtime.Atomic_file.write path data

let save path params =
  match save_result path params with Ok () -> () | Error e -> Error.raise_ e

let load_result path params =
  let try_copy p =
    match Runtime.Atomic_file.read p with
    | Error _ as e -> e
    | Ok text -> of_string_result ~source:p text params
  in
  match try_copy path with
  | Ok () -> Ok Primary
  | Error primary_error -> (
    let bak = backup_path path in
    if not (Sys.file_exists bak) then Error primary_error
    else
      match try_copy bak with
      | Ok () -> Ok Backup
      | Error _ -> Error primary_error)

let load path params =
  match load_result path params with
  | Ok _ -> ()
  | Error e -> Error.raise_ e

module Mat = Tensor.Mat

type algo =
  | Adam of { beta1 : float; beta2 : float; eps : float; mutable t : int }
  | Sgd of { momentum : float; velocity : (Param.t * Mat.t ref) list }

type t = {
  mutable lr : float;
  params : Param.t list;
  algo : algo;
}

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr params =
  { lr; params; algo = Adam { beta1; beta2; eps; t = 0 } }

let sgd ?(momentum = 0.0) ~lr params =
  let velocity =
    List.map
      (fun (p : Param.t) ->
        (p, ref (Mat.zeros (Mat.rows p.Param.value) (Mat.cols p.Param.value))))
      params
  in
  { lr; params; algo = Sgd { momentum; velocity } }

let zero_grads t = List.iter Param.zero_grad t.params
let params t = t.params
let lr t = t.lr
let set_lr t lr = t.lr <- lr

let grad_norm t =
  let acc =
    List.fold_left
      (fun acc (p : Param.t) ->
        let n = Mat.frobenius_norm p.Param.grad in
        acc +. (n *. n))
      0.0 t.params
  in
  sqrt acc

let m_grad_clips = Obs.Metrics.counter "nn.grad_clip_events"

let clip_grad_norm t max_norm =
  let n = grad_norm t in
  if Float.is_finite n && n > max_norm && max_norm > 0.0 then begin
    Obs.Metrics.incr m_grad_clips;
    let s = max_norm /. n in
    List.iter
      (fun (p : Param.t) -> p.Param.grad <- Mat.scale s p.Param.grad)
      t.params
  end;
  n

let step t =
  (match t.algo with
  | Adam a ->
    a.t <- a.t + 1;
    let bc1 = 1.0 -. (a.beta1 ** float_of_int a.t) in
    let bc2 = 1.0 -. (a.beta2 ** float_of_int a.t) in
    let update (p : Param.t) =
      p.Param.adam_m <-
        Mat.add (Mat.scale a.beta1 p.Param.adam_m) (Mat.scale (1.0 -. a.beta1) p.Param.grad);
      p.Param.adam_v <-
        Mat.add (Mat.scale a.beta2 p.Param.adam_v)
          (Mat.scale (1.0 -. a.beta2) (Mat.mul p.Param.grad p.Param.grad));
      let m_hat = Mat.scale (1.0 /. bc1) p.Param.adam_m in
      let v_hat = Mat.scale (1.0 /. bc2) p.Param.adam_v in
      let delta = Mat.map2 (fun m v -> t.lr *. m /. (sqrt v +. a.eps)) m_hat v_hat in
      p.Param.value <- Mat.sub p.Param.value delta
    in
    List.iter update t.params
  | Sgd s ->
    let update ((p : Param.t), vel) =
      vel := Mat.add (Mat.scale s.momentum !vel) (Mat.scale t.lr p.Param.grad);
      p.Param.value <- Mat.sub p.Param.value !vel
    in
    List.iter update s.velocity);
  zero_grads t

module Mat = Tensor.Mat

type algo =
  | Adam of { beta1 : float; beta2 : float; eps : float; mutable t : int }
  | Sgd of { momentum : float; velocity : (Param.t * Mat.t ref) list }

type t = {
  mutable lr : float;
  params : Param.t list;
  algo : algo;
}

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr params =
  { lr; params; algo = Adam { beta1; beta2; eps; t = 0 } }

let sgd ?(momentum = 0.0) ~lr params =
  let velocity =
    List.map
      (fun (p : Param.t) ->
        (p, ref (Mat.zeros (Mat.rows p.Param.value) (Mat.cols p.Param.value))))
      params
  in
  { lr; params; algo = Sgd { momentum; velocity } }

let zero_grads t = List.iter Param.zero_grad t.params
let params t = t.params
let lr t = t.lr
let set_lr t lr = t.lr <- lr

let grad_norm t =
  let acc =
    List.fold_left
      (fun acc (p : Param.t) ->
        let n = Mat.frobenius_norm p.Param.grad in
        acc +. (n *. n))
      0.0 t.params
  in
  sqrt acc

let m_grad_clips = Obs.Metrics.counter "nn.grad_clip_events"

let clip_grad_norm t max_norm =
  let n = grad_norm t in
  if Float.is_finite n && n > max_norm && max_norm > 0.0 then begin
    Obs.Metrics.incr m_grad_clips;
    let s = max_norm /. n in
    List.iter
      (fun (p : Param.t) -> p.Param.grad <- Mat.scale s p.Param.grad)
      t.params
  end;
  n

(* Moment buffers and parameters are updated in place with the fused
   Mat kernels: no per-parameter intermediate matrices. *)
let step t =
  (match t.algo with
  | Adam a ->
    a.t <- a.t + 1;
    let bc1 = 1.0 -. (a.beta1 ** float_of_int a.t) in
    let bc2 = 1.0 -. (a.beta2 ** float_of_int a.t) in
    let update (p : Param.t) =
      Mat.scale_in_place a.beta1 p.Param.adam_m;
      Mat.add_scaled_in_place p.Param.adam_m (1.0 -. a.beta1) p.Param.grad;
      Mat.scale_in_place a.beta2 p.Param.adam_v;
      Mat.add_scaled_sq_in_place p.Param.adam_v (1.0 -. a.beta2) p.Param.grad;
      Mat.adam_update_in_place p.Param.value ~lr:t.lr ~eps:a.eps ~bc1 ~bc2
        ~m:p.Param.adam_m ~v:p.Param.adam_v
    in
    List.iter update t.params
  | Sgd s ->
    let update ((p : Param.t), vel) =
      Mat.scale_in_place s.momentum !vel;
      Mat.add_scaled_in_place !vel t.lr p.Param.grad;
      Mat.sub_in_place p.Param.value !vel
    in
    List.iter update s.velocity);
  zero_grads t

(** Parameter (de)serialisation, hardened against corruption.

    The payload is a plain text format — one [name rows cols] header
    line per parameter followed by its row-major values — so
    checkpoints diff cleanly and survive compiler upgrades (no
    Marshal). On disk the payload is wrapped in a versioned envelope

    {v NSCKPT <version> <crc32-hex> <payload-bytes> v}

    whose CRC-32 is verified before any parameter is mutated, so bit
    flips and truncation surface as typed errors rather than silently
    corrupted weights. Writes are atomic (temp file + rename) and
    promote the previous intact checkpoint to a [.bak] sibling;
    [load_result] falls back to the [.bak] automatically when the
    primary is damaged. Headerless legacy (v1) files still load. *)

type source =
  | Primary  (** The requested path itself. *)
  | Backup  (** The [.bak] last-good copy; the primary was damaged. *)

val backup_path : string -> string
(** [path ^ ".bak"]. *)

val save : string -> Param.t list -> unit
(** Atomic versioned write; promotes an intact existing file to
    [.bak]. @raise Runtime.Error.Runtime_error on IO failure. *)

val save_result : string -> Param.t list -> (unit, Runtime.Error.t) result

val load : string -> Param.t list -> unit
(** Restore values into an existing parameter list, matched by name,
    falling back to the [.bak] copy if the primary is corrupt.
    @raise Runtime.Error.Runtime_error when neither copy is usable
    (IO failure, corruption, missing parameter, shape mismatch,
    duplicate parameter block). *)

val load_result : string -> Param.t list -> (source, Runtime.Error.t) result
(** Like [load] but reports which copy was used instead of raising.
    Parameters are only mutated after the chosen copy fully
    validates. *)

val to_string : Param.t list -> string
(** Bare payload (no envelope). *)

val encode : Param.t list -> string
(** Payload wrapped in the versioned CRC envelope, exactly as written
    to disk. *)

val of_string : string -> Param.t list -> unit
(** Parse a bare payload or an enveloped checkpoint.
    @raise Runtime.Error.Runtime_error on any defect. *)

val of_string_result :
  ?source:string -> string -> Param.t list -> (unit, Runtime.Error.t) result

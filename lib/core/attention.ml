module Ad = Nn.Ad
module Linear = Nn.Layer.Linear
module Mat = Tensor.Mat

type t = {
  f_q : Linear.t;
  f_k : Linear.t;
  f_v : Linear.t;
}

let create rng ~dim ~name =
  let lin suffix =
    Linear.create ~bias:false rng ~in_dim:dim ~out_dim:dim ~name:(name ^ "." ^ suffix)
  in
  { f_q = lin "f_q"; f_k = lin "f_k"; f_v = lin "f_v" }

let forward tape t z =
  let n = Mat.rows (Ad.value z) in
  let inv_n = 1.0 /. float_of_int (max n 1) in
  let q = Linear.forward tape t.f_q z in
  let k = Linear.forward tape t.f_k z in
  let v = Linear.forward tape t.f_v z in
  let q_tilde = Ad.frobenius_normalize tape q in
  let k_tilde = Ad.frobenius_normalize tape k in
  (* K~^T V : d x d, then Q~ (K~^T V) : N x d. *)
  let ktv = Ad.matmul_ta tape k_tilde v in
  let qktv = Ad.matmul tape q_tilde ktv in
  (* K~^T 1 : d x 1, then Q~ (K~^T 1) : N x 1. *)
  let ones = Ad.const tape (Mat.create n 1 1.0) in
  let kt1 = Ad.matmul_ta tape k_tilde ones in
  let qkt1 = Ad.matmul tape q_tilde kt1 in
  let d = Ad.add_scalar tape 1.0 (Ad.scale tape inv_n qkt1) in
  let numerator = Ad.add tape v (Ad.scale tape inv_n qktv) in
  Ad.div_rows tape numerator d

let params t = List.concat_map Linear.params [ t.f_q; t.f_k; t.f_v ]
let projections t = (t.f_q, t.f_k, t.f_v)

module Ad = Nn.Ad
module Linear = Nn.Layer.Linear
module Bigraph = Satgraph.Bigraph

type t = {
  msg_var_to_clause : Linear.t;  (* message MLP on variable features *)
  msg_clause_to_var : Linear.t;  (* message MLP on clause features *)
  self_var : Linear.t;
  self_clause : Linear.t;
  out_var : Linear.t;
  out_clause : Linear.t;
  out_dim : int;
}

let create rng ~var_in ~clause_in ~out_dim ~name =
  let lin in_dim suffix =
    Linear.create rng ~in_dim ~out_dim ~name:(name ^ "." ^ suffix)
  in
  {
    msg_var_to_clause = lin var_in "msg_v2c";
    msg_clause_to_var = lin clause_in "msg_c2v";
    self_var = lin var_in "self_var";
    self_clause = lin clause_in "self_clause";
    out_var = Linear.create rng ~in_dim:out_dim ~out_dim ~name:(name ^ ".out_var");
    out_clause = Linear.create rng ~in_dim:out_dim ~out_dim ~name:(name ^ ".out_clause");
    out_dim;
  }

(* Eq. 6: m_v = (1/|N(v)|) sum_{u in N(v)} w_uv * MLP(h_u), realised as
   gather (sender rows) -> per-edge weight scaling -> scatter-sum to
   receivers -> per-receiver 1/deg scaling. *)
let aggregate tape graph ~sender_msgs ~send_idx ~recv_idx ~recv_rows ~recv_inv_deg =
  let gathered = Ad.gather_rows tape sender_msgs send_idx in
  let weighted = Ad.scale_rows tape gathered graph.Bigraph.edge_weight in
  let summed = Ad.scatter_sum tape weighted recv_idx ~rows:recv_rows in
  Ad.scale_rows tape summed recv_inv_deg

(* Eq. 7: h' = relu (W_out (m + W_self h)). *)
let update tape ~out_layer ~self_layer ~messages ~feats =
  let self = Linear.forward tape self_layer feats in
  let combined = Ad.add tape messages self in
  Ad.relu tape (Linear.forward tape out_layer combined)

let forward tape t graph ~var_feats ~clause_feats =
  let var_msgs = Linear.forward tape t.msg_var_to_clause var_feats in
  let clause_msgs = Linear.forward tape t.msg_clause_to_var clause_feats in
  let to_clauses =
    aggregate tape graph ~sender_msgs:var_msgs ~send_idx:graph.Bigraph.edge_var
      ~recv_idx:graph.Bigraph.edge_clause ~recv_rows:graph.Bigraph.num_clauses
      ~recv_inv_deg:(Bigraph.clause_inv_degree graph)
  in
  let to_vars =
    aggregate tape graph ~sender_msgs:clause_msgs ~send_idx:graph.Bigraph.edge_clause
      ~recv_idx:graph.Bigraph.edge_var ~recv_rows:graph.Bigraph.num_vars
      ~recv_inv_deg:(Bigraph.var_inv_degree graph)
  in
  let new_vars =
    update tape ~out_layer:t.out_var ~self_layer:t.self_var ~messages:to_vars
      ~feats:var_feats
  in
  let new_clauses =
    update tape ~out_layer:t.out_clause ~self_layer:t.self_clause ~messages:to_clauses
      ~feats:clause_feats
  in
  (new_vars, new_clauses)

let params t =
  List.concat_map Linear.params
    [
      t.msg_var_to_clause;
      t.msg_clause_to_var;
      t.self_var;
      t.self_clause;
      t.out_var;
      t.out_clause;
    ]

let out_dim t = t.out_dim

(* Constituent layers, for the tape-free inference engine. *)
let msg_var_to_clause t = t.msg_var_to_clause
let msg_clause_to_var t = t.msg_clause_to_var
let self_var t = t.self_var
let self_clause t = t.self_clause
let out_var t = t.out_var
let out_clause t = t.out_clause

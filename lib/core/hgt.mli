(** Hybrid Graph Transformer layer (Eqs. 3–5).

    An HGT layer stacks several {!Mpnn} message-passing layers (the
    paper uses three) followed by a {!Attention} linear-attention pass
    applied to variable-node features only; clause features flow
    through from the MPNN (Eq. 5). The attention pass can be disabled
    for the "NeuroSelect w/o attention" ablation of Table 2. *)

type t

val create :
  Util.Rng.t ->
  var_in:int ->
  clause_in:int ->
  hidden:int ->
  mpnn_layers:int ->
  use_attention:bool ->
  name:string ->
  t
(** The first MPNN maps [var_in]/[clause_in] to [hidden]; the rest are
    [hidden -> hidden]. [mpnn_layers >= 1]. *)

val forward :
  Nn.Ad.tape ->
  t ->
  Satgraph.Bigraph.t ->
  var_feats:Nn.Ad.v ->
  clause_feats:Nn.Ad.v ->
  Nn.Ad.v * Nn.Ad.v

val params : t -> Nn.Param.t list
val uses_attention : t -> bool

val mpnns : t -> Mpnn.t list
val attention : t -> Attention.t option

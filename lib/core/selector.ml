let m_selections = Obs.Metrics.counter "selector.selections"
let m_fallbacks = Obs.Metrics.counter "selector.fallbacks"
let m_breaker_rejections = Obs.Metrics.counter "selector.breaker_open_rejections"
let m_chose_frequency = Obs.Metrics.counter "selector.chose_frequency"
let h_inference = Obs.Metrics.histogram "selector.inference_seconds"

type degradation =
  | Model_failure of string
  | Non_finite_probability of float
  | Breaker_open

let pp_degradation ppf = function
  | Model_failure msg -> Format.fprintf ppf "model failure: %s" msg
  | Non_finite_probability p ->
    Format.fprintf ppf "non-finite probability %h" p
  | Breaker_open -> Format.fprintf ppf "circuit breaker open"

let degradation_to_string d = Format.asprintf "%a" pp_degradation d

type selection = {
  policy : Cdcl.Policy.t;
  probability : float;
  inference_seconds : float;
  degraded : degradation option;
}

(* --- fleet-wide circuit breaker around the model path --- *)

type breaker_config = {
  breaker : Runtime.Breaker.config;
  slow_call_seconds : float option;
}

let default_breaker_config =
  {
    breaker = Runtime.Breaker.default_config;
    (* The model here is a small CPU net; a multi-second inference is
       pathological and counts against the breaker like a failure. *)
    slow_call_seconds = Some 5.0;
  }

let breaker_config = ref default_breaker_config

let make_breaker () =
  Runtime.Breaker.create ~config:!breaker_config.breaker
    ~now:Runtime.Clock.now ()

let breaker = ref (make_breaker ())

let configure_breaker config =
  breaker_config := config;
  breaker := make_breaker ()

let breaker_state () = Runtime.Breaker.state !breaker

let breaker_trip_count () = Runtime.Breaker.trip_count !breaker

let reset_breaker () = Runtime.Breaker.reset !breaker

let select_policy ?(alpha = Cdcl.Policy.default_alpha) model formula =
  Obs.Metrics.incr m_selections;
  if Runtime.Fault.fires Runtime.Fault.Breaker_trip then
    Runtime.Breaker.force_open !breaker;
  if not (Runtime.Breaker.allow !breaker) then begin
    Obs.Metrics.incr m_fallbacks;
    Obs.Metrics.incr m_breaker_rejections;
    (* Fail fast, fleet-wide: while the breaker is open no selection
       pays for (or further stresses) the failing model path — every
       instance runs the paper's baseline policy until the cooldown
       admits half-open trial calls again. *)
    {
      policy = Cdcl.Policy.Default;
      probability = Float.nan;
      inference_seconds = 0.0;
      degraded = Some Breaker_open;
    }
  end
  else begin
    let t0 = Runtime.Clock.now () in
    let outcome =
      (* Any failure of the learned component — a model that did not
         load, an overflow in the forward pass, an injected fault —
         degrades to the default deletion policy rather than aborting
         the sweep; the paper's baseline Kissat behaviour is always
         available. *)
      match
        Obs.Trace.with_span "selector.inference" (fun () ->
            if Runtime.Fault.fires Runtime.Fault.Inference_failure then
              Runtime.Error.raise_
                (Runtime.Error.Injected_fault { point = "inference" });
            Model.predict_formula model formula)
      with
      | p when Float.is_finite p -> Ok p
      | p -> Error (Non_finite_probability p)
      | exception e -> Error (Model_failure (Printexc.to_string e))
    in
    let inference_seconds = Runtime.Clock.elapsed_since t0 in
    Obs.Metrics.observe h_inference inference_seconds;
    let slow =
      match !breaker_config.slow_call_seconds with
      | Some s -> inference_seconds > s
      | None -> false
    in
    (match outcome with
    | Ok _ when not slow -> Runtime.Breaker.record_success !breaker
    | Ok _ | Error _ -> Runtime.Breaker.record_failure !breaker);
    match outcome with
    | Ok probability ->
      let policy =
        if probability > 0.5 then begin
          Obs.Metrics.incr m_chose_frequency;
          Cdcl.Policy.Frequency { alpha }
        end
        else Cdcl.Policy.Default
      in
      { policy; probability; inference_seconds; degraded = None }
    | Error d ->
      Obs.Metrics.incr m_fallbacks;
      {
        policy = Cdcl.Policy.Default;
        probability =
          (match d with
          | Non_finite_probability p -> p
          | Model_failure _ | Breaker_open -> Float.nan);
        inference_seconds;
        degraded = Some d;
      }
  end

let solve_adaptive ?(config = Cdcl.Config.default) ?alpha model formula =
  let selection = select_policy ?alpha model formula in
  let config = Cdcl.Config.with_policy selection.policy config in
  let result, stats = Cdcl.Solver.solve_formula ~config formula in
  (selection, result, stats)

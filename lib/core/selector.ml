let m_selections = Obs.Metrics.counter "selector.selections"
let m_fallbacks = Obs.Metrics.counter "selector.fallbacks"
let m_breaker_rejections = Obs.Metrics.counter "selector.breaker_open_rejections"
let m_chose_frequency = Obs.Metrics.counter "selector.chose_frequency"
let h_inference = Obs.Metrics.histogram "selector.inference_seconds"
let m_cache_hits = Obs.Metrics.counter "selector.cache_hits"
let m_cache_misses = Obs.Metrics.counter "selector.cache_misses"
let m_cache_evictions = Obs.Metrics.counter "selector.cache_evictions"
let m_q8_agreements = Obs.Metrics.counter "selector.q8_agreements"
let m_q8_disagreements = Obs.Metrics.counter "selector.q8_disagreements"

type degradation =
  | Model_failure of string
  | Non_finite_probability of float
  | Breaker_open

let pp_degradation ppf = function
  | Model_failure msg -> Format.fprintf ppf "model failure: %s" msg
  | Non_finite_probability p ->
    Format.fprintf ppf "non-finite probability %h" p
  | Breaker_open -> Format.fprintf ppf "circuit breaker open"

let degradation_to_string d = Format.asprintf "%a" pp_degradation d

type selection = {
  policy : Cdcl.Policy.t;
  probability : float;
  inference_seconds : float;
  degraded : degradation option;
  cached : bool;
}

(* --- bounded LRU decision cache, keyed by canonical fingerprint --- *)

(* One process-wide cache (the serve select loop and the evaluate
   campaign driver are single-threaded). Entries store the model
   probability, so any [alpha] can be applied on a hit. The cache is
   stamped with the (model uid, checkpoint generation) it was filled
   from: a different model — or the same model after a checkpoint
   reload, which bumps the generation — empties it before use, so a
   hot-swap can never serve stale decisions. Quantized and float
   probabilities differ, so the engine kind is part of the key. *)
module Cache = struct
  type node = {
    key : string;
    prob : float;
    mutable prev : node option;
    mutable next : node option;
  }

  type t = {
    mutable capacity : int;
    tbl : (string, node) Hashtbl.t;
    mutable head : node option;  (* most recently used *)
    mutable tail : node option;
    mutable stamp : (int * int) option;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create capacity =
    {
      capacity;
      tbl = Hashtbl.create 64;
      head = None;
      tail = None;
      stamp = None;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front t n =
    n.next <- t.head;
    (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
    t.head <- Some n

  let clear_entries t =
    Hashtbl.reset t.tbl;
    t.head <- None;
    t.tail <- None

  let size t = Hashtbl.length t.tbl

  (* Make the cache valid for [model]: drop everything filled from a
     different model or an older checkpoint generation. *)
  let ensure_stamp t model =
    let stamp = (Model.uid model, Model.generation model) in
    if t.stamp <> Some stamp then begin
      let dropped = size t in
      if dropped > 0 then begin
        t.evictions <- t.evictions + dropped;
        Obs.Metrics.add m_cache_evictions dropped
      end;
      clear_entries t;
      t.stamp <- Some stamp
    end

  let find t key =
    match Hashtbl.find_opt t.tbl key with
    | None ->
        t.misses <- t.misses + 1;
        Obs.Metrics.incr m_cache_misses;
        None
    | Some n ->
        unlink t n;
        push_front t n;
        t.hits <- t.hits + 1;
        Obs.Metrics.incr m_cache_hits;
        Some n.prob

  let add t key prob =
    if t.capacity > 0 then begin
      (match Hashtbl.find_opt t.tbl key with
      | Some old ->
          unlink t old;
          Hashtbl.remove t.tbl key
      | None -> ());
      let n = { key; prob; prev = None; next = None } in
      Hashtbl.replace t.tbl key n;
      push_front t n;
      while size t > t.capacity do
        match t.tail with
        | None -> assert false
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.tbl lru.key;
            t.evictions <- t.evictions + 1;
            Obs.Metrics.incr m_cache_evictions
      done
    end
end

let default_cache_capacity = 512
let cache = Cache.create default_cache_capacity

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let cache_stats () =
  {
    hits = cache.Cache.hits;
    misses = cache.Cache.misses;
    evictions = cache.Cache.evictions;
    size = Cache.size cache;
    capacity = cache.Cache.capacity;
  }

let set_cache_capacity n =
  if n <= 0 then invalid_arg "Selector.set_cache_capacity";
  cache.Cache.capacity <- n;
  while Cache.size cache > n do
    match cache.Cache.tail with
    | None -> assert false
    | Some lru ->
        Cache.unlink cache lru;
        Hashtbl.remove cache.Cache.tbl lru.Cache.key;
        cache.Cache.evictions <- cache.Cache.evictions + 1;
        Obs.Metrics.incr m_cache_evictions
  done

let clear_cache () =
  Cache.clear_entries cache;
  cache.Cache.stamp <- None

let cache_key ~quantized formula =
  let fp = Cnf.Fingerprint.compute_hex formula in
  if quantized then fp ^ ":q8" else fp

(* --- fleet-wide circuit breaker around the model path --- *)

type breaker_config = {
  breaker : Runtime.Breaker.config;
  slow_call_seconds : float option;
}

let default_breaker_config =
  {
    breaker = Runtime.Breaker.default_config;
    (* The model here is a small CPU net; a multi-second inference is
       pathological and counts against the breaker like a failure. *)
    slow_call_seconds = Some 5.0;
  }

let breaker_config = ref default_breaker_config

let make_breaker () =
  Runtime.Breaker.create ~config:!breaker_config.breaker
    ~now:Runtime.Clock.now ()

let breaker = ref (make_breaker ())

let configure_breaker config =
  breaker_config := config;
  breaker := make_breaker ()

let breaker_state () = Runtime.Breaker.state !breaker

let breaker_trip_count () = Runtime.Breaker.trip_count !breaker

let reset_breaker () = Runtime.Breaker.reset !breaker

let policy_of_probability ~alpha probability =
  if probability > 0.5 then begin
    Obs.Metrics.incr m_chose_frequency;
    Cdcl.Policy.Frequency { alpha }
  end
  else Cdcl.Policy.Default

let breaker_open_selection () =
  Obs.Metrics.incr m_fallbacks;
  Obs.Metrics.incr m_breaker_rejections;
  (* Fail fast, fleet-wide: while the breaker is open no selection
     pays for (or further stresses) the failing model path — every
     instance runs the paper's baseline policy until the cooldown
     admits half-open trial calls again. *)
  {
    policy = Cdcl.Policy.Default;
    probability = Float.nan;
    inference_seconds = 0.0;
    degraded = Some Breaker_open;
    cached = false;
  }

let degraded_selection ~inference_seconds d =
  Obs.Metrics.incr m_fallbacks;
  {
    policy = Cdcl.Policy.Default;
    probability =
      (match d with
      | Non_finite_probability p -> p
      | Model_failure _ | Breaker_open -> Float.nan);
    inference_seconds;
    degraded = Some d;
    cached = false;
  }

type cache_probe = No_cache | Hit of float * float | Miss of string

let select_policy ?(alpha = Cdcl.Policy.default_alpha) ?(use_cache = false)
    ?(quantized = false) model formula =
  Obs.Metrics.incr m_selections;
  let probe =
    if not use_cache then No_cache
    else begin
      Cache.ensure_stamp cache model;
      let t0 = Runtime.Clock.now () in
      let key = cache_key ~quantized formula in
      match Cache.find cache key with
      | Some probability -> Hit (probability, Runtime.Clock.elapsed_since t0)
      | None -> Miss key
    end
  in
  match probe with
  | Hit (probability, seconds) ->
      (* Decision served from the fingerprint cache: no model call, so
         the breaker is neither consulted nor charged. *)
      {
        policy = policy_of_probability ~alpha probability;
        probability;
        inference_seconds = seconds;
        degraded = None;
        cached = true;
      }
  | No_cache | Miss _ -> (
      if Runtime.Fault.fires Runtime.Fault.Breaker_trip then
        Runtime.Breaker.force_open !breaker;
      if not (Runtime.Breaker.allow !breaker) then breaker_open_selection ()
      else begin
        let t0 = Runtime.Clock.now () in
        let outcome =
          (* Any failure of the learned component — a model that did
             not load, an overflow in the forward pass, an injected
             fault — degrades to the default deletion policy rather
             than aborting the sweep; the paper's baseline Kissat
             behaviour is always available. *)
          match
            Obs.Trace.with_span "selector.inference" (fun () ->
                if Runtime.Fault.fires Runtime.Fault.Inference_failure then
                  Runtime.Error.raise_
                    (Runtime.Error.Injected_fault { point = "inference" });
                let graph = Satgraph.Bigraph.of_formula formula in
                if quantized then Model.predict_q8 model graph
                else Model.predict model graph)
          with
          | p when Float.is_finite p -> Ok p
          | p -> Error (Non_finite_probability p)
          | exception e -> Error (Model_failure (Printexc.to_string e))
        in
        let inference_seconds = Runtime.Clock.elapsed_since t0 in
        Obs.Metrics.observe h_inference inference_seconds;
        let slow =
          match !breaker_config.slow_call_seconds with
          | Some s -> inference_seconds > s
          | None -> false
        in
        (match outcome with
        | Ok _ when not slow -> Runtime.Breaker.record_success !breaker
        | Ok _ | Error _ -> Runtime.Breaker.record_failure !breaker);
        match outcome with
        | Ok probability ->
            (match probe with
            | Miss key -> Cache.add cache key probability
            | No_cache | Hit _ -> ());
            {
              policy = policy_of_probability ~alpha probability;
              probability;
              inference_seconds;
              degraded = None;
              cached = false;
            }
        | Error d -> degraded_selection ~inference_seconds d
      end)

(* Batched selection: cache hits are resolved first, then all misses
   share ONE packed forward ([Model.forward_batch]) and one breaker
   transaction — a campaign touches the breaker once per batch, not
   once per instance. Results come back in input order. *)
let select_policy_batch ?(alpha = Cdcl.Policy.default_alpha)
    ?(use_cache = false) ?(quantized = false) model formulas =
  let n = List.length formulas in
  if n = 0 then []
  else begin
    Obs.Metrics.add m_selections n;
    if use_cache then Cache.ensure_stamp cache model;
    let formulas = Array.of_list formulas in
    let probes =
      Array.map
        (fun f ->
          if not use_cache then No_cache
          else
            let key = cache_key ~quantized f in
            match Cache.find cache key with
            | Some p -> Hit (p, 0.0)
            | None -> Miss key)
        formulas
    in
    let miss_idx = ref [] in
    Array.iteri
      (fun i p ->
        match p with
        | Miss _ | No_cache -> miss_idx := i :: !miss_idx
        | Hit _ -> ())
      probes;
    let miss_idx = Array.of_list (List.rev !miss_idx) in
    let results = Array.make n None in
    (if Array.length miss_idx > 0 then begin
       if Runtime.Fault.fires Runtime.Fault.Breaker_trip then
         Runtime.Breaker.force_open !breaker;
       if not (Runtime.Breaker.allow !breaker) then
         Array.iter
           (fun i -> results.(i) <- Some (breaker_open_selection ()))
           miss_idx
       else begin
         let nm = Array.length miss_idx in
         let t0 = Runtime.Clock.now () in
         let outcome =
           match
             Obs.Trace.with_span "selector.inference_batch" (fun () ->
                 if Runtime.Fault.fires Runtime.Fault.Inference_failure then
                   Runtime.Error.raise_
                     (Runtime.Error.Injected_fault { point = "inference" });
                 let graphs =
                   Array.to_list
                     (Array.map
                        (fun i -> Satgraph.Bigraph.of_formula formulas.(i))
                        miss_idx)
                 in
                 if quantized then Model.forward_batch_q8 model graphs
                 else Model.forward_batch model graphs)
           with
           | probs -> Ok probs
           | exception e -> Error (Model_failure (Printexc.to_string e))
         in
         let elapsed = Runtime.Clock.elapsed_since t0 in
         let per_instance = elapsed /. float_of_int nm in
         for _ = 1 to nm do
           Obs.Metrics.observe h_inference per_instance
         done;
         let slow =
           match !breaker_config.slow_call_seconds with
           | Some s -> per_instance > s
           | None -> false
         in
         (match outcome with
         | Ok _ when not slow -> Runtime.Breaker.record_success !breaker
         | Ok _ | Error _ -> Runtime.Breaker.record_failure !breaker);
         match outcome with
         | Ok probs ->
             Array.iteri
               (fun k i ->
                 let probability = probs.(k) in
                 if Float.is_finite probability then begin
                   (match probes.(i) with
                   | Miss key -> Cache.add cache key probability
                   | No_cache | Hit _ -> ());
                   results.(i) <-
                     Some
                       {
                         policy = policy_of_probability ~alpha probability;
                         probability;
                         inference_seconds = per_instance;
                         degraded = None;
                         cached = false;
                       }
                 end
                 else
                   results.(i) <-
                     Some
                       (degraded_selection ~inference_seconds:per_instance
                          (Non_finite_probability probability)))
               miss_idx
         | Error d ->
             Array.iter
               (fun i ->
                 results.(i) <-
                   Some (degraded_selection ~inference_seconds:per_instance d))
               miss_idx
       end
     end);
    List.init n (fun i ->
        match probes.(i) with
        | Hit (probability, seconds) ->
            {
              policy = policy_of_probability ~alpha probability;
              probability;
              inference_seconds = seconds;
              degraded = None;
              cached = true;
            }
        | No_cache | Miss _ -> (
            match results.(i) with Some s -> s | None -> assert false))
  end

(* Float-vs-int8 decision agreement over an instance set; feeds the
   quantization accuracy contract (DESIGN §13) and the
   selector.q8_{agreements,disagreements} counters. *)
let q8_agreement model formulas =
  match formulas with
  | [] -> 1.0
  | _ ->
      let graphs = List.map Satgraph.Bigraph.of_formula formulas in
      let pf = Model.forward_batch model graphs in
      let pq = Model.forward_batch_q8 model graphs in
      let agree = ref 0 in
      Array.iteri
        (fun i p ->
          if p > 0.5 = (pq.(i) > 0.5) then begin
            incr agree;
            Obs.Metrics.incr m_q8_agreements
          end
          else Obs.Metrics.incr m_q8_disagreements)
        pf;
      float_of_int !agree /. float_of_int (Array.length pf)

let solve_adaptive ?(config = Cdcl.Config.default) ?alpha ?use_cache ?quantized
    model formula =
  let selection = select_policy ?alpha ?use_cache ?quantized model formula in
  let config = Cdcl.Config.with_policy selection.policy config in
  let result, stats = Cdcl.Solver.solve_formula ~config formula in
  (selection, result, stats)

type degradation =
  | Model_failure of string
  | Non_finite_probability of float

let pp_degradation ppf = function
  | Model_failure msg -> Format.fprintf ppf "model failure: %s" msg
  | Non_finite_probability p ->
    Format.fprintf ppf "non-finite probability %h" p

let degradation_to_string d = Format.asprintf "%a" pp_degradation d

type selection = {
  policy : Cdcl.Policy.t;
  probability : float;
  inference_seconds : float;
  degraded : degradation option;
}

let select_policy ?(alpha = Cdcl.Policy.default_alpha) model formula =
  let t0 = Runtime.Clock.now () in
  let outcome =
    (* Any failure of the learned component — a model that did not
       load, an overflow in the forward pass, an injected fault —
       degrades to the default deletion policy rather than aborting
       the sweep; the paper's baseline Kissat behaviour is always
       available. *)
    match
      if Runtime.Fault.fires Runtime.Fault.Inference_failure then
        Runtime.Error.raise_ (Runtime.Error.Injected_fault { point = "inference" });
      Model.predict_formula model formula
    with
    | p when Float.is_finite p -> Ok p
    | p -> Error (Non_finite_probability p)
    | exception e -> Error (Model_failure (Printexc.to_string e))
  in
  let inference_seconds = Runtime.Clock.elapsed_since t0 in
  match outcome with
  | Ok probability ->
    let policy =
      if probability > 0.5 then Cdcl.Policy.Frequency { alpha }
      else Cdcl.Policy.Default
    in
    { policy; probability; inference_seconds; degraded = None }
  | Error d ->
    {
      policy = Cdcl.Policy.Default;
      probability =
        (match d with Non_finite_probability p -> p | Model_failure _ -> Float.nan);
      inference_seconds;
      degraded = Some d;
    }

let solve_adaptive ?(config = Cdcl.Config.default) ?alpha model formula =
  let selection = select_policy ?alpha model formula in
  let config = Cdcl.Config.with_policy selection.policy config in
  let result, stats = Cdcl.Solver.solve_formula ~config formula in
  (selection, result, stats)

(** Adaptive policy selection — NeuroSelect-Kissat (Sec. 5.4).

    One model inference on the CPU before solving picks the deletion
    policy; the measured inference wall-clock (monotonized
    [gettimeofday], matching the paper's wall-clock accounting — not
    CPU time) is part of the adaptive solver's reported runtime.

    Inference is fallible in production: the checkpoint may be
    corrupt, the forward pass may overflow. [select_policy] never lets
    that abort a sweep — it degrades to the default deletion policy
    and records why in [degraded].

    A fleet-wide circuit breaker guards the model path: repeated
    failures (or pathologically slow inferences, see
    {!breaker_config}) trip it open, after which every selection
    short-circuits to the default policy without touching the model —
    failing fast instead of once per call. After the cooldown the
    breaker admits half-open trial inferences; enough successes
    restore the model path for the whole fleet. *)

type degradation =
  | Model_failure of string
      (** The model raised (bad checkpoint, forward-pass failure). *)
  | Non_finite_probability of float
      (** The model returned NaN/Inf. *)
  | Breaker_open
      (** The circuit breaker is open; the model was not consulted. *)

val pp_degradation : Format.formatter -> degradation -> unit
val degradation_to_string : degradation -> string

type selection = {
  policy : Cdcl.Policy.t;
  probability : float;
      (** Model output; > 0.5 selects frequency. NaN when degraded. *)
  inference_seconds : float;  (** Wall-clock, includes failed attempts. *)
  degraded : degradation option;
      (** [Some _] when the model was unusable and the default policy
          was substituted. *)
  cached : bool;
      (** Served from the fingerprint-keyed decision cache; no
          inference ran and the breaker was not consulted. *)
}

val select_policy :
  ?alpha:float ->
  ?use_cache:bool ->
  ?quantized:bool ->
  Model.t ->
  Cnf.Formula.t ->
  selection
(** Never raises on model failure; see [degraded].

    [use_cache] (default [false]) consults the process-wide LRU
    decision cache keyed by {!Cnf.Fingerprint.compute_hex}: a hit
    replays the stored probability without touching the model or the
    breaker. The cache is stamped with the model's
    ({!Model.uid}, {!Model.generation}) pair, so loading a checkpoint
    into the model invalidates every cached decision.

    [quantized] (default [false]) runs the int8 engine
    ({!Model.predict_q8}) instead of the float32 one; cached entries
    are keyed separately per numeric mode. *)

val select_policy_batch :
  ?alpha:float ->
  ?use_cache:bool ->
  ?quantized:bool ->
  Model.t ->
  Cnf.Formula.t list ->
  selection list
(** Batched selection: cache misses share one packed
    {!Model.forward_batch} (one breaker transaction, one trace span);
    [inference_seconds] of each miss is the batch wall-clock divided by
    the number of misses. Results are in input order. *)

(** {2 Decision cache} *)

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val cache_stats : unit -> cache_stats
(** Counters are process-lifetime totals (mirrored in
    [Obs.Metrics] as [selector.cache_*]); [size] is current. *)

val set_cache_capacity : int -> unit
(** Shrinking evicts from the LRU tail. @raise Invalid_argument if
    non-positive. *)

val clear_cache : unit -> unit
(** Drop all entries (counted as evictions). *)

val q8_agreement : Model.t -> Cnf.Formula.t list -> float
(** Fraction of formulas on which the int8 and float32 engines make
    the same policy decision (both sides of 0.5). Bumps the
    [selector.q8_agreements]/[selector.q8_disagreements] counters;
    [1.0] on the empty list. *)

(** {2 Circuit breaker} *)

type breaker_config = {
  breaker : Runtime.Breaker.config;
  slow_call_seconds : float option;
      (** Inferences slower than this count as breaker failures even
          when they return a usable probability; [None] disables the
          slow-call criterion. *)
}

val default_breaker_config : breaker_config
(** {!Runtime.Breaker.default_config} plus a 5 s slow-call bound. *)

val configure_breaker : breaker_config -> unit
(** Replace the configuration and reset the breaker. *)

val breaker_state : unit -> Runtime.Breaker.state
val breaker_trip_count : unit -> int

val reset_breaker : unit -> unit
(** Close the breaker and clear its counters (tests, operator reset). *)

val solve_adaptive :
  ?config:Cdcl.Config.t ->
  ?alpha:float ->
  ?use_cache:bool ->
  ?quantized:bool ->
  Model.t ->
  Cnf.Formula.t ->
  selection * Cdcl.Solver.result * Cdcl.Solver_stats.t
(** Select, then solve under the chosen policy (overriding the policy
    in [config] but keeping its budgets and other settings). *)

(** Adaptive policy selection — NeuroSelect-Kissat (Sec. 5.4).

    One model inference on the CPU before solving picks the deletion
    policy; the measured inference wall-clock (monotonized
    [gettimeofday], matching the paper's wall-clock accounting — not
    CPU time) is part of the adaptive solver's reported runtime.

    Inference is fallible in production: the checkpoint may be
    corrupt, the forward pass may overflow. [select_policy] never lets
    that abort a sweep — it degrades to the default deletion policy
    and records why in [degraded]. *)

type degradation =
  | Model_failure of string
      (** The model raised (bad checkpoint, forward-pass failure). *)
  | Non_finite_probability of float
      (** The model returned NaN/Inf. *)

val pp_degradation : Format.formatter -> degradation -> unit
val degradation_to_string : degradation -> string

type selection = {
  policy : Cdcl.Policy.t;
  probability : float;
      (** Model output; > 0.5 selects frequency. NaN when degraded. *)
  inference_seconds : float;  (** Wall-clock, includes failed attempts. *)
  degraded : degradation option;
      (** [Some _] when the model was unusable and the default policy
          was substituted. *)
}

val select_policy : ?alpha:float -> Model.t -> Cnf.Formula.t -> selection
(** Never raises on model failure; see [degraded]. *)

val solve_adaptive :
  ?config:Cdcl.Config.t ->
  ?alpha:float ->
  Model.t ->
  Cnf.Formula.t ->
  selection * Cdcl.Solver.result * Cdcl.Solver_stats.t
(** Select, then solve under the chosen policy (overriding the policy
    in [config] but keeping its budgets and other settings). *)

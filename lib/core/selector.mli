(** Adaptive policy selection — NeuroSelect-Kissat (Sec. 5.4).

    One model inference on the CPU before solving picks the deletion
    policy; the measured inference wall-clock (monotonized
    [gettimeofday], matching the paper's wall-clock accounting — not
    CPU time) is part of the adaptive solver's reported runtime.

    Inference is fallible in production: the checkpoint may be
    corrupt, the forward pass may overflow. [select_policy] never lets
    that abort a sweep — it degrades to the default deletion policy
    and records why in [degraded].

    A fleet-wide circuit breaker guards the model path: repeated
    failures (or pathologically slow inferences, see
    {!breaker_config}) trip it open, after which every selection
    short-circuits to the default policy without touching the model —
    failing fast instead of once per call. After the cooldown the
    breaker admits half-open trial inferences; enough successes
    restore the model path for the whole fleet. *)

type degradation =
  | Model_failure of string
      (** The model raised (bad checkpoint, forward-pass failure). *)
  | Non_finite_probability of float
      (** The model returned NaN/Inf. *)
  | Breaker_open
      (** The circuit breaker is open; the model was not consulted. *)

val pp_degradation : Format.formatter -> degradation -> unit
val degradation_to_string : degradation -> string

type selection = {
  policy : Cdcl.Policy.t;
  probability : float;
      (** Model output; > 0.5 selects frequency. NaN when degraded. *)
  inference_seconds : float;  (** Wall-clock, includes failed attempts. *)
  degraded : degradation option;
      (** [Some _] when the model was unusable and the default policy
          was substituted. *)
}

val select_policy : ?alpha:float -> Model.t -> Cnf.Formula.t -> selection
(** Never raises on model failure; see [degraded]. *)

(** {2 Circuit breaker} *)

type breaker_config = {
  breaker : Runtime.Breaker.config;
  slow_call_seconds : float option;
      (** Inferences slower than this count as breaker failures even
          when they return a usable probability; [None] disables the
          slow-call criterion. *)
}

val default_breaker_config : breaker_config
(** {!Runtime.Breaker.default_config} plus a 5 s slow-call bound. *)

val configure_breaker : breaker_config -> unit
(** Replace the configuration and reset the breaker. *)

val breaker_state : unit -> Runtime.Breaker.state
val breaker_trip_count : unit -> int

val reset_breaker : unit -> unit
(** Close the breaker and clear its counters (tests, operator reset). *)

val solve_adaptive :
  ?config:Cdcl.Config.t ->
  ?alpha:float ->
  Model.t ->
  Cnf.Formula.t ->
  selection * Cdcl.Solver.result * Cdcl.Solver_stats.t
(** Select, then solve under the chosen policy (overriding the policy
    in [config] but keeping its budgets and other settings). *)

(** Bipartite message-passing layer (Eqs. 6–7).

    One layer updates variable and clause features simultaneously:
    messages flow clause→variable and variable→clause along the signed
    edges of the {!Satgraph.Bigraph.t}. Aggregation is the
    degree-normalised weighted mean of Eq. 6 with a single linear layer
    as the message MLP; the update of Eq. 7 is
    [h' = relu (W_out (m + W_self h))]. *)

type t

val create :
  Util.Rng.t ->
  var_in:int ->
  clause_in:int ->
  out_dim:int ->
  name:string ->
  t

val forward :
  Nn.Ad.tape ->
  t ->
  Satgraph.Bigraph.t ->
  var_feats:Nn.Ad.v ->
  clause_feats:Nn.Ad.v ->
  Nn.Ad.v * Nn.Ad.v
(** Returns updated [(var_feats, clause_feats)], both [_ x out_dim]. *)

val params : t -> Nn.Param.t list
val out_dim : t -> int

(** {2 Layer accessors} — the tape-free {!Infer} engine mirrors the
    forward pass on raw matrices and needs the constituent layers. *)

val msg_var_to_clause : t -> Nn.Layer.Linear.t
val msg_clause_to_var : t -> Nn.Layer.Linear.t
val self_var : t -> Nn.Layer.Linear.t
val self_clause : t -> Nn.Layer.Linear.t
val out_var : t -> Nn.Layer.Linear.t
val out_clause : t -> Nn.Layer.Linear.t

module Ad = Nn.Ad
module Mat = Tensor.Mat
module Bigraph = Satgraph.Bigraph

type config = {
  hidden_dim : int;
  hgt_layers : int;
  mpnn_per_hgt : int;
  use_attention : bool;
  normalize_readout : bool;
  head_hidden : int;
  seed : int;
}

let paper_config =
  {
    hidden_dim = 32;
    hgt_layers = 2;
    mpnn_per_hgt = 3;
    use_attention = true;
    normalize_readout = true;
    head_hidden = 16;
    seed = 1;
  }

let small_config =
  {
    hidden_dim = 8;
    hgt_layers = 1;
    mpnn_per_hgt = 2;
    use_attention = true;
    normalize_readout = true;
    head_hidden = 8;
    seed = 1;
  }

type t = {
  cfg : config;
  hgts : Hgt.t list;
  head : Nn.Layer.Mlp.t;
  uid : int;  (* process-unique, for cache keys *)
  mutable generation : int;
      (* bumped whenever a checkpoint restore may have replaced the
         weights; engines and external caches key on it *)
  mutable engine : (int * Infer.t) option;
  mutable qengine : (int * Infer.t) option;
}

let uid_counter = ref 0

let create cfg =
  if cfg.hgt_layers < 1 then invalid_arg "Model.create: hgt_layers >= 1";
  let rng = Util.Rng.create cfg.seed in
  let rec build i var_in clause_in =
    if i >= cfg.hgt_layers then []
    else begin
      let layer =
        Hgt.create rng ~var_in ~clause_in ~hidden:cfg.hidden_dim
          ~mpnn_layers:cfg.mpnn_per_hgt ~use_attention:cfg.use_attention
          ~name:(Printf.sprintf "hgt%d" i)
      in
      layer :: build (i + 1) cfg.hidden_dim cfg.hidden_dim
    end
  in
  let hgts = build 0 1 1 in
  let head =
    (* Readout concatenates mean and max pooling, so the head input is
       twice the hidden width. *)
    Nn.Layer.Mlp.create rng
      ~dims:[ 2 * cfg.hidden_dim; cfg.head_hidden; 1 ]
      ~name:"head"
  in
  incr uid_counter;
  {
    cfg;
    hgts;
    head;
    uid = !uid_counter;
    generation = 0;
    engine = None;
    qengine = None;
  }

let config t = t.cfg
let uid t = t.uid
let generation t = t.generation

(* Engines snapshot nothing in float mode (they reference the live
   weight matrices) but the quantized engine bakes the weights in at
   build time, and both own warm buffer pools; one of each is cached
   per checkpoint generation so a reload rebuilds them. *)
let engine t =
  match t.engine with
  | Some (g, e) when g = t.generation -> e
  | _ ->
      let e =
        Infer.create ~hgts:t.hgts ~head:t.head
          ~normalize_readout:t.cfg.normalize_readout ()
      in
      t.engine <- Some (t.generation, e);
      e

let quantized_engine t =
  match t.qengine with
  | Some (g, e) when g = t.generation -> e
  | _ ->
      let e =
        Infer.create ~quantized:true ~hgts:t.hgts ~head:t.head
          ~normalize_readout:t.cfg.normalize_readout ()
      in
      t.qengine <- Some (t.generation, e);
      e

let params t = List.concat_map Hgt.params t.hgts @ Nn.Layer.Mlp.params t.head

let num_parameters t =
  List.fold_left (fun acc p -> acc + Nn.Param.num_elements p) 0 (params t)

let forward_logit t tape graph =
  let var_feats = Ad.const tape (Bigraph.initial_var_features graph) in
  let clause_feats = Ad.const tape (Bigraph.initial_clause_features graph) in
  let vf, _cf =
    List.fold_left
      (fun (vf, cf) hgt -> Hgt.forward tape hgt graph ~var_feats:vf ~clause_feats:cf)
      (var_feats, clause_feats) t.hgts
  in
  (* Eq. 10: READOUT over variable nodes, then the MLP head. The paper
     leaves READOUT unspecified; we concatenate mean and max pooling
     (max keeps the extremes the mean washes out), and optionally
     L2-normalise so instance-size-dependent magnitudes do not dominate
     the class signal (see DESIGN.md). *)
  let mean_pool = Ad.mean_rows tape vf in
  let max_pool = Ad.max_rows tape vf in
  let normalise p =
    if t.cfg.normalize_readout then Ad.frobenius_normalize tape p else p
  in
  let pooled = Ad.concat_cols tape (normalise mean_pool) (normalise max_pool) in
  Nn.Layer.Mlp.forward tape t.head pooled

(* Reference prediction through the autodiff tape — the training-path
   numerics. [predict] goes through the tape-free engine instead; the
   two agree to well under 1e-9 (asserted in the test suite). *)
let predict_tape t graph =
  let tape = Ad.tape () in
  let logit = forward_logit t tape graph in
  let z = Mat.get (Ad.value logit) 0 0 in
  1.0 /. (1.0 +. exp (-.z))

let predict t graph = Infer.predict (engine t) graph

let forward_batch t graphs = Infer.predict_batch (engine t) graphs

let predict_q8 t graph = Infer.predict (quantized_engine t) graph

let forward_batch_q8 t graphs = Infer.predict_batch (quantized_engine t) graphs

let predict_formula t formula = predict t (Bigraph.of_formula formula)

let classify t graph = predict t graph > 0.5

let save path t = Nn.Checkpoint.save path (params t)

let bump_generation t = t.generation <- t.generation + 1

let load path t =
  Nn.Checkpoint.load path (params t);
  bump_generation t

let load_result path t =
  let r = Nn.Checkpoint.load_result path (params t) in
  (* Even a failed restore may have overwritten some parameters before
     the error surfaced; invalidate unconditionally. *)
  bump_generation t;
  r

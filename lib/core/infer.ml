(* Tape-free inference engine.

   [Model.forward_logit] builds an autodiff tape: every op allocates a
   value matrix, a grad matrix and a backward closure — none of which a
   pure forward needs. This module mirrors the exact same arithmetic on
   plain [Mat.t] buffers drawn from a shape-keyed pool, so a warm
   engine's forward is allocation-light (a handful of list cells and
   index arrays, no per-op matrices) and runs on the blocked GEMM.

   Numerics contract: every kernel accumulates in the same element
   order as its tape counterpart (ascending k in GEMMs, ascending row
   in scatter/pool reductions, the same [x > 0.0] relu test, the same
   1e-12 Frobenius guard), so a float engine reproduces
   [Model.predict]'s tape result to within bit-level noise of the
   zero-skip edge cases in the attention transpose products — in
   practice well under 1e-9.

   Batching: N bipartite graphs are packed block-diagonally (one tall
   feature matrix, edge indices shifted by per-graph node offsets).
   Message passing is row-local, so the packed rounds are exactly the N
   independent rounds; attention and the readout — whole-matrix
   operations — are applied per row segment so no signal leaks across
   instances. The head MLP then runs once on the packed B x 2h pooled
   matrix instead of B times on 1 x 2h rows. *)

module Mat = Tensor.Mat
module Linear = Nn.Layer.Linear
module Bigraph = Satgraph.Bigraph

(* ---------- shape-keyed buffer pool ---------- *)

(* Exact-shape free lists. The key packs (rows, cols) injectively, so a
   hit never needs a shape check. Buffers come back dirty; every
   consumer below fully overwrites its target. *)
type pool = (int, Mat.t list ref) Hashtbl.t

let pool_key r c = (r lsl 31) lor c

let acquire (p : pool) r c =
  match Hashtbl.find p (pool_key r c) with
  | slot -> ( match !slot with m :: tl -> slot := tl; m | [] -> Mat.zeros r c)
  | exception Not_found -> Mat.zeros r c

let release (p : pool) m =
  let k = pool_key (Mat.rows m) (Mat.cols m) in
  match Hashtbl.find p k with
  | slot -> slot := m :: !slot
  | exception Not_found -> Hashtbl.add p k (ref [ m ])

(* ---------- quantized / float linear layers ---------- *)

type lin =
  | Float_lin of Linear.t
  | Q8_lin of { qw : Mat.Q8.t; bias : Mat.t option }

let lin_of ~quantized l =
  if quantized then
    Q8_lin { qw = Mat.Q8.quantize (Linear.weight_value l); bias = Linear.bias_value l }
  else Float_lin l

let apply_lin p lin x =
  let n = Mat.rows x in
  match lin with
  | Float_lin l ->
      let out = acquire p n (Linear.out_dim l) in
      Linear.infer_into l ~out x;
      out
  | Q8_lin { qw; bias } ->
      let out = acquire p n (Mat.Q8.cols qw) in
      Mat.Q8.matmul_into ~out x qw;
      (match bias with None -> () | Some b -> Mat.add_row_in_place out b);
      out

type mpnn_spec = {
  msg_v2c : lin;
  msg_c2v : lin;
  self_var : lin;
  self_clause : lin;
  out_var : lin;
  out_clause : lin;
}

type hgt_spec = { mpnns : mpnn_spec list; attn : (lin * lin * lin) option }

type t = {
  hgts : hgt_spec list;
  head : lin list;
  normalize_readout : bool;
  is_quantized : bool;
  hidden : int;
  pool : pool;
  mean_scratch : float array;  (* hidden *)
  max_scratch : float array;  (* hidden *)
  kt1_scratch : float array;  (* hidden *)
}

let create ?(quantized = false) ~hgts ~head ~normalize_readout () =
  let conv = lin_of ~quantized in
  let spec_of_hgt h =
    {
      mpnns =
        List.map
          (fun m ->
            {
              msg_v2c = conv (Mpnn.msg_var_to_clause m);
              msg_c2v = conv (Mpnn.msg_clause_to_var m);
              self_var = conv (Mpnn.self_var m);
              self_clause = conv (Mpnn.self_clause m);
              out_var = conv (Mpnn.out_var m);
              out_clause = conv (Mpnn.out_clause m);
            })
          (Hgt.mpnns h);
      attn =
        Option.map
          (fun a ->
            let q, k, v = Attention.projections a in
            (conv q, conv k, conv v))
          (Hgt.attention h);
    }
  in
  let head_lins = Nn.Layer.Mlp.linears head in
  let hidden =
    match head_lins with
    | l :: _ -> Linear.in_dim l / 2
    | [] -> invalid_arg "Infer.create: empty head"
  in
  {
    hgts = List.map spec_of_hgt hgts;
    head = List.map conv head_lins;
    normalize_readout;
    is_quantized = quantized;
    hidden;
    pool = Hashtbl.create 32;
    mean_scratch = Array.make hidden 0.0;
    max_scratch = Array.make hidden 0.0;
    kt1_scratch = Array.make hidden 0.0;
  }

let is_quantized t = t.is_quantized

(* ---------- block-diagonal graph packing ---------- *)

type packed = {
  n_vars : int;
  n_clauses : int;
  edge_var : int array;
  edge_clause : int array;
  edge_weight : float array;
  var_inv : float array;
  clause_inv : float array;
  var_off : int array;  (* batch+1 prefix offsets into var rows *)
}

let pack graphs =
  List.iter
    (fun (g : Bigraph.t) ->
      if g.Bigraph.num_vars = 0 then
        invalid_arg "Infer.pack: graph with no variable nodes")
    graphs;
  match graphs with
  | [] -> invalid_arg "Infer.pack: empty batch"
  | [ g ] ->
      (* Single-instance fast path: no index shifting needed, so the
         graph's own arrays are used in place. *)
      {
        n_vars = g.Bigraph.num_vars;
        n_clauses = g.Bigraph.num_clauses;
        edge_var = g.Bigraph.edge_var;
        edge_clause = g.Bigraph.edge_clause;
        edge_weight = g.Bigraph.edge_weight;
        var_inv = Bigraph.var_inv_degree g;
        clause_inv = Bigraph.clause_inv_degree g;
        var_off = [| 0; g.Bigraph.num_vars |];
      }
  | gs ->
      let arr = Array.of_list gs in
      let b = Array.length arr in
      let var_off = Array.make (b + 1) 0 in
      let clause_off = Array.make (b + 1) 0 in
      let n_edges = ref 0 in
      for i = 0 to b - 1 do
        var_off.(i + 1) <- var_off.(i) + arr.(i).Bigraph.num_vars;
        clause_off.(i + 1) <- clause_off.(i) + arr.(i).Bigraph.num_clauses;
        n_edges := !n_edges + Bigraph.num_edges arr.(i)
      done;
      let nv = var_off.(b) and nc = clause_off.(b) and ne = !n_edges in
      let edge_var = Array.make ne 0 in
      let edge_clause = Array.make ne 0 in
      let edge_weight = Array.make ne 0.0 in
      let var_inv = Array.make nv 0.0 in
      let clause_inv = Array.make (max nc 1) 0.0 in
      let e = ref 0 in
      for i = 0 to b - 1 do
        let g = arr.(i) in
        let vo = var_off.(i) and co = clause_off.(i) in
        let gne = Bigraph.num_edges g in
        for k = 0 to gne - 1 do
          edge_var.(!e + k) <- g.Bigraph.edge_var.(k) + vo;
          edge_clause.(!e + k) <- g.Bigraph.edge_clause.(k) + co;
          edge_weight.(!e + k) <- g.Bigraph.edge_weight.(k)
        done;
        e := !e + gne;
        Array.blit (Bigraph.var_inv_degree g) 0 var_inv vo g.Bigraph.num_vars;
        Array.blit (Bigraph.clause_inv_degree g) 0 clause_inv co
          g.Bigraph.num_clauses
      done;
      {
        n_vars = nv;
        n_clauses = nc;
        edge_var;
        edge_clause;
        edge_weight;
        var_inv;
        clause_inv;
        var_off;
      }

(* ---------- forward ---------- *)

(* Eq. 6 on the packed graph: the fused gather/edge-weight/scatter-sum
   kernel followed by the 1/deg normalisation. Identical accumulation
   order to the tape's three separate ops. *)
let aggregate t packed ~sender ~send_idx ~recv_idx ~recv_rows ~recv_inv =
  let p = t.pool in
  let cols = Mat.cols sender in
  let summed = acquire p recv_rows cols in
  Mat.scatter_weighted_rows_into ~out:summed sender ~send:send_idx
    ~recv:recv_idx ~weights:packed.edge_weight;
  Mat.scale_rows_in_place summed recv_inv;
  summed

(* Eq. 7: relu (W_out (m + W_self h)). *)
let update t ~out_lin ~self_lin ~messages ~feats =
  let p = t.pool in
  let self = apply_lin p self_lin feats in
  Mat.add_in_place self messages;
  let out = apply_lin p out_lin self in
  release p self;
  Mat.relu_in_place out;
  out

(* Per-segment Frobenius normalisation: same ascending-element sum of
   squares and the same 1e-12 identity guard as [Ad.frobenius_normalize]
   applied to the segment's standalone matrix. *)
let frobenius_scale_seg (m : Mat.t) r0 r1 =
  let d = m.Mat.data in
  let lo = r0 * m.Mat.cols and hi = (r1 * m.Mat.cols) - 1 in
  let acc = ref 0.0 in
  for k = lo to hi do
    acc := !acc +. (d.(k) *. d.(k))
  done;
  let s = sqrt !acc in
  if s >= 1e-12 then begin
    let inv = 1.0 /. s in
    for k = lo to hi do
      d.(k) <- inv *. d.(k)
    done
  end

(* SGFormer linear attention (Eqs. 8-9), applied independently to each
   instance's row segment of the packed variable features. The q/k/v
   projections are row-local and run as one packed GEMM; everything
   involving a reduction over rows (normalisation, K~^T V, K~^T 1, the
   denominator) is segmented. *)
let attention_packed t packed (fq, fk, fv) vf =
  let p = t.pool in
  let h = Mat.cols vf in
  let q = apply_lin p fq vf in
  let k = apply_lin p fk vf in
  let v = apply_lin p fv vf in
  let out = acquire p (Mat.rows vf) h in
  let ktv = acquire p h h in
  let qd = q.Mat.data
  and kd = k.Mat.data
  and vd = v.Mat.data
  and od = out.Mat.data
  and ktvd = ktv.Mat.data
  and kt1 = t.kt1_scratch in
  let b = Array.length packed.var_off - 1 in
  for s = 0 to b - 1 do
    let r0 = packed.var_off.(s) and r1 = packed.var_off.(s + 1) in
    let n = r1 - r0 in
    let inv_n = 1.0 /. float_of_int (max n 1) in
    frobenius_scale_seg q r0 r1;
    frobenius_scale_seg k r0 r1;
    (* ktv = K~^T V (h x h) and kt1 = K~^T 1 (h), rows ascending; the
       tape's transpose product skips exact-zero coefficients, mirrored
       here. *)
    Array.fill ktvd 0 (h * h) 0.0;
    Array.fill kt1 0 h 0.0;
    for r = r0 to r1 - 1 do
      let kbase = r * h and vbase = r * h in
      for x = 0 to h - 1 do
        let kv = kd.(kbase + x) in
        if kv <> 0.0 then begin
          let obase = x * h in
          for j = 0 to h - 1 do
            ktvd.(obase + j) <- ktvd.(obase + j) +. (kv *. vd.(vbase + j))
          done;
          kt1.(x) <- kt1.(x) +. (kv *. 1.0)
        end
      done
    done;
    (* Per row: qktv into out (ascending x, one term at a time — the
       tape matmul's order), the scalar q.kt1, then
       out = (v + qktv/n) / (1 + (q.kt1)/n). *)
    for r = r0 to r1 - 1 do
      let base = r * h in
      for j = 0 to h - 1 do
        od.(base + j) <- 0.0
      done;
      for x = 0 to h - 1 do
        let qv = qd.(base + x) in
        let obase = x * h in
        for j = 0 to h - 1 do
          od.(base + j) <- od.(base + j) +. (qv *. ktvd.(obase + j))
        done
      done;
      let dot = acquire p 1 1 in
      let dd = dot.Mat.data in
      dd.(0) <- 0.0;
      for x = 0 to h - 1 do
        dd.(0) <- dd.(0) +. (qd.(base + x) *. kt1.(x))
      done;
      let denom = 1.0 +. (inv_n *. dd.(0)) in
      release p dot;
      for j = 0 to h - 1 do
        od.(base + j) <- (vd.(base + j) +. (inv_n *. od.(base + j))) /. denom
      done
    done
  done;
  release p q;
  release p k;
  release p v;
  release p ktv;
  out

(* Same ascending sum of squares, the same 1e-12 identity guard and the
   same multiply-by-reciprocal as [Ad.frobenius_normalize]. *)
let normalise_scratch a h =
  let acc = ref 0.0 in
  for j = 0 to h - 1 do
    acc := !acc +. (a.(j) *. a.(j))
  done;
  let s = sqrt !acc in
  if s >= 1e-12 then begin
    let inv = 1.0 /. s in
    for j = 0 to h - 1 do
      a.(j) <- inv *. a.(j)
    done
  end

(* Eq. 10 readout per segment: mean and max pooling over the variable
   rows, each optionally Frobenius-normalised (same guard as the tape),
   concatenated into one row of the B x 2h pooled matrix. The mean
   divides by [max n 1] like [Mat.col_means]; the max starts from row
   [r0] and takes strictly greater values like [Ad.max_rows]. *)
let pool_readout t packed vf pooled =
  let h = Mat.cols vf in
  let d = vf.Mat.data and pd = pooled.Mat.data in
  let mean_s = t.mean_scratch and max_s = t.max_scratch in
  let b = Array.length packed.var_off - 1 in
  for s = 0 to b - 1 do
    let r0 = packed.var_off.(s) and r1 = packed.var_off.(s + 1) in
    let n = r1 - r0 in
    let denom = float_of_int (max n 1) in
    for j = 0 to h - 1 do
      mean_s.(j) <- 0.0;
      max_s.(j) <- d.((r0 * h) + j)
    done;
    for r = r0 to r1 - 1 do
      let base = r * h in
      for j = 0 to h - 1 do
        let x = d.(base + j) in
        mean_s.(j) <- mean_s.(j) +. x;
        if x > max_s.(j) then max_s.(j) <- x
      done
    done;
    for j = 0 to h - 1 do
      mean_s.(j) <- mean_s.(j) /. denom
    done;
    if t.normalize_readout then begin
      normalise_scratch mean_s h;
      normalise_scratch max_s h
    end;
    let base = s * 2 * h in
    for j = 0 to h - 1 do
      pd.(base + j) <- mean_s.(j);
      pd.(base + h + j) <- max_s.(j)
    done
  done

let forward t packed =
  let p = t.pool in
  let nv = packed.n_vars and nc = packed.n_clauses in
  let vf0 = acquire p nv 1 in
  Mat.fill vf0 1.0;
  let cf0 = acquire p nc 1 in
  Mat.fill cf0 0.0;
  let vf = ref vf0 and cf = ref cf0 in
  List.iter
    (fun hgt ->
      List.iter
        (fun mp ->
          let vmsg = apply_lin p mp.msg_v2c !vf in
          let cmsg = apply_lin p mp.msg_c2v !cf in
          let to_clauses =
            aggregate t packed ~sender:vmsg ~send_idx:packed.edge_var
              ~recv_idx:packed.edge_clause ~recv_rows:nc
              ~recv_inv:packed.clause_inv
          in
          release p vmsg;
          let to_vars =
            aggregate t packed ~sender:cmsg ~send_idx:packed.edge_clause
              ~recv_idx:packed.edge_var ~recv_rows:nv ~recv_inv:packed.var_inv
          in
          release p cmsg;
          let new_v =
            update t ~out_lin:mp.out_var ~self_lin:mp.self_var
              ~messages:to_vars ~feats:!vf
          in
          release p to_vars;
          let new_c =
            update t ~out_lin:mp.out_clause ~self_lin:mp.self_clause
              ~messages:to_clauses ~feats:!cf
          in
          release p to_clauses;
          release p !vf;
          release p !cf;
          vf := new_v;
          cf := new_c)
        hgt.mpnns;
      match hgt.attn with
      | None -> ()
      | Some proj ->
          let att = attention_packed t packed proj !vf in
          release p !vf;
          vf := att)
    t.hgts;
  let b = Array.length packed.var_off - 1 in
  let pooled = acquire p b (2 * t.hidden) in
  pool_readout t packed !vf pooled;
  release p !vf;
  release p !cf;
  let x = ref pooled in
  let nlayers = List.length t.head in
  List.iteri
    (fun i lin ->
      let y = apply_lin p lin !x in
      if i < nlayers - 1 then Mat.relu_in_place y;
      release p !x;
      x := y)
    t.head;
  let logits = !x in
  let probs =
    Array.init b (fun i -> 1.0 /. (1.0 +. exp (-.Mat.get logits i 0)))
  in
  release p logits;
  probs

let predict_batch t graphs =
  match graphs with [] -> [||] | _ -> forward t (pack graphs)

let predict t graph = (forward t (pack [ graph ])).(0)

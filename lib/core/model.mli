(** The NeuroSelect classifier (Fig. 6).

    CNF → bipartite graph → stacked {!Hgt} layers → mean readout over
    variable nodes (Eq. 10) → MLP → logit. [predict] applies a sigmoid;
    probability > 0.5 means "use the propagation-frequency deletion
    policy" (label 1 in Sec. 5.1). *)

type config = {
  hidden_dim : int;  (** Paper: 32. *)
  hgt_layers : int;  (** Paper: 2. *)
  mpnn_per_hgt : int;  (** Paper: 3. *)
  use_attention : bool;  (** [false] = the Table 2 ablation. *)
  normalize_readout : bool;
      (** L2-normalise the pooled graph embedding before the MLP head
          (training-stability addition, see DESIGN.md). *)
  head_hidden : int;  (** Width of the MLP head's hidden layer. *)
  seed : int;
}

val paper_config : config
(** hidden 32, 2 HGT layers of 3 MPNNs, attention on, seed 1. *)

val small_config : config
(** A reduced configuration for fast tests (hidden 8, 1 HGT layer). *)

type t

val create : config -> t
val config : t -> config
val params : t -> Nn.Param.t list
val num_parameters : t -> int

val forward_logit : t -> Nn.Ad.tape -> Satgraph.Bigraph.t -> Nn.Ad.v
(** [1 x 1] logit node (differentiable). *)

val predict : t -> Satgraph.Bigraph.t -> float
(** Probability in (0, 1) that the frequency policy helps. Runs the
    tape-free {!Infer} engine (cached per checkpoint generation);
    agrees with {!predict_tape} to well under 1e-9. *)

val predict_tape : t -> Satgraph.Bigraph.t -> float
(** Reference prediction through the autodiff tape — the training-path
    numerics, kept as the oracle for the fast path. *)

val forward_batch : t -> Satgraph.Bigraph.t list -> float array
(** Batched prediction: one packed forward over all graphs (one big
    GEMM per layer instead of N small ones). Numerically equal to
    mapping {!predict}. *)

val predict_q8 : t -> Satgraph.Bigraph.t -> float
(** Prediction through the int8-quantized engine. *)

val forward_batch_q8 : t -> Satgraph.Bigraph.t list -> float array

val engine : t -> Infer.t
(** The cached float inference engine for the current checkpoint
    generation (built on first use). *)

val quantized_engine : t -> Infer.t

val uid : t -> int
(** Process-unique model identity, for external cache keys. *)

val generation : t -> int
(** Bumped by {!load} / {!load_result}: any successful or attempted
    checkpoint restore invalidates engines and external caches keyed on
    [(uid, generation)]. *)

val predict_formula : t -> Cnf.Formula.t -> float
val classify : t -> Satgraph.Bigraph.t -> bool

val save : string -> t -> unit
val load : string -> t -> unit
(** Restores parameters into an existing model of identical config.
    @raise Runtime.Error.Runtime_error when neither the checkpoint nor
    its [.bak] copy is usable. *)

val load_result : string -> t -> (Nn.Checkpoint.source, Runtime.Error.t) result
(** Like [load]; reports whether the primary or the [.bak] last-good
    copy was restored instead of raising. *)

type t = {
  mpnns : Mpnn.t list;
  attention : Attention.t option;
}

let create rng ~var_in ~clause_in ~hidden ~mpnn_layers ~use_attention ~name =
  if mpnn_layers < 1 then invalid_arg "Hgt.create: mpnn_layers >= 1";
  let rec build i var_in clause_in =
    if i >= mpnn_layers then []
    else begin
      let layer =
        Mpnn.create rng ~var_in ~clause_in ~out_dim:hidden
          ~name:(Printf.sprintf "%s.mpnn%d" name i)
      in
      layer :: build (i + 1) hidden hidden
    end
  in
  let attention =
    if use_attention then Some (Attention.create rng ~dim:hidden ~name:(name ^ ".attn"))
    else None
  in
  { mpnns = build 0 var_in clause_in; attention }

let forward tape t graph ~var_feats ~clause_feats =
  let vf, cf =
    List.fold_left
      (fun (vf, cf) layer -> Mpnn.forward tape layer graph ~var_feats:vf ~clause_feats:cf)
      (var_feats, clause_feats) t.mpnns
  in
  match t.attention with
  | None -> (vf, cf)
  | Some attn -> (Attention.forward tape attn vf, cf)

let params t =
  List.concat_map Mpnn.params t.mpnns
  @ (match t.attention with None -> [] | Some a -> Attention.params a)

let uses_attention t = Option.is_some t.attention
let mpnns t = t.mpnns
let attention t = t.attention

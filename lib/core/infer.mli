(** Tape-free inference engine for the NeuroSelect classifier.

    Mirrors {!Model.forward_logit}'s arithmetic on plain matrices drawn
    from a shape-keyed buffer pool: no autodiff nodes, no gradient
    buffers, no backward closures. Every kernel keeps the tape ops'
    accumulation order, so a float engine reproduces the tape
    prediction to well under 1e-9.

    Batched inference packs N bipartite graphs block-diagonally —
    message passing is row-local so the packed rounds are exactly the N
    independent rounds, while attention and the mean/max readout are
    applied per row segment — and runs the MLP head once on the packed
    [B x 2h] pooled matrix.

    An engine holds (optionally int8-quantized) snapshots of the model
    weights plus its buffer pool; build it through {!Model.engine} /
    {!Model.quantized_engine}, which cache one per checkpoint
    generation. Engines are not thread-safe (the pool and scratch
    buffers are shared across calls). *)

type t

val create :
  ?quantized:bool ->
  hgts:Hgt.t list ->
  head:Nn.Layer.Mlp.t ->
  normalize_readout:bool ->
  unit ->
  t
(** [quantized:true] snapshots every linear layer's weights as
    {!Tensor.Mat.Q8.t} (int8, per-matrix scale/zero-point); activations
    stay float and are quantized on the fly per GEMM. Quantized layers
    reference the weights by value at creation time, so a checkpoint
    reload needs a fresh engine. *)

val is_quantized : t -> bool

val predict : t -> Satgraph.Bigraph.t -> float
(** Probability in (0, 1); the fast equivalent of {!Model.predict}.
    @raise Invalid_argument on a graph with no variable nodes (the tape
    path rejects those too). *)

val predict_batch : t -> Satgraph.Bigraph.t list -> float array
(** One packed forward for the whole batch; [predict_batch t gs]
    equals [List.map (predict t) gs] numerically. Returns [[||]] on an
    empty list. *)

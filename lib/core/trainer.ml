module Ad = Nn.Ad

type example = {
  name : string;
  graph : Satgraph.Bigraph.t;
  label : bool;
}

let example_of_formula ~name ~label formula =
  { name; graph = Satgraph.Bigraph.of_formula formula; label }

type history = {
  epoch_losses : float array;
  final_train_accuracy : float;
  skipped_steps : int;
  lr_backoffs : int;
}

let spec model =
  {
    Nn.Train.params = Model.params model;
    forward = (fun tape graph -> Model.forward_logit model tape graph);
  }

let loss_of_example model example =
  Nn.Train.loss (spec model) example.graph example.label

let predictions model examples =
  let predicted =
    Array.of_list (List.map (fun e -> Model.classify model e.graph) examples)
  in
  let actual = Array.of_list (List.map (fun e -> e.label) examples) in
  (predicted, actual)

let evaluate model examples =
  let predicted, actual = predictions model examples in
  Metrics.report ~predicted ~actual

let train ?(epochs = 40) ?(lr = 1e-3) ?(seed = 7) ?(balance = true) ?clip_norm
    ?start_epoch ?on_epoch ?progress model examples =
  if examples = [] then invalid_arg "Trainer.train: empty dataset";
  let data =
    Array.of_list (List.map (fun e -> (e.graph, e.label)) examples)
  in
  let pos_weight = if balance then Nn.Train.auto_pos_weight data else 1.0 in
  let history =
    Nn.Train.fit ~epochs ~lr ~seed ~pos_weight ?clip_norm ?start_epoch ?on_epoch
      ?progress (spec model) data
  in
  let predicted, actual = predictions model examples in
  let c = Metrics.confusion ~predicted ~actual in
  {
    epoch_losses = history.Nn.Train.epoch_losses;
    final_train_accuracy = Metrics.accuracy c;
    skipped_steps = history.Nn.Train.skipped_steps;
    lr_backoffs = history.Nn.Train.lr_backoffs;
  }

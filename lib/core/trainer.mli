(** Training loop for the NeuroSelect classifier.

    Binary cross-entropy (Eq. 11), Adam, batch size 1, following
    Sec. 5.2. Examples are shuffled each epoch with the provided seed's
    stream so runs are reproducible. *)

type example = {
  name : string;
  graph : Satgraph.Bigraph.t;
  label : bool;  (** true = frequency policy preferred. *)
}

val example_of_formula : name:string -> label:bool -> Cnf.Formula.t -> example

type history = {
  epoch_losses : float array;  (** Mean BCE per epoch. *)
  final_train_accuracy : float;
  skipped_steps : int;
      (** Steps dropped by the divergence guard (see {!Nn.Train}). *)
  lr_backoffs : int;  (** Learning-rate backoffs applied. *)
}

val train :
  ?epochs:int ->
  ?lr:float ->
  ?seed:int ->
  ?balance:bool ->
  ?clip_norm:float ->
  ?start_epoch:int ->
  ?on_epoch:(epoch:int -> loss:float -> unit) ->
  ?progress:(epoch:int -> loss:float -> unit) ->
  Model.t ->
  example list ->
  history
(** [epochs] defaults to 40 and [lr] to 1e-3 (the paper uses 400 /
    1e-4 at full scale; defaults here are scaled to the synthetic
    dataset — override to match the paper exactly). [balance]
    (default true) weights positive examples by the negative/positive
    ratio to counter label skew.

    [start_epoch] resumes training from that epoch (replaying earlier
    shuffles for determinism); [on_epoch] fires after each executed
    epoch, e.g. to write a periodic checkpoint. *)

val loss_of_example : Model.t -> example -> float
(** BCE of a single example under the current weights. *)

val predictions : Model.t -> example list -> bool array * bool array
(** [(predicted, actual)] aligned with the example list. *)

val evaluate : Model.t -> example list -> Metrics.report

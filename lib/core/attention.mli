(** Linear (SGFormer-style) global attention over variable nodes
    (Eqs. 8–9).

    All-pair attention computed in O(N d^2) by associating the product
    as [Q~ (K~^T V)] after Frobenius-normalising Q and K:

    {v
      D     = diag(1 + (1/N) Q~ (K~^T 1))
      Z_out = D^{-1} [ V + (1/N) Q~ (K~^T V) ]
    v} *)

type t

val create : Util.Rng.t -> dim:int -> name:string -> t
(** [f_Q], [f_K], [f_V] are bias-free linear maps of width [dim]. *)

val forward : Nn.Ad.tape -> t -> Nn.Ad.v -> Nn.Ad.v
(** Input and output are [N x dim]. *)

val params : t -> Nn.Param.t list

val projections : t -> Nn.Layer.Linear.t * Nn.Layer.Linear.t * Nn.Layer.Linear.t
(** [(f_Q, f_K, f_V)], for the tape-free inference engine. *)

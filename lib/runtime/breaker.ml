type state = Closed | Open | Half_open

(* State-transition counters are process-wide across all breaker
   instances; per-edge, not per-instance, which is what a fleet
   dashboard wants. *)
let m_opened = Obs.Metrics.counter "runtime.breaker.opened"
let m_half_opened = Obs.Metrics.counter "runtime.breaker.half_opened"
let m_closed = Obs.Metrics.counter "runtime.breaker.closed"

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  failure_threshold : int;
  cooldown_seconds : float;
  half_open_trials : int;
}

let default_config =
  { failure_threshold = 5; cooldown_seconds = 30.0; half_open_trials = 2 }

type t = {
  config : config;
  now : unit -> float;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable half_open_successes : int;
  mutable opened_at : float;
  mutable trips : int;
}

let create ?(config = default_config) ~now () =
  let config =
    {
      failure_threshold = max 1 config.failure_threshold;
      cooldown_seconds = Float.max 0.0 config.cooldown_seconds;
      half_open_trials = max 1 config.half_open_trials;
    }
  in
  {
    config;
    now;
    state = Closed;
    consecutive_failures = 0;
    half_open_successes = 0;
    opened_at = neg_infinity;
    trips = 0;
  }

let trip t =
  Obs.Metrics.incr m_opened;
  t.state <- Open;
  t.opened_at <- t.now ();
  t.consecutive_failures <- 0;
  t.half_open_successes <- 0;
  t.trips <- t.trips + 1

let force_open = trip

(* The open→half-open edge is driven by the clock, not by an event, so
   it is evaluated lazily whenever the breaker is observed. *)
let refresh t =
  match t.state with
  | Open when t.now () -. t.opened_at >= t.config.cooldown_seconds ->
    Obs.Metrics.incr m_half_opened;
    t.state <- Half_open;
    t.half_open_successes <- 0
  | Open | Closed | Half_open -> ()

let state t =
  refresh t;
  t.state

let allow t =
  match state t with Closed | Half_open -> true | Open -> false

let record_success t =
  match state t with
  | Closed -> t.consecutive_failures <- 0
  | Half_open ->
    t.half_open_successes <- t.half_open_successes + 1;
    if t.half_open_successes >= t.config.half_open_trials then begin
      Obs.Metrics.incr m_closed;
      t.state <- Closed;
      t.consecutive_failures <- 0;
      t.half_open_successes <- 0
    end
  | Open -> ()

let record_failure t =
  match state t with
  | Closed ->
    t.consecutive_failures <- t.consecutive_failures + 1;
    if t.consecutive_failures >= t.config.failure_threshold then trip t
  | Half_open -> trip t (* one bad trial re-opens immediately *)
  | Open -> ()

let reset t =
  t.state <- Closed;
  t.consecutive_failures <- 0;
  t.half_open_successes <- 0;
  t.opened_at <- neg_infinity

let trip_count t = t.trips
let consecutive_failures t = t.consecutive_failures

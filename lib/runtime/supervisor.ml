type limits = {
  mem_limit_mb : int option;
  deadline_seconds : float option;
  heartbeat_interval : float;
  hang_factor : float;
  grace_seconds : float;
}

let default_limits =
  {
    mem_limit_mb = None;
    deadline_seconds = None;
    heartbeat_interval = 0.25;
    hang_factor = 2.0;
    grace_seconds = 0.5;
  }

type verdict =
  | Completed of (string, string) result
  | Exited of int
  | Signaled of int
  | Hung of float
  | Timed_out of float

let verdict_to_string = function
  | Completed (Ok _) -> "completed"
  | Completed (Error msg) -> Printf.sprintf "worker error: %s" msg
  | Exited c -> Printf.sprintf "worker exited with status %d and no result" c
  | Signaled s -> Printf.sprintf "worker killed by signal %d" s
  | Hung silence ->
    Printf.sprintf "worker hung (silent %.2fs); reaped by watchdog" silence
  | Timed_out elapsed ->
    Printf.sprintf "worker exceeded its deadline (%.2fs); reaped" elapsed

let retryable = function
  | Completed (Ok _) | Completed (Error _) -> false
  | Exited _ | Signaled _ | Hung _ | Timed_out _ -> true

type kill_reason = Watchdog of float | Deadline of float

type t = {
  pid : int;
  label : string;
  limits : limits;
  result_r : Unix.file_descr;
  hb_r : Unix.file_descr;
  started : float;
  buf : Buffer.t;
  mutable last_hb : float;
  mutable result_eof : bool;
  mutable term_sent_at : float option;
  mutable kill_sent : bool;
  mutable kill_reason : kill_reason option;
  mutable verdict : verdict option;
}

let pid t = t.pid
let label t = t.label

(* Supervision timing must stay on the real clock even when
   Runtime.Clock runs a fake source for deterministic measurements. *)
let real_now () = Unix.gettimeofday ()

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

let hb_byte = Bytes.of_string "h"

(* Runs in the forked child; must never return and must never touch
   the parent's alcotest/cmdliner state — every path ends in _exit. *)
let child_main limits ~inject_crash ~inject_hang result_w hb_w f =
  (try
     (* The parent may have cooperative SIGTERM handling installed;
        a worker must die on SIGTERM so the escalation ladder works. *)
     Sys.set_signal Sys.sigterm Sys.Signal_default;
     Sys.set_signal Sys.sigint Sys.Signal_default;
     (match limits.mem_limit_mb with
     | Some mb -> ignore (Rlimit.set_memory_limit_mb mb)
     | None -> ());
     let heartbeat () =
       try ignore (Unix.write hb_w hb_byte 0 1) with _ -> ()
     in
     if inject_hang then
       (* A stuck worker: no heartbeat, no result, no progress. Only
          the parent's watchdog can end this. *)
       while true do
         Unix.sleepf 3600.0
       done
     else begin
       heartbeat ();
       Sys.set_signal Sys.sigalrm (Sys.Signal_handle (fun _ -> heartbeat ()));
       ignore
         (Unix.setitimer Unix.ITIMER_REAL
            {
              Unix.it_interval = limits.heartbeat_interval;
              it_value = limits.heartbeat_interval;
            });
       if inject_crash then Unix.kill (Unix.getpid ()) Sys.sigkill;
       let payload =
         match f () with
         | Ok s -> "O" ^ s
         | Error s -> "E" ^ s
         | exception e -> "E" ^ Printexc.to_string e
       in
       (* Stop the timer before the blocking result write so a
          heartbeat signal cannot interrupt it halfway. *)
       ignore
         (Unix.setitimer Unix.ITIMER_REAL
            { Unix.it_interval = 0.0; it_value = 0.0 });
       write_all result_w payload
     end
   with _ -> ());
  (try Unix.close result_w with _ -> ());
  (try Unix.close hb_w with _ -> ());
  Unix._exit 0

let spawn ?(label = "worker") limits f =
  let result_r, result_w = Unix.pipe ~cloexec:false () in
  let hb_r, hb_w = Unix.pipe ~cloexec:false () in
  (* Decide fault injection in the parent so the deterministic fault
     stream and its fire counters live in one process; the child only
     executes the decision. *)
  let inject_crash = Fault.fires Fault.Worker_crash in
  let inject_hang = Fault.fires Fault.Worker_hang in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close result_r;
    Unix.close hb_r;
    child_main limits ~inject_crash ~inject_hang result_w hb_w f
  | pid ->
    Unix.close result_w;
    Unix.close hb_w;
    Unix.set_nonblock result_r;
    Unix.set_nonblock hb_r;
    let now = real_now () in
    {
      pid;
      label;
      limits;
      result_r;
      hb_r;
      started = now;
      buf = Buffer.create 256;
      last_hb = now;
      result_eof = false;
      term_sent_at = None;
      kill_sent = false;
      kill_reason = None;
      verdict = None;
    }

let wait_fds t =
  if t.verdict <> None then []
  else
    (if t.result_eof then [] else [ t.result_r ]) @ [ t.hb_r ]

let drain_fd t fd ~on_data =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> if fd = t.result_r then t.result_eof <- true
    | n ->
      on_data chunk n;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> if fd = t.result_r then t.result_eof <- true
  in
  go ()

let send_term t reason ~now =
  if t.term_sent_at = None then begin
    t.kill_reason <- Some reason;
    t.term_sent_at <- Some now;
    try Unix.kill t.pid Sys.sigterm with Unix.Unix_error _ -> ()
  end

let send_kill t =
  if not t.kill_sent then begin
    t.kill_sent <- true;
    try Unix.kill t.pid Sys.sigkill with Unix.Unix_error _ -> ()
  end

let m_completed_ok = Obs.Metrics.counter "runtime.supervisor.completed_ok"
let m_completed_error = Obs.Metrics.counter "runtime.supervisor.completed_error"
let m_exited = Obs.Metrics.counter "runtime.supervisor.exited"
let m_signaled = Obs.Metrics.counter "runtime.supervisor.signaled"
let m_hung = Obs.Metrics.counter "runtime.supervisor.hung"
let m_timed_out = Obs.Metrics.counter "runtime.supervisor.timed_out"

let count_verdict = function
  | Completed (Ok _) -> Obs.Metrics.incr m_completed_ok
  | Completed (Error _) -> Obs.Metrics.incr m_completed_error
  | Exited _ -> Obs.Metrics.incr m_exited
  | Signaled _ -> Obs.Metrics.incr m_signaled
  | Hung _ -> Obs.Metrics.incr m_hung
  | Timed_out _ -> Obs.Metrics.incr m_timed_out

let finalize t status =
  let v =
    match t.kill_reason with
    | Some (Watchdog silence) -> Hung silence
    | Some (Deadline elapsed) -> Timed_out elapsed
    | None -> (
      let payload = Buffer.contents t.buf in
      if String.length payload > 0 then
        let body = String.sub payload 1 (String.length payload - 1) in
        match payload.[0] with
        | 'O' -> Completed (Ok body)
        | 'E' -> Completed (Error body)
        | _ -> Exited 70
      else
        match status with
        | Unix.WEXITED c -> Exited c
        | Unix.WSIGNALED s | Unix.WSTOPPED s -> Signaled s)
  in
  (try Unix.close t.result_r with Unix.Unix_error _ -> ());
  (try Unix.close t.hb_r with Unix.Unix_error _ -> ());
  count_verdict v;
  t.verdict <- Some v;
  v

let service t =
  match t.verdict with
  | Some v -> Some v
  | None ->
    let now = real_now () in
    drain_fd t t.hb_r ~on_data:(fun _ _ -> t.last_hb <- now);
    drain_fd t t.result_r ~on_data:(fun chunk n ->
        t.last_hb <- now;
        Buffer.add_subbytes t.buf chunk 0 n);
    (* Escalation ladder: deadline or watchdog first sends SIGTERM;
       grace_seconds later an unresponsive worker gets SIGKILL. *)
    (match t.limits.deadline_seconds with
    | Some d when now -. t.started > d && not t.result_eof ->
      send_term t (Deadline (now -. t.started)) ~now
    | _ -> ());
    let silence = now -. t.last_hb in
    if
      (not t.result_eof)
      && silence > t.limits.hang_factor *. t.limits.heartbeat_interval
    then send_term t (Watchdog silence) ~now;
    (match t.term_sent_at with
    | Some at when now -. at > t.limits.grace_seconds -> send_kill t
    | _ -> ());
    (match Unix.waitpid [ Unix.WNOHANG ] t.pid with
    | 0, _ -> None
    | _, status -> Some (finalize t status)
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
      Some (finalize t (Unix.WEXITED 0)))

let abort t =
  match t.verdict with
  | Some _ -> ()
  | None ->
    send_term t (Deadline (real_now () -. t.started)) ~now:(real_now ())

(* Block until the worker is done, multiplexing on its pipes with a
   small tick so watchdog and escalation checks stay timely. *)
let await t =
  let rec loop () =
    match service t with
    | Some v -> v
    | None ->
      let fds = wait_fds t in
      (try ignore (Unix.select fds [] [] 0.02)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
  in
  loop ()

let run ?label limits f = await (spawn ?label limits f)

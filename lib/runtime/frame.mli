(** Length-prefixed framing for the solve-service wire protocol.

    A frame is an ASCII decimal byte count, a newline, then exactly
    that many payload bytes (one flat-JSON object, see {!Journal}).
    Length prefixes make the stream self-synchronising without
    escaping, and let a reader with a partial frame wait for the rest
    instead of guessing. *)

val write : Unix.file_descr -> string -> unit
(** Write one complete frame (blocking; loops over short writes and
    retries EINTR so a signal mid-write cannot tear the frame). Raises
    [Unix.Unix_error] on a broken pipe — callers own the connection
    lifecycle. *)

type reader
(** Buffered inbound bytes for one connection. *)

val create_reader : unit -> reader

val feed : reader -> bytes -> len:int -> unit
(** Append [len] bytes from the chunk. *)

val next : reader -> string option
(** Pop the next complete frame payload, or [None] when more bytes are
    needed. The length prefix is parsed as strict decimal digits (an
    optional trailing CR is tolerated): hostile spellings like "0x10"
    or "1_000" are malformed rather than silently accepted. After a
    malformed prefix (non-digit, empty, zero, over nine digits, or
    over the 64 MiB sanity cap) the reader is poisoned: [next] returns
    [None] forever and {!malformed} turns true. *)

val malformed : reader -> bool

val read_into : reader -> Unix.file_descr -> [ `Data | `Eof | `Blocked ]
(** One [read] of up to 64 KiB fed into the reader. [`Blocked] covers
    EAGAIN/EWOULDBLOCK on non-blocking descriptors and EINTR (a signal
    before any bytes moved); any other error reports as [`Eof]. *)

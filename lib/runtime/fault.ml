type point =
  | Torn_checkpoint_write
  | Checkpoint_bit_flip
  | Poisoned_gradient
  | Inference_failure
  | Instance_crash
  | Worker_crash
  | Worker_hang
  | Breaker_trip
  | Inprocess_abort
  | Wal_torn_append
  | Wal_crash_before_fsync
  | Wal_snapshot_crash
  | Share_torn_frame
  | Portfolio_worker_kill

let all =
  [
    Torn_checkpoint_write;
    Checkpoint_bit_flip;
    Poisoned_gradient;
    Inference_failure;
    Instance_crash;
    Worker_crash;
    Worker_hang;
    Breaker_trip;
    Inprocess_abort;
    Wal_torn_append;
    Wal_crash_before_fsync;
    Wal_snapshot_crash;
    Share_torn_frame;
    Portfolio_worker_kill;
  ]

let name = function
  | Torn_checkpoint_write -> "torn-checkpoint-write"
  | Checkpoint_bit_flip -> "checkpoint-bit-flip"
  | Poisoned_gradient -> "poisoned-gradient"
  | Inference_failure -> "inference-failure"
  | Instance_crash -> "instance-crash"
  | Worker_crash -> "worker-crash"
  | Worker_hang -> "worker-hang"
  | Breaker_trip -> "breaker-trip"
  | Inprocess_abort -> "inprocess-abort"
  | Wal_torn_append -> "wal-torn-append"
  | Wal_crash_before_fsync -> "wal-crash-before-fsync"
  | Wal_snapshot_crash -> "wal-snapshot-crash"
  | Share_torn_frame -> "share-torn-frame"
  | Portfolio_worker_kill -> "portfolio-worker-kill"

let of_name s = List.find_opt (fun p -> name p = s) all

let index p =
  let rec go i = function
    | [] -> assert false
    | q :: _ when q = p -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 all

type slot = {
  rng : Util.Rng.t;
  rate : float;
  limit : int option;
  mutable fired : int;
}

(* One slot per armed point; [None] when disarmed. *)
let state : (point * slot) list ref = ref []

let arm ~seed ?(rate = 1.0) ?limit points =
  state :=
    List.map
      (fun p ->
        ( p,
          {
            rng = Util.Rng.create ((seed * 9_176_167) + index p);
            rate;
            limit;
            fired = 0;
          } ))
      points

let disarm () = state := []

let slot p = List.assoc_opt p !state

let armed p = slot p <> None

let fires p =
  match slot p with
  | None -> false
  | Some s ->
    let exhausted = match s.limit with Some l -> s.fired >= l | None -> false in
    if exhausted then false
    else begin
      let fire = s.rate >= 1.0 || Util.Rng.uniform s.rng 0.0 1.0 < s.rate in
      if fire then s.fired <- s.fired + 1;
      fire
    end

let fired_count p = match slot p with None -> 0 | Some s -> s.fired

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type record = (string * value) list

(* --- encoding --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let encode_value buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | String s -> escape buf s

let encode record =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape buf k;
      Buffer.add_char buf ':';
      encode_value buf v)
    record;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* --- parsing (flat objects only) --- *)

exception Bad

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Bad else line.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () <> c then raise Bad else advance () in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'; advance ()
        | '\\' -> Buffer.add_char buf '\\'; advance ()
        | '/' -> Buffer.add_char buf '/'; advance ()
        | 'n' -> Buffer.add_char buf '\n'; advance ()
        | 'r' -> Buffer.add_char buf '\r'; advance ()
        | 't' -> Buffer.add_char buf '\t'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then raise Bad;
          let hex = String.sub line !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_char buf '?'
          | None -> raise Bad)
        | _ -> raise Bad);
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub line !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else raise Bad
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num line.[!pos] do
      advance ()
    done;
    let s = String.sub line start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with Some f -> Float f | None -> raise Bad)
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> String (parse_string ())
    | 't' -> parse_literal "true" (Bool true)
    | 'f' -> parse_literal "false" (Bool false)
    | 'n' -> parse_literal "null" Null
    | _ -> parse_number ()
  in
  match
    skip_ws ();
    expect '{';
    skip_ws ();
    let fields = ref [] in
    if peek () = '}' then advance ()
    else begin
      let rec go () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | ',' -> advance (); go ()
        | '}' -> advance ()
        | _ -> raise Bad
      in
      go ()
    end;
    skip_ws ();
    if !pos <> n then raise Bad;
    List.rev !fields
  with
  | fields -> Some fields
  | exception Bad -> None

(* --- file IO --- *)

let append path record =
  let line = encode record ^ "\n" in
  match
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let n = String.length line in
        let written = ref 0 in
        while !written < n do
          written := !written + Unix.write_substring fd line !written (n - !written)
        done;
        Unix.fsync fd)
  with
  | () -> Ok ()
  | exception e ->
    Error (Error.Io { path; op = "journal-append"; message = Printexc.to_string e })

let load path =
  (* Opening a campaign journal is the natural moment to reap tmp
     files abandoned by crashed writers in the same directory. *)
  ignore (Atomic_file.sweep_stale (Filename.dirname path));
  if not (Sys.file_exists path) then Ok ([], 0)
  else
    match Atomic_file.read path with
    | Error e -> Error e
    | Ok text ->
      let records = ref [] and dropped = ref 0 in
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             if String.trim line <> "" then
               match parse_line line with
               | Some r -> records := r :: !records
               | None -> incr dropped);
      Ok (List.rev !records, !dropped)

(* --- accessors --- *)

let find_string record key =
  match List.assoc_opt key record with Some (String s) -> Some s | _ -> None

let find_float record key =
  match List.assoc_opt key record with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | Some Null -> Some Float.nan
  | _ -> None

let find_int record key =
  match List.assoc_opt key record with Some (Int i) -> Some i | _ -> None

let find_bool record key =
  match List.assoc_opt key record with Some (Bool b) -> Some b | _ -> None

(** OS resource limits (thin C stubs over [setrlimit]/[getrusage]).

    Used by worker processes: the supervisor caps a worker's address
    space so a runaway instance gets [Out_of_memory] inside its own
    process instead of taking the campaign down. *)

val set_memory_limit_mb : int -> bool
(** Cap this process's address space ([RLIMIT_AS], soft and hard) at
    the given number of mebibytes. Returns false when the kernel
    refuses. Irreversible for non-root processes — call it only in a
    forked worker. *)

val max_rss_kb : unit -> int
(** Peak resident set size of this process in KiB (-1 on failure). *)

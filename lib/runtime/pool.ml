type outcome =
  | Done of string
  | Failed of string
  | Shed

let g_queue_depth = Obs.Metrics.gauge "runtime.pool.queue_depth"
let g_in_flight = Obs.Metrics.gauge "runtime.pool.in_flight"
let m_retries = Obs.Metrics.counter "runtime.pool.worker_retries"
let m_shed = Obs.Metrics.counter "runtime.pool.shed"

type completion = {
  id : string;
  attempts : int;
  outcome : outcome;
}

type pending = {
  p_id : string;
  p_thunk : unit -> (string, string) result;
  p_attempts : int; (* attempts already consumed *)
  p_backoff : Backoff.t;
  p_ready_at : float; (* real-clock time before which it must wait *)
  p_limits : Supervisor.limits; (* per-task resource envelope *)
}

type running = {
  r_worker : Supervisor.t;
  r_pending : pending;
}

type t = {
  jobs : int;
  max_queue : int;
  max_retries : int;
  limits : Supervisor.limits;
  backoff : Backoff.t;
  should_stop : unit -> bool;
  on_complete : completion -> unit;
  mutable queue : pending list; (* waiting, oldest first *)
  mutable running : running list;
  mutable completions : completion list; (* newest first *)
  mutable shed_count : int;
}

let real_now () = Unix.gettimeofday ()

let create ?(jobs = 2) ?max_queue ?(max_retries = 2) ?backoff
    ?(limits = Supervisor.default_limits)
    ?(should_stop = fun () -> Shutdown.requested ())
    ?(on_complete = fun _ -> ()) () =
  let jobs = max 1 jobs in
  {
    jobs;
    max_queue = (match max_queue with Some q -> max 1 q | None -> 64 * jobs);
    max_retries = max 0 max_retries;
    limits;
    backoff =
      (match backoff with Some b -> b | None -> Backoff.create ~seed:1 ());
    should_stop;
    on_complete;
    queue = [];
    running = [];
    completions = [];
    shed_count = 0;
  }

let in_flight t = List.length t.running
let queued t = List.length t.queue

let observe_depths t =
  Obs.Metrics.set g_queue_depth (float_of_int (queued t));
  Obs.Metrics.set g_in_flight (float_of_int (in_flight t))

let complete t c =
  t.completions <- c :: t.completions;
  t.on_complete c

let submit t ?limits ~id thunk =
  if queued t >= t.max_queue then begin
    (* Load shedding: a full queue refuses new work instead of letting
       the backlog grow without bound. The shed is still recorded so
       accounting stays exact. *)
    t.shed_count <- t.shed_count + 1;
    Obs.Metrics.incr m_shed;
    complete t { id; attempts = 0; outcome = Shed };
    `Shed
  end
  else begin
    t.queue <-
      t.queue
      @ [
          {
            p_id = id;
            p_thunk = thunk;
            p_attempts = 0;
            p_backoff = t.backoff;
            p_ready_at = neg_infinity;
            p_limits = Option.value limits ~default:t.limits;
          };
        ];
    observe_depths t;
    `Accepted
  end

let launch t p =
  let worker = Supervisor.spawn ~label:p.p_id p.p_limits p.p_thunk in
  t.running <- { r_worker = worker; r_pending = p } :: t.running

(* One scheduling step: reap finished workers (retrying retryable
   verdicts with backoff), then fill free slots from the queue. Never
   blocks longer than the select tick. *)
let pump t =
  let still_running = ref [] in
  List.iter
    (fun r ->
      match Supervisor.service r.r_worker with
      | None -> still_running := r :: !still_running
      | Some verdict -> (
        let p = r.r_pending in
        let attempts = p.p_attempts + 1 in
        match verdict with
        | Supervisor.Completed (Ok payload) ->
          complete t { id = p.p_id; attempts; outcome = Done payload }
        | Supervisor.Completed (Error msg) ->
          complete t { id = p.p_id; attempts; outcome = Failed msg }
        | (Supervisor.Exited _ | Supervisor.Signaled _ | Supervisor.Hung _
          | Supervisor.Timed_out _) as v ->
          if attempts <= t.max_retries && not (t.should_stop ()) then begin
            Obs.Metrics.incr m_retries;
            let delay, backoff = Backoff.next p.p_backoff in
            t.queue <-
              t.queue
              @ [
                  {
                    p with
                    p_attempts = attempts;
                    p_backoff = backoff;
                    p_ready_at = real_now () +. delay;
                  };
                ]
          end
          else
            complete t
              {
                id = p.p_id;
                attempts;
                outcome = Failed (Supervisor.verdict_to_string v);
              }))
    t.running;
  t.running <- !still_running;
  if not (t.should_stop ()) then begin
    let now = real_now () in
    let rec fill () =
      if in_flight t < t.jobs then
        match
          List.partition (fun p -> p.p_ready_at <= now) t.queue
        with
        | [], _ -> ()
        | ready :: rest_ready, waiting ->
          t.queue <- rest_ready @ waiting;
          launch t ready;
          fill ()
    in
    fill ()
  end;
  observe_depths t

let tick t =
  let fds = List.concat_map (fun r -> Supervisor.wait_fds r.r_worker) t.running in
  (try ignore (Unix.select fds [] [] 0.02)
   with Unix.Unix_error (Unix.EINTR, _, _) -> ());
  pump t

(* Graceful drain: stop launching, let in-flight workers finish (their
   own deadlines and the watchdog still apply), and return what never
   ran so the caller can report it. *)
let drain t =
  pump t;
  while in_flight t > 0 do
    tick t
  done;
  let not_run = List.map (fun p -> p.p_id) t.queue in
  t.queue <- [];
  (List.rev t.completions, not_run)

let shed_count t = t.shed_count

type batch = {
  completions : completion list; (* completion order *)
  not_run : string list; (* drained before launch (graceful stop) *)
}

let run_list ?jobs ?max_retries ?backoff ?limits ?should_stop ?on_complete tasks
    =
  let t =
    create ?jobs
      ~max_queue:(max 1 (List.length tasks))
      ?max_retries ?backoff ?limits ?should_stop ?on_complete ()
  in
  List.iter (fun (id, thunk) -> ignore (submit t ~id thunk)) tasks;
  (* Run until everything completed, or a stop was requested and the
     in-flight tail has drained. *)
  let rec loop () =
    pump t;
    if in_flight t > 0 || (queued t > 0 && not (t.should_stop ())) then begin
      tick t;
      loop ()
    end
  in
  loop ();
  let completions, not_run = drain t in
  { completions; not_run }

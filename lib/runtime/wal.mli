(** Segmented, CRC-framed append-only write-ahead log.

    The log is a directory of segment files ([wal-<lsn>.seg], named by
    the log sequence number of their first record) plus optional
    snapshot files ([snap-<lsn>.snap]). Every record is framed with a
    magic string, its LSN, its payload length, and a CRC-32 of the
    payload, so recovery can tell a complete record from the torn tail
    a crash (or power loss) leaves behind.

    Durability contract: a record is durable once {!append} has
    returned under the {!Per_record} policy, or once {!sync} has
    returned under {!Group_commit}. "Acked implies durable" at a higher
    layer means: do not acknowledge an operation to a client before the
    corresponding append (and, for group commit, sync) has returned.

    Recovery ({!open_dir}) loads the newest CRC-valid snapshot (corrupt
    snapshots fall back to older ones), then scans segments in LSN
    order validating every frame. The first invalid frame marks the end
    of the durable prefix: the segment is truncated there and any later
    segments are dropped. Records with LSNs at or below the snapshot
    are skipped during replay; {!snapshot} deletes segments wholly
    covered by the snapshot (compaction) using {!Atomic_file} so a
    crash mid-snapshot never loses the previous one. *)

type t

type fsync_policy =
  | Per_record  (** fsync before every append returns (default). *)
  | Group_commit of float
      (** fsync at most every [interval] seconds; appends inside the
          window are buffered by the OS and may be lost on a crash
          until {!sync} returns. The throughput/durability tradeoff is
          the caller's to surface. *)

type recovery = {
  snapshot : (int * string) option;
      (** Newest valid snapshot: (covered LSN, payload). *)
  records : (int * string) list;
      (** Durable records after the snapshot, in LSN order. *)
  truncated_bytes : int;
      (** Torn-tail bytes discarded from the last valid segment. *)
  dropped_segments : int;
      (** Whole segments discarded after a mid-log corruption. *)
  corrupt_snapshots : int;
      (** Snapshot files that failed CRC/format validation. *)
}

val open_dir :
  ?fsync:fsync_policy ->
  ?segment_bytes:int ->
  string ->
  (t * recovery, Error.t) result
(** Open (creating if needed) the log directory, run recovery, and
    position the log for appending after the durable prefix.
    [segment_bytes] (default 4 MiB) bounds a segment before rotation.
    Fails with [Error.Corrupt] when the surviving segments do not
    reach back to the chosen snapshot's LSN + 1 — an LSN hole means
    acked records were lost, and replaying across it would silently
    diverge. *)

val append : t -> string -> (int, Error.t) result
(** Append one record and return its LSN. Under {!Per_record} the
    record is durable on return; under {!Group_commit} it is durable
    only after the next {!sync} (explicit or policy-triggered). *)

val sync : t -> (unit, Error.t) result
(** Force an fsync of buffered appends. No-op when clean. *)

val maybe_sync : t -> (unit, Error.t) result
(** Fsync buffered appends iff the {!Group_commit} interval has
    elapsed since the last sync (immediately when dirty under
    {!Per_record}). {!append} only syncs opportunistically when a
    later append arrives, so callers must drive this from their event
    loop to bound the durability window across traffic pauses. *)

val dirty : t -> bool
(** Whether appends are buffered but not yet fsynced. *)

val snapshot : t -> string -> (unit, Error.t) result
(** Atomically persist [payload] as a snapshot covering every record
    appended so far, then compact. All but the two newest snapshot
    files are deleted; segments are deleted only when wholly covered
    by the {e older} retained snapshot, so a fallback from a newest
    snapshot later found corrupt never meets an LSN hole. The log
    stays open for appending. *)

val last_lsn : t -> int
(** LSN of the most recent record (0 when the log is empty). *)

val snapshot_lsn : t -> int
(** LSN covered by the newest valid snapshot (0 when none). *)

val segment_count : t -> int
(** Live segment files, including the one being appended to. *)

val close : t -> unit
(** Sync and close. Appending after [close] is an error. *)

(** Exponential retry backoff with deterministic, seed-injectable
    jitter.

    A pure state machine: [next] returns the delay for the current
    attempt and the advanced state, so schedules are values that can be
    stored, replayed, and property-tested. Every delay lies in
    [\[base, cap\]] — the jitter decorrelates concurrent retriers
    downward from the exponential envelope but never below [base]. *)

type t

val create :
  ?base:float ->
  ?cap:float ->
  ?multiplier:float ->
  ?jitter:float ->
  seed:int ->
  unit ->
  t
(** [base] (default 0.05 s) is the attempt-0 delay, [cap] (default
    5 s) the ceiling, [multiplier] (default 2) the exponential growth,
    [jitter] ∈ [\[0, 1\]] (default 0.5) the fraction of the envelope
    randomised away. Equal seeds produce equal schedules. *)

val delay : t -> float
(** Delay for the current attempt, in [\[base, cap\]]. Deterministic
    in (seed, attempt). *)

val next : t -> float * t
(** [delay t] paired with the state advanced to the next attempt. *)

val attempt : t -> int
(** Zero-based attempt counter. *)

val reset : t -> t
(** Back to attempt 0 (e.g. after a success). *)

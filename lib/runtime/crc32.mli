(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over strings.

    Used to checksum checkpoint payloads so bit flips and truncation
    are detected before any parameter is mutated. *)

val string : string -> int
(** Checksum of a whole string, in [0, 2^32). *)

val update : int -> string -> int
(** Incrementally extend a checksum ([update 0 s = string s] holds
    only for the empty prefix; use [string] for one-shot use). *)

val to_hex : int -> string
(** Fixed-width lowercase 8-digit hex. *)

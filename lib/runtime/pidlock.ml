let pid_alive pid =
  if pid <= 0 then false
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception Unix.Unix_error (Unix.EPERM, _, _) ->
      (* Exists but is not ours to signal: definitely alive. *)
      true
    | exception _ -> false

let read_pid path =
  match Atomic_file.read path with
  | Error _ -> None
  | Ok s -> int_of_string_opt (String.trim s)

let acquire path =
  let stale_swept =
    match read_pid path with
    | Some pid when pid_alive pid && pid <> Unix.getpid () ->
      Some
        (Error.Invalid_state
           {
             op = "Pidlock.acquire";
             state = "locked";
             detail =
               Printf.sprintf "%s names live process %d; refusing to start"
                 path pid;
           })
    | Some _ | None ->
      (* Missing, unparseable, or naming a dead process: sweep it. *)
      (try Sys.remove path with Sys_error _ -> ());
      None
  in
  match stale_swept with
  | Some e -> Error e
  | None -> Atomic_file.write ~fsync:false path (string_of_int (Unix.getpid ()))

let release path =
  match read_pid path with
  | Some pid when pid = Unix.getpid () -> (
    try Sys.remove path with Sys_error _ -> ())
  | Some _ | None -> ()

let sweep_socket path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> false
  | exception _ -> false
  | st ->
    if st.Unix.st_kind = Unix.S_SOCK then begin
      (try Sys.remove path with Sys_error _ -> ());
      true
    end
    else false

(** Deterministic, seeded fault injection.

    Recovery code that is never executed is recovery code that does not
    work. Each fragile site in the runtime asks [fires point] at the
    moment it could fail; when the process-wide injector is armed for
    that point the site misbehaves in a controlled way (tears a write,
    poisons a gradient, raises from inference, crashes an instance).
    Disarmed — the default — every query is false and costs one branch.

    Firing is deterministic in the arming seed, so every fault scenario
    replays exactly. *)

type point =
  | Torn_checkpoint_write
      (** Checkpoint.save writes a truncated file directly to the
          destination, simulating power loss without atomic rename. *)
  | Checkpoint_bit_flip
      (** Checkpoint.save flips one payload byte after checksumming. *)
  | Poisoned_gradient
      (** Train.fit receives a NaN gradient after backward. *)
  | Inference_failure
      (** Selector's model call raises. *)
  | Instance_crash
      (** Runner's protected solve raises before solving. *)
  | Worker_crash
      (** Supervisor's forked worker SIGKILLs itself mid-solve. The
          decision is taken in the parent before the fork so the
          deterministic stream and limit counters live in one
          process. *)
  | Worker_hang
      (** Supervisor's forked worker stops heartbeating and sleeps —
          the watchdog must detect and reap it. Decided pre-fork like
          {!Worker_crash}. *)
  | Breaker_trip
      (** Selector's circuit breaker is forced open. *)
  | Inprocess_abort
      (** The solver's inprocessing pass raises mid-vivification,
          simulating a crash during in-place clause surgery. The
          partially emitted DRUP prefix must stay checkable and a fresh
          solve must recover. *)
  | Wal_torn_append
      (** Wal.append writes only a prefix of the framed record and then
          raises, simulating a crash (or full disk) mid-write. Recovery
          must truncate the torn tail and keep the exact durable
          prefix; the handle is poisoned against further appends. *)
  | Wal_crash_before_fsync
      (** Wal.append writes the complete record but raises before the
          fsync, simulating a crash in the window where the record may
          or may not survive. The caller must not ack the op; a client
          retry with the same idempotency key must be exactly-once
          whether or not the record made it to disk. *)
  | Wal_snapshot_crash
      (** Wal.snapshot writes a torn snapshot file straight to its
          destination (no atomic rename) and raises, simulating a crash
          mid-compaction. Recovery must reject the corrupt snapshot and
          fall back to an older one plus segment replay. *)
  | Share_torn_frame
      (** A portfolio worker truncates the clause batch inside its
          export frame and drops out of sharing, simulating a torn
          write on the exchange pipe. The parent must drop and count
          the torn batch; the worker keeps solving solo. *)
  | Portfolio_worker_kill
      (** The portfolio parent SIGKILLs one worker mid-exchange (while
          it is blocked awaiting imports). Decided in the parent like
          {!Worker_crash}; the portfolio must drop the worker from the
          barrier and still return a correct verdict. *)

val all : point list
val name : point -> string
val of_name : string -> point option

val arm : seed:int -> ?rate:float -> ?limit:int -> point list -> unit
(** Arm the injector for the given points. [rate] (default 1.0) is the
    per-query firing probability; [limit] (default unlimited) caps the
    number of fires per point. Re-arming replaces the previous state. *)

val disarm : unit -> unit
(** Return to the fault-free default. *)

val armed : point -> bool
(** Whether the injector is armed for this point (regardless of rate
    or remaining budget). *)

val fires : point -> bool
(** Ask whether the fault fires now; advances the point's deterministic
    stream and consumes one unit of its limit when it does. *)

val fired_count : point -> int
(** How many times the point has fired since arming. *)

(* Table-driven CRC-32; ints stay within 32 bits so the 63-bit native
   int is plenty. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s =
  let t = Lazy.force table in
  let crc = ref (crc lxor 0xffffffff) in
  String.iter
    (fun ch -> crc := t.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xffffffff

let string s = update 0 s

let to_hex crc = Printf.sprintf "%08x" (crc land 0xffffffff)

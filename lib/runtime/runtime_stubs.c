/* Minimal POSIX resource-limit stubs: the OCaml Unix library exposes
   neither setrlimit nor getrusage, and worker isolation needs a hard
   address-space cap installed in the forked child before any solver
   allocation happens. */

#include <caml/mlvalues.h>
#include <sys/resource.h>

CAMLprim value ns_set_mem_limit_mb(value mb)
{
    struct rlimit rl;
    rlim_t bytes = (rlim_t)Long_val(mb) * 1024 * 1024;
    rl.rlim_cur = bytes;
    rl.rlim_max = bytes;
    if (setrlimit(RLIMIT_AS, &rl) != 0)
        return Val_false;
    return Val_true;
}

CAMLprim value ns_max_rss_kb(value unit)
{
    struct rusage ru;
    (void)unit;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return Val_long(-1);
    return Val_long(ru.ru_maxrss);
}

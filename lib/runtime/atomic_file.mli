(** Crash-safe whole-file IO.

    [write] lands the full content or leaves the destination untouched:
    bytes go to a process-unique temp file in the same directory, are
    fsynced, and are renamed over the destination (atomic on POSIX). *)

val read : string -> (string, Error.t) result
(** Whole file contents, or a typed [Io] error. *)

val write : ?fsync:bool -> string -> string -> (unit, Error.t) result
(** Atomic replace. [fsync] (default true) forces the data to disk
    before the rename so a crash cannot leave a renamed-but-empty
    file, and fsyncs the parent directory after the rename so a crash
    immediately afterwards cannot lose the new directory entry. *)

val sweep_stale : string -> int
(** Remove [*.tmp.<pid>] files in the directory whose writing process
    is no longer alive (crashed before its rename); returns how many
    were removed. Safe to call concurrently with live writers — their
    pid is alive, so their tmp files are kept. *)

val write_raw : string -> string -> (unit, Error.t) result
(** Non-atomic direct write, used only by fault injection to simulate
    a torn (power-loss) write. *)

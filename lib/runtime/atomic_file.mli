(** Crash-safe whole-file IO.

    [write] lands the full content or leaves the destination untouched:
    bytes go to a process-unique temp file in the same directory, are
    fsynced, and are renamed over the destination (atomic on POSIX). *)

val read : string -> (string, Error.t) result
(** Whole file contents, or a typed [Io] error. *)

val write : ?fsync:bool -> string -> string -> (unit, Error.t) result
(** Atomic replace. [fsync] (default true) forces the data to disk
    before the rename so a crash cannot leave a renamed-but-empty
    file. *)

val write_raw : string -> string -> (unit, Error.t) result
(** Non-atomic direct write, used only by fault injection to simulate
    a torn (power-loss) write. *)

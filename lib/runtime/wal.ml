(* Segmented, CRC-framed write-ahead log.

   On disk a log directory holds:

     wal-<lsn12>.seg    segments of framed records; the filename is the
                        LSN of the segment's first record
     snap-<lsn12>.snap  snapshots written atomically (temp + rename)

   Each record is framed as

     "NSWAL1 " <lsn:12hex> " " <len:8hex> " " <crc:8hex> "\n" payload "\n"

   so recovery can validate every frame: magic, monotonically
   consecutive LSNs, exact payload length, CRC-32 of the payload. The
   first invalid frame is where the durable prefix ends — everything
   from there on is a torn tail (crash mid-write) or trailing garbage,
   and is truncated. *)

let record_magic = "NSWAL1 "
let snap_magic = "NSSNAP1 "
let record_header_len = 7 + 12 + 1 + 8 + 1 + 8 + 1
let snap_header_len = 8 + 12 + 1 + 8 + 1 + 8 + 1

type fsync_policy = Per_record | Group_commit of float

type recovery = {
  snapshot : (int * string) option;
  records : (int * string) list;
  truncated_bytes : int;
  dropped_segments : int;
  corrupt_snapshots : int;
}

type t = {
  dir : string;
  fsync : fsync_policy;
  segment_bytes : int;
  mutable fd : Unix.file_descr;
  mutable seg_size : int; (* bytes in the current segment *)
  mutable seg_records : int; (* records in the current segment *)
  mutable segs : (int * string) list; (* (start lsn, path), ascending *)
  mutable next_lsn : int;
  mutable snap_lsn : int;
  mutable dirty : bool;
  mutable last_sync : float;
  mutable broken : bool; (* poisoned by a torn append *)
  mutable closed : bool;
}

(* --- small helpers ------------------------------------------------------ *)

let io ~dir ~op message = Error.Io { path = dir; op; message }

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let rec ensure_dir d =
  if d <> Filename.dirname d && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let is_hex c = match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false

(* Fixed-width lowercase hex field, or None. *)
let hex_field s off len =
  if off + len > String.length s then None
  else begin
    let ok = ref true in
    for i = off to off + len - 1 do
      if not (is_hex s.[i]) then ok := false
    done;
    if !ok then int_of_string_opt ("0x" ^ String.sub s off len) else None
  end

let seg_name lsn = Printf.sprintf "wal-%012d.seg" lsn
let snap_name lsn = Printf.sprintf "snap-%012d.snap" lsn

(* "wal-000000000017.seg" -> Some 17 (and the snap equivalent). *)
let parse_numbered ~prefix ~suffix name =
  let pl = String.length prefix and sl = String.length suffix in
  let n = String.length name in
  if
    n = pl + 12 + sl
    && String.sub name 0 pl = prefix
    && String.sub name (n - sl) sl = suffix
  then
    let digits = String.sub name pl 12 in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then
      int_of_string_opt digits
    else None
  else None

let frame_record ~lsn payload =
  Printf.sprintf "%s%012x %08x %08x\n%s\n" record_magic lsn
    (String.length payload) (Crc32.string payload) payload

(* --- segment scanning --------------------------------------------------- *)

(* Validate frames sequentially from [text]. Returns the records in
   order, the byte offset of the end of the last valid frame, and the
   next expected LSN. Stops (without raising) at the first invalid
   frame: bad magic, non-consecutive LSN, short payload, missing
   terminator, or CRC mismatch. *)
let scan_segment ~expected_lsn text =
  let n = String.length text in
  let records = ref [] in
  let expected = ref expected_lsn in
  let off = ref 0 in
  let good = ref 0 in
  let continue = ref true in
  while !continue do
    if !off + record_header_len > n then continue := false
    else if String.sub text !off 7 <> record_magic then continue := false
    else begin
      match
        ( hex_field text (!off + 7) 12,
          text.[!off + 19],
          hex_field text (!off + 20) 8,
          text.[!off + 28],
          hex_field text (!off + 29) 8,
          text.[!off + 37] )
      with
      | Some lsn, ' ', Some len, ' ', Some crc, '\n'
        when lsn = !expected && !off + record_header_len + len + 1 <= n -> (
        let payload = String.sub text (!off + record_header_len) len in
        if
          text.[!off + record_header_len + len] = '\n'
          && Crc32.string payload = crc
        then begin
          records := (lsn, payload) :: !records;
          off := !off + record_header_len + len + 1;
          good := !off;
          incr expected
        end
        else continue := false)
      | _ -> continue := false
    end
  done;
  (List.rev !records, !good, !expected)

let load_snapshot path =
  match Atomic_file.read path with
  | Error _ -> None
  | Ok text ->
    if
      String.length text >= snap_header_len
      && String.sub text 0 8 = snap_magic
      && text.[snap_header_len - 1] = '\n'
    then
      match
        (hex_field text 8 12, hex_field text 21 8, hex_field text 30 8)
      with
      | Some lsn, Some len, Some crc
        when String.length text = snap_header_len + len ->
        let payload = String.sub text snap_header_len len in
        if Crc32.string payload = crc then Some (lsn, payload) else None
      | _ -> None
    else None

(* --- open + recovery ---------------------------------------------------- *)

let open_dir ?(fsync = Per_record) ?(segment_bytes = 4 * 1024 * 1024) dir =
  match
    ensure_dir dir;
    ignore (Atomic_file.sweep_stale dir);
    let entries = Sys.readdir dir in
    let segs = ref [] and snaps = ref [] in
    Array.iter
      (fun name ->
        match parse_numbered ~prefix:"wal-" ~suffix:".seg" name with
        | Some lsn -> segs := (lsn, Filename.concat dir name) :: !segs
        | None -> (
          match parse_numbered ~prefix:"snap-" ~suffix:".snap" name with
          | Some lsn -> snaps := (lsn, Filename.concat dir name) :: !snaps
          | None -> ()))
      entries;
    let segs = List.sort compare !segs in
    let snaps = List.sort (fun (a, _) (b, _) -> compare b a) !snaps in
    (* Newest CRC-valid snapshot wins; corrupt ones are counted and
       skipped (a crash mid-snapshot leaves exactly this debris). *)
    let corrupt_snapshots = ref 0 in
    let snapshot =
      List.fold_left
        (fun acc (_, path) ->
          match acc with
          | Some _ -> acc
          | None -> (
            match load_snapshot path with
            | Some s -> Some s
            | None ->
              incr corrupt_snapshots;
              None))
        None snaps
    in
    let snap_lsn = match snapshot with Some (l, _) -> l | None -> 0 in
    (* Scan segments in order; the first invalid frame ends the durable
       prefix. The segment holding it is truncated there and every
       later segment is dropped. *)
    let records = ref [] in
    let truncated_bytes = ref 0 in
    let dropped_segments = ref 0 in
    let live_segs = ref [] in
    let expected = ref (-1) in
    let torn = ref false in
    List.iter
      (fun (start, path) ->
        if !torn then begin
          incr dropped_segments;
          try Sys.remove path with Sys_error _ -> ()
        end
        else begin
          (* Across a segment boundary the LSNs must stay consecutive;
             the first surviving segment anchors the sequence. *)
          if !expected >= 0 && start <> !expected then torn := true;
          if !torn then begin
            incr dropped_segments;
            try Sys.remove path with Sys_error _ -> ()
          end
          else
            let text =
              match Atomic_file.read path with Ok t -> t | Error _ -> ""
            in
            let recs, good, next = scan_segment ~expected_lsn:start text in
            records := List.rev_append recs !records;
            expected := next;
            if good < String.length text then begin
              torn := true;
              truncated_bytes := !truncated_bytes + (String.length text - good);
              if good = 0 && recs = [] then (
                try Sys.remove path with Sys_error _ -> ())
              else begin
                Unix.truncate path good;
                live_segs := (start, path) :: !live_segs
              end
            end
            else if String.length text = 0 && recs = [] then (
              (* An empty leftover segment (rotation then crash)
                 carries no records; drop it. *)
              try Sys.remove path with Sys_error _ -> ())
            else live_segs := (start, path) :: !live_segs
        end)
      segs;
    let records = List.rev !records in
    let last_record_lsn =
      match records with [] -> 0 | _ -> fst (List.nth records (List.length records - 1))
    in
    let next_lsn = 1 + max snap_lsn last_record_lsn in
    let live_segs = List.rev !live_segs in
    (* A surviving-segment chain that starts above snap_lsn + 1 means
       records between the snapshot and the chain were deleted — e.g.
       the newer snapshot that justified compacting them is itself the
       corrupt one we just skipped. Replaying across that hole would
       silently lose acked state: refuse loudly instead. (With no valid
       snapshot at all, snap_lsn is 0 and the same test catches
       segments that no longer reach back to LSN 1.) *)
    (match live_segs with
    | (first_start, _) :: _ when first_start > snap_lsn + 1 ->
      Error.raise_
        (Error.Corrupt
           {
             path = dir;
             detail =
               Printf.sprintf
                 "wal: records %d..%d missing between snapshot and first \
                  surviving segment"
                 (snap_lsn + 1) (first_start - 1);
           })
    | _ -> ());
    (* Open the tail segment for appending (creating a fresh one when
       nothing survived recovery). *)
    let seg_start, seg_path, seg_size, seg_records, segs =
      match List.rev live_segs with
      | (start, path) :: _ ->
        let size = (Unix.stat path).Unix.st_size in
        let count =
          List.length (List.filter (fun (l, _) -> l >= start) records)
        in
        (start, path, size, count, live_segs)
      | [] ->
        let path = Filename.concat dir (seg_name next_lsn) in
        (next_lsn, path, 0, 0, [ (next_lsn, path) ])
    in
    ignore seg_start;
    let fd =
      Unix.openfile seg_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let t =
      {
        dir;
        fsync;
        segment_bytes = max 4096 segment_bytes;
        fd;
        seg_size;
        seg_records;
        segs;
        next_lsn;
        snap_lsn;
        dirty = false;
        last_sync = Unix.gettimeofday ();
        broken = false;
        closed = false;
      }
    in
    let replay = List.filter (fun (l, _) -> l > snap_lsn) records in
    ( t,
      {
        snapshot;
        records = replay;
        truncated_bytes = !truncated_bytes;
        dropped_segments = !dropped_segments;
        corrupt_snapshots = !corrupt_snapshots;
      } )
  with
  | v -> Ok v
  | exception Error.Runtime_error err -> Error err
  | exception e ->
    Error (io ~dir ~op:"wal-open" (Printexc.to_string e))

(* --- appending ---------------------------------------------------------- *)

let do_fsync t =
  Unix.fsync t.fd;
  t.dirty <- false;
  t.last_sync <- Unix.gettimeofday ()

let sync t =
  if t.closed then Error (io ~dir:t.dir ~op:"wal-sync" "log closed")
  else
    match if t.dirty then do_fsync t with
    | () -> Ok ()
    | exception e -> Error (io ~dir:t.dir ~op:"wal-sync" (Printexc.to_string e))

let dirty t = t.dirty

(* [append] only fsyncs opportunistically when a later append arrives;
   callers drive this from their event loop so a traffic pause cannot
   leave acked-but-unsynced records behind past the configured
   interval. *)
let maybe_sync t =
  match t.fsync with
  | Group_commit interval
    when t.dirty && (not t.closed)
         && Unix.gettimeofday () -. t.last_sync >= interval ->
    sync t
  | Per_record when t.dirty && not t.closed -> sync t
  | _ -> Ok ()

let rotate_if_full t =
  if t.seg_records > 0 && t.seg_size >= t.segment_bytes then begin
    if t.dirty then do_fsync t;
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    let path = Filename.concat t.dir (seg_name t.next_lsn) in
    t.fd <-
      Unix.openfile path
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND ]
        0o644;
    t.seg_size <- 0;
    t.seg_records <- 0;
    t.segs <- t.segs @ [ (t.next_lsn, path) ]
  end

let append t payload =
  if t.closed then Error (io ~dir:t.dir ~op:"wal-append" "log closed")
  else if t.broken then
    Error (io ~dir:t.dir ~op:"wal-append" "log poisoned by a torn append")
  else
    match
      rotate_if_full t;
      let lsn = t.next_lsn in
      let record = frame_record ~lsn payload in
      if Fault.fires Fault.Wal_torn_append then begin
        (* Crash mid-write: a prefix of the frame reaches the file and
           the handle is unusable, exactly like a process death. *)
        let torn = max 1 (String.length record / 2) in
        (try write_all t.fd record 0 torn with _ -> ());
        t.broken <- true;
        Error (Error.Injected_fault { point = Fault.name Fault.Wal_torn_append })
      end
      else begin
        write_all t.fd record 0 (String.length record);
        t.dirty <- true;
        t.seg_size <- t.seg_size + String.length record;
        t.seg_records <- t.seg_records + 1;
        t.next_lsn <- lsn + 1;
        if Fault.fires Fault.Wal_crash_before_fsync then
          (* The record is complete in the file but not fsynced: the
             caller must treat the op as un-acked. *)
          Error
            (Error.Injected_fault
               { point = Fault.name Fault.Wal_crash_before_fsync })
        else begin
          (match t.fsync with
          | Per_record -> do_fsync t
          | Group_commit interval ->
            if Unix.gettimeofday () -. t.last_sync >= interval then do_fsync t);
          Ok lsn
        end
      end
    with
    | r -> r
    | exception e -> Error (io ~dir:t.dir ~op:"wal-append" (Printexc.to_string e))

(* --- snapshots + compaction --------------------------------------------- *)

(* Compaction must leave the log recoverable from the OLDEST retained
   snapshot: the newest one can still be lost to bit rot, and falling
   back to the older one is only sound if every record after its LSN
   survives in segments. So: keep the two newest snapshots, then
   delete only segments wholly covered by the older of the two.
   Segment i's last record is (start of segment i+1) - 1, so it can go
   once that is at or below the retention LSN; the tail segment always
   stays. *)
let compact t =
  let snaps =
    Sys.readdir t.dir |> Array.to_list
    |> List.filter_map (fun n -> parse_numbered ~prefix:"snap-" ~suffix:".snap" n)
    |> List.sort (fun a b -> compare b a)
  in
  List.iteri
    (fun i lsn ->
      if i >= 2 then
        try Sys.remove (Filename.concat t.dir (snap_name lsn))
        with Sys_error _ -> ())
    snaps;
  let retain_lsn =
    match snaps with
    | _newest :: older :: _ -> min older t.snap_lsn
    | _ -> t.snap_lsn
  in
  let rec go = function
    | (_, p1) :: ((s2, _) :: _ as rest) when s2 - 1 <= retain_lsn ->
      (try Sys.remove p1 with Sys_error _ -> ());
      go rest
    | segs -> segs
  in
  t.segs <- go t.segs

let snapshot t payload =
  if t.closed then Error (io ~dir:t.dir ~op:"wal-snapshot" "log closed")
  else begin
    let lsn = t.next_lsn - 1 in
    let content =
      Printf.sprintf "%s%012x %08x %08x\n%s" snap_magic lsn
        (String.length payload) (Crc32.string payload) payload
    in
    let path = Filename.concat t.dir (snap_name lsn) in
    if Fault.fires Fault.Wal_snapshot_crash then begin
      (* Crash mid-snapshot: a torn file lands at the destination
         without the atomic rename. Recovery must reject it. *)
      ignore
        (Atomic_file.write_raw path
           (String.sub content 0 (String.length content / 2)));
      Error (Error.Injected_fault { point = Fault.name Fault.Wal_snapshot_crash })
    end
    else
      (* The snapshot must never claim more than is durable in the
         segments it is about to replace. *)
      match sync t with
      | Error e -> Error e
      | Ok () -> (
        match Atomic_file.write path content with
        | Error e -> Error e
        | Ok () ->
          t.snap_lsn <- lsn;
          (match compact t with () -> () | exception _ -> ());
          Ok ())
  end

(* --- accessors ---------------------------------------------------------- *)

let last_lsn t = t.next_lsn - 1
let snapshot_lsn t = t.snap_lsn
let segment_count t = List.length t.segs

let close t =
  if not t.closed then begin
    (try if t.dirty then do_fsync t with _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    t.closed <- true
  end

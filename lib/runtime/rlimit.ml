external set_memory_limit_mb : int -> bool = "ns_set_mem_limit_mb"
external max_rss_kb : unit -> int = "ns_max_rss_kb"

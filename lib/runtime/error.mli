(** Structured error taxonomy for the fault-tolerance layer.

    Every recoverable failure in the runtime — checkpoint IO, parse
    corruption, numeric divergence during training, budget exhaustion,
    and deliberately injected faults — is classified here so callers can
    match on the kind instead of scraping [Failure] strings. *)

type t =
  | Io of { path : string; op : string; message : string }
      (** A system-level IO failure while performing [op] on [path]. *)
  | Parse of { source : string; message : string }
      (** Syntactically malformed input ([source] names the file or
          producer). *)
  | Corrupt of { path : string; detail : string }
      (** Well-formed enough to read but semantically damaged: CRC
          mismatch, truncated payload, duplicate or missing blocks. *)
  | Numeric_divergence of { context : string; detail : string }
      (** A NaN/Inf sentinel tripped (loss, gradient norm, model
          output). *)
  | Budget_exhausted of { context : string; detail : string }
      (** A propagation, conflict, or wall-clock budget ran out. *)
  | Injected_fault of { point : string }
      (** A seeded {!Fault} fired; only seen under fault injection. *)
  | Invalid_state of { op : string; state : string; detail : string }
      (** An API call that is illegal in the component's current state
          (e.g. mutating an incremental solver from inside its own
          [solve], or referencing a variable never introduced). *)

exception Runtime_error of t
(** The one exception the runtime layer raises. *)

val raise_ : t -> 'a
(** Raise [Runtime_error]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_exn : context:string -> exn -> t
(** Classify an arbitrary exception: [Runtime_error] unwraps,
    [Sys_error] becomes [Io], everything else an [Io] with the printed
    exception as message. Never call on asynchronous exceptions you
    intend to re-raise. *)

val protect : context:string -> (unit -> 'a) -> ('a, t) result
(** Run a thunk, converting any raised exception via {!of_exn}. *)

(** Wall-clock timing for runtime accounting.

    The paper's Sec. 5.4 charges model inference at wall-clock time;
    [Sys.time] (CPU time) under-reports whenever the process sleeps or
    shares the core. [now] reads the system wall clock and is
    monotonized: a backwards NTP step never makes an elapsed interval
    negative. *)

val wall : unit -> float
(** Raw wall-clock seconds since the epoch (or the injected source). *)

val set_source : (unit -> float) -> unit
(** Replace the time source behind [wall]/[now] — e.g. a counter that
    steps a fixed amount per call, making measured durations
    deterministic for reproducibility tests. Forked children inherit
    the installed source. Supervision timing (watchdogs, deadlines)
    reads the real clock directly and is unaffected. *)

val use_wall_clock : unit -> unit
(** Restore [Unix.gettimeofday] as the source. *)

val now : unit -> float
(** Monotonized wall clock: never decreases within the process. *)

val elapsed_since : float -> float
(** [elapsed_since t0] is [max 0 (now () - t0)]. *)

val timed : (unit -> 'a) -> 'a * float
(** Run a thunk and return its result with its wall-clock duration. *)

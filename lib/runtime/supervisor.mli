(** OS-level worker isolation for solver runs.

    [spawn] forks the given thunk into a worker process. The worker
    reports its result over a pipe (string payload, [Ok]/[Error]
    tagged); a second pipe carries heartbeats written from a SIGALRM
    interval timer, so even a worker deep in a compute loop keeps
    signalling liveness. The parent enforces:

    - an address-space cap installed via [setrlimit] in the child
      before user code runs, so a memory blow-up becomes the child's
      [Out_of_memory], not the campaign's;
    - a wall-clock deadline;
    - a heartbeat watchdog — silence longer than
      [hang_factor × heartbeat_interval] marks the worker hung.

    Deadline and watchdog violations escalate SIGTERM → (after
    [grace_seconds]) SIGKILL, and the worker is always reaped; a hung
    worker is never waited on forever.

    Supervision reads the real clock directly, so it keeps working
    when {!Clock} runs a fake source for deterministic measurements.

    Fault injection: {!Fault.Worker_crash} and {!Fault.Worker_hang}
    are consulted in the parent at [spawn] (keeping the deterministic
    stream in one process) and executed by the child, driving the real
    kill and watchdog paths. *)

type limits = {
  mem_limit_mb : int option;  (** Worker address-space cap. *)
  deadline_seconds : float option;  (** Wall-clock budget per worker. *)
  heartbeat_interval : float;  (** Child heartbeat period (s). *)
  hang_factor : float;
      (** Silence beyond [hang_factor × heartbeat_interval] is a hang. *)
  grace_seconds : float;  (** SIGTERM → SIGKILL escalation delay. *)
}

val default_limits : limits
(** No memory cap, no deadline, 0.25 s heartbeats, hang factor 2,
    0.5 s grace. *)

type verdict =
  | Completed of (string, string) result
      (** The worker ran the thunk; [Error] carries an application
          error or the text of an exception (e.g. [Out_of_memory]
          under the RSS cap). *)
  | Exited of int  (** Died with an exit status and no result. *)
  | Signaled of int  (** Killed by a signal it did not expect. *)
  | Hung of float  (** Watchdog reaped it after this much silence. *)
  | Timed_out of float  (** Deadline reaped it after this long. *)

val verdict_to_string : verdict -> string

val retryable : verdict -> bool
(** Crashes, hangs and timeouts are worth retrying; completed results
    (even errors) are deterministic application outcomes and are not. *)

type t
(** A live (or reaped) worker. *)

val spawn : ?label:string -> limits -> (unit -> (string, string) result) -> t
val pid : t -> int
val label : t -> string

val wait_fds : t -> Unix.file_descr list
(** Descriptors a caller may [select] on while multiplexing workers. *)

val service : t -> verdict option
(** Non-blocking supervision step: drain pipes, run watchdog and
    deadline checks, escalate kills, reap. [Some v] once the worker is
    finished (idempotent afterwards). *)

val abort : t -> unit
(** Begin SIGTERM → SIGKILL shutdown of a running worker. *)

val await : t -> verdict
(** Block (with timely watchdog ticks) until the worker finishes. *)

val run : ?label:string -> limits -> (unit -> (string, string) result) -> verdict
(** [spawn] + [await]. *)

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok s
  | exception e -> Error (Error.Io { path; op = "read"; message = Printexc.to_string e })

let write_fd fd content =
  let n = String.length content in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd content !written (n - !written)
  done

let write ?(fsync = true) path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_fd fd content;
        if fsync then Unix.fsync fd);
    Unix.rename tmp path
  with
  | () -> Ok ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error (Error.Io { path; op = "atomic-write"; message = Printexc.to_string e })

let write_raw path content =
  match
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content)
  with
  | () -> Ok ()
  | exception e ->
    Error (Error.Io { path; op = "raw-write"; message = Printexc.to_string e })

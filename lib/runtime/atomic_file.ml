let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok s
  | exception e -> Error (Error.Io { path; op = "read"; message = Printexc.to_string e })

let write_fd fd content =
  let n = String.length content in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd content !written (n - !written)
  done

(* Persist the rename itself: fsyncing the file makes its *contents*
   durable, but the new directory entry lives in the parent directory's
   data — until that is flushed, a crash right after the rename can
   still resurrect the old file (or none at all). *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write ?(fsync = true) path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_fd fd content;
        if fsync then Unix.fsync fd);
    Unix.rename tmp path;
    if fsync then fsync_dir (Filename.dirname path)
  with
  | () -> Ok ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error (Error.Io { path; op = "atomic-write"; message = Printexc.to_string e })

(* A writer that died between creating [path].tmp.[pid] and the rename
   leaves the tmp file behind forever. Each sweep removes tmp files
   whose writing process is demonstrably gone; live writers (including
   ourselves) are left alone. *)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM: alive, not ours *)

let stale_tmp_pid name =
  (* Matches "<base>.tmp.<pid>" and returns the pid. *)
  match String.rindex_opt name '.' with
  | None -> None
  | Some dot -> (
    match int_of_string_opt (String.sub name (dot + 1) (String.length name - dot - 1)) with
    | None -> None
    | Some pid ->
      let prefix = String.sub name 0 dot in
      if
        String.length prefix >= 4
        && String.sub prefix (String.length prefix - 4) 4 = ".tmp"
      then Some pid
      else None)

let sweep_stale dir =
  match Sys.readdir dir with
  | entries ->
    Array.fold_left
      (fun removed name ->
        match stale_tmp_pid name with
        | Some pid when pid <> Unix.getpid () && not (pid_alive pid) -> (
          match Sys.remove (Filename.concat dir name) with
          | () -> removed + 1
          | exception Sys_error _ -> removed)
        | Some _ | None -> removed)
      0 entries
  | exception Sys_error _ -> 0

let write_raw path content =
  match
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content)
  with
  | () -> Ok ()
  | exception e ->
    Error (Error.Io { path; op = "raw-write"; message = Printexc.to_string e })

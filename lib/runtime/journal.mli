(** Append-only JSONL persistence for partial experiment results.

    One flat JSON object per line; appends are flushed and fsynced so a
    killed campaign loses at most the line being written. [load]
    tolerates a torn final line (the normal signature of a SIGKILL) by
    dropping it and reporting the count, so resuming is always
    possible. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** Non-finite floats encode as [null]. *)
  | String of string

type record = (string * value) list

val append : string -> record -> (unit, Error.t) result
(** Append one record as a single line, creating the file if needed. *)

val load : string -> (record list * int, Error.t) result
(** All parseable records plus the number of dropped (malformed)
    lines. A missing file is an empty journal, not an error. *)

val encode : record -> string
(** One JSON object, no trailing newline. *)

val parse_line : string -> record option

(** Field accessors; [None] when absent or of the wrong kind. *)

val find_string : record -> string -> string option
val find_float : record -> string -> float option
(** Accepts [Int], [Float], and [Null] (as [nan]). *)

val find_int : record -> string -> int option
val find_bool : record -> string -> bool option

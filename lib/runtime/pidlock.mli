(** Pidfile-based single-instance locking with stale-artifact sweeping.

    A crashed server leaves two kinds of debris behind: a pidfile
    naming a process that no longer exists, and a Unix-domain socket
    path that [bind] will refuse to reuse. On startup the server calls
    {!acquire}, which distinguishes a live owner (refuse to start) from
    stale debris (sweep it and take over), and {!sweep_socket} for the
    socket path. Liveness is probed with [kill pid 0]: [ESRCH] means
    dead, [EPERM] means alive but owned by someone else (still a
    conflict). *)

val pid_alive : int -> bool
(** Is there a live process with this pid (signal-0 probe)? A process
    we lack permission to signal counts as alive. *)

val acquire : string -> (unit, Error.t) result
(** [acquire pidfile] claims single-instance ownership: writes our pid
    to [pidfile]. A pidfile naming a live process is a conflict
    ([Error Invalid_state]); a stale or unparseable pidfile is removed
    and claimed. *)

val release : string -> unit
(** Remove the pidfile if it still names this process. Never raises. *)

val sweep_socket : string -> bool
(** Remove a leftover Unix-domain socket path so [bind] can reuse it.
    Returns [true] when a stale socket was actually removed. Only
    unlinks sockets (and dangling paths [stat] rejects); refuses to
    delete regular files. Never raises. *)

type t =
  | Io of { path : string; op : string; message : string }
  | Parse of { source : string; message : string }
  | Corrupt of { path : string; detail : string }
  | Numeric_divergence of { context : string; detail : string }
  | Budget_exhausted of { context : string; detail : string }
  | Injected_fault of { point : string }
  | Invalid_state of { op : string; state : string; detail : string }

exception Runtime_error of t

let raise_ e = raise (Runtime_error e)

let to_string = function
  | Io { path; op; message } -> Printf.sprintf "io error: %s %S: %s" op path message
  | Parse { source; message } -> Printf.sprintf "parse error in %s: %s" source message
  | Corrupt { path; detail } -> Printf.sprintf "corrupt data in %S: %s" path detail
  | Numeric_divergence { context; detail } ->
    Printf.sprintf "numeric divergence in %s: %s" context detail
  | Budget_exhausted { context; detail } ->
    Printf.sprintf "budget exhausted in %s: %s" context detail
  | Injected_fault { point } -> Printf.sprintf "injected fault at %s" point
  | Invalid_state { op; state; detail } ->
    Printf.sprintf "invalid state for %s (state %s): %s" op state detail

let pp ppf e = Format.pp_print_string ppf (to_string e)

let of_exn ~context = function
  | Runtime_error e -> e
  | Sys_error msg -> Io { path = context; op = "sys"; message = msg }
  | Failure msg -> Io { path = context; op = "fail"; message = msg }
  | e -> Io { path = context; op = "exn"; message = Printexc.to_string e }

let protect ~context f =
  match f () with
  | v -> Ok v
  | exception e -> Error (of_exn ~context e)

(** Cooperative shutdown on SIGINT/SIGTERM.

    [install] replaces the default die-immediately behaviour with a
    flag that long-running loops poll at safe points (between campaign
    instances, at epoch boundaries) so they can flush journals and
    write a final checkpoint before exiting non-zero. The handler only
    sets the flag — all real work happens in the polling code. *)

val install : ?signals:int list -> unit -> unit
(** Install handlers (default SIGINT and SIGTERM). Re-installation is
    idempotent. *)

val uninstall : unit -> unit
(** Restore default handlers for whatever [install] replaced. *)

val requested : unit -> bool
(** Whether a shutdown signal has arrived. *)

val signal : unit -> int option
(** OS number of the first signal received, when known. *)

val exit_code : unit -> int
(** Conventional [128 + signal] exit status (1 when unknown). *)

val request : unit -> unit
(** Set the flag programmatically (tests, internal escalation). *)

val reset : unit -> unit
(** Clear the flag (tests). *)

type t = {
  base : float;
  cap : float;
  multiplier : float;
  jitter : float;
  seed : int;
  attempt : int;
}

let create ?(base = 0.05) ?(cap = 5.0) ?(multiplier = 2.0) ?(jitter = 0.5) ~seed
    () =
  let base = Float.max 1e-9 base in
  {
    base;
    cap = Float.max base cap;
    multiplier = Float.max 1.0 multiplier;
    jitter = Float.min 1.0 (Float.max 0.0 jitter);
    seed;
    attempt = 0;
  }

let attempt t = t.attempt

(* The jitter draw must depend only on (seed, attempt) so a retry
   schedule replays exactly from its seed: state carries no RNG, each
   attempt derives a fresh stream. *)
let unit_draw t =
  let rng = Util.Rng.create ((t.seed * 2_654_435_761) lxor (t.attempt * 40_503)) in
  Util.Rng.uniform rng 0.0 1.0

let delay t =
  let raw = Float.min t.cap (t.base *. (t.multiplier ** float_of_int t.attempt)) in
  (* Decorrelate retries downward from the exponential envelope while
     never dipping below [base]: delay ∈ [base, raw] ⊆ [base, cap]. *)
  let u = 1.0 -. (t.jitter *. unit_draw t) in
  t.base +. (u *. (raw -. t.base))

let next t = (delay t, { t with attempt = t.attempt + 1 })

let reset t = { t with attempt = 0 }

let source = ref Unix.gettimeofday

let wall () = !source ()

let set_source f = source := f

let use_wall_clock () = source := Unix.gettimeofday

let last = ref neg_infinity

let now () =
  let t = wall () in
  if t > !last then last := t;
  !last

let elapsed_since t0 = Float.max 0.0 (now () -. t0)

let timed f =
  let t0 = now () in
  let r = f () in
  (r, elapsed_since t0)

(* Signal state is two cells, written from the handler and polled at
   safe points (between instances, at epoch ends); handlers do nothing
   else, so they are safe wherever OCaml delivers signals. *)

let flag = ref false
let received = ref None

let requested () = !flag

let signal () = !received

let exit_code () = match !received with Some s -> 128 + s | None -> 1

let note s =
  flag := true;
  if !received = None then received := Some s

let installed = ref []

let install ?(signals = [ Sys.sigint; Sys.sigterm ]) () =
  installed := signals;
  List.iter
    (fun s ->
      (* [Sys.signal] numbers and [128 + n] exit codes both use the
         OS signal number, which [Sys.sigterm] etc. are not; translate
         through the only portable mapping the stdlib offers. *)
      let os_number =
        match s with
        | s when s = Sys.sigint -> 2
        | s when s = Sys.sigterm -> 15
        | s when s = Sys.sighup -> 1
        | _ -> 0
      in
      Sys.set_signal s (Sys.Signal_handle (fun _ -> note os_number)))
    signals

let uninstall () =
  List.iter (fun s -> Sys.set_signal s Sys.Signal_default) !installed;
  installed := []

let reset () =
  flag := false;
  received := None

let request () = note 0

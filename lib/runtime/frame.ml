let max_frame = 64 * 1024 * 1024

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let write fd payload =
  write_all fd (Printf.sprintf "%d\n%s" (String.length payload) payload)

type reader = {
  buf : Buffer.t;
  mutable bad : bool;
}

let create_reader () = { buf = Buffer.create 256; bad = false }

let feed r chunk ~len = if not r.bad then Buffer.add_subbytes r.buf chunk 0 len

let next r =
  if r.bad then None
  else
    let s = Buffer.contents r.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some nl -> (
      match int_of_string_opt (String.trim (String.sub s 0 nl)) with
      | None | Some 0 ->
        r.bad <- true;
        None
      | Some len when len < 0 || len > max_frame ->
        r.bad <- true;
        None
      | Some len ->
        if String.length s >= nl + 1 + len then begin
          let payload = String.sub s (nl + 1) len in
          Buffer.clear r.buf;
          Buffer.add_substring r.buf s (nl + 1 + len)
            (String.length s - nl - 1 - len);
          Some payload
        end
        else None)

let malformed r = r.bad

let read_into r fd =
  let chunk = Bytes.create 65536 in
  match Unix.read fd chunk 0 (Bytes.length chunk) with
  | 0 -> `Eof
  | n ->
    feed r chunk ~len:n;
    `Data
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    `Blocked
  | exception Unix.Unix_error _ -> `Eof

let max_frame = 64 * 1024 * 1024

(* A signal landing mid-write (SIGCHLD from a reaped worker, SIGALRM,
   a profiler tick) surfaces as EINTR; without the retry the exception
   escapes between two partial writes and tears the frame for every
   later message on the connection. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write fd payload =
  write_all fd (Printf.sprintf "%d\n%s" (String.length payload) payload)

type reader = {
  buf : Buffer.t;
  mutable bad : bool;
}

let create_reader () = { buf = Buffer.create 256; bad = false }

let feed r chunk ~len = if not r.bad then Buffer.add_subbytes r.buf chunk 0 len

(* Strict decimal length prefix: ASCII digits only (an optional
   trailing CR tolerates CRLF clients). [int_of_string_opt] would also
   accept hostile prefixes like "0x10", "1_000", "+5", or "- 3" — all
   of which desynchronise the framing between a lenient reader and any
   spec-faithful peer. Nine digits comfortably covers the 64 MiB cap
   without overflow. *)
let parse_length s =
  let s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
  in
  let n = String.length s in
  if n = 0 || n > 9 then None
  else if String.for_all (fun c -> c >= '0' && c <= '9') s then
    int_of_string_opt s
  else None

let next r =
  if r.bad then None
  else
    let s = Buffer.contents r.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some nl -> (
      match parse_length (String.sub s 0 nl) with
      | None | Some 0 ->
        r.bad <- true;
        None
      | Some len when len < 0 || len > max_frame ->
        r.bad <- true;
        None
      | Some len ->
        if String.length s >= nl + 1 + len then begin
          let payload = String.sub s (nl + 1) len in
          Buffer.clear r.buf;
          Buffer.add_substring r.buf s (nl + 1 + len)
            (String.length s - nl - 1 - len);
          Some payload
        end
        else None)

let malformed r = r.bad

let read_into r fd =
  let chunk = Bytes.create 65536 in
  match Unix.read fd chunk 0 (Bytes.length chunk) with
  | 0 -> `Eof
  | n ->
    feed r chunk ~len:n;
    `Data
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    `Blocked
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    (* Interrupted before any bytes moved: nothing read, not EOF — the
       caller's select loop will come back. *)
    `Blocked
  | exception Unix.Unix_error _ -> `Eof

(** Circuit breaker: fail fast instead of failing per-call.

    Closed (normal) counts consecutive failures; at
    [failure_threshold] it trips Open and every [allow] is refused
    without touching the protected resource. After [cooldown_seconds]
    the next observation moves it to Half-open, which admits trial
    calls: [half_open_trials] consecutive successes close it, a single
    failure re-opens it for another cooldown.

    The clock is injected at [create], so tests drive the state machine
    with a fake clock; transitions are monotone in that clock (an open
    breaker only ever moves towards closed as time advances, absent new
    failures). *)

type state = Closed | Open | Half_open

val state_name : state -> string

type config = {
  failure_threshold : int;  (** Consecutive failures that trip it. *)
  cooldown_seconds : float;  (** Open → half-open delay. *)
  half_open_trials : int;  (** Successes in half-open that close it. *)
}

val default_config : config
(** 5 failures, 30 s cooldown, 2 trial successes. *)

type t

val create : ?config:config -> now:(unit -> float) -> unit -> t

val state : t -> state
(** Current state; evaluates the cooldown edge against [now]. *)

val allow : t -> bool
(** Whether a call may proceed ([Closed] or [Half_open]). *)

val record_success : t -> unit
val record_failure : t -> unit

val force_open : t -> unit
(** Trip immediately (fault injection, administrative open). *)

val reset : t -> unit
(** Back to [Closed] with clean counters; [trip_count] is kept. *)

val trip_count : t -> int
(** Times the breaker has tripped open since creation. *)

val consecutive_failures : t -> int

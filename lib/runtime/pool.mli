(** Supervised worker pool for parallel campaigns.

    Tasks run in {!Supervisor} worker processes, at most [jobs] in
    flight. Retryable verdicts (crash, hang, deadline) are re-queued
    with {!Backoff} delays up to [max_retries] extra attempts;
    completed results — including application errors — are final. The
    waiting queue is bounded: a [submit] beyond [max_queue] is shed
    (refused and recorded) instead of growing the backlog.

    Graceful drain: when [should_stop] turns true (by default, a
    {!Shutdown} signal), no further worker is launched; in-flight
    workers finish under their own limits, their results are delivered
    to [on_complete] as usual, and tasks that never ran are returned
    as [not_run]. *)

type outcome =
  | Done of string  (** Worker payload. *)
  | Failed of string  (** Application error, or gave up after retries. *)
  | Shed  (** Refused at submit: queue full. *)

type completion = {
  id : string;
  attempts : int;  (** Worker launches consumed (0 when shed). *)
  outcome : outcome;
}

type t

val create :
  ?jobs:int ->
  ?max_queue:int ->
  ?max_retries:int ->
  ?backoff:Backoff.t ->
  ?limits:Supervisor.limits ->
  ?should_stop:(unit -> bool) ->
  ?on_complete:(completion -> unit) ->
  unit ->
  t
(** Defaults: 2 jobs, queue bound [64 × jobs], 2 retries, seed-1
    backoff, {!Supervisor.default_limits}, stop on {!Shutdown}. *)

val submit :
  t ->
  ?limits:Supervisor.limits ->
  id:string ->
  (unit -> (string, string) result) ->
  [ `Accepted | `Shed ]
(** [?limits] overrides the pool-wide resource envelope for this task
    only (per-request deadlines and memory caps); retries keep the
    override. *)

val pump : t -> unit
(** One non-blocking scheduling step: reap, retry, launch. *)

val drain : t -> completion list * string list
(** Block until in-flight workers finish (no new launches beyond what
    the queue admits before a stop); returns completions in completion
    order and the ids that never ran. *)

val in_flight : t -> int
val queued : t -> int
val shed_count : t -> int

type batch = {
  completions : completion list;  (** In completion order. *)
  not_run : string list;  (** Drained before launch (graceful stop). *)
}

val run_list :
  ?jobs:int ->
  ?max_retries:int ->
  ?backoff:Backoff.t ->
  ?limits:Supervisor.limits ->
  ?should_stop:(unit -> bool) ->
  ?on_complete:(completion -> unit) ->
  (string * (unit -> (string, string) result)) list ->
  batch
(** Run a whole task list to completion (or graceful stop). The queue
    bound is sized to the list, so nothing is shed. *)

type t = {
  mutable heap : int array;  (* heap slots -> variable *)
  mutable pos : int array;   (* variable -> heap slot, -1 if absent *)
  mutable act : float array; (* variable -> activity *)
  mutable num_vars : int;
  mutable len : int;
  mutable max_act : float;
}

let create ~num_vars =
  let heap = Array.init num_vars (fun i -> i + 1) in
  let pos = Array.make (num_vars + 1) (-1) in
  for i = 0 to num_vars - 1 do
    pos.(i + 1) <- i
  done;
  {
    heap;
    pos;
    act = Array.make (num_vars + 1) 0.0;
    num_vars;
    len = num_vars;
    max_act = 0.0;
  }

let mem t v = t.pos.(v) >= 0
let is_empty t = t.len = 0
let size t = t.len
let activity t v = t.act.(v)

let better t a b =
  (* Tie-break on the smaller variable index for determinism. *)
  t.act.(a) > t.act.(b) || (t.act.(a) = t.act.(b) && a < b)

let swap t i j =
  let vi = t.heap.(i) and vj = t.heap.(j) in
  t.heap.(i) <- vj;
  t.heap.(j) <- vi;
  t.pos.(vj) <- i;
  t.pos.(vi) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if better t t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let best = ref i in
  if left < t.len && better t t.heap.(left) t.heap.(!best) then best := left;
  if right < t.len && better t t.heap.(right) t.heap.(!best) then best := right;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let insert t v =
  if not (mem t v) then begin
    t.heap.(t.len) <- v;
    t.pos.(v) <- t.len;
    t.len <- t.len + 1;
    sift_up t (t.len - 1)
  end

let remove_max t =
  if t.len = 0 then raise Not_found;
  let v = t.heap.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.heap.(0) <- t.heap.(t.len);
    t.pos.(t.heap.(0)) <- 0;
    sift_down t 0
  end;
  t.pos.(v) <- -1;
  v

let bump t v inc =
  t.act.(v) <- t.act.(v) +. inc;
  if t.act.(v) > t.max_act then t.max_act <- t.act.(v);
  if mem t v then sift_up t t.pos.(v)

let rescale t factor =
  for v = 1 to Array.length t.act - 1 do
    t.act.(v) <- t.act.(v) *. factor
  done;
  t.max_act <- t.max_act *. factor

let decay_check t = t.max_act

(* Incremental variable introduction: extend the index range and insert
   every fresh variable at activity 0 so it is immediately decidable. *)
let grow t ~num_vars =
  if num_vars > t.num_vars then begin
    let grow_int src fill =
      let dst = Array.make (num_vars + 1) fill in
      Array.blit src 0 dst 0 (Array.length src);
      dst
    in
    t.heap <- grow_int t.heap 0 (* slots beyond len are scratch *);
    t.pos <- grow_int t.pos (-1);
    t.act <-
      (let dst = Array.make (num_vars + 1) 0.0 in
       Array.blit t.act 0 dst 0 (Array.length t.act);
       dst);
    for v = t.num_vars + 1 to num_vars do
      insert t v
    done;
    t.num_vars <- num_vars
  end

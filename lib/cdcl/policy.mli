(** Clause-deletion policies.

    A policy ranks reducible learned clauses at each database reduction;
    the lowest-ranked fraction is deleted. Ranking follows Figure 5 of
    the paper: metrics are packed most-significant-first into a single
    integer key, with [~x] denoting bitwise negation so that {e lower}
    glue / size yield {e higher} scores.

    - {!Default}: Kissat's scoring — glue first (lower is better), size
      as tie-break. Key layout [~glue | ~size].
    - {!Frequency}: the paper's new policy — the propagation-frequency
      criterion of Eq. 2 dominates, then glue, then size. Key layout
      [frequency | ~glue | ~size].
    - The remaining constructors are ablation policies used by the
      benchmark harness. *)

type t =
  | Default
  | Frequency of { alpha : float }
      (** [alpha] is the threshold factor of Eq. 2 (paper: 4/5). *)
  | Glue_only
  | Size_only
  | Activity  (** MiniSat-style: keep highest-activity clauses. *)
  | Random of int  (** Deterministic pseudo-random ranking from a seed. *)

val default_alpha : float
(** 0.8, the paper's empirical setting for Eq. 2. *)

val frequency_default : t
(** [Frequency {alpha = default_alpha}]. *)

type clause_info = {
  id : int;           (** Stable clause identifier. *)
  glue : int;         (** LBD at last update. *)
  size : int;         (** Literal count. *)
  activity : float;   (** Conflict-analysis participation score. *)
  frequency : int;    (** Eq. 2 count: #vars above the alpha threshold. *)
}

val clause_frequency :
  alpha:float -> f_max:int -> counts:int array -> lits:Cnf.Lit.t array -> int
(** [clause_frequency ~alpha ~f_max ~counts ~lits] evaluates Eq. 2:
    the number of literals in [lits] whose variable [v] has
    [counts.(v) > alpha * f_max]. Iterates the literals directly — no
    intermediate variable array. Returns 0 when [f_max = 0]. *)

val key : t -> clause_info -> int
(** Packed ranking key; higher means more valuable (kept longer).
    For [Activity] the float activity is mapped monotonically into the
    key. Total order within each policy. *)

val packed_key :
  t -> id:int -> glue:int -> size:int -> activity_bits:int -> frequency:int -> int
(** Exactly {!key}, but from unboxed scalars so the reduce pass builds
    its ranking array without allocating a {!clause_info} per
    candidate. [activity_bits] is the order-preserving integer encoding
    of the clause activity ({!Arena.activity_bits}); for every [info],
    [packed_key p ~id:info.id ~glue:info.glue ~size:info.size
    ~activity_bits:(Arena.encode_activity info.activity)
    ~frequency:info.frequency = key p info] up to the arena's activity
    quantisation. *)

val tiered_key :
  t ->
  tier:int ->
  id:int ->
  glue:int ->
  size:int ->
  activity_bits:int ->
  frequency:int ->
  int
(** {!packed_key} with the clause's tier ({!Arena.tier_local} etc.)
    packed above bit 60, so a single ascending sort ranks local clauses
    below mid ones regardless of their metric keys. Core clauses are
    never ranked — the reduce pass excludes them before keying. *)

val initial_tier : tier1_glue:int -> tier2_glue:int -> glue:int -> int
(** Tier assigned to a freshly learned clause from its LBD:
    [glue <= tier1_glue] is core, [glue <= tier2_glue] mid, else
    local. *)

val promoted_tier : promote_uses:int -> usage:int -> tier:int -> int
(** Usage-based promotion: a local clause whose saturating usage
    counter reached [promote_uses] (clamped to {!Arena.usage_max})
    climbs to mid. Mid and core are unchanged — the immortal core tier
    is entered only on recomputed glue via {!initial_tier}, never on
    usage alone. *)

val compare_clauses : t -> clause_info -> clause_info -> int
(** [compare_clauses p a b < 0] when [a] ranks below [b] (deleted
    first). Consistent with {!key}. *)

val needs_frequency : t -> bool
(** Whether the solver must evaluate Eq. 2 before ranking. *)

val alpha_of : t -> float option
(** The Eq. 2 threshold for frequency-guided policies. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
val of_string : string -> t option
(** Inverse of {!name} for CLI parsing; accepts ["frequency:<alpha>"]. *)

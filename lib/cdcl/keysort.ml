(* Allocation-free in-place sort of three parallel int arrays by
   ascending (key, tie). The reduce pass sorts packed ranking keys
   (Fig. 5) with the clause id as tie-breaker and the cref riding
   along; [Array.sort] on a tuple array or a clause list would allocate
   per candidate, which is exactly what this PR removes.

   Plain quicksort (median-of-three pivot, insertion sort below 16,
   recursion on the smaller half so the stack stays O(log n)). The sort
   need not be stable: (key, tie) pairs are unique because cids are. *)

let[@inline] less k1 t1 k2 t2 = k1 < k2 || (k1 = k2 && t1 < t2)

let[@inline] swap (a : int array) i j =
  let t = Array.unsafe_get a i in
  Array.unsafe_set a i (Array.unsafe_get a j);
  Array.unsafe_set a j t

let swap3 keys tie refs i j =
  swap keys i j;
  swap tie i j;
  swap refs i j

let insertion keys tie refs lo hi =
  for i = lo + 1 to hi do
    let k = keys.(i) and t = tie.(i) and r = refs.(i) in
    let j = ref (i - 1) in
    while !j >= lo && less k t keys.(!j) tie.(!j) do
      keys.(!j + 1) <- keys.(!j);
      tie.(!j + 1) <- tie.(!j);
      refs.(!j + 1) <- refs.(!j);
      decr j
    done;
    keys.(!j + 1) <- k;
    tie.(!j + 1) <- t;
    refs.(!j + 1) <- r
  done

let rec quick keys tie refs lo hi =
  if hi - lo < 16 then insertion keys tie refs lo hi
  else begin
    (* median of three into position [lo] as pivot *)
    let mid = lo + ((hi - lo) / 2) in
    if less keys.(mid) tie.(mid) keys.(lo) tie.(lo) then
      swap3 keys tie refs lo mid;
    if less keys.(hi) tie.(hi) keys.(lo) tie.(lo) then
      swap3 keys tie refs lo hi;
    if less keys.(hi) tie.(hi) keys.(mid) tie.(mid) then
      swap3 keys tie refs mid hi;
    swap3 keys tie refs lo mid;
    let pk = keys.(lo) and pt = tie.(lo) in
    let i = ref lo and j = ref (hi + 1) in
    (try
       while true do
         incr i;
         while !i <= hi && less keys.(!i) tie.(!i) pk pt do incr i done;
         decr j;
         while less pk pt keys.(!j) tie.(!j) do decr j done;
         if !i >= !j then raise Exit;
         swap3 keys tie refs !i !j
       done
     with Exit -> ());
    swap3 keys tie refs lo !j;
    let p = !j in
    (* recurse on the smaller side first to bound the stack *)
    if p - lo < hi - p then begin
      quick keys tie refs lo (p - 1);
      quick keys tie refs (p + 1) hi
    end
    else begin
      quick keys tie refs (p + 1) hi;
      quick keys tie refs lo (p - 1)
    end
  end

let sort ~keys ~tie ~refs ~len =
  if len > Array.length keys || len > Array.length tie
     || len > Array.length refs
  then invalid_arg "Keysort.sort: len";
  if len > 1 then quick keys tie refs 0 (len - 1)

module Lit = Cnf.Lit
module Vec = Util.Vec

(* Process-wide observability handles, registered once at load. The
   hot-path operations on them are plain field stores (no allocation);
   see Obs.Metrics. *)
let m_propagations = Obs.Metrics.counter "cdcl.propagations"
let m_conflicts = Obs.Metrics.counter "cdcl.conflicts"
let m_decisions = Obs.Metrics.counter "cdcl.decisions"
let m_restarts = Obs.Metrics.counter "cdcl.restarts"
let m_reduce_passes = Obs.Metrics.counter "cdcl.reduce_passes"
let m_clauses_learned = Obs.Metrics.counter "cdcl.clauses_learned"
let m_clauses_deleted = Obs.Metrics.counter "cdcl.clauses_deleted"
let m_clauses_kept = Obs.Metrics.counter "cdcl.clauses_kept"
let m_frequency_recomputes = Obs.Metrics.counter "cdcl.frequency_recomputes"
let h_reduce_seconds = Obs.Metrics.histogram "cdcl.reduce_seconds"

type clause = {
  cid : int;
  lits : Lit.t array;
  learned : bool;
  mutable activity : float;
  mutable glue : int;
  mutable deleted : bool;
  mutable used : bool;
}

let dummy_clause =
  { cid = -1; lits = [||]; learned = false; activity = 0.0; glue = 0; deleted = true; used = false }

type result =
  | Sat of bool array
  | Unsat
  | Unknown

type restart_state =
  | R_none
  | R_luby of Util.Luby.t * int ref (* iterator, current limit *)
  | R_glucose of Util.Ema.t * Util.Ema.t * float (* fast, slow, margin *)

type t = {
  cfg : Config.t;
  n : int;
  stats : Solver_stats.t;
  (* assignment state *)
  assigns : int array; (* var -> 0 / 1 / -1 *)
  level : int array; (* var -> decision level *)
  reason : clause option array; (* var -> implying clause *)
  phase : bool array; (* var -> saved phase *)
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* clause database *)
  watches : clause Vec.t array; (* lit index -> watchers *)
  originals : clause Vec.t;
  learnts : clause Vec.t;
  mutable next_cid : int;
  (* heuristics *)
  order : Var_heap.t;
  vmtf : Vmtf.t option;
  mutable var_inc : float;
  mutable cla_inc : float;
  restart : restart_state;
  mutable conflicts_since_restart : int;
  mutable next_reduce : int;
  (* propagation-frequency counters (since last reduce), Section 3 *)
  prop_counts : int array;
  (* analyze scratch *)
  seen : int array;
  analyze_toclear : Lit.t Vec.t;
  analyze_stack : Lit.t Vec.t;
  level_stamp : int array;
  mutable stamp_gen : int;
  mutable answer : result option;
  mutable trace : (trace_event -> unit) option;
  mutable assumptions : Lit.t array;
  mutable core : Lit.t list option;
}

and trace_event =
  | Learned of Cnf.Lit.t array
  | Deleted of Cnf.Lit.t array

let emit_trace t event =
  match t.trace with
  | Some f -> f event
  | None -> ()

let lit_value t l =
  let v = t.assigns.(Lit.var l) in
  if Lit.is_pos l then v else -v

let decision_level t = Vec.length t.trail_lim

let make_restart_state (cfg : Config.t) =
  match cfg.restart_mode with
  | Config.No_restarts -> R_none
  | Config.Luby unit ->
    let it = Util.Luby.create ~unit in
    R_luby (it, ref (Util.Luby.next it))
  | Config.Glucose { fast_alpha; slow_alpha; margin } ->
    R_glucose (Util.Ema.create ~alpha:fast_alpha, Util.Ema.create ~alpha:slow_alpha, margin)

let watch_list t l = t.watches.(Lit.to_index l)

let attach t c =
  assert (Array.length c.lits >= 2);
  Vec.push (watch_list t c.lits.(0)) c;
  Vec.push (watch_list t c.lits.(1)) c

let enqueue t l reason =
  let v = Lit.var l in
  if t.assigns.(v) <> 0 then lit_value t l > 0
  else begin
    t.assigns.(v) <- (if Lit.is_pos l then 1 else -1);
    t.level.(v) <- decision_level t;
    t.reason.(v) <- reason;
    Vec.push t.trail l;
    true
  end

(* Two-watched-literal Boolean constraint propagation. Returns the
   conflicting clause, if any. Increments the propagation-trigger
   counter of the variable whose assignment is being consumed, once per
   implication it produces (Section 3.1 of the paper). *)
let propagate_body t =
  let conflict = ref None in
  while !conflict = None && t.qhead < Vec.length t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    let p_var = Lit.var p in
    let false_lit = Lit.negate p in
    let ws = watch_list t false_lit in
    let i = ref 0 and j = ref 0 in
    while !i < Vec.length ws do
      let c = Vec.get ws !i in
      incr i;
      if c.deleted then () (* drop lazily *)
      else begin
        (* Ensure the falsified literal sits at position 1. *)
        if Lit.equal c.lits.(0) false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if lit_value t first > 0 then begin
          (* Clause already satisfied: keep the watch. *)
          Vec.set ws !j c;
          incr j
        end
        else begin
          (* Look for a replacement watch. *)
          let len = Array.length c.lits in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < len do
            if lit_value t c.lits.(!k) >= 0 then begin
              c.lits.(1) <- c.lits.(!k);
              c.lits.(!k) <- false_lit;
              Vec.push (watch_list t c.lits.(1)) c;
              found := true
            end
            else incr k
          done;
          if not !found then begin
            (* Unit or conflicting. *)
            Vec.set ws !j c;
            incr j;
            if lit_value t first < 0 then begin
              conflict := Some c;
              t.qhead <- Vec.length t.trail;
              (* Copy back the untouched suffix before bailing out. *)
              while !i < Vec.length ws do
                Vec.set ws !j (Vec.get ws !i);
                incr j;
                incr i
              done
            end
            else begin
              ignore (enqueue t first (Some c));
              t.stats.propagations <- t.stats.propagations + 1;
              Obs.Metrics.incr m_propagations;
              t.prop_counts.(p_var) <- t.prop_counts.(p_var) + 1
            end
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

(* The closure for the span is only allocated when tracing is live, so
   the disabled path costs one branch. *)
let propagate t =
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "solver.propagate" (fun () -> propagate_body t)
  else propagate_body t

(* --- activity management ------------------------------------------- *)

let var_bump t v =
  (match t.vmtf with
  | Some q -> Vmtf.bump q v
  | None -> ());
  Var_heap.bump t.order v t.var_inc;
  if Var_heap.decay_check t.order > 1e100 then begin
    Var_heap.rescale t.order 1e-100;
    t.var_inc <- t.var_inc *. 1e-100
  end

let var_decay t = t.var_inc <- t.var_inc /. t.cfg.var_decay

let cla_bump t c =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun c -> c.activity <- c.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay t = t.cla_inc <- t.cla_inc /. t.cfg.clause_decay

(* --- LBD ------------------------------------------------------------ *)

let compute_glue t lits =
  t.stamp_gen <- t.stamp_gen + 1;
  let g = ref 0 in
  Array.iter
    (fun l ->
      let lv = t.level.(Lit.var l) in
      if lv > 0 && t.level_stamp.(lv) <> t.stamp_gen then begin
        t.level_stamp.(lv) <- t.stamp_gen;
        incr g
      end)
    lits;
  !g

(* --- backtracking ---------------------------------------------------- *)

let backtrack t target_level =
  if decision_level t > target_level then begin
    let bound = Vec.get t.trail_lim target_level in
    for i = Vec.length t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      if t.cfg.phase_saving then t.phase.(v) <- t.assigns.(v) > 0;
      t.assigns.(v) <- 0;
      t.reason.(v) <- None;
      Var_heap.insert t.order v;
      match t.vmtf with
      | Some q -> Vmtf.on_unassign q v
      | None -> ()
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim target_level;
    t.qhead <- bound
  end

(* --- conflict analysis ----------------------------------------------- *)

let abstract_level t v = 1 lsl (t.level.(v) land 31)

(* MiniSat-style recursive redundancy check for clause minimisation. *)
let lit_redundant t p abstract_levels =
  Vec.clear t.analyze_stack;
  Vec.push t.analyze_stack p;
  let top = Vec.length t.analyze_toclear in
  let ok = ref true in
  while !ok && not (Vec.is_empty t.analyze_stack) do
    let x = Vec.pop t.analyze_stack in
    match t.reason.(Lit.var x) with
    | None -> assert false
    | Some c ->
      let len = Array.length c.lits in
      let k = ref 1 in
      while !ok && !k < len do
        let q = c.lits.(!k) in
        incr k;
        let v = Lit.var q in
        if t.seen.(v) = 0 && t.level.(v) > 0 then begin
          if t.reason.(v) <> None && abstract_level t v land abstract_levels <> 0 then begin
            t.seen.(v) <- 1;
            Vec.push t.analyze_stack q;
            Vec.push t.analyze_toclear q
          end
          else begin
            (* Not redundant: undo the speculative marks. *)
            for j = Vec.length t.analyze_toclear - 1 downto top do
              t.seen.(Lit.var (Vec.get t.analyze_toclear j)) <- 0
            done;
            Vec.shrink t.analyze_toclear top;
            ok := false
          end
        end
      done
  done;
  !ok

(* First-UIP learning. Returns (learnt literals with the asserting
   literal at index 0, backjump level, glue). *)
let analyze t confl =
  let learnt = Vec.create ~dummy:(Lit.pos 1) () in
  Vec.push learnt (Lit.pos 1) (* slot 0 reserved for the asserting literal *);
  let path_count = ref 0 in
  let p = ref None in
  let index = ref (Vec.length t.trail - 1) in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    let clause = !c in
    if clause.learned then begin
      cla_bump t clause;
      clause.used <- true;
      (* Glucose-style dynamic glue update. *)
      let g = compute_glue t clause.lits in
      if g < clause.glue then clause.glue <- g
    end;
    let start = match !p with None -> 0 | Some _ -> 1 in
    for k = start to Array.length clause.lits - 1 do
      let q = clause.lits.(k) in
      let v = Lit.var q in
      if t.seen.(v) = 0 && t.level.(v) > 0 then begin
        var_bump t v;
        t.seen.(v) <- 1;
        if t.level.(v) >= decision_level t then incr path_count
        else Vec.push learnt q
      end
    done;
    (* Select the next literal to resolve on. *)
    while t.seen.(Lit.var (Vec.get t.trail !index)) = 0 do
      decr index
    done;
    let pl = Vec.get t.trail !index in
    decr index;
    p := Some pl;
    t.seen.(Lit.var pl) <- 0;
    decr path_count;
    if !path_count <= 0 then continue := false
    else begin
      match t.reason.(Lit.var pl) with
      | Some r -> c := r
      | None -> assert false
    end
  done;
  let asserting =
    match !p with
    | Some pl -> Lit.negate pl
    | None -> assert false
  in
  Vec.set learnt 0 asserting;
  (* Minimisation. *)
  Vec.clear t.analyze_toclear;
  Vec.iter (fun l -> Vec.push t.analyze_toclear l) learnt;
  let before = Vec.length learnt in
  if t.cfg.minimize then begin
    let abstract_levels =
      Vec.fold
        (fun acc l -> acc lor abstract_level t (Lit.var l))
        0 learnt
    in
    let keep l =
      Lit.equal l asserting
      || t.reason.(Lit.var l) = None
      || not (lit_redundant t l abstract_levels)
    in
    Vec.filter_in_place keep learnt
  end;
  t.stats.minimized_literals <- t.stats.minimized_literals + (before - Vec.length learnt);
  (* Clear all seen marks. *)
  Vec.iter (fun l -> t.seen.(Lit.var l) <- 0) t.analyze_toclear;
  let lits = Vec.to_array learnt in
  (* Find the backjump level and place a literal of that level at 1. *)
  let bt_level =
    if Array.length lits = 1 then 0
    else begin
      let max_i = ref 1 in
      for k = 2 to Array.length lits - 1 do
        if t.level.(Lit.var lits.(k)) > t.level.(Lit.var lits.(!max_i)) then max_i := k
      done;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!max_i);
      lits.(!max_i) <- tmp;
      t.level.(Lit.var lits.(1))
    end
  in
  let glue = compute_glue t lits in
  (lits, bt_level, glue)

(* --- reduce ----------------------------------------------------------- *)

let locked t c =
  Array.length c.lits > 0
  &&
  let v = Lit.var c.lits.(0) in
  t.assigns.(v) <> 0 && (match t.reason.(v) with Some r -> r == c | None -> false)

let clause_info t f_max c =
  let frequency =
    match Policy.alpha_of t.cfg.policy with
    | Some alpha ->
      Obs.Metrics.incr m_frequency_recomputes;
      let vars = Array.map Lit.var c.lits in
      Policy.clause_frequency ~alpha ~f_max ~counts:t.prop_counts ~vars
    | None -> 0
  in
  {
    Policy.id = c.cid;
    glue = c.glue;
    size = Array.length c.lits;
    activity = c.activity;
    frequency;
  }

let rebuild_watches t =
  Array.iter (fun ws -> Vec.filter_in_place (fun c -> not c.deleted) ws) t.watches

(* Delete the lowest-ranked fraction of reducible learned clauses
   according to the configured policy, then reset the propagation
   counters ("since the last clause deletion", Eq. 2). *)
let reduce_body t =
  t.stats.reduces <- t.stats.reduces + 1;
  Obs.Metrics.incr m_reduce_passes;
  let f_max = Array.fold_left max 0 t.prop_counts in
  let candidates =
    Vec.fold
      (fun acc c ->
        if c.deleted || c.glue <= t.cfg.tier1_glue || locked t c then acc
        else (c, clause_info t f_max c) :: acc)
      [] t.learnts
  in
  let ranked =
    List.sort (fun (_, a) (_, b) -> Policy.compare_clauses t.cfg.policy a b) candidates
  in
  let to_delete =
    int_of_float (t.cfg.reduce_fraction *. float_of_int (List.length ranked))
  in
  List.iteri
    (fun i (c, _) ->
      if i < to_delete then begin
        c.deleted <- true;
        t.stats.deleted_total <- t.stats.deleted_total + 1;
        emit_trace t (Deleted c.lits)
      end)
    ranked;
  Obs.Metrics.add m_clauses_deleted (min to_delete (List.length ranked));
  Obs.Metrics.add m_clauses_kept
    (max 0 (List.length ranked - to_delete));
  Vec.filter_in_place (fun c -> not c.deleted) t.learnts;
  rebuild_watches t;
  Array.fill t.prop_counts 0 (Array.length t.prop_counts) 0

let reduce t =
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "solver.reduce" (fun () ->
        Obs.Metrics.time h_reduce_seconds (fun () -> reduce_body t))
  else Obs.Metrics.time h_reduce_seconds (fun () -> reduce_body t)

(* --- restarts --------------------------------------------------------- *)

let note_conflict_for_restart t glue =
  t.conflicts_since_restart <- t.conflicts_since_restart + 1;
  match t.restart with
  | R_none | R_luby _ -> ()
  | R_glucose (fast, slow, _) ->
    let g = float_of_int glue in
    Util.Ema.update fast g;
    Util.Ema.update slow g

let should_restart t =
  match t.restart with
  | R_none -> false
  | R_luby (_, limit) -> t.conflicts_since_restart >= !limit
  | R_glucose (fast, slow, margin) ->
    t.conflicts_since_restart >= 50
    && Util.Ema.count slow > 100
    && Util.Ema.value fast > margin *. Util.Ema.value slow

let do_restart t =
  t.stats.restarts <- t.stats.restarts + 1;
  Obs.Metrics.incr m_restarts;
  t.conflicts_since_restart <- 0;
  (match t.restart with
  | R_luby (it, limit) -> limit := Util.Luby.next it
  | R_none | R_glucose _ -> ());
  backtrack t 0

(* --- creation --------------------------------------------------------- *)

exception Trivially_unsat

let new_clause t ~learned ~glue lits =
  let c =
    { cid = t.next_cid; lits; learned; activity = 0.0; glue; deleted = false; used = false }
  in
  t.next_cid <- t.next_cid + 1;
  c

(* Sort, deduplicate, and drop tautologies. Returns [None] for a
   tautological clause. *)
let simplify_clause lits =
  let sorted = List.sort_uniq Lit.compare (Array.to_list lits) in
  let rec tautology = function
    | a :: (b :: _ as rest) -> Lit.equal (Lit.negate a) b || tautology rest
    | [ _ ] | [] -> false
  in
  if tautology sorted then None else Some (Array.of_list sorted)

let add_original t lits =
  match simplify_clause lits with
  | None -> ()
  | Some [||] -> raise Trivially_unsat
  | Some [| l |] -> if not (enqueue t l None) then raise Trivially_unsat
  | Some lits ->
    let c = new_clause t ~learned:false ~glue:0 lits in
    Vec.push t.originals c;
    attach t c

let create ?(config = Config.default) formula =
  let n = Cnf.Formula.num_vars formula in
  let t =
    {
      cfg = config;
      n;
      stats = Solver_stats.create ();
      assigns = Array.make (n + 1) 0;
      level = Array.make (n + 1) 0;
      reason = Array.make (n + 1) None;
      phase = Array.make (n + 1) false;
      trail = Vec.create ~dummy:(Lit.pos 1) ();
      trail_lim = Vec.create ~dummy:0 ();
      qhead = 0;
      watches = Array.init ((2 * (n + 1)) + 2) (fun _ -> Vec.create ~dummy:dummy_clause ());
      originals = Vec.create ~dummy:dummy_clause ();
      learnts = Vec.create ~dummy:dummy_clause ();
      next_cid = 0;
      order = Var_heap.create ~num_vars:n;
      vmtf =
        (match config.branching with
        | Config.Evsids -> None
        | Config.Vmtf -> Some (Vmtf.create ~num_vars:n));
      var_inc = 1.0;
      cla_inc = 1.0;
      restart = make_restart_state config;
      conflicts_since_restart = 0;
      next_reduce = config.reduce_first;
      prop_counts = Array.make (n + 1) 0;
      seen = Array.make (n + 1) 0;
      analyze_toclear = Vec.create ~dummy:(Lit.pos 1) ();
      analyze_stack = Vec.create ~dummy:(Lit.pos 1) ();
      level_stamp = Array.make (n + 2) 0;
      stamp_gen = 0;
      answer = None;
      trace = None;
      assumptions = [||];
      core = None;
    }
  in
  (try Cnf.Formula.iter_clauses (fun c -> add_original t c) formula
   with Trivially_unsat -> t.answer <- Some Unsat);
  t

(* --- learned clause installation -------------------------------------- *)

let install_learnt t lits glue =
  t.stats.learned_total <- t.stats.learned_total + 1;
  Obs.Metrics.incr m_clauses_learned;
  emit_trace t (Learned lits);
  if Array.length lits = 1 then begin
    backtrack t 0;
    ignore (enqueue t lits.(0) None)
  end
  else begin
    let c = new_clause t ~learned:true ~glue lits in
    Vec.push t.learnts c;
    attach t c;
    ignore (enqueue t lits.(0) (Some c))
  end

(* --- decisions --------------------------------------------------------- *)

let rec pick_from_heap t =
  if Var_heap.is_empty t.order then None
  else begin
    let v = Var_heap.remove_max t.order in
    if t.assigns.(v) = 0 then Some v else pick_from_heap t
  end

let pick_branch_var t =
  match t.vmtf with
  | Some q -> Vmtf.pick q ~assigned:(fun v -> t.assigns.(v) <> 0)
  | None -> pick_from_heap t

let decide t v =
  t.stats.decisions <- t.stats.decisions + 1;
  Obs.Metrics.incr m_decisions;
  Vec.push t.trail_lim (Vec.length t.trail);
  let l = Lit.make v t.phase.(v) in
  ignore (enqueue t l None);
  let dl = decision_level t in
  if dl > t.stats.max_decision_level then t.stats.max_decision_level <- dl

(* MiniSat's analyzeFinal: the failed assumption [p] is false under the
   current (all-assumption) trail; walk implication chains back to the
   assumption decisions responsible and return them (with [p]) as the
   unsatisfiable core. *)
let analyze_final t p =
  let core = ref [ p ] in
  if decision_level t > 0 then begin
    t.seen.(Lit.var p) <- 1;
    let bound = Vec.get t.trail_lim 0 in
    for i = Vec.length t.trail - 1 downto bound do
      let q = Vec.get t.trail i in
      let v = Lit.var q in
      if t.seen.(v) = 1 then begin
        (match t.reason.(v) with
        | None -> core := q :: !core
        | Some c ->
          for k = 1 to Array.length c.lits - 1 do
            let u = Lit.var c.lits.(k) in
            if t.level.(u) > 0 then t.seen.(u) <- 1
          done);
        t.seen.(v) <- 0
      end
    done;
    t.seen.(Lit.var p) <- 0
  end;
  !core

(* --- main search -------------------------------------------------------- *)

let model t =
  Array.init (t.n + 1) (fun v -> v > 0 && t.assigns.(v) > 0)

let budget_exhausted t ~conflicts0 ~propagations0 ~deadline =
  (match t.cfg.max_conflicts with
  | Some m -> t.stats.conflicts - conflicts0 >= m
  | None -> false)
  || (match t.cfg.max_propagations with
     | Some m -> t.stats.propagations - propagations0 >= m
     | None -> false)
  ||
  match deadline with
  | Some d -> Runtime.Clock.now () >= d
  | None -> false

(* Open the next decision: install pending assumption literals first
   (one decision level each, as in MiniSat), then branch normally. A
   conflicting assumption terminates with Unsat and a failed-assumption
   core. *)
let next_decision t result =
  let dl = decision_level t in
  if dl < Array.length t.assumptions then begin
    let p = t.assumptions.(dl) in
    if lit_value t p > 0 then
      (* Already implied: open an empty level for it. *)
      Vec.push t.trail_lim (Vec.length t.trail)
    else if lit_value t p < 0 then begin
      t.core <- Some (analyze_final t p);
      result := Some Unsat
    end
    else begin
      t.stats.decisions <- t.stats.decisions + 1;
      Vec.push t.trail_lim (Vec.length t.trail);
      ignore (enqueue t p None)
    end
  end
  else begin
    match pick_branch_var t with
    | Some v -> decide t v
    | None -> result := Some (Sat (model t))
  end

let search_body t =
  let conflicts0 = t.stats.conflicts and propagations0 = t.stats.propagations in
  let deadline =
    Option.map (fun s -> Runtime.Clock.now () +. s) t.cfg.max_wall_seconds
  in
  let assumption_depth = Array.length t.assumptions in
  let result = ref None in
  while !result = None do
    match propagate t with
    | Some confl ->
      t.stats.conflicts <- t.stats.conflicts + 1;
      Obs.Metrics.incr m_conflicts;
      if decision_level t = 0 then result := Some Unsat
      else begin
        let lits, bt_level, glue = analyze t confl in
        backtrack t bt_level;
        install_learnt t lits glue;
        var_decay t;
        cla_decay t;
        note_conflict_for_restart t glue;
        if t.stats.conflicts >= t.next_reduce then begin
          reduce t;
          t.next_reduce <-
            t.next_reduce + t.cfg.reduce_first + (t.stats.reduces * t.cfg.reduce_inc)
        end;
        if budget_exhausted t ~conflicts0 ~propagations0 ~deadline then
          result := Some Unknown
      end
    | None ->
      if budget_exhausted t ~conflicts0 ~propagations0 ~deadline then
        result := Some Unknown
      else if
        should_restart t && decision_level t > assumption_depth
      then do_restart t
      else next_decision t result
  done;
  Option.get !result

let search t = Obs.Trace.with_span "solver.solve" (fun () -> search_body t)

let solve t =
  match t.answer with
  | Some (Sat _ | Unsat) -> Option.get t.answer
  | Some Unknown | None ->
    (* Drop any decisions left over from an interrupted assumption run. *)
    backtrack t 0;
    t.assumptions <- [||];
    t.core <- None;
    let r = search t in
    t.answer <- Some r;
    r

let solve_with_assumptions t lits =
  match t.answer with
  | Some Unsat ->
    (* The formula is unsatisfiable outright: empty core. *)
    t.core <- Some [];
    Unsat
  | Some (Sat _ | Unknown) | None ->
    backtrack t 0;
    t.assumptions <- Array.of_list lits;
    t.core <- None;
    let r = search t in
    t.assumptions <- [||];
    (match r with
    | Unsat when t.core = None ->
      (* Level-0 conflict: unsat independent of assumptions. *)
      t.core <- Some [];
      t.answer <- Some Unsat
    | Unsat | Unknown -> ()
    | Sat _ ->
      (* A model under assumptions is a model of the formula. *)
      t.answer <- Some r);
    r

let unsat_core t = t.core

(* --- accessors ---------------------------------------------------------- *)

let config t = t.cfg
let stats t = t.stats
let num_vars t = t.n
let propagation_counts t = Array.copy t.prop_counts

let value t v =
  if v < 1 || v > t.n then invalid_arg "Solver.value";
  match t.assigns.(v) with
  | 0 -> None
  | x -> Some (x > 0)

let learned_clause_count t = Vec.length t.learnts

let set_trace t f = t.trace <- Some f
let clear_trace t = t.trace <- None

let check_model formula m = Cnf.Formula.eval formula m

let solve_formula ?config formula =
  let t = create ?config formula in
  let r = solve t in
  (r, Solver_stats.copy (stats t))

module Lit = Cnf.Lit
module Vec = Util.Vec

(* Process-wide observability handles, registered once at load. The
   hot-path operations on them are plain field stores (no allocation);
   see Obs.Metrics. *)
let m_propagations = Obs.Metrics.counter "cdcl.propagations"
let m_conflicts = Obs.Metrics.counter "cdcl.conflicts"
let m_decisions = Obs.Metrics.counter "cdcl.decisions"
let m_restarts = Obs.Metrics.counter "cdcl.restarts"
let m_reduce_passes = Obs.Metrics.counter "cdcl.reduce_passes"
let m_clauses_learned = Obs.Metrics.counter "cdcl.clauses_learned"
let m_clauses_deleted = Obs.Metrics.counter "cdcl.clauses_deleted"
let m_clauses_kept = Obs.Metrics.counter "cdcl.clauses_kept"
let m_frequency_recomputes = Obs.Metrics.counter "cdcl.frequency_recomputes"
let m_arena_gcs = Obs.Metrics.counter "cdcl.arena_gcs"
let h_reduce_seconds = Obs.Metrics.histogram "cdcl.reduce_seconds"
let m_inprocess_passes = Obs.Metrics.counter "cdcl.inprocess_passes"
let m_vivified = Obs.Metrics.counter "cdcl.clauses_vivified"
let m_vivify_deleted = Obs.Metrics.counter "cdcl.clauses_vivify_deleted"
let m_subsumed = Obs.Metrics.counter "cdcl.clauses_subsumed"
let m_strengthened = Obs.Metrics.counter "cdcl.clauses_strengthened"
let g_tier_core = Obs.Metrics.gauge "cdcl.tier_core_clauses"
let g_tier_mid = Obs.Metrics.gauge "cdcl.tier_mid_clauses"
let g_tier_local = Obs.Metrics.gauge "cdcl.tier_local_clauses"
let h_inprocess_seconds = Obs.Metrics.histogram "cdcl.inprocess_seconds"

(* Clauses live in a flat int arena (see Arena); a clause is an integer
   cref. Watcher lists are stride-2 int vectors of (tag, cref) pairs:

     tag = lit_index lsl 1          long clause, cached blocking literal
     tag = lit_index lsl 1 lor 1    binary clause, the OTHER literal

   BCP consults only the tag in the common case: a satisfied blocking
   literal means the clause is satisfied without touching its memory,
   and for binary clauses the watcher pair is the whole clause — the
   arena is never dereferenced on the binary path.

   Binary clauses are consequently never literal-swapped, so the
   implied literal of a binary reason is at position 0 *or* 1. Every
   reason-side traversal (analyze, lit_redundant, analyze_final)
   therefore skips the resolved variable by name instead of assuming
   it sits at index 0, and [locked] checks both watched literals of a
   binary clause.

   Assignments are stored per *literal index* ([values]): assigning a
   literal writes 1 at its own slot and -1 at its negation's, so BCP
   evaluates tags and arena words with a single unsafe load — no
   var/sign decomposition. This leans on the literal encoding
   ([Lit.to_index (Lit.negate l) = Lit.to_index l lxor 1], positive
   literal of var v at index 2v), which the BCP loop uses directly. *)

type result =
  | Sat of bool array
  | Unsat
  | Unknown

type restart_state =
  | R_none
  | R_luby of Util.Luby.t * int ref (* iterator, current limit *)
  | R_glucose of Util.Ema.t * Util.Ema.t * float (* fast, slow, margin *)

(* Per-variable arrays are mutable fields so {!new_var} can grow them
   between solves (they are reallocated with geometric slack; hot loops
   re-hoist them on every call, so a swap between calls is safe). *)
type t = {
  cfg : Config.t;
  mutable n : int;
  stats : Solver_stats.t;
  (* assignment state *)
  mutable values : int array; (* lit index -> 1 true / -1 false / 0 unassigned *)
  mutable level : int array; (* var -> decision level *)
  mutable reason : int array; (* var -> implying cref, or -1 *)
  mutable phase : bool array; (* var -> saved phase *)
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* clause database *)
  arena : Arena.t;
  mutable watches : int Vec.t array; (* lit index -> stride-2 (tag, cref) *)
  originals : int Vec.t; (* crefs *)
  learnts : int Vec.t; (* crefs *)
  mutable next_cid : int;
  mutable arena_gcs : int;
  (* heuristics *)
  order : Var_heap.t;
  vmtf : Vmtf.t option;
  mutable var_inc : float;
  mutable cla_inc : float;
  restart : restart_state;
  mutable conflicts_since_restart : int;
  mutable next_reduce : int;
  (* inprocessing *)
  mutable restarts_since_inprocess : int;
  mutable root_units_emitted : int; (* trail prefix already in the proof *)
  mutable lit_stamp : int array; (* lit index -> generation (subsumption) *)
  mutable lit_stamp_gen : int;
  mutable subsume_cursor : int; (* rotation point over the clause DB *)
  mutable last_subsume_db : int; (* live clause count at the last pass *)
  (* propagation-frequency counters (since last reduce), Section 3 *)
  mutable prop_counts : int array;
  (* analyze scratch, hoisted into solver state and reused *)
  mutable seen : int array;
  learnt : Lit.t Vec.t; (* the clause under construction *)
  analyze_toclear : Lit.t Vec.t;
  analyze_stack : Lit.t Vec.t;
  mutable simp : int array; (* simplify_clause scratch (lit indices) *)
  (* reduce ranking scratch: parallel (key, cid, cref) arrays *)
  mutable rk_keys : int array;
  mutable rk_tie : int array;
  mutable rk_refs : int array;
  mutable level_stamp : int array;
  mutable stamp_gen : int;
  mutable in_solve : bool; (* re-entrancy guard for the state machine *)
  mutable answer : result option;
  mutable trace : (trace_event -> unit) option;
  mutable assumptions : Lit.t array;
  mutable core : Lit.t list option;
  mutable share : share_state option;
}

and trace_event =
  | Learned of Cnf.Lit.t array
  | Deleted of Cnf.Lit.t array

(* Portfolio clause sharing (DESIGN.md §12). The hook is the transport:
   it receives this solver's epoch exports and returns the peers'
   clauses for the same epoch, already in sorted sender order. *)
and share_state = {
  sh_hook : epoch:int -> Share.clause list -> Share.clause list;
  sh_interval : int; (* restarts between exchanges *)
  sh_glue : int; (* export when glue <= this ... *)
  sh_max_size : int; (* ... and the clause is this short *)
  sh_cap : int; (* export rate limit per epoch *)
  mutable sh_epoch : int;
  mutable sh_units_sent : int; (* root-trail export watermark *)
  mutable sh_last_cid : int; (* learnt-clause export watermark *)
  mutable sh_restarts : int; (* restarts since the last exchange *)
  sh_seen : (string, unit) Hashtbl.t; (* canonical keys ever seen *)
  sh_foreign : (int, unit) Hashtbl.t; (* cids of imported clauses *)
}

(* Trace payload arrays are only materialised when a trace callback is
   installed; the hot path pays one branch. *)
let trace_deleted t c =
  match t.trace with
  | Some f -> f (Deleted (Arena.lits_array t.arena c))
  | None -> ()

let trace_learned t =
  match t.trace with
  | Some f -> f (Learned (Vec.to_array t.learnt))
  | None -> ()

(* Inprocessing rewrites snapshot clause literals before mutating the
   arena, so the trace payload cannot alias surgered memory. *)
let trace_learned_lits t lits =
  match t.trace with Some f -> f (Learned lits) | None -> ()

let trace_deleted_lits t lits =
  match t.trace with Some f -> f (Deleted lits) | None -> ()

let[@inline] lit_value t l = Array.unsafe_get t.values (Lit.to_index l)

let[@inline] var_assigned t v = Array.unsafe_get t.values (v + v) <> 0

let decision_level t = Vec.length t.trail_lim

let make_restart_state (cfg : Config.t) =
  match cfg.restart_mode with
  | Config.No_restarts -> R_none
  | Config.Luby unit ->
    let it = Util.Luby.create ~unit in
    R_luby (it, ref (Util.Luby.next it))
  | Config.Glucose { fast_alpha; slow_alpha; margin } ->
    R_glucose (Util.Ema.create ~alpha:fast_alpha, Util.Ema.create ~alpha:slow_alpha, margin)

let[@inline] watch_list t l = t.watches.(Lit.to_index l)

let[@inline] tag_long l = Lit.to_index l lsl 1
let[@inline] tag_binary l = (Lit.to_index l lsl 1) lor 1

let attach t c =
  let a = t.arena in
  assert (Arena.size a c >= 2);
  let l0 = Arena.lit a c 0 and l1 = Arena.lit a c 1 in
  if Arena.size a c = 2 then begin
    Vec.push2 (watch_list t l0) (tag_binary l1) c;
    Vec.push2 (watch_list t l1) (tag_binary l0) c
  end
  else begin
    Vec.push2 (watch_list t l0) (tag_long l1) c;
    Vec.push2 (watch_list t l1) (tag_long l0) c
  end

let enqueue t l reason =
  let idx = Lit.to_index l in
  let v0 = Array.unsafe_get t.values idx in
  if v0 <> 0 then v0 > 0
  else begin
    t.values.(idx) <- 1;
    t.values.(idx lxor 1) <- -1;
    let v = Lit.var l in
    t.level.(v) <- decision_level t;
    t.reason.(v) <- reason;
    Vec.push t.trail l;
    true
  end

(* BCP-internal enqueue by literal index; the caller has already
   established the literal is unassigned. *)
let[@inline] enqueue_unchecked t idx reason =
  Array.unsafe_set t.values idx 1;
  Array.unsafe_set t.values (idx lxor 1) (-1);
  let v = idx lsr 1 in
  t.level.(v) <- Vec.length t.trail_lim;
  t.reason.(v) <- reason;
  Vec.push t.trail (Lit.of_index idx)

(* Two-watched-literal Boolean constraint propagation over the arena.
   Returns the conflicting cref, or -1. Increments the
   propagation-trigger counter of the variable whose assignment is
   being consumed, once per implication it produces (Section 3.1).

   The loop works entirely on literal indices and raw arrays: the
   arena buffer, the literal-value array and each watch list's backing
   array are hoisted into locals. Nothing in here allocates arena
   words, so [adata] stays valid; replacement watches go to some other
   literal's list, never back onto [ws], so [wd]/[n] stay valid too. *)
let propagate_body t =
  let adata = Arena.raw t.arena in
  let values = t.values in
  let watches = t.watches in
  let pc = t.prop_counts in
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < Vec.length t.trail do
    let p = Vec.unsafe_get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    let p_idx = Lit.to_index p in
    let p_var = p_idx lsr 1 in
    let false_lit = p_idx lxor 1 in
    let ws = Array.unsafe_get watches false_lit in
    let n = Vec.length ws in
    let wd = Vec.unsafe_data ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let tag = Array.unsafe_get wd !i in
      let cr = Array.unsafe_get wd (!i + 1) in
      i := !i + 2;
      if tag land 1 <> 0 then begin
        (* Binary clause: the other literal is inline in the watcher. *)
        Array.unsafe_set wd !j tag;
        Array.unsafe_set wd (!j + 1) cr;
        j := !j + 2;
        let other = tag lsr 1 in
        let v = Array.unsafe_get values other in
        if v > 0 then ()
        else if v < 0 then begin
          conflict := cr;
          t.qhead <- Vec.length t.trail;
          while !i < n do
            Array.unsafe_set wd !j (Array.unsafe_get wd !i);
            Array.unsafe_set wd (!j + 1) (Array.unsafe_get wd (!i + 1));
            i := !i + 2;
            j := !j + 2
          done
        end
        else begin
          enqueue_unchecked t other cr;
          t.stats.propagations <- t.stats.propagations + 1;
          Obs.Metrics.incr m_propagations;
          Array.unsafe_set pc p_var (Array.unsafe_get pc p_var + 1)
        end
      end
      else if Array.unsafe_get values (tag lsr 1) > 0 then begin
        (* Satisfied via the cached blocking literal: the clause's
           memory is never touched. *)
        Array.unsafe_set wd !j tag;
        Array.unsafe_set wd (!j + 1) cr;
        j := !j + 2
      end
      else begin
        (* Ensure the falsified literal sits at position 1. *)
        let base = cr + Arena.lit_offset in
        let l0 = Array.unsafe_get adata base in
        if l0 = false_lit then begin
          Array.unsafe_set adata base (Array.unsafe_get adata (base + 1));
          Array.unsafe_set adata (base + 1) false_lit
        end;
        let first = Array.unsafe_get adata base in
        let new_tag = first lsl 1 in
        if first <> tag lsr 1 && Array.unsafe_get values first > 0 then begin
          (* Clause already satisfied: keep the watch, cache [first]. *)
          Array.unsafe_set wd !j new_tag;
          Array.unsafe_set wd (!j + 1) cr;
          j := !j + 2
        end
        else begin
          (* Look for a replacement watch. *)
          let stop = base + (Array.unsafe_get adata cr lsr Arena.size_shift) in
          let k = ref (base + 2) in
          let found = ref false in
          while (not !found) && !k < stop do
            let lk = Array.unsafe_get adata !k in
            if Array.unsafe_get values lk >= 0 then begin
              Array.unsafe_set adata (base + 1) lk;
              Array.unsafe_set adata !k false_lit;
              Vec.push2 (Array.unsafe_get watches lk) new_tag cr;
              found := true
            end
            else incr k
          done;
          if not !found then begin
            (* Unit or conflicting. *)
            Array.unsafe_set wd !j new_tag;
            Array.unsafe_set wd (!j + 1) cr;
            j := !j + 2;
            if Array.unsafe_get values first < 0 then begin
              conflict := cr;
              t.qhead <- Vec.length t.trail;
              (* Copy back the untouched suffix before bailing out. *)
              while !i < n do
                Array.unsafe_set wd !j (Array.unsafe_get wd !i);
                Array.unsafe_set wd (!j + 1) (Array.unsafe_get wd (!i + 1));
                i := !i + 2;
                j := !j + 2
              done
            end
            else begin
              enqueue_unchecked t first cr;
              t.stats.propagations <- t.stats.propagations + 1;
              Obs.Metrics.incr m_propagations;
              Array.unsafe_set pc p_var (Array.unsafe_get pc p_var + 1)
            end
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

(* The closure for the span is only allocated when tracing is live, so
   the disabled path costs one branch. *)
let propagate t =
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "solver.propagate" (fun () -> propagate_body t)
  else propagate_body t

(* --- activity management ------------------------------------------- *)

let var_bump t v =
  (match t.vmtf with
  | Some q -> Vmtf.bump q v
  | None -> ());
  Var_heap.bump t.order v t.var_inc;
  if Var_heap.decay_check t.order > 1e100 then begin
    Var_heap.rescale t.order 1e-100;
    t.var_inc <- t.var_inc *. 1e-100
  end

let var_decay t = t.var_inc <- t.var_inc /. t.cfg.var_decay

let cla_bump t c =
  let a = t.arena in
  Arena.set_activity a c (Arena.activity a c +. t.cla_inc);
  if Arena.activity a c > 1e20 then begin
    for idx = 0 to Vec.length t.learnts - 1 do
      let cr = Vec.unsafe_get t.learnts idx in
      Arena.set_activity a cr (Arena.activity a cr *. 1e-20)
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay t = t.cla_inc <- t.cla_inc /. t.cfg.clause_decay

(* --- LBD ------------------------------------------------------------ *)

let compute_glue_cref t c =
  t.stamp_gen <- t.stamp_gen + 1;
  let adata = Arena.raw t.arena in
  let level = t.level and stamp = t.level_stamp in
  let gen = t.stamp_gen in
  let g = ref 0 in
  let base = c + Arena.lit_offset in
  let stop = base + (Array.unsafe_get adata c lsr Arena.size_shift) in
  for w = base to stop - 1 do
    let lv = Array.unsafe_get level (Array.unsafe_get adata w lsr 1) in
    if lv > 0 && Array.unsafe_get stamp lv <> gen then begin
      Array.unsafe_set stamp lv gen;
      incr g
    end
  done;
  !g

let compute_glue_vec t lits =
  t.stamp_gen <- t.stamp_gen + 1;
  let level = t.level and stamp = t.level_stamp in
  let gen = t.stamp_gen in
  let g = ref 0 in
  for k = 0 to Vec.length lits - 1 do
    let lv = Array.unsafe_get level (Lit.var (Vec.unsafe_get lits k)) in
    if lv > 0 && Array.unsafe_get stamp lv <> gen then begin
      Array.unsafe_set stamp lv gen;
      incr g
    end
  done;
  !g

(* --- backtracking ---------------------------------------------------- *)

let backtrack_gen t ~save_phase target_level =
  if decision_level t > target_level then begin
    let bound = Vec.get t.trail_lim target_level in
    let tdata = Vec.unsafe_data t.trail in
    let values = t.values and reason = t.reason and phase = t.phase in
    for i = Vec.length t.trail - 1 downto bound do
      let l = Array.unsafe_get tdata i in
      let v = Lit.var l in
      (* The trail literal is the true one, so it carries the phase. *)
      if save_phase then Array.unsafe_set phase v (Lit.is_pos l);
      let idx = Lit.to_index l in
      Array.unsafe_set values idx 0;
      Array.unsafe_set values (idx lxor 1) 0;
      Array.unsafe_set reason v (-1);
      Var_heap.insert t.order v;
      match t.vmtf with
      | Some q -> Vmtf.on_unassign q v
      | None -> ()
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim target_level;
    t.qhead <- bound
  end

let backtrack t target_level =
  backtrack_gen t ~save_phase:t.cfg.phase_saving target_level

(* Vivification probes must not pollute the saved phases that guide
   search decisions. *)
let backtrack_probe t target_level = backtrack_gen t ~save_phase:false target_level

(* --- conflict analysis ----------------------------------------------- *)

let abstract_level t v = 1 lsl (t.level.(v) land 31)

(* MiniSat-style recursive redundancy check for clause minimisation.
   Reason clauses are scanned skipping the resolved variable by name
   (see the watcher-layout comment at the top of the file). *)
let lit_redundant t p abstract_levels =
  Vec.clear t.analyze_stack;
  Vec.push t.analyze_stack p;
  let adata = Arena.raw t.arena in
  let seen = t.seen and level = t.level and reason = t.reason in
  let top = Vec.length t.analyze_toclear in
  let ok = ref true in
  while !ok && not (Vec.is_empty t.analyze_stack) do
    let x = Vec.pop t.analyze_stack in
    let xv = Lit.var x in
    let c = reason.(xv) in
    assert (c >= 0);
    let base = c + Arena.lit_offset in
    let stop = base + (Array.unsafe_get adata c lsr Arena.size_shift) in
    let k = ref base in
    while !ok && !k < stop do
      let q_idx = Array.unsafe_get adata !k in
      incr k;
      let v = q_idx lsr 1 in
      if v <> xv && Array.unsafe_get seen v = 0 && Array.unsafe_get level v > 0
      then begin
        if reason.(v) >= 0 && abstract_level t v land abstract_levels <> 0 then begin
          seen.(v) <- 1;
          let q = Lit.of_index q_idx in
          Vec.push t.analyze_stack q;
          Vec.push t.analyze_toclear q
        end
        else begin
          (* Not redundant: undo the speculative marks. *)
          for j = Vec.length t.analyze_toclear - 1 downto top do
            seen.(Lit.var (Vec.get t.analyze_toclear j)) <- 0
          done;
          Vec.shrink t.analyze_toclear top;
          ok := false
        end
      end
    done
  done;
  !ok

(* Usage-driven tier promotion (inprocessing only). A clause touched as
   an antecedent in conflict analysis bumps its saturating usage
   counter and climbs one tier when the counter reaches
   [promote_uses]; a dynamic glue improvement below the tier
   thresholds promotes immediately. The counter resets on promotion so
   the next climb needs fresh evidence. *)
let promote_on_use t c =
  let a = t.arena in
  Arena.bump_usage a c;
  let tier = Arena.tier a c in
  if tier < Arena.tier_core then begin
    let by_use =
      Policy.promoted_tier ~promote_uses:t.cfg.promote_uses
        ~usage:(Arena.usage a c) ~tier
    in
    let by_glue =
      Policy.initial_tier ~tier1_glue:t.cfg.tier1_glue
        ~tier2_glue:t.cfg.tier2_glue ~glue:(Arena.glue a c)
    in
    let tier' = max by_use by_glue in
    if tier' > tier then begin
      Arena.set_tier a c tier';
      Arena.set_usage a c 0
    end
  end

(* First-UIP learning into the reusable [t.learnt] scratch vector
   (asserting literal at index 0). Returns (backjump level, glue). *)
let analyze t confl =
  let a = t.arena in
  let adata = Arena.raw a in
  let seen = t.seen and level = t.level in
  let dl = decision_level t in
  let learnt = t.learnt in
  Vec.clear learnt;
  Vec.push learnt (Lit.pos 1) (* slot 0 reserved for the asserting literal *);
  let path_count = ref 0 in
  let p_var = ref (-1) in
  let p_lit = ref (Lit.pos 1) in
  let index = ref (Vec.length t.trail - 1) in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    let cr = !c in
    if Arena.learned a cr then begin
      cla_bump t cr;
      Arena.set_used a cr;
      (* Glucose-style dynamic glue update. *)
      let g = compute_glue_cref t cr in
      if g < Arena.glue a cr then Arena.set_glue a cr g;
      if t.cfg.inprocess then promote_on_use t cr
    end;
    let skip_var = !p_var in
    let base = cr + Arena.lit_offset in
    let stop = base + (Array.unsafe_get adata cr lsr Arena.size_shift) in
    for w = base to stop - 1 do
      let q_idx = Array.unsafe_get adata w in
      let v = q_idx lsr 1 in
      if v <> skip_var
         && Array.unsafe_get seen v = 0
         && Array.unsafe_get level v > 0
      then begin
        var_bump t v;
        Array.unsafe_set seen v 1;
        if Array.unsafe_get level v >= dl then incr path_count
        else Vec.push learnt (Lit.of_index q_idx)
      end
    done;
    (* Select the next literal to resolve on. *)
    while Array.unsafe_get seen (Lit.var (Vec.unsafe_get t.trail !index)) = 0 do
      decr index
    done;
    let pl = Vec.unsafe_get t.trail !index in
    decr index;
    p_var := Lit.var pl;
    p_lit := pl;
    seen.(!p_var) <- 0;
    decr path_count;
    if !path_count <= 0 then continue := false
    else begin
      let r = t.reason.(!p_var) in
      assert (r >= 0);
      c := r
    end
  done;
  let asserting = Lit.negate !p_lit in
  Vec.set learnt 0 asserting;
  (* Minimisation. *)
  Vec.clear t.analyze_toclear;
  Vec.iter (fun l -> Vec.push t.analyze_toclear l) learnt;
  let before = Vec.length learnt in
  if t.cfg.minimize then begin
    let abstract_levels =
      Vec.fold
        (fun acc l -> acc lor abstract_level t (Lit.var l))
        0 learnt
    in
    let keep l =
      Lit.equal l asserting
      || t.reason.(Lit.var l) < 0
      || not (lit_redundant t l abstract_levels)
    in
    Vec.filter_in_place keep learnt
  end;
  t.stats.minimized_literals <- t.stats.minimized_literals + (before - Vec.length learnt);
  (* Clear all seen marks. *)
  Vec.iter (fun l -> t.seen.(Lit.var l) <- 0) t.analyze_toclear;
  (* Find the backjump level and place a literal of that level at 1. *)
  let bt_level =
    if Vec.length learnt = 1 then 0
    else begin
      let max_i = ref 1 in
      for k = 2 to Vec.length learnt - 1 do
        if t.level.(Lit.var (Vec.get learnt k)) > t.level.(Lit.var (Vec.get learnt !max_i))
        then max_i := k
      done;
      let tmp = Vec.get learnt 1 in
      Vec.set learnt 1 (Vec.get learnt !max_i);
      Vec.set learnt !max_i tmp;
      t.level.(Lit.var (Vec.get learnt 1))
    end
  in
  let glue = compute_glue_vec t learnt in
  (bt_level, glue)

(* --- reduce ----------------------------------------------------------- *)

(* A clause is locked while it is the reason of one of its watched
   literals. Binary clauses are never literal-swapped, so the implied
   literal can sit at either position. *)
let locked t c =
  let a = t.arena in
  let v0 = Lit.var (Arena.lit a c 0) in
  (var_assigned t v0 && t.reason.(v0) = c)
  || (Arena.size a c = 2
     &&
     let v1 = Lit.var (Arena.lit a c 1) in
     var_assigned t v1 && t.reason.(v1) = c)

(* Drop watchers of deleted clauses in one pass over the watch lists
   (the stride-2 analogue of the seed solver's [rebuild_watches]; BCP
   itself never checks the deleted flag). *)
let flush_watches t =
  let a = t.arena in
  let watches = t.watches in
  for w = 0 to Array.length watches - 1 do
    let ws = watches.(w) in
    let n = Vec.length ws in
    if n > 0 then begin
      let i = ref 0 and j = ref 0 in
      while !i < n do
        let cr = Vec.unsafe_get ws (!i + 1) in
        if not (Arena.deleted a cr) then begin
          Vec.unsafe_set ws !j (Vec.unsafe_get ws !i);
          Vec.unsafe_set ws (!j + 1) cr;
          j := !j + 2
        end;
        i := !i + 2
      done;
      Vec.shrink ws !j
    end
  done

(* Copying arena compaction: relocate every live root (clause vectors
   first for allocation-order locality, then watchers and reasons,
   which find forwarding pointers), then adopt the to-space. Callers
   must have flushed dead references first — relocating a deleted
   clause raises. *)
let arena_gc t =
  let from_ = t.arena in
  let into = Arena.gc_target from_ in
  for idx = 0 to Vec.length t.originals - 1 do
    Vec.unsafe_set t.originals idx (Arena.reloc ~from_ ~into (Vec.unsafe_get t.originals idx))
  done;
  for idx = 0 to Vec.length t.learnts - 1 do
    Vec.unsafe_set t.learnts idx (Arena.reloc ~from_ ~into (Vec.unsafe_get t.learnts idx))
  done;
  for w = 0 to Array.length t.watches - 1 do
    let ws = t.watches.(w) in
    let n = Vec.length ws in
    let i = ref 1 in
    while !i < n do
      Vec.unsafe_set ws !i (Arena.reloc ~from_ ~into (Vec.unsafe_get ws !i));
      i := !i + 2
    done
  done;
  for i = 0 to Vec.length t.trail - 1 do
    let v = Lit.var (Vec.get t.trail i) in
    let r = t.reason.(v) in
    if r >= 0 then t.reason.(v) <- Arena.reloc ~from_ ~into r
  done;
  Arena.adopt t.arena into;
  t.arena_gcs <- t.arena_gcs + 1;
  Obs.Metrics.incr m_arena_gcs

(* Compact once a quarter of the arena is garbage. *)
let maybe_gc t =
  let g = Arena.garbage t.arena in
  if g > 0 && g * 4 >= Arena.total_words t.arena then arena_gc t

let ensure_rank_scratch t n =
  if Array.length t.rk_keys < n then begin
    let cap = ref (max 16 (Array.length t.rk_keys)) in
    while !cap < n do cap := 2 * !cap done;
    t.rk_keys <- Array.make !cap 0;
    t.rk_tie <- Array.make !cap 0;
    t.rk_refs <- Array.make !cap 0
  end

(* Delete the lowest-ranked fraction of reducible learned clauses
   according to the configured policy, then reset the propagation
   counters ("since the last clause deletion", Eq. 2). Candidate
   ranking fills preallocated parallel (packed key, cid, cref) arrays
   and sorts them in place — no per-candidate allocation. *)
let reduce_body t =
  t.stats.reduces <- t.stats.reduces + 1;
  Obs.Metrics.incr m_reduce_passes;
  let arena = t.arena in
  let pc = t.prop_counts in
  let f_max = ref 0 in
  for v = 0 to Array.length pc - 1 do
    if Array.unsafe_get pc v > !f_max then f_max := Array.unsafe_get pc v
  done;
  let has_alpha, alpha =
    match Policy.alpha_of t.cfg.policy with
    | Some alpha -> (true, alpha)
    | None -> (false, 0.0)
  in
  let threshold = alpha *. float_of_int !f_max in
  let nl = Vec.length t.learnts in
  ensure_rank_scratch t nl;
  let keys = t.rk_keys and tie = t.rk_tie and refs = t.rk_refs in
  let inpro = t.cfg.inprocess in
  let n = ref 0 in
  for idx = 0 to nl - 1 do
    let c = Vec.unsafe_get t.learnts idx in
    let glue = Arena.glue arena c in
    (* With the tiered DB the core tier replaces the flat glue
       exemption: promotion decides what is untouchable. *)
    let skip =
      if inpro then Arena.tier arena c = Arena.tier_core || locked t c
      else glue <= t.cfg.tier1_glue || locked t c
    in
    if skip then ()
    else begin
      if inpro then begin
        (* Age the usage counter; an idle mid clause falls back to
           local so it competes with the aggressive tier again. *)
        let u = Arena.usage arena c in
        if u = 0 && Arena.tier arena c = Arena.tier_mid then
          Arena.set_tier arena c Arena.tier_local
        else if u > 0 then Arena.set_usage arena c (u - 1)
      end;
      let size = Arena.size arena c in
      let frequency =
        if has_alpha then begin
          Obs.Metrics.incr m_frequency_recomputes;
          if !f_max = 0 then 0
          else begin
            let fr = ref 0 in
            for k = 0 to size - 1 do
              let v = Lit.var (Arena.lit arena c k) in
              if float_of_int (Array.unsafe_get pc v) > threshold then incr fr
            done;
            !fr
          end
        end
        else 0
      in
      let cid = Arena.cid arena c in
      keys.(!n) <-
        (if inpro then
           Policy.tiered_key t.cfg.policy ~tier:(Arena.tier arena c) ~id:cid
             ~glue ~size ~activity_bits:(Arena.activity_bits arena c)
             ~frequency
         else
           Policy.packed_key t.cfg.policy ~id:cid ~glue ~size
             ~activity_bits:(Arena.activity_bits arena c) ~frequency);
      tie.(!n) <- cid;
      refs.(!n) <- c;
      incr n
    end
  done;
  Keysort.sort ~keys ~tie ~refs ~len:!n;
  let to_delete = int_of_float (t.cfg.reduce_fraction *. float_of_int !n) in
  for i = 0 to to_delete - 1 do
    let c = refs.(i) in
    Arena.mark_deleted arena c;
    t.stats.deleted_total <- t.stats.deleted_total + 1;
    trace_deleted t c
  done;
  Obs.Metrics.add m_clauses_deleted to_delete;
  Obs.Metrics.add m_clauses_kept (!n - to_delete);
  if to_delete > 0 then begin
    (* Drop deleted crefs from the learnt vector, preserving order. *)
    let keep = ref 0 in
    for idx = 0 to nl - 1 do
      let c = Vec.unsafe_get t.learnts idx in
      if not (Arena.deleted arena c) then begin
        Vec.unsafe_set t.learnts !keep c;
        incr keep
      end
    done;
    Vec.shrink t.learnts !keep;
    flush_watches t;
    maybe_gc t
  end;
  Array.fill pc 0 (Array.length pc) 0

let reduce t =
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "solver.reduce" (fun () ->
        Obs.Metrics.time h_reduce_seconds (fun () -> reduce_body t))
  else Obs.Metrics.time h_reduce_seconds (fun () -> reduce_body t)

let reduce_now t = reduce t

(* --- restarts --------------------------------------------------------- *)

let note_conflict_for_restart t glue =
  t.conflicts_since_restart <- t.conflicts_since_restart + 1;
  match t.restart with
  | R_none | R_luby _ -> ()
  | R_glucose (fast, slow, _) ->
    let g = float_of_int glue in
    Util.Ema.update fast g;
    Util.Ema.update slow g

let should_restart t =
  match t.restart with
  | R_none -> false
  | R_luby (_, limit) -> t.conflicts_since_restart >= !limit
  | R_glucose (fast, slow, margin) ->
    t.conflicts_since_restart >= 50
    && Util.Ema.count slow > 100
    && Util.Ema.value fast > margin *. Util.Ema.value slow

let do_restart t =
  t.stats.restarts <- t.stats.restarts + 1;
  Obs.Metrics.incr m_restarts;
  t.conflicts_since_restart <- 0;
  (match t.restart with
  | R_luby (it, limit) -> limit := Util.Luby.next it
  | R_none | R_glucose _ -> ());
  backtrack t 0

(* --- inprocessing ------------------------------------------------------ *)

(* In-search simplification at decision level 0, scheduled every
   [inprocess_interval] restarts: clause vivification (re-propagate a
   candidate's literals under fresh decision levels and shrink or drop
   it) followed by backward subsumption / self-subsuming resolution
   over the arena with occurrence lists and literal stamps. Every
   rewrite emits a DRUP add-then-delete pair; DESIGN.md §9 states the
   soundness rules the code below follows:

   - locked clauses (reasons of root assignments) are never deleted or
     rewritten, so every root unit stays UP-derivable forever;
   - all root-level trail literals are emitted as learned unit lines
     before anything is deleted (a root-satisfied clause may be the
     only support of a later RUP check);
   - an added clause line always precedes the deletion of the clause it
     replaces, so the replaced clause participates in the RUP check;
   - a learned clause that subsumes an irredundant one is promoted to
     irredundant before the subsumee dies, keeping reduce from ever
     deleting the last cover of an original clause. *)

(* Emit every root-level trail literal not yet in the proof. Each is
   RUP: its reason chain consists of locked (hence live) clauses. *)
let emit_root_units t =
  assert (decision_level t = 0);
  while t.root_units_emitted < Vec.length t.trail do
    trace_learned_lits t [| Vec.get t.trail t.root_units_emitted |];
    t.root_units_emitted <- t.root_units_emitted + 1
  done

(* Remove [c]'s two watcher entries (cref match, so it works for both
   binary and long tags). *)
let detach t c =
  let remove_watch l =
    let ws = watch_list t l in
    let n = Vec.length ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let tag = Vec.unsafe_get ws !i and cr = Vec.unsafe_get ws (!i + 1) in
      if cr <> c then begin
        Vec.unsafe_set ws !j tag;
        Vec.unsafe_set ws (!j + 1) cr;
        j := !j + 2
      end;
      i := !i + 2
    done;
    Vec.shrink ws !j
  in
  remove_watch (Arena.lit t.arena c 0);
  remove_watch (Arena.lit t.arena c 1)

let probe_assume t l =
  Vec.push t.trail_lim (Vec.length t.trail);
  ignore (enqueue t l (-1))

(* Rewrite [c] in place to exactly [lits] (a strict subset of its
   current literals, in order). Caller detaches/reattaches. *)
let commit_rewrite t c lits =
  let a = t.arena in
  let n = Array.length lits in
  for k = 0 to n - 1 do
    Arena.set_lit a c k lits.(k)
  done;
  Arena.shrink_size a c n;
  if Arena.glue a c > n - 1 then Arena.set_glue a c (n - 1);
  if t.cfg.inprocess && Arena.learned a c then begin
    let tier' =
      Policy.initial_tier ~tier1_glue:t.cfg.tier1_glue
        ~tier2_glue:t.cfg.tier2_glue ~glue:(Arena.glue a c)
    in
    if tier' > Arena.tier a c then Arena.set_tier a c tier'
  end

(* Assert a derived unit at the root and propagate it to fixpoint,
   emitting it (and its consequences) into the proof. Returns false
   when the unit contradicts the root state — the formula is
   unsatisfiable and the empty clause has been emitted. *)
let assert_root_unit t l =
  let v = lit_value t l in
  if v > 0 then true (* already a root unit, already emitted *)
  else if v < 0 then begin
    trace_learned_lits t [| l |];
    trace_learned_lits t [||];
    false
  end
  else begin
    ignore (enqueue t l (-1));
    let confl = propagate t in
    emit_root_units t;
    if confl >= 0 then begin
      trace_learned_lits t [||];
      false
    end
    else true
  end

(* Vivify one attached, unlocked, live clause at level 0. For each
   literal in turn: a literal already implied true closes the clause at
   the kept prefix plus that literal; an implied-false literal is
   dropped; otherwise its negation is assumed at a fresh decision level
   and propagated, a conflict again closing the clause at the prefix.
   [kept] is caller-provided scratch. *)
let vivify_clause t c kept =
  let a = t.arena in
  let ls = Arena.lits_array a c in
  if Array.exists (fun l -> lit_value t l > 0) ls then begin
    (* Root-satisfied: the clause is redundant outright. *)
    detach t c;
    trace_deleted_lits t ls;
    Arena.mark_deleted a c;
    `Deleted
  end
  else begin
    detach t c (* the clause must not propagate in its own probe *);
    Vec.clear kept;
    let n = Array.length ls in
    let stopped = ref false in
    let i = ref 0 in
    while (not !stopped) && !i < n do
      let l = ls.(!i) in
      incr i;
      let v = lit_value t l in
      if v > 0 then begin
        Vec.push kept l;
        stopped := true
      end
      else if v < 0 then () (* falsified by the prefix: drop *)
      else begin
        if Runtime.Fault.fires Runtime.Fault.Inprocess_abort then
          Runtime.Error.raise_
            (Runtime.Error.Injected_fault { point = "inprocess-abort" });
        probe_assume t (Lit.negate l);
        let confl = propagate t in
        Vec.push kept l;
        if confl >= 0 then stopped := true
      end
    done;
    backtrack_probe t 0;
    let n' = Vec.length kept in
    if n' = n then begin
      attach t c;
      `Kept
    end
    else if n' = 0 then begin
      (* Every literal was false at the root: direct conflict. *)
      trace_learned_lits t [||];
      `Unsat
    end
    else if n' = 1 then begin
      let ok = assert_root_unit t (Vec.get kept 0) in
      trace_deleted_lits t ls;
      Arena.mark_deleted a c;
      if ok then `Deleted else `Unsat
    end
    else begin
      let lits' = Vec.to_array kept in
      trace_learned_lits t lits';
      commit_rewrite t c lits';
      trace_deleted_lits t ls;
      attach t c;
      `Rewritten
    end
  end

(* Drop deleted crefs from [vec], returning [idx] adjusted for the
   removals before it (used to resume an interrupted iteration). *)
let prune_vec_deleted t vec idx =
  let a = t.arena in
  let n = Vec.length vec in
  let keep = ref 0 and idx' = ref idx in
  for i = 0 to n - 1 do
    let c = Vec.unsafe_get vec i in
    if Arena.deleted a c then begin
      if i < idx then decr idx'
    end
    else begin
      Vec.unsafe_set vec !keep c;
      incr keep
    end
  done;
  Vec.shrink vec !keep;
  !idx'

(* Mid-vivification compaction: every deleted clause was detached
   before deletion, so the watch lists hold only live crefs; pruning
   the clause vectors makes every root live and [arena_gc] safe. *)
let gc_during_inprocess t vec idx =
  let idx' = prune_vec_deleted t vec idx in
  let other = if vec == t.learnts then t.originals else t.learnts in
  ignore (prune_vec_deleted t other 0);
  arena_gc t;
  idx'

let vivify_pass t =
  let start = t.stats.propagations in
  let kept = Vec.create ~dummy:(Lit.pos 1) () in
  let ok = ref true in
  (* The budget charges every probed literal, not just propagations: a
     probe that derives nothing still walks the assumed literal's watch
     list, so a propagation-only budget would let a pass sweep the
     whole database at full traversal cost. *)
  let ticks = ref 0 in
  let process vec =
    let idx = ref 0 in
    while
      !ok && !idx < Vec.length vec
      && t.stats.propagations - start + !ticks <= t.cfg.vivify_budget
    do
      let c = Vec.unsafe_get vec !idx in
      if
        (not (Arena.deleted t.arena c))
        && (not (locked t c))
        && Arena.size t.arena c >= 2
        && (* Local-tier learnts are deletion fodder: probing them costs
              more than the next reduce will ever save. *)
        ((not (Arena.learned t.arena c))
        || Arena.tier t.arena c > Arena.tier_local)
      then begin
        ticks := !ticks + Arena.size t.arena c;
        match vivify_clause t c kept with
        | `Kept -> ()
        | `Rewritten ->
          t.stats.vivified <- t.stats.vivified + 1;
          Obs.Metrics.incr m_vivified
        | `Deleted ->
          t.stats.vivify_deleted <- t.stats.vivify_deleted + 1;
          t.stats.deleted_total <- t.stats.deleted_total + 1;
          Obs.Metrics.incr m_vivify_deleted
        | `Unsat -> ok := false
      end;
      incr idx;
      if !ok && Arena.garbage t.arena * 4 >= Arena.total_words t.arena then
        idx := gc_during_inprocess t vec !idx
    done
  in
  process t.learnts;
  if !ok then process t.originals;
  !ok

(* Backward subsumption and self-subsuming resolution. Occurrence
   lists and the crefs inside them are raw arena offsets, so no
   compaction may run during this pass. *)
let subsume_pass t =
  let a = t.arena in
  let occ = Array.make (Array.length t.values) [] in
  let occ_len = Array.make (Array.length t.values) 0 in
  let add_occ c =
    if not (Arena.deleted a c) then
      for k = 0 to Arena.size a c - 1 do
        let i = Lit.to_index (Arena.lit a c k) in
        occ.(i) <- c :: occ.(i);
        occ_len.(i) <- occ_len.(i) + 1
      done
  in
  Vec.iter add_occ t.originals;
  Vec.iter add_occ t.learnts;
  let budget = ref t.cfg.subsume_budget in
  let ok = ref true in
  let strengthen d k_drop =
    let old = Arena.lits_array a d in
    let dn = Array.length old in
    let lits' = Array.make (dn - 1) old.(0) in
    let j = ref 0 in
    Array.iteri
      (fun i l ->
        if i <> k_drop then begin
          lits'.(!j) <- l;
          incr j
        end)
      old;
    detach t d;
    if dn - 1 = 1 then begin
      let keep_going = assert_root_unit t lits'.(0) in
      trace_deleted_lits t old;
      Arena.mark_deleted a d;
      if not keep_going then ok := false
    end
    else begin
      trace_learned_lits t lits';
      commit_rewrite t d lits';
      trace_deleted_lits t old;
      attach t d
    end;
    t.stats.strengthened <- t.stats.strengthened + 1;
    Obs.Metrics.incr m_strengthened
  in
  let try_subsume_with c =
    if (not (Arena.deleted a c)) && !budget > 0 then begin
      let sz = Arena.size a c in
      (* Stamping is charged too: with a free setup, a pass over a big
         database costs O(DB) even when the budget stops every scan. *)
      budget := !budget - sz;
      t.lit_stamp_gen <- t.lit_stamp_gen + 1;
      let gen = t.lit_stamp_gen in
      let stamp = t.lit_stamp in
      (* Stamp the subsumer's literals; scan the shortest occurrence
         list among them. *)
      let best = ref (-1) and best_len = ref max_int in
      for k = 0 to sz - 1 do
        let i = Lit.to_index (Arena.lit a c k) in
        stamp.(i) <- gen;
        if occ_len.(i) < !best_len then begin
          best_len := occ_len.(i);
          best := i
        end
      done;
      List.iter
        (fun d ->
          if
            !ok && !budget > 0 && d <> c
            && (not (Arena.deleted a d))
            && Arena.size a d >= sz
            && not (locked t d)
          then begin
            decr budget;
            let dn = Arena.size a d in
            let pos = ref 0 and negc = ref 0 and negi = ref (-1) in
            for k = 0 to dn - 1 do
              let i = Lit.to_index (Arena.lit a d k) in
              if stamp.(i) = gen then incr pos
              else if stamp.(i lxor 1) = gen then begin
                incr negc;
                negi := k
              end
            done;
            if !pos = sz then begin
              (* [d] is a (not necessarily strict) superset of [c]. *)
              if Arena.learned a c && not (Arena.learned a d) then begin
                (* The survivor must outlive every reduce. *)
                Arena.clear_learned a c;
                Vec.push t.originals c
              end;
              detach t d;
              trace_deleted_lits t (Arena.lits_array a d);
              Arena.mark_deleted a d;
              t.stats.subsumed <- t.stats.subsumed + 1;
              t.stats.deleted_total <- t.stats.deleted_total + 1;
              Obs.Metrics.incr m_subsumed
            end
            else if !pos = sz - 1 && !negc = 1 then
              (* Self-subsuming resolution: neither clause is a
                 tautology, so the flipped literal is exactly the
                 subsumer literal missing from [d]. *)
              strengthen d !negi
          end)
        occ.(!best)
    end
  in
  (* Round-robin over originals then learnts, resuming where the last
     pass ran out of budget so successive passes cover the whole
     database instead of re-scanning the same prefix. *)
  let n_orig = Vec.length t.originals in
  let total = n_orig + Vec.length t.learnts in
  if total > 0 then begin
    let i = ref (t.subsume_cursor mod total) in
    let processed = ref 0 in
    while !ok && !budget > 0 && !processed < total do
      let c =
        if !i < n_orig then Vec.unsafe_get t.originals !i
        else Vec.unsafe_get t.learnts (!i - n_orig)
      in
      try_subsume_with c;
      incr processed;
      i := if !i + 1 = total then 0 else !i + 1
    done;
    t.subsume_cursor <- !i
  end;
  !ok

let update_tier_gauges t =
  let a = t.arena in
  let core = ref 0 and mid = ref 0 and local = ref 0 in
  Vec.iter
    (fun c ->
      if not (Arena.deleted a c) then begin
        let tr = Arena.tier a c in
        if tr = Arena.tier_core then incr core
        else if tr = Arena.tier_mid then incr mid
        else incr local
      end)
    t.learnts;
  Obs.Metrics.set g_tier_core (float_of_int !core);
  Obs.Metrics.set g_tier_mid (float_of_int !mid);
  Obs.Metrics.set g_tier_local (float_of_int !local)

(* One full inprocessing pass at level 0. Returns false when the pass
   derived unsatisfiability (empty clause already emitted). *)
let inprocess_body t =
  t.stats.inprocess_passes <- t.stats.inprocess_passes + 1;
  Obs.Metrics.incr m_inprocess_passes;
  emit_root_units t;
  let ok = ref true in
  if t.cfg.inprocess_vivify then ok := vivify_pass t;
  (* Building occurrence lists costs O(database) regardless of the
     inspection budget, so subsumption waits until the database grew
     enough (12.5%) since its last pass to offer new subsumees. *)
  let db_size = Vec.length t.originals + Vec.length t.learnts in
  if
    !ok && t.cfg.inprocess_subsume
    && db_size * 8 >= t.last_subsume_db * 9
  then begin
    ok := subsume_pass t;
    t.last_subsume_db <- db_size
  end;
  (* Drop dead crefs (and learnts promoted to irredundant by
     subsumption) before compaction; watch lists are already clean
     because deletion always follows detachment. *)
  ignore (prune_vec_deleted t t.originals 0);
  let keep = ref 0 in
  for i = 0 to Vec.length t.learnts - 1 do
    let c = Vec.unsafe_get t.learnts i in
    if (not (Arena.deleted t.arena c)) && Arena.learned t.arena c then begin
      Vec.unsafe_set t.learnts !keep c;
      incr keep
    end
  done;
  Vec.shrink t.learnts !keep;
  maybe_gc t;
  update_tier_gauges t;
  !ok

let inprocess t =
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "solver.inprocess" (fun () ->
        Obs.Metrics.time h_inprocess_seconds (fun () -> inprocess_body t))
  else Obs.Metrics.time h_inprocess_seconds (fun () -> inprocess_body t)

(* --- creation --------------------------------------------------------- *)

exception Trivially_unsat

(* Sort, deduplicate, and drop tautologies, into the [t.simp] scratch
   array (as literal indices, ascending). Returns the simplified
   length, or -1 for a tautological clause. Insertion sort: input
   clauses are short, and nothing is allocated beyond scratch growth. *)
let simplify_into t lits =
  let n = Array.length lits in
  if Array.length t.simp < n then t.simp <- Array.make (max 16 (2 * n)) 0;
  let s = t.simp in
  for k = 0 to n - 1 do
    s.(k) <- Lit.to_index lits.(k)
  done;
  for k = 1 to n - 1 do
    let x = s.(k) in
    let j = ref (k - 1) in
    while !j >= 0 && s.(!j) > x do
      s.(!j + 1) <- s.(!j);
      decr j
    done;
    s.(!j + 1) <- x
  done;
  (* Dedup in place; a complementary pair is adjacent after sorting
     (indices 2v and 2v+1). *)
  let out = ref 0 in
  let taut = ref false in
  for k = 0 to n - 1 do
    if !taut then ()
    else if !out > 0 && s.(!out - 1) = s.(k) then ()
    else if !out > 0 && s.(!out - 1) lxor 1 = s.(k) then taut := true
    else begin
      s.(!out) <- s.(k);
      incr out
    end
  done;
  if !taut then -1 else !out

let add_original t lits =
  let n = simplify_into t lits in
  if n = 0 then raise Trivially_unsat
  else if n = 1 then begin
    if not (enqueue t (Lit.of_index t.simp.(0)) (-1)) then raise Trivially_unsat
  end
  else if n >= 2 then begin
    let c =
      Arena.alloc t.arena ~learned:false ~glue:0 ~cid:t.next_cid ~size:n
    in
    t.next_cid <- t.next_cid + 1;
    for k = 0 to n - 1 do
      Arena.set_lit t.arena c k (Lit.of_index t.simp.(k))
    done;
    Vec.push t.originals c;
    attach t c
  end

let create ?(config = Config.default) formula =
  let n = Cnf.Formula.num_vars formula in
  let t =
    {
      cfg = config;
      n;
      stats = Solver_stats.create ();
      values = Array.make ((2 * (n + 1)) + 2) 0;
      level = Array.make (n + 1) 0;
      reason = Array.make (n + 1) (-1);
      phase = Array.make (n + 1) false;
      trail = Vec.create ~dummy:(Lit.pos 1) ();
      trail_lim = Vec.create ~dummy:0 ();
      qhead = 0;
      arena = Arena.create ~capacity:4096 ();
      watches = Array.init ((2 * (n + 1)) + 2) (fun _ -> Vec.create ~dummy:0 ());
      originals = Vec.create ~dummy:0 ();
      learnts = Vec.create ~dummy:0 ();
      next_cid = 0;
      arena_gcs = 0;
      order = Var_heap.create ~num_vars:n;
      vmtf =
        (match config.branching with
        | Config.Evsids -> None
        | Config.Vmtf -> Some (Vmtf.create ~num_vars:n));
      var_inc = 1.0;
      cla_inc = 1.0;
      restart = make_restart_state config;
      conflicts_since_restart = 0;
      next_reduce = config.reduce_first;
      restarts_since_inprocess = 0;
      root_units_emitted = 0;
      lit_stamp = Array.make ((2 * (n + 1)) + 2) 0;
      lit_stamp_gen = 0;
      subsume_cursor = 0;
      last_subsume_db = 0;
      prop_counts = Array.make (n + 1) 0;
      seen = Array.make (n + 1) 0;
      learnt = Vec.create ~dummy:(Lit.pos 1) ();
      analyze_toclear = Vec.create ~dummy:(Lit.pos 1) ();
      analyze_stack = Vec.create ~dummy:(Lit.pos 1) ();
      simp = Array.make 16 0;
      rk_keys = [||];
      rk_tie = [||];
      rk_refs = [||];
      level_stamp = Array.make (n + 2) 0;
      stamp_gen = 0;
      in_solve = false;
      answer = None;
      trace = None;
      assumptions = [||];
      core = None;
      share = None;
    }
  in
  (try Cnf.Formula.iter_clauses (fun c -> add_original t c) formula
   with Trivially_unsat -> t.answer <- Some Unsat);
  t

(* --- incremental API (IPASIR-style state machine) ----------------------- *)

type state = [ `Ready | `Solving | `Sat | `Unsat | `Unknown ]

let state t : state =
  if t.in_solve then `Solving
  else
    match t.answer with
    | None -> `Ready
    | Some (Sat _) -> `Sat
    | Some Unsat -> `Unsat
    | Some Unknown -> `Unknown

let state_name t =
  match state t with
  | `Ready -> "ready"
  | `Solving -> "solving"
  | `Sat -> "sat"
  | `Unsat -> "unsat"
  | `Unknown -> "unknown"

let guard t op =
  if t.in_solve then
    Runtime.Error.raise_
      (Runtime.Error.Invalid_state
         {
           op;
           state = "solving";
           detail = "mutating or re-entrant calls are only legal between solves";
         })

let with_solving t f =
  t.in_solve <- true;
  Fun.protect ~finally:(fun () -> t.in_solve <- false) f

(* Grow every per-variable array to cover variables [1..v], with
   geometric slack so a burst of [new_var] calls is amortised O(1).
   Extra capacity beyond [t.n] is benign everywhere: scans that walk
   whole arrays ([reduce]'s frequency pass, watch flushing) see zeros
   and empty vectors. *)
let grow_var_arrays t v =
  if v + 1 > Array.length t.level then begin
    let cap = max (v + 1) (2 * Array.length t.level) in
    let grown src fill =
      let dst = Array.make cap fill in
      Array.blit src 0 dst 0 (Array.length src);
      dst
    in
    t.level <- grown t.level 0;
    t.reason <- grown t.reason (-1);
    t.phase <- grown t.phase false;
    t.prop_counts <- grown t.prop_counts 0;
    t.seen <- grown t.seen 0;
    t.level_stamp <-
      (let dst = Array.make (cap + 1) 0 in
       Array.blit t.level_stamp 0 dst 0 (Array.length t.level_stamp);
       dst);
    let lcap = (2 * cap) + 2 in
    t.values <-
      (let dst = Array.make lcap 0 in
       Array.blit t.values 0 dst 0 (Array.length t.values);
       dst);
    t.lit_stamp <-
      (let dst = Array.make lcap 0 in
       Array.blit t.lit_stamp 0 dst 0 (Array.length t.lit_stamp);
       dst);
    t.watches <-
      (let old = t.watches in
       Array.init lcap (fun i ->
           if i < Array.length old then old.(i) else Vec.create ~dummy:0 ()))
  end

let new_var t =
  guard t "new_var";
  let v = t.n + 1 in
  grow_var_arrays t v;
  t.n <- v;
  Var_heap.grow t.order ~num_vars:v;
  (match t.vmtf with Some q -> Vmtf.grow q ~num_vars:v | None -> ());
  (* Unsat is monotone under variable introduction; a cached model does
     not cover the fresh variable, so it is dropped. *)
  (match t.answer with
  | Some Unsat -> ()
  | Some (Sat _ | Unknown) | None -> t.answer <- None);
  v

let add_clause t lits =
  guard t "add_clause";
  let lits = Array.of_list lits in
  Array.iter
    (fun l ->
      let v = Lit.var l in
      if v < 1 || v > t.n then
        Runtime.Error.raise_
          (Runtime.Error.Invalid_state
             {
               op = "add_clause";
               state = state_name t;
               detail =
                 Printf.sprintf
                   "variable %d has not been introduced (num_vars = %d); call \
                    new_var first"
                   v t.n;
             }))
    lits;
  match t.answer with
  | Some Unsat -> () (* Unsat is sticky: adding clauses cannot undo it. *)
  | Some (Sat _ | Unknown) | None ->
    backtrack t 0;
    let n = simplify_into t lits in
    if n < 0 then () (* tautology: a no-op, any cached answer survives *)
    else begin
      t.core <- None;
      if n = 0 then t.answer <- Some Unsat
      else if n = 1 then begin
        (* Root unit: enqueue now; the next solve's propagation pass
           picks it up because qhead trails the new literal. *)
        if enqueue t (Lit.of_index t.simp.(0)) (-1) then t.answer <- None
        else t.answer <- Some Unsat
      end
      else begin
        (* Attachment invariant: the two watched slots must not hold
           literals already false at the root, so partition non-false
           literals to the front. *)
        let arr = Array.make n 0 in
        let nonfalse = ref 0 in
        for k = 0 to n - 1 do
          if t.values.(t.simp.(k)) >= 0 then begin
            arr.(!nonfalse) <- t.simp.(k);
            incr nonfalse
          end
        done;
        let back = ref !nonfalse in
        for k = 0 to n - 1 do
          if t.values.(t.simp.(k)) < 0 then begin
            arr.(!back) <- t.simp.(k);
            incr back
          end
        done;
        if !nonfalse = 0 then t.answer <- Some Unsat
        else begin
          let c =
            Arena.alloc t.arena ~learned:false ~glue:0 ~cid:t.next_cid ~size:n
          in
          t.next_cid <- t.next_cid + 1;
          for k = 0 to n - 1 do
            Arena.set_lit t.arena c k (Lit.of_index arr.(k))
          done;
          Vec.push t.originals c;
          attach t c;
          (if !nonfalse = 1 then
             (* Unit under the root assignment: propagate its single
                non-false literal with the new clause as reason. *)
             let l = Lit.of_index arr.(0) in
             if t.values.(arr.(0)) = 0 then ignore (enqueue t l c));
          t.answer <- None
        end
      end
    end

(* --- learned clause installation -------------------------------------- *)

(* Canonical dedup key for clause sharing: sorted literal indices. One
   table per solver covers everything learned, exported, or imported
   while sharing is active, so a clause never crosses the wire twice in
   either direction and a foreign duplicate of a live clause is
   dropped before it can pollute the arena. *)
let share_key lits =
  let n = Array.length lits in
  let idx = Array.init n (fun k -> Lit.to_index lits.(k)) in
  Array.sort compare idx;
  let b = Buffer.create (4 * n) in
  Array.iter
    (fun x ->
      Buffer.add_string b (string_of_int x);
      Buffer.add_char b ',')
    idx;
  Buffer.contents b

let install_learnt t glue =
  t.stats.learned_total <- t.stats.learned_total + 1;
  Obs.Metrics.incr m_clauses_learned;
  trace_learned t;
  (match t.share with
  | Some sh -> Hashtbl.replace sh.sh_seen (share_key (Vec.to_array t.learnt)) ()
  | None -> ());
  let learnt = t.learnt in
  if Vec.length learnt = 1 then begin
    backtrack t 0;
    ignore (enqueue t (Vec.get learnt 0) (-1))
  end
  else begin
    let size = Vec.length learnt in
    let c = Arena.alloc t.arena ~learned:true ~glue ~cid:t.next_cid ~size in
    t.next_cid <- t.next_cid + 1;
    if t.cfg.inprocess then
      Arena.set_tier t.arena c
        (Policy.initial_tier ~tier1_glue:t.cfg.tier1_glue
           ~tier2_glue:t.cfg.tier2_glue ~glue);
    for k = 0 to size - 1 do
      Arena.set_lit t.arena c k (Vec.get learnt k)
    done;
    Vec.push t.learnts c;
    attach t c;
    ignore (enqueue t (Vec.get learnt 0) c)
  end

(* --- portfolio clause sharing ------------------------------------------ *)

let f_max_of_counts counts n =
  let m = ref 0 in
  for v = 1 to n do
    if counts.(v) > !m then m := counts.(v)
  done;
  !m

(* Gather this epoch's exports at decision level 0: fresh root units
   (everyone wants those), then fresh learnts passing the glue /
   propagation-frequency filter, watermarked by cid so nothing is sent
   twice and capped per epoch so one loud worker cannot flood the
   exchange. Imported clauses ([sh_foreign]) never echo back out. *)
let collect_exports t sh =
  let acc = ref [] and count = ref 0 in
  let tlen = Vec.length t.trail in
  while sh.sh_units_sent < tlen && !count < sh.sh_cap do
    let l = Vec.get t.trail sh.sh_units_sent in
    sh.sh_units_sent <- sh.sh_units_sent + 1;
    let key = share_key [| l |] in
    if not (Hashtbl.mem sh.sh_seen key) then begin
      Hashtbl.replace sh.sh_seen key ();
      acc := { Share.lits = [| l |]; glue = 0; frequency = 0 } :: !acc;
      incr count
    end
  done;
  let last = sh.sh_last_cid in
  sh.sh_last_cid <- t.next_cid - 1;
  let a = t.arena in
  let alpha =
    Option.value (Policy.alpha_of t.cfg.policy) ~default:Policy.default_alpha
  in
  let f_max = f_max_of_counts t.prop_counts t.n in
  let n_learnts = Vec.length t.learnts in
  let i = ref 0 in
  while !i < n_learnts && !count < sh.sh_cap do
    let c = Vec.unsafe_get t.learnts !i in
    incr i;
    if
      (not (Arena.deleted a c))
      && Arena.cid a c > last
      && not (Hashtbl.mem sh.sh_foreign (Arena.cid a c))
    then begin
      let size = Arena.size a c and glue = Arena.glue a c in
      if size <= sh.sh_max_size then begin
        let lits = Arena.lits_array a c in
        let frequency =
          Policy.clause_frequency ~alpha ~f_max ~counts:t.prop_counts ~lits
        in
        if glue <= sh.sh_glue || 2 * frequency >= size then begin
          acc := { Share.lits; glue; frequency } :: !acc;
          incr count
        end
      end
    end
  done;
  t.stats.shared_exported <- t.stats.shared_exported + !count;
  List.rev !acc

(* Import one foreign clause at decision level 0. The clause is implied
   by the (shared) formula but generally not RUP against this solver's
   clause database, so attaching it blindly would break the DRUP
   proof. Instead it is validated the way vivification probes are:
   assume the negation literal by literal under fresh decision levels
   and propagate. A conflict (or an implied literal) proves the probed
   prefix is RUP by definition, so that prefix is attached and emitted
   as an ordinary DRUP addition; anything else is rejected. The
   attached clause is a regular arena learnt, so reduce / GC
   relocation handle it with no special casing. *)
let import_shared t sh (sc : Share.clause) =
  if
    not
      (Array.for_all
         (fun l ->
           let v = Lit.var l in
           v >= 1 && v <= t.n)
         sc.Share.lits)
  then `Rejected
  else begin
    let n = simplify_into t sc.Share.lits in
    if n <= 0 then `Rejected (* empty or tautological *)
    else begin
      let key =
        let b = Buffer.create (4 * n) in
        for k = 0 to n - 1 do
          Buffer.add_string b (string_of_int t.simp.(k));
          Buffer.add_char b ','
        done;
        Buffer.contents b
      in
      if Hashtbl.mem sh.sh_seen key then `Rejected
      else begin
        let lits = Array.init n (fun k -> Lit.of_index t.simp.(k)) in
        let kept = Vec.create ~dummy:(Lit.pos 1) () in
        let stopped = ref false in
        let i = ref 0 in
        while (not !stopped) && !i < n do
          let l = lits.(!i) in
          incr i;
          let v = lit_value t l in
          if v > 0 then begin
            Vec.push kept l;
            stopped := true
          end
          else if v < 0 then () (* falsified by the prefix: drop *)
          else begin
            probe_assume t (Lit.negate l);
            let confl = propagate t in
            Vec.push kept l;
            if confl >= 0 then stopped := true
          end
        done;
        backtrack_probe t 0;
        if not !stopped then `Rejected (* not unit-derivable here *)
        else begin
          let n' = Vec.length kept in
          if n' = 1 then begin
            let u = Vec.get kept 0 in
            if lit_value t u > 0 then `Rejected (* already a root unit *)
            else begin
              Hashtbl.replace sh.sh_seen key ();
              if assert_root_unit t u then `Imported else `Unsat
            end
          end
          else if Vec.exists (fun l -> lit_value t l > 0) kept then
            `Rejected (* root-satisfied: redundant here *)
          else begin
            (* All kept literals are root-unassigned (a root-false
               literal would have been dropped in the probe), so the
               first two are valid watches as-is. *)
            Hashtbl.replace sh.sh_seen key ();
            let lits' = Vec.to_array kept in
            let glue = max 1 (min sc.Share.glue (n' - 1)) in
            let c =
              Arena.alloc t.arena ~learned:true ~glue ~cid:t.next_cid ~size:n'
            in
            Hashtbl.replace sh.sh_foreign t.next_cid ();
            t.next_cid <- t.next_cid + 1;
            if t.cfg.inprocess then
              Arena.set_tier t.arena c
                (Policy.initial_tier ~tier1_glue:t.cfg.tier1_glue
                   ~tier2_glue:t.cfg.tier2_glue ~glue);
            for k = 0 to n' - 1 do
              Arena.set_lit t.arena c k lits'.(k)
            done;
            trace_learned_lits t lits';
            Vec.push t.learnts c;
            attach t c;
            `Imported
          end
        end
      end
    end
  end

(* One sharing exchange at a restart boundary. Returns false when an
   import closes the formula (the empty clause is already emitted). *)
let share_exchange t sh =
  let exports = collect_exports t sh in
  let epoch = sh.sh_epoch in
  sh.sh_epoch <- epoch + 1;
  let imports = sh.sh_hook ~epoch exports in
  let ok = ref true in
  List.iter
    (fun sc ->
      if !ok then
        match import_shared t sh sc with
        | `Imported -> t.stats.shared_imported <- t.stats.shared_imported + 1
        | `Rejected -> t.stats.shared_rejected <- t.stats.shared_rejected + 1
        | `Unsat ->
          t.stats.shared_imported <- t.stats.shared_imported + 1;
          ok := false)
    imports;
  !ok

let maybe_share t =
  match t.share with
  | None -> true
  | Some sh ->
    sh.sh_restarts <- sh.sh_restarts + 1;
    if sh.sh_restarts >= max 1 sh.sh_interval then begin
      sh.sh_restarts <- 0;
      share_exchange t sh
    end
    else true

(* --- decisions --------------------------------------------------------- *)

let rec pick_from_heap t =
  if Var_heap.is_empty t.order then None
  else begin
    let v = Var_heap.remove_max t.order in
    if not (var_assigned t v) then Some v else pick_from_heap t
  end

let pick_branch_var t =
  match t.vmtf with
  | Some q -> Vmtf.pick q ~assigned:(fun v -> var_assigned t v)
  | None -> pick_from_heap t

let decide t v =
  t.stats.decisions <- t.stats.decisions + 1;
  Obs.Metrics.incr m_decisions;
  Vec.push t.trail_lim (Vec.length t.trail);
  let l = Lit.make v t.phase.(v) in
  ignore (enqueue t l (-1));
  let dl = decision_level t in
  if dl > t.stats.max_decision_level then t.stats.max_decision_level <- dl

(* MiniSat's analyzeFinal: the failed assumption [p] is false under the
   current (all-assumption) trail; walk implication chains back to the
   assumption decisions responsible and return them (with [p]) as the
   unsatisfiable core. *)
let analyze_final t p =
  let core = ref [ p ] in
  if decision_level t > 0 then begin
    let a = t.arena in
    t.seen.(Lit.var p) <- 1;
    let bound = Vec.get t.trail_lim 0 in
    for i = Vec.length t.trail - 1 downto bound do
      let q = Vec.get t.trail i in
      let v = Lit.var q in
      if t.seen.(v) = 1 then begin
        let r = t.reason.(v) in
        if r < 0 then core := q :: !core
        else
          for k = 0 to Arena.size a r - 1 do
            let u = Lit.var (Arena.lit a r k) in
            if u <> v && t.level.(u) > 0 then t.seen.(u) <- 1
          done;
        t.seen.(v) <- 0
      end
    done;
    t.seen.(Lit.var p) <- 0
  end;
  !core

(* --- main search -------------------------------------------------------- *)

let model t =
  Array.init (t.n + 1) (fun v -> v > 0 && t.values.(v + v) > 0)

let budget_exhausted t ~conflicts0 ~propagations0 ~deadline =
  (match t.cfg.max_conflicts with
  | Some m -> t.stats.conflicts - conflicts0 >= m
  | None -> false)
  || (match t.cfg.max_propagations with
     | Some m -> t.stats.propagations - propagations0 >= m
     | None -> false)
  ||
  match deadline with
  | Some d -> Runtime.Clock.now () >= d
  | None -> false

(* Open the next decision: install pending assumption literals first
   (one decision level each, as in MiniSat), then branch normally. A
   conflicting assumption terminates with Unsat and a failed-assumption
   core. *)
let next_decision t result =
  let dl = decision_level t in
  if dl < Array.length t.assumptions then begin
    let p = t.assumptions.(dl) in
    if lit_value t p > 0 then
      (* Already implied: open an empty level for it. *)
      Vec.push t.trail_lim (Vec.length t.trail)
    else if lit_value t p < 0 then begin
      t.core <- Some (analyze_final t p);
      result := Some Unsat
    end
    else begin
      t.stats.decisions <- t.stats.decisions + 1;
      Vec.push t.trail_lim (Vec.length t.trail);
      ignore (enqueue t p (-1))
    end
  end
  else begin
    match pick_branch_var t with
    | Some v -> decide t v
    | None -> result := Some (Sat (model t))
  end

let search_body t =
  let conflicts0 = t.stats.conflicts and propagations0 = t.stats.propagations in
  let deadline =
    Option.map (fun s -> Runtime.Clock.now () +. s) t.cfg.max_wall_seconds
  in
  let assumption_depth = Array.length t.assumptions in
  let result = ref None in
  while !result = None do
    let confl = propagate t in
    if confl >= 0 then begin
      t.stats.conflicts <- t.stats.conflicts + 1;
      Obs.Metrics.incr m_conflicts;
      if decision_level t = 0 then result := Some Unsat
      else begin
        let bt_level, glue = analyze t confl in
        backtrack t bt_level;
        install_learnt t glue;
        var_decay t;
        cla_decay t;
        note_conflict_for_restart t glue;
        if t.stats.conflicts >= t.next_reduce then begin
          reduce t;
          t.next_reduce <-
            t.next_reduce + t.cfg.reduce_first + (t.stats.reduces * t.cfg.reduce_inc)
        end;
        if budget_exhausted t ~conflicts0 ~propagations0 ~deadline then
          result := Some Unknown
      end
    end
    else if budget_exhausted t ~conflicts0 ~propagations0 ~deadline then
      result := Some Unknown
    else if should_restart t && decision_level t > assumption_depth then begin
      do_restart t;
      if not (maybe_share t) then result := Some Unsat
      else if t.cfg.inprocess then begin
        t.restarts_since_inprocess <- t.restarts_since_inprocess + 1;
        if t.restarts_since_inprocess >= max 1 t.cfg.inprocess_interval
        then begin
          t.restarts_since_inprocess <- 0;
          if not (inprocess t) then result := Some Unsat
        end
      end
    end
    else next_decision t result
  done;
  Option.get !result

let search t = Obs.Trace.with_span "solver.solve" (fun () -> search_body t)

let solve t =
  guard t "solve";
  (* A plain solve is assumption-free: stale assumptions and cores left
     behind by an earlier [solve_with_assumptions] must not leak into
     this call's answer, even when the answer itself is cached. *)
  t.assumptions <- [||];
  t.core <- None;
  match t.answer with
  | Some (Sat _ | Unsat) -> Option.get t.answer
  | Some Unknown | None ->
    (* Drop any decisions left over from an interrupted assumption run. *)
    backtrack t 0;
    let r = with_solving t (fun () -> search t) in
    t.answer <- Some r;
    r

let solve_with_assumptions t lits =
  guard t "solve_with_assumptions";
  match t.answer with
  | Some Unsat ->
    (* The formula is unsatisfiable outright: empty core. *)
    t.core <- Some [];
    Unsat
  | Some (Sat _ | Unknown) | None ->
    backtrack t 0;
    t.assumptions <- Array.of_list lits;
    t.core <- None;
    let r =
      with_solving t (fun () ->
          Fun.protect ~finally:(fun () -> t.assumptions <- [||]) (fun () ->
              search t))
    in
    (match r with
    | Unsat when t.core = None ->
      (* Level-0 conflict: unsat independent of assumptions. *)
      t.core <- Some [];
      t.answer <- Some Unsat
    | Unsat | Unknown -> ()
    | Sat _ ->
      (* A model under assumptions is a model of the formula. *)
      t.answer <- Some r);
    r

let unsat_core t = t.core

(* --- accessors ---------------------------------------------------------- *)

let config t = t.cfg
let stats t = t.stats
let num_vars t = t.n
let propagation_counts t = Array.copy t.prop_counts

let value t v =
  if v < 1 || v > t.n then invalid_arg "Solver.value";
  match t.values.(v + v) with
  | 0 -> None
  | x -> Some (x > 0)

let learned_clause_count t = Vec.length t.learnts
let arena_gc_count t = t.arena_gcs
let arena_live_words t = Arena.live_words t.arena

let inprocess_now t =
  match t.answer with
  | Some (Sat _ | Unsat) -> ()
  | Some Unknown | None ->
    backtrack t 0;
    if propagate t >= 0 then begin
      emit_root_units t;
      trace_learned_lits t [||];
      t.answer <- Some Unsat
    end
    else if not (inprocess t) then t.answer <- Some Unsat

let tier_counts t =
  let a = t.arena in
  let core = ref 0 and mid = ref 0 and local = ref 0 in
  Vec.iter
    (fun c ->
      if not (Arena.deleted a c) then begin
        let tr = Arena.tier a c in
        if tr = Arena.tier_core then incr core
        else if tr = Arena.tier_mid then incr mid
        else incr local
      end)
    t.learnts;
  (!core, !mid, !local)

let set_trace t f = t.trace <- Some f
let clear_trace t = t.trace <- None

let set_share ?(interval = 1) ?(glue_limit = 4) ?(max_size = 32)
    ?(per_epoch = 64) t hook =
  guard t "set_share";
  let seen = Hashtbl.create 1024 in
  let register c =
    if not (Arena.deleted t.arena c) then
      Hashtbl.replace seen (share_key (Arena.lits_array t.arena c)) ()
  in
  Vec.iter register t.originals;
  Vec.iter register t.learnts;
  t.share <-
    Some
      {
        sh_hook = hook;
        sh_interval = max 1 interval;
        sh_glue = glue_limit;
        sh_max_size = max_size;
        sh_cap = per_epoch;
        sh_epoch = 0;
        sh_units_sent = Vec.length t.trail;
        sh_last_cid = t.next_cid - 1;
        sh_restarts = 0;
        sh_seen = seen;
        sh_foreign = Hashtbl.create 64;
      }

let clear_share t =
  guard t "clear_share";
  t.share <- None

let share_epochs t = match t.share with None -> 0 | Some sh -> sh.sh_epoch

let check_model formula m = Cnf.Formula.eval formula m

let solve_formula ?config formula =
  let t = create ?config formula in
  let r = solve t in
  (r, Solver_stats.copy (stats t))
